// Failure injection: corrupt objects, tampered payloads, dead peers, and
// concurrent access. The system must fail loudly (typed exceptions), keep
// serving after per-request failures, and never return wrong geometry.
#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <thread>

#include "bench_util/testbed.h"
#include "contour/contour_filter.h"
#include "io/vnd_format.h"
#include "ndp/protocol.h"
#include "net/fault.h"
#include "obs/metrics.h"
#include "rpc/client.h"
#include "sim/impact.h"

namespace vizndp {
namespace {

using namespace std::chrono_literals;
using bench_util::Testbed;

Bytes MakeVndImage(int n = 16, const std::string& codec = "gzip") {
  sim::ImpactConfig cfg;
  cfg.n = n;
  const grid::Dataset ds = sim::GenerateImpactTimestep(cfg, 24006, {"v02"});
  io::VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec(codec));
  return writer.Serialize();
}

TEST(Fault, CorruptBlobFailsLoudlyAndServerSurvives) {
  Testbed testbed;
  Bytes image = MakeVndImage();
  Bytes corrupted = image;
  corrupted[corrupted.size() - 10] ^= 0xFF;  // inside the v02 blob
  testbed.store().Put(testbed.bucket(), "bad.vnd", corrupted);
  testbed.store().Put(testbed.bucket(), "good.vnd", image);

  // The pre-filter hits the CRC mismatch server-side; the client sees a
  // typed CorruptDataError naming the failure (carried across the wire
  // by the error prefix) rather than silent bad geometry.
  try {
    testbed.ndp_client().Contour("bad.vnd", "v02", {0.1});
    FAIL() << "expected CorruptDataError";
  } catch (const CorruptDataError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
  // Same server connection keeps working afterwards.
  EXPECT_GT(testbed.ndp_client().Contour("good.vnd", "v02", {0.1})
                .TriangleCount(),
            0u);
}

TEST(Fault, TruncatedObjectFails) {
  Testbed testbed;
  Bytes image = MakeVndImage();
  image.resize(image.size() / 2);
  testbed.store().Put(testbed.bucket(), "trunc.vnd", image);
  EXPECT_THROW(testbed.ndp_client().Contour("trunc.vnd", "v02", {0.1}),
               RpcError);
  // Baseline path fails too — now at open, where the header validation
  // catches blobs overrunning the physical file.
  EXPECT_THROW(io::VndReader(testbed.RemoteGateway().Open("trunc.vnd")),
               DecodeError);
}

TEST(Fault, MissingObjectAndMissingArray) {
  Testbed testbed;
  testbed.store().Put(testbed.bucket(), "ok.vnd", MakeVndImage());
  // A missing object is a *storage* failure: the typed IoError crosses
  // the wire (and, being permanent, is never retried client-side).
  EXPECT_THROW(testbed.ndp_client().Contour("nope.vnd", "v02", {0.1}),
               IoError);
  // A missing array is an application error: still a generic RpcError.
  EXPECT_THROW(testbed.ndp_client().Contour("ok.vnd", "prs", {0.1}), RpcError);
  // Server still healthy.
  EXPECT_GT(
      testbed.ndp_client().Contour("ok.vnd", "v02", {0.1}).TriangleCount(),
      0u);
}

TEST(Fault, TamperedSelectionPayloadRejected) {
  // Build a valid payload, then flip bytes; the decoder must throw, not
  // reconstruct garbage.
  const grid::Dims dims{8, 8, 8};
  std::vector<float> f(512, 0.0f);
  f[static_cast<size_t>(dims.Index(4, 4, 4))] = 1.0f;
  const auto a = grid::DataArray::FromVector("f", f);
  const double iso[] = {0.5};
  const contour::Selection sel =
      contour::SelectInterestingPoints(dims, a, iso);
  for (const auto encoding : {ndp::SelectionEncoding::kIdValue,
                              ndp::SelectionEncoding::kDeltaVarint,
                              ndp::SelectionEncoding::kBitmap,
                              ndp::SelectionEncoding::kRunLength}) {
    Bytes payload = ndp::EncodeSelection(sel, encoding);
    // Claim twice as many points as the payload carries.
    Bytes counterfeit = payload;
    StoreLE<std::uint64_t>(sel.ids.size() * 2, counterfeit.data() + 2);
    EXPECT_THROW(ndp::DecodeSelection(counterfeit, dims), DecodeError)
        << ndp::SelectionEncodingName(encoding);
    // Truncate the value block.
    Bytes truncated = payload;
    truncated.resize(truncated.size() - 3);
    EXPECT_THROW(ndp::DecodeSelection(truncated, dims), DecodeError)
        << ndp::SelectionEncodingName(encoding);
  }
}

TEST(Fault, GzipCorruptionFuzzAllDetected) {
  // CRC-32 detects every burst error up to 32 bits, so any single-bit
  // flip anywhere in a gzip member must either throw or (for flips in
  // don't-care header fields like MTIME/XFL) still decode exactly.
  std::mt19937 rng(31337);
  Bytes input(20000);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<Byte>((i / 13) % 7 * 37 + (rng() % 3));
  }
  const auto codec = compress::MakeCodec("gzip");
  const Bytes good = codec->Compress(input);
  for (size_t pos = 0; pos < good.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes bad = good;
      bad[pos] ^= static_cast<Byte>(1u << bit);
      try {
        const Bytes out = codec->Decompress(bad, input.size());
        ASSERT_EQ(out, input) << "pos " << pos << " bit " << bit;
      } catch (const Error&) {
        // Detected — the expected outcome.
      }
    }
  }
}

TEST(Fault, ZlibCorruptionFuzzAdlerIsWeaker) {
  // Adler-32 (the zlib format's checksum) famously offers weaker
  // burst-error guarantees than CRC-32: a flipped compressed bit can
  // produce small compensating value changes that collide. This test
  // documents the property rather than pretending it away: corruption is
  // never a crash, is almost always detected, and the rare undetected
  // case still decodes to a full-length buffer.
  std::mt19937 rng(1234);
  Bytes input(20000);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<Byte>((i / 13) % 7 * 37 + (rng() % 3));
  }
  const auto codec = compress::MakeCodec("zlib");
  const Bytes good = codec->Compress(input);
  int undetected = 0;
  int trials = 0;
  for (size_t pos = 0; pos < good.size(); pos += 3) {
    ++trials;
    Bytes bad = good;
    bad[pos] ^= static_cast<Byte>(1u << (rng() % 8));
    try {
      const Bytes out = codec->Decompress(bad, input.size());
      if (out != input) {
        ++undetected;
        EXPECT_EQ(out.size(), input.size());
      }
    } catch (const Error&) {
    }
  }
  // Collisions exist but must stay rare (measured: a fraction of 1%).
  EXPECT_LT(undetected * 100, trials);
}

TEST(Fault, TruncationFuzz) {
  // Every truncation point of every codec either throws or (for plain
  // prefix-transparent formats) returns data that fails the size check.
  Bytes input(5000);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<Byte>(i * 31);
  }
  for (const std::string& name : compress::RegisteredCodecNames()) {
    if (name == "none") continue;
    const auto codec = compress::MakeCodec(name);
    const Bytes good = codec->Compress(input);
    for (size_t cut = 0; cut < good.size(); cut += 97) {
      const Bytes bad(good.begin(), good.begin() + static_cast<long>(cut));
      try {
        const Bytes out = codec->Decompress(bad, input.size());
        EXPECT_NE(out, input) << name << " cut " << cut;  // cannot be whole
      } catch (const Error&) {
      }
    }
  }
}

TEST(Fault, ScatterLastWriteWins) {
  contour::SparseField field(grid::Dims{2, 2, 2}, grid::DataType::Float32);
  const std::vector<grid::PointId> ids = {3, 3};
  const auto values =
      grid::DataArray::FromVector("v", std::vector<float>{1.0f, 2.0f});
  field.Scatter(ids, values);
  EXPECT_EQ(field.ValidCount(), 1);  // duplicate id counted once
}

TEST(Fault, ConcurrentStoreAccess) {
  storage::MemoryObjectStore store;
  store.CreateBucket("b");
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      try {
        for (int i = 0; i < 200; ++i) {
          const std::string key = "k" + std::to_string(t) + "_" +
                                  std::to_string(i % 8);
          store.Put("b", key, Bytes(64, static_cast<Byte>(i)));
          const Bytes back = store.Get("b", key);
          if (back.size() != 64) ++failures;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Fault, ConcurrentNdpClientsOnOneTestbed) {
  Testbed testbed;
  testbed.store().Put(testbed.bucket(), "t.vnd", MakeVndImage(12, "lz4"));
  // The shared NdpClient serializes calls internally; hammer it from
  // multiple threads and require identical results.
  const contour::PolyData reference =
      testbed.ndp_client().Contour("t.vnd", "v02", {0.1});
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        const contour::PolyData poly =
            testbed.ndp_client().Contour("t.vnd", "v02", {0.1});
        if (!poly.GeometricallyEquals(reference, 0.0)) ++mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------------------------
// Graceful degradation (the PR's acceptance scenario): black-hole the NDP
// connection and require the pipeline to produce the dense baseline's
// exact geometry through the fallback path, with counters telling the
// story.
// ---------------------------------------------------------------------------

// Builds an NdpClient over a fault-injected connection to the testbed's
// server, with short deadlines and a fixed retry budget.
struct DegradedClient {
  net::FaultInjectingTransport* faults = nullptr;  // owned by rpc_client
  std::shared_ptr<rpc::Client> rpc_client;
  obs::Registry metrics;
  std::shared_ptr<ndp::NdpClient> ndp_client;

  explicit DegradedClient(Testbed& testbed) {
    auto faulty = std::make_unique<net::FaultInjectingTransport>(
        testbed.ConnectToServer());
    faults = faulty.get();
    rpc_client = std::make_shared<rpc::Client>(std::move(faulty));
    rpc_client->SetMetrics(&metrics);
    ndp::NdpClientOptions options;
    options.call_timeout = 50ms;
    options.retry.max_attempts = 3;
    options.retry.base_delay = 200us;
    options.retry.jitter = 0.0;
    ndp_client = std::make_shared<ndp::NdpClient>(rpc_client, "data", options);
  }

  double Counter(const std::string& name) {
    const auto snapshot = metrics.Snapshot();
    const obs::MetricSnapshot* m = obs::FindMetric(snapshot, name);
    return m == nullptr ? 0.0 : m->value;
  }
};

TEST(Fault, GracefulDegradationProducesBaselineGeometry) {
  Testbed testbed;
  testbed.store().Put(testbed.bucket(), "t.vnd", MakeVndImage());

  // The dense baseline: full array read + classic contour filter.
  io::VndReader reader(testbed.LocalGateway().Open("t.vnd"));
  const contour::ContourFilter filter(std::vector<double>{0.1});
  const contour::PolyData baseline =
      filter.Execute(reader.header().dims, reader.header().geometry,
                     reader.ReadArray("v02"));
  ASSERT_GT(baseline.TriangleCount(), 0u);

  DegradedClient degraded(testbed);
  // Every request into the NDP connection silently vanishes.
  degraded.faults->ScriptSend({net::FaultAction::Drop()}, /*loop_last=*/true);

  const double fallbacks_before =
      obs::DefaultRegistry().GetCounter("ndp_fallback_total").value();

  ndp::NdpContourSource source(degraded.ndp_client, "t.vnd", "v02", {0.1});
  source.SetFallback(testbed.LocalGateway());
  const contour::PolyData& poly = source.UpdateAndGetOutput()->AsPolyData();

  // Bit-identical geometry: the fallback runs the same filter over the
  // same values, so zero tolerance.
  EXPECT_TRUE(poly.GeometricallyEquals(baseline, 0.0));
  EXPECT_TRUE(source.last_stats().used_fallback);

  // The counters reflect the event: every attempt timed out, the retries
  // were burned, and exactly one fallback happened.
  EXPECT_DOUBLE_EQ(degraded.Counter("rpc_timeouts_total{method=ndp.select}"),
                   3.0);
  EXPECT_DOUBLE_EQ(degraded.Counter("rpc_retries_total{method=ndp.select}"),
                   2.0);
  EXPECT_DOUBLE_EQ(
      obs::DefaultRegistry().GetCounter("ndp_fallback_total").value(),
      fallbacks_before + 1.0);
}

TEST(Fault, ServerDeathMidRunFallsBackOnNextExecute) {
  Testbed testbed;
  testbed.store().Put(testbed.bucket(), "t.vnd", MakeVndImage());

  DegradedClient degraded(testbed);
  // First select passes; the connection then hard-fails forever.
  degraded.faults->ScriptSend(
      {net::FaultAction::Pass(), net::FaultAction::Disconnect()});

  ndp::NdpContourSource source(degraded.ndp_client, "t.vnd", "v02", {0.1});
  source.SetFallback(testbed.LocalGateway());

  const contour::PolyData first = source.UpdateAndGetOutput()->AsPolyData();
  EXPECT_FALSE(source.last_stats().used_fallback);

  source.Modified();  // force a re-execute against the now-dead server
  const contour::PolyData second = source.UpdateAndGetOutput()->AsPolyData();
  EXPECT_TRUE(source.last_stats().used_fallback);
  EXPECT_TRUE(second.GeometricallyEquals(first, 0.0));
}

TEST(Fault, HealthyServerNeverTriggersFallback) {
  Testbed testbed;
  testbed.store().Put(testbed.bucket(), "t.vnd", MakeVndImage());

  DegradedClient healthy(testbed);  // no faults scripted = clean path
  ndp::NdpContourSource source(healthy.ndp_client, "t.vnd", "v02", {0.1});
  source.SetFallback(testbed.LocalGateway());
  const contour::PolyData& poly = source.UpdateAndGetOutput()->AsPolyData();
  EXPECT_GT(poly.TriangleCount(), 0u);
  EXPECT_FALSE(source.last_stats().used_fallback);
  EXPECT_DOUBLE_EQ(healthy.Counter("rpc_timeouts_total{method=ndp.select}"),
                   0.0);
}

TEST(Fault, ApplicationErrorsDoNotFallBack) {
  // An RpcError means the server is alive and rejected the request (here:
  // an array that does not exist). Falling back would hide the caller's
  // mistake behind a quietly different read path. Corrupt data is the
  // deliberate exception — it *does* degrade to the baseline read; see
  // integrity_test.cc.
  Testbed testbed;
  testbed.store().Put(testbed.bucket(), "ok.vnd", MakeVndImage());

  DegradedClient degraded(testbed);
  ndp::NdpContourSource source(degraded.ndp_client, "ok.vnd", "nope", {0.1});
  source.SetFallback(testbed.LocalGateway());
  EXPECT_THROW(source.UpdateAndGetOutput(), RpcError);
}

TEST(Fault, OverwriteDuringUseGivesEitherOldOrNewObject) {
  // Object replacement is atomic at the Get level: a read returns one
  // complete version, never an interleaving.
  storage::MemoryObjectStore store;
  store.CreateBucket("b");
  const Bytes v1(1000, 0xAA);
  const Bytes v2(1000, 0xBB);
  store.Put("b", "k", v1);
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread writer([&] {
    for (int i = 0; i < 500; ++i) {
      store.Put("b", "k", (i & 1) ? v2 : v1);
    }
    stop = true;
  });
  while (!stop) {
    const Bytes got = store.Get("b", "k");
    if (got != v1 && got != v2) ++torn;
  }
  writer.join();
  EXPECT_EQ(torn.load(), 0);
}

}  // namespace
}  // namespace vizndp
