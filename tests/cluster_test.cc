// The sharded serving tier's contract: scatter-gathered geometry is
// bit-identical to the single-server split pipeline under any shard
// interleaving, any single-server loss, and hedged execution — and
// every degradation is visible in metrics and the event journal.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <numeric>
#include <set>

#include "bench_util/testbed.h"
#include "cluster/shard_map.h"
#include "cluster/sharded_client.h"
#include "io/vnd_format.h"
#include "net/fault.h"
#include "obs/windowed.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "sim/impact.h"

namespace vizndp::cluster {
namespace {

using bench_util::ClusterTestbed;
using bench_util::ClusterTestbedConfig;

const std::vector<double> kIsos = {0.2, 0.5};

grid::Dataset MakeImpact(int n) {
  sim::ImpactConfig cfg;
  cfg.n = n;
  return sim::GenerateImpactTimestep(cfg, 24006, {"v02"});
}

void StoreDataset(storage::ObjectStore& store, const std::string& bucket,
                  const std::string& key, int n, std::int32_t brick_edge) {
  const grid::Dataset ds = MakeImpact(n);
  io::VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec("lz4"));
  writer.SetBrickSize(brick_edge);
  writer.WriteToStore(store, bucket, key);
}

std::uint64_t CounterValue(const std::string& name) {
  return obs::DefaultRegistry().GetCounter(name).value();
}

// ---------------------------------------------------------------------------
// ShardMap placement properties.

TEST(ShardMap, PartitionIsDisjointSortedAndCovers) {
  const ShardMap map(5, 2);
  const std::int64_t bricks = 512;
  const auto slices = map.Partition("codec/ts1.vnd", bricks);
  ASSERT_EQ(slices.size(), 5u);
  std::vector<std::int64_t> all;
  for (const auto& slice : slices) {
    EXPECT_TRUE(std::is_sorted(slice.begin(), slice.end()));
    all.insert(all.end(), slice.begin(), slice.end());
  }
  std::sort(all.begin(), all.end());
  std::vector<std::int64_t> expect(static_cast<size_t>(bricks));
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(all, expect);  // disjoint + covering, in one comparison
}

TEST(ShardMap, PartitionIsRoughlyBalanced) {
  const ShardMap map(4, 2);
  const auto slices = map.Partition("a.vnd", 4096);
  for (const auto& slice : slices) {
    // Rendezvous hashing: expect 1024 +/- a generous tolerance.
    EXPECT_GT(slice.size(), 700u);
    EXPECT_LT(slice.size(), 1400u);
  }
}

TEST(ShardMap, DifferentKeysPlaceDifferently) {
  const ShardMap map(4, 1);
  const auto a = map.Partition("a.vnd", 256);
  const auto b = map.Partition("b.vnd", 256);
  EXPECT_NE(a, b);
}

TEST(ShardMap, ReplicaChainStartsHomeAndIsUnique) {
  const ShardMap map(5, 3);
  for (int shard = 0; shard < 5; ++shard) {
    const std::vector<int> chain = map.ReplicaChain(shard);
    ASSERT_EQ(chain.size(), 3u);
    EXPECT_EQ(chain[0], shard);
    std::set<int> unique(chain.begin(), chain.end());
    EXPECT_EQ(unique.size(), chain.size());
    for (const int sv : chain) {
      EXPECT_GE(sv, 0);
      EXPECT_LT(sv, 5);
    }
  }
}

TEST(ShardMap, ReplicasClampToFleet) {
  const ShardMap map(2, 5);
  EXPECT_EQ(map.replicas(), 2);
  EXPECT_EQ(map.ReplicaChain(0).size(), 2u);
}

// ---------------------------------------------------------------------------
// Scatter-gather correctness.

TEST(Cluster, ShardedMatchesSingleServer) {
  ClusterTestbedConfig config;
  config.servers = 3;
  config.replicas = 2;
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 8);

  ndp::NdpLoadStats ref_stats;
  const contour::PolyData reference =
      cluster.server_client(0)->Contour("ts.vnd", "v02", kIsos, &ref_stats);

  ndp::NdpLoadStats stats;
  const contour::PolyData sharded =
      cluster.sharded_client()->Contour("ts.vnd", "v02", kIsos, &stats);

  EXPECT_TRUE(sharded.GeometricallyEquals(reference, 0.0));
  // The merge deduplicates halo points, so the sharded count equals the
  // single-server one exactly.
  EXPECT_EQ(stats.selected_points, ref_stats.selected_points);
  EXPECT_EQ(stats.total_points, ref_stats.total_points);
  EXPECT_EQ(stats.bricks_total, ref_stats.bricks_total);
  EXPECT_FALSE(stats.used_fallback);
}

TEST(Cluster, UnbrickedDatasetRoutesWhole) {
  ClusterTestbedConfig config;
  config.servers = 3;
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "mono.vnd", 24,
               /*brick_edge=*/0);

  const contour::PolyData reference =
      cluster.server_client(0)->Contour("mono.vnd", "v02", kIsos);
  const contour::PolyData sharded =
      cluster.sharded_client()->Contour("mono.vnd", "v02", kIsos);
  EXPECT_TRUE(sharded.GeometricallyEquals(reference, 0.0));
}

// Restricted selections really are a partition of the full one: the
// union of per-slice ids equals the unrestricted ids (duplicates only
// from brick-boundary halos, with identical values).
TEST(Cluster, RestrictionUnionMatchesFullSelection) {
  ClusterTestbedConfig config;
  config.servers = 3;
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 8);

  auto client = cluster.server_client(0);
  const ndp::PartialFetch full =
      client->FetchPartial("ts.vnd", "v02", kIsos, nullptr);

  const auto info = client->Info("ts.vnd");
  const auto* meta = info.Find("v02");
  ASSERT_NE(meta, nullptr);
  ASSERT_GT(meta->brick_count, 0);

  const ShardMap& map = cluster.sharded_client()->shard_map();
  std::vector<grid::PointId> merged;
  for (const auto& slice : map.Partition("ts.vnd", meta->brick_count)) {
    if (slice.empty()) continue;
    const ndp::PartialFetch part =
        client->FetchPartial("ts.vnd", "v02", kIsos, &slice);
    merged.insert(merged.end(), part.selection.ids.begin(),
                  part.selection.ids.end());
    EXPECT_LE(part.bricks_read, full.bricks_read);
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  std::vector<grid::PointId> expect(full.selection.ids.begin(),
                                    full.selection.ids.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(merged, expect);
}

// Merge determinism, the property the whole tier rests on: any
// permutation of partial arrivals — even with one partial applied twice
// (a won-and-lost hedge both delivering) — reconstructs the same field
// and contour, bit for bit.
TEST(Cluster, MergeIsPermutationAndDuplicateInvariant) {
  ClusterTestbedConfig config;
  config.servers = 4;
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 8);

  auto client = cluster.server_client(0);
  grid::UniformGeometry geometry;
  const contour::SparseField reference_field =
      client->FetchSparseField("ts.vnd", "v02", kIsos, &geometry);
  const contour::PolyData reference =
      reference_field.Contour(geometry, kIsos);

  const auto info = client->Info("ts.vnd");
  const auto* meta = info.Find("v02");
  ASSERT_NE(meta, nullptr);
  std::vector<ndp::PartialFetch> partials;
  for (const auto& slice : cluster.sharded_client()->shard_map().Partition(
           "ts.vnd", meta->brick_count)) {
    if (slice.empty()) continue;
    partials.push_back(client->FetchPartial("ts.vnd", "v02", kIsos, &slice));
  }
  ASSERT_GE(partials.size(), 2u);

  std::vector<size_t> order(partials.size());
  std::iota(order.begin(), order.end(), 0);
  int tried = 0;
  do {
    contour::SparseField field(partials[0].dims, partials[0].dtype);
    for (const size_t i : order) {
      field.Scatter(partials[i].selection.ids, partials[i].selection.values);
    }
    // Duplicate one partial: a hedge loser that delivered anyway.
    field.Scatter(partials[order[0]].selection.ids,
                  partials[order[0]].selection.values);
    EXPECT_EQ(field.ValidCount(), reference_field.ValidCount());
    EXPECT_TRUE(
        field.Contour(geometry, kIsos).GeometricallyEquals(reference, 0.0));
  } while (std::next_permutation(order.begin(), order.end()) && ++tried < 24);
}

// ---------------------------------------------------------------------------
// Failure ladder.

TEST(Cluster, SurvivesKillingOneServerBitIdentical) {
  ClusterTestbedConfig config;
  config.servers = 3;
  config.replicas = 2;
  config.client_options.call_timeout = std::chrono::milliseconds(5000);
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 8);

  const contour::PolyData reference =
      cluster.server_client(0)->Contour("ts.vnd", "v02", kIsos);

  const std::uint64_t failovers_before = CounterValue("cluster_failover_total");
  cluster.KillServer(1);
  const contour::PolyData degraded =
      cluster.sharded_client()->Contour("ts.vnd", "v02", kIsos);

  EXPECT_TRUE(degraded.GeometricallyEquals(reference, 0.0));
  // Server 1 is primary for shard 1; its sub-request must have failed
  // over to a replica, and the journal must carry the event.
  EXPECT_GT(CounterValue("cluster_failover_total"), failovers_before);
  EXPECT_NE(obs::GlobalEventLog().Json().find("cluster.failover"),
            std::string::npos);
}

TEST(Cluster, ProbeMarksDeadServerSuspectAndRoutesAround) {
  ClusterTestbedConfig config;
  config.servers = 3;
  config.replicas = 2;
  config.client_options.call_timeout = std::chrono::milliseconds(5000);
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 8);

  const contour::PolyData reference =
      cluster.server_client(0)->Contour("ts.vnd", "v02", kIsos);

  cluster.KillServer(2);
  EXPECT_EQ(cluster.sharded_client()->ProbeHealth(), 1);

  const std::uint64_t skips_before =
      CounterValue("cluster_draining_skips_total");
  const contour::PolyData degraded =
      cluster.sharded_client()->Contour("ts.vnd", "v02", kIsos);
  EXPECT_TRUE(degraded.GeometricallyEquals(reference, 0.0));
  // The suspect server was demoted in every chain containing it instead
  // of being dialed first and timed out.
  EXPECT_GT(CounterValue("cluster_draining_skips_total"), skips_before);
  EXPECT_NE(obs::GlobalEventLog().Json().find("cluster.draining_skip"),
            std::string::npos);
}

TEST(Cluster, ManualSuspectStillServes) {
  ClusterTestbedConfig config;
  config.servers = 3;
  config.replicas = 2;
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 8);

  const contour::PolyData reference =
      cluster.server_client(0)->Contour("ts.vnd", "v02", kIsos);
  cluster.sharded_client()->MarkSuspect(0);
  const contour::PolyData poly =
      cluster.sharded_client()->Contour("ts.vnd", "v02", kIsos);
  EXPECT_TRUE(poly.GeometricallyEquals(reference, 0.0));
}

TEST(Cluster, ApplicationErrorsPropagateInsteadOfFailingOver) {
  ClusterTestbedConfig config;
  config.servers = 3;
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 8);

  const std::uint64_t failovers_before = CounterValue("cluster_failover_total");
  // A bad array name is bad on every replica: one typed error, no
  // failover churn, no rescue fetch.
  EXPECT_THROW(
      cluster.sharded_client()->Contour("ts.vnd", "nope", kIsos),
      RpcError);
  // A missing object is a permanent storage failure on every replica:
  // the typed IoError propagates without failover churn.
  EXPECT_THROW(cluster.sharded_client()->Contour("missing.vnd", "v02", kIsos),
               IoError);
  EXPECT_EQ(CounterValue("cluster_failover_total"), failovers_before);
}

// ---------------------------------------------------------------------------
// Hedging.

TEST(Cluster, HedgeFiresOnSlowReplicaAndWins) {
  ClusterTestbedConfig config;
  config.servers = 3;
  config.replicas = 2;
  config.client_options.call_timeout = std::chrono::milliseconds(10000);
  config.sharded.hedge_ms = 40;  // fixed: fire fast, deterministically
  // Server 1 answers everything 400 ms late: any sub-request homed there
  // hedges onto its replica, and the replica wins.
  config.decorate = [](net::TransportPtr t, int server) -> net::TransportPtr {
    if (server != 1) return t;
    auto faulty = std::make_unique<net::FaultInjectingTransport>(std::move(t));
    faulty->ScriptReceive(
        {net::FaultAction::Delay(std::chrono::microseconds(400'000))},
        /*loop_last=*/true);
    return faulty;
  };
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 8);

  const contour::PolyData reference =
      cluster.server_client(0)->Contour("ts.vnd", "v02", kIsos);

  const std::uint64_t launched_before =
      CounterValue("ndp_hedge_launched_total");
  const std::uint64_t won_before = CounterValue("ndp_hedge_won_total");
  const contour::PolyData hedged =
      cluster.sharded_client()->Contour("ts.vnd", "v02", kIsos);

  EXPECT_TRUE(hedged.GeometricallyEquals(reference, 0.0));
  EXPECT_GT(CounterValue("ndp_hedge_launched_total"), launched_before);
  EXPECT_GT(CounterValue("ndp_hedge_won_total"), won_before);
  const std::string journal = obs::GlobalEventLog().Json();
  EXPECT_NE(journal.find("cluster.hedge"), std::string::npos);
  EXPECT_NE(journal.find("cluster.hedge_won"), std::string::npos);
}

TEST(Cluster, NoHedgeWhenDisabled) {
  ClusterTestbedConfig config;
  config.servers = 3;
  config.replicas = 2;
  config.sharded.hedge_ms = -1;
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 8);

  const std::uint64_t launched_before =
      CounterValue("ndp_hedge_launched_total");
  cluster.sharded_client()->Contour("ts.vnd", "v02", kIsos);
  EXPECT_EQ(CounterValue("ndp_hedge_launched_total"), launched_before);
}

// Losing every replica of a shard falls to the unrestricted rescue rung:
// the whole dataset from any surviving node, still bit-identical.
TEST(Cluster, AllReplicasDownTakesUnrestrictedRescue) {
  ClusterTestbedConfig config;
  config.servers = 3;
  config.replicas = 1;  // no replicas: killing a node dooms its shard
  config.client_options.call_timeout = std::chrono::milliseconds(5000);
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 8);

  const contour::PolyData reference =
      cluster.server_client(0)->Contour("ts.vnd", "v02", kIsos);

  const std::uint64_t rescues_before =
      CounterValue("cluster_unrestricted_fallback_total");
  cluster.KillServer(1);
  const contour::PolyData rescued =
      cluster.sharded_client()->Contour("ts.vnd", "v02", kIsos);
  EXPECT_TRUE(rescued.GeometricallyEquals(reference, 0.0));
  EXPECT_GT(CounterValue("cluster_unrestricted_fallback_total"),
            rescues_before);
  EXPECT_NE(obs::GlobalEventLog().Json().find("cluster.unrestricted_fallback"),
            std::string::npos);
}

// Per-shard accounting exists and sums sensibly after a sharded fetch.
TEST(Cluster, PerShardCountersAdvance) {
  ClusterTestbedConfig config;
  config.servers = 3;
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 8);

  std::vector<std::uint64_t> before;
  for (int s = 0; s < 3; ++s) {
    before.push_back(obs::DefaultRegistry()
                         .GetCounter("cluster_subfetch_total",
                                     {{"shard", std::to_string(s)}})
                         .value());
  }
  cluster.sharded_client()->Contour("ts.vnd", "v02", kIsos);
  std::uint64_t advanced = 0;
  for (int s = 0; s < 3; ++s) {
    advanced += obs::DefaultRegistry()
                    .GetCounter("cluster_subfetch_total",
                                {{"shard", std::to_string(s)}})
                    .value() -
                before[static_cast<size_t>(s)];
  }
  // 64 bricks over 3 shards: every shard holds a slice.
  EXPECT_EQ(advanced, 3u);
  EXPECT_GE(obs::DefaultRegistry()
                .GetWindowedHistogram("cluster_subfetch_seconds",
                                      obs::LatencyBounds())
                .cumulative()
                .count(),
            3u);
}

}  // namespace
}  // namespace vizndp::cluster
