// Tests for the observability subsystem: metric registry concurrency and
// bucket semantics, snapshot export, and the span/tracer pipeline down to
// well-formed Chrome-tracing JSON.
#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vizndp::obs {
namespace {

constexpr int kThreads = 4;
constexpr int kPerThread = 25000;

TEST(Metrics, ConcurrentCounterSumsExactly) {
  Registry registry;
  Counter& counter = registry.GetCounter("test_total");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, CounterIncrementByN) {
  Counter counter;
  counter.Increment(10);
  counter.Increment(32);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Metrics, GaugeSetAndAdd) {
  Gauge gauge;
  gauge.Set(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
  gauge.Add(2.25);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.75);
  gauge.Add(-4.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -0.25);
}

TEST(Metrics, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(1.0);  // == bounds[0] -> bucket 0
  h.Observe(1.5);  // (1, 2]      -> bucket 1
  h.Observe(2.0);  // == bounds[1] -> bucket 1
  h.Observe(4.0);  // == bounds[2] -> bucket 2
  h.Observe(5.0);  // > bounds.back() -> overflow bucket
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 13.5);
}

TEST(Metrics, ConcurrentHistogramObservationsSumExactly) {
  // 1.0 is exactly representable, so the atomic double sum must be exact.
  Histogram h({0.5, 2.0});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  const auto n = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h.count(), n);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(n));
  EXPECT_EQ(h.bucket(0), 0u);
  EXPECT_EQ(h.bucket(1), n);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(Metrics, LabelsCanonicalizeOrderIndependently) {
  EXPECT_EQ(Registry::CanonicalName("m", {{"b", "2"}, {"a", "1"}}),
            "m{a=1,b=2}");
  EXPECT_EQ(Registry::CanonicalName("m", {}), "m");
  Registry registry;
  Counter& c1 = registry.GetCounter("m", {{"x", "1"}, {"y", "2"}});
  Counter& c2 = registry.GetCounter("m", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&c1, &c2);
  Counter& c3 = registry.GetCounter("m", {{"x", "1"}, {"y", "3"}});
  EXPECT_NE(&c1, &c3);
}

TEST(Metrics, HandlesAreStableAcrossLookups) {
  Registry registry;
  Counter& c = registry.GetCounter("c");
  c.Increment(7);
  EXPECT_EQ(&registry.GetCounter("c"), &c);
  Histogram& h = registry.GetHistogram("h", {1.0, 2.0});
  EXPECT_EQ(&registry.GetHistogram("h", {9.0}), &h);  // bounds fixed by first
  EXPECT_EQ(h.bounds().size(), 2u);
}

TEST(Metrics, SnapshotCarriesAllKinds) {
  Registry registry;
  registry.GetCounter("requests_total", {{"method", "x"}}).Increment(3);
  registry.GetGauge("queue_depth").Set(2.5);
  Histogram& h = registry.GetHistogram("latency_seconds", {0.1, 1.0});
  h.Observe(0.05);
  h.Observe(10.0);

  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);

  const MetricSnapshot* c = FindMetric(snapshot, "requests_total{method=x}");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricSnapshot::Kind::kCounter);
  EXPECT_DOUBLE_EQ(c->value, 3.0);

  const MetricSnapshot* g = FindMetric(snapshot, "queue_depth");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->kind, MetricSnapshot::Kind::kGauge);
  EXPECT_DOUBLE_EQ(g->value, 2.5);

  const MetricSnapshot* hs = FindMetric(snapshot, "latency_seconds");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->kind, MetricSnapshot::Kind::kHistogram);
  EXPECT_EQ(hs->count, 2u);
  ASSERT_EQ(hs->buckets.size(), 3u);
  EXPECT_EQ(hs->buckets[0], 1u);
  EXPECT_EQ(hs->buckets[1], 0u);
  EXPECT_EQ(hs->buckets[2], 1u);

  EXPECT_EQ(FindMetric(snapshot, "no_such_metric"), nullptr);
}

TEST(Metrics, KindNamesRoundTrip) {
  for (const auto kind :
       {MetricSnapshot::Kind::kCounter, MetricSnapshot::Kind::kGauge,
        MetricSnapshot::Kind::kHistogram}) {
    EXPECT_EQ(MetricKindFromName(MetricKindName(kind)), kind);
  }
}

TEST(Metrics, ExponentialBoundsAscend) {
  const std::vector<double> bounds = ExponentialBounds(1e-6, 4.0, 13);
  ASSERT_EQ(bounds.size(), 13u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-6);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  EXPECT_EQ(LatencyBounds(), bounds);
}

// Minimal JSON well-formedness check: balanced {} / [] outside strings,
// legal escapes, nothing trailing. Enough to catch broken emitters
// without dragging in a parser dependency.
void ExpectWellFormedJson(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ASSERT_LT(i + 1, s.size()) << "dangling escape";
        ++i;
      } else if (c == '"') {
        in_string = false;
      } else {
        ASSERT_GE(static_cast<unsigned char>(c), 0x20u)
            << "raw control character in string at offset " << i;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '{');
        stack.pop_back();
        break;
      case ']':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '[');
        stack.pop_back();
        break;
      default: break;
    }
  }
  EXPECT_FALSE(in_string) << "unterminated string";
  EXPECT_TRUE(stack.empty()) << "unbalanced brackets";
}

TEST(Metrics, JsonSnapshotIsWellFormed) {
  Registry registry;
  registry.GetCounter("c", {{"quote", "a\"b\\c"}}).Increment();
  registry.GetHistogram("h", {1.0}).Observe(0.5);
  const std::string json = registry.JsonSnapshot();
  ExpectWellFormedJson(json);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
}

TEST(Metrics, TextSnapshotListsEveryMetric) {
  Registry registry;
  registry.GetCounter("c_total").Increment(5);
  registry.GetHistogram("h_seconds", {1.0}).Observe(0.5);
  const std::string text = registry.TextSnapshot();
  EXPECT_NE(text.find("c_total 5"), std::string::npos);
  EXPECT_NE(text.find("h_seconds count=1"), std::string::npos);
}

TEST(Trace, DisabledTracerRecordsNothingButSpansStillTime) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    Span span("work", tracer);
    span.End();
    EXPECT_GE(span.ElapsedSeconds(), 0.0);
  }
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Trace, NestedSpansProduceWellFormedChromeJson) {
  Tracer tracer;
  tracer.Enable();
  tracer.SetThreadTrack("server");
  {
    Span outer("ndp.select", tracer);
    {
      Span inner("ndp.read", tracer);
    }
  }
  EXPECT_EQ(tracer.event_count(), 2u);

  const std::string json = tracer.ChromeJson();
  ExpectWellFormedJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ndp.select\""), std::string::npos);
  EXPECT_NE(json.find("\"ndp.read\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"server\""), std::string::npos);

  // The inner span must nest inside the outer one on the timeline.
  const std::vector<DrainedEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 2u);
  const auto& inner = events[0];  // oldest first: inner ends first
  const auto& outer = events[1];
  EXPECT_EQ(inner.name, "ndp.read");
  EXPECT_EQ(outer.name, "ndp.select");
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.start_us + inner.dur_us, outer.start_us + outer.dur_us);
  EXPECT_EQ(inner.track, "server");
}

TEST(Trace, DrainClearsAndInjectMerges) {
  Tracer tracer;
  tracer.Enable();
  tracer.SetThreadTrack("client");
  { Span span("local", tracer); }
  ASSERT_EQ(tracer.event_count(), 1u);

  // Inject works even while disabled — the drain already decided to keep.
  tracer.Enable(false);
  tracer.Inject("server", "remote", 100, 50);
  EXPECT_EQ(tracer.event_count(), 2u);

  const std::vector<DrainedEvent> events = tracer.Drain();
  EXPECT_EQ(tracer.event_count(), 0u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "local");
  EXPECT_EQ(events[0].track, "client");
  EXPECT_EQ(events[1].name, "remote");
  EXPECT_EQ(events[1].track, "server");
  EXPECT_EQ(events[1].start_us, 100u);
  EXPECT_EQ(events[1].dur_us, 50u);
}

TEST(Trace, RingBufferKeepsNewestEvents) {
  Tracer tracer(4);
  tracer.Enable();
  for (int i = 0; i < 7; ++i) {
    tracer.Inject("t", "e" + std::to_string(i), static_cast<std::uint64_t>(i),
                  1);
  }
  EXPECT_EQ(tracer.event_count(), 4u);
  const std::vector<DrainedEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 4u);
  // Oldest three were overwritten; survivors come back oldest-first.
  EXPECT_EQ(events[0].name, "e3");
  EXPECT_EQ(events[3].name, "e6");
}

TEST(Trace, ConcurrentSpansAllRecorded) {
  Tracer tracer;
  tracer.Enable();
  std::vector<std::thread> threads;
  constexpr int kSpansPerThread = 200;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      tracer.SetThreadTrack("worker-" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span("op", tracer);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tracer.event_count(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  ExpectWellFormedJson(tracer.ChromeJson());
}

}  // namespace
}  // namespace vizndp::obs
