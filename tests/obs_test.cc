// Tests for the observability subsystem: metric registry concurrency and
// bucket semantics, quantiles and exemplars, snapshot export (text, JSON,
// Prometheus), trace-context propagation primitives, the event journal,
// clock-offset estimation, and the span/tracer pipeline down to
// well-formed Chrome-tracing JSON.
#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "obs/context.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"
#include "obs/windowed.h"

namespace vizndp::obs {
namespace {

constexpr int kThreads = 4;
constexpr int kPerThread = 25000;

TEST(Metrics, ConcurrentCounterSumsExactly) {
  Registry registry;
  Counter& counter = registry.GetCounter("test_total");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, CounterIncrementByN) {
  Counter counter;
  counter.Increment(10);
  counter.Increment(32);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Metrics, GaugeSetAndAdd) {
  Gauge gauge;
  gauge.Set(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
  gauge.Add(2.25);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.75);
  gauge.Add(-4.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -0.25);
}

TEST(Metrics, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(1.0);  // == bounds[0] -> bucket 0
  h.Observe(1.5);  // (1, 2]      -> bucket 1
  h.Observe(2.0);  // == bounds[1] -> bucket 1
  h.Observe(4.0);  // == bounds[2] -> bucket 2
  h.Observe(5.0);  // > bounds.back() -> overflow bucket
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 13.5);
}

TEST(Metrics, ConcurrentHistogramObservationsSumExactly) {
  // 1.0 is exactly representable, so the atomic double sum must be exact.
  Histogram h({0.5, 2.0});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  const auto n = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h.count(), n);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(n));
  EXPECT_EQ(h.bucket(0), 0u);
  EXPECT_EQ(h.bucket(1), n);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(Metrics, LabelsCanonicalizeOrderIndependently) {
  EXPECT_EQ(Registry::CanonicalName("m", {{"b", "2"}, {"a", "1"}}),
            "m{a=1,b=2}");
  EXPECT_EQ(Registry::CanonicalName("m", {}), "m");
  Registry registry;
  Counter& c1 = registry.GetCounter("m", {{"x", "1"}, {"y", "2"}});
  Counter& c2 = registry.GetCounter("m", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&c1, &c2);
  Counter& c3 = registry.GetCounter("m", {{"x", "1"}, {"y", "3"}});
  EXPECT_NE(&c1, &c3);
}

TEST(Metrics, HandlesAreStableAcrossLookups) {
  Registry registry;
  Counter& c = registry.GetCounter("c");
  c.Increment(7);
  EXPECT_EQ(&registry.GetCounter("c"), &c);
  Histogram& h = registry.GetHistogram("h", {1.0, 2.0});
  EXPECT_EQ(&registry.GetHistogram("h", {9.0}), &h);  // bounds fixed by first
  EXPECT_EQ(h.bounds().size(), 2u);
}

TEST(Metrics, SnapshotCarriesAllKinds) {
  Registry registry;
  registry.GetCounter("requests_total", {{"method", "x"}}).Increment(3);
  registry.GetGauge("queue_depth").Set(2.5);
  Histogram& h = registry.GetHistogram("latency_seconds", {0.1, 1.0});
  h.Observe(0.05);
  h.Observe(10.0);

  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);

  const MetricSnapshot* c = FindMetric(snapshot, "requests_total{method=x}");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricSnapshot::Kind::kCounter);
  EXPECT_DOUBLE_EQ(c->value, 3.0);

  const MetricSnapshot* g = FindMetric(snapshot, "queue_depth");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->kind, MetricSnapshot::Kind::kGauge);
  EXPECT_DOUBLE_EQ(g->value, 2.5);

  const MetricSnapshot* hs = FindMetric(snapshot, "latency_seconds");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->kind, MetricSnapshot::Kind::kHistogram);
  EXPECT_EQ(hs->count, 2u);
  ASSERT_EQ(hs->buckets.size(), 3u);
  EXPECT_EQ(hs->buckets[0], 1u);
  EXPECT_EQ(hs->buckets[1], 0u);
  EXPECT_EQ(hs->buckets[2], 1u);

  EXPECT_EQ(FindMetric(snapshot, "no_such_metric"), nullptr);
}

TEST(Metrics, KindNamesRoundTrip) {
  for (const auto kind :
       {MetricSnapshot::Kind::kCounter, MetricSnapshot::Kind::kGauge,
        MetricSnapshot::Kind::kHistogram}) {
    EXPECT_EQ(MetricKindFromName(MetricKindName(kind)), kind);
  }
}

TEST(Metrics, ExponentialBoundsAscend) {
  const std::vector<double> bounds = ExponentialBounds(1e-6, 4.0, 13);
  ASSERT_EQ(bounds.size(), 13u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-6);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  EXPECT_EQ(LatencyBounds(), bounds);
}

// Minimal JSON well-formedness check: balanced {} / [] outside strings,
// legal escapes, nothing trailing. Enough to catch broken emitters
// without dragging in a parser dependency.
void ExpectWellFormedJson(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ASSERT_LT(i + 1, s.size()) << "dangling escape";
        ++i;
      } else if (c == '"') {
        in_string = false;
      } else {
        ASSERT_GE(static_cast<unsigned char>(c), 0x20u)
            << "raw control character in string at offset " << i;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '{');
        stack.pop_back();
        break;
      case ']':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '[');
        stack.pop_back();
        break;
      default: break;
    }
  }
  EXPECT_FALSE(in_string) << "unterminated string";
  EXPECT_TRUE(stack.empty()) << "unbalanced brackets";
}

TEST(Metrics, JsonSnapshotIsWellFormed) {
  Registry registry;
  registry.GetCounter("c", {{"quote", "a\"b\\c"}}).Increment();
  registry.GetHistogram("h", {1.0}).Observe(0.5);
  const std::string json = registry.JsonSnapshot();
  ExpectWellFormedJson(json);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
}

TEST(Metrics, TextSnapshotListsEveryMetric) {
  Registry registry;
  registry.GetCounter("c_total").Increment(5);
  registry.GetHistogram("h_seconds", {1.0}).Observe(0.5);
  const std::string text = registry.TextSnapshot();
  EXPECT_NE(text.find("c_total 5"), std::string::npos);
  EXPECT_NE(text.find("h_seconds count=1"), std::string::npos);
}

TEST(Metrics, QuantilesInterpolateWithinBuckets) {
  // 10 observations in (10, 20]: cumulative curve is linear across one
  // bucket, so every quantile interpolates inside [10, 20].
  Registry registry;
  Histogram& rh = registry.GetHistogram("h", {10.0, 20.0, 40.0});
  for (int i = 0; i < 10; ++i) rh.Observe(15.0);
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  const MetricSnapshot* s = FindMetric(snapshot, "h");
  ASSERT_NE(s, nullptr);
  // rank = q*count lands q of the way through the only occupied bucket.
  EXPECT_DOUBLE_EQ(SnapshotQuantile(*s, 0.50), 15.0);
  EXPECT_DOUBLE_EQ(SnapshotQuantile(*s, 0.95), 19.5);
  EXPECT_DOUBLE_EQ(SnapshotQuantile(*s, 1.00), 20.0);
  EXPECT_DOUBLE_EQ(SnapshotQuantile(*s, 0.0), 10.0);  // frac 0 -> lower edge
}

TEST(Metrics, QuantileSpansMultipleBucketsAndOverflow) {
  Registry registry;
  Histogram& h = registry.GetHistogram("h", {1.0, 2.0});
  h.Observe(0.5);   // bucket 0
  h.Observe(1.5);   // bucket 1
  h.Observe(99.0);  // overflow
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  const MetricSnapshot* s = FindMetric(snapshot, "h");
  ASSERT_NE(s, nullptr);
  // p50: rank 1.5 -> second half of bucket 1 -> between 1 and 2.
  EXPECT_DOUBLE_EQ(SnapshotQuantile(*s, 0.50), 1.5);
  // p99 lands in the overflow bucket, which has no upper edge: the
  // estimate is pinned (known low) to the last finite bound.
  EXPECT_DOUBLE_EQ(SnapshotQuantile(*s, 0.99), 2.0);
  // Non-histograms and empty histograms quantile to 0.
  registry.GetCounter("c").Increment();
  const std::vector<MetricSnapshot> with_counter = registry.Snapshot();
  EXPECT_DOUBLE_EQ(SnapshotQuantile(*FindMetric(with_counter, "c"), 0.5), 0.0);
}

TEST(Metrics, ExemplarTracksMaxObservationWithTraceId) {
  Registry registry;
  Histogram& h = registry.GetHistogram("h", {1.0});
  const TraceContext slow = TraceContext::Mint();
  const TraceContext fast = TraceContext::Mint();
  {
    ScopedTraceContext scope(fast);
    h.Observe(0.1);
  }
  {
    ScopedTraceContext scope(slow);
    h.Observe(5.0);  // the worst observation so far
  }
  {
    ScopedTraceContext scope(fast);
    h.Observe(0.2);  // smaller: must not displace the exemplar
  }
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  const MetricSnapshot* s = FindMetric(snapshot, "h");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->exemplar_value, 5.0);
  EXPECT_EQ(s->exemplar_trace_id, slow.trace_id);
  // The text rendering links value@trace so a dashboard line jumps
  // straight to the offending trace.
  const std::string text = SnapshotToText({*s});
  EXPECT_NE(text.find("exemplar=5@" + TraceIdHex(slow.trace_id)),
            std::string::npos);
}

TEST(Metrics, ExemplarWithoutContextHasZeroTraceId) {
  Registry registry;
  Histogram& h = registry.GetHistogram("h", {1.0});
  h.Observe(3.0);
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  const MetricSnapshot* s = FindMetric(snapshot, "h");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->exemplar_value, 3.0);
  EXPECT_EQ(s->exemplar_trace_id, 0u);
}

TEST(Metrics, ParseCanonicalNameRoundTrips) {
  std::string base;
  Labels labels;
  ParseCanonicalName("m{a=1,b=2}", &base, &labels);
  EXPECT_EQ(base, "m");
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], (std::pair<std::string, std::string>{"a", "1"}));
  EXPECT_EQ(labels[1], (std::pair<std::string, std::string>{"b", "2"}));
  ParseCanonicalName("bare", &base, &labels);
  EXPECT_EQ(base, "bare");
  EXPECT_TRUE(labels.empty());
}

TEST(Metrics, PromExpositionHasCumulativeBucketsAndTypes) {
  Registry registry;
  registry.GetCounter("req_total", {{"method", "x"}}).Increment(3);
  registry.GetGauge("depth").Set(2.5);
  Histogram& h = registry.GetHistogram("lat_seconds", {1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(9.0);
  const std::string prom = SnapshotToProm(registry.Snapshot());
  EXPECT_NE(prom.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_NE(prom.find("req_total{method=\"x\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE lat_seconds histogram"), std::string::npos);
  // Buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(prom.find("lat_seconds_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("lat_seconds_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("lat_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("lat_seconds_sum 11"), std::string::npos);
  EXPECT_NE(prom.find("lat_seconds_count 3"), std::string::npos);
}

TEST(Metrics, FormatSnapshotDispatchesAndRejectsUnknown) {
  Registry registry;
  registry.GetCounter("c_total").Increment();
  const auto snapshot = registry.Snapshot();
  EXPECT_EQ(FormatSnapshot(snapshot, "text"), SnapshotToText(snapshot));
  EXPECT_EQ(FormatSnapshot(snapshot, ""), SnapshotToText(snapshot));
  EXPECT_EQ(FormatSnapshot(snapshot, "json"), SnapshotToJson(snapshot));
  EXPECT_EQ(FormatSnapshot(snapshot, "prom"), SnapshotToProm(snapshot));
  EXPECT_THROW(FormatSnapshot(snapshot, "xml"), Error);
}

TEST(Context, MintIsUniqueAndScopesNest) {
  const TraceContext a = TraceContext::Mint();
  const TraceContext b = TraceContext::Mint();
  EXPECT_TRUE(a.valid());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_TRUE(a.sampled);
  EXPECT_FALSE(TraceContext::Mint(/*sampled=*/false).sampled);

  EXPECT_FALSE(CurrentTraceContext().valid());
  {
    ScopedTraceContext outer(a);
    EXPECT_EQ(CurrentTraceContext().trace_id, a.trace_id);
    {
      ScopedTraceContext inner(b);
      EXPECT_EQ(CurrentTraceContext().trace_id, b.trace_id);
    }
    EXPECT_EQ(CurrentTraceContext().trace_id, a.trace_id);
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
}

TEST(Context, SpanIdsAreProcessUniqueAndNeverZero) {
  const std::uint64_t a = NextSpanId();
  const std::uint64_t b = NextSpanId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(Context, SpansFormParentChainUnderContext) {
  Tracer tracer;
  tracer.Enable();
  const TraceContext root = TraceContext::Mint();
  std::uint64_t outer_id = 0;
  {
    ScopedTraceContext scope(root);
    Span outer("outer", tracer);
    outer_id = outer.span_id();
    EXPECT_NE(outer_id, 0u);
    // The outer span installed itself as the current span.
    EXPECT_EQ(CurrentTraceContext().span_id, outer_id);
    Span inner("inner", tracer);
    EXPECT_NE(inner.span_id(), outer_id);
  }
  const std::vector<DrainedEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 2u);
  const DrainedEvent& inner = events[0];
  const DrainedEvent& outer = events[1];
  EXPECT_EQ(inner.trace_id, root.trace_id);
  EXPECT_EQ(outer.trace_id, root.trace_id);
  EXPECT_EQ(outer.parent_span_id, 0u);      // parented at the trace root
  EXPECT_EQ(inner.parent_span_id, outer_id);
}

TEST(EventLog, TagsEventsWithCurrentContextAndFilters) {
  EventLog log;
  const TraceContext a = TraceContext::Mint();
  const TraceContext b = TraceContext::Mint();
  log.Append("untagged");
  {
    ScopedTraceContext scope(a);
    log.Append("rpc.timeout", "method=ndp.select attempt=1");
  }
  {
    ScopedTraceContext scope(b);
    log.Append("rpc.retry");
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.Events().size(), 3u);
  const std::vector<LogEvent> only_a = log.Events(a.trace_id);
  ASSERT_EQ(only_a.size(), 1u);
  EXPECT_EQ(only_a[0].name, "rpc.timeout");
  EXPECT_EQ(only_a[0].detail, "method=ndp.select attempt=1");
  EXPECT_EQ(only_a[0].trace_id, a.trace_id);
  // Sequence numbers record global append order.
  const std::vector<LogEvent> all = log.Events();
  EXPECT_LT(all[0].seq, all[1].seq);
  EXPECT_LT(all[1].seq, all[2].seq);
  ExpectWellFormedJson(log.Json());
}

TEST(EventLog, RingDropsOldestAndClearWorks) {
  EventLog log(3);
  for (int i = 0; i < 5; ++i) log.Append("e" + std::to_string(i));
  const std::vector<LogEvent> events = log.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "e2");
  EXPECT_EQ(events[2].name, "e4");
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(TraceMerge, MidpointOffsetRecoversKnownSkew) {
  // Server clock runs 1000us ahead of the client's; both wire legs 50us.
  //   client sends at 100, server receives at 100+50+1000 = 1150,
  //   serves for 200, sends at 1350, client receives at 400.
  const ClockOffset off = ClockOffset::Estimate(100, 1150, 1350, 400);
  EXPECT_EQ(off.offset_us, -1000);
  EXPECT_EQ(off.wire_request_us, 50u);
  EXPECT_EQ(off.wire_reply_us, 50u);
  EXPECT_EQ(off.ToLocal(1150), 150u);
  EXPECT_EQ(off.ToLocal(1350), 350u);
}

TEST(TraceMerge, WireLegsClampNonNegative) {
  // Server residency longer than the round trip (asymmetric or lying
  // clocks): legs clamp to zero instead of going negative.
  const ClockOffset off = ClockOffset::Estimate(100, 0, 900, 150);
  EXPECT_EQ(off.wire_request_us + off.wire_reply_us, 0u);
}

TEST(TraceMerge, MergeRemoteAttemptAlignsSpansAndAddsWireLegs) {
  Tracer tracer;
  RemoteAttemptTrace attempt;
  attempt.t0_client_send_us = 1000;
  attempt.t3_client_recv_us = 1400;
  attempt.t1_server_recv_us = 51100;  // server clock +50000, legs 100us
  attempt.t2_server_send_us = 51300;
  attempt.has_server_times = true;
  DrainedEvent server_span;
  server_span.name = "ndp.select";
  server_span.track = "server";
  server_span.start_us = 51150;
  server_span.dur_us = 100;
  server_span.trace_id = 7;
  server_span.span_id = 42;
  server_span.parent_span_id = 9;
  attempt.server_events.push_back(server_span);

  const ClockOffset off = MergeRemoteAttempt(tracer, attempt, 7, 9);
  EXPECT_EQ(off.offset_us, -50000);

  std::vector<DrainedEvent> merged = tracer.Drain();
  ASSERT_EQ(merged.size(), 3u);
  std::sort(merged.begin(), merged.end(),
            [](const DrainedEvent& a, const DrainedEvent& b) {
              return a.start_us < b.start_us;
            });
  EXPECT_EQ(merged[0].name, "wire:request");
  EXPECT_EQ(merged[0].track, "wire");
  EXPECT_EQ(merged[0].start_us, 1000u);
  EXPECT_EQ(merged[0].dur_us, 100u);
  EXPECT_EQ(merged[0].parent_span_id, 9u);
  EXPECT_EQ(merged[1].name, "ndp.select");
  EXPECT_EQ(merged[1].track, "server");
  EXPECT_EQ(merged[1].start_us, 1150u);  // 51150 - 50000
  EXPECT_EQ(merged[1].span_id, 42u);
  EXPECT_EQ(merged[2].name, "wire:reply");
  EXPECT_EQ(merged[2].start_us, 1300u);
  EXPECT_EQ(merged[2].dur_us, 100u);
}

TEST(Trace, ExtractSubtreeMovesOnlyDescendants) {
  Tracer tracer;
  // Trace 7: span 1 (client attempt, stays) and its child 2 with
  // grandchild 3 (server side, extracted); span 50 belongs to another
  // branch and must stay. Trace 8 must never move.
  tracer.Inject("client", "attempt", 0, 100, {7, 1, 0});
  tracer.Inject("server", "dispatch", 10, 50, {7, 2, 1});
  tracer.Inject("server", "read", 20, 10, {7, 3, 2});
  tracer.Inject("client", "other", 0, 5, {7, 50, 0});
  tracer.Inject("client", "foreign", 0, 5, {8, 2, 1});
  tracer.Inject("untagged", "plain", 0, 1);

  std::vector<DrainedEvent> out = tracer.ExtractSubtree(7, 1);
  ASSERT_EQ(out.size(), 2u);
  std::sort(out.begin(), out.end(),
            [](const DrainedEvent& a, const DrainedEvent& b) {
              return a.span_id < b.span_id;
            });
  EXPECT_EQ(out[0].name, "dispatch");
  EXPECT_EQ(out[1].name, "read");
  // Everything else survives, including the root span itself.
  const std::vector<DrainedEvent> rest = tracer.Drain();
  ASSERT_EQ(rest.size(), 4u);
  for (const DrainedEvent& e : rest) {
    EXPECT_NE(e.name, "dispatch");
    EXPECT_NE(e.name, "read");
  }
}

TEST(Trace, DisabledTracerRecordsNothingButSpansStillTime) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    Span span("work", tracer);
    span.End();
    EXPECT_GE(span.ElapsedSeconds(), 0.0);
  }
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Trace, NestedSpansProduceWellFormedChromeJson) {
  Tracer tracer;
  tracer.Enable();
  tracer.SetThreadTrack("server");
  {
    Span outer("ndp.select", tracer);
    {
      Span inner("ndp.read", tracer);
    }
  }
  EXPECT_EQ(tracer.event_count(), 2u);

  const std::string json = tracer.ChromeJson();
  ExpectWellFormedJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ndp.select\""), std::string::npos);
  EXPECT_NE(json.find("\"ndp.read\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"server\""), std::string::npos);

  // The inner span must nest inside the outer one on the timeline.
  const std::vector<DrainedEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 2u);
  const auto& inner = events[0];  // oldest first: inner ends first
  const auto& outer = events[1];
  EXPECT_EQ(inner.name, "ndp.read");
  EXPECT_EQ(outer.name, "ndp.select");
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.start_us + inner.dur_us, outer.start_us + outer.dur_us);
  EXPECT_EQ(inner.track, "server");
}

TEST(Trace, DrainClearsAndInjectMerges) {
  Tracer tracer;
  tracer.Enable();
  tracer.SetThreadTrack("client");
  { Span span("local", tracer); }
  ASSERT_EQ(tracer.event_count(), 1u);

  // Inject works even while disabled — the drain already decided to keep.
  tracer.Enable(false);
  tracer.Inject("server", "remote", 100, 50);
  EXPECT_EQ(tracer.event_count(), 2u);

  const std::vector<DrainedEvent> events = tracer.Drain();
  EXPECT_EQ(tracer.event_count(), 0u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "local");
  EXPECT_EQ(events[0].track, "client");
  EXPECT_EQ(events[1].name, "remote");
  EXPECT_EQ(events[1].track, "server");
  EXPECT_EQ(events[1].start_us, 100u);
  EXPECT_EQ(events[1].dur_us, 50u);
}

TEST(Trace, RingBufferKeepsNewestEvents) {
  Tracer tracer(4);
  tracer.Enable();
  for (int i = 0; i < 7; ++i) {
    tracer.Inject("t", "e" + std::to_string(i), static_cast<std::uint64_t>(i),
                  1);
  }
  EXPECT_EQ(tracer.event_count(), 4u);
  const std::vector<DrainedEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 4u);
  // Oldest three were overwritten; survivors come back oldest-first.
  EXPECT_EQ(events[0].name, "e3");
  EXPECT_EQ(events[3].name, "e6");
}

// Long epochs so wall time never rotates underneath a test; rotation is
// driven explicitly with AdvanceEpochsForTest.
WindowedHistogramOptions FrozenClock(int epochs = 4) {
  WindowedHistogramOptions options;
  options.epochs = epochs;
  options.epoch_duration = std::chrono::milliseconds(3600 * 1000);
  return options;
}

TEST(Windowed, ObservationsLandInCumulativeAndWindow) {
  WindowedHistogram wh({1.0, 2.0, 4.0}, FrozenClock());
  wh.Observe(0.5);
  wh.Observe(3.0);
  EXPECT_EQ(wh.cumulative().count(), 2u);
  EXPECT_EQ(wh.WindowCount(), 2u);
  const MetricSnapshot snap = wh.WindowSnapshot("h_window");
  EXPECT_EQ(snap.name, "h_window");
  EXPECT_EQ(snap.count, 2u);
  EXPECT_GT(snap.window_seconds, 0.0);
}

TEST(Windowed, RotationExpiresOldEpochsButNotCumulative) {
  WindowedHistogram wh({1.0, 2.0, 4.0}, FrozenClock(4));
  wh.Observe(0.5);
  wh.Observe(0.5);
  EXPECT_EQ(wh.WindowCount(), 2u);
  // Advance past the whole ring: every observation ages out of the
  // window; the cumulative series never forgets.
  wh.AdvanceEpochsForTest(5);
  EXPECT_EQ(wh.WindowCount(), 0u);
  EXPECT_EQ(wh.cumulative().count(), 2u);
}

TEST(Windowed, WindowQuantileSeesOnlyRecentEpochs) {
  WindowedHistogram wh(ExponentialBounds(0.001, 2.0, 14), FrozenClock(4));
  // An old regime of slow observations...
  for (int i = 0; i < 100; ++i) wh.Observe(1.0);
  wh.AdvanceEpochsForTest(5);  // ...ages out completely...
  for (int i = 0; i < 100; ++i) wh.Observe(0.002);
  // ...so the window quantile reflects the new regime while the
  // cumulative quantile still averages both.
  EXPECT_LT(wh.WindowQuantile(0.99), 0.01);
  EXPECT_GT(HistogramQuantile(wh.cumulative(), 0.99), 0.5);
}

TEST(Windowed, PartialExpiryKeepsRecentEpochs) {
  WindowedHistogram wh({1.0, 2.0}, FrozenClock(4));
  wh.Observe(0.5);              // epoch E
  wh.AdvanceEpochsForTest(2);   // E+2: still inside the 4-epoch ring
  wh.Observe(0.5);
  EXPECT_EQ(wh.WindowCount(), 2u);
  wh.AdvanceEpochsForTest(2);   // E+4: first observation expires
  EXPECT_EQ(wh.WindowCount(), 1u);
}

TEST(Windowed, NameGainsWindowSuffixBeforeLabels) {
  EXPECT_EQ(WindowedName("ndp_select_seconds"), "ndp_select_seconds_window");
  EXPECT_EQ(WindowedName("h{a=b,c=d}"), "h_window{a=b,c=d}");
}

TEST(Windowed, ConcurrentObserveAndSnapshotIsExact) {
  // tsan exercise: observers race the rotating snapshot reader. The
  // cumulative count must be exact; the window is bounded by the total.
  WindowedHistogram wh(ExponentialBounds(1e-6, 4.0, 8), FrozenClock(8));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wh] {
      for (int i = 0; i < kPerThread; ++i) wh.Observe(1e-4);
    });
  }
  std::atomic<bool> done{false};
  std::thread reader([&wh, &done] {
    while (!done.load()) {
      (void)wh.WindowSnapshot();
      (void)wh.WindowQuantile(0.95);
    }
  });
  for (std::thread& t : threads) t.join();
  done.store(true);
  reader.join();
  EXPECT_EQ(wh.cumulative().count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_LE(wh.WindowCount(), wh.cumulative().count());
}

TEST(Windowed, RegistryExportsCumulativeAndWindowSeries) {
  Registry registry;
  WindowedHistogram& wh = registry.GetWindowedHistogram(
      "lat_seconds", {1.0, 2.0}, {{"m", "x"}}, FrozenClock());
  wh.Observe(0.5);
  const auto snap = registry.Snapshot();
  const MetricSnapshot* cumulative = FindMetric(snap, "lat_seconds{m=x}");
  const MetricSnapshot* window = FindMetric(snap, "lat_seconds_window{m=x}");
  ASSERT_NE(cumulative, nullptr);
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(cumulative->count, 1u);
  EXPECT_EQ(cumulative->window_seconds, 0.0);
  EXPECT_EQ(window->count, 1u);
  EXPECT_GT(window->window_seconds, 0.0);
  // Find-or-create returns the same ring.
  EXPECT_EQ(&registry.GetWindowedHistogram("lat_seconds", {1.0, 2.0},
                                           {{"m", "x"}}),
            &wh);
}

TEST(Metrics, SnapshotQuantileEdgeCasesArePinned) {
  MetricSnapshot h;
  h.kind = MetricSnapshot::Kind::kHistogram;
  h.bounds = {1.0, 2.0, 4.0};
  h.buckets = {2, 0, 2, 0};
  h.count = 4;
  // q clamps: negative, >1, and NaN all behave.
  EXPECT_DOUBLE_EQ(SnapshotQuantile(h, -3.0), SnapshotQuantile(h, 0.0));
  EXPECT_DOUBLE_EQ(SnapshotQuantile(h, 7.0), SnapshotQuantile(h, 1.0));
  EXPECT_DOUBLE_EQ(SnapshotQuantile(h, std::nan("")),
                   SnapshotQuantile(h, 0.0));
  // q=0 -> lower edge of first occupied bucket; q=1 -> upper edge of
  // the last occupied one.
  EXPECT_DOUBLE_EQ(SnapshotQuantile(h, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(SnapshotQuantile(h, 1.0), 4.0);
  // Empty and non-histogram snapshots return 0.
  MetricSnapshot empty = h;
  empty.buckets = {0, 0, 0, 0};
  empty.count = 0;
  EXPECT_DOUBLE_EQ(SnapshotQuantile(empty, 0.5), 0.0);
  MetricSnapshot counter;
  counter.kind = MetricSnapshot::Kind::kCounter;
  EXPECT_DOUBLE_EQ(SnapshotQuantile(counter, 0.5), 0.0);
  // Overflow mass reports the last finite bound (known-low estimate).
  MetricSnapshot overflow = h;
  overflow.buckets = {0, 0, 0, 10};
  overflow.count = 10;
  EXPECT_DOUBLE_EQ(SnapshotQuantile(overflow, 0.5), 4.0);
  // A hand-merged snapshot whose `count` disagrees with its buckets
  // ranks against the actual bucket mass, not the stale count.
  MetricSnapshot merged = h;
  merged.count = 400;  // lies
  EXPECT_DOUBLE_EQ(SnapshotQuantile(merged, 1.0), 4.0);
  // No finite bounds at all: only an overflow bucket.
  MetricSnapshot unbounded;
  unbounded.kind = MetricSnapshot::Kind::kHistogram;
  unbounded.buckets = {5};
  unbounded.count = 5;
  EXPECT_DOUBLE_EQ(SnapshotQuantile(unbounded, 0.5), 0.0);
}

TEST(Metrics, PromEmitsOneTypePerFamilyDespiteWindowInterleave) {
  // Sorted canonical order interleaves "foo_window{...}" between "foo"
  // and "foo{...}" ('_' < '{'), which a consecutive-dedup TYPE emitter
  // would double-emit. One # TYPE per family, exactly.
  Registry registry;
  registry.GetWindowedHistogram("foo", {1.0}, {}, FrozenClock()).Observe(0.5);
  registry.GetWindowedHistogram("foo", {1.0}, {{"m", "x"}}, FrozenClock())
      .Observe(0.5);
  const std::string prom = SnapshotToProm(registry.Snapshot());
  auto count_of = [&prom](const std::string& needle) {
    size_t n = 0;
    for (size_t at = prom.find(needle); at != std::string::npos;
         at = prom.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_of("# TYPE foo histogram"), 1u);
  EXPECT_EQ(count_of("# TYPE foo_window histogram"), 1u);
}

TEST(Metrics, StampSnapshotAppendsProcessClocks) {
  std::vector<MetricSnapshot> snap;
  StampSnapshot(snap);
  const MetricSnapshot* wall = FindMetric(snap, "process_wall_time_seconds");
  const MetricSnapshot* up = FindMetric(snap, "process_uptime_seconds");
  ASSERT_NE(wall, nullptr);
  ASSERT_NE(up, nullptr);
  EXPECT_GT(wall->value, 1e9);  // seconds since the Unix epoch
  EXPECT_GE(up->value, 0.0);
  const double up1 = ProcessUptimeSeconds();
  const double up2 = ProcessUptimeSeconds();
  EXPECT_GE(up2, up1);  // monotonic
}

TEST(Trace, ConcurrentSpansAllRecorded) {
  Tracer tracer;
  tracer.Enable();
  std::vector<std::thread> threads;
  constexpr int kSpansPerThread = 200;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      tracer.SetThreadTrack("worker-" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span("op", tracer);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tracer.event_count(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  ExpectWellFormedJson(tracer.ChromeJson());
}

}  // namespace
}  // namespace vizndp::obs
