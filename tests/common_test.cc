#include <gtest/gtest.h>

#include <thread>

#include "common/bytes.h"
#include "common/error.h"
#include "common/hexdump.h"
#include "common/sim_time.h"

namespace vizndp {
namespace {

TEST(Bytes, LittleEndianRoundTripU32) {
  Byte buf[4];
  StoreLE<std::uint32_t>(0xDEADBEEFu, buf);
  EXPECT_EQ(buf[0], 0xEF);
  EXPECT_EQ(buf[1], 0xBE);
  EXPECT_EQ(buf[2], 0xAD);
  EXPECT_EQ(buf[3], 0xDE);
  EXPECT_EQ(LoadLE<std::uint32_t>(buf), 0xDEADBEEFu);
}

TEST(Bytes, LittleEndianRoundTripSigned) {
  Byte buf[8];
  StoreLE<std::int64_t>(-123456789012345LL, buf);
  EXPECT_EQ(LoadLE<std::int64_t>(buf), -123456789012345LL);
  StoreLE<std::int16_t>(-2, buf);
  EXPECT_EQ(LoadLE<std::int16_t>(buf), -2);
}

TEST(Bytes, AppendLEGrowsBuffer) {
  Bytes out;
  AppendLE<std::uint16_t>(0x0102, out);
  AppendLE<std::uint32_t>(0x03040506u, out);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0], 0x02);
  EXPECT_EQ(out[1], 0x01);
  EXPECT_EQ(out[5], 0x03);
}

TEST(Bytes, AsBytesOnStringView) {
  const auto span = AsBytes(std::string_view("abc"));
  ASSERT_EQ(span.size(), 3u);
  EXPECT_EQ(span[0], 'a');
  EXPECT_EQ(AsStringView(span), "abc");
}

TEST(Bytes, VectorBytesRoundTrip) {
  const std::vector<float> values = {1.0f, -2.5f, 3.25f};
  const ByteSpan raw = AsBytes(values);
  ASSERT_EQ(raw.size(), 12u);
  const auto back = BytesTo<float>(raw);
  EXPECT_EQ(back, values);
}

TEST(Error, CheckMacroThrowsWithExpression) {
  try {
    VIZNDP_CHECK_MSG(1 == 2, "numbers disagree");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("numbers disagree"),
              std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchable) {
  EXPECT_THROW(throw DecodeError("x"), Error);
  EXPECT_THROW(throw IoError("x"), Error);
  EXPECT_THROW(throw RpcError("x"), Error);
}

TEST(HexDump, RendersOffsetsAndAscii) {
  const Bytes data = ToBytes("Hello, world! This is a hexdump test.");
  const std::string dump = HexDump(data);
  EXPECT_NE(dump.find("00000000"), std::string::npos);
  EXPECT_NE(dump.find("Hello, w"), std::string::npos);
  EXPECT_NE(dump.find("48 65 6c 6c"), std::string::npos);
}

TEST(HexDump, ElidesLongInput) {
  const Bytes data(1000, 0x41);
  const std::string dump = HexDump(data, 64);
  EXPECT_NE(dump.find("936 more bytes"), std::string::npos);
}

TEST(AtomicSeconds, AccumulatesAcrossThreads) {
  AtomicSeconds acc;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&acc] {
      for (int i = 0; i < 1000; ++i) acc.Add(0.001);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_NEAR(acc.Get(), 4.0, 1e-9);
  acc.Reset();
  EXPECT_EQ(acc.Get(), 0.0);
}

}  // namespace
}  // namespace vizndp
