#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "net/inproc.h"
#include "storage/file_gateway.h"
#include "storage/local_store.h"
#include "storage/memory_store.h"
#include "storage/remote_store.h"
#include "storage/store_rpc.h"

namespace vizndp::storage {
namespace {

namespace fs = std::filesystem;

// Conformance fixture: every ObjectStore behavior below runs against
// all three implementations — Memory, Local (filesystem), and Remote
// (a MemoryObjectStore served over in-proc store.* RPC) — so edge
// semantics (ranged reads past EOF, typed errors, overwrite
// visibility) cannot drift between backends. The Remote instantiation
// doubles as the wire-typing test: server-side IoError must arrive
// client-side as IoError, not a generic RpcError.
template <typename StoreT>
class ObjectStoreTest : public ::testing::Test {
 protected:
  ObjectStoreTest() {
    if constexpr (std::is_same_v<StoreT, LocalObjectStore>) {
      root_ = fs::temp_directory_path() /
              ("vizndp_store_test_" + std::to_string(::getpid()) + "_" +
               std::to_string(counter_++));
      store_ = std::make_unique<LocalObjectStore>(root_);
    } else if constexpr (std::is_same_v<StoreT, RemoteObjectStore>) {
      backing_ = std::make_unique<MemoryObjectStore>();
      server_ = std::make_unique<rpc::Server>();
      BindObjectStoreRpc(*server_, *backing_);
      net::TransportPair pair = net::CreateInProcPair();
      server_thread_ = std::thread(
          [srv = server_.get(),
           t = std::shared_ptr<net::Transport>(std::move(pair.a))] {
            srv->ServeTransport(*t);
          });
      store_ = std::make_unique<RemoteObjectStore>(
          std::make_shared<rpc::Client>(std::move(pair.b)));
    } else {
      store_ = std::make_unique<MemoryObjectStore>();
    }
    store_->CreateBucket("b");
  }

  ~ObjectStoreTest() override {
    store_.reset();  // closes the remote transport, if any
    if (server_thread_.joinable()) server_thread_.join();
    if (!root_.empty()) fs::remove_all(root_);
  }

  static inline int counter_ = 0;
  fs::path root_;
  std::unique_ptr<MemoryObjectStore> backing_;
  std::unique_ptr<rpc::Server> server_;
  std::thread server_thread_;
  std::unique_ptr<ObjectStore> store_;
};

using Backends =
    ::testing::Types<MemoryObjectStore, LocalObjectStore, RemoteObjectStore>;
TYPED_TEST_SUITE(ObjectStoreTest, Backends);

TYPED_TEST(ObjectStoreTest, PutGetRoundTrip) {
  const Bytes data = ToBytes("the object body");
  this->store_->Put("b", "k", data);
  EXPECT_EQ(this->store_->Get("b", "k"), data);
  EXPECT_TRUE(this->store_->Exists("b", "k"));
  EXPECT_EQ(this->store_->Stat("b", "k").size, data.size());
}

TYPED_TEST(ObjectStoreTest, OverwriteReplaces) {
  this->store_->Put("b", "k", ToBytes("v1"));
  this->store_->Put("b", "k", ToBytes("version-two"));
  EXPECT_EQ(this->store_->Get("b", "k"), ToBytes("version-two"));
}

TYPED_TEST(ObjectStoreTest, MissingObjectThrows) {
  EXPECT_THROW(this->store_->Get("b", "missing"), IoError);
  EXPECT_THROW(this->store_->Stat("b", "missing"), IoError);
  EXPECT_THROW(this->store_->Delete("b", "missing"), IoError);
  EXPECT_FALSE(this->store_->Exists("b", "missing"));
}

TYPED_TEST(ObjectStoreTest, MissingBucketThrows) {
  EXPECT_THROW(this->store_->Put("nobucket", "k", ToBytes("x")), Error);
  EXPECT_THROW(this->store_->List("nobucket", ""), IoError);
}

TYPED_TEST(ObjectStoreTest, RangedReads) {
  Bytes data(1000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<Byte>(i);
  this->store_->Put("b", "k", data);
  EXPECT_EQ(this->store_->GetRange("b", "k", 0, 10),
            Bytes(data.begin(), data.begin() + 10));
  EXPECT_EQ(this->store_->GetRange("b", "k", 990, 100),
            Bytes(data.begin() + 990, data.end()));
  EXPECT_EQ(this->store_->GetRange("b", "k", 2000, 10), Bytes{});
  EXPECT_EQ(this->store_->GetRange("b", "k", 500, 0), Bytes{});
}

TYPED_TEST(ObjectStoreTest, RangedReadSuffixAndEdges) {
  const Bytes data = ToBytes("0123456789");
  this->store_->Put("b", "k", data);
  // Suffix read starting exactly at the last byte.
  EXPECT_EQ(this->store_->GetRange("b", "k", 9, 100), ToBytes("9"));
  // Offset exactly at the end: empty, not an error.
  EXPECT_EQ(this->store_->GetRange("b", "k", 10, 1), Bytes{});
  // Zero-length read at offset 0 of a non-empty object.
  EXPECT_EQ(this->store_->GetRange("b", "k", 0, 0), Bytes{});
  // Full-object range equals Get.
  EXPECT_EQ(this->store_->GetRange("b", "k", 0, data.size()), data);
}

TYPED_TEST(ObjectStoreTest, OverwriteShrinksVisibleSize) {
  this->store_->Put("b", "k", ToBytes("a long first version"));
  this->store_->Put("b", "k", ToBytes("v2"));
  EXPECT_EQ(this->store_->Stat("b", "k").size, 2u);
  // The old tail must not bleed through a ranged read.
  EXPECT_EQ(this->store_->GetRange("b", "k", 2, 100), Bytes{});
}

TYPED_TEST(ObjectStoreTest, DeleteRemoves) {
  this->store_->Put("b", "k", ToBytes("x"));
  this->store_->Delete("b", "k");
  EXPECT_FALSE(this->store_->Exists("b", "k"));
}

TYPED_TEST(ObjectStoreTest, DeleteThenGetThrowsTyped) {
  this->store_->Put("b", "k", ToBytes("x"));
  this->store_->Delete("b", "k");
  // A permanent IoError on every read form — never a transient (a retry
  // ladder must not spin on a deleted object) and, for the remote
  // backend, never an untyped RpcError.
  EXPECT_THROW(this->store_->Get("b", "k"), IoError);
  EXPECT_THROW(this->store_->GetRange("b", "k", 0, 1), IoError);
  EXPECT_THROW(this->store_->Stat("b", "k"), IoError);
  try {
    this->store_->Get("b", "k");
    FAIL() << "expected IoError";
  } catch (const TransientIoError&) {
    FAIL() << "missing object must be permanent, not transient";
  } catch (const IoError&) {
  }
}

TYPED_TEST(ObjectStoreTest, BucketExistsReflectsCreation) {
  EXPECT_TRUE(this->store_->BucketExists("b"));
  EXPECT_FALSE(this->store_->BucketExists("nope"));
  this->store_->CreateBucket("nope");
  EXPECT_TRUE(this->store_->BucketExists("nope"));
}

TYPED_TEST(ObjectStoreTest, ListWithPrefix) {
  this->store_->Put("b", "ts0/v02", ToBytes("a"));
  this->store_->Put("b", "ts0/v03", ToBytes("bb"));
  this->store_->Put("b", "ts1/v02", ToBytes("ccc"));
  const auto all = this->store_->List("b", "");
  EXPECT_EQ(all.size(), 3u);
  const auto ts0 = this->store_->List("b", "ts0/");
  ASSERT_EQ(ts0.size(), 2u);
  EXPECT_EQ(ts0[0].key, "ts0/v02");
  EXPECT_EQ(ts0[1].key, "ts0/v03");
  EXPECT_EQ(ts0[1].size, 2u);
}

TYPED_TEST(ObjectStoreTest, EmptyObject) {
  this->store_->Put("b", "empty", ByteSpan{});
  EXPECT_EQ(this->store_->Get("b", "empty"), Bytes{});
  EXPECT_EQ(this->store_->Stat("b", "empty").size, 0u);
}

TEST(LocalStore, RejectsPathTraversal) {
  const fs::path root = fs::temp_directory_path() / "vizndp_traversal_test";
  LocalObjectStore store(root);
  store.CreateBucket("b");
  EXPECT_THROW(store.Put("b", "../escape", ToBytes("x")), Error);
  EXPECT_THROW(store.Put("b", "a/../../b", ToBytes("x")), Error);
  EXPECT_THROW(store.Put("b", "/abs", ToBytes("x")), Error);
  EXPECT_THROW(store.Put("..", "k", ToBytes("x")), Error);
  EXPECT_THROW(store.Get("b", ""), Error);
  fs::remove_all(root);
}

TEST(LocalStore, NestedKeysCreateDirectories) {
  const fs::path root = fs::temp_directory_path() / "vizndp_nested_test";
  LocalObjectStore store(root);
  store.CreateBucket("b");
  store.Put("b", "deep/nested/key.vnd", ToBytes("data"));
  EXPECT_EQ(store.Get("b", "deep/nested/key.vnd"), ToBytes("data"));
  const auto listed = store.List("b", "deep/");
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].key, "deep/nested/key.vnd");
  fs::remove_all(root);
}

TEST(SsdModel, ChargesReadsAndWrites) {
  SsdModel ssd({.read_bandwidth_bytes_per_sec = 1000.0,
                .write_bandwidth_bytes_per_sec = 500.0,
                .access_latency_sec = 0.25});
  MemoryObjectStore store(&ssd);
  store.CreateBucket("b");
  store.Put("b", "k", Bytes(1000));
  EXPECT_NEAR(ssd.virtual_seconds(), 0.25 + 2.0, 1e-9);
  (void)store.Get("b", "k");
  EXPECT_NEAR(ssd.virtual_seconds(), 0.25 + 2.0 + 0.25 + 1.0, 1e-9);
  EXPECT_EQ(ssd.bytes_read(), 1000u);
  EXPECT_EQ(ssd.bytes_written(), 1000u);
}

TEST(SsdModel, RangedReadChargesOnlyRange) {
  SsdModel ssd({.read_bandwidth_bytes_per_sec = 1000.0,
                .write_bandwidth_bytes_per_sec = 1000.0,
                .access_latency_sec = 0.0});
  MemoryObjectStore store(&ssd);
  store.CreateBucket("b");
  store.Put("b", "k", Bytes(1000));
  ssd.Reset();
  (void)store.GetRange("b", "k", 100, 50);
  EXPECT_EQ(ssd.bytes_read(), 50u);
}

struct RemoteFixture {
  MemoryObjectStore backing;
  rpc::Server server;
  std::thread server_thread;
  std::unique_ptr<RemoteObjectStore> remote;

  explicit RemoteFixture(net::SimulatedLink* link = nullptr) {
    backing.CreateBucket("b");
    BindObjectStoreRpc(server, backing);
    net::TransportPair pair = net::CreateInProcPair(link);
    server_thread = std::thread(
        [this, t = std::shared_ptr<net::Transport>(std::move(pair.a))] {
          server.ServeTransport(*t);
        });
    remote = std::make_unique<RemoteObjectStore>(
        std::make_shared<rpc::Client>(std::move(pair.b)));
  }

  ~RemoteFixture() {
    remote.reset();
    server_thread.join();
  }
};

TEST(RemoteStore, MirrorsBackingStore) {
  RemoteFixture fx;
  const Bytes data = ToBytes("remote body bytes");
  fx.remote->Put("b", "k", data);
  EXPECT_EQ(fx.backing.Get("b", "k"), data);  // really landed server-side
  EXPECT_EQ(fx.remote->Get("b", "k"), data);
  EXPECT_EQ(fx.remote->GetRange("b", "k", 7, 4), ToBytes("body"));
  EXPECT_EQ(fx.remote->Stat("b", "k").size, data.size());
  EXPECT_TRUE(fx.remote->Exists("b", "k"));
  fx.remote->Put("b", "k2", ToBytes("x"));
  EXPECT_EQ(fx.remote->List("b", "").size(), 2u);
  fx.remote->Delete("b", "k2");
  EXPECT_FALSE(fx.remote->Exists("b", "k2"));
}

TEST(RemoteStore, ErrorsCrossTheWire) {
  RemoteFixture fx;
  // Server-side IoError arrives typed (the "!io: " wire prefix), so the
  // client can tell "object is gone" (permanent, don't retry) from a
  // generic handler failure.
  EXPECT_THROW(fx.remote->Get("b", "missing"), IoError);
  try {
    fx.remote->Get("b", "missing");
    FAIL() << "expected IoError";
  } catch (const TransientIoError&) {
    FAIL() << "missing object must cross the wire as permanent";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
  }
}

TEST(RemoteStore, BucketExistsCrossesTheWire) {
  RemoteFixture fx;
  EXPECT_TRUE(fx.remote->BucketExists("b"));
  EXPECT_FALSE(fx.remote->BucketExists("never-created"));
}

TEST(RemoteStore, BucketExistsUnknownMethodMapsToTrue) {
  // An old server without store.exists_bucket answers "unknown method";
  // the client maps that to the old permissive behavior (assume the
  // bucket is there) instead of failing the caller.
  MemoryObjectStore backing;
  backing.CreateBucket("b");
  rpc::Server server;
  server.Bind(kRpcStoreGet, [&backing](const msgpack::Array& p) {
    return msgpack::Value(
        backing.Get(p.at(0).As<std::string>(), p.at(1).As<std::string>()));
  });  // deliberately NOT BindObjectStoreRpc: simulates a pre-upgrade peer
  net::TransportPair pair = net::CreateInProcPair();
  std::thread server_thread(
      [&server, t = std::shared_ptr<net::Transport>(std::move(pair.a))] {
        server.ServeTransport(*t);
      });
  {
    RemoteObjectStore remote(
        std::make_shared<rpc::Client>(std::move(pair.b)));
    EXPECT_TRUE(remote.BucketExists("b"));
    EXPECT_TRUE(remote.BucketExists("anything-at-all"));
  }
  server_thread.join();
}

TEST(RemoteStore, GetMovesFullObjectAcrossLink) {
  net::SimulatedLink link;
  RemoteFixture fx(&link);
  Bytes big(1 << 20, 0x5A);
  fx.backing.Put("b", "big", big);
  link.Reset();
  (void)fx.remote->Get("b", "big");
  EXPECT_GT(link.bytes_transferred(), big.size());
  EXPECT_LT(link.bytes_transferred(), big.size() + 1024);
}

TEST(FileGateway, FileViewOverStore) {
  MemoryObjectStore store;
  store.CreateBucket("data");
  Bytes blob(256);
  for (size_t i = 0; i < blob.size(); ++i) blob[i] = static_cast<Byte>(i);
  store.Put("data", "f.vnd", blob);

  FileGateway gateway(store, "data");
  EXPECT_TRUE(gateway.Exists("f.vnd"));
  EXPECT_FALSE(gateway.Exists("g.vnd"));
  const GatewayFile file = gateway.Open("f.vnd");
  EXPECT_EQ(file.size(), blob.size());
  EXPECT_EQ(file.ReadAll(), blob);
  EXPECT_EQ(file.ReadAt(10, 5), Bytes(blob.begin() + 10, blob.begin() + 15));
  EXPECT_THROW(gateway.Open("g.vnd"), IoError);
}

}  // namespace
}  // namespace vizndp::storage
