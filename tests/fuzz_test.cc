// Hostile-input fuzzing as a regression test: every byte-parsing decoder
// survives a fixed-seed mutation storm (typed rejection, never a crash),
// the fuzzer itself is deterministic, and the checked-in corpus of
// previously-interesting inputs replays cleanly.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "testing/fuzz.h"

#ifndef VIZNDP_FUZZ_CORPUS_DIR
#error "build must define VIZNDP_FUZZ_CORPUS_DIR"
#endif

namespace vizndp::testing {
namespace {

constexpr std::uint64_t kSeed = 20260805;
constexpr std::uint64_t kIters = 1500;

TEST(Fuzz, AllTargetsSurviveMutationStorm) {
  for (const FuzzTarget& target : BuiltinFuzzTargets()) {
    SCOPED_TRACE(target.name);
    // Throws if the unmutated seed (iteration 0) is rejected — that means
    // the target is fuzzing the wrong decoder or the decoder broke.
    const FuzzReport report = RunFuzzTarget(target, kSeed, kIters);
    EXPECT_EQ(report.iterations, kIters);
    EXPECT_EQ(report.accepted + report.rejected, report.iterations);
    // A mutation storm that never produces a rejection means the target
    // is accepting garbage (or the mutator broke).
    EXPECT_GT(report.rejected, 0u);
  }
}

TEST(Fuzz, SameSeedReplaysIdentically) {
  const std::vector<FuzzTarget> targets = BuiltinFuzzTargets();
  ASSERT_FALSE(targets.empty());
  const FuzzTarget& target = targets.front();
  const FuzzReport a = RunFuzzTarget(target, 42, 300);
  const FuzzReport b = RunFuzzTarget(target, 42, 300);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  const FuzzReport c = RunFuzzTarget(target, 43, 300);
  // Different seed, different mutation stream (overwhelmingly likely to
  // change at least one verdict over 300 iterations).
  EXPECT_TRUE(c.accepted != a.accepted || c.rejected == a.rejected);
}

TEST(Fuzz, MutateBytesIsDeterministic) {
  Bytes seed(256);
  for (size_t i = 0; i < seed.size(); ++i) seed[i] = static_cast<Byte>(i);
  FuzzRng r1(7), r2(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(MutateBytes(seed, r1), MutateBytes(seed, r2));
  }
  // And actually mutates: across many rounds at least one output differs
  // from the input.
  FuzzRng r3(7);
  bool changed = false;
  for (int i = 0; i < 50 && !changed; ++i) {
    changed = MutateBytes(seed, r3) != seed;
  }
  EXPECT_TRUE(changed);
}

TEST(Fuzz, CorpusReplaysWithoutCrashing) {
  const std::filesystem::path dir(VIZNDP_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;

  const std::vector<FuzzTarget> targets = BuiltinFuzzTargets();
  size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".bin") continue;
    // Files are named <target>_<what>.bin.
    const std::string stem = entry.path().stem().string();
    const std::string target_name = stem.substr(0, stem.find('_'));
    const FuzzTarget* target = nullptr;
    for (const FuzzTarget& t : targets) {
      if (t.name == target_name) target = &t;
    }
    ASSERT_NE(target, nullptr)
        << "corpus file names unknown target: " << entry.path();

    std::ifstream in(entry.path(), std::ios::binary);
    ASSERT_TRUE(in) << entry.path();
    Bytes data((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());

    SCOPED_TRACE(entry.path().string());
    // The corpus is hostile by construction: the decoder must reject each
    // input with a typed error, not crash, hang, or accept it.
    EXPECT_FALSE(RunFuzzInput(*target, data));
    ++replayed;
  }
  // Guards against the corpus silently not being found/copied.
  EXPECT_GE(replayed, 10u);
}

}  // namespace
}  // namespace vizndp::testing
