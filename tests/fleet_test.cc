// The fleet observability plane's contract: the snapshot merge is a
// commutative monoid (fleet views don't depend on scrape order), the
// SLO tracker fires exactly one audited burn-alert pair per incident,
// and a FleetScraper over a live ClusterTestbed reacts to a slow or
// dead node within one window — with every renderer exposing the same
// numbers it published.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "bench_util/testbed.h"
#include "cluster/fleet_scraper.h"
#include "cluster/sharded_client.h"
#include "io/vnd_format.h"
#include "net/fault.h"
#include "obs/event_log.h"
#include "obs/merge.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/windowed.h"
#include "sim/impact.h"

namespace vizndp::cluster {
namespace {

using bench_util::ClusterTestbed;
using bench_util::ClusterTestbedConfig;
using obs::MetricSnapshot;

// ---------------------------------------------------------------------------
// Merge algebra (obs/merge.h): counter-sum, gauge-policy, bucket-wise
// histogram add — associative, permutation-invariant, empty = identity.

MetricSnapshot Counter(const std::string& name, double value) {
  MetricSnapshot m;
  m.name = name;
  m.kind = MetricSnapshot::Kind::kCounter;
  m.value = value;
  return m;
}

MetricSnapshot Gauge(const std::string& name, double value) {
  MetricSnapshot m;
  m.name = name;
  m.kind = MetricSnapshot::Kind::kGauge;
  m.value = value;
  return m;
}

MetricSnapshot Hist(const std::string& name, std::vector<double> bounds,
                    std::vector<std::uint64_t> buckets, double sum,
                    double exemplar = 0, double window_s = 0) {
  MetricSnapshot m;
  m.name = name;
  m.kind = MetricSnapshot::Kind::kHistogram;
  m.bounds = std::move(bounds);
  m.buckets = std::move(buckets);
  m.count = 0;
  for (const std::uint64_t b : m.buckets) m.count += b;
  m.value = sum;
  m.exemplar_value = exemplar;
  m.window_seconds = window_s;
  return m;
}

const MetricSnapshot* Find(const std::vector<MetricSnapshot>& snap,
                           const std::string& name) {
  return obs::FindMetric(snap, name);
}

TEST(Merge, CountersSumAcrossSources) {
  const auto merged = obs::MergeSnapshots(
      {{Counter("reqs_total", 3)}, {Counter("reqs_total", 4)}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].kind, MetricSnapshot::Kind::kCounter);
  EXPECT_DOUBLE_EQ(merged[0].value, 7.0);
}

TEST(Merge, GaugePolicyPerBaseName) {
  obs::MergeOptions options;
  options.gauge_policy = [](const std::string& base) {
    if (base == "hi") return obs::GaugeMergePolicy::kMax;
    if (base == "lo") return obs::GaugeMergePolicy::kMin;
    return obs::GaugeMergePolicy::kSum;
  };
  const auto merged = obs::MergeSnapshots(
      {{Gauge("hi", 2), Gauge("lo", 2), Gauge("occ", 2)},
       {Gauge("hi", 9), Gauge("lo", 9), Gauge("occ", 9)}},
      options);
  EXPECT_DOUBLE_EQ(Find(merged, "hi")->value, 9.0);
  EXPECT_DOUBLE_EQ(Find(merged, "lo")->value, 2.0);
  EXPECT_DOUBLE_EQ(Find(merged, "occ")->value, 11.0);
  // The policy keys on the *base*, labels stripped.
  const auto labeled = obs::MergeSnapshots(
      {{Gauge("hi{n=0}", 2)}, {Gauge("hi{n=0}", 9)}}, options);
  EXPECT_DOUBLE_EQ(labeled[0].value, 9.0);
}

TEST(Merge, DefaultFleetPolicySumsOccupancyMaxesClocks) {
  EXPECT_EQ(obs::DefaultFleetGaugePolicy("rpc_inflight"),
            obs::GaugeMergePolicy::kSum);
  EXPECT_EQ(obs::DefaultFleetGaugePolicy("process_wall_time_seconds"),
            obs::GaugeMergePolicy::kMax);
  EXPECT_EQ(obs::DefaultFleetGaugePolicy("process_uptime_seconds"),
            obs::GaugeMergePolicy::kMax);
  EXPECT_EQ(obs::DefaultFleetGaugePolicy("cluster_view_epoch"),
            obs::GaugeMergePolicy::kMax);
}

TEST(Merge, HistogramsAddBucketwiseKeepWorstExemplarAndMaxWindow) {
  const auto merged = obs::MergeSnapshots(
      {{Hist("lat", {1, 2}, {1, 2, 3}, 10.0, /*exemplar=*/0.5,
             /*window_s=*/5)},
       {Hist("lat", {1, 2}, {4, 0, 1}, 4.0, /*exemplar=*/1.5,
             /*window_s=*/10)}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].buckets, (std::vector<std::uint64_t>{5, 2, 4}));
  EXPECT_EQ(merged[0].count, 11u);
  EXPECT_DOUBLE_EQ(merged[0].value, 14.0);
  EXPECT_DOUBLE_EQ(merged[0].exemplar_value, 1.5);
  EXPECT_DOUBLE_EQ(merged[0].window_seconds, 10.0);
}

TEST(Merge, BoundsMismatchKeepsFirstShapeDropsStranger) {
  const auto merged = obs::MergeSnapshots(
      {{Hist("lat", {1, 2}, {1, 1, 1}, 3.0)},
       {Hist("lat", {1, 4}, {9, 9, 9}, 27.0)}});
  ASSERT_EQ(merged.size(), 1u);
  // Mixed-version fleet: the conflicting series is dropped, not thrown.
  EXPECT_EQ(merged[0].bounds, (std::vector<double>{1, 2}));
  EXPECT_EQ(merged[0].count, 3u);
}

TEST(Merge, KindConflictKeepsFirstMergedKind) {
  const auto merged =
      obs::MergeSnapshots({{Counter("x", 1)}, {Gauge("x", 100)}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].kind, MetricSnapshot::Kind::kCounter);
}

// One pseudo-random source: a few counters, gauges, and histograms over
// a small shared name pool so collisions actually happen.
std::vector<MetricSnapshot> RandomSource(std::mt19937& rng) {
  std::uniform_int_distribution<int> pick(0, 3);
  std::uniform_real_distribution<double> val(0.0, 100.0);
  std::uniform_int_distribution<std::uint64_t> bucket(0, 50);
  std::vector<MetricSnapshot> src;
  for (int i = 0; i < 3; ++i) {
    src.push_back(Counter("c" + std::to_string(pick(rng)) + "_total",
                          std::floor(val(rng))));
    src.push_back(Gauge("g" + std::to_string(pick(rng)), val(rng)));
    src.push_back(Hist("h" + std::to_string(pick(rng)), {1, 2, 4},
                       {bucket(rng), bucket(rng), bucket(rng), bucket(rng)},
                       val(rng), val(rng), 10.0));
  }
  return src;
}

bool SnapshotsEqual(const std::vector<MetricSnapshot>& a,
                    const std::vector<MetricSnapshot>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].kind != b[i].kind ||
        std::abs(a[i].value - b[i].value) > 1e-9 ||
        a[i].count != b[i].count || a[i].bounds != b[i].bounds ||
        a[i].buckets != b[i].buckets ||
        std::abs(a[i].exemplar_value - b[i].exemplar_value) > 1e-9 ||
        std::abs(a[i].window_seconds - b[i].window_seconds) > 1e-9) {
      return false;
    }
  }
  return true;
}

TEST(Merge, MonoidProperties) {
  obs::MergeOptions fleet;
  fleet.gauge_policy = obs::DefaultFleetGaugePolicy;
  std::mt19937 rng(20240817);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = RandomSource(rng);
    const auto b = RandomSource(rng);
    const auto c = RandomSource(rng);
    // Associativity: merge(merge(A,B),C) == merge(A,B,C).
    const auto ab = obs::MergeSnapshots({a, b}, fleet);
    const auto ab_c = obs::MergeSnapshots({ab, c}, fleet);
    const auto abc = obs::MergeSnapshots({a, b, c}, fleet);
    EXPECT_TRUE(SnapshotsEqual(ab_c, abc)) << "trial " << trial;
    // Permutation invariance (sorted-by-name output).
    const auto cba = obs::MergeSnapshots({c, b, a}, fleet);
    EXPECT_TRUE(SnapshotsEqual(abc, cba)) << "trial " << trial;
    // Empty snapshot is the identity.
    const auto a_e = obs::MergeSnapshots({a, {}}, fleet);
    const auto a_sorted = obs::MergeSnapshots({a}, fleet);
    EXPECT_TRUE(SnapshotsEqual(a_e, a_sorted)) << "trial " << trial;
  }
}

TEST(Merge, WithLabelFoldsIntoCanonicalNames) {
  std::vector<MetricSnapshot> snap = {Counter("x_total", 1),
                                      Counter("x_total{a=b}", 2)};
  const auto labeled = obs::WithLabel(std::move(snap), "node", "2");
  EXPECT_EQ(labeled[0].name, "x_total{node=2}");
  EXPECT_EQ(labeled[1].name, "x_total{a=b,node=2}");
}

// ---------------------------------------------------------------------------
// SloTracker: deterministic burn-rate alerting against a private
// Registry + EventLog (the global journal never sees these).

obs::SloObjective TightLatencyObjective() {
  obs::SloObjective o;
  o.name = "lat";
  o.latency_histogram = "fetch_seconds";
  o.latency_threshold_s = 1.0;  // observations over 1s are bad
  o.max_bad_ratio = 0.01;
  o.short_window_s = 10;
  o.long_window_s = 40;
  o.budget_window_s = 100;
  o.min_samples = 4;
  return o;
}

// Cumulative snapshot with `good` fast and `bad` slow observations.
std::vector<MetricSnapshot> FetchSnapshot(std::uint64_t good,
                                          std::uint64_t bad) {
  return {Hist("fetch_seconds", {1.0}, {good, bad},
               0.5 * static_cast<double>(good) +
                   2.0 * static_cast<double>(bad))};
}

TEST(Slo, LatencyBurnFiresOneAuditedPairThenClears) {
  obs::Registry registry;
  obs::EventLog journal;
  obs::SloTracker tracker({TightLatencyObjective()}, &registry, &journal);

  // Healthy traffic: no alert.
  double t = 0;
  tracker.Evaluate(FetchSnapshot(0, 0), t);
  tracker.Evaluate(FetchSnapshot(100, 0), t += 1);
  ASSERT_EQ(tracker.status().size(), 1u);
  EXPECT_FALSE(tracker.status()[0].alerting);

  // An outage: every new observation is bad, across several sweeps.
  // The alert must fire exactly once (edge-triggered) no matter how
  // many hot evaluations follow.
  tracker.Evaluate(FetchSnapshot(100, 50), t += 1);
  tracker.Evaluate(FetchSnapshot(100, 90), t += 1);
  tracker.Evaluate(FetchSnapshot(100, 120), t += 1);
  EXPECT_TRUE(tracker.status()[0].alerting);
  EXPECT_GT(tracker.status()[0].burn_short, 1.0);
  EXPECT_LT(tracker.status()[0].budget_remaining, 1.0);
  EXPECT_EQ(
      registry.GetCounter("slo_burn_alert_total", {{"slo", "lat"}}).value(),
      1u);
  EXPECT_EQ(journal.CountSince("slo.burn_alert", 0), 1u);

  // Recovery: good-only traffic ages the burst out of the short window.
  // The clear fires exactly once, audited the same way.
  for (int i = 0; i < 30; ++i) {
    tracker.Evaluate(FetchSnapshot(120 + 100ull * (i + 1ull), 120), t += 1);
  }
  EXPECT_FALSE(tracker.status()[0].alerting);
  EXPECT_EQ(
      registry.GetCounter("slo_burn_clear_total", {{"slo", "lat"}}).value(),
      1u);
  EXPECT_EQ(journal.CountSince("slo.burn_clear", 0), 1u);
  EXPECT_EQ(
      registry.GetCounter("slo_burn_alert_total", {{"slo", "lat"}}).value(),
      1u);
}

TEST(Slo, MinSamplesGateBlocksNoTrafficAlerts) {
  obs::SloObjective o = TightLatencyObjective();
  o.min_samples = 50;
  obs::Registry registry;
  obs::EventLog journal;
  obs::SloTracker tracker({o}, &registry, &journal);
  tracker.Evaluate(FetchSnapshot(0, 0), 0);
  // 10 events, all bad — hot burn, but under the sample gate.
  tracker.Evaluate(FetchSnapshot(0, 10), 1);
  tracker.Evaluate(FetchSnapshot(0, 20), 2);
  EXPECT_FALSE(tracker.status()[0].alerting);
  EXPECT_EQ(journal.CountSince("slo.burn_alert", 0), 0u);
}

TEST(Slo, CounterResetClampsToZeroDelta) {
  obs::Registry registry;
  obs::EventLog journal;
  obs::SloObjective o;
  o.name = "avail";
  o.error_counter = "errs_total";
  o.total_counter = "reqs_total";
  o.max_bad_ratio = 0.1;
  o.short_window_s = 10;
  o.long_window_s = 40;
  o.budget_window_s = 100;
  obs::SloTracker tracker({o}, &registry, &journal);
  auto snap = [](double errs, double reqs) {
    return std::vector<MetricSnapshot>{Counter("errs_total", errs),
                                       Counter("reqs_total", reqs)};
  };
  tracker.Evaluate(snap(50, 1000), 0);
  // A node restart drops the cumulative counters. The negative delta
  // must clamp to zero — not register as a giant (or negative) burst.
  tracker.Evaluate(snap(0, 10), 1);
  EXPECT_FALSE(tracker.status()[0].alerting);
  EXPECT_GE(tracker.status()[0].bad_ratio_short, 0.0);
  tracker.Evaluate(snap(0, 500), 2);
  EXPECT_FALSE(tracker.status()[0].alerting);
}

TEST(Slo, ErrorObjectiveCountsFamilySumsAcrossLabels) {
  obs::SloObjective o;
  o.name = "avail";
  o.error_counter = "errs_total";
  o.total_counter = "reqs_total";
  double bad = 0, total = 0;
  obs::SloEventCounts(o,
                      {Counter("errs_total{node=0}", 2),
                       Counter("errs_total{node=1}", 3),
                       Counter("reqs_total{node=0}", 50),
                       Counter("reqs_total{node=1}", 50)},
                      &bad, &total);
  EXPECT_DOUBLE_EQ(bad, 5.0);
  EXPECT_DOUBLE_EQ(total, 100.0);
}

TEST(Slo, LatencyEventCountsInterpolateInsideStraddlingBucket) {
  obs::SloObjective o;
  o.name = "lat";
  o.latency_histogram = "fetch_seconds";
  o.latency_threshold_s = 1.5;  // halfway through the (1,2] bucket
  double bad = 0, total = 0;
  // 10 in (1,2], 5 overflow: ~5 of the straddling bucket + all overflow.
  obs::SloEventCounts(o, {Hist("fetch_seconds", {1.0, 2.0}, {20, 10, 5}, 0)},
                      &bad, &total);
  EXPECT_DOUBLE_EQ(total, 35.0);
  EXPECT_NEAR(bad, 10.0, 1e-9);  // 5 interpolated + 5 overflow
}

// ---------------------------------------------------------------------------
// FleetScraper over a live ClusterTestbed.

const std::vector<double> kIsos = {0.2, 0.5};

void StoreDataset(storage::ObjectStore& store, const std::string& bucket,
                  const std::string& key, int n, std::int32_t brick_edge) {
  sim::ImpactConfig cfg;
  cfg.n = n;
  const grid::Dataset ds = sim::GenerateImpactTimestep(cfg, 24006, {"v02"});
  io::VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec("lz4"));
  writer.SetBrickSize(brick_edge);
  writer.WriteToStore(store, bucket, key);
}

ClusterTestbedConfig FleetConfig() {
  ClusterTestbedConfig config;
  config.servers = 3;
  config.replicas = 2;
  config.client_options.call_timeout = std::chrono::milliseconds(2000);
  return config;
}

std::vector<std::shared_ptr<ndp::NdpClient>> ScrapeClients(
    ClusterTestbed& cluster) {
  std::vector<std::shared_ptr<ndp::NdpClient>> clients;
  for (int i = 0; i < cluster.server_count(); ++i) {
    clients.push_back(cluster.NewNodeClient(i));
  }
  return clients;
}

TEST(Fleet, SweepPublishesEpochStampedMergedWindows) {
  ClusterTestbed cluster(FleetConfig());
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 8);
  for (int i = 0; i < 4; ++i) {
    (void)cluster.sharded_client()->Contour("ts.vnd", "v02", kIsos);
  }

  FleetScraperOptions options;
  options.objectives = DefaultFleetObjectives();
  FleetScraper scraper(ScrapeClients(cluster), options);
  EXPECT_EQ(scraper.latest(), nullptr);

  const auto first = scraper.ScrapeOnce();
  const auto second = scraper.ScrapeOnce();
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_LT(first->epoch, second->epoch);
  EXPECT_EQ(scraper.latest(), second);
  EXPECT_EQ(second->reachable, 3);
  ASSERT_EQ(second->nodes.size(), 3u);
  for (const auto& node : second->nodes) {
    EXPECT_TRUE(node.reachable);
    EXPECT_GT(node.scrape_seconds, 0.0);
    EXPECT_FALSE(node.metrics.empty());
    // Rates exist from sweep 2 on (delta against the previous sweep).
    EXPECT_FALSE(node.rates.empty());
  }
  // The fetches landed in somebody's pre-filter window, and the merge
  // carries both the cumulative and the window series.
  const auto* win =
      Find(second->merged, obs::WindowedName("ndp_select_seconds"));
  const auto* cum = Find(second->merged, "ndp_select_seconds");
  ASSERT_NE(win, nullptr);
  ASSERT_NE(cum, nullptr);
  EXPECT_GT(win->window_seconds, 0.0);
  EXPECT_GT(cum->count, 0u);
  // The scraper's own counters merged in too.
  const auto* scrapes = Find(second->merged, "fleet_scrape_total{node=0}");
  ASSERT_NE(scrapes, nullptr);
  EXPECT_DOUBLE_EQ(scrapes->value, 2.0);
  // SLO statuses evaluated against the merge.
  ASSERT_EQ(second->slo.size(), options.objectives.size());
  EXPECT_FALSE(second->slo[1].alerting);  // availability: all reachable
}

TEST(Fleet, DeadNodeCountsUnreachableAndScrapeFailures) {
  ClusterTestbed cluster(FleetConfig());
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 8);

  FleetScraper scraper(ScrapeClients(cluster));
  (void)scraper.ScrapeOnce();
  cluster.KillServer(1);
  const auto snap = scraper.ScrapeOnce();
  EXPECT_EQ(snap->reachable, 2);
  EXPECT_FALSE(snap->nodes[1].reachable);
  const auto* failed = Find(snap->merged, "fleet_scrape_failed_total{node=1}");
  ASSERT_NE(failed, nullptr);
  EXPECT_DOUBLE_EQ(failed->value, 1.0);

  // The channel heals: after a restart the next sweep sees the node.
  cluster.RestartServer(1);
  const auto healed = scraper.ScrapeOnce();
  EXPECT_EQ(healed->reachable, 3);
  EXPECT_TRUE(healed->nodes[1].reachable);
}

TEST(Fleet, SlowNodeFlaggedWithinOneWindowAndCleared) {
  ClusterTestbed cluster(FleetConfig());
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 8);

  std::vector<std::shared_ptr<ndp::NdpClient>> clients;
  net::FaultInjectingTransport* fault = nullptr;
  for (int i = 0; i < cluster.server_count(); ++i) {
    clients.push_back(
        cluster.NewNodeClient(i, i == 2 ? &fault : nullptr));
  }
  ASSERT_NE(fault, nullptr);

  FleetScraperOptions options;
  // Nodes serve no traffic here, so the outlier signal is the scrape
  // RTT window; a couple of sweeps is enough population.
  options.slow_min_samples = 2;
  options.slow_factor = 3.0;
  FleetScraper scraper(clients, options);

  const std::uint64_t base_seq = obs::GlobalEventLog().LastSeq();
  obs::Counter& slow_counter = obs::DefaultRegistry().GetCounter(
      "cluster_slow_node_total", {{"node", "2"}});
  const std::uint64_t base_count = slow_counter.value();
  // Warm RTT windows on every node.
  (void)scraper.ScrapeOnce();
  (void)scraper.ScrapeOnce();

  // Slow node 2's scrape channel far past 3x the fleet median.
  fault->ScriptReceive(
      std::vector<net::FaultAction>(
          64, net::FaultAction::Delay(std::chrono::milliseconds(40))),
      /*loop_last=*/true);
  bool flagged = false;
  for (int sweep = 0; sweep < 6 && !flagged; ++sweep) {
    flagged = scraper.ScrapeOnce()->nodes[2].slow;
  }
  EXPECT_TRUE(flagged);
  // Edge-triggered audited pair: one counter increment, one journal
  // event for node 2. (Filter by node: in-proc scrape RTTs are a few
  // microseconds, so scheduler noise can legitimately trip the 3x rule
  // on another node for a sweep — that's a real alert, just not ours.)
  auto node2_events = [base_seq] {
    size_t n = 0;
    for (const obs::LogEvent& e : obs::GlobalEventLog().Events()) {
      if (e.seq > base_seq && e.name == "cluster.slow_node" &&
          e.detail.rfind("node=2 ", 0) == 0) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_EQ(slow_counter.value() - base_count, 1u);
  EXPECT_EQ(node2_events(), 1u);

  // Remove the fault; fast sweeps age the slow epochs out of the RTT
  // window and the flag clears without a second alert.
  fault->ScriptReceive({}, /*loop_last=*/false);
  bool cleared = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!cleared && std::chrono::steady_clock::now() < deadline) {
    cleared = !scraper.ScrapeOnce()->nodes[2].slow;
    if (!cleared) std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  EXPECT_TRUE(cleared);
  EXPECT_EQ(slow_counter.value() - base_count, 1u);
}

TEST(Fleet, HedgeSinkFeedsShardedClientFleetWindow) {
  ClusterTestbed cluster(FleetConfig());
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 8);
  for (int i = 0; i < 3; ++i) {
    (void)cluster.sharded_client()->Contour("ts.vnd", "v02", kIsos);
  }

  FleetScraperOptions options;
  options.hedge_min_samples = 1;
  FleetScraper scraper(ScrapeClients(cluster), options);
  double pushed = -1;
  scraper.SetHedgeSink([&pushed](double seconds) { pushed = seconds; });
  const auto snap = scraper.ScrapeOnce();

  // The sink got the fleet-merged windowed p95 of the pre-filter tail.
  const auto* win = Find(snap->merged, obs::WindowedName("ndp_select_seconds"));
  ASSERT_NE(win, nullptr);
  ASSERT_GE(pushed, 0.0);
  EXPECT_DOUBLE_EQ(pushed, obs::SnapshotQuantile(*win, 0.95));

  // Wired to the sharded client it overrides the hedge delay while
  // fresh: a hint far above the local window must show through.
  cluster.sharded_client()->SetHedgeHint(1.25);
  const auto delay = cluster.sharded_client()->HedgeDelay();
  ASSERT_TRUE(delay.has_value());
  EXPECT_EQ(delay->count(), 1250000);
  cluster.sharded_client()->SetHedgeHint(0);  // clear
}

TEST(Fleet, RenderersExposeTheSnapshot) {
  ClusterTestbed cluster(FleetConfig());
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 8);
  (void)cluster.sharded_client()->Contour("ts.vnd", "v02", kIsos);

  FleetScraperOptions options;
  options.objectives = DefaultFleetObjectives();
  FleetScraper scraper(ScrapeClients(cluster), options);
  (void)scraper.ScrapeOnce();
  const auto snap = scraper.ScrapeOnce();

  const std::string json = FleetSnapshotJson(*snap);
  EXPECT_NE(json.find("\"per_node\""), std::string::npos);
  EXPECT_NE(json.find("\"fleet_window\""), std::string::npos);
  EXPECT_NE(json.find("\"slo\""), std::string::npos);
  EXPECT_NE(json.find("\"reachable\":3"), std::string::npos);

  const std::string prom = FleetSnapshotProm(*snap);
  EXPECT_NE(prom.find("node=\"0\""), std::string::npos);
  EXPECT_NE(prom.find("node=\"2\""), std::string::npos);
  EXPECT_NE(prom.find("fleet_scrape_total"), std::string::npos);
  // One # TYPE per family even with three nodes' series interleaved.
  const std::string type_line = "# TYPE rpc_requests_total counter";
  const size_t first = prom.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(prom.find(type_line, first + 1), std::string::npos);

  const std::string text = FleetSnapshotText(*snap);
  EXPECT_NE(text.find("fleet epoch"), std::string::npos);
  EXPECT_NE(text.find("P95ms"), std::string::npos);
  EXPECT_NE(text.find("slo select-p99"), std::string::npos);
}

}  // namespace
}  // namespace vizndp::cluster
