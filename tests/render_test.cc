#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "render/camera.h"
#include "render/rasterizer.h"
#include "render/render_sink.h"

namespace vizndp::render {
namespace {

TEST(Framebuffer, ClearAndPixelOps) {
  Framebuffer fb(8, 4, {1, 2, 3});
  EXPECT_EQ(fb.width(), 8);
  EXPECT_EQ(fb.height(), 4);
  EXPECT_EQ(fb.GetPixel(0, 0).g, 2);
  fb.SetPixel(3, 2, 1.0, {255, 0, 0});
  EXPECT_EQ(fb.GetPixel(3, 2).r, 255);
  EXPECT_NEAR(fb.CoverageFraction(), 1.0 / 32.0, 1e-12);
}

TEST(Framebuffer, DepthTestKeepsNearest) {
  Framebuffer fb(2, 2);
  fb.SetPixel(0, 0, 5.0, {10, 0, 0});
  fb.SetPixel(0, 0, 2.0, {20, 0, 0});  // nearer: wins
  fb.SetPixel(0, 0, 9.0, {30, 0, 0});  // farther: loses
  EXPECT_EQ(fb.GetPixel(0, 0).r, 20);
}

TEST(Framebuffer, OutOfBoundsWritesIgnored) {
  Framebuffer fb(2, 2);
  fb.SetPixel(-1, 0, 1.0, {9, 9, 9});
  fb.SetPixel(5, 5, 1.0, {9, 9, 9});
  EXPECT_DOUBLE_EQ(fb.CoverageFraction(), 0.0);
}

TEST(Framebuffer, PpmOutput) {
  const auto path =
      std::filesystem::temp_directory_path() / "vizndp_render_test.ppm";
  Framebuffer fb(16, 9);
  fb.SetPixel(0, 0, 1.0, {255, 255, 255});
  fb.WritePpm(path.string());
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic, dims1, dims2, maxval;
  in >> magic >> dims1 >> dims2 >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(dims1, "16");
  EXPECT_EQ(dims2, "9");
  EXPECT_EQ(maxval, "255");
  in.seekg(0, std::ios::end);
  // Header "P6\n16 9\n255\n" is 12 bytes, then 16*9 RGB triples.
  EXPECT_EQ(static_cast<size_t>(in.tellg()), 12u + 16u * 9u * 3u);
  std::filesystem::remove(path);
}

TEST(Camera, ProjectCenterAndDepth) {
  // Looking down -z from (0,0,10) at the origin.
  Camera cam({0, 0, 10}, {0, 0, 0}, {0, 1, 0}, 60.0, 1.0);
  const auto center = cam.Project({0, 0, 0});
  EXPECT_NEAR(center.x, 0.0, 1e-12);
  EXPECT_NEAR(center.y, 0.0, 1e-12);
  EXPECT_NEAR(center.z, 10.0, 1e-12);
  // Behind the camera: non-positive depth.
  EXPECT_LE(cam.Project({0, 0, 20}).z, 0.0);
}

TEST(Camera, NearerObjectsProjectLarger) {
  Camera cam({0, 0, 10}, {0, 0, 0}, {0, 1, 0}, 60.0, 1.0);
  const auto near = cam.Project({1, 0, 5});
  const auto far = cam.Project({1, 0, -5});
  EXPECT_GT(std::abs(near.x), std::abs(far.x));
}

TEST(Rasterizer, TriangleCoversExpectedRegion) {
  Framebuffer fb(64, 64);
  Camera cam({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 60.0, 1.0);
  contour::PolyData poly;
  const auto a = poly.AddPoint({-1, -1, 0});
  const auto b = poly.AddPoint({1, -1, 0});
  const auto c = poly.AddPoint({0, 1, 0});
  poly.AddTriangle(a, b, c);
  RenderPolyData(poly, cam, {}, fb);
  const double coverage = fb.CoverageFraction();
  EXPECT_GT(coverage, 0.02);
  EXPECT_LT(coverage, 0.5);
  // The centroid pixel is covered.
  EXPECT_NE(fb.GetPixel(32, 40).r, 16);
}

TEST(Rasterizer, NearTriangleOccludesFar) {
  Framebuffer fb(32, 32);
  Camera cam({0, 0, 10}, {0, 0, 0}, {0, 1, 0}, 60.0, 1.0);
  contour::PolyData far_poly;
  far_poly.AddTriangle(far_poly.AddPoint({-2, -2, -3}),
                       far_poly.AddPoint({2, -2, -3}),
                       far_poly.AddPoint({0, 2, -3}));
  contour::PolyData near_poly;
  near_poly.AddTriangle(near_poly.AddPoint({-2, -2, 3}),
                        near_poly.AddPoint({2, -2, 3}),
                        near_poly.AddPoint({0, 2, 3}));
  Material red;
  red.base = {200, 0, 0};
  red.ambient = 1.0;  // flat color
  Material blue;
  blue.base = {0, 0, 200};
  blue.ambient = 1.0;
  // Draw far (blue) second: depth test must still keep near (red).
  RenderPolyData(near_poly, cam, red, fb);
  RenderPolyData(far_poly, cam, blue, fb);
  EXPECT_EQ(fb.GetPixel(16, 16).r, 200);
  EXPECT_EQ(fb.GetPixel(16, 16).b, 0);
}

TEST(Rasterizer, LinesRender) {
  Framebuffer fb(32, 32);
  Camera cam({0, 0, 10}, {0, 0, 0}, {0, 1, 0}, 60.0, 1.0);
  contour::PolyData poly;
  poly.AddLine(poly.AddPoint({-2, 0, 0}), poly.AddPoint({2, 0, 0}));
  RenderPolyData(poly, cam, {}, fb);
  EXPECT_GT(fb.CoverageFraction(), 0.0);
}

TEST(Rasterizer, BehindCameraGeometryCulled) {
  Framebuffer fb(32, 32);
  Camera cam({0, 0, 10}, {0, 0, 0}, {0, 1, 0}, 60.0, 1.0);
  contour::PolyData poly;
  poly.AddTriangle(poly.AddPoint({-1, -1, 20}), poly.AddPoint({1, -1, 20}),
                   poly.AddPoint({0, 1, 20}));
  RenderPolyData(poly, cam, {}, fb);
  EXPECT_DOUBLE_EQ(fb.CoverageFraction(), 0.0);
}

TEST(RenderSink, WritesImageFromPipeline) {
  const auto path =
      std::filesystem::temp_directory_path() / "vizndp_sink_test.ppm";

  // A tiny one-triangle "pipeline": feed PolyData through a pass-through
  // source algorithm.
  class PolySource final : public pipeline::Algorithm {
   public:
    explicit PolySource(contour::PolyData poly) : poly_(std::move(poly)) {}
    std::string Name() const override { return "PolySource"; }
    int InputPortCount() const override { return 0; }

   protected:
    pipeline::DataObjectPtr Execute(
        const std::vector<pipeline::DataObjectPtr>&) override {
      return std::make_shared<pipeline::DataObject>(poly_);
    }

   private:
    contour::PolyData poly_;
  };

  contour::PolyData poly;
  poly.AddTriangle(poly.AddPoint({-1, -1, 0}), poly.AddPoint({1, -1, 0}),
                   poly.AddPoint({0, 1, 0}));
  PolySource source(std::move(poly));
  RenderSink sink(path.string(), Camera({0, 0, 5}, {0, 0, 0}, {0, 1, 0},
                                        60.0, 4.0 / 3.0),
                  160, 120);
  sink.SetInputConnection(0, &source);
  sink.Update();
  EXPECT_GT(sink.last_coverage(), 0.0);
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace vizndp::render
