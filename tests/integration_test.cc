// End-to-end reproduction scenarios: the full baseline and NDP pipelines
// over the emulated testbed, compression x NDP combinations, and the
// two-process split pipeline over real TCP.
#include <gtest/gtest.h>

#include <filesystem>

#include "bench_util/testbed.h"
#include "contour/marching_cubes.h"
#include "io/vnd_format.h"
#include "ndp/ndp_server.h"
#include "pipeline/elements.h"
#include "render/render_sink.h"
#include "sim/impact.h"
#include "sim/nyx.h"
#include "storage/store_rpc.h"

namespace vizndp {
namespace {

using bench_util::Testbed;

class ImpactStoryTest : public ::testing::Test {
 protected:
  static constexpr std::int64_t kSteps[3] = {0, 24006, 48013};

  ImpactStoryTest() {
    cfg_.n = 24;
    for (const std::int64_t t : kSteps) {
      const grid::Dataset ds =
          sim::GenerateImpactTimestep(cfg_, t, {"v02", "v03"});
      io::VndWriter writer(ds);
      writer.SetCodec(compress::MakeCodec("lz4"));
      writer.WriteToStore(testbed_.store(), testbed_.bucket(), Key(t));
      io::VndWriter raw_writer(ds);
      raw_writer.WriteToStore(testbed_.store(), testbed_.bucket(),
                              "raw_" + Key(t));
    }
  }

  static std::string Key(std::int64_t t) {
    return "ts" + std::to_string(t) + ".vnd";
  }

  sim::ImpactConfig cfg_;
  Testbed testbed_;
};

TEST_F(ImpactStoryTest, ContourMovieBaselineVsNdp) {
  const std::vector<double> isovalues = {0.1};
  for (const std::int64_t t : kSteps) {
    io::VndReader reader(testbed_.RemoteGateway().Open(Key(t)));
    const contour::PolyData baseline =
        contour::MarchingCubes(reader.header().dims, reader.header().geometry,
                               reader.ReadArray("v02"), isovalues);
    const contour::PolyData ndp =
        testbed_.ndp_client().Contour(Key(t), "v02", isovalues);
    EXPECT_TRUE(ndp.GeometricallyEquals(baseline, 0.0)) << "t=" << t;
    EXPECT_GT(ndp.TriangleCount(), 0u) << "t=" << t;
  }
}

TEST_F(ImpactStoryTest, NdpLoadTimeBeatsBaselineUnderTheModel) {
  // RAW objects, as in the paper's headline comparison (at this tiny test
  // grid an LZ4-compressed full array can undercut the selection payload;
  // at paper scale selectivity is orders of magnitude lower).
  const std::vector<double> isovalues = {0.1};
  auto baseline_timer = testbed_.StartLoadTimer();
  io::VndReader reader(testbed_.RemoteGateway().Open("raw_" + Key(24006)));
  (void)reader.ReadArray("v02");
  const auto baseline = baseline_timer.Stop();

  auto ndp_timer = testbed_.StartLoadTimer();
  (void)testbed_.ndp_client().Contour("raw_" + Key(24006), "v02", isovalues);
  const auto ndp = ndp_timer.Stop();

  EXPECT_LT(ndp.network_bytes, baseline.network_bytes / 2);
  EXPECT_LT(ndp.network_s, baseline.network_s);
  // Both hit the same SSD for (roughly) the same bytes.
  EXPECT_NEAR(ndp.storage_s, baseline.storage_s, baseline.storage_s * 0.5);
}

TEST_F(ImpactStoryTest, FullPipelineWithRenderSink) {
  const auto img = std::filesystem::temp_directory_path() /
                   "vizndp_integration_render.ppm";
  pipeline::VndReaderSource source(testbed_.RemoteGateway(), Key(24006));
  source.SetArraySelection({"v02"});
  pipeline::ContourStage contour("v02", {0.1});
  render::RenderSink sink(
      img.string(),
      render::Camera({0.5, -1.2, 1.0}, {0.5, 0.5, 0.35}, {0, 0, 1}, 55.0,
                     4.0 / 3.0),
      320, 240);
  contour.SetInputConnection(0, &source);
  sink.SetInputConnection(0, &contour);
  sink.Update();
  EXPECT_GT(sink.last_coverage(), 0.01);  // the ocean fills the frame
  std::filesystem::remove(img);
}

TEST_F(ImpactStoryTest, NdpSplitPipelineWithRenderSink) {
  const auto img = std::filesystem::temp_directory_path() /
                   "vizndp_integration_ndp_render.ppm";
  ndp::NdpContourSource source(testbed_.ndp_client_ptr(), Key(24006), "v02",
                               {0.1});
  render::RenderSink sink(
      img.string(),
      render::Camera({0.5, -1.2, 1.0}, {0.5, 0.5, 0.35}, {0, 0, 1}, 55.0,
                     4.0 / 3.0),
      320, 240);
  sink.SetInputConnection(0, &source);
  sink.Update();
  EXPECT_GT(sink.last_coverage(), 0.01);
  std::filesystem::remove(img);
}

TEST_F(ImpactStoryTest, CompressionPlusNdpComposes) {
  // Paper Fig. 9: compression shrinks what the server reads; NDP shrinks
  // what crosses the network. Together: both small.
  const std::vector<double> isovalues = {0.1};
  ndp::NdpLoadStats stats;
  (void)testbed_.ndp_client().Contour(Key(24006), "v02", isovalues, &stats);
  EXPECT_LT(stats.stored_bytes, stats.raw_bytes);     // compression worked
  EXPECT_LT(stats.payload_bytes, stats.raw_bytes / 4);  // selection worked
}

TEST(NyxStory, HaloContourViaNdp) {
  Testbed testbed;
  sim::NyxConfig cfg;
  cfg.n = 32;
  const grid::Dataset ds = sim::GenerateNyx(cfg, {"baryon_density"});
  io::VndWriter(ds).WriteToStore(testbed.store(), testbed.bucket(),
                                 "nyx.vnd");

  const std::vector<double> iso = {sim::kHaloThreshold};
  io::VndReader reader(testbed.RemoteGateway().Open("nyx.vnd"));
  const contour::PolyData baseline =
      contour::MarchingCubes(ds.dims(), ds.geometry(),
                             reader.ReadArray("baryon_density"), iso);
  ndp::NdpLoadStats stats;
  const contour::PolyData ndp =
      testbed.ndp_client().Contour("nyx.vnd", "baryon_density", iso, &stats);
  EXPECT_TRUE(ndp.GeometricallyEquals(baseline, 0.0));
  EXPECT_GT(ndp.TriangleCount(), 0u);
  // Paper Fig. 12: halo selectivity is a small fraction of a percent at
  // full resolution; stay below 2% at this tiny grid.
  EXPECT_LT(stats.Selectivity(), 0.02);
}

TEST(TwoProcessStory, NdpOverRealTcp) {
  // The storage node as it would run in production: an RPC server over
  // TCP. The client connects through sockets, not the in-proc channel.
  storage::MemoryObjectStore store;
  store.CreateBucket("data");
  sim::ImpactConfig cfg;
  cfg.n = 16;
  const grid::Dataset ds = sim::GenerateImpactTimestep(cfg, 24006, {"v02"});
  io::VndWriter(ds).WriteToStore(store, "data", "t.vnd");

  rpc::Server rpc_server;
  ndp::NdpServer ndp_server(storage::FileGateway(store, "data"));
  ndp_server.Bind(rpc_server);
  rpc::TcpRpcServer tcp(rpc_server, 0);

  ndp::NdpClient client(
      std::make_shared<rpc::Client>(net::TcpConnect("127.0.0.1", tcp.port())),
      "data");
  const std::vector<double> isovalues = {0.1, 0.5};
  const contour::PolyData ndp = client.Contour("t.vnd", "v02", isovalues);

  const contour::PolyData direct = contour::MarchingCubes(
      ds.dims(), ds.geometry(), ds.GetArray("v02"), isovalues);
  EXPECT_TRUE(ndp.GeometricallyEquals(direct, 0.0));
}

TEST(TwoProcessStory, BaselineObjectReadsOverRealTcp) {
  storage::MemoryObjectStore store;
  store.CreateBucket("data");
  store.Put("data", "obj", Bytes(100000, 0x11));

  rpc::Server rpc_server;
  storage::BindObjectStoreRpc(rpc_server, store);
  rpc::TcpRpcServer tcp(rpc_server, 0);

  storage::RemoteObjectStore remote(
      std::make_shared<rpc::Client>(net::TcpConnect("127.0.0.1", tcp.port())));
  EXPECT_EQ(remote.Get("data", "obj"), Bytes(100000, 0x11));
}

}  // namespace
}  // namespace vizndp
