#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "bench_util/stats.h"
#include "bench_util/table.h"
#include "bench_util/testbed.h"

namespace vizndp::bench_util {
namespace {

TEST(Stats, SummarizeBasics) {
  const Summary s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
  EXPECT_EQ(s.count, 4u);
}

TEST(Stats, SummarizeDegenerateInputs) {
  EXPECT_EQ(Summarize({}).count, 0u);
  const Summary one = Summarize({7.0});
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  // Defeat constant folding without the deprecated volatile compound op.
  EXPECT_GT(sink, 0.0);
  EXPECT_GT(sw.Seconds(), 0.0);
}

TEST(LoadTimer, CombinesRealAndVirtualTime) {
  net::SimulatedLink link({.bandwidth_bytes_per_sec = 1000.0,
                           .latency_sec = 0.0,
                           .overhead_factor = 1.0});
  storage::SsdModel ssd({.read_bandwidth_bytes_per_sec = 1000.0,
                         .write_bandwidth_bytes_per_sec = 1000.0,
                         .access_latency_sec = 0.0});
  LoadTimer timer(link, ssd);
  link.ChargeTransfer(500);   // 0.5 virtual s
  ssd.ChargeRead(250);        // 0.25 virtual s
  const LoadTimer::Result r = timer.Stop();
  EXPECT_NEAR(r.network_s, 0.5, 1e-9);
  EXPECT_NEAR(r.storage_s, 0.25, 1e-9);
  EXPECT_EQ(r.network_bytes, 500u);
  EXPECT_GE(r.total_s, r.network_s + r.storage_s);
  EXPECT_NEAR(r.total_s, r.real_s + 0.75, 1e-9);
}

TEST(LoadTimer, IgnoresChargesBeforeConstruction) {
  net::SimulatedLink link;
  storage::SsdModel ssd;
  link.ChargeTransfer(1000000);
  LoadTimer timer(link, ssd);
  const auto r = timer.Stop();
  EXPECT_EQ(r.network_bytes, 0u);
  EXPECT_NEAR(r.network_s, 0.0, 1e-12);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  std::ostringstream os;
  t.Print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("| name  | value |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.RowCount(), 2u);
}

TEST(Table, RejectsWrongWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), Error);
}

TEST(Table, CsvEscaping) {
  const auto path =
      std::filesystem::temp_directory_path() / "vizndp_table_test.csv";
  Table t({"k", "v"});
  t.AddRow({"plain", "has,comma"});
  t.AddRow({"quote\"d", "line"});
  t.WriteCsv(path.string());
  std::ifstream in(path);
  std::string l0, l1, l2;
  std::getline(in, l0);
  std::getline(in, l1);
  std::getline(in, l2);
  EXPECT_EQ(l0, "k,v");
  EXPECT_EQ(l1, "plain,\"has,comma\"");
  EXPECT_EQ(l2, "\"quote\"\"d\",line");
  std::filesystem::remove(path);
}

TEST(Format, HumanReadableUnits) {
  EXPECT_EQ(FormatSeconds(0.0000005), "0.5us");
  EXPECT_EQ(FormatSeconds(0.002), "2.00ms");
  EXPECT_EQ(FormatSeconds(3.5), "3.50s");
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(2048), "2.0KiB");
  EXPECT_EQ(FormatBytes(3u << 20), "3.0MiB");
  EXPECT_EQ(FormatRatio(2.5), "2.50x");
  EXPECT_EQ(FormatRatio(250.0), "250x");
}

TEST(Testbed, BaselineVsNdpTrafficAccounting) {
  Testbed testbed;
  const Bytes blob(100000, 0x42);
  testbed.store().Put(testbed.bucket(), "obj", blob);

  testbed.link().Reset();
  auto gateway = testbed.RemoteGateway();
  EXPECT_EQ(gateway.Open("obj").ReadAll(), blob);
  // Remote read crossed the link.
  EXPECT_GT(testbed.link().bytes_transferred(), blob.size());

  testbed.link().Reset();
  auto local = testbed.LocalGateway();
  EXPECT_EQ(local.Open("obj").ReadAll(), blob);
  // Local read did not.
  EXPECT_EQ(testbed.link().bytes_transferred(), 0u);
}

TEST(Testbed, SsdChargedOnBothPaths) {
  Testbed testbed;
  testbed.store().Put(testbed.bucket(), "obj", Bytes(5000));
  testbed.ssd().Reset();
  (void)testbed.RemoteGateway().Open("obj").ReadAll();
  const std::uint64_t remote_read = testbed.ssd().bytes_read();
  testbed.ssd().Reset();
  (void)testbed.LocalGateway().Open("obj").ReadAll();
  EXPECT_EQ(testbed.ssd().bytes_read(), remote_read);
}

TEST(Testbed, DiskBackedStoreWorks) {
  const auto root =
      std::filesystem::temp_directory_path() / "vizndp_testbed_disk";
  {
    TestbedConfig cfg;
    cfg.disk_root = root;
    Testbed testbed(cfg);
    testbed.store().Put(testbed.bucket(), "k", ToBytes("on disk"));
    EXPECT_EQ(testbed.RemoteGateway().Open("k").ReadAll(), ToBytes("on disk"));
  }
  EXPECT_TRUE(std::filesystem::exists(root));
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace vizndp::bench_util
