// End-to-end data integrity: per-brick CRCs (VND format v2), the
// transient-corruption recovery ladder (verify → re-read → whole-blob →
// baseline), v1 back-compat, and hostile-header rejection.
#include <gtest/gtest.h>

#include <thread>

#include "compress/checksum.h"
#include "compress/lz4.h"
#include "contour/contour_filter.h"
#include "io/vnd_format.h"
#include "msgpack/pack.h"
#include "ndp/bricked_select.h"
#include "ndp/ndp_client.h"
#include "ndp/ndp_server.h"
#include "net/inproc.h"
#include "obs/metrics.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "sim/impact.h"
#include "storage/memory_store.h"

namespace vizndp {
namespace {

Bytes MakeBrickedImage(std::uint32_t version = 2) {
  sim::ImpactConfig cfg;
  cfg.n = 16;
  const grid::Dataset ds = sim::GenerateImpactTimestep(cfg, 24006, {"v02"});
  io::VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec("lz4"));
  writer.SetBrickSize(4);
  writer.SetFormatVersion(version);
  return writer.Serialize();
}

// ObjectStore decorator that flips one byte in the first ranged read at
// or past `min_offset` (the blob base: header reads stay clean) — a
// transient fault, healed by the very next read of the same range.
class FlakyStore : public storage::ObjectStore {
 public:
  FlakyStore(storage::ObjectStore& inner, std::uint64_t min_offset)
      : inner_(inner), min_offset_(min_offset) {}

  bool flipped() const { return flipped_; }

  Bytes GetRange(const std::string& bucket, const std::string& key,
                 std::uint64_t offset, std::uint64_t length) override {
    Bytes out = inner_.GetRange(bucket, key, offset, length);
    if (!flipped_ && offset >= min_offset_ && !out.empty()) {
      out[out.size() / 2] ^= 0x01;
      flipped_ = true;
    }
    return out;
  }

  void CreateBucket(const std::string& b) override { inner_.CreateBucket(b); }
  bool BucketExists(const std::string& b) const override {
    return inner_.BucketExists(b);
  }
  void Put(const std::string& b, const std::string& k,
           ByteSpan data) override {
    inner_.Put(b, k, data);
  }
  Bytes Get(const std::string& b, const std::string& k) override {
    return inner_.Get(b, k);
  }
  storage::ObjectInfo Stat(const std::string& b,
                           const std::string& k) override {
    return inner_.Stat(b, k);
  }
  bool Exists(const std::string& b, const std::string& k) override {
    return inner_.Exists(b, k);
  }
  void Delete(const std::string& b, const std::string& k) override {
    inner_.Delete(b, k);
  }
  std::vector<storage::ObjectInfo> List(const std::string& b,
                                        const std::string& p) override {
    return inner_.List(b, p);
  }

 private:
  storage::ObjectStore& inner_;
  std::uint64_t min_offset_;
  bool flipped_ = false;
};

contour::PolyData CleanBaseline(const Bytes& image, double iso) {
  storage::MemoryObjectStore store;
  store.CreateBucket("data");
  store.Put("data", "t.vnd", image);
  io::VndReader reader(storage::FileGateway(store, "data").Open("t.vnd"));
  const contour::ContourFilter filter(std::vector<double>{iso});
  return filter.Execute(reader.header().dims, reader.header().geometry,
                        reader.ReadArray("v02"));
}

double GlobalCounter(const std::string& name) {
  return obs::DefaultRegistry().GetCounter(name).value();
}

TEST(Integrity, Crc32StreamMatchesOneShot) {
  Bytes data(1000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<Byte>((i * 31 + 7) & 0xff);
  }
  const std::uint32_t one_shot = compress::Crc32(data);
  compress::Crc32Stream stream;
  // Uneven chunking, including empty updates.
  const size_t cuts[] = {0, 1, 2, 130, 130, 500, 999, 1000};
  size_t pos = 0;
  for (const size_t cut : cuts) {
    stream.Update(ByteSpan(data).subspan(pos, cut - pos));
    pos = cut;
  }
  EXPECT_EQ(stream.value(), one_shot);
  stream.Reset();
  stream.Update(data);
  EXPECT_EQ(stream.value(), one_shot);
}

TEST(Integrity, WriterRecordsPerBrickCrcs) {
  const Bytes image = MakeBrickedImage();
  const io::VndHeader h = io::ParseVndHeader(image);
  EXPECT_EQ(h.version, 2u);
  const io::ArrayMeta* meta = h.Find("v02");
  ASSERT_NE(meta, nullptr);
  ASSERT_TRUE(meta->bricks.has_value());
  EXPECT_TRUE(meta->bricks->has_crc);
  // Every entry's crc32 matches the stored brick bytes, and the
  // whole-blob CRC still covers the concatenation.
  compress::Crc32Stream blob_crc;
  for (const io::BrickEntry& e : meta->bricks->entries) {
    const ByteSpan brick = ByteSpan(image).subspan(
        static_cast<size_t>(h.blob_base + meta->offset + e.offset),
        static_cast<size_t>(e.stored_size));
    EXPECT_EQ(compress::Crc32(brick), e.crc32);
    blob_crc.Update(brick);
  }
  EXPECT_EQ(blob_crc.value(), meta->crc32);
}

TEST(Integrity, V1FilesStillReadBitIdentical) {
  const Bytes v2 = MakeBrickedImage(2);
  const Bytes v1 = MakeBrickedImage(1);
  const io::VndHeader h1 = io::ParseVndHeader(v1);
  EXPECT_EQ(h1.version, 1u);
  const io::ArrayMeta* meta = h1.Find("v02");
  ASSERT_NE(meta, nullptr);
  ASSERT_TRUE(meta->bricks.has_value());
  EXPECT_FALSE(meta->bricks->has_crc);

  storage::MemoryObjectStore store;
  store.CreateBucket("data");
  store.Put("data", "v1.vnd", v1);
  store.Put("data", "v2.vnd", v2);
  const storage::FileGateway gateway(store, "data");
  const io::VndReader r1(gateway.Open("v1.vnd"));
  const io::VndReader r2(gateway.Open("v2.vnd"));
  const grid::DataArray a1 = r1.ReadArray("v02");
  const grid::DataArray a2 = r2.ReadArray("v02");
  ASSERT_EQ(a1.byte_size(), a2.byte_size());
  EXPECT_TRUE(std::equal(a1.raw().begin(), a1.raw().end(),
                         a2.raw().begin()));

  // The bricked fast path works on v1 too — just without per-brick
  // verification.
  const std::vector<double> iso{0.1};
  ndp::BrickedSelectStats stats;
  const contour::Selection s1 =
      ndp::SelectInterestingPointsBricked(r1, "v02", iso, &stats);
  const contour::Selection s2 =
      ndp::SelectInterestingPointsBricked(r2, "v02", iso);
  EXPECT_EQ(s1.ids, s2.ids);
  EXPECT_EQ(stats.corrupt_bricks, 0);
}

TEST(Integrity, TransientCorruptBrickHealsAndMatchesBaseline) {
  const Bytes image = MakeBrickedImage();
  const io::VndHeader header = io::ParseVndHeader(image);
  const contour::PolyData baseline = CleanBaseline(image, 0.1);
  ASSERT_GT(baseline.TriangleCount(), 0u);

  storage::MemoryObjectStore store;
  store.CreateBucket("data");
  store.Put("data", "t.vnd", image);
  FlakyStore flaky(store, header.blob_base);

  rpc::Server server;
  ndp::NdpServer ndp_server{storage::FileGateway(flaky, "data")};
  ndp_server.Bind(server);
  net::TransportPair pair = net::CreateInProcPair();
  std::thread serve([&] { server.ServeTransport(*pair.b); });

  const double corrupt_before = GlobalCounter("corrupt_brick_total");
  const double reread_before = GlobalCounter("brick_reread_total");

  {
    auto client = std::make_shared<rpc::Client>(std::move(pair.a));
    ndp::NdpClient ndp(client, "data");
    ndp::NdpLoadStats stats;
    const contour::PolyData poly = ndp.Contour("t.vnd", "v02", {0.1}, &stats);

    // The flip happened, the re-read healed it, and the geometry is
    // bit-for-bit the baseline's — corruption cost one extra brick
    // fetch, not correctness.
    EXPECT_TRUE(flaky.flipped());
    EXPECT_FALSE(stats.used_fallback);
    EXPECT_TRUE(poly.GeometricallyEquals(baseline, 0.0));
    EXPECT_DOUBLE_EQ(GlobalCounter("corrupt_brick_total"),
                     corrupt_before + 1);
    EXPECT_DOUBLE_EQ(GlobalCounter("brick_reread_total"), reread_before + 1);
    EXPECT_DOUBLE_EQ(ndp_server.metrics()
                         .GetCounter("ndp_wholeblob_fallback_total")
                         .value(),
                     0.0);
  }
  // Scope exit destroyed every owner of the rpc client, closing the
  // transport; the serve thread sees the peer close and exits.
  serve.join();
}

TEST(Integrity, PersistentCorruptionDegradesToBaselinePath) {
  const Bytes image = MakeBrickedImage();
  const io::VndHeader header = io::ParseVndHeader(image);
  const contour::PolyData baseline = CleanBaseline(image, 0.1);
  ASSERT_GT(baseline.TriangleCount(), 0u);

  // Corrupt a brick the pre-filter must read (its [min, max] straddles
  // the isovalue), permanently: re-reads see the same bad byte.
  const io::ArrayMeta* meta = header.Find("v02");
  ASSERT_NE(meta, nullptr);
  Bytes corrupted = image;
  bool hit = false;
  for (const io::BrickEntry& e : meta->bricks->entries) {
    if (e.min < 0.1 && e.max >= 0.1 && e.stored_size > 0) {
      corrupted[static_cast<size_t>(header.blob_base + meta->offset +
                                    e.offset + e.stored_size / 2)] ^= 0xFF;
      hit = true;
      break;
    }
  }
  ASSERT_TRUE(hit);

  storage::MemoryObjectStore bad_store;
  bad_store.CreateBucket("data");
  bad_store.Put("data", "t.vnd", corrupted);
  storage::MemoryObjectStore good_store;
  good_store.CreateBucket("data");
  good_store.Put("data", "t.vnd", image);

  rpc::Server server;
  ndp::NdpServer ndp_server{storage::FileGateway(bad_store, "data")};
  ndp_server.Bind(server);
  net::TransportPair pair = net::CreateInProcPair();
  std::thread serve([&] { server.ServeTransport(*pair.b); });

  const double fallbacks_before = GlobalCounter("ndp_fallback_total");

  {
    auto client = std::make_shared<rpc::Client>(std::move(pair.a));
    auto ndp = std::make_shared<ndp::NdpClient>(client, "data");
    ndp::NdpContourSource source(ndp, "t.vnd", "v02", {0.1});
    source.SetFallback(storage::FileGateway(good_store, "data"));
    const contour::PolyData& poly = source.UpdateAndGetOutput()->AsPolyData();

    // Full ladder: brick CRC fail → re-read fails → whole-blob read
    // fails its CRC too → typed error crosses the wire → client degrades
    // to the baseline read against the clean replica. Geometry is
    // bit-identical.
    EXPECT_TRUE(source.last_stats().used_fallback);
    EXPECT_TRUE(poly.GeometricallyEquals(baseline, 0.0));
    EXPECT_DOUBLE_EQ(ndp_server.metrics()
                         .GetCounter("ndp_wholeblob_fallback_total")
                         .value(),
                     1.0);
    EXPECT_DOUBLE_EQ(GlobalCounter("ndp_fallback_total"),
                     fallbacks_before + 1);
  }
  serve.join();
}

// ---- hostile header construction helpers ----

Bytes ImageFromHeader(msgpack::Map header, size_t blob_bytes) {
  const Bytes hb = msgpack::Encode(msgpack::Value(std::move(header)));
  Bytes out;
  const Byte magic[4] = {'V', 'N', 'D', 'F'};
  out.insert(out.end(), magic, magic + 4);
  AppendLE<std::uint32_t>(2, out);
  AppendLE<std::uint32_t>(static_cast<std::uint32_t>(hb.size()), out);
  out.insert(out.end(), hb.begin(), hb.end());
  out.resize(out.size() + blob_bytes);
  return out;
}

msgpack::Map BaseHeader(std::int64_t nx, std::int64_t ny, std::int64_t nz) {
  using msgpack::Value;
  msgpack::Map h;
  h.emplace_back(Value("dims"),
                 Value(msgpack::Array{Value(nx), Value(ny), Value(nz)}));
  h.emplace_back(Value("origin"),
                 Value(msgpack::Array{Value(0.0), Value(0.0), Value(0.0)}));
  h.emplace_back(Value("spacing"),
                 Value(msgpack::Array{Value(1.0), Value(1.0), Value(1.0)}));
  return h;
}

msgpack::Value ArrayEntry(const std::string& name, std::uint64_t raw,
                          std::uint64_t stored, std::uint64_t offset) {
  using msgpack::Value;
  msgpack::Map m;
  m.emplace_back(Value("name"), Value(name));
  m.emplace_back(Value("type"), Value("float32"));
  m.emplace_back(Value("codec"), Value("none"));
  m.emplace_back(Value("raw_size"), Value(raw));
  m.emplace_back(Value("stored_size"), Value(stored));
  m.emplace_back(Value("offset"), Value(offset));
  m.emplace_back(Value("crc32"), Value(std::uint64_t{0}));
  return Value(std::move(m));
}

TEST(Integrity, HostileHeadersRejectedOnOpen) {
  using msgpack::Value;

  // Truncated preamble and bad magic.
  EXPECT_THROW(io::ParseVndHeader(Bytes{0x56, 0x4e}), DecodeError);
  Bytes bad_magic = MakeBrickedImage();
  bad_magic[0] = 'X';
  EXPECT_THROW(io::ParseVndHeader(bad_magic), DecodeError);

  // Unsupported version.
  Bytes bad_version = MakeBrickedImage();
  StoreLE<std::uint32_t>(99, bad_version.data() + 4);
  EXPECT_THROW(io::ParseVndHeader(bad_version), DecodeError);

  // Header-size field larger than the file.
  Bytes lying_header = MakeBrickedImage();
  StoreLE<std::uint32_t>(0xffffffffu, lying_header.data() + 8);
  EXPECT_THROW(io::ParseVndHeader(lying_header), DecodeError);

  // Truncated blob region: a declared array overruns the physical file.
  Bytes truncated = MakeBrickedImage();
  truncated.resize(truncated.size() - 16);
  EXPECT_THROW(io::ParseVndHeader(truncated), DecodeError);

  // Non-positive dims.
  {
    msgpack::Map h = BaseHeader(0, 8, 8);
    h.emplace_back(Value("arrays"), Value(msgpack::Array{}));
    EXPECT_THROW(io::ParseVndHeader(ImageFromHeader(std::move(h), 0)),
                 DecodeError);
  }

  // raw_size that disagrees with the grid.
  {
    msgpack::Map h = BaseHeader(2, 2, 2);
    h.emplace_back(Value("arrays"),
                   Value(msgpack::Array{ArrayEntry("a", 9999, 32, 0)}));
    EXPECT_THROW(io::ParseVndHeader(ImageFromHeader(std::move(h), 32)),
                 DecodeError);
  }

  // Overlapping array blobs (offset lies).
  {
    msgpack::Map h = BaseHeader(2, 2, 2);
    h.emplace_back(Value("arrays"),
                   Value(msgpack::Array{ArrayEntry("a", 32, 32, 0),
                                        ArrayEntry("b", 32, 32, 16)}));
    EXPECT_THROW(io::ParseVndHeader(ImageFromHeader(std::move(h), 64)),
                 DecodeError);
  }

  // Array blob pointing past the end of the file.
  {
    msgpack::Map h = BaseHeader(2, 2, 2);
    h.emplace_back(Value("arrays"),
                   Value(msgpack::Array{ArrayEntry("a", 32, 32, 4096)}));
    EXPECT_THROW(io::ParseVndHeader(ImageFromHeader(std::move(h), 32)),
                 DecodeError);
  }

  // A well-formed hand-built header still parses (the helpers above are
  // not rejected for incidental reasons).
  {
    msgpack::Map h = BaseHeader(2, 2, 2);
    h.emplace_back(Value("arrays"),
                   Value(msgpack::Array{ArrayEntry("a", 32, 32, 0)}));
    const io::VndHeader parsed =
        io::ParseVndHeader(ImageFromHeader(std::move(h), 32));
    EXPECT_EQ(parsed.arrays.size(), 1u);
  }
}

}  // namespace
}  // namespace vizndp
