#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "msgpack/pack.h"
#include "msgpack/unpack.h"

namespace vizndp::msgpack {
namespace {

Value RoundTrip(const Value& v) { return Decode(Encode(v)); }

TEST(Msgpack, ScalarRoundTrips) {
  EXPECT_EQ(RoundTrip(Value()), Value());
  EXPECT_EQ(RoundTrip(Value(true)), Value(true));
  EXPECT_EQ(RoundTrip(Value(false)), Value(false));
  EXPECT_EQ(RoundTrip(Value(0)), Value(0));
  EXPECT_EQ(RoundTrip(Value(-1)), Value(-1));
  EXPECT_EQ(RoundTrip(Value(3.25)), Value(3.25));
  EXPECT_EQ(RoundTrip(Value("hello")), Value("hello"));
}

TEST(Msgpack, IntegerBoundaries) {
  // Every fix/8/16/32/64 boundary, both signs.
  const std::int64_t cases[] = {0,      127,     128,    255,    256,
                                65535,  65536,   -31,    -32,    -33,
                                -128,   -129,    -32768, -32769, 2147483647,
                                -2147483648LL,   4294967295LL,   4294967296LL,
                                std::numeric_limits<std::int64_t>::max(),
                                std::numeric_limits<std::int64_t>::min()};
  for (const std::int64_t v : cases) {
    const Value back = RoundTrip(Value(v));
    EXPECT_EQ(back.AsInt(), v) << v;
  }
  const Value umax = RoundTrip(Value(std::numeric_limits<std::uint64_t>::max()));
  EXPECT_EQ(umax.AsUint(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_THROW(umax.AsInt(), Error);
}

TEST(Msgpack, KnownWireBytes) {
  // From the msgpack spec homepage: {"compact":true,"schema":0} is 18 B.
  Map m;
  m.emplace_back(Value("compact"), Value(true));
  m.emplace_back(Value("schema"), Value(0));
  const Bytes wire = Encode(Value(std::move(m)));
  const Bytes expected = {0x82, 0xA7, 'c', 'o', 'm', 'p', 'a', 'c', 't',
                          0xC3, 0xA6, 's', 'c', 'h', 'e', 'm', 'a', 0x00};
  EXPECT_EQ(wire, expected);
}

TEST(Msgpack, MinimalWidthSelection) {
  EXPECT_EQ(Encode(Value(5)).size(), 1u);              // positive fixint
  EXPECT_EQ(Encode(Value(-5)).size(), 1u);             // negative fixint
  EXPECT_EQ(Encode(Value(200)).size(), 2u);            // uint8
  EXPECT_EQ(Encode(Value(70000)).size(), 5u);          // uint32
  EXPECT_EQ(Encode(Value("short")).size(), 6u);        // fixstr
  EXPECT_EQ(Encode(Value(std::string(40, 'x'))).size(), 42u);  // str8
}

TEST(Msgpack, StringLengthTiers) {
  for (const size_t n : {0u, 31u, 32u, 255u, 256u, 70000u}) {
    const std::string s(n, 'q');
    const Value back = RoundTrip(Value(s));
    EXPECT_EQ(back.As<std::string>(), s);
  }
}

TEST(Msgpack, BinaryTiers) {
  for (const size_t n : {0u, 255u, 256u, 65535u, 65536u}) {
    Bytes data(n);
    for (size_t i = 0; i < n; ++i) data[i] = static_cast<Byte>(i * 31);
    const Value back = RoundTrip(Value(data));
    EXPECT_EQ(back.As<Bytes>(), data);
  }
}

TEST(Msgpack, FloatFormats) {
  Bytes buf;
  Packer p(buf);
  p.PackFloat(1.5f);
  p.PackDouble(-2.5);
  Unpacker u(buf);
  EXPECT_DOUBLE_EQ(u.NextDouble(), 1.5);
  EXPECT_DOUBLE_EQ(u.NextDouble(), -2.5);
  EXPECT_EQ(buf[0], 0xCA);
  EXPECT_EQ(buf[5], 0xCB);
}

TEST(Msgpack, NestedContainers) {
  Map inner;
  inner.emplace_back(Value("xs"), Value(Array{Value(1), Value(2), Value(3)}));
  Array outer;
  outer.push_back(Value(std::move(inner)));
  outer.push_back(Value(Bytes{1, 2, 3}));
  outer.push_back(Value("tail"));
  const Value v(std::move(outer));
  EXPECT_EQ(RoundTrip(v), v);
}

TEST(Msgpack, LargeArrayTiers) {
  for (const size_t n : {15u, 16u, 65535u, 65536u}) {
    Array a;
    a.reserve(n);
    for (size_t i = 0; i < n; ++i) a.emplace_back(static_cast<std::int64_t>(i & 63));
    const Value v(std::move(a));
    const Value back = RoundTrip(v);
    EXPECT_EQ(back.As<Array>().size(), n);
    EXPECT_EQ(back, v);
  }
}

TEST(Msgpack, ExtTypes) {
  for (const size_t n : {1u, 2u, 4u, 8u, 16u, 5u, 300u}) {
    Ext e{42, Bytes(n, 0xEE)};
    const Value back = RoundTrip(Value(e));
    EXPECT_EQ(back.As<Ext>().type, 42);
    EXPECT_EQ(back.As<Ext>().data.size(), n);
  }
}

TEST(Msgpack, MapLookupHelpers) {
  Map m;
  m.emplace_back(Value("name"), Value("v02"));
  m.emplace_back(Value("count"), Value(12));
  const Value v(std::move(m));
  EXPECT_EQ(v.At("name").As<std::string>(), "v02");
  EXPECT_EQ(v.At("count").AsInt(), 12);
  EXPECT_EQ(v.Find("missing"), nullptr);
  EXPECT_THROW(v.At("missing"), Error);
}

TEST(Msgpack, TypedUnpackerHelpers) {
  Bytes buf;
  Packer p(buf);
  p.PackArrayHeader(4);
  p.PackUint(7);
  p.PackStr("method");
  p.PackBin(Bytes{9, 8, 7});
  p.PackBool(true);
  Unpacker u(buf);
  EXPECT_EQ(u.NextArrayHeader(), 4u);
  EXPECT_EQ(u.NextUint(), 7u);
  EXPECT_EQ(u.NextStr(), "method");
  EXPECT_EQ(u.NextBin(), (Bytes{9, 8, 7}));
  EXPECT_TRUE(u.NextBool());
  EXPECT_TRUE(u.AtEnd());
}

TEST(Msgpack, BinViewIsZeroCopy) {
  Bytes buf;
  Packer p(buf);
  p.PackBin(Bytes{1, 2, 3, 4});
  Unpacker u(buf);
  const ByteSpan view = u.NextBinView();
  ASSERT_EQ(view.size(), 4u);
  EXPECT_GE(view.data(), buf.data());
  EXPECT_LT(view.data(), buf.data() + buf.size());
}

TEST(Msgpack, MalformedInputsThrow) {
  EXPECT_THROW(Decode(Bytes{}), DecodeError);
  EXPECT_THROW(Decode(Bytes{0xC1}), DecodeError);          // never-used tag
  EXPECT_THROW(Decode(Bytes{0xD9}), DecodeError);          // str8, no length
  EXPECT_THROW(Decode(Bytes{0xA5, 'a', 'b'}), DecodeError);  // short fixstr
  EXPECT_THROW(Decode(Bytes{0x92, 0x01}), DecodeError);    // short fixarray
  EXPECT_THROW(Decode(Bytes{0x01, 0x02}), DecodeError);    // trailing bytes
}

TEST(Msgpack, WrongTypeAccessThrows) {
  const Value v(42);
  EXPECT_THROW(v.As<std::string>(), Error);
  EXPECT_THROW(Value("s").AsInt(), Error);
  EXPECT_THROW(Value(-1).AsUint(), Error);
  Bytes buf;
  Packer p(buf);
  p.PackStr("not-bin");
  Unpacker u(buf);
  EXPECT_THROW(u.NextBinView(), DecodeError);
}

TEST(Msgpack, IntegerEqualityAcrossSignedness) {
  // Non-negative values packed as int64 decode as uint64 and must still
  // compare equal at the Value level (the wire has one representation).
  EXPECT_EQ(Value(std::int64_t{200}), Value(std::uint64_t{200}));
  EXPECT_EQ(Value(std::uint64_t{200}), Value(std::int64_t{200}));
  EXPECT_NE(Value(std::int64_t{-1}),
            Value(std::numeric_limits<std::uint64_t>::max()));
  EXPECT_NE(Value(std::int64_t{5}), Value(std::uint64_t{6}));
  // Inside containers too.
  Array a1{Value(std::int64_t{300})};
  Array a2{Value(std::uint64_t{300})};
  EXPECT_EQ(Value(a1), Value(a2));
}

TEST(Msgpack, UnpackerPositionTracksConsumption) {
  Bytes buf;
  Packer p(buf);
  p.PackInt(5);
  p.PackStr("abc");
  Unpacker u(buf);
  EXPECT_EQ(u.position(), 0u);
  (void)u.NextInt();
  EXPECT_EQ(u.position(), 1u);  // positive fixint is one byte
  (void)u.NextStr();
  EXPECT_EQ(u.position(), buf.size());
  EXPECT_TRUE(u.AtEnd());
}

class MsgpackFuzzTest : public ::testing::TestWithParam<int> {};

// Random value trees must round-trip exactly.
TEST_P(MsgpackFuzzTest, RandomTreeRoundTrip) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 2654435761u + 17);
  std::function<Value(int)> make = [&](int depth) -> Value {
    const int pick = static_cast<int>(rng() % (depth > 3 ? 6 : 8));
    switch (pick) {
      case 0: return Value();
      case 1: return Value(static_cast<bool>(rng() & 1));
      case 2: return Value(static_cast<std::int64_t>(rng()) -
                           static_cast<std::int64_t>(rng()));
      case 3: return Value(static_cast<double>(rng()) / 1000.0);
      case 4: return Value(std::string(rng() % 40, 'a' + rng() % 26));
      case 5: return Value(Bytes(rng() % 64, static_cast<Byte>(rng())));
      case 6: {
        Array a;
        const size_t n = rng() % 8;
        for (size_t i = 0; i < n; ++i) a.push_back(make(depth + 1));
        return Value(std::move(a));
      }
      default: {
        Map m;
        const size_t n = rng() % 6;
        for (size_t i = 0; i < n; ++i) {
          m.emplace_back(make(depth + 2), make(depth + 1));
        }
        return Value(std::move(m));
      }
    }
  };
  for (int i = 0; i < 50; ++i) {
    const Value v = make(0);
    EXPECT_EQ(RoundTrip(v), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsgpackFuzzTest, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Malformed-input hardening: a crafted length header must be rejected
// before any allocation happens, with a typed DecodeError.
// ---------------------------------------------------------------------------

TEST(MsgpackHardening, FourGigabyteArrayClaimRejected) {
  // array32 claiming 0xFFFFFFFF elements, followed by a single byte.
  // Decoding this used to reserve ~50 MB and then spin on 4 billion
  // element decodes; now the impossible length is rejected up front.
  const Bytes crafted = {0xDD, 0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  EXPECT_THROW(Decode(crafted), DecodeError);
}

TEST(MsgpackHardening, FourGigabyteBinClaimRejected) {
  // bin32 claiming 0xFFFFFFFF payload bytes with none attached.
  const Bytes crafted = {0xC6, 0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_THROW(Decode(crafted), DecodeError);
}

TEST(MsgpackHardening, FourGigabyteStrClaimRejected) {
  const Bytes crafted = {0xDB, 0xFF, 0xFF, 0xFF, 0xFF, 'h', 'i'};
  EXPECT_THROW(Decode(crafted), DecodeError);
}

TEST(MsgpackHardening, MapClaimLargerThanInputRejected) {
  // map16 claiming 0xFFFF entries (each needs >= 2 bytes) in a 4-byte
  // input.
  const Bytes crafted = {0xDE, 0xFF, 0xFF, 0xC0};
  EXPECT_THROW(Decode(crafted), DecodeError);
}

TEST(MsgpackHardening, StreamingHeadersValidateLengths) {
  const Bytes array_claim = {0xDD, 0xFF, 0xFF, 0xFF, 0xFF};
  Unpacker array_unpacker(array_claim);
  EXPECT_THROW(array_unpacker.NextArrayHeader(), DecodeError);

  const Bytes map_claim = {0xDE, 0xFF, 0xFF};
  Unpacker map_unpacker(map_claim);
  EXPECT_THROW(map_unpacker.NextMapHeader(), DecodeError);
}

TEST(MsgpackHardening, DeepNestingRejectedNotStackOverflow) {
  // 4096 nested single-element arrays: [[[[...0...]]]]. Each level is a
  // fixarray of one element, so the length check passes at every level
  // and only the depth limit can stop the recursion.
  Bytes crafted(4096, 0x91);
  crafted.push_back(0x00);
  EXPECT_THROW(Decode(crafted), DecodeError);
}

TEST(MsgpackHardening, ReasonableNestingStillDecodes) {
  Bytes nested(32, 0x91);  // depth 32 < kMaxDepth
  nested.push_back(0x07);
  const Value v = Decode(nested);
  const Value* inner = &v;
  for (int i = 0; i < 32; ++i) inner = &inner->As<Array>().at(0);
  EXPECT_EQ(inner->AsInt(), 7);
}

TEST(MsgpackHardening, ExactFitStillDecodes) {
  // The clamp must not reject legitimate payloads that use every byte.
  Array a;
  for (int i = 0; i < 100; ++i) a.emplace_back(static_cast<std::int64_t>(i));
  const Bytes encoded = Encode(Value(std::move(a)));
  const Value decoded = Decode(encoded);
  EXPECT_EQ(decoded.As<Array>().size(), 100u);
}

}  // namespace
}  // namespace vizndp::msgpack
