#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/error.h"
#include "net/fault.h"
#include "net/inproc.h"
#include "net/link_model.h"
#include "net/reconnect.h"
#include "net/retry.h"
#include "net/tcp.h"

namespace vizndp::net {
namespace {

using namespace std::chrono_literals;

TEST(SimulatedLink, TransferTimeMath) {
  LinkConfig cfg;
  cfg.bandwidth_bytes_per_sec = 1000.0;
  cfg.latency_sec = 0.5;
  cfg.overhead_factor = 1.0;
  SimulatedLink link(cfg);
  EXPECT_DOUBLE_EQ(link.TransferSeconds(1000), 1.5);
  EXPECT_DOUBLE_EQ(link.TransferSeconds(0), 0.5);
}

TEST(SimulatedLink, ChargeAccumulates) {
  SimulatedLink link({.bandwidth_bytes_per_sec = 100.0,
                      .latency_sec = 0.0,
                      .overhead_factor = 1.0});
  link.ChargeTransfer(50);
  link.ChargeTransfer(150);
  EXPECT_EQ(link.bytes_transferred(), 200u);
  EXPECT_EQ(link.messages(), 2u);
  EXPECT_NEAR(link.virtual_seconds(), 2.0, 1e-12);
  link.Reset();
  EXPECT_EQ(link.bytes_transferred(), 0u);
  EXPECT_EQ(link.virtual_seconds(), 0.0);
}

TEST(SimulatedLink, OverheadFactorAppliesToPayloadOnly) {
  SimulatedLink link({.bandwidth_bytes_per_sec = 100.0,
                      .latency_sec = 1.0,
                      .overhead_factor = 2.0});
  EXPECT_DOUBLE_EQ(link.TransferSeconds(100), 1.0 + 2.0);
}

TEST(InProc, PairDeliversFramesInOrder) {
  TransportPair pair = CreateInProcPair();
  pair.a->Send(ToBytes("one"));
  pair.a->Send(ToBytes("two"));
  EXPECT_EQ(pair.b->Receive(), ToBytes("one"));
  EXPECT_EQ(pair.b->Receive(), ToBytes("two"));
}

TEST(InProc, FullDuplex) {
  TransportPair pair = CreateInProcPair();
  pair.a->Send(ToBytes("ping"));
  pair.b->Send(ToBytes("pong"));
  EXPECT_EQ(pair.b->Receive(), ToBytes("ping"));
  EXPECT_EQ(pair.a->Receive(), ToBytes("pong"));
}

TEST(InProc, CrossThreadBlockingReceive) {
  TransportPair pair = CreateInProcPair();
  std::thread producer([t = std::move(pair.a)] {
    for (int i = 0; i < 100; ++i) {
      Bytes frame(3, static_cast<Byte>(i));
      t->Send(frame);
    }
  });
  for (int i = 0; i < 100; ++i) {
    const Bytes frame = pair.b->Receive();
    ASSERT_EQ(frame, Bytes(3, static_cast<Byte>(i)));
  }
  producer.join();
}

TEST(InProc, CloseUnblocksAndThrows) {
  TransportPair pair = CreateInProcPair();
  pair.a->Close();
  EXPECT_THROW(pair.b->Receive(), Error);
}

TEST(InProc, ChargesLinkPerSend) {
  SimulatedLink link({.bandwidth_bytes_per_sec = 1e6,
                      .latency_sec = 0.0,
                      .overhead_factor = 1.0});
  TransportPair pair = CreateInProcPair(&link);
  pair.a->Send(Bytes(1000));
  pair.b->Send(Bytes(500));
  (void)pair.b->Receive();
  (void)pair.a->Receive();
  EXPECT_EQ(link.bytes_transferred(), 1500u);
  EXPECT_NEAR(link.virtual_seconds(), 0.0015, 1e-9);
}

TEST(Tcp, LoopbackFrameRoundTrip) {
  TcpListener listener(0);
  TransportPtr server;
  std::thread accepter([&] { server = listener.Accept(); });
  TransportPtr client = TcpConnect("127.0.0.1", listener.port());
  accepter.join();

  client->Send(ToBytes("hello tcp"));
  EXPECT_EQ(server->Receive(), ToBytes("hello tcp"));
  server->Send(ToBytes("reply"));
  EXPECT_EQ(client->Receive(), ToBytes("reply"));
}

TEST(Tcp, LargeFrame) {
  TcpListener listener(0);
  TransportPtr server;
  std::thread accepter([&] { server = listener.Accept(); });
  TransportPtr client = TcpConnect("127.0.0.1", listener.port());
  accepter.join();

  Bytes big(5 * 1024 * 1024);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<Byte>(i * 2654435761u);
  std::thread sender([&] { client->Send(big); });
  EXPECT_EQ(server->Receive(), big);
  sender.join();
}

TEST(Tcp, EmptyFrame) {
  TcpListener listener(0);
  TransportPtr server;
  std::thread accepter([&] { server = listener.Accept(); });
  TransportPtr client = TcpConnect("127.0.0.1", listener.port());
  accepter.join();
  client->Send(ByteSpan{});
  EXPECT_EQ(server->Receive(), Bytes{});
}

TEST(Tcp, PeerCloseThrowsOnReceive) {
  TcpListener listener(0);
  TransportPtr server;
  std::thread accepter([&] { server = listener.Accept(); });
  TransportPtr client = TcpConnect("127.0.0.1", listener.port());
  accepter.join();
  client->Close();
  EXPECT_THROW(server->Receive(), IoError);
}

TEST(Tcp, ConnectFailureThrows) {
  // Port 1 on loopback is essentially never listening.
  EXPECT_THROW(TcpConnect("127.0.0.1", 1), IoError);
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST(Deadline, InProcReceiveTimesOutTyped) {
  TransportPair pair = CreateInProcPair();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(pair.b->Receive(DeadlineAfter(30ms)), TimeoutError);
  EXPECT_GE(std::chrono::steady_clock::now() - start, 25ms);
}

TEST(Deadline, InProcReceiveBeforeDeadlineDelivers) {
  TransportPair pair = CreateInProcPair();
  pair.a->Send(ToBytes("in time"));
  EXPECT_EQ(pair.b->Receive(DeadlineAfter(1000ms)), ToBytes("in time"));
}

TEST(Deadline, TimeoutIsNotPeerClosed) {
  // Callers must be able to tell "slow" from "dead": a timeout is not an
  // IoError, and a closed peer is not a TimeoutError.
  TransportPair slow = CreateInProcPair();
  try {
    slow.b->Receive(DeadlineAfter(10ms));
    FAIL() << "expected TimeoutError";
  } catch (const IoError&) {
    FAIL() << "timeout must not be an IoError";
  } catch (const TimeoutError&) {
  }

  TransportPair dead = CreateInProcPair();
  dead.a->Close();
  EXPECT_THROW(dead.b->Receive(DeadlineAfter(10ms)), PeerClosedError);
}

TEST(Deadline, DeadlineAfterNonPositiveMeansForever) {
  EXPECT_EQ(DeadlineAfter(0ms), kNoDeadline);
  EXPECT_EQ(DeadlineAfter(-5ms), kNoDeadline);
}

TEST(Deadline, TcpReceiveTimesOut) {
  TcpListener listener(0);
  TransportPtr server;
  std::thread accepter([&] { server = listener.Accept(); });
  TransportPtr client = TcpConnect("127.0.0.1", listener.port());
  accepter.join();
  EXPECT_THROW(client->Receive(DeadlineAfter(30ms)), TimeoutError);
  // The connection is still usable: no frame bytes were consumed.
  server->Send(ToBytes("late but intact"));
  EXPECT_EQ(client->Receive(DeadlineAfter(1000ms)), ToBytes("late but intact"));
}

// ---------------------------------------------------------------------------
// TCP robustness (partial writes, dead peers, frame cap)
// ---------------------------------------------------------------------------

TEST(Tcp, SendToClosedPeerThrowsPeerClosed) {
  TcpListener listener(0);
  TransportPtr server;
  std::thread accepter([&] { server = listener.Accept(); });
  TransportPtr client = TcpConnect("127.0.0.1", listener.port());
  accepter.join();
  server->Close();

  // A frame far larger than any socket buffer guarantees the kernel
  // reports the dead peer (EPIPE/ECONNRESET) mid-write; the first send
  // may still land entirely in the local buffer, hence the loop. Before
  // the MSG_NOSIGNAL fix this killed the process with SIGPIPE.
  const Bytes big(16 * 1024 * 1024, Byte{0xAB});
  bool threw_peer_closed = false;
  for (int i = 0; i < 8 && !threw_peer_closed; ++i) {
    try {
      client->Send(big);
    } catch (const PeerClosedError&) {
      threw_peer_closed = true;
    }
  }
  EXPECT_TRUE(threw_peer_closed);
}

TEST(Tcp, OversizedFrameHeaderRejectedBeforeAllocation) {
  TcpOptions options;
  options.max_frame_bytes = 1024;
  TcpListener listener(0, options);
  TransportPtr server;
  std::thread accepter([&] { server = listener.Accept(); });
  TransportPtr client = TcpConnect("127.0.0.1", listener.port());
  accepter.join();
  client->Send(Bytes(4096, Byte{0x11}));
  EXPECT_THROW(server->Receive(DeadlineAfter(1000ms)), DecodeError);
}

// ---------------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------------

TEST(RetryPolicy, DeterministicAndBounded) {
  RetryPolicy policy;
  policy.base_delay = 1000us;
  policy.max_delay = 8000us;
  policy.jitter = 0.5;
  policy.seed = 42;
  for (int retry = 1; retry <= 6; ++retry) {
    const auto a = policy.DelayBefore(retry, 7);
    const auto b = policy.DelayBefore(retry, 7);
    EXPECT_EQ(a, b) << "jitter must be a pure function of its inputs";
    const auto ceiling =
        std::min(policy.max_delay, policy.base_delay * (1 << (retry - 1)));
    EXPECT_LE(a, ceiling);
    EXPECT_GE(a, ceiling / 2);  // jitter = 0.5 keeps at least half
  }
}

TEST(RetryPolicy, SaltDecorrelatesUsers) {
  RetryPolicy policy;
  policy.jitter = 0.999;
  bool any_differ = false;
  for (int retry = 1; retry <= 8; ++retry) {
    if (policy.DelayBefore(retry, 1) != policy.DelayBefore(retry, 2)) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(RetryPolicy, ZeroJitterIsExactExponential) {
  RetryPolicy policy;
  policy.base_delay = 100us;
  policy.max_delay = 1000us;
  policy.jitter = 0.0;
  EXPECT_EQ(policy.DelayBefore(1), 100us);
  EXPECT_EQ(policy.DelayBefore(2), 200us);
  EXPECT_EQ(policy.DelayBefore(3), 400us);
  EXPECT_EQ(policy.DelayBefore(4), 800us);
  EXPECT_EQ(policy.DelayBefore(5), 1000us);  // capped
  EXPECT_EQ(policy.DelayBefore(50), 1000us); // shift doesn't overflow
}

// ---------------------------------------------------------------------------
// FaultInjectingTransport
// ---------------------------------------------------------------------------

struct FaultedPair {
  TransportPtr peer;                               // far end, unwrapped
  std::shared_ptr<FaultInjectingTransport> faulty; // near end, wrapped

  FaultedPair() {
    TransportPair pair = CreateInProcPair();
    peer = std::move(pair.a);
    faulty = std::make_shared<FaultInjectingTransport>(std::move(pair.b));
  }
};

TEST(FaultInjection, PassThroughByDefault) {
  FaultedPair fp;
  fp.faulty->Send(ToBytes("hello"));
  EXPECT_EQ(fp.peer->Receive(), ToBytes("hello"));
  fp.peer->Send(ToBytes("world"));
  EXPECT_EQ(fp.faulty->Receive(), ToBytes("world"));
  EXPECT_EQ(fp.faulty->stats().frames_sent, 1u);
  EXPECT_EQ(fp.faulty->stats().frames_received, 1u);
  EXPECT_EQ(fp.faulty->stats().dropped, 0u);
}

TEST(FaultInjection, ScriptedSendDrop) {
  FaultedPair fp;
  fp.faulty->ScriptSend({FaultAction::Drop(), FaultAction::Pass()});
  fp.faulty->Send(ToBytes("lost"));
  fp.faulty->Send(ToBytes("delivered"));
  EXPECT_EQ(fp.peer->Receive(), ToBytes("delivered"));
  EXPECT_EQ(fp.faulty->stats().dropped, 1u);
  EXPECT_EQ(fp.faulty->stats().frames_sent, 1u);
}

TEST(FaultInjection, LoopLastBlackholesDirection) {
  FaultedPair fp;
  fp.faulty->ScriptSend({FaultAction::Drop()}, /*loop_last=*/true);
  for (int i = 0; i < 5; ++i) fp.faulty->Send(ToBytes("into the void"));
  EXPECT_EQ(fp.faulty->stats().dropped, 5u);
  EXPECT_THROW(fp.peer->Receive(DeadlineAfter(20ms)), TimeoutError);
}

TEST(FaultInjection, ReceiveDropRetriesUntilDeadline) {
  FaultedPair fp;
  fp.faulty->ScriptReceive({FaultAction::Drop(), FaultAction::Pass()});
  fp.peer->Send(ToBytes("first"));
  fp.peer->Send(ToBytes("second"));
  // The first frame is swallowed; Receive keeps waiting and returns the
  // second one rather than surfacing the drop.
  EXPECT_EQ(fp.faulty->Receive(DeadlineAfter(1000ms)), ToBytes("second"));
  EXPECT_EQ(fp.faulty->stats().dropped, 1u);
}

TEST(FaultInjection, DuplicateDeliversTwice) {
  FaultedPair fp;
  fp.faulty->ScriptReceive({FaultAction::Duplicate()});
  fp.peer->Send(ToBytes("echo"));
  EXPECT_EQ(fp.faulty->Receive(DeadlineAfter(1000ms)), ToBytes("echo"));
  EXPECT_EQ(fp.faulty->Receive(DeadlineAfter(1000ms)), ToBytes("echo"));
  EXPECT_EQ(fp.faulty->stats().duplicated, 1u);
}

TEST(FaultInjection, TruncateKeepsPrefix) {
  FaultedPair fp;
  fp.faulty->ScriptSend({FaultAction::Truncate(3)});
  fp.faulty->Send(ToBytes("truncate me"));
  EXPECT_EQ(fp.peer->Receive(), ToBytes("tru"));
  EXPECT_EQ(fp.faulty->stats().truncated, 1u);
}

TEST(FaultInjection, BitFlipCorruptsExactlyOneBit) {
  FaultedPair fp;
  fp.faulty->ScriptSend({FaultAction::BitFlip(13)});
  const Bytes original = ToBytes("corruptible");
  fp.faulty->Send(original);
  const Bytes received = fp.peer->Receive();
  ASSERT_EQ(received.size(), original.size());
  int differing_bits = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    differing_bits += __builtin_popcount(original[i] ^ received[i]);
  }
  EXPECT_EQ(differing_bits, 1);
  EXPECT_EQ(fp.faulty->stats().bits_flipped, 1u);
}

TEST(FaultInjection, DelayHoldsFrame) {
  FaultedPair fp;
  fp.faulty->ScriptReceive({FaultAction::Delay(30'000us)});
  fp.peer->Send(ToBytes("slow frame"));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(fp.faulty->Receive(DeadlineAfter(1000ms)), ToBytes("slow frame"));
  EXPECT_GE(std::chrono::steady_clock::now() - start, 25ms);
  EXPECT_EQ(fp.faulty->stats().delayed, 1u);
}

TEST(FaultInjection, DelayPastDeadlineBecomesTimeout) {
  FaultedPair fp;
  fp.faulty->ScriptReceive({FaultAction::Delay(500'000us)});
  fp.peer->Send(ToBytes("too slow"));
  EXPECT_THROW(fp.faulty->Receive(DeadlineAfter(20ms)), TimeoutError);
}

TEST(FaultInjection, DisconnectIsPermanent) {
  FaultedPair fp;
  fp.faulty->ScriptSend({FaultAction::Disconnect()});
  EXPECT_THROW(fp.faulty->Send(ToBytes("x")), PeerClosedError);
  EXPECT_THROW(fp.faulty->Send(ToBytes("y")), PeerClosedError);
  EXPECT_THROW(fp.faulty->Receive(DeadlineAfter(10ms)), PeerClosedError);
  EXPECT_EQ(fp.faulty->stats().disconnects, 1u);
}

TEST(FaultInjection, SeededRandomDropsAreReproducible) {
  auto run = [](std::uint64_t seed) {
    FaultedPair fp;
    FaultProbabilities probabilities;
    probabilities.drop = 0.5;
    probabilities.seed = seed;
    fp.faulty->SetRandomFaults(probabilities);
    for (int i = 0; i < 64; ++i) fp.faulty->Send(ToBytes("frame"));
    return fp.faulty->stats().dropped;
  };
  const std::uint64_t dropped = run(7);
  EXPECT_EQ(dropped, run(7)) << "same seed must replay the same faults";
  EXPECT_GT(dropped, 8u);
  EXPECT_LT(dropped, 56u);
}

TEST(FaultSpec, ParsesCompactGrammar) {
  const FaultSpec spec =
      ParseFaultSpec("send.drop*2,recv.delay=2000*3,send.flip=5");
  ASSERT_EQ(spec.send_script.size(), 3u);
  EXPECT_EQ(spec.send_script[0].kind, FaultKind::kDrop);
  EXPECT_EQ(spec.send_script[1].kind, FaultKind::kDrop);
  EXPECT_EQ(spec.send_script[2].kind, FaultKind::kBitFlip);
  EXPECT_EQ(spec.send_script[2].flip_bit, 5u);
  EXPECT_FALSE(spec.send_loop_last);
  ASSERT_EQ(spec.recv_script.size(), 3u);
  EXPECT_EQ(spec.recv_script[0].kind, FaultKind::kDelay);
  EXPECT_EQ(spec.recv_script[0].delay, 2000us);
}

TEST(FaultSpec, TrailingPlusLoopsForever) {
  const FaultSpec spec = ParseFaultSpec("send.drop+");
  ASSERT_EQ(spec.send_script.size(), 1u);
  EXPECT_TRUE(spec.send_loop_last);
}

TEST(FaultSpec, MalformedSpecThrows) {
  EXPECT_THROW(ParseFaultSpec("sideways.drop"), Error);
  EXPECT_THROW(ParseFaultSpec("send.explode"), Error);
  EXPECT_THROW(ParseFaultSpec("send."), Error);
}

// ---------------------------------------------------------------------------
// ReconnectingTransport
// ---------------------------------------------------------------------------

TEST(Reconnect, RedialsAfterPeerLossOnSend) {
  // Each dial creates a fresh pair; the far ends are kept so the test
  // can kill the current connection and inspect what arrived.
  std::vector<TransportPtr> far_ends;
  auto factory = [&far_ends]() -> TransportPtr {
    TransportPair pair = CreateInProcPair();
    far_ends.push_back(std::move(pair.a));
    return std::move(pair.b);
  };
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay = 100us;
  policy.jitter = 0.0;
  ReconnectingTransport transport(factory, policy);

  transport.Send(ToBytes("first"));
  ASSERT_EQ(far_ends.size(), 1u);
  EXPECT_EQ(far_ends[0]->Receive(), ToBytes("first"));

  far_ends[0]->Close();  // peer dies
  transport.Send(ToBytes("second"));
  ASSERT_EQ(far_ends.size(), 2u);
  EXPECT_EQ(far_ends[1]->Receive(), ToBytes("second"));
  EXPECT_EQ(transport.stats().reconnects, 1u);
}

TEST(Reconnect, DialFailuresBackOffThenThrow) {
  int calls = 0;
  auto factory = [&calls]() -> TransportPtr {
    ++calls;
    throw IoError("dial refused");
  };
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay = 100us;
  policy.jitter = 0.0;
  ReconnectingTransport transport(factory, policy);
  EXPECT_THROW(transport.Send(ToBytes("x")), IoError);
  EXPECT_GE(calls, 3);
  EXPECT_GE(transport.stats().dial_failures, 3u);
}

TEST(Reconnect, ReceiveLossPropagatesButNextSendRedials) {
  std::vector<TransportPtr> far_ends;
  auto factory = [&far_ends]() -> TransportPtr {
    TransportPair pair = CreateInProcPair();
    far_ends.push_back(std::move(pair.a));
    return std::move(pair.b);
  };
  ReconnectingTransport transport(factory, RetryPolicy{});
  transport.Send(ToBytes("request"));
  far_ends[0]->Close();
  // The pending reply died with the connection: the caller must see it.
  EXPECT_THROW(transport.Receive(DeadlineAfter(100ms)), PeerClosedError);
  // But the transport recovers on the next use.
  transport.Send(ToBytes("retry"));
  ASSERT_EQ(far_ends.size(), 2u);
  EXPECT_EQ(far_ends[1]->Receive(), ToBytes("retry"));
}

}  // namespace
}  // namespace vizndp::net
