#include <gtest/gtest.h>

#include <thread>

#include "common/error.h"
#include "net/inproc.h"
#include "net/link_model.h"
#include "net/tcp.h"

namespace vizndp::net {
namespace {

TEST(SimulatedLink, TransferTimeMath) {
  LinkConfig cfg;
  cfg.bandwidth_bytes_per_sec = 1000.0;
  cfg.latency_sec = 0.5;
  cfg.overhead_factor = 1.0;
  SimulatedLink link(cfg);
  EXPECT_DOUBLE_EQ(link.TransferSeconds(1000), 1.5);
  EXPECT_DOUBLE_EQ(link.TransferSeconds(0), 0.5);
}

TEST(SimulatedLink, ChargeAccumulates) {
  SimulatedLink link({.bandwidth_bytes_per_sec = 100.0,
                      .latency_sec = 0.0,
                      .overhead_factor = 1.0});
  link.ChargeTransfer(50);
  link.ChargeTransfer(150);
  EXPECT_EQ(link.bytes_transferred(), 200u);
  EXPECT_EQ(link.messages(), 2u);
  EXPECT_NEAR(link.virtual_seconds(), 2.0, 1e-12);
  link.Reset();
  EXPECT_EQ(link.bytes_transferred(), 0u);
  EXPECT_EQ(link.virtual_seconds(), 0.0);
}

TEST(SimulatedLink, OverheadFactorAppliesToPayloadOnly) {
  SimulatedLink link({.bandwidth_bytes_per_sec = 100.0,
                      .latency_sec = 1.0,
                      .overhead_factor = 2.0});
  EXPECT_DOUBLE_EQ(link.TransferSeconds(100), 1.0 + 2.0);
}

TEST(InProc, PairDeliversFramesInOrder) {
  TransportPair pair = CreateInProcPair();
  pair.a->Send(ToBytes("one"));
  pair.a->Send(ToBytes("two"));
  EXPECT_EQ(pair.b->Receive(), ToBytes("one"));
  EXPECT_EQ(pair.b->Receive(), ToBytes("two"));
}

TEST(InProc, FullDuplex) {
  TransportPair pair = CreateInProcPair();
  pair.a->Send(ToBytes("ping"));
  pair.b->Send(ToBytes("pong"));
  EXPECT_EQ(pair.b->Receive(), ToBytes("ping"));
  EXPECT_EQ(pair.a->Receive(), ToBytes("pong"));
}

TEST(InProc, CrossThreadBlockingReceive) {
  TransportPair pair = CreateInProcPair();
  std::thread producer([t = std::move(pair.a)] {
    for (int i = 0; i < 100; ++i) {
      Bytes frame(3, static_cast<Byte>(i));
      t->Send(frame);
    }
  });
  for (int i = 0; i < 100; ++i) {
    const Bytes frame = pair.b->Receive();
    ASSERT_EQ(frame, Bytes(3, static_cast<Byte>(i)));
  }
  producer.join();
}

TEST(InProc, CloseUnblocksAndThrows) {
  TransportPair pair = CreateInProcPair();
  pair.a->Close();
  EXPECT_THROW(pair.b->Receive(), Error);
}

TEST(InProc, ChargesLinkPerSend) {
  SimulatedLink link({.bandwidth_bytes_per_sec = 1e6,
                      .latency_sec = 0.0,
                      .overhead_factor = 1.0});
  TransportPair pair = CreateInProcPair(&link);
  pair.a->Send(Bytes(1000));
  pair.b->Send(Bytes(500));
  (void)pair.b->Receive();
  (void)pair.a->Receive();
  EXPECT_EQ(link.bytes_transferred(), 1500u);
  EXPECT_NEAR(link.virtual_seconds(), 0.0015, 1e-9);
}

TEST(Tcp, LoopbackFrameRoundTrip) {
  TcpListener listener(0);
  TransportPtr server;
  std::thread accepter([&] { server = listener.Accept(); });
  TransportPtr client = TcpConnect("127.0.0.1", listener.port());
  accepter.join();

  client->Send(ToBytes("hello tcp"));
  EXPECT_EQ(server->Receive(), ToBytes("hello tcp"));
  server->Send(ToBytes("reply"));
  EXPECT_EQ(client->Receive(), ToBytes("reply"));
}

TEST(Tcp, LargeFrame) {
  TcpListener listener(0);
  TransportPtr server;
  std::thread accepter([&] { server = listener.Accept(); });
  TransportPtr client = TcpConnect("127.0.0.1", listener.port());
  accepter.join();

  Bytes big(5 * 1024 * 1024);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<Byte>(i * 2654435761u);
  std::thread sender([&] { client->Send(big); });
  EXPECT_EQ(server->Receive(), big);
  sender.join();
}

TEST(Tcp, EmptyFrame) {
  TcpListener listener(0);
  TransportPtr server;
  std::thread accepter([&] { server = listener.Accept(); });
  TransportPtr client = TcpConnect("127.0.0.1", listener.port());
  accepter.join();
  client->Send(ByteSpan{});
  EXPECT_EQ(server->Receive(), Bytes{});
}

TEST(Tcp, PeerCloseThrowsOnReceive) {
  TcpListener listener(0);
  TransportPtr server;
  std::thread accepter([&] { server = listener.Accept(); });
  TransportPtr client = TcpConnect("127.0.0.1", listener.port());
  accepter.join();
  client->Close();
  EXPECT_THROW(server->Receive(), IoError);
}

TEST(Tcp, ConnectFailureThrows) {
  // Port 1 on loopback is essentially never listening.
  EXPECT_THROW(TcpConnect("127.0.0.1", 1), IoError);
}

}  // namespace
}  // namespace vizndp::net
