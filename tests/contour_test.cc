#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <set>

#include "contour/components.h"
#include "contour/contour_filter.h"
#include "contour/marching_cubes.h"
#include "contour/marching_squares.h"
#include "contour/mc_tables.h"
#include "contour/ms_core.h"
#include "contour/select.h"
#include "contour/sparse_field.h"

namespace vizndp::contour {
namespace {

std::vector<float> SphereField(const grid::Dims& d, double cx, double cy,
                               double cz) {
  std::vector<float> f(static_cast<size_t>(d.PointCount()));
  for (std::int64_t k = 0; k < d.nz; ++k) {
    for (std::int64_t j = 0; j < d.ny; ++j) {
      for (std::int64_t i = 0; i < d.nx; ++i) {
        const double dx = i - cx, dy = j - cy, dz = k - cz;
        f[static_cast<size_t>(d.Index(i, j, k))] =
            static_cast<float>(std::sqrt(dx * dx + dy * dy + dz * dz));
      }
    }
  }
  return f;
}

// Random field with a guard band of `border_value` so contours stay
// interior (watertightness then holds exactly).
std::vector<float> RandomInteriorField(const grid::Dims& d, unsigned seed,
                                       float border_value = 0.0f) {
  std::mt19937 rng(seed);
  std::vector<float> f(static_cast<size_t>(d.PointCount()), border_value);
  for (std::int64_t k = 1; k + 1 < d.nz; ++k) {
    for (std::int64_t j = 1; j + 1 < d.ny; ++j) {
      for (std::int64_t i = 1; i + 1 < d.nx; ++i) {
        f[static_cast<size_t>(d.Index(i, j, k))] =
            static_cast<float>(rng() % 1000) / 999.0f;
      }
    }
  }
  return f;
}

TEST(McTables, EdgeTableSymmetry) {
  // Complement cases use the same crossed edges.
  for (int c = 0; c < 256; ++c) {
    EXPECT_EQ(kMcEdgeTable[static_cast<size_t>(c)],
              kMcEdgeTable[static_cast<size_t>(255 - c)])
        << "case " << c;
  }
  EXPECT_EQ(kMcEdgeTable[0], 0);
  EXPECT_EQ(kMcEdgeTable[255], 0);
}

TEST(McTables, TriTableUsesExactlyTheFlaggedEdges) {
  for (int c = 0; c < 256; ++c) {
    std::uint16_t used = 0;
    const auto& tris = kMcTriTable[static_cast<size_t>(c)];
    for (int t = 0; t < 16 && tris[static_cast<size_t>(t)] != -1; ++t) {
      ASSERT_GE(tris[static_cast<size_t>(t)], 0);
      ASSERT_LT(tris[static_cast<size_t>(t)], 12);
      used |= static_cast<std::uint16_t>(1u << tris[static_cast<size_t>(t)]);
    }
    EXPECT_EQ(used, kMcEdgeTable[static_cast<size_t>(c)]) << "case " << c;
  }
}

TEST(McTables, TriangleCountsTerminateAndAreMultiplesOfThree) {
  for (int c = 0; c < 256; ++c) {
    int count = 0;
    const auto& tris = kMcTriTable[static_cast<size_t>(c)];
    while (count < 16 && tris[static_cast<size_t>(count)] != -1) ++count;
    EXPECT_EQ(count % 3, 0) << "case " << c;
    EXPECT_LE(count, 15);
  }
}

TEST(McTables, EdgeTableMatchesCrossingDefinition) {
  // Recompute the edge mask from first principles: edge e is crossed iff
  // its two corners lie on opposite sides of the case's inside set.
  for (int c = 0; c < 256; ++c) {
    std::uint16_t mask = 0;
    for (int e = 0; e < 12; ++e) {
      const bool a = (c >> kEdgeCorners[static_cast<size_t>(e)][0]) & 1;
      const bool b = (c >> kEdgeCorners[static_cast<size_t>(e)][1]) & 1;
      if (a != b) mask |= static_cast<std::uint16_t>(1u << e);
    }
    EXPECT_EQ(mask, kMcEdgeTable[static_cast<size_t>(c)]) << "case " << c;
  }
}

TEST(MarchingCubes, SingleInsideCornerMakesOneTriangle) {
  const grid::Dims d{2, 2, 2};
  std::vector<float> f(8, 0.0f);
  f[static_cast<size_t>(d.Index(0, 0, 0))] = 1.0f;
  const double iso[] = {0.5};
  const PolyData poly =
      MarchingCubes(d, grid::UniformGeometry{}, std::span<const float>(f), iso);
  ASSERT_EQ(poly.TriangleCount(), 1u);
  ASSERT_EQ(poly.PointCount(), 3u);
  // Vertices sit at the midpoints of the three edges leaving corner 0.
  std::set<std::array<double, 3>> got;
  for (const Vec3& p : poly.points()) got.insert({p.x, p.y, p.z});
  const std::set<std::array<double, 3>> want = {
      {0.5, 0, 0}, {0, 0.5, 0}, {0, 0, 0.5}};
  EXPECT_EQ(got, want);
}

TEST(MarchingCubes, InterpolationPositionsAreExact) {
  const grid::Dims d{2, 2, 2};
  std::vector<float> f(8, 0.0f);
  f[static_cast<size_t>(d.Index(0, 0, 0))] = 4.0f;  // iso 1 => t = 0.25
  const double iso[] = {1.0};
  const PolyData poly =
      MarchingCubes(d, grid::UniformGeometry{}, std::span<const float>(f), iso);
  ASSERT_EQ(poly.PointCount(), 3u);
  for (const Vec3& p : poly.points()) {
    EXPECT_NEAR(p.x + p.y + p.z, 0.75, 1e-12);  // one axis at 0.75
  }
}

TEST(MarchingCubes, SphereAreaAndWatertightness) {
  const grid::Dims d{40, 40, 40};
  const auto f = SphereField(d, 19.5, 19.5, 19.5);
  const double iso[] = {12.0};
  const PolyData poly =
      MarchingCubes(d, grid::UniformGeometry{}, std::span<const float>(f), iso);
  EXPECT_GT(poly.TriangleCount(), 1000u);
  EXPECT_EQ(poly.BoundaryEdgeCount(), 0u);
  const double expected = 4.0 * 3.14159265358979 * 12.0 * 12.0;
  EXPECT_NEAR(poly.SurfaceArea(), expected, 0.01 * expected);
  // Closed genus-0 surface: V - E + F = 2.
  const auto v = static_cast<std::int64_t>(poly.PointCount());
  const auto faces = static_cast<std::int64_t>(poly.TriangleCount());
  const std::int64_t edges = 3 * faces / 2;
  EXPECT_EQ(v - edges + faces, 2);
}

TEST(MarchingCubes, RespectsGeometry) {
  const grid::Dims d{2, 2, 2};
  grid::UniformGeometry geo{{10.0, 20.0, 30.0}, {2.0, 2.0, 2.0}};
  std::vector<float> f(8, 0.0f);
  f[static_cast<size_t>(d.Index(0, 0, 0))] = 1.0f;
  const double iso[] = {0.5};
  const PolyData poly = MarchingCubes(d, geo, std::span<const float>(f), iso);
  for (const Vec3& p : poly.points()) {
    EXPECT_GE(p.x, 10.0);
    EXPECT_LE(p.x, 12.0);
    EXPECT_GE(p.y, 20.0);
    EXPECT_GE(p.z, 30.0);
  }
}

TEST(MarchingCubes, MultiIsovalueEqualsConcatenation) {
  const grid::Dims d{12, 12, 12};
  const auto f = RandomInteriorField(d, 99);
  const double both[] = {0.3, 0.7};
  const double first[] = {0.3};
  const double second[] = {0.7};
  const PolyData combined =
      MarchingCubes(d, grid::UniformGeometry{}, std::span<const float>(f), both);
  PolyData sequential = MarchingCubes(d, grid::UniformGeometry{}, std::span<const float>(f), first);
  sequential.Append(MarchingCubes(d, grid::UniformGeometry{}, std::span<const float>(f), second));
  EXPECT_EQ(combined.TriangleCount(), sequential.TriangleCount());
  EXPECT_TRUE(combined.GeometricallyEquals(sequential, 0.0));
}

TEST(MarchingCubes, EmptyAndFullFieldsProduceNothing) {
  const grid::Dims d{6, 6, 6};
  const double iso[] = {0.5};
  std::vector<float> zeros(216, 0.0f);
  std::vector<float> ones(216, 1.0f);
  EXPECT_EQ(
      MarchingCubes(d, grid::UniformGeometry{}, std::span<const float>(zeros), iso).TriangleCount(),
      0u);
  EXPECT_EQ(
      MarchingCubes(d, grid::UniformGeometry{}, std::span<const float>(ones), iso).TriangleCount(),
      0u);
}

TEST(MarchingCubes, DoubleFieldsWork) {
  const grid::Dims d{8, 8, 8};
  std::vector<double> f(512);
  for (std::int64_t k = 0; k < 8; ++k)
    for (std::int64_t j = 0; j < 8; ++j)
      for (std::int64_t i = 0; i < 8; ++i)
        f[static_cast<size_t>(d.Index(i, j, k))] = static_cast<double>(k);
  const double iso[] = {3.5};
  const PolyData poly = MarchingCubes(d, grid::UniformGeometry{}, std::span<const double>(f), iso);
  // A flat z = 3.5 plane: 7x7 cells x 2 triangles.
  EXPECT_EQ(poly.TriangleCount(), 98u);
  for (const Vec3& p : poly.points()) EXPECT_DOUBLE_EQ(p.z, 3.5);
}

TEST(MarchingCubes, RejectsBadInputs) {
  const grid::Dims d{4, 4, 4};
  std::vector<float> wrong_size(63);
  const double iso[] = {0.5};
  EXPECT_THROW(
      MarchingCubes(d, grid::UniformGeometry{}, std::span<const float>(wrong_size), iso), Error);
  const grid::Dims flat{4, 4, 1};
  std::vector<float> f(16);
  EXPECT_THROW(MarchingCubes(flat, grid::UniformGeometry{}, std::span<const float>(f), iso), Error);
}

class WatertightTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(WatertightTest, RandomFieldsYieldClosedSurfaces) {
  const grid::Dims d{14, 14, 14};
  const auto f = RandomInteriorField(d, GetParam());
  const double isos[] = {0.25, 0.5, 0.75};
  for (const double iso : isos) {
    const double one[] = {iso};
    const PolyData poly =
        MarchingCubes(d, grid::UniformGeometry{}, std::span<const float>(f), one);
    EXPECT_GT(poly.TriangleCount(), 0u);
    EXPECT_EQ(poly.BoundaryEdgeCount(), 0u) << "iso " << iso;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WatertightTest,
                         ::testing::Range(1000u, 1012u));

TEST(MarchingSquares, SegmentTableUsesOnlyCrossedEdges) {
  // Mirror of McTables.TriTableUsesExactlyTheFlaggedEdges for 2D: every
  // segment endpoint must sit on an edge whose corners straddle the case.
  for (unsigned c = 0; c < 16; ++c) {
    std::uint8_t crossed = 0;
    for (int e = 0; e < 4; ++e) {
      const bool a = (c >> detail::kSqEdgeCorners[static_cast<size_t>(e)][0]) & 1;
      const bool b = (c >> detail::kSqEdgeCorners[static_cast<size_t>(e)][1]) & 1;
      if (a != b) crossed |= static_cast<std::uint8_t>(1u << e);
    }
    std::uint8_t used = 0;
    const auto& segs = detail::kSqSegments[c];
    for (int s = 0; s < 5 && segs[static_cast<size_t>(s)] != -1; ++s) {
      used |= static_cast<std::uint8_t>(1u << segs[static_cast<size_t>(s)]);
    }
    if (c == 5 || c == 10) {
      EXPECT_EQ(used, 0) << "saddles are handled at run time, case " << c;
      EXPECT_EQ(crossed, 0b1111) << "case " << c;
    } else {
      EXPECT_EQ(used, crossed) << "case " << c;
    }
  }
}

TEST(MarchingSquares, AllVerticesAreFiniteOnRandomFields) {
  for (unsigned seed = 100; seed < 110; ++seed) {
    const grid::Dims d{15, 11, 1};
    std::mt19937 rng(seed);
    std::vector<float> f(static_cast<size_t>(d.PointCount()));
    for (auto& v : f) v = static_cast<float>(rng() % 1000) / 999.0f;
    const double isos[] = {0.2, 0.5, 0.8};
    const PolyData poly =
        MarchingSquares(d, grid::UniformGeometry{}, std::span<const float>(f), isos);
    for (const Vec3& p : poly.points()) {
      ASSERT_TRUE(std::isfinite(p.x) && std::isfinite(p.y)) << "seed " << seed;
      // On an edge: within the grid and on a lattice line.
      ASSERT_GE(p.x, 0.0);
      ASSERT_LE(p.x, static_cast<double>(d.nx - 1));
      ASSERT_GE(p.y, 0.0);
      ASSERT_LE(p.y, static_cast<double>(d.ny - 1));
    }
  }
}

TEST(MarchingSquares, Fig3StyleGrid) {
  // The paper's Fig. 3: an 8x6 mesh of values 0..9 contoured at 5.
  const grid::Dims d{8, 6, 1};
  std::mt19937 rng(5);
  std::vector<float> f(48);
  for (auto& v : f) v = static_cast<float>(rng() % 10);
  const double iso[] = {5.0};
  const PolyData poly =
      MarchingSquares(d, grid::UniformGeometry{}, std::span<const float>(f), iso);
  EXPECT_GT(poly.LineCount(), 0u);
  EXPECT_EQ(poly.TriangleCount(), 0u);
  // Every contour vertex lies on a grid edge: one coordinate is integral
  // and linear interpolation along the other recovers the isovalue.
  for (const Vec3& p : poly.points()) {
    EXPECT_DOUBLE_EQ(p.z, 0.0);
    const bool on_x_edge = std::abs(p.y - std::round(p.y)) < 1e-12;
    const bool on_y_edge = std::abs(p.x - std::round(p.x)) < 1e-12;
    ASSERT_TRUE(on_x_edge || on_y_edge);
    if (on_x_edge && !on_y_edge) {
      const auto j = static_cast<std::int64_t>(std::round(p.y));
      const auto i0 = static_cast<std::int64_t>(std::floor(p.x));
      const double va = f[static_cast<size_t>(d.Index(i0, j))];
      const double vb = f[static_cast<size_t>(d.Index(i0 + 1, j))];
      EXPECT_NEAR(va + (p.x - i0) * (vb - va), 5.0, 1e-9);
    }
  }
}

TEST(MarchingSquares, SingleInsideCorner) {
  const grid::Dims d{2, 2, 1};
  std::vector<float> f = {1.0f, 0.0f, 0.0f, 0.0f};
  const double iso[] = {0.5};
  const PolyData poly =
      MarchingSquares(d, grid::UniformGeometry{}, std::span<const float>(f), iso);
  ASSERT_EQ(poly.LineCount(), 1u);
  ASSERT_EQ(poly.PointCount(), 2u);
}

TEST(MarchingSquares, SaddleCasesProduceTwoSegments) {
  const grid::Dims d{2, 2, 1};
  // Corners (0,0) and (1,1) inside (case 5 in cell-corner order); the
  // cell average 0.5 < iso resolves the saddle into two separate arcs.
  std::vector<float> low_center = {1.0f, 0.0f, 0.0f, 1.0f};
  const double iso[] = {0.6};
  const PolyData poly =
      MarchingSquares(d, grid::UniformGeometry{}, std::span<const float>(low_center), iso);
  EXPECT_EQ(poly.LineCount(), 2u);
}

TEST(MarchingSquares, ClosedLoopForIsland) {
  const grid::Dims d{5, 5, 1};
  std::vector<float> f(25, 0.0f);
  f[static_cast<size_t>(d.Index(2, 2))] = 1.0f;
  const double iso[] = {0.5};
  const PolyData poly =
      MarchingSquares(d, grid::UniformGeometry{}, std::span<const float>(f), iso);
  // A single interior peak yields a small closed loop: 4 segments.
  EXPECT_EQ(poly.LineCount(), 4u);
}

TEST(ContourFilter, DispatchesOnDimensionality) {
  ContourFilter filter({0.5});
  grid::Dataset flat(grid::Dims{4, 4, 1});
  flat.AddArray(grid::DataArray::FromVector(
      "f", std::vector<float>{0, 0, 0, 0, 0, 1, 1, 0, 0, 1, 1, 0, 0, 0, 0, 0}));
  const PolyData lines = filter.Execute(flat, "f");
  EXPECT_GT(lines.LineCount(), 0u);
  EXPECT_EQ(lines.TriangleCount(), 0u);

  grid::Dataset volume(grid::Dims{3, 3, 3});
  std::vector<float> f3(27, 0.0f);
  f3[static_cast<size_t>(volume.dims().Index(1, 1, 1))] = 1.0f;
  volume.AddArray(grid::DataArray::FromVector("f", f3));
  const PolyData tris = filter.Execute(volume, "f");
  EXPECT_GT(tris.TriangleCount(), 0u);
  EXPECT_EQ(tris.BoundaryEdgeCount(), 0u);
}

TEST(ContourFilter, RequiresIsovalues) {
  ContourFilter filter;
  grid::Dataset ds(grid::Dims{2, 2, 2});
  ds.AddArray(grid::DataArray::FromVector("f", std::vector<float>(8)));
  EXPECT_THROW(filter.Execute(ds, "f"), Error);
}

TEST(Selection, ConstantFieldSelectsNothing) {
  const grid::Dims d{8, 8, 8};
  const auto a =
      grid::DataArray::FromVector("c", std::vector<float>(512, 0.42f));
  const double isos[] = {0.1, 0.42, 0.9};
  const Selection sel = SelectInterestingPoints(d, a, isos);
  // inside(x) = x >= iso means a field exactly at an isovalue is uniformly
  // inside — no crossings anywhere.
  EXPECT_TRUE(sel.ids.empty());
  EXPECT_EQ(sel.Selectivity(), 0.0);
}

TEST(Selection, CompletenessEveryMixedCellCornerIsSelected) {
  const grid::Dims d{10, 10, 10};
  const auto f = RandomInteriorField(d, 4242);
  const auto a = grid::DataArray::FromVector("f", f);
  const double isos[] = {0.4};
  const Selection sel = SelectInterestingPoints(d, a, isos);
  std::set<grid::PointId> selected(sel.ids.begin(), sel.ids.end());

  for (std::int64_t k = 0; k + 1 < d.nz; ++k) {
    for (std::int64_t j = 0; j + 1 < d.ny; ++j) {
      for (std::int64_t i = 0; i + 1 < d.nx; ++i) {
        bool any_inside = false, any_outside = false;
        for (const auto& off : kCornerOffsets) {
          const float v =
              f[static_cast<size_t>(d.Index(i + off[0], j + off[1], k + off[2]))];
          (v >= 0.4 ? any_inside : any_outside) = true;
        }
        if (any_inside && any_outside) {
          for (const auto& off : kCornerOffsets) {
            EXPECT_TRUE(selected.count(d.Index(i + off[0], j + off[1], k + off[2])))
                << "cell " << i << "," << j << "," << k;
          }
        }
      }
    }
  }
}

TEST(Selection, TightnessEverySelectedPointTouchesAMixedCell) {
  const grid::Dims d{10, 10, 10};
  const auto f = RandomInteriorField(d, 777);
  const auto a = grid::DataArray::FromVector("f", f);
  const double isos[] = {0.6};
  const Selection sel = SelectInterestingPoints(d, a, isos);
  const auto cell_mixed = [&](std::int64_t ci, std::int64_t cj,
                              std::int64_t ck) {
    bool in = false, out = false;
    for (const auto& off : kCornerOffsets) {
      const float v = f[static_cast<size_t>(
          d.Index(ci + off[0], cj + off[1], ck + off[2]))];
      (v >= 0.6 ? in : out) = true;
    }
    return in && out;
  };
  for (const grid::PointId id : sel.ids) {
    const auto [i, j, k] = d.Coords(id);
    bool touches = false;
    for (int dk = -1; dk <= 0 && !touches; ++dk) {
      for (int dj = -1; dj <= 0 && !touches; ++dj) {
        for (int di = -1; di <= 0 && !touches; ++di) {
          const std::int64_t ci = i + di, cj = j + dj, ck = k + dk;
          if (ci >= 0 && ci + 1 < d.nx && cj >= 0 && cj + 1 < d.ny &&
              ck >= 0 && ck + 1 < d.nz) {
            touches = cell_mixed(ci, cj, ck);
          }
        }
      }
    }
    EXPECT_TRUE(touches) << "point " << id;
  }
}

TEST(Selection, CountMatchesMaterialization) {
  const grid::Dims d{12, 12, 12};
  const auto a = grid::DataArray::FromVector("f", RandomInteriorField(d, 31));
  const double isos[] = {0.2, 0.8};
  EXPECT_EQ(CountInterestingPoints(d, a, isos),
            static_cast<std::int64_t>(
                SelectInterestingPoints(d, a, isos).ids.size()));
}

TEST(Selection, MultiIsoIsUnionOfSingles) {
  const grid::Dims d{10, 10, 10};
  const auto a = grid::DataArray::FromVector("f", RandomInteriorField(d, 55));
  const double both[] = {0.3, 0.7};
  const double lo[] = {0.3};
  const double hi[] = {0.7};
  const Selection s_both = SelectInterestingPoints(d, a, both);
  const Selection s_lo = SelectInterestingPoints(d, a, lo);
  const Selection s_hi = SelectInterestingPoints(d, a, hi);
  std::set<grid::PointId> unioned(s_lo.ids.begin(), s_lo.ids.end());
  unioned.insert(s_hi.ids.begin(), s_hi.ids.end());
  EXPECT_EQ(std::set<grid::PointId>(s_both.ids.begin(), s_both.ids.end()),
            unioned);
}

TEST(Selection, Works2D) {
  const grid::Dims d{6, 6, 1};
  std::vector<float> f(36, 0.0f);
  f[static_cast<size_t>(d.Index(3, 3))] = 1.0f;
  const auto a = grid::DataArray::FromVector("f", f);
  const double iso[] = {0.5};
  const Selection sel = SelectInterestingPoints(d, a, iso);
  // The 4 cells around (3,3) are mixed: a 3x3 block of points.
  EXPECT_EQ(sel.ids.size(), 9u);
}

class ParallelSelectTest : public ::testing::TestWithParam<int> {};

// The slab-parallel scan must agree exactly with the serial one for any
// thread count (including counts exceeding the slab count).
TEST_P(ParallelSelectTest, MatchesSerialSelection) {
  const grid::Dims d{15, 13, 21};
  const auto a = grid::DataArray::FromVector("f", RandomInteriorField(d, 808));
  const double isos[] = {0.25, 0.6, 0.9};
  const Selection serial = SelectInterestingPoints(d, a, isos);
  const Selection parallel =
      SelectInterestingPointsParallel(d, a, isos, GetParam());
  EXPECT_EQ(parallel.ids, serial.ids);
  EXPECT_EQ(parallel.values, serial.values);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelSelectTest,
                         ::testing::Values(1, 2, 3, 4, 7, 16, 64));

TEST(ParallelSelect, FallsBackFor2DAndTinyGrids) {
  const grid::Dims flat{8, 8, 1};
  std::vector<float> f(64, 0.0f);
  f[static_cast<size_t>(flat.Index(4, 4))] = 1.0f;
  const auto a = grid::DataArray::FromVector("f", f);
  const double iso[] = {0.5};
  const Selection serial = SelectInterestingPoints(flat, a, iso);
  const Selection parallel = SelectInterestingPointsParallel(flat, a, iso, 8);
  EXPECT_EQ(parallel.ids, serial.ids);
}

class SparseEquivalenceTest : public ::testing::TestWithParam<unsigned> {};

// THE key invariant of the paper's split filter: the contour produced
// from the pre-filtered subset is identical to the full-data contour.
TEST_P(SparseEquivalenceTest, NdpContourIsBitIdenticalToFull) {
  const grid::Dims d{13, 11, 9};
  const auto f = RandomInteriorField(d, GetParam());
  const auto a = grid::DataArray::FromVector("f", f);
  const std::vector<double> isos = {0.15, 0.5, 0.85};

  const PolyData full = MarchingCubes(d, grid::UniformGeometry{}, std::span<const float>(f), isos);
  const Selection sel = SelectInterestingPoints(d, a, isos);
  const SparseField sparse =
      SparseField::FromSelection(sel, grid::DataType::Float32);
  const PolyData ndp = sparse.Contour(grid::UniformGeometry{}, isos);

  ASSERT_EQ(ndp.TriangleCount(), full.TriangleCount());
  ASSERT_EQ(ndp.PointCount(), full.PointCount());
  EXPECT_TRUE(ndp.GeometricallyEquals(full, 0.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseEquivalenceTest,
                         ::testing::Range(2000u, 2016u));

class SparseEquivalence2DTest : public ::testing::TestWithParam<unsigned> {};

// The same exactness guarantee on 2D grids (marching squares path).
TEST_P(SparseEquivalence2DTest, NdpContourMatchesDense2D) {
  const grid::Dims d{17, 13, 1};
  std::mt19937 rng(GetParam());
  std::vector<float> f(static_cast<size_t>(d.PointCount()));
  for (auto& v : f) v = static_cast<float>(rng() % 1000) / 999.0f;
  const auto a = grid::DataArray::FromVector("f", f);
  const std::vector<double> isos = {0.25, 0.5, 0.75};

  const PolyData dense = MarchingSquares(d, grid::UniformGeometry{}, std::span<const float>(f), isos);
  const Selection sel = SelectInterestingPoints(d, a, isos);
  const SparseField sparse =
      SparseField::FromSelection(sel, grid::DataType::Float32);
  const PolyData ndp = sparse.Contour(grid::UniformGeometry{}, isos);

  ASSERT_EQ(ndp.LineCount(), dense.LineCount());
  ASSERT_EQ(ndp.PointCount(), dense.PointCount());
  EXPECT_TRUE(ndp.GeometricallyEquals(dense, 0.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseEquivalence2DTest,
                         ::testing::Range(3000u, 3010u));

TEST(SparseField, ScatterAndValidity) {
  SparseField field(grid::Dims{4, 4, 4}, grid::DataType::Float32);
  EXPECT_EQ(field.ValidCount(), 0);
  const std::vector<grid::PointId> ids = {0, 5, 63};
  const auto values =
      grid::DataArray::FromVector("v", std::vector<float>{1.0f, 2.0f, 3.0f});
  field.Scatter(ids, values);
  EXPECT_EQ(field.ValidCount(), 3);
  EXPECT_TRUE(field.IsValid(5));
  EXPECT_FALSE(field.IsValid(6));
  // Re-scattering the same id does not double count.
  field.Scatter(ids, values);
  EXPECT_EQ(field.ValidCount(), 3);
}

TEST(SparseField, RejectsBadScatter) {
  SparseField field(grid::Dims{2, 2, 2}, grid::DataType::Float32);
  const std::vector<grid::PointId> out_of_range = {99};
  const auto one = grid::DataArray::FromVector("v", std::vector<float>{1.0f});
  EXPECT_THROW(field.Scatter(out_of_range, one), Error);
  const std::vector<grid::PointId> ok = {0};
  const auto wrong_type =
      grid::DataArray::FromVector("v", std::vector<double>{1.0});
  EXPECT_THROW(field.Scatter(ok, wrong_type), Error);
}

TEST(SparseField, PartialCellsProduceNoGeometry) {
  // A cell with 7 of 8 corners must be skipped, not guessed.
  const grid::Dims d{2, 2, 2};
  SparseField field(d, grid::DataType::Float32);
  std::vector<grid::PointId> ids;
  std::vector<float> vals;
  for (grid::PointId id = 0; id < 7; ++id) {
    ids.push_back(id);
    vals.push_back(id == 0 ? 1.0f : 0.0f);
  }
  field.Scatter(ids, grid::DataArray::FromVector("v", vals));
  const double iso[] = {0.5};
  EXPECT_EQ(field.Contour(grid::UniformGeometry{}, iso).TriangleCount(), 0u);
}

TEST(Components, TwoSpheresGiveTwoComponents) {
  const grid::Dims d{30, 16, 16};
  std::vector<float> f(static_cast<size_t>(d.PointCount()), 10.0f);
  const auto dist = [](double x, double y, double z, double cx, double cy,
                       double cz) {
    return std::sqrt((x - cx) * (x - cx) + (y - cy) * (y - cy) +
                     (z - cz) * (z - cz));
  };
  for (std::int64_t k = 0; k < 16; ++k)
    for (std::int64_t j = 0; j < 16; ++j)
      for (std::int64_t i = 0; i < 30; ++i) {
        f[static_cast<size_t>(d.Index(i, j, k))] = static_cast<float>(
            std::min(dist(i, j, k, 7.5, 7.5, 7.5), dist(i, j, k, 22.5, 7.5, 7.5)));
      }
  const double iso[] = {4.0};
  const PolyData poly = MarchingCubes(d, grid::UniformGeometry{},
                                      std::span<const float>(f), iso);
  const std::vector<Component> comps = ConnectedComponents(poly);
  ASSERT_EQ(comps.size(), 2u);
  // Two equal spheres: roughly equal areas, each near 4*pi*r^2.
  const double expected = 4.0 * 3.14159265358979 * 16.0;
  EXPECT_NEAR(comps[0].area, expected, 0.15 * expected);
  EXPECT_NEAR(comps[1].area, expected, 0.15 * expected);
  // Bounding boxes are disjoint along x.
  EXPECT_LT(comps[0].bbox_min.x > comps[1].bbox_min.x ? comps[1].bbox_max.x
                                                      : comps[0].bbox_max.x,
            comps[0].bbox_min.x > comps[1].bbox_min.x ? comps[0].bbox_min.x
                                                      : comps[1].bbox_min.x);
}

TEST(Components, Sorted2DLoops) {
  // One big island and one small island: two loops, larger first.
  const grid::Dims d{24, 24, 1};
  std::vector<float> f(static_cast<size_t>(d.PointCount()), 0.0f);
  for (std::int64_t j = 4; j <= 12; ++j)
    for (std::int64_t i = 4; i <= 12; ++i)
      f[static_cast<size_t>(d.Index(i, j))] = 1.0f;
  f[static_cast<size_t>(d.Index(20, 20))] = 1.0f;
  const double iso[] = {0.5};
  const PolyData poly = MarchingSquares(d, grid::UniformGeometry{},
                                        std::span<const float>(f), iso);
  const std::vector<Component> comps = ConnectedComponents(poly);
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_GT(comps[0].length, comps[1].length);
  EXPECT_GT(comps[0].lines, comps[1].lines);
}

TEST(Components, EmptyAndSingle) {
  EXPECT_TRUE(ConnectedComponents(PolyData{}).empty());
  PolyData one;
  one.AddTriangle(one.AddPoint({0, 0, 0}), one.AddPoint({1, 0, 0}),
                  one.AddPoint({0, 1, 0}));
  const auto comps = ConnectedComponents(one);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].triangles, 1u);
  EXPECT_EQ(comps[0].points, 3u);
  EXPECT_DOUBLE_EQ(comps[0].area, 0.5);
}

TEST(Components, TotalsMatchWholePolyData) {
  const grid::Dims d{14, 14, 14};
  const auto f = RandomInteriorField(d, 99177);
  const double iso[] = {0.5};
  const PolyData poly = MarchingCubes(d, grid::UniformGeometry{},
                                      std::span<const float>(f), iso);
  const auto comps = ConnectedComponents(poly);
  size_t triangles = 0;
  double area = 0;
  for (const Component& c : comps) {
    triangles += c.triangles;
    area += c.area;
  }
  EXPECT_EQ(triangles, poly.TriangleCount());
  EXPECT_NEAR(area, poly.SurfaceArea(), 1e-9);
}

TEST(PolyData, BoundaryEdgesOfOpenStrip) {
  PolyData poly;
  const auto a = poly.AddPoint({0, 0, 0});
  const auto b = poly.AddPoint({1, 0, 0});
  const auto c = poly.AddPoint({0, 1, 0});
  const auto e = poly.AddPoint({1, 1, 0});
  poly.AddTriangle(a, b, c);
  poly.AddTriangle(b, e, c);
  // Quad from two triangles: 4 boundary edges, 1 shared.
  EXPECT_EQ(poly.BoundaryEdgeCount(), 4u);
  EXPECT_DOUBLE_EQ(poly.SurfaceArea(), 1.0);
}

TEST(PolyData, AppendRebasesIndices) {
  PolyData a;
  a.AddPoint({0, 0, 0});
  a.AddPoint({1, 0, 0});
  a.AddLine(0, 1);
  PolyData b;
  b.AddPoint({5, 0, 0});
  b.AddPoint({6, 0, 0});
  b.AddLine(0, 1);
  a.Append(b);
  ASSERT_EQ(a.LineCount(), 2u);
  EXPECT_EQ(a.lines()[1][0], 2u);
  EXPECT_DOUBLE_EQ(a.TotalLineLength(), 2.0);
}

}  // namespace
}  // namespace vizndp::contour
