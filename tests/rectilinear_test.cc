// Stretched-grid (rectilinear) contouring: the paper's "more complex grid
// types" future-work item.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "contour/marching_cubes.h"
#include "contour/marching_squares.h"
#include "contour/select.h"
#include "contour/sparse_field.h"
#include "grid/rectilinear.h"

namespace vizndp::contour {
namespace {

std::vector<double> Linspace(double lo, double hi, std::int64_t n) {
  std::vector<double> out(static_cast<size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    out[static_cast<size_t>(i)] =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  return out;
}

// Geometrically stretched axis: spacing grows by `ratio` per step.
std::vector<double> Stretched(double start, double first_step, double ratio,
                              std::int64_t n) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  double x = start;
  double step = first_step;
  for (std::int64_t i = 0; i < n; ++i) {
    out.push_back(x);
    x += step;
    step *= ratio;
  }
  return out;
}

TEST(RectilinearGeometry, ValidatesMonotonicity) {
  EXPECT_NO_THROW(grid::RectilinearGeometry({0, 1, 3}, {0, 2}, {0}));
  EXPECT_THROW(grid::RectilinearGeometry({0, 1, 1}, {0, 2}, {0}), Error);
  EXPECT_THROW(grid::RectilinearGeometry({0, 2, 1}, {0, 2}, {0}), Error);
}

TEST(RectilinearGeometry, ValidatesDims) {
  const grid::RectilinearGeometry geo(Linspace(0, 1, 4), Linspace(0, 1, 4),
                                      Linspace(0, 1, 4));
  EXPECT_NO_THROW(geo.Validate(grid::Dims{4, 4, 4}));
  EXPECT_THROW(geo.Validate(grid::Dims{4, 4, 5}), Error);
}

TEST(RectilinearGeometry, PointPositions) {
  const grid::RectilinearGeometry geo({0.0, 1.0, 4.0}, {10.0, 20.0},
                                      {100.0});
  const grid::Dims d{3, 2, 1};
  const auto p = geo.PointPosition(d, d.Index(2, 1, 0));
  EXPECT_DOUBLE_EQ(p[0], 4.0);
  EXPECT_DOUBLE_EQ(p[1], 20.0);
  EXPECT_DOUBLE_EQ(p[2], 100.0);
}

TEST(RectilinearMc, UniformCoordsMatchUniformGeometry) {
  const grid::Dims d{10, 10, 10};
  std::mt19937 rng(71);
  std::vector<float> f(1000);
  for (auto& v : f) v = static_cast<float>(rng() % 100) / 99.0f;
  const double isos[] = {0.4, 0.8};

  const grid::UniformGeometry uniform{{0, 0, 0}, {1, 1, 1}};
  const grid::RectilinearGeometry rect(Linspace(0, 9, 10), Linspace(0, 9, 10),
                                       Linspace(0, 9, 10));
  const PolyData a = MarchingCubes(d, uniform, std::span<const float>(f), isos);
  const PolyData b = MarchingCubes(d, rect, std::span<const float>(f), isos);
  ASSERT_EQ(a.TriangleCount(), b.TriangleCount());
  EXPECT_TRUE(a.GeometricallyEquals(b, 1e-12));
}

TEST(RectilinearMc, FlatPlaneLandsAtInterpolatedCoordinate) {
  // Field = k (layer index); contour at 2.5 sits midway between the z
  // coordinates of layers 2 and 3 — whatever those coordinates are.
  const grid::Dims d{4, 4, 5};
  const std::vector<double> z = {0.0, 1.0, 3.0, 7.0, 15.0};
  const grid::RectilinearGeometry geo(Linspace(0, 3, 4), Linspace(0, 3, 4), z);
  std::vector<float> f(static_cast<size_t>(d.PointCount()));
  for (std::int64_t k = 0; k < 5; ++k)
    for (std::int64_t j = 0; j < 4; ++j)
      for (std::int64_t i = 0; i < 4; ++i)
        f[static_cast<size_t>(d.Index(i, j, k))] = static_cast<float>(k);
  const double iso[] = {2.5};
  const PolyData poly = MarchingCubes(d, geo, std::span<const float>(f), iso);
  ASSERT_GT(poly.TriangleCount(), 0u);
  for (const Vec3& p : poly.points()) {
    EXPECT_DOUBLE_EQ(p.z, 5.0);  // 3 + 0.5 * (7 - 3)
  }
}

TEST(RectilinearMc, SphereTopologySurvivesStretching) {
  const grid::Dims d{24, 24, 24};
  std::vector<float> f(static_cast<size_t>(d.PointCount()));
  for (std::int64_t k = 0; k < 24; ++k)
    for (std::int64_t j = 0; j < 24; ++j)
      for (std::int64_t i = 0; i < 24; ++i) {
        const double dx = i - 11.5, dy = j - 11.5, dz = k - 11.5;
        f[static_cast<size_t>(d.Index(i, j, k))] =
            static_cast<float>(std::sqrt(dx * dx + dy * dy + dz * dz));
      }
  const grid::RectilinearGeometry geo(Stretched(0, 0.5, 1.08, 24),
                                      Stretched(0, 1.0, 1.0, 24),
                                      Stretched(0, 0.2, 1.15, 24));
  const double iso[] = {8.0};
  const PolyData poly = MarchingCubes(d, geo, std::span<const float>(f), iso);
  // Stretching is a homeomorphism: still one closed genus-0 surface.
  EXPECT_EQ(poly.BoundaryEdgeCount(), 0u);
  const auto v = static_cast<std::int64_t>(poly.PointCount());
  const auto faces = static_cast<std::int64_t>(poly.TriangleCount());
  EXPECT_EQ(v - 3 * faces / 2 + faces, 2);
}

TEST(RectilinearMc, RejectsMismatchedCoordinates) {
  const grid::Dims d{4, 4, 4};
  std::vector<float> f(64, 0.0f);
  f[21] = 1.0f;
  const grid::RectilinearGeometry geo(Linspace(0, 1, 3), Linspace(0, 1, 4),
                                      Linspace(0, 1, 4));
  const double iso[] = {0.5};
  EXPECT_THROW(MarchingCubes(d, geo, std::span<const float>(f), iso), Error);
}

TEST(RectilinearMs, StretchedContourPositions) {
  const grid::Dims d{3, 2, 1};
  const grid::RectilinearGeometry geo({0.0, 1.0, 10.0}, {0.0, 2.0}, {0.0});
  // Crossing between x=1 and x=10 at t=0.5 -> x = 5.5.
  const std::vector<float> f = {1.0f, 1.0f, 0.0f, 1.0f, 1.0f, 0.0f};
  const double iso[] = {0.5};
  const PolyData poly = MarchingSquares(d, geo, std::span<const float>(f), iso);
  ASSERT_GT(poly.PointCount(), 0u);
  for (const Vec3& p : poly.points()) {
    EXPECT_DOUBLE_EQ(p.x, 5.5);
  }
}

class RectilinearNdpTest : public ::testing::TestWithParam<unsigned> {};

// NDP exactness extends to stretched grids: the selection is geometry-
// independent, and the client applies the coordinates locally.
TEST_P(RectilinearNdpTest, SparseContourMatchesDense) {
  const grid::Dims d{11, 9, 10};
  std::mt19937 rng(GetParam());
  std::vector<float> f(static_cast<size_t>(d.PointCount()));
  for (auto& v : f) v = static_cast<float>(rng() % 1000) / 999.0f;
  const auto a = grid::DataArray::FromVector("f", f);
  const std::vector<double> isos = {0.3, 0.7};
  const grid::RectilinearGeometry geo(Stretched(0, 1, 1.1, 11),
                                      Stretched(-4, 0.5, 1.2, 9),
                                      Stretched(2, 2, 0.9, 10));

  const PolyData dense = MarchingCubes(d, geo, std::span<const float>(f), isos);
  const Selection sel = SelectInterestingPoints(d, a, isos);
  const SparseField sparse =
      SparseField::FromSelection(sel, grid::DataType::Float32);
  const PolyData ndp = sparse.Contour(geo, isos);
  ASSERT_EQ(ndp.TriangleCount(), dense.TriangleCount());
  EXPECT_TRUE(ndp.GeometricallyEquals(dense, 0.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectilinearNdpTest,
                         ::testing::Range(4000u, 4008u));

}  // namespace
}  // namespace vizndp::contour
