// Storage-fault tolerance: the injectable store-fault decorator, the
// typed transient/permanent I/O error split, the gateway retry ladder,
// and the RPC wire typing that carries I/O errors across nodes.
#include <gtest/gtest.h>

#include <thread>

#include "net/inproc.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "storage/fault_store.h"
#include "storage/file_gateway.h"
#include "storage/memory_store.h"
#include "storage/remote_store.h"
#include "storage/store_rpc.h"

namespace vizndp::storage {
namespace {

std::uint64_t Counter(const std::string& name) {
  return obs::DefaultRegistry().GetCounter(name).value();
}

struct Fixture {
  MemoryObjectStore inner;
  FaultInjectingStore store{inner};

  Fixture() {
    inner.CreateBucket("b");
    Bytes data(4096);
    for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<Byte>(i);
    inner.Put("b", "k", data);
  }
};

// ---------------------------------------------------------------- spec

TEST(StoreFaultSpec, ParsesCompactGrammar) {
  const auto entries =
      ParseStoreFaultSpec("read.eio*2,get.fatal,any.delay=5000*3,put.flip=7");
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].op, StoreOp::kRead);
  ASSERT_EQ(entries[0].script.size(), 2u);
  EXPECT_EQ(entries[0].script[0].kind, StoreFaultKind::kEio);
  EXPECT_EQ(entries[1].op, StoreOp::kGet);
  EXPECT_EQ(entries[1].script[0].kind, StoreFaultKind::kFatal);
  EXPECT_EQ(entries[2].op, StoreOp::kAny);
  ASSERT_EQ(entries[2].script.size(), 3u);
  EXPECT_EQ(entries[2].script[0].delay.count(), 5000);
  EXPECT_EQ(entries[3].op, StoreOp::kPut);
  EXPECT_EQ(entries[3].script[0].flip_bit, 7u);
}

TEST(StoreFaultSpec, TrailingPlusLoops) {
  const auto entries = ParseStoreFaultSpec("stat.lie=-3+");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].loop_last);
  EXPECT_EQ(entries[0].script[0].stat_delta, -3);
}

TEST(StoreFaultSpec, RejectsMalformed) {
  EXPECT_THROW(ParseStoreFaultSpec("bogus.eio"), Error);
  EXPECT_THROW(ParseStoreFaultSpec("read.unknownaction"), Error);
  EXPECT_THROW(ParseStoreFaultSpec("read"), Error);
  EXPECT_THROW(ParseStoreFaultSpec("read.eio*0"), Error);  // count >= 1
}

// ----------------------------------------------------------- decorator

TEST(FaultInjectingStore, EioIsTransientThenHeals) {
  Fixture fx;
  fx.store.Script(StoreOp::kGet, {StoreFaultAction::Eio()});
  EXPECT_THROW(fx.store.Get("b", "k"), TransientIoError);
  EXPECT_EQ(fx.store.Get("b", "k"), fx.inner.Get("b", "k"));
  EXPECT_EQ(fx.store.stats().eios, 1u);
}

TEST(FaultInjectingStore, FatalIsPermanent) {
  Fixture fx;
  fx.store.Script(StoreOp::kGet, {StoreFaultAction::Fatal()});
  try {
    fx.store.Get("b", "k");
    FAIL() << "expected IoError";
  } catch (const TransientIoError&) {
    FAIL() << "fatal must not be transient";
  } catch (const IoError&) {
  }
}

TEST(FaultInjectingStore, ShortReadTruncates) {
  Fixture fx;
  fx.store.Script(StoreOp::kRead, {StoreFaultAction::Short(10)});
  EXPECT_EQ(fx.store.Get("b", "k").size(), 10u);
  fx.store.Script(StoreOp::kRead, {StoreFaultAction::Short(3)});
  EXPECT_EQ(fx.store.GetRange("b", "k", 0, 100).size(), 3u);
}

TEST(FaultInjectingStore, FlipOnReadLeavesStoreClean) {
  Fixture fx;
  fx.store.Script(StoreOp::kGet, {StoreFaultAction::Flip(12345)});
  const Bytes truth = fx.inner.Get("b", "k");
  const Bytes seen = fx.store.Get("b", "k");
  EXPECT_NE(seen, truth);  // exactly one bit differs
  int diff_bits = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    diff_bits += __builtin_popcount(truth[i] ^ seen[i]);
  }
  EXPECT_EQ(diff_bits, 1);
  EXPECT_EQ(fx.inner.Get("b", "k"), truth);  // rot was in flight, not at rest
}

TEST(FaultInjectingStore, FlipOnPutRotsAtRest) {
  Fixture fx;
  const Bytes clean = ToBytes("payload to rot");
  fx.store.Script(StoreOp::kPut, {StoreFaultAction::Flip(9)});
  fx.store.Put("b", "rotted", clean);
  const Bytes stored = fx.inner.Get("b", "rotted");
  EXPECT_NE(stored, clean);
  EXPECT_EQ(stored.size(), clean.size());
  // Subsequent un-faulted reads faithfully return the rotted bytes —
  // that is what "at rest" means.
  EXPECT_EQ(fx.store.Get("b", "rotted"), stored);
}

TEST(FaultInjectingStore, StatLiesByDelta) {
  Fixture fx;
  const std::uint64_t truth = fx.inner.Stat("b", "k").size;
  fx.store.Script(StoreOp::kStat, {StoreFaultAction::StatLie(100)});
  EXPECT_EQ(fx.store.Stat("b", "k").size, truth + 100);
  EXPECT_EQ(fx.store.Stat("b", "k").size, truth);  // script drained
}

TEST(FaultInjectingStore, ChannelPriorityExactThenReadThenAny) {
  Fixture fx;
  fx.store.Script(StoreOp::kGet, {StoreFaultAction::Eio()});
  fx.store.Script(StoreOp::kRead, {StoreFaultAction::Short(1)});
  fx.store.Script(StoreOp::kAny, {StoreFaultAction::Fatal()});
  // Get consults its exact channel first...
  EXPECT_THROW(fx.store.Get("b", "k"), TransientIoError);
  // ...then falls to the read channel...
  EXPECT_EQ(fx.store.Get("b", "k").size(), 1u);
  // ...then to any.
  EXPECT_THROW(fx.store.Get("b", "k"), IoError);
  // Stat never matches read; with every script gone it passes through.
  EXPECT_NO_THROW(fx.store.Stat("b", "k"));
}

TEST(FaultInjectingStore, LoopLastRepeatsForever) {
  Fixture fx;
  fx.store.Script(StoreOp::kGet, {StoreFaultAction::Eio()},
                  /*loop_last=*/true);
  for (int i = 0; i < 5; ++i) {
    EXPECT_THROW(fx.store.Get("b", "k"), TransientIoError);
  }
  fx.store.ClearFaults();
  EXPECT_NO_THROW(fx.store.Get("b", "k"));
}

TEST(FaultInjectingStore, RandomMixIsSeededAndReadOnly) {
  Fixture fx;
  StoreFaultProbabilities probabilities;
  probabilities.eio = 1.0;
  probabilities.seed = 7;
  fx.store.SetRandomFaults(probabilities);
  EXPECT_THROW(fx.store.Get("b", "k"), TransientIoError);
  EXPECT_THROW(fx.store.GetRange("b", "k", 0, 8), TransientIoError);
  EXPECT_NO_THROW(fx.store.Stat("b", "k"));  // mix applies to reads only
  EXPECT_NO_THROW(fx.store.Put("b", "k2", ToBytes("x")));
  fx.store.ClearFaults();
  EXPECT_NO_THROW(fx.store.Get("b", "k"));
}

TEST(FaultInjectingStore, BucketManagementPassesThrough) {
  Fixture fx;
  fx.store.Script(StoreOp::kAny, {StoreFaultAction::Fatal()},
                  /*loop_last=*/true);
  EXPECT_NO_THROW(fx.store.CreateBucket("setup"));
  EXPECT_TRUE(fx.store.BucketExists("setup"));
  EXPECT_TRUE(fx.store.Exists("b", "k"));
  EXPECT_NO_THROW(fx.store.List("b", ""));
  EXPECT_NO_THROW(fx.store.Delete("b", "k"));
}

TEST(FaultInjectingStore, ApplySpecScriptsChannels) {
  Fixture fx;
  ApplyStoreFaultSpec(fx.store, "read.eio*2");
  EXPECT_THROW(fx.store.Get("b", "k"), TransientIoError);
  EXPECT_THROW(fx.store.GetRange("b", "k", 0, 4), TransientIoError);
  EXPECT_NO_THROW(fx.store.Get("b", "k"));
}

// -------------------------------------------------------- retry ladder

net::RetryPolicy FastRetry(int attempts) {
  net::RetryPolicy retry = DefaultStoreRetryPolicy();
  retry.max_attempts = attempts;
  retry.base_delay = std::chrono::microseconds(50);
  retry.max_delay = std::chrono::microseconds(200);
  return retry;
}

TEST(GatewayRetry, TransientEioHealsInPlace) {
  Fixture fx;
  FileGateway gateway(fx.store, "b", FastRetry(3));
  const std::uint64_t retries_before = Counter("store_retry_total");
  const std::uint64_t errors_before = Counter("store_io_error_total");
  const std::uint64_t seq = obs::GlobalEventLog().LastSeq();

  fx.store.Script(StoreOp::kRead, {StoreFaultAction::Eio(),
                                   StoreFaultAction::Eio()});
  const GatewayFile file = gateway.Open("k");
  EXPECT_EQ(file.ReadAt(0, 16), fx.inner.GetRange("b", "k", 0, 16));

  EXPECT_EQ(Counter("store_retry_total"), retries_before + 2);
  EXPECT_EQ(Counter("store_io_error_total"), errors_before);
  EXPECT_EQ(obs::GlobalEventLog().CountSince("store.retry", seq), 2u);
}

TEST(GatewayRetry, ExhaustedLadderSurfacesTransient) {
  Fixture fx;
  FileGateway gateway(fx.store, "b", FastRetry(3));
  const GatewayFile file = gateway.Open("k");
  const std::uint64_t errors_before = Counter("store_io_error_total");
  const std::uint64_t seq = obs::GlobalEventLog().LastSeq();

  fx.store.Script(StoreOp::kRead, {StoreFaultAction::Eio()},
                  /*loop_last=*/true);
  EXPECT_THROW(file.ReadAt(0, 16), TransientIoError);
  fx.store.ClearFaults();

  EXPECT_EQ(Counter("store_io_error_total"), errors_before + 1);
  EXPECT_EQ(obs::GlobalEventLog().CountSince("store.io_error", seq), 1u);
}

TEST(GatewayRetry, PermanentErrorNeverRetried) {
  Fixture fx;
  FileGateway gateway(fx.store, "b", FastRetry(5));
  const GatewayFile file = gateway.Open("k");
  const std::uint64_t retries_before = Counter("store_retry_total");
  const std::uint64_t ops_before = fx.store.stats().ops;

  fx.store.Script(StoreOp::kRead, {StoreFaultAction::Fatal()},
                  /*loop_last=*/true);
  EXPECT_THROW(file.ReadAt(0, 16), IoError);
  fx.store.ClearFaults();

  // One attempt, zero retries: a dead device is not worth a ladder.
  EXPECT_EQ(Counter("store_retry_total"), retries_before);
  EXPECT_EQ(fx.store.stats().ops, ops_before + 1);
}

TEST(GatewayRetry, ShortReadDetectedAndRetried) {
  Fixture fx;
  FileGateway gateway(fx.store, "b", FastRetry(3));
  const GatewayFile file = gateway.Open("k");
  fx.store.Script(StoreOp::kRead, {StoreFaultAction::Short(4)});
  // The decorator truncates one read; the gateway sees fewer bytes than
  // the open-time size promises, treats it as transient, and re-reads.
  EXPECT_EQ(file.ReadAt(0, 64), fx.inner.GetRange("b", "k", 0, 64));
}

TEST(GatewayRetry, ShortReadAtTailIsNotAFault) {
  Fixture fx;
  FileGateway gateway(fx.store, "b", FastRetry(3));
  const GatewayFile file = gateway.Open("k");
  const std::uint64_t size = fx.inner.Stat("b", "k").size;
  // Reads overlapping EOF legitimately return fewer bytes than asked.
  EXPECT_EQ(file.ReadAt(size - 4, 100).size(), 4u);
  EXPECT_EQ(file.ReadAt(size + 10, 5), Bytes{});
}

// ------------------------------------------------------- wire typing

struct WireFixture {
  MemoryObjectStore backing;
  FaultInjectingStore faulty{backing};
  rpc::Server server;
  std::thread server_thread;
  std::shared_ptr<rpc::Client> client;

  WireFixture() {
    backing.CreateBucket("b");
    backing.Put("b", "k", ToBytes("wire payload"));
    BindObjectStoreRpc(server, faulty);
    net::TransportPair pair = net::CreateInProcPair();
    server_thread = std::thread(
        [this, t = std::shared_ptr<net::Transport>(std::move(pair.a))] {
          server.ServeTransport(*t);
        });
    client = std::make_shared<rpc::Client>(std::move(pair.b));
  }

  ~WireFixture() {
    client.reset();
    server_thread.join();
  }
};

TEST(WireTyping, TransientCrossesTyped) {
  WireFixture fx;
  fx.faulty.Script(StoreOp::kGet, {StoreFaultAction::Eio()});
  rpc::CallOptions options;
  options.idempotent = true;
  EXPECT_THROW(fx.client->Call("store.get",
                               msgpack::Array{msgpack::Value(std::string("b")),
                                              msgpack::Value(std::string("k"))},
                               options),
               TransientIoError);
}

TEST(WireTyping, ClientRetriesRemoteTransient) {
  WireFixture fx;
  fx.faulty.Script(StoreOp::kGet, {StoreFaultAction::Eio()});
  net::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.base_delay = std::chrono::microseconds(50);
  fx.client->SetRetryPolicy(retry);
  rpc::CallOptions options;
  options.idempotent = true;
  // The client's remote-io counter is labeled per method.
  obs::Counter& remote_io = obs::DefaultRegistry().GetCounter(
      "rpc_remote_io_total", {{"method", "store.get"}});
  const std::uint64_t remote_io_before = remote_io.value();
  // First attempt hits the injected EIO server-side; the typed transient
  // crosses the wire and the client retries the idempotent call.
  const msgpack::Value reply = fx.client->Call(
      "store.get",
      msgpack::Array{msgpack::Value(std::string("b")),
                     msgpack::Value(std::string("k"))},
      options);
  EXPECT_EQ(reply.As<Bytes>(), fx.backing.Get("b", "k"));
  EXPECT_EQ(remote_io.value(), remote_io_before + 1);
}

TEST(WireTyping, PermanentIoErrorNeverRetriedByClient) {
  WireFixture fx;
  net::RetryPolicy retry;
  retry.max_attempts = 5;
  retry.base_delay = std::chrono::microseconds(50);
  fx.client->SetRetryPolicy(retry);
  rpc::CallOptions options;
  options.idempotent = true;
  const std::uint64_t ops_before = fx.faulty.stats().ops;
  // A missing object is permanent: retrying cannot create it. The
  // typed IoError must fail the call after exactly one attempt.
  try {
    fx.client->Call("store.get",
                    msgpack::Array{msgpack::Value(std::string("b")),
                                   msgpack::Value(std::string("missing"))},
                    options);
    FAIL() << "expected IoError";
  } catch (const TransientIoError&) {
    FAIL() << "missing object must be permanent";
  } catch (const IoError&) {
  }
  EXPECT_EQ(fx.faulty.stats().ops, ops_before + 1);
}

TEST(WireTyping, RemoteGatewayLaddersOverTheWire) {
  WireFixture fx;
  net::RetryPolicy client_retry;
  client_retry.max_attempts = 3;
  client_retry.base_delay = std::chrono::microseconds(50);
  fx.client->SetRetryPolicy(client_retry);
  RemoteObjectStore remote(fx.client);
  // End-to-end: a remote gateway read rides the client's typed-retry
  // loop when the far store flakes, then heals.
  fx.faulty.Script(StoreOp::kRead, {StoreFaultAction::Eio()});
  FileGateway gateway(remote, "b", FastRetry(3));
  const GatewayFile file = gateway.Open("k");
  EXPECT_EQ(file.ReadAll(), fx.backing.Get("b", "k"));
}

}  // namespace
}  // namespace vizndp::storage
