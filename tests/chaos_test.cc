// Self-healing membership and the seeded chaos harness: the state
// machine walks live → suspect → dead → rejoining → live exactly as
// specified, a killed node drops out of placement and a restarted one is
// re-admitted (and observed serving again), epochs only climb, parked
// hedge losers drain to zero, hostile brick restrictions are rejected at
// the protocol boundary, and whole randomized fault schedules preserve
// bit-identical geometry with a clean counter/journal audit.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "bench_util/testbed.h"
#include "cluster/health_monitor.h"
#include "cluster/shard_map.h"
#include "cluster/sharded_client.h"
#include "common/error.h"
#include "io/vnd_format.h"
#include "msgpack/value.h"
#include "ndp/protocol.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "sim/impact.h"
#include "testing/chaos.h"

namespace vizndp::cluster {
namespace {

using bench_util::ClusterTestbed;
using bench_util::ClusterTestbedConfig;

const std::vector<double> kIsos = {0.2, 0.5};

grid::Dataset MakeImpact(int n) {
  sim::ImpactConfig cfg;
  cfg.n = n;
  return sim::GenerateImpactTimestep(cfg, 24006, {"v02"});
}

void StoreDataset(storage::ObjectStore& store, const std::string& bucket,
                  const std::string& key, int n, std::int32_t brick_edge) {
  const grid::Dataset ds = MakeImpact(n);
  io::VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec("lz4"));
  writer.SetBrickSize(brick_edge);
  writer.WriteToStore(store, bucket, key);
}

// Deterministic monitor driver: probe synchronously until `pred` holds.
template <typename Pred>
bool ProbeUntil(HealthMonitor& monitor, Pred pred, int max_sweeps = 20) {
  for (int i = 0; i < max_sweeps; ++i) {
    monitor.ProbeOnce();
    if (pred()) return true;
  }
  return pred();
}

// ---------------------------------------------------------------------------
// The per-node state machine, exercised as a pure function.

TEST(HealthMonitor, AdvanceWalksTheLifecycle) {
  HealthMonitorOptions opt;
  opt.suspect_after = 1;
  opt.dead_after = 3;
  opt.rejoin_after = 2;
  HealthMonitor::NodeCell cell;

  // live --fail--> suspect
  EXPECT_TRUE(HealthMonitor::Advance(cell, false, opt));
  EXPECT_EQ(cell.state, NodeState::kSuspect);
  // suspicion builds: two more failures reach dead_after.
  EXPECT_FALSE(HealthMonitor::Advance(cell, false, opt));
  EXPECT_TRUE(HealthMonitor::Advance(cell, false, opt));
  EXPECT_EQ(cell.state, NodeState::kDead);
  // dead + ok -> rejoining; rejoin_after consecutive oks -> live.
  EXPECT_TRUE(HealthMonitor::Advance(cell, true, opt));
  EXPECT_EQ(cell.state, NodeState::kRejoining);
  EXPECT_TRUE(HealthMonitor::Advance(cell, true, opt));
  EXPECT_EQ(cell.state, NodeState::kLive);
  EXPECT_EQ(cell.suspicion, 0);
}

TEST(HealthMonitor, SuspicionDecaysInsteadOfAbsolving) {
  HealthMonitorOptions opt;
  opt.suspect_after = 1;
  opt.dead_after = 3;
  HealthMonitor::NodeCell cell;
  // Two failures: suspect with suspicion 2.
  HealthMonitor::Advance(cell, false, opt);
  HealthMonitor::Advance(cell, false, opt);
  EXPECT_EQ(cell.state, NodeState::kSuspect);
  // One ok probe decays but does not clear: still suspect.
  EXPECT_FALSE(HealthMonitor::Advance(cell, true, opt));
  EXPECT_EQ(cell.state, NodeState::kSuspect);
  // The second ok climbs back to live.
  EXPECT_TRUE(HealthMonitor::Advance(cell, true, opt));
  EXPECT_EQ(cell.state, NodeState::kLive);
}

TEST(HealthMonitor, FlappingNodeNeverRejoins) {
  HealthMonitorOptions opt;
  opt.rejoin_after = 3;
  HealthMonitor::NodeCell cell;
  cell.state = NodeState::kDead;
  for (int round = 0; round < 4; ++round) {
    HealthMonitor::Advance(cell, true, opt);   // starts the gate
    HealthMonitor::Advance(cell, true, opt);   // streak 2 of 3...
    HealthMonitor::Advance(cell, false, opt);  // ...and flaps
    EXPECT_EQ(cell.state, NodeState::kDead);
  }
}

// ---------------------------------------------------------------------------
// Placement over eligibility masks.

TEST(ShardMap, EligibilityDropsDeadServersFromPartition) {
  const ShardMap map(3, 2);
  const std::vector<bool> eligible = {true, false, true};
  const auto slices = map.Partition("ts.vnd", 64, &eligible);
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_TRUE(slices[1].empty());  // the dead server owns nothing
  EXPECT_EQ(slices[0].size() + slices[2].size(), 64u);  // fully re-spread
  for (const int shard : {0, 2}) {
    const std::vector<int> chain = map.ReplicaChain(shard, &eligible);
    for (const int sv : chain) EXPECT_NE(sv, 1);
  }
}

TEST(ShardMap, AllIneligibleFallsBackToEveryone) {
  const ShardMap map(3, 2);
  const std::vector<bool> nobody = {false, false, false};
  const auto slices = map.Partition("ts.vnd", 64, &nobody);
  size_t total = 0;
  for (const auto& s : slices) total += s.size();
  EXPECT_EQ(total, 64u);  // a hopeless mask must not erase the dataset
  EXPECT_EQ(map.ReplicaChain(0, &nobody).size(), 2u);
}

// ---------------------------------------------------------------------------
// Monitor + testbed: detect, route around, rejoin.

TEST(Cluster, KillDetectRouteAroundAndRejoin) {
  ClusterTestbedConfig config;
  config.servers = 3;
  config.replicas = 2;
  config.client_options.call_timeout = std::chrono::milliseconds(2000);
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 16, 8);

  const contour::PolyData reference =
      cluster.server_client(0)->Contour("ts.vnd", "v02", kIsos);

  std::vector<std::shared_ptr<ndp::NdpClient>> probes;
  for (int i = 0; i < 3; ++i) probes.push_back(cluster.probe_client(i));
  HealthMonitorOptions mopts;
  mopts.suspect_after = 1;
  mopts.dead_after = 2;
  mopts.rejoin_after = 2;
  HealthMonitor monitor(std::move(probes), mopts);
  monitor.SetViewSink([&](std::shared_ptr<const FleetView> view) {
    cluster.sharded_client()->SetFleetView(std::move(view));
  });
  // Driven synchronously (no Start()): every transition is deterministic.
  monitor.ProbeOnce();

  const std::uint64_t base_seq = obs::GlobalEventLog().LastSeq();
  cluster.KillServer(1);
  ASSERT_TRUE(ProbeUntil(monitor, [&] {
    const auto v = cluster.sharded_client()->fleet_view();
    return v != nullptr && v->states[1] == NodeState::kDead;
  }));

  // Dead node out of placement: the fetch plans around it and still
  // reproduces the oracle bit for bit.
  const std::uint64_t failovers_before =
      obs::DefaultRegistry().GetCounter("cluster_failover_total").value();
  const contour::PolyData routed =
      cluster.sharded_client()->Contour("ts.vnd", "v02", kIsos);
  EXPECT_TRUE(routed.GeometricallyEquals(reference, 0.0));
  EXPECT_EQ(
      obs::DefaultRegistry().GetCounter("cluster_failover_total").value(),
      failovers_before);  // no failover needed: node 1 was never tried

  // Restart: the monitor walks it through rejoining back to live, and
  // journals the rejoin.
  cluster.RestartServer(1);
  ASSERT_TRUE(ProbeUntil(monitor, [&] {
    const auto v = cluster.sharded_client()->fleet_view();
    return v != nullptr && v->states[1] == NodeState::kLive;
  }));
  EXPECT_GE(obs::GlobalEventLog().CountSince("cluster.rejoin", base_seq), 1u);

  // The fresh incarnation serves traffic: its own select counter moves.
  const contour::PolyData after =
      cluster.sharded_client()->Contour("ts.vnd", "v02", kIsos);
  EXPECT_TRUE(after.GeometricallyEquals(reference, 0.0));
  if (cluster.ndp_server(1).metrics()
          .GetCounter("ndp_select_requests_total").value() == 0) {
    // This key's partition may give node 1 nothing; prove it directly.
    EXPECT_NO_THROW(
        cluster.server_client(1)->FetchPartial("ts.vnd", "v02", kIsos,
                                               nullptr));
  }
  EXPECT_GT(cluster.ndp_server(1).metrics()
                .GetCounter("ndp_select_requests_total").value(), 0u);
}

TEST(Cluster, ViewEpochsClimbMonotonically) {
  ClusterTestbedConfig config;
  config.servers = 2;
  config.client_options.call_timeout = std::chrono::milliseconds(2000);
  ClusterTestbed cluster(config);

  std::vector<std::shared_ptr<ndp::NdpClient>> probes;
  for (int i = 0; i < 2; ++i) probes.push_back(cluster.probe_client(i));
  HealthMonitorOptions mopts;
  mopts.suspect_after = 1;
  mopts.dead_after = 1;
  mopts.rejoin_after = 1;
  HealthMonitor monitor(std::move(probes), mopts);

  std::vector<std::uint64_t> epochs;
  monitor.SetViewSink([&](std::shared_ptr<const FleetView> view) {
    epochs.push_back(view->epoch);
  });
  monitor.ProbeOnce();  // publishes nothing: all live, no change yet
  for (int round = 0; round < 3; ++round) {
    cluster.KillServer(0);
    ProbeUntil(monitor, [&] {
      return monitor.view() != nullptr &&
             monitor.view()->states[0] == NodeState::kDead;
    });
    cluster.RestartServer(0);
    ProbeUntil(monitor, [&] {
      return monitor.view()->states[0] == NodeState::kLive;
    });
  }
  ASSERT_GE(epochs.size(), 6u);  // >= one down + one up transition per round
  for (size_t i = 1; i < epochs.size(); ++i) {
    EXPECT_EQ(epochs[i], epochs[i - 1] + 1);  // dense and strictly climbing
  }
}

TEST(Cluster, MonitorThreadDetectsAndHealsOnItsOwn) {
  ClusterTestbedConfig config;
  config.servers = 3;
  config.replicas = 2;
  config.client_options.call_timeout = std::chrono::milliseconds(2000);
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 16, 8);

  std::vector<std::shared_ptr<ndp::NdpClient>> probes;
  for (int i = 0; i < 3; ++i) probes.push_back(cluster.probe_client(i));
  HealthMonitorOptions mopts;
  mopts.period = std::chrono::milliseconds(10);
  mopts.suspect_after = 1;
  mopts.dead_after = 2;
  mopts.rejoin_after = 2;
  HealthMonitor monitor(std::move(probes), mopts);
  monitor.SetViewSink([&](std::shared_ptr<const FleetView> view) {
    cluster.sharded_client()->SetFleetView(std::move(view));
  });
  monitor.Start();
  EXPECT_TRUE(monitor.running());
  ASSERT_NE(monitor.view(), nullptr);
  EXPECT_EQ(monitor.view()->epoch, 1u);  // initial all-live view

  auto wait_state = [&](int node, NodeState want) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      const auto v = monitor.view();
      if (v != nullptr && v->states[static_cast<size_t>(node)] == want) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  };

  cluster.KillServer(2);
  EXPECT_TRUE(wait_state(2, NodeState::kDead));
  cluster.RestartServer(2);
  EXPECT_TRUE(wait_state(2, NodeState::kLive));
  monitor.Stop();
  EXPECT_FALSE(monitor.running());
}

// ---------------------------------------------------------------------------
// Satellite: a channel to a down node is not permanently dead.

TEST(Cluster, ChannelToDownServerHealsOnRestart) {
  ClusterTestbedConfig config;
  config.servers = 2;
  config.client_options.call_timeout = std::chrono::milliseconds(2000);
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 12, 8);

  cluster.KillServer(1);
  EXPECT_THROW(cluster.server_client(1)->Health(), Error);

  // The same client object — no monitor, no rebuild — works again the
  // moment the server is back: the reconnecting channel just re-dials.
  cluster.RestartServer(1);
  EXPECT_NO_THROW(cluster.server_client(1)->Health());
  const contour::PolyData direct =
      cluster.server_client(1)->Contour("ts.vnd", "v02", kIsos);
  EXPECT_GT(direct.TriangleCount(), 0u);
}

// ---------------------------------------------------------------------------
// Satellite: health replies carry node identity + view epoch.

TEST(Cluster, HealthReportsIdentityAndEchoedEpoch) {
  ClusterTestbedConfig config;
  config.servers = 2;
  ClusterTestbed cluster(config);

  const ndp::NdpClient::HealthReport a = cluster.probe_client(0)->Health(7);
  EXPECT_NE(a.node_id, 0u);
  EXPECT_EQ(cluster.ndp_server(0).seen_view_epoch(), 7u);
  // Epochs only ratchet up: an older prober cannot regress the node.
  (void)cluster.probe_client(0)->Health(3);
  EXPECT_EQ(cluster.ndp_server(0).seen_view_epoch(), 7u);

  // A restart mints a new identity — the silent-restart tripwire.
  cluster.KillServer(0);
  cluster.RestartServer(0);
  // The very first call after the restart must succeed: the send lands
  // on the stale connection, and ReconnectingTransport re-dials and
  // re-sends transparently (the frame never left, so it is no retry).
  const ndp::NdpClient::HealthReport b = cluster.probe_client(0)->Health();
  EXPECT_NE(b.node_id, 0u);
  EXPECT_NE(b.node_id, a.node_id);
}

// ---------------------------------------------------------------------------
// Satellite: hostile brick restrictions die at the protocol boundary.

TEST(Protocol, HostileBrickRestrictionsRejected) {
  using msgpack::Array;
  using msgpack::Value;
  auto restriction = [](std::vector<std::int64_t> ids) {
    Array arr;
    for (const std::int64_t id : ids) arr.emplace_back(id);
    return Value(std::move(arr));
  };
  // Non-ascending, duplicate, negative: each violates the sorted-unique-
  // non-negative contract.
  EXPECT_THROW(ndp::BrickRestrictionFromValue(restriction({5, 2, 9})),
               DecodeError);
  EXPECT_THROW(ndp::BrickRestrictionFromValue(restriction({1, 1, 2})),
               DecodeError);
  EXPECT_THROW(ndp::BrickRestrictionFromValue(restriction({-1, 0})),
               DecodeError);
  // Absurd length: one past the hard cap.
  Array huge;
  huge.reserve(ndp::kMaxBrickRestriction + 1);
  for (size_t i = 0; i <= ndp::kMaxBrickRestriction; ++i) {
    huge.emplace_back(static_cast<std::int64_t>(i));
  }
  EXPECT_THROW(ndp::BrickRestrictionFromValue(Value(std::move(huge))),
               DecodeError);
  // Not an array at all.
  EXPECT_THROW(ndp::BrickRestrictionFromValue(Value(std::string("bricks"))),
               Error);
  // A valid list still passes.
  EXPECT_EQ(ndp::BrickRestrictionFromValue(restriction({0, 2, 5})).size(),
            3u);
}

TEST(Protocol, OutOfRangeRestrictionRejectedByServer) {
  ClusterTestbedConfig config;
  config.servers = 1;
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 16, 8);
  // 16^3 at 8^3 bricks = 8 bricks; id 9999 names none of them.
  const std::vector<std::int64_t> bogus = {9999};
  EXPECT_THROW(
      cluster.server_client(0)->FetchPartial("ts.vnd", "v02", kIsos, &bogus),
      RpcError);
}

// ---------------------------------------------------------------------------
// The chaos harness itself.

TEST(Chaos, SeededSchedulesPreserveEveryInvariant) {
  testing::ChaosOptions options;
  options.seed = 20260808;
  options.schedules = 3;
  options.steps = 6;
  options.fetches_per_step = 2;
  const testing::ChaosReport report = testing::RunChaos(options);
  for (const std::string& v : report.violations) ADD_FAILURE() << v;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.schedules, 3);
  EXPECT_GT(report.fetches, 0u);
  // The forced kill/restart preamble guarantees the headline path ran.
  EXPECT_GE(report.kills, 3u);
  EXPECT_GE(report.restarts, 3u);
  EXPECT_GE(report.rejoins, 3u);
  EXPECT_GE(report.rejoined_served, 3u);
  // Streaming rode along: every other fetch was chunked, each schedule
  // ended with a cancel drill (accounted 1:1) and a chunk-boundary kill
  // drill (cursor resume on a replica, bit-identical) — so resumes and
  // cancels must both have landed at least once per schedule.
  EXPECT_GT(report.stream_fetches, 0u);
  EXPECT_GE(report.stream_resumes, 3u);
  EXPECT_GE(report.stream_cancels, 3u);
  // Satellite: parked hedge losers drained with the last schedule.
  EXPECT_EQ(
      obs::DefaultRegistry().GetGauge("cluster_hedge_parked").value(), 0.0);
}

TEST(Chaos, SameSeedReplaysTheSameFaultSchedule) {
  testing::ChaosOptions options;
  options.seed = 77;
  options.schedules = 2;
  options.steps = 5;
  options.fetches_per_step = 1;
  const testing::ChaosReport a = testing::RunChaos(options);
  const testing::ChaosReport b = testing::RunChaos(options);
  EXPECT_EQ(a.kills, b.kills);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.delays, b.delays);
  EXPECT_EQ(a.corrupts, b.corrupts);
  EXPECT_EQ(a.busies, b.busies);
  EXPECT_EQ(a.store_eios, b.store_eios);
  EXPECT_EQ(a.store_slows, b.store_slows);
}

TEST(Chaos, DiskFaultSchedulesHealAndRoundTripBitRot) {
  testing::ChaosOptions options;
  options.seed = 80886;
  options.schedules = 2;
  options.steps = 8;  // longer schedules: more chances to draw disk faults
  options.fetches_per_step = 2;
  const testing::ChaosReport report = testing::RunChaos(options);
  for (const std::string& v : report.violations) ADD_FAILURE() << v;
  EXPECT_TRUE(report.ok());
  // Every schedule ends with the forced bit-rot round trip: rot at rest
  // → scrub quarantines on every node → clean re-Put serves through the
  // quarantine-skip rung (bit-identical to the oracle) → re-scrub
  // re-admits. The invariant is asserted inside the harness; here we
  // pin that it actually ran once per schedule.
  EXPECT_EQ(report.rot_roundtrips, 2u);
  // The random draws include store-level EIO storms and slow-disk
  // windows; with 16 steps at 8 fault kinds this seed draws both.
  EXPECT_GE(report.store_eios + report.store_slows, 1u);
}

}  // namespace
}  // namespace vizndp::cluster
