#include <gtest/gtest.h>

#include <random>

#include "bench_util/testbed.h"
#include "contour/marching_cubes.h"
#include "io/vnd_format.h"
#include "ndp/catalog.h"
#include "ndp/protocol.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/elements.h"
#include "sim/impact.h"

namespace vizndp::ndp {
namespace {

using bench_util::Testbed;
using bench_util::TestbedConfig;

contour::Selection MakeSelection(unsigned seed, const grid::Dims& dims,
                                 std::vector<float>* field_out = nullptr) {
  std::mt19937 rng(seed);
  std::vector<float> f(static_cast<size_t>(dims.PointCount()));
  for (auto& v : f) v = static_cast<float>(rng() % 1000) / 999.0f;
  const auto array = grid::DataArray::FromVector("f", f);
  const double isos[] = {0.5};
  if (field_out != nullptr) *field_out = std::move(f);
  return contour::SelectInterestingPoints(dims, array, isos);
}

TEST(Varint, RoundTripEdgeCases) {
  const std::uint64_t cases[] = {0,    1,    127,  128,   16383, 16384,
                                 1ull << 32, (1ull << 63), UINT64_MAX};
  for (const std::uint64_t v : cases) {
    Bytes buf;
    AppendVarint(v, buf);
    size_t pos = 0;
    EXPECT_EQ(ReadVarint(buf, pos), v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, TruncatedThrows) {
  Bytes buf;
  AppendVarint(1ull << 40, buf);
  buf.pop_back();
  size_t pos = 0;
  EXPECT_THROW(ReadVarint(buf, pos), DecodeError);
}

TEST(Varint, OverflowRejected) {
  Bytes buf(11, 0xFF);  // would exceed 64 bits
  size_t pos = 0;
  EXPECT_THROW(ReadVarint(buf, pos), DecodeError);
}

class EncodingRoundTripTest
    : public ::testing::TestWithParam<SelectionEncoding> {};

TEST_P(EncodingRoundTripTest, DecodeRecoversSelection) {
  const grid::Dims dims{9, 9, 9};
  const contour::Selection sel = MakeSelection(1, dims);
  ASSERT_GT(sel.ids.size(), 0u);
  const Bytes payload = EncodeSelection(sel, GetParam());
  const DecodedSelection back = DecodeSelection(payload, dims);
  EXPECT_EQ(back.ids, sel.ids);
  EXPECT_EQ(back.values.raw().size(), sel.values.raw().size());
  EXPECT_TRUE(std::equal(back.values.raw().begin(), back.values.raw().end(),
                         sel.values.raw().begin()));
}

INSTANTIATE_TEST_SUITE_P(Encodings, EncodingRoundTripTest,
                         ::testing::Values(SelectionEncoding::kIdValue,
                                           SelectionEncoding::kDeltaVarint,
                                           SelectionEncoding::kBitmap,
                                           SelectionEncoding::kRunLength));

TEST(Encoding, EmptySelection) {
  contour::Selection sel;
  sel.dims = {4, 4, 4};
  sel.total_points = 64;
  sel.values = grid::DataArray("f", grid::DataType::Float32, Bytes{});
  for (const auto e : {SelectionEncoding::kIdValue,
                       SelectionEncoding::kDeltaVarint,
                       SelectionEncoding::kBitmap,
                       SelectionEncoding::kRunLength}) {
    const Bytes payload = EncodeSelection(sel, e);
    const DecodedSelection back = DecodeSelection(payload, sel.dims);
    EXPECT_TRUE(back.ids.empty());
  }
}

TEST(Encoding, DeltaVarintIsSmallerThanIdValueForClusteredIds) {
  const grid::Dims dims{20, 20, 20};
  const contour::Selection sel = MakeSelection(2, dims);
  const size_t idv = EncodeSelection(sel, SelectionEncoding::kIdValue).size();
  const size_t dv =
      EncodeSelection(sel, SelectionEncoding::kDeltaVarint).size();
  EXPECT_LT(dv, idv);
}

TEST(Encoding, MalformedPayloadsThrow) {
  const grid::Dims dims{4, 4, 4};
  EXPECT_THROW(DecodeSelection(Bytes{0, 0}, dims), DecodeError);
  // Unknown tag.
  Bytes bad(16, 0);
  bad[0] = 99;
  EXPECT_THROW(DecodeSelection(bad, dims), DecodeError);
  // Valid header claiming more ids than the payload carries.
  contour::Selection sel;
  sel.dims = dims;
  sel.total_points = 64;
  sel.ids = {1, 2, 3};
  sel.values = grid::DataArray::FromVector(
      "f", std::vector<float>{0.1f, 0.2f, 0.3f});
  Bytes payload = EncodeSelection(sel, SelectionEncoding::kIdValue);
  payload.resize(payload.size() - 5);
  EXPECT_THROW(DecodeSelection(payload, dims), DecodeError);
}

TEST(Encoding, IdsOutsideGridRejected) {
  contour::Selection sel;
  sel.dims = {4, 4, 4};  // 64 points
  sel.total_points = 64;
  sel.ids = {70};
  sel.values = grid::DataArray::FromVector("f", std::vector<float>{1.0f});
  const Bytes payload = EncodeSelection(sel, SelectionEncoding::kIdValue);
  EXPECT_THROW(DecodeSelection(payload, sel.dims), DecodeError);
}

struct PopulatedTestbed {
  Testbed testbed;
  grid::Dataset dataset;
  static constexpr const char* kKey = "ts24006.vnd";

  explicit PopulatedTestbed(const std::string& codec = "none")
      : dataset(MakeImpact()) {
    io::VndWriter writer(dataset);
    writer.SetCodec(compress::MakeCodec(codec));
    writer.WriteToStore(testbed.store(), testbed.bucket(), kKey);
  }

  static grid::Dataset MakeImpact() {
    sim::ImpactConfig cfg;
    cfg.n = 24;
    return sim::GenerateImpactTimestep(cfg, 24006, {"v02", "v03"});
  }
};

TEST(NdpServer, SelectReturnsExpectedMetadata) {
  PopulatedTestbed fx;
  NdpServer server(fx.testbed.LocalGateway());
  const msgpack::Value reply =
      server.Select(PopulatedTestbed::kKey, "v02", {0.1},
                    SelectionEncoding::kDeltaVarint);
  EXPECT_EQ(reply.At("dims").As<msgpack::Array>().at(0).AsInt(), 24);
  EXPECT_EQ(reply.At("dtype").As<std::string>(), "float32");
  EXPECT_GT(reply.At("selected").AsUint(), 0u);
  EXPECT_EQ(reply.At("total_points").AsUint(), 24u * 24 * 24);
  EXPECT_GT(reply.At("payload").As<Bytes>().size(), 0u);
  EXPECT_LT(reply.At("payload").As<Bytes>().size(),
            reply.At("raw_bytes").AsUint());
}

TEST(NdpServer, InfoListsArrays) {
  PopulatedTestbed fx("gzip");
  NdpServer server(fx.testbed.LocalGateway());
  const msgpack::Value info = server.Info(PopulatedTestbed::kKey);
  const auto& arrays = info.At("arrays").As<msgpack::Array>();
  ASSERT_EQ(arrays.size(), 2u);
  EXPECT_EQ(arrays.at(0).At("name").As<std::string>(), "v02");
  EXPECT_EQ(arrays.at(0).At("codec").As<std::string>(), "gzip");
}

class NdpEndToEndTest : public ::testing::TestWithParam<std::string> {};

// The core claim: NDP over the emulated testbed returns the same contour
// as the traditional full-read pipeline, for every storage codec.
TEST_P(NdpEndToEndTest, ContourMatchesBaselineExactly) {
  PopulatedTestbed fx(GetParam());
  const std::vector<double> isovalues = {0.1, 0.5};

  // Baseline: remote gateway, full array read, classic marching cubes.
  io::VndReader reader(fx.testbed.RemoteGateway().Open(PopulatedTestbed::kKey));
  const grid::DataArray v02 = reader.ReadArray("v02");
  const contour::PolyData baseline = contour::MarchingCubes(
      reader.header().dims, reader.header().geometry, v02, isovalues);

  // NDP: pre-filter on the storage node, post-filter here.
  NdpLoadStats stats;
  const contour::PolyData ndp = fx.testbed.ndp_client().Contour(
      PopulatedTestbed::kKey, "v02", isovalues, &stats);

  ASSERT_EQ(ndp.TriangleCount(), baseline.TriangleCount());
  EXPECT_TRUE(ndp.GeometricallyEquals(baseline, 0.0));
  EXPECT_GT(stats.selected_points, 0u);
  EXPECT_LT(stats.selected_points, stats.total_points);
  EXPECT_GT(stats.server_read_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Codecs, NdpEndToEndTest,
                         ::testing::Values("none", "gzip", "lz4"));

TEST(NdpEndToEnd, MovesFarFewerBytesThanBaseline) {
  PopulatedTestbed fx;
  const std::vector<double> isovalues = {0.1};

  fx.testbed.link().Reset();
  io::VndReader reader(fx.testbed.RemoteGateway().Open(PopulatedTestbed::kKey));
  (void)reader.ReadArray("v02");
  const std::uint64_t baseline_bytes = fx.testbed.link().bytes_transferred();

  fx.testbed.link().Reset();
  NdpLoadStats stats;
  (void)fx.testbed.ndp_client().Contour(PopulatedTestbed::kKey, "v02",
                                        isovalues, &stats);
  const std::uint64_t ndp_bytes = fx.testbed.link().bytes_transferred();

  // The full v02 array is 24^3 * 4 B = 55 KiB; the selection is a small
  // fraction of it (paper Fig. 6).
  EXPECT_GT(baseline_bytes, 24u * 24 * 24 * 4);
  EXPECT_LT(ndp_bytes * 2, baseline_bytes);
  EXPECT_EQ(stats.payload_bytes + 256, stats.reply_bytes);
}

TEST(NdpEndToEnd, AllEncodingsGiveTheSameContour)
{
  PopulatedTestbed fx;
  const std::vector<double> isovalues = {0.3};
  contour::PolyData reference;
  bool first = true;
  for (const auto encoding : {SelectionEncoding::kIdValue,
                              SelectionEncoding::kDeltaVarint,
                              SelectionEncoding::kBitmap,
                              SelectionEncoding::kRunLength}) {
    fx.testbed.ndp_client().SetEncoding(encoding);
    contour::PolyData poly = fx.testbed.ndp_client().Contour(
        PopulatedTestbed::kKey, "v02", isovalues);
    if (first) {
      reference = std::move(poly);
      first = false;
    } else {
      EXPECT_TRUE(poly.GeometricallyEquals(reference, 0.0))
          << SelectionEncodingName(encoding);
    }
  }
}

TEST(NdpEndToEnd, MultiArrayPipelinesShareOneServer) {
  // The paper runs one contour filter instance per array (v02 + v03).
  PopulatedTestbed fx;
  const std::vector<double> isovalues = {0.1};
  NdpLoadStats v02_stats, v03_stats;
  const contour::PolyData water = fx.testbed.ndp_client().Contour(
      PopulatedTestbed::kKey, "v02", isovalues, &v02_stats);
  const contour::PolyData asteroid = fx.testbed.ndp_client().Contour(
      PopulatedTestbed::kKey, "v03", isovalues, &v03_stats);
  EXPECT_GT(water.TriangleCount(), 0u);
  EXPECT_GT(asteroid.TriangleCount(), 0u);
  // Asteroid is far more selective (paper Fig. 6).
  EXPECT_LT(v03_stats.selected_points, v02_stats.selected_points);
}

TEST(NdpEndToEnd, UnknownArrayGivesRpcError) {
  PopulatedTestbed fx;
  EXPECT_THROW(fx.testbed.ndp_client().Contour(PopulatedTestbed::kKey,
                                               "bogus", {0.1}),
               RpcError);
}

TEST(NdpStats, HistogramAndRangeMatchTheArray) {
  PopulatedTestbed fx;
  const NdpClient::ArrayStats stats =
      fx.testbed.ndp_client().Stats(PopulatedTestbed::kKey, "v02", 32);
  const auto [lo, hi] = fx.dataset.GetArray("v02").Range();
  EXPECT_DOUBLE_EQ(stats.min, lo);
  EXPECT_DOUBLE_EQ(stats.max, hi);
  EXPECT_EQ(stats.count, 24u * 24 * 24);
  ASSERT_EQ(stats.histogram.size(), 32u);
  std::uint64_t total = 0;
  for (const auto c : stats.histogram) total += c;
  EXPECT_EQ(total, stats.count);
  // v02 is mostly exact 0 (air) and exact 1 (water): the end bins dominate.
  EXPECT_GT(stats.histogram.front() + stats.histogram.back(),
            stats.count / 2);
}

TEST(NdpStats, SuggestIsovaluesSpansTheDistribution) {
  PopulatedTestbed fx;
  const NdpClient::ArrayStats stats =
      fx.testbed.ndp_client().Stats(PopulatedTestbed::kKey, "v02", 128);
  const std::vector<double> suggested = SuggestIsovalues(stats, 3);
  ASSERT_EQ(suggested.size(), 3u);
  for (const double iso : suggested) {
    EXPECT_GE(iso, stats.min);
    EXPECT_LE(iso, stats.max);
  }
  EXPECT_LE(suggested[0], suggested[1]);
  EXPECT_LE(suggested[1], suggested[2]);
  // Suggested values must produce nonempty contours.
  const contour::PolyData poly = fx.testbed.ndp_client().Contour(
      PopulatedTestbed::kKey, "v02", {suggested[1]});
  EXPECT_GT(poly.TriangleCount(), 0u);
}

TEST(NdpStats, BinCountsMatchKnownSyntheticArray) {
  // 4^3 points with values 0..63: four bins over [0, 63] must each hold
  // exactly 16 values (bin width 15.75; value 63 clamps into the last).
  Testbed testbed;
  grid::Dataset ds(grid::Dims{4, 4, 4});
  std::vector<float> values(64);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(i);
  }
  ds.AddArray(grid::DataArray::FromVector("ramp", values));
  io::VndWriter writer(ds);
  writer.WriteToStore(testbed.store(), testbed.bucket(), "ramp.vnd");

  NdpServer server(testbed.LocalGateway());
  const msgpack::Value reply = server.Stats("ramp.vnd", "ramp", 4);
  EXPECT_DOUBLE_EQ(reply.At("min").AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(reply.At("max").AsDouble(), 63.0);
  EXPECT_EQ(reply.At("count").AsUint(), 64u);
  const auto& histogram = reply.At("histogram").As<msgpack::Array>();
  ASSERT_EQ(histogram.size(), 4u);
  for (const msgpack::Value& bin : histogram) {
    EXPECT_EQ(bin.AsUint(), 16u);
  }
  // No brick index on this file, so the range came from a data pass.
  EXPECT_EQ(obs::FindMetric(server.metrics().Snapshot(),
                            "ndp_stats_index_fastpath_total"),
            nullptr);
}

TEST(NdpStats, BrickIndexedFileUsesHeaderRangeFastPath) {
  Testbed testbed;
  grid::Dataset ds = PopulatedTestbed::MakeImpact();
  io::VndWriter writer(ds);
  writer.SetBrickSize(8);
  writer.WriteToStore(testbed.store(), testbed.bucket(), "bricked.vnd");

  NdpServer server(testbed.LocalGateway());
  const msgpack::Value reply = server.Stats("bricked.vnd", "v02", 16);

  // Same range the data itself gives — but served from the header index.
  const auto [lo, hi] = ds.GetArray("v02").Range();
  EXPECT_DOUBLE_EQ(reply.At("min").AsDouble(), lo);
  EXPECT_DOUBLE_EQ(reply.At("max").AsDouble(), hi);
  const obs::MetricSnapshot* fastpath = obs::FindMetric(
      server.metrics().Snapshot(), "ndp_stats_index_fastpath_total");
  ASSERT_NE(fastpath, nullptr);
  EXPECT_DOUBLE_EQ(fastpath->value, 1.0);
}

TEST(NdpStats, RejectsBadBinCounts) {
  PopulatedTestbed fx;
  EXPECT_THROW(fx.testbed.ndp_client().Stats(PopulatedTestbed::kKey, "v02", 0),
               RpcError);
  EXPECT_THROW(
      fx.testbed.ndp_client().Stats(PopulatedTestbed::kKey, "v02", 100000),
      RpcError);
}

TEST(NdpObservability, MetricsScrapeAgreesWithLoadStats) {
  PopulatedTestbed fx;
  NdpLoadStats stats;
  (void)fx.testbed.ndp_client().Contour(PopulatedTestbed::kKey, "v02", {0.1},
                                        &stats);

  const std::vector<obs::MetricSnapshot> scraped =
      fx.testbed.ndp_client().ScrapeMetrics();

  const obs::MetricSnapshot* bytes_out =
      obs::FindMetric(scraped, "ndp_bytes_out_total");
  ASSERT_NE(bytes_out, nullptr);
  EXPECT_DOUBLE_EQ(bytes_out->value,
                   static_cast<double>(stats.payload_bytes));

  const obs::MetricSnapshot* selected =
      obs::FindMetric(scraped, "ndp_selected_points_total");
  ASSERT_NE(selected, nullptr);
  EXPECT_DOUBLE_EQ(selected->value,
                   static_cast<double>(stats.selected_points));

  // The rpc dispatcher's per-method view of the same single fetch.
  const obs::MetricSnapshot* select_requests =
      obs::FindMetric(scraped, "rpc_requests_total{method=ndp.select}");
  ASSERT_NE(select_requests, nullptr);
  EXPECT_DOUBLE_EQ(select_requests->value, 1.0);
  const obs::MetricSnapshot* select_latency =
      obs::FindMetric(scraped, "rpc_dispatch_seconds{method=ndp.select}");
  ASSERT_NE(select_latency, nullptr);
  EXPECT_EQ(select_latency->count, 1u);

  // Span-derived client phase timings are consistent with the total.
  EXPECT_GT(stats.client_s, 0.0);
  EXPECT_LE(stats.client_decode_s + stats.client_scatter_s, stats.client_s);
}

TEST(NdpObservability, TraceCapturesSplitPipelinePhases) {
  obs::Tracer& tracer = obs::GlobalTracer();
  tracer.Clear();
  tracer.Enable();
  {
    PopulatedTestbed fx("lz4");
    (void)fx.testbed.ndp_client().Contour(PopulatedTestbed::kKey, "v02",
                                          {0.1});
  }
  tracer.Enable(false);
  const std::string json = tracer.ChromeJson();
  tracer.Clear();

  // Server half: read (with the codec nested inside), scan, pack.
  for (const char* span :
       {"ndp.read", "codec.decompress:lz4", "ndp.select.scan", "ndp.pack",
        "rpc.dispatch:ndp.select",
        // Client half: round trip, decode, scatter.
        "rpc.call:ndp.select", "ndp.fetch", "ndp.decode", "ndp.scatter"}) {
    EXPECT_NE(json.find(std::string("\"") + span + "\""), std::string::npos)
        << "missing span: " << span;
  }
  // Both halves render on their own named tracks.
  EXPECT_NE(json.find("\"server\""), std::string::npos);
  EXPECT_NE(json.find("\"client\""), std::string::npos);
}

TEST(Catalog, PutListOpenRoundTrip) {
  Testbed testbed;
  TimestepCatalog catalog(testbed.LocalGateway());
  sim::ImpactConfig cfg;
  cfg.n = 12;
  for (const std::int64_t t : {0LL, 24006LL, 48013LL}) {
    catalog.Put(t, sim::GenerateImpactTimestep(cfg, t, {"v02"}),
                compress::MakeCodec("lz4"));
  }
  EXPECT_EQ(catalog.Timesteps(), (std::vector<std::int64_t>{0, 24006, 48013}));
  EXPECT_TRUE(catalog.Contains(24006));
  EXPECT_FALSE(catalog.Contains(7));
  EXPECT_EQ(catalog.Open(0).header().dims.nx, 12);
}

TEST(Catalog, IgnoresForeignKeys) {
  Testbed testbed;
  testbed.store().Put(testbed.bucket(), "tsXYZ.vnd", ToBytes("junk"));
  testbed.store().Put(testbed.bucket(), "ts12.txt", ToBytes("junk"));
  testbed.store().Put(testbed.bucket(), "other.vnd", ToBytes("junk"));
  TimestepCatalog catalog(testbed.LocalGateway());
  EXPECT_TRUE(catalog.Timesteps().empty());
}

TEST(MovieDriver, BaselineAndNdpProduceIdenticalMovies) {
  Testbed testbed;
  // Storage-side catalog for population + the server; client-side remote
  // catalog for the baseline run.
  TimestepCatalog storage_catalog(testbed.LocalGateway());
  sim::ImpactConfig cfg;
  cfg.n = 16;
  const std::vector<std::int64_t> steps = {0, 24006, 48013};
  for (const std::int64_t t : steps) {
    storage_catalog.Put(t, sim::GenerateImpactTimestep(cfg, t, {"v02"}),
                        compress::MakeCodec("gzip"));
  }

  const ContourMovieDriver driver("v02", {0.1});
  std::vector<contour::PolyData> baseline_frames;
  TimestepCatalog remote_catalog(testbed.RemoteGateway());
  const auto baseline_info = driver.RunBaseline(
      remote_catalog, [&](const ContourMovieDriver::FrameInfo&,
                          const contour::PolyData& poly) {
        baseline_frames.push_back(poly);
      });

  std::vector<contour::PolyData> ndp_frames;
  const auto ndp_info = driver.RunNdp(
      testbed.ndp_client(), steps,
      [&](const ContourMovieDriver::FrameInfo& info,
          const contour::PolyData& poly) {
        EXPECT_TRUE(info.ndp_stats.has_value());
        ndp_frames.push_back(poly);
      });

  ASSERT_EQ(baseline_info.size(), steps.size());
  ASSERT_EQ(ndp_info.size(), steps.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(baseline_info[i].timestep, ndp_info[i].timestep);
    EXPECT_EQ(baseline_info[i].triangles, ndp_info[i].triangles);
    EXPECT_TRUE(ndp_frames[i].GeometricallyEquals(baseline_frames[i], 0.0));
  }
}

TEST(NdpPipeline, SourceIntegratesWithSinks) {
  PopulatedTestbed fx;
  NdpContourSource source(fx.testbed.ndp_client_ptr(), PopulatedTestbed::kKey,
                          "v02", {0.1});
  pipeline::PolyStatsSink sink;
  sink.SetInputConnection(0, &source);
  sink.Update();
  EXPECT_GT(sink.stats().triangles, 0u);
  EXPECT_GT(source.last_stats().selected_points, 0u);

  // Interactive isovalue change re-runs the NDP fetch.
  source.SetIsovalues({0.5});
  sink.Update();
  EXPECT_EQ(source.execution_count(), 2u);
}

}  // namespace
}  // namespace vizndp::ndp
