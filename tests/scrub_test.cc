// Scrub-and-quarantine subsystem: the QuarantineSet, the VND-aware
// verifier, the background Scrubber, the bricked pre-filter's
// quarantine-skip rung, and the health surfacing — the full lifecycle
// rot -> quarantine -> clean re-Put -> skip-serve -> readmit.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "bench_util/testbed.h"
#include "compress/codec.h"
#include "io/vnd_format.h"
#include "ndp/bricked_select.h"
#include "ndp/scrub_verify.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "sim/impact.h"
#include "storage/memory_store.h"
#include "storage/scrubber.h"

namespace vizndp::storage {
namespace {

constexpr const char* kKey = "scrub.vnd";
constexpr const char* kArray = "v02";
const std::vector<double> kIsos = {0.2, 0.5};

std::uint64_t Counter(const std::string& name) {
  return obs::DefaultRegistry().GetCounter(name).value();
}

// A bricked, CRC-carrying VND object plus the plumbing to rot and
// repair it at rest.
struct ScrubFixture {
  MemoryObjectStore store;
  Bytes clean_blob;

  ScrubFixture() {
    store.CreateBucket("data");
    sim::ImpactConfig cfg;
    cfg.n = 16;
    const grid::Dataset ds = sim::GenerateImpactTimestep(cfg, 24006, {kArray});
    io::VndWriter writer(ds);
    writer.SetCodec(compress::MakeCodec("lz4"));
    writer.SetBrickSize(8);
    writer.WriteToStore(store, "data", kKey);
    clean_blob = store.Get("data", kKey);
  }

  FileGateway gateway() { return FileGateway(store, "data"); }

  // Flips one bit inside the stored bytes of the first brick that
  // straddles an isovalue (so the serving path is guaranteed to need
  // it); returns the brick id.
  std::int64_t RotBrick() {
    const io::VndReader reader(gateway().Open(kKey));
    const io::ArrayMeta* meta = reader.header().Find(kArray);
    const auto& entries = meta->bricks->entries;
    size_t victim = entries.size();
    for (size_t b = 0; b < entries.size() && victim == entries.size(); ++b) {
      for (const double iso : kIsos) {
        if (entries[b].min < iso && entries[b].max >= iso) {
          victim = b;
          break;
        }
      }
    }
    EXPECT_LT(victim, entries.size()) << "no straddling brick in fixture";
    Bytes blob = clean_blob;
    blob[static_cast<size_t>(reader.header().blob_base + meta->offset +
                             entries[victim].offset)] ^= 0x01;
    store.Put("data", kKey, blob);
    return static_cast<std::int64_t>(victim);
  }

  void Repair() { store.Put("data", kKey, clean_blob); }
};

TEST(QuarantineSet, AddRemoveContains) {
  QuarantineSet q;
  const BrickRef ref{"k", "a", 3};
  EXPECT_FALSE(q.Contains("k", "a", 3));
  EXPECT_TRUE(q.Add(ref));
  EXPECT_FALSE(q.Add(ref));  // second add is not "newly quarantined"
  EXPECT_TRUE(q.Contains("k", "a", 3));
  EXPECT_FALSE(q.Contains("k", "a", 4));
  EXPECT_EQ(q.size(), 1u);
  ASSERT_EQ(q.Snapshot().size(), 1u);
  EXPECT_EQ(q.Snapshot()[0], ref);
  EXPECT_TRUE(q.Remove(ref));
  EXPECT_FALSE(q.Remove(ref));  // already gone
  EXPECT_EQ(q.size(), 0u);
}

TEST(QuarantineSet, MaintainsGauge) {
  QuarantineSet q;
  obs::Gauge& gauge = obs::DefaultRegistry().GetGauge("scrub_quarantined");
  const double base = gauge.value();
  q.Add({"k", "a", 1});
  q.Add({"k", "a", 2});
  EXPECT_EQ(gauge.value(), base + 2);
  q.Remove({"k", "a", 1});
  EXPECT_EQ(gauge.value(), base + 1);
  q.Remove({"k", "a", 2});
  EXPECT_EQ(gauge.value(), base);
}

TEST(ScrubVerify, CleanObjectQuarantinesNothing) {
  ScrubFixture fx;
  QuarantineSet quarantine;
  const auto report = ndp::ScrubVndObject(fx.gateway(), kKey, quarantine);
  EXPECT_GT(report.bricks_checked, 0u);
  EXPECT_EQ(report.corrupt, 0u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_EQ(quarantine.size(), 0u);
}

TEST(ScrubVerify, RotIsQuarantinedOnceThenReadmitted) {
  ScrubFixture fx;
  QuarantineSet quarantine;
  const std::int64_t rotted = fx.RotBrick();

  const std::uint64_t q_before = Counter("scrub_quarantine_total");
  const std::uint64_t r_before = Counter("scrub_readmit_total");
  const std::uint64_t seq = obs::GlobalEventLog().LastSeq();

  // First pass: found and quarantined, one counter + one journal event.
  auto report = ndp::ScrubVndObject(fx.gateway(), kKey, quarantine);
  EXPECT_EQ(report.corrupt, 1u);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_TRUE(quarantine.Contains(kKey, kArray, rotted));
  EXPECT_EQ(Counter("scrub_quarantine_total"), q_before + 1);
  EXPECT_EQ(obs::GlobalEventLog().CountSince("scrub.quarantine", seq), 1u);

  // Second pass, still rotted: sighted again but NOT re-quarantined —
  // scrub_corrupt_found_total moves every pass, the quarantine event
  // only on the transition.
  report = ndp::ScrubVndObject(fx.gateway(), kKey, quarantine);
  EXPECT_EQ(report.corrupt, 1u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_EQ(Counter("scrub_quarantine_total"), q_before + 1);

  // Repair and re-scrub: the brick verifies clean and is re-admitted.
  fx.Repair();
  report = ndp::ScrubVndObject(fx.gateway(), kKey, quarantine);
  EXPECT_EQ(report.corrupt, 0u);
  EXPECT_EQ(report.readmitted, 1u);
  EXPECT_FALSE(quarantine.Contains(kKey, kArray, rotted));
  EXPECT_EQ(Counter("scrub_readmit_total"), r_before + 1);
  EXPECT_EQ(obs::GlobalEventLog().CountSince("scrub.readmit", seq), 1u);
}

TEST(ScrubVerify, BudgetPressureSkipsWithoutVerdictChanges) {
  ScrubFixture fx;
  QuarantineSet quarantine;
  fx.RotBrick();
  rpc::MemoryBudget budget;
  budget.SetLimit(1);  // nothing fits
  const auto report =
      ndp::ScrubVndObject(fx.gateway(), kKey, quarantine, &budget);
  EXPECT_EQ(report.bricks_checked, 0u);
  EXPECT_GT(report.budget_skips, 0u);
  EXPECT_EQ(quarantine.size(), 0u);  // no verdict under pressure
}

TEST(Scrubber, RunPassNowAggregatesStatus) {
  ScrubFixture fx;
  QuarantineSet quarantine;
  const std::uint64_t passes_before = Counter("scrub_pass_total");
  Scrubber scrubber(fx.gateway(),
                    ndp::MakeVndScrubVerifier(fx.gateway(), quarantine),
                    quarantine);
  fx.RotBrick();
  scrubber.RunPassNow();
  const ScrubStatus status = scrubber.status();
  EXPECT_EQ(status.passes, 1u);
  EXPECT_EQ(status.objects_checked, 1u);
  EXPECT_GT(status.bricks_checked, 0u);
  EXPECT_EQ(status.corrupt_found, 1u);
  EXPECT_EQ(status.quarantined_now, 1u);
  EXPECT_FALSE(status.running);
  EXPECT_EQ(Counter("scrub_pass_total"), passes_before + 1);
}

TEST(Scrubber, SuffixFilterSkipsForeignObjects) {
  ScrubFixture fx;
  fx.store.Put("data", "notes.txt", ToBytes("not a vnd file"));
  QuarantineSet quarantine;
  Scrubber scrubber(fx.gateway(),
                    ndp::MakeVndScrubVerifier(fx.gateway(), quarantine),
                    quarantine);
  const std::uint64_t errors_before = Counter("scrub_object_error_total");
  scrubber.RunPassNow();
  // The .txt never reached the verifier (it would throw on parse and
  // count an object error).
  EXPECT_EQ(Counter("scrub_object_error_total"), errors_before);
  EXPECT_EQ(scrubber.status().objects_checked, 1u);
}

TEST(Scrubber, BackgroundThreadMakesPasses) {
  ScrubFixture fx;
  QuarantineSet quarantine;
  ScrubberOptions options;
  options.period = std::chrono::milliseconds(2);
  Scrubber scrubber(fx.gateway(),
                    ndp::MakeVndScrubVerifier(fx.gateway(), quarantine),
                    quarantine, options);
  scrubber.Start();
  EXPECT_TRUE(scrubber.status().running);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (scrubber.status().passes < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scrubber.Stop();
  EXPECT_GE(scrubber.status().passes, 2u);
  EXPECT_FALSE(scrubber.status().running);
}

TEST(BrickedSelect, QuarantineSkipServesHealedBrick) {
  ScrubFixture fx;
  QuarantineSet quarantine;
  const std::int64_t rotted = fx.RotBrick();
  ndp::ScrubVndObject(fx.gateway(), kKey, quarantine);
  ASSERT_TRUE(quarantine.Contains(kKey, kArray, rotted));

  // Heal at rest, but do NOT re-scrub: the serving path must cope with
  // a stale quarantine verdict by re-reading and verifying.
  fx.Repair();
  const io::VndReader reader(fx.gateway().Open(kKey));
  const contour::Selection expected =
      ndp::SelectInterestingPointsBricked(reader, kArray, kIsos);

  const std::uint64_t skips_before = Counter("ndp_quarantine_skip_total");
  const std::uint64_t seq = obs::GlobalEventLog().LastSeq();
  ndp::BrickedSelectStats stats;
  const contour::Selection got = ndp::SelectInterestingPointsBricked(
      reader, kArray, kIsos, &stats, nullptr, &quarantine, kKey);

  EXPECT_EQ(got.ids, expected.ids);
  EXPECT_GE(stats.quarantine_skips, 1);
  EXPECT_EQ(Counter("ndp_quarantine_skip_total") - skips_before,
            static_cast<std::uint64_t>(stats.quarantine_skips));
  EXPECT_EQ(obs::GlobalEventLog().CountSince("ndp.quarantine_skip", seq),
            static_cast<size_t>(stats.quarantine_skips));
}

TEST(BrickedSelect, StillCorruptQuarantinedBrickFailsFast) {
  ScrubFixture fx;
  QuarantineSet quarantine;
  fx.RotBrick();
  ndp::ScrubVndObject(fx.gateway(), kKey, quarantine);

  const io::VndReader reader(fx.gateway().Open(kKey));
  ndp::BrickedSelectStats stats;
  const std::uint64_t rereads_before = Counter("brick_reread_total");
  // Still corrupt at rest: the skip rung's verified read fails without
  // burning the read+CRC-fail+re-read cycle on known-bad bytes.
  EXPECT_THROW(ndp::SelectInterestingPointsBricked(reader, kArray, kIsos,
                                                   &stats, nullptr,
                                                   &quarantine, kKey),
               CorruptDataError);
  EXPECT_EQ(Counter("brick_reread_total"), rereads_before);
}

TEST(ClusterHealth, ScrubStatusSurfacesInHealth) {
  bench_util::ClusterTestbedConfig config;
  config.servers = 1;
  config.replicas = 1;
  bench_util::ClusterTestbed cluster(config);
  sim::ImpactConfig cfg;
  cfg.n = 16;
  const grid::Dataset ds = sim::GenerateImpactTimestep(cfg, 24006, {kArray});
  io::VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec("lz4"));
  writer.SetBrickSize(8);
  writer.WriteToStore(cluster.store(), cluster.bucket(), kKey);

  cluster.scrubber(0).RunPassNow();
  const auto health = cluster.probe_client(0)->Health();
  ASSERT_TRUE(health.scrub_present);
  EXPECT_EQ(health.scrub_passes, 1u);
  EXPECT_GT(health.scrub_bricks_checked, 0u);
  EXPECT_EQ(health.scrub_quarantined, 0u);
}

TEST(ClusterQuarantine, SurvivesNodeRestart) {
  bench_util::ClusterTestbedConfig config;
  config.servers = 1;
  config.replicas = 1;
  bench_util::ClusterTestbed cluster(config);
  cluster.quarantine(0).Add({"k", "a", 7});
  cluster.KillServer(0);
  cluster.RestartServer(0);
  // The fresh incarnation still knows the brick was bad at rest — a
  // reboot does not reset what the disk contains.
  EXPECT_TRUE(cluster.quarantine(0).Contains("k", "a", 7));
}

}  // namespace
}  // namespace vizndp::storage
