#include <gtest/gtest.h>

#include <cmath>

#include "grid/dataset.h"

namespace vizndp::grid {
namespace {

TEST(Dims, PointAndCellCounts) {
  const Dims d{4, 5, 6};
  EXPECT_EQ(d.PointCount(), 120);
  EXPECT_EQ(d.CellCount(), 3 * 4 * 5);
  const Dims flat{8, 6, 1};
  EXPECT_TRUE(flat.Is2D());
  EXPECT_EQ(flat.CellCount(), 7 * 5);
}

TEST(Dims, IndexCoordsInverse) {
  const Dims d{7, 5, 3};
  for (std::int64_t k = 0; k < d.nz; ++k) {
    for (std::int64_t j = 0; j < d.ny; ++j) {
      for (std::int64_t i = 0; i < d.nx; ++i) {
        const PointId id = d.Index(i, j, k);
        const auto c = d.Coords(id);
        EXPECT_EQ(c[0], i);
        EXPECT_EQ(c[1], j);
        EXPECT_EQ(c[2], k);
      }
    }
  }
}

TEST(Dims, IndexIsDenseAndUnique) {
  const Dims d{3, 4, 5};
  std::vector<bool> seen(static_cast<size_t>(d.PointCount()), false);
  for (std::int64_t k = 0; k < d.nz; ++k) {
    for (std::int64_t j = 0; j < d.ny; ++j) {
      for (std::int64_t i = 0; i < d.nx; ++i) {
        const PointId id = d.Index(i, j, k);
        ASSERT_GE(id, 0);
        ASSERT_LT(id, d.PointCount());
        EXPECT_FALSE(seen[static_cast<size_t>(id)]);
        seen[static_cast<size_t>(id)] = true;
      }
    }
  }
}

TEST(Dims, Contains) {
  const Dims d{4, 4, 4};
  EXPECT_TRUE(d.Contains(0, 0, 0));
  EXPECT_TRUE(d.Contains(3, 3, 3));
  EXPECT_FALSE(d.Contains(-1, 0, 0));
  EXPECT_FALSE(d.Contains(0, 4, 0));
}

TEST(UniformGeometry, PointPositions) {
  const Dims d{3, 3, 3};
  UniformGeometry g;
  g.origin = {10.0, 20.0, 30.0};
  g.spacing = {0.5, 1.0, 2.0};
  const auto p = g.PointPosition(d, d.Index(2, 1, 1));
  EXPECT_DOUBLE_EQ(p[0], 11.0);
  EXPECT_DOUBLE_EQ(p[1], 21.0);
  EXPECT_DOUBLE_EQ(p[2], 32.0);
}

TEST(DataType, SizesAndNames) {
  EXPECT_EQ(DataTypeSize(DataType::Float32), 4u);
  EXPECT_EQ(DataTypeSize(DataType::Float64), 8u);
  EXPECT_EQ(DataTypeSize(DataType::UInt8), 1u);
  for (const DataType t : {DataType::Float32, DataType::Float64,
                           DataType::Int32, DataType::Int64, DataType::UInt8}) {
    EXPECT_EQ(DataTypeFromName(DataTypeName(t)), t);
  }
  EXPECT_THROW(DataTypeFromName("quaternion"), Error);
}

TEST(DataArray, FromVectorAndViews) {
  auto a = DataArray::FromVector<float>("rho", {1.0f, 2.0f, 3.0f});
  EXPECT_EQ(a.name(), "rho");
  EXPECT_EQ(a.size(), 3);
  EXPECT_EQ(a.byte_size(), 12);
  EXPECT_EQ(a.View<float>()[1], 2.0f);
  EXPECT_THROW(a.View<double>(), Error);
  a.MutableView<float>()[0] = 9.0f;
  EXPECT_DOUBLE_EQ(a.ValueAsDouble(0), 9.0);
}

TEST(DataArray, RangeIgnoresNan) {
  auto a = DataArray::FromVector<float>(
      "x", {3.0f, std::nanf(""), -1.0f, 7.0f});
  const auto [lo, hi] = a.Range();
  EXPECT_DOUBLE_EQ(lo, -1.0);
  EXPECT_DOUBLE_EQ(hi, 7.0);
}

TEST(DataArray, RawConstructorValidatesSize) {
  EXPECT_THROW(DataArray("x", DataType::Float32, Bytes(7)), Error);
  EXPECT_NO_THROW(DataArray("x", DataType::Float32, Bytes(8)));
}

TEST(Dataset, AddAndLookup) {
  Dataset ds(Dims{2, 2, 2});
  ds.AddArray(DataArray::FromVector<float>("v02", std::vector<float>(8, 0.5f)));
  ds.AddArray(DataArray::FromVector<float>("v03", std::vector<float>(8, 0.1f)));
  EXPECT_EQ(ds.ArrayCount(), 2u);
  EXPECT_NE(ds.FindArray("v02"), nullptr);
  EXPECT_EQ(ds.FindArray("nope"), nullptr);
  EXPECT_THROW(ds.GetArray("nope"), Error);
  EXPECT_EQ(ds.ArrayNames(), (std::vector<std::string>{"v02", "v03"}));
}

TEST(Dataset, RejectsWrongSizeAndDuplicates) {
  Dataset ds(Dims{2, 2, 2});
  EXPECT_THROW(
      ds.AddArray(DataArray::FromVector<float>("x", std::vector<float>(7))),
      Error);
  ds.AddArray(DataArray::FromVector<float>("x", std::vector<float>(8)));
  EXPECT_THROW(
      ds.AddArray(DataArray::FromVector<float>("x", std::vector<float>(8))),
      Error);
}

TEST(Dataset, SelectImplementsArraySelection) {
  Dataset ds(Dims{2, 2, 1});
  for (const char* name : {"rho", "prs", "v02", "v03"}) {
    ds.AddArray(DataArray::FromVector<float>(name, std::vector<float>(4)));
  }
  const Dataset picked = ds.Select({"v02", "v03"});
  EXPECT_EQ(picked.ArrayCount(), 2u);
  EXPECT_EQ(picked.dims(), ds.dims());
  EXPECT_THROW(ds.Select({"missing"}), Error);
}

TEST(Dataset, RemoveArray) {
  Dataset ds(Dims{2, 2, 1});
  ds.AddArray(DataArray::FromVector<float>("a", std::vector<float>(4)));
  EXPECT_TRUE(ds.RemoveArray("a"));
  EXPECT_FALSE(ds.RemoveArray("a"));
  EXPECT_EQ(ds.ArrayCount(), 0u);
}

}  // namespace
}  // namespace vizndp::grid
