#include <gtest/gtest.h>

#include <random>

#include "compress/huffman.h"

namespace vizndp::compress {
namespace {

TEST(CanonicalCodes, Rfc1951WorkedExample) {
  // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) for symbols A..H.
  const std::vector<std::uint8_t> lengths = {3, 3, 3, 3, 3, 2, 4, 4};
  const auto codes = AssignCanonicalCodes(lengths);
  EXPECT_EQ(codes[0], 0b010);
  EXPECT_EQ(codes[1], 0b011);
  EXPECT_EQ(codes[2], 0b100);
  EXPECT_EQ(codes[3], 0b101);
  EXPECT_EQ(codes[4], 0b110);
  EXPECT_EQ(codes[5], 0b00);
  EXPECT_EQ(codes[6], 0b1110);
  EXPECT_EQ(codes[7], 0b1111);
}

TEST(BuildCodeLengths, SkewedFrequenciesGiveShortCodesToCommonSymbols) {
  const std::vector<std::uint64_t> freq = {1000, 100, 10, 1};
  const auto lengths = BuildCodeLengths(freq);
  EXPECT_LE(lengths[0], lengths[1]);
  EXPECT_LE(lengths[1], lengths[2]);
  EXPECT_LE(lengths[2], lengths[3]);
}

TEST(BuildCodeLengths, ZeroFrequencySymbolsGetNoCode) {
  const std::vector<std::uint64_t> freq = {5, 0, 7, 0};
  const auto lengths = BuildCodeLengths(freq);
  EXPECT_GT(lengths[0], 0);
  EXPECT_EQ(lengths[1], 0);
  EXPECT_GT(lengths[2], 0);
  EXPECT_EQ(lengths[3], 0);
}

TEST(BuildCodeLengths, RespectsLengthLimit) {
  // Fibonacci-like frequencies force deep Huffman trees.
  std::vector<std::uint64_t> freq(40);
  std::uint64_t a = 1, b = 1;
  for (auto& f : freq) {
    f = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  for (const int limit : {7, 15}) {
    const auto lengths = BuildCodeLengths(freq, limit);
    for (const auto len : lengths) {
      EXPECT_LE(len, limit);
      EXPECT_GT(len, 0);
    }
    // Kraft inequality must hold (decodable prefix code).
    double kraft = 0;
    for (const auto len : lengths) kraft += std::ldexp(1.0, -len);
    EXPECT_LE(kraft, 1.0 + 1e-12);
  }
}

TEST(HuffmanDecoder, RejectsOverSubscribed) {
  const std::vector<std::uint8_t> lengths = {1, 1, 1};  // 3 codes of length 1
  HuffmanDecoder d;
  EXPECT_THROW(d.Init(lengths), DecodeError);
}

TEST(HuffmanDecoder, RejectsIncomplete) {
  const std::vector<std::uint8_t> lengths = {2, 2, 2};  // one slot missing
  HuffmanDecoder d;
  EXPECT_THROW(d.Init(lengths), DecodeError);
}

TEST(HuffmanDecoder, AcceptsSingleSymbolAlphabet) {
  const std::vector<std::uint8_t> lengths = {0, 1, 0};
  HuffmanDecoder d;
  EXPECT_NO_THROW(d.Init(lengths));
}

TEST(HuffmanRoundTrip, EncodeDecodeMatchesFixedAlphabet) {
  const std::vector<std::uint8_t> lengths = {3, 3, 3, 3, 3, 2, 4, 4};
  HuffmanEncoder enc;
  enc.Init(lengths);
  HuffmanDecoder dec;
  dec.Init(lengths);

  const std::vector<int> symbols = {5, 0, 7, 3, 5, 5, 6, 1, 2, 4, 0, 7};
  Bytes buf;
  BitWriter w(buf);
  for (const int s : symbols) enc.Write(w, s);
  w.AlignToByte();

  BitReader r(buf);
  for (const int s : symbols) {
    EXPECT_EQ(dec.Decode(r), s);
  }
}

class HuffmanPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HuffmanPropertyTest, RandomAlphabetRoundTrip) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  const int alphabet = 2 + static_cast<int>(rng() % 100);
  std::vector<std::uint64_t> freq(static_cast<size_t>(alphabet));
  for (auto& f : freq) f = rng() % 1000;
  // Ensure at least two used symbols so the code is complete.
  freq[0] += 1;
  freq[static_cast<size_t>(alphabet - 1)] += 1;

  const auto lengths = BuildCodeLengths(freq);
  HuffmanEncoder enc;
  enc.Init(lengths);
  HuffmanDecoder dec;
  dec.Init(lengths);

  std::vector<int> symbols;
  for (int i = 0; i < 500; ++i) {
    const int s = static_cast<int>(rng() % static_cast<unsigned>(alphabet));
    if (freq[static_cast<size_t>(s)] > 0) symbols.push_back(s);
  }
  Bytes buf;
  BitWriter w(buf);
  for (const int s : symbols) enc.Write(w, s);
  w.AlignToByte();
  BitReader r(buf);
  for (const int s : symbols) {
    ASSERT_EQ(dec.Decode(r), s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HuffmanPropertyTest,
                         ::testing::Range(0, 20));

TEST(BuildCodeLengths, AllZeroFrequencies) {
  const std::vector<std::uint64_t> freq(16, 0);
  const auto lengths = BuildCodeLengths(freq);
  for (const auto len : lengths) EXPECT_EQ(len, 0);
}

TEST(BuildCodeLengths, SingleSymbolGetsLengthOne) {
  std::vector<std::uint64_t> freq(8, 0);
  freq[5] = 42;
  const auto lengths = BuildCodeLengths(freq);
  EXPECT_EQ(lengths[5], 1);
  for (size_t i = 0; i < lengths.size(); ++i) {
    if (i != 5) EXPECT_EQ(lengths[i], 0);
  }
}

TEST(CanonicalCodes, ShorterCodesAreNumericallySmallerPrefixes) {
  // Canonical property: when codes are left-aligned, they increase with
  // (length, symbol) order; no code is a prefix of another.
  const std::vector<std::uint8_t> lengths = {2, 3, 3, 2, 2};
  const auto codes = AssignCanonicalCodes(lengths);
  for (size_t a = 0; a < lengths.size(); ++a) {
    for (size_t b = 0; b < lengths.size(); ++b) {
      if (a == b) continue;
      const int la = lengths[a], lb = lengths[b];
      if (la <= lb) {
        // a must not be a prefix of b.
        EXPECT_NE(codes[b] >> (lb - la), codes[a])
            << "code " << a << " prefixes " << b;
      }
    }
  }
}

TEST(BitIo, ValueBitsRoundTrip) {
  Bytes buf;
  BitWriter w(buf);
  w.WriteBits(0b101, 3);
  w.WriteBits(0xFFFF, 16);
  w.WriteBits(0, 1);
  w.WriteBits(0b1100, 4);
  w.AlignToByte();
  BitReader r(buf);
  EXPECT_EQ(r.ReadBits(3), 0b101u);
  EXPECT_EQ(r.ReadBits(16), 0xFFFFu);
  EXPECT_EQ(r.ReadBits(1), 0u);
  EXPECT_EQ(r.ReadBits(4), 0b1100u);
}

TEST(BitIo, TruncatedReadThrows) {
  Bytes buf = {0xAB};
  BitReader r(buf);
  r.ReadBits(8);
  EXPECT_THROW(r.ReadBits(1), DecodeError);
}

TEST(BitIo, PeekZeroPadsPastEnd) {
  Bytes buf = {0x01};
  BitReader r(buf);
  EXPECT_EQ(r.PeekBits(15), 0x01u);  // high bits zero-padded
  r.Consume(8);
  EXPECT_THROW(r.Consume(1), DecodeError);
}

TEST(BitIo, AlignedByteReadAfterBits) {
  Bytes buf = {0b00000101, 0xAA, 0xBB, 0xCC};
  BitReader r(buf);
  EXPECT_EQ(r.ReadBits(3), 0b101u);
  r.AlignToByte();
  Byte out[3];
  r.ReadAlignedBytes(MutableByteSpan(out, 3));
  EXPECT_EQ(out[0], 0xAA);
  EXPECT_EQ(out[1], 0xBB);
  EXPECT_EQ(out[2], 0xCC);
}

}  // namespace
}  // namespace vizndp::compress
