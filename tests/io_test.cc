#include <gtest/gtest.h>

#include <sstream>

#include "io/vnd_format.h"
#include "io/vtk_ascii.h"
#include "sim/impact.h"
#include "storage/memory_store.h"

namespace vizndp::io {
namespace {

grid::Dataset MakeDataset() {
  grid::Dataset ds(grid::Dims{8, 8, 8});
  std::vector<float> v02(512), v03(512), rho(512);
  for (size_t i = 0; i < 512; ++i) {
    v02[i] = static_cast<float>(i % 7) / 7.0f;
    v03[i] = (i > 200 && i < 260) ? 1.0f : 0.0f;
    rho[i] = 1.0f + 0.001f * static_cast<float>(i);
  }
  ds.AddArray(grid::DataArray::FromVector("v02", v02));
  ds.AddArray(grid::DataArray::FromVector("v03", v03));
  ds.AddArray(grid::DataArray::FromVector("rho", rho));
  return ds;
}

struct StoreFixture {
  storage::MemoryObjectStore store;
  StoreFixture() { store.CreateBucket("data"); }
  storage::FileGateway gateway() { return {store, "data"}; }
};

class VndCodecTest : public ::testing::TestWithParam<std::string> {};

TEST_P(VndCodecTest, RoundTripWithCodec) {
  StoreFixture fx;
  const grid::Dataset ds = MakeDataset();
  VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec(GetParam()));
  writer.WriteToStore(fx.store, "data", "t0.vnd");

  VndReader reader(fx.gateway().Open("t0.vnd"));
  EXPECT_EQ(reader.header().dims, ds.dims());
  EXPECT_EQ(reader.ArrayNames(),
            (std::vector<std::string>{"v02", "v03", "rho"}));
  const grid::Dataset back = reader.ReadAll();
  EXPECT_EQ(back, ds);
}

INSTANTIATE_TEST_SUITE_P(Codecs, VndCodecTest,
                         ::testing::Values("none", "gzip", "lz4", "rle"));

TEST(Vnd, PerArrayCodecOverride) {
  StoreFixture fx;
  const grid::Dataset ds = MakeDataset();
  VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec("none"));
  writer.SetArrayCodec("v03", compress::MakeCodec("gzip"));
  writer.WriteToStore(fx.store, "data", "t0.vnd");

  VndReader reader(fx.gateway().Open("t0.vnd"));
  EXPECT_EQ(reader.header().Find("v02")->codec, "none");
  EXPECT_EQ(reader.header().Find("v03")->codec, "gzip");
  // v03 is a long run field; gzip must shrink it.
  EXPECT_LT(reader.StoredSize("v03"), reader.StoredSize("v02"));
  EXPECT_EQ(reader.ReadAll(), ds);
}

TEST(Vnd, SelectiveReadFetchesOnlySelectedBytes) {
  storage::SsdModel ssd;
  storage::MemoryObjectStore store(&ssd);
  store.CreateBucket("data");
  const grid::Dataset ds = MakeDataset();
  VndWriter writer(ds);
  writer.WriteToStore(store, "data", "t0.vnd");

  storage::FileGateway gateway(store, "data");
  VndReader reader(gateway.Open("t0.vnd"));
  ssd.Reset();
  const grid::Dataset picked = reader.ReadSelected({"v02"});
  EXPECT_EQ(picked.ArrayCount(), 1u);
  // Only the v02 blob (2 KiB) is read — not the 6 KiB of all arrays.
  EXPECT_EQ(ssd.bytes_read(), 512u * 4);
}

TEST(Vnd, GeometryPersists) {
  StoreFixture fx;
  grid::Dataset ds(grid::Dims{4, 4, 4});
  ds.set_geometry({{1.0, 2.0, 3.0}, {0.5, 0.25, 0.125}});
  ds.AddArray(grid::DataArray::FromVector("a", std::vector<float>(64, 1.0f)));
  VndWriter(ds).WriteToStore(fx.store, "data", "g.vnd");
  VndReader reader(fx.gateway().Open("g.vnd"));
  EXPECT_EQ(reader.header().geometry, ds.geometry());
}

TEST(Vnd, Float64ArraysSupported) {
  StoreFixture fx;
  grid::Dataset ds(grid::Dims{4, 4, 1});
  ds.AddArray(grid::DataArray::FromVector<double>(
      "d", std::vector<double>(16, 3.14159)));
  VndWriter(ds).WriteToStore(fx.store, "data", "d.vnd");
  VndReader reader(fx.gateway().Open("d.vnd"));
  const grid::DataArray back = reader.ReadArray("d");
  EXPECT_EQ(back.type(), grid::DataType::Float64);
  EXPECT_DOUBLE_EQ(back.View<double>()[7], 3.14159);
}

TEST(Vnd, MissingArrayThrows) {
  StoreFixture fx;
  VndWriter(MakeDataset()).WriteToStore(fx.store, "data", "t.vnd");
  VndReader reader(fx.gateway().Open("t.vnd"));
  EXPECT_THROW(reader.ReadArray("nope"), Error);
  EXPECT_THROW(reader.ReadSelected({"v02", "nope"}), Error);
}

TEST(Vnd, CorruptBlobDetectedByCrc) {
  StoreFixture fx;
  const grid::Dataset ds = MakeDataset();
  Bytes image = VndWriter(ds).Serialize();
  image[image.size() - 8] ^= 0xFF;  // flip inside the last blob
  fx.store.Put("data", "bad.vnd", image);
  VndReader reader(fx.gateway().Open("bad.vnd"));
  EXPECT_THROW(reader.ReadArray("rho"), DecodeError);
  // Other arrays are unaffected (independent blobs).
  EXPECT_NO_THROW(reader.ReadArray("v02"));
}

TEST(Vnd, BadMagicRejected) {
  StoreFixture fx;
  fx.store.Put("data", "junk.vnd", ToBytes("GARBAGE FILE CONTENT HERE"));
  EXPECT_THROW(VndReader(fx.gateway().Open("junk.vnd")), DecodeError);
}

TEST(Vnd, TruncatedFileRejected) {
  StoreFixture fx;
  Bytes image = VndWriter(MakeDataset()).Serialize();
  image.resize(6);
  fx.store.Put("data", "trunc.vnd", image);
  EXPECT_THROW(VndReader(fx.gateway().Open("trunc.vnd")), DecodeError);
}

TEST(Vnd, ParseHeaderFromImage) {
  const Bytes image = VndWriter(MakeDataset()).Serialize();
  const VndHeader header = ParseVndHeader(image);
  EXPECT_EQ(header.arrays.size(), 3u);
  EXPECT_EQ(header.arrays[0].name, "v02");
  EXPECT_GT(header.blob_base, 12u);
  // Offsets are contiguous.
  EXPECT_EQ(header.arrays[1].offset,
            header.arrays[0].offset + header.arrays[0].stored_size);
}

TEST(Vnd, ImpactDatasetRoundTrip) {
  StoreFixture fx;
  sim::ImpactConfig cfg;
  cfg.n = 16;
  const grid::Dataset ds = sim::GenerateImpactTimestep(cfg, 24006);
  VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec("lz4"));
  writer.WriteToStore(fx.store, "data", "impact.vnd");
  VndReader reader(fx.gateway().Open("impact.vnd"));
  EXPECT_EQ(reader.ArrayNames().size(), 11u);
  EXPECT_EQ(reader.ReadAll(), ds);
}

TEST(VtkAscii, WriteReadRoundTrip) {
  sim::ImpactConfig cfg;
  cfg.n = 10;
  const grid::Dataset ds =
      sim::GenerateImpactTimestep(cfg, 24006, {"v02", "v03"});
  std::stringstream buffer;
  WriteLegacyVtk(buffer, ds);
  const grid::Dataset back = ReadLegacyVtk(buffer);
  EXPECT_EQ(back.dims(), ds.dims());
  EXPECT_EQ(back.geometry(), ds.geometry());
  ASSERT_EQ(back.ArrayCount(), 2u);
  // Float values written at full precision round-trip exactly.
  EXPECT_EQ(back.GetArray("v02"), ds.GetArray("v02"));
  EXPECT_EQ(back.GetArray("v03"), ds.GetArray("v03"));
}

TEST(VtkAscii, DoubleArraysRoundTrip) {
  grid::Dataset ds(grid::Dims{3, 3, 1});
  ds.AddArray(grid::DataArray::FromVector<double>(
      "d", {0.1, 1.0 / 3.0, 2e-17, 3.0, 4.0, 5.0, 6.0, 7.0, 8.5}));
  std::stringstream buffer;
  WriteLegacyVtk(buffer, ds);
  const grid::Dataset back = ReadLegacyVtk(buffer);
  EXPECT_EQ(back.GetArray("d"), ds.GetArray("d"));
}

TEST(VtkAscii, RejectsMalformedFiles) {
  const auto parse = [](const std::string& text) {
    std::stringstream ss(text);
    return ReadLegacyVtk(ss);
  };
  EXPECT_THROW(parse("not a vtk file"), DecodeError);
  EXPECT_THROW(parse("# vtk DataFile Version 3.0\nt\nBINARY\n"), DecodeError);
  EXPECT_THROW(parse("# vtk DataFile Version 3.0\nt\nASCII\n"
                     "DATASET POLYDATA\n"),
               DecodeError);
  // POINT_DATA disagreeing with DIMENSIONS.
  EXPECT_THROW(parse("# vtk DataFile Version 3.0\nt\nASCII\n"
                     "DATASET STRUCTURED_POINTS\nDIMENSIONS 2 2 2\n"
                     "ORIGIN 0 0 0\nSPACING 1 1 1\nPOINT_DATA 7\n"),
               DecodeError);
  // Truncated scalar data.
  EXPECT_THROW(parse("# vtk DataFile Version 3.0\nt\nASCII\n"
                     "DATASET STRUCTURED_POINTS\nDIMENSIONS 2 2 1\n"
                     "ORIGIN 0 0 0\nSPACING 1 1 1\nPOINT_DATA 4\n"
                     "SCALARS x float 1\nLOOKUP_TABLE default\n1 2 3\n"),
               DecodeError);
}

TEST(VtkAscii, EmitsLegacyHeader) {
  grid::Dataset ds(grid::Dims{2, 2, 2});
  ds.set_geometry({{0, 0, 0}, {0.5, 0.5, 0.5}});
  ds.AddArray(grid::DataArray::FromVector(
      "v02", std::vector<float>{0, 1, 2, 3, 4, 5, 6, 7}));
  std::ostringstream os;
  WriteLegacyVtk(os, ds, "unit test");
  const std::string text = os.str();
  EXPECT_NE(text.find("# vtk DataFile Version 3.0"), std::string::npos);
  EXPECT_NE(text.find("DATASET STRUCTURED_POINTS"), std::string::npos);
  EXPECT_NE(text.find("DIMENSIONS 2 2 2"), std::string::npos);
  EXPECT_NE(text.find("SPACING 0.5 0.5 0.5"), std::string::npos);
  EXPECT_NE(text.find("POINT_DATA 8"), std::string::npos);
  EXPECT_NE(text.find("SCALARS v02 float 1"), std::string::npos);
  EXPECT_NE(text.find("LOOKUP_TABLE default"), std::string::npos);
}

}  // namespace
}  // namespace vizndp::io
