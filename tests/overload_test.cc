// Server overload control: admission caps (in-flight + memory budget)
// shed with a retryable busy reply, clients converge through retries
// with zero wrong answers, and Stop() drains gracefully. Run under tsan
// (tools/check.sh): the whole point is that shedding and draining race
// against dispatching.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/error.h"
#include "msgpack/pack.h"
#include "msgpack/unpack.h"
#include "net/inproc.h"
#include "rpc/client.h"
#include "rpc/protocol.h"
#include "rpc/server.h"

namespace vizndp::rpc {
namespace {

Bytes RequestFrame(std::int64_t msgid, const std::string& method,
                   msgpack::Array params = {}) {
  msgpack::Array frame;
  frame.emplace_back(kRequestType);
  frame.emplace_back(msgid);
  frame.emplace_back(method);
  frame.emplace_back(std::move(params));
  return msgpack::Encode(msgpack::Value(std::move(frame)));
}

// Returns the error slot of a response frame ("" when nil).
std::string ResponseError(const Bytes& response) {
  const msgpack::Value v = msgpack::Decode(response);
  const msgpack::Array& fields = v.As<msgpack::Array>();
  EXPECT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0].AsInt(), kResponseType);
  return fields[2].IsNil() ? std::string() : fields[2].As<std::string>();
}

TEST(MemoryBudget, ReserveReleaseBoundaries) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.TryReserve(60));
  EXPECT_EQ(budget.in_use(), 60u);
  EXPECT_TRUE(budget.TryReserve(40));  // exactly at the limit
  EXPECT_FALSE(budget.TryReserve(1));
  budget.Release(40);
  EXPECT_TRUE(budget.TryReserve(1));
  EXPECT_FALSE(budget.TryReserve(101));  // larger than the whole limit
  // Limit 0 = unlimited, but usage is still tracked.
  MemoryBudget unlimited;
  EXPECT_TRUE(unlimited.TryReserve(1ull << 40));
  EXPECT_EQ(unlimited.in_use(), 1ull << 40);
}

TEST(MemoryBudget, ReservationIsRaiiAndThrowsBusy) {
  MemoryBudget budget(100);
  {
    MemoryBudget::Reservation r(budget, 80);
    EXPECT_EQ(budget.in_use(), 80u);
    EXPECT_THROW(MemoryBudget::Reservation(budget, 21), BusyError);
    // Moved-from reservations release exactly once.
    MemoryBudget::Reservation moved(std::move(r));
    EXPECT_EQ(budget.in_use(), 80u);
  }
  EXPECT_EQ(budget.in_use(), 0u);
}

TEST(Overload, InflightCapShedsWithBusyReply) {
  Server server;
  ServerOptions options;
  options.max_inflight = 1;
  server.SetOptions(options);

  std::atomic<bool> release{false};
  std::atomic<int> runs{0};
  server.Bind("block", [&](const msgpack::Array&) {
    runs.fetch_add(1);
    while (!release.load()) std::this_thread::yield();
    return msgpack::Value("done");
  });

  std::thread blocked([&] {
    const Bytes r = server.Dispatch(RequestFrame(1, "block"));
    EXPECT_EQ(ResponseError(r), "");
  });
  while (server.inflight() == 0) std::this_thread::yield();

  // Second request over the cap: shed before its handler runs.
  const Bytes shed = server.Dispatch(RequestFrame(2, "block"));
  EXPECT_TRUE(ResponseError(shed).starts_with(kBusyErrorPrefix));
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(server.metrics().GetCounter("rpc_busy_rejected_total").value(),
            1.0);

  release.store(true);
  blocked.join();
  EXPECT_EQ(server.inflight(), 0);

  // Capacity freed: the same request is admitted now.
  EXPECT_EQ(ResponseError(server.Dispatch(RequestFrame(3, "block"))), "");
}

TEST(Overload, BusyIsTypedAndRetryableAtTheClient) {
  Server server;
  ServerOptions options;
  options.max_inflight = 1;
  server.SetOptions(options);

  std::atomic<bool> release{false};
  server.Bind("block", [&](const msgpack::Array&) {
    while (!release.load()) std::this_thread::yield();
    return msgpack::Value(true);
  });

  net::TransportPair blocked_pair = net::CreateInProcPair();
  net::TransportPair shed_pair = net::CreateInProcPair();
  std::thread serve_blocked([&] { server.ServeTransport(*blocked_pair.b); });
  std::thread serve_shed([&] { server.ServeTransport(*shed_pair.b); });

  std::thread occupant([&] {
    Client client(std::move(blocked_pair.a));
    client.Call("block");
  });
  while (server.inflight() == 0) std::this_thread::yield();

  // With retries disabled the client sees a typed BusyError, and
  // BusyError IS an RpcError (callers that only catch RpcError still
  // handle it), but NOT a corruption.
  {
    obs::Registry reg;
    auto client = std::make_unique<Client>(std::move(shed_pair.a));
    client->SetMetrics(&reg);
    net::RetryPolicy retry;
    retry.max_attempts = 1;
    client->SetRetryPolicy(retry);
    try {
      client->Call("block");
      FAIL() << "expected BusyError";
    } catch (const BusyError& e) {
      EXPECT_NE(std::string(e.what()).find("busy"), std::string::npos);
      static_assert(std::is_base_of_v<RpcError, BusyError>);
      static_assert(!std::is_base_of_v<CorruptDataError, BusyError>);
    }
    EXPECT_EQ(reg.GetCounter("rpc_busy_total{method=block}").value(), 1.0);
    client.reset();  // closes the transport so the serve thread exits
  }

  release.store(true);
  occupant.join();
  serve_blocked.join();
  serve_shed.join();
}

TEST(Overload, RetryingClientsConvergeWithZeroWrongAnswers) {
  Server server;
  ServerOptions options;
  options.max_inflight = 2;
  server.SetOptions(options);

  // Deliberately non-idempotent: double execution would be visible in
  // the final count. Busy shedding happens before the handler runs, so
  // retrying a shed request can never double-apply it.
  std::atomic<int> counter{0};
  server.Bind("inc", [&](const msgpack::Array&) {
    const int v = counter.fetch_add(1) + 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return msgpack::Value(static_cast<std::int64_t>(v));
  });

  constexpr int kClients = 8;
  constexpr int kCallsPerClient = 5;
  std::vector<net::TransportPair> pairs;
  for (int i = 0; i < kClients; ++i) pairs.push_back(net::CreateInProcPair());

  std::vector<std::thread> serve;
  for (int i = 0; i < kClients; ++i) {
    serve.emplace_back([&server, t = pairs[i].b.get()] {
      server.ServeTransport(*t);
    });
  }

  std::atomic<int> successes{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      Client client(std::move(pairs[i].a));
      net::RetryPolicy retry;
      retry.max_attempts = 200;  // converge no matter how contended
      retry.base_delay = std::chrono::microseconds(200);
      retry.jitter = 0.5;
      retry.seed = 1000 + static_cast<std::uint64_t>(i);
      client.SetRetryPolicy(retry);
      for (int c = 0; c < kCallsPerClient; ++c) {
        client.Call("inc");  // note: NOT marked idempotent
        successes.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  // Client destruction closed the a-side transports, so every serve
  // thread sees a peer close and exits.
  for (auto& t : serve) t.join();

  // Every call succeeded exactly once — no lost increments, and no
  // double-applied retries.
  EXPECT_EQ(successes.load(), kClients * kCallsPerClient);
  EXPECT_EQ(counter.load(), kClients * kCallsPerClient);
  EXPECT_EQ(server.inflight(), 0);
}

TEST(Overload, MemBudgetExhaustionShedsAsBusy) {
  Server server;
  ServerOptions options;
  options.mem_budget_bytes = 100;
  server.SetOptions(options);
  EXPECT_EQ(server.memory_budget().limit(), 100u);

  server.Bind("alloc", [&](const msgpack::Array& params) {
    MemoryBudget::Reservation r(server.memory_budget(),
                                params.at(0).AsUint());
    return msgpack::Value(true);
  });

  msgpack::Array small;
  small.emplace_back(std::uint64_t{60});
  EXPECT_EQ(ResponseError(server.Dispatch(RequestFrame(1, "alloc", small))),
            "");

  msgpack::Array huge;
  huge.emplace_back(std::uint64_t{101});
  const std::string err =
      ResponseError(server.Dispatch(RequestFrame(2, "alloc", huge)));
  EXPECT_TRUE(err.starts_with(kBusyErrorPrefix));
  EXPECT_EQ(server.metrics().GetCounter("rpc_busy_rejected_total").value(),
            1.0);
  // The reservation was RAII-released both times.
  EXPECT_EQ(server.memory_budget().in_use(), 0u);
}

TEST(Overload, StopDrainsInflightThenSheds) {
  Server server;
  ServerOptions options;
  options.drain_deadline = std::chrono::milliseconds(2000);
  server.SetOptions(options);

  std::atomic<bool> release{false};
  server.Bind("block", [&](const msgpack::Array&) {
    while (!release.load()) std::this_thread::yield();
    return msgpack::Value(true);
  });

  std::thread inflight([&] {
    EXPECT_EQ(ResponseError(server.Dispatch(RequestFrame(1, "block"))), "");
  });
  while (server.inflight() == 0) std::this_thread::yield();

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release.store(true);
  });
  // Stop waits for the in-flight handler (released ~50ms in) and
  // reports a clean drain.
  EXPECT_TRUE(server.Stop());
  EXPECT_EQ(server.inflight(), 0);
  inflight.join();
  releaser.join();

  // Draining/stopped server sheds everything, even under the cap.
  EXPECT_TRUE(server.draining());
  EXPECT_TRUE(ResponseError(server.Dispatch(RequestFrame(2, "block")))
                  .starts_with(kBusyErrorPrefix));
  EXPECT_EQ(server.metrics().GetCounter("rpc_drain_timeouts_total").value(),
            0.0);
}

TEST(Overload, StopReportsDrainTimeout) {
  Server server;
  ServerOptions options;
  options.drain_deadline = std::chrono::milliseconds(20);
  server.SetOptions(options);

  std::atomic<bool> release{false};
  server.Bind("block", [&](const msgpack::Array&) {
    while (!release.load()) std::this_thread::yield();
    return msgpack::Value(true);
  });

  std::thread inflight([&] {
    server.Dispatch(RequestFrame(1, "block"));
  });
  while (server.inflight() == 0) std::this_thread::yield();

  EXPECT_FALSE(server.Stop());  // handler outlives the 20ms deadline
  EXPECT_EQ(server.metrics().GetCounter("rpc_drain_timeouts_total").value(),
            1.0);
  release.store(true);
  inflight.join();
  // Stop is idempotent, and with the straggler gone the drain is clean.
  EXPECT_TRUE(server.Stop());
}

// ---------------------------------------------------------------------------
// Streaming replies: incremental memory accounting and the shed-only-
// before-first-chunk rule.
// ---------------------------------------------------------------------------

// The point of per-batch reservations: a budget that admits exactly one
// monolithic request (whole working set held for the call's lifetime)
// admits strictly more streaming requests, because each stream only ever
// holds one batch.
TEST(Overload, StreamingAdmitsStrictlyMoreAtSameMemBudget) {
  constexpr std::uint64_t kBudget = 100;
  constexpr int kBatches = 3;
  constexpr std::uint64_t kBatchBytes = 20;  // 60 bytes of work per request

  Server server;
  ServerOptions options;
  options.mem_budget_bytes = kBudget;
  server.SetOptions(options);

  std::atomic<bool> release_mono{false};
  std::atomic<int> stream_arrivals{0};
  std::atomic<std::uint64_t> peak_in_use{0};

  server.BindStreaming(
      "fetch", [&](const msgpack::Array& p, StreamSink* sink) -> msgpack::Value {
        const bool streaming =
            sink != nullptr && !p.empty() && p.at(0).AsInt() == 1;
        if (!streaming) {
          // Monolithic: the whole working set stays reserved until the
          // reply is built.
          MemoryBudget::Reservation r(server.memory_budget(),
                                      kBatches * kBatchBytes);
          while (!release_mono.load()) std::this_thread::yield();
          return msgpack::Value(true);
        }
        for (int batch = 0; batch < kBatches; ++batch) {
          MemoryBudget::Reservation r(server.memory_budget(), kBatchBytes);
          if (batch == 0) {
            // Rendezvous: both streams must hold a reservation at once —
            // concurrency, not lucky serialization.
            stream_arrivals.fetch_add(1);
            const auto deadline =
                std::chrono::steady_clock::now() + std::chrono::seconds(5);
            while (stream_arrivals.load() < 2 &&
                   std::chrono::steady_clock::now() < deadline) {
              std::this_thread::yield();
            }
          }
          std::uint64_t seen = server.memory_budget().in_use();
          std::uint64_t prev = peak_in_use.load();
          while (seen > prev && !peak_in_use.compare_exchange_weak(prev, seen)) {
          }
          if (!sink->Emit(msgpack::Value(static_cast<std::int64_t>(batch)))) {
            break;
          }
        }  // the batch reservation releases as each chunk flushes
        return msgpack::Value(true);
      });

  // Monolithic pair: the budget admits exactly one.
  std::thread mono_holder([&] {
    const Bytes r = server.Dispatch(RequestFrame(1, "fetch"));
    EXPECT_EQ(ResponseError(r), "");
  });
  while (server.memory_budget().in_use() == 0) std::this_thread::yield();
  const std::string shed = ResponseError(server.Dispatch(RequestFrame(2, "fetch")));
  EXPECT_TRUE(shed.starts_with(kBusyErrorPrefix));
  release_mono.store(true);
  mono_holder.join();
  EXPECT_EQ(server.memory_budget().in_use(), 0u);
  const int mono_admitted = 1;

  // Streaming pair at the same budget: both admitted, both complete.
  net::TransportPair p1 = net::CreateInProcPair();
  net::TransportPair p2 = net::CreateInProcPair();
  std::thread serve1([&] { server.ServeTransport(*p1.b); });
  std::thread serve2([&] { server.ServeTransport(*p2.b); });
  std::atomic<int> completed{0};
  auto run_stream = [&](net::TransportPtr transport) {
    Client client(std::move(transport));
    msgpack::Array params;
    params.emplace_back(std::int64_t{1});
    int chunks = 0;
    Client::StreamCallOptions copts;
    const msgpack::Value terminal = client.CallStreaming(
        "fetch", std::move(params), copts, [&](const msgpack::Value&) {
          ++chunks;
          return true;
        });
    EXPECT_EQ(chunks, kBatches);
    EXPECT_TRUE(terminal.As<bool>());
    completed.fetch_add(1);
  };
  std::thread c1([&] { run_stream(std::move(p1.a)); });
  std::thread c2([&] { run_stream(std::move(p2.a)); });
  c1.join();
  c2.join();
  serve1.join();
  serve2.join();

  const int streaming_admitted = completed.load();
  EXPECT_GT(streaming_admitted, mono_admitted);  // the tentpole claim
  // Both streams really overlapped (two batch reservations at once)...
  EXPECT_GE(peak_in_use.load(), 2 * kBatchBytes);
  // ...yet the budget never saw anything close to two whole working sets.
  EXPECT_LE(peak_in_use.load(), kBudget);
  EXPECT_EQ(server.memory_budget().in_use(), 0u);
}

// Before the first chunk a streaming request is shed exactly like any
// other: typed busy, safely retryable, nothing consumed.
TEST(Overload, StreamShedBeforeFirstChunkIsRetryableBusy) {
  Server server;
  ServerOptions options;
  options.max_inflight = 1;
  server.SetOptions(options);

  std::atomic<bool> release{false};
  server.BindStreaming("stream",
                       [&](const msgpack::Array&, StreamSink*) -> msgpack::Value {
                         while (!release.load()) std::this_thread::yield();
                         return msgpack::Value(true);
                       });

  net::TransportPair blocked_pair = net::CreateInProcPair();
  net::TransportPair shed_pair = net::CreateInProcPair();
  std::thread serve_blocked([&] { server.ServeTransport(*blocked_pair.b); });
  std::thread serve_shed([&] { server.ServeTransport(*shed_pair.b); });

  std::thread occupant([&] {
    Client client(std::move(blocked_pair.a));
    client.Call("stream");
  });
  while (server.inflight() == 0) std::this_thread::yield();

  {
    Client client(std::move(shed_pair.a));
    net::RetryPolicy retry;
    retry.max_attempts = 1;
    client.SetRetryPolicy(retry);
    int chunks = 0;
    Client::StreamCallOptions copts;
    EXPECT_THROW((void)client.CallStreaming("stream", {}, copts,
                                            [&](const msgpack::Value&) {
                                              ++chunks;
                                              return true;
                                            }),
                 BusyError);
    EXPECT_EQ(chunks, 0);  // shed means *nothing* was consumed
  }

  release.store(true);
  occupant.join();
  serve_blocked.join();
  serve_shed.join();
}

// After the first chunk the busy contract is pinned shut: a mid-stream
// BusyError must NOT surface as a retryable busy reply (the client
// already consumed chunks; a blind retry would double-scatter a
// half-delivered stream on a client without resume cursors). It comes
// back as a plain stream failure instead.
TEST(Overload, MidStreamBusyNeverBecomesRetryableBusyReply) {
  Server server;

  server.BindStreaming(
      "leaky", [&](const msgpack::Array&, StreamSink* sink) -> msgpack::Value {
        if (sink != nullptr) {
          sink->Emit(msgpack::Value(std::int64_t{1}));
          throw BusyError("budget starved mid-flight");
        }
        return msgpack::Value(true);
      });

  net::TransportPair pair = net::CreateInProcPair();
  std::thread serve([&] { server.ServeTransport(*pair.b); });
  {
    Client client(std::move(pair.a));
    int chunks = 0;
    Client::StreamCallOptions copts;
    try {
      (void)client.CallStreaming("leaky", {}, copts,
                                 [&](const msgpack::Value&) {
                                   ++chunks;
                                   return true;
                                 });
      FAIL() << "expected the stream to fail";
    } catch (const BusyError&) {
      FAIL() << "mid-stream busy leaked through as retryable";
    } catch (const RpcError& e) {
      EXPECT_NE(std::string(e.what()).find("stream failed mid-flight"),
                std::string::npos);
    }
    EXPECT_EQ(chunks, 1);
  }
  serve.join();
  // The guard rewrote the error rather than shedding: no busy accounting.
  EXPECT_EQ(server.metrics().GetCounter("rpc_busy_rejected_total").value(),
            0.0);
}

TEST(Overload, TcpServerStopJoinsCleanly) {
  Server server;
  server.Bind("ping", [](const msgpack::Array&) {
    return msgpack::Value("pong");
  });
  TcpRpcServer tcp(server, 0);

  {
    Client client(net::TcpConnect("127.0.0.1", tcp.port()));
    EXPECT_EQ(client.Call("ping").As<std::string>(), "pong");
  }

  tcp.Stop();  // must not hang with a live (now idle) connection served
  tcp.Stop();  // idempotent
  // After Stop, the server sheds: a Dispatch still answers busy rather
  // than running handlers.
  EXPECT_TRUE(ResponseError(server.Dispatch(RequestFrame(9, "ping")))
                  .starts_with(kBusyErrorPrefix));
}

}  // namespace
}  // namespace vizndp::rpc
