// Streaming replies with mid-stream recovery: the chunked ndp.select
// contract. A streamed fetch must reconstruct the exact field the
// monolithic reply produces — through chunking, stalls, resumes, replica
// hops, and client cancellation — and every degradation must be visible
// in metrics and the event journal.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <vector>

#include "bench_util/testbed.h"
#include "common/error.h"
#include "compress/checksum.h"
#include "io/vnd_format.h"
#include "ndp/ndp_client.h"
#include "ndp/protocol.h"
#include "net/fault.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "sim/impact.h"

namespace vizndp::ndp {
namespace {

using namespace std::chrono_literals;
using bench_util::ClusterTestbed;
using bench_util::ClusterTestbedConfig;
using bench_util::Testbed;

const std::vector<double> kIsos = {0.2, 0.5};

void StoreDataset(storage::ObjectStore& store, const std::string& bucket,
                  const std::string& key, int n, std::int32_t brick_edge) {
  sim::ImpactConfig cfg;
  cfg.n = n;
  const grid::Dataset ds = sim::GenerateImpactTimestep(cfg, 24006, {"v02"});
  io::VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec("lz4"));
  writer.SetBrickSize(brick_edge);
  writer.WriteToStore(store, bucket, key);
}

std::uint64_t CounterValue(const std::string& name) {
  return obs::DefaultRegistry().GetCounter(name).value();
}

// ---------------------------------------------------------------------------
// Wire codec.

TEST(StreamCodec, ParamsRoundTripAndNil) {
  StreamParams params;
  params.chunk_bricks = 7;
  params.resume_after = 41;
  const auto back = StreamParamsFromValue(StreamParamsToValue(params));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->chunk_bricks, 7);
  EXPECT_EQ(back->resume_after, 41);

  // Absent (Nil) = monolithic request, the pre-streaming wire shape.
  EXPECT_FALSE(StreamParamsFromValue(msgpack::Value()).has_value());

  StreamParams bad;
  bad.chunk_bricks = 0;
  EXPECT_THROW((void)StreamParamsFromValue(StreamParamsToValue(bad)),
               DecodeError);
  bad.chunk_bricks = 4;
  bad.resume_after = -2;
  EXPECT_THROW((void)StreamParamsFromValue(StreamParamsToValue(bad)),
               DecodeError);
}

StreamHeader TestHeader() {
  StreamHeader h;
  h.dims = grid::Dims{6, 6, 6};
  h.dtype = grid::DataType::Float32;
  h.bricks_total = 8;
  h.stream_bricks = 4;
  h.total_points = h.dims.PointCount();
  return h;
}

StreamChunk TestChunk(std::int64_t cursor) {
  contour::Selection sel;
  sel.dims = grid::Dims{6, 6, 6};
  sel.total_points = sel.dims.PointCount();
  std::vector<float> values;
  for (std::int64_t i = 0; i < 16; ++i) {
    sel.ids.push_back(static_cast<grid::PointId>(cursor * 20 + i));
    values.push_back(0.5f * static_cast<float>(i));
  }
  sel.values = grid::DataArray::FromVector("v", values);
  StreamChunk chunk;
  chunk.cursor = cursor;
  chunk.bricks = 1;
  chunk.selected = 16;
  chunk.payload = EncodeSelection(sel, SelectionEncoding::kRunLength);
  return chunk;
}

TEST(StreamCodec, DecoderAcceptsWellFormedStream) {
  StreamDecoder decoder;
  EXPECT_FALSE(decoder.Feed(StreamHeaderToValue(TestHeader())).has_value());
  ASSERT_TRUE(decoder.got_header());
  EXPECT_EQ(decoder.header().bricks_total, 8);

  const auto c1 = decoder.Feed(StreamChunkToValue(TestChunk(1)));
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->cursor, 1);
  const auto decoded = DecodeSelection(c1->payload, decoder.header().dims);
  EXPECT_EQ(decoded.ids.size(), 16u);

  EXPECT_TRUE(decoder.Feed(StreamChunkToValue(TestChunk(4))).has_value());
  EXPECT_EQ(decoder.cursor(), 4);
  decoder.Finish();
  EXPECT_TRUE(decoder.finished());
}

TEST(StreamCodec, DecoderEnforcesResumeCursor) {
  // A resumed stream must never re-deliver bricks at or below the
  // cursor the client already scattered.
  StreamDecoder decoder(/*resume_after=*/3);
  (void)decoder.Feed(StreamHeaderToValue(TestHeader()));
  EXPECT_THROW((void)decoder.Feed(StreamChunkToValue(TestChunk(3))),
               DecodeError);
  StreamDecoder fresh(/*resume_after=*/3);
  (void)fresh.Feed(StreamHeaderToValue(TestHeader()));
  EXPECT_TRUE(fresh.Feed(StreamChunkToValue(TestChunk(4))).has_value());
}

TEST(StreamCodec, DecoderRejectsHostileFrames) {
  // Data before the header.
  {
    StreamDecoder decoder;
    EXPECT_THROW((void)decoder.Feed(StreamChunkToValue(TestChunk(1))),
                 DecodeError);
  }
  // Duplicate header.
  {
    StreamDecoder decoder;
    (void)decoder.Feed(StreamHeaderToValue(TestHeader()));
    EXPECT_THROW((void)decoder.Feed(StreamHeaderToValue(TestHeader())),
                 DecodeError);
  }
  // CRC lie: typed as corruption, not a generic decode error.
  {
    StreamDecoder decoder;
    (void)decoder.Feed(StreamHeaderToValue(TestHeader()));
    StreamChunk chunk = TestChunk(1);
    chunk.payload[chunk.payload.size() - 1] ^= 0x01;
    // Re-stamp nothing: StreamChunkToValue recomputes the CRC, so lie by
    // mutating the payload *after* encoding the map.
    msgpack::Value map = StreamChunkToValue(TestChunk(1));
    for (auto& [k, v] : map.AsMutable<msgpack::Map>()) {
      if (k.Is<std::string>() && k.As<std::string>() == "payload") {
        Bytes bytes = v.As<Bytes>();
        bytes[bytes.size() - 1] ^= 0x01;
        v = msgpack::Value(std::move(bytes));
      }
    }
    EXPECT_THROW((void)decoder.Feed(map), CorruptDataError);
  }
  // Cursor beyond the advertised brick count.
  {
    StreamDecoder decoder;
    (void)decoder.Feed(StreamHeaderToValue(TestHeader()));
    EXPECT_THROW((void)decoder.Feed(StreamChunkToValue(TestChunk(8))),
                 DecodeError);
  }
  // Non-ascending cursors.
  {
    StreamDecoder decoder;
    (void)decoder.Feed(StreamHeaderToValue(TestHeader()));
    (void)decoder.Feed(StreamChunkToValue(TestChunk(4)));
    EXPECT_THROW((void)decoder.Feed(StreamChunkToValue(TestChunk(2))),
                 DecodeError);
  }
  // Terminal discipline: not before the header, never twice, nothing
  // after it.
  {
    StreamDecoder decoder;
    EXPECT_THROW(decoder.Finish(), DecodeError);
  }
  {
    StreamDecoder decoder;
    (void)decoder.Feed(StreamHeaderToValue(TestHeader()));
    decoder.Finish();
    EXPECT_THROW(decoder.Finish(), DecodeError);
    EXPECT_THROW((void)decoder.Feed(StreamChunkToValue(TestChunk(1))),
                 DecodeError);
  }
}

TEST(StreamCodec, DecodeSelectionRejectsHostileCount) {
  // Regression: a wire-supplied count must be bounded before any
  // allocation — typed rejection, never bad_alloc.
  Bytes payload;
  payload.push_back(static_cast<Byte>(SelectionEncoding::kRunLength));
  payload.push_back(static_cast<Byte>(grid::DataType::Float32));
  for (int i = 0; i < 8; ++i) payload.push_back(0xff);  // count = 2^64-1
  payload.push_back(0x00);
  EXPECT_THROW((void)DecodeSelection(payload, grid::Dims{6, 6, 6}),
               DecodeError);
}

// ---------------------------------------------------------------------------
// Single-node streaming end-to-end.

TEST(Stream, StreamedFetchMatchesMonolithic) {
  Testbed bed;
  StoreDataset(bed.store(), bed.bucket(), "ts.vnd", 32, 8);

  NdpLoadStats mono_stats;
  grid::UniformGeometry mono_geo;
  const contour::SparseField mono = bed.ndp_client().FetchSparseField(
      "ts.vnd", "v02", kIsos, &mono_geo, &mono_stats);
  const contour::PolyData mono_poly = mono.Contour(mono_geo, kIsos);
  ASSERT_GT(mono_poly.TriangleCount(), 0u);

  StreamOptions so;
  so.chunk_bricks = 2;
  bed.ndp_client().SetStream(so);
  std::vector<StreamProgress> progress;
  bed.ndp_client().SetStreamProgress(
      [&](const StreamProgress& p) { progress.push_back(p); });

  NdpLoadStats stats;
  grid::UniformGeometry geo;
  const contour::SparseField streamed =
      bed.ndp_client().FetchSparseField("ts.vnd", "v02", kIsos, &geo, &stats);

  EXPECT_TRUE(
      streamed.Contour(geo, kIsos).GeometricallyEquals(mono_poly, 0.0));
  EXPECT_EQ(streamed.ValidCount(), mono.ValidCount());
  EXPECT_EQ(geo.origin[0], mono_geo.origin[0]);
  EXPECT_EQ(geo.spacing[2], mono_geo.spacing[2]);

  EXPECT_TRUE(stats.streamed);
  EXPECT_FALSE(stats.stream_cancelled);
  EXPECT_GE(stats.stream_chunks, 2u);
  EXPECT_EQ(stats.stream_resumes, 0u);
  EXPECT_EQ(stats.selected_points, mono_stats.selected_points);
  EXPECT_EQ(stats.total_points, mono_stats.total_points);
  EXPECT_EQ(stats.bricks_total, mono_stats.bricks_total);
  EXPECT_EQ(stats.bricks_read, mono_stats.bricks_read);
  EXPECT_EQ(stats.stored_bytes, mono_stats.stored_bytes);

  // The progress line saw the stream grow to its final shape.
  ASSERT_GE(progress.size(), 2u);
  EXPECT_EQ(progress.back().chunks, stats.stream_chunks);
  EXPECT_GT(progress.back().stream_bricks, 0);
  EXPECT_LE(progress.front().bricks_done, progress.back().bricks_done);
}

TEST(Stream, UnbrickedArrayDegradesToMonolithicReply) {
  Testbed bed;
  StoreDataset(bed.store(), bed.bucket(), "mono.vnd", 24, /*brick_edge=*/0);

  NdpLoadStats mono_stats;
  grid::UniformGeometry mono_geo;
  const contour::SparseField mono = bed.ndp_client().FetchSparseField(
      "mono.vnd", "v02", kIsos, &mono_geo, &mono_stats);

  StreamOptions so;
  so.chunk_bricks = 4;
  bed.ndp_client().SetStream(so);
  NdpLoadStats stats;
  grid::UniformGeometry geo;
  const contour::SparseField streamed = bed.ndp_client().FetchSparseField(
      "mono.vnd", "v02", kIsos, &geo, &stats);

  // The server answers monolithically (no bricks to batch); the client
  // accepts the reply as a single pseudo-chunk.
  EXPECT_TRUE(stats.streamed);
  EXPECT_EQ(stats.stream_chunks, 1u);
  EXPECT_EQ(streamed.ValidCount(), mono.ValidCount());
  EXPECT_TRUE(streamed.Contour(geo, kIsos)
                  .GeometricallyEquals(mono.Contour(mono_geo, kIsos), 0.0));
}

TEST(Stream, ClientCancelStopsTheStreamAndIsAccounted) {
  Testbed bed;
  StoreDataset(bed.store(), bed.bucket(), "ts.vnd", 32, 4);

  // Cancellation is accounted where it is detected: on the server.
  const std::uint64_t cancels_before =
      bed.ndp_server().metrics().GetCounter("ndp_stream_cancelled_total")
          .value();
  const std::uint64_t seq = obs::GlobalEventLog().LastSeq();

  StreamOptions so;
  so.chunk_bricks = 1;
  bed.ndp_client().SetStream(so);
  std::atomic<std::uint64_t> chunks_seen{0};
  bed.ndp_client().SetStreamProgress(
      [&](const StreamProgress& p) { chunks_seen = p.chunks; });
  bed.ndp_client().SetStreamCancel([&] { return chunks_seen.load() >= 1; });

  NdpLoadStats stats;
  grid::UniformGeometry geo;
  const contour::SparseField partial =
      bed.ndp_client().FetchSparseField("ts.vnd", "v02", kIsos, &geo, &stats);

  EXPECT_TRUE(stats.streamed);
  EXPECT_TRUE(stats.stream_cancelled);
  EXPECT_GE(stats.stream_chunks, 1u);
  // Partial by construction: the cancel landed mid-stream.
  NdpLoadStats full_stats;
  bed.ndp_client().SetStream(StreamOptions{});
  bed.ndp_client().SetStreamCancel({});
  grid::UniformGeometry full_geo;
  const contour::SparseField full = bed.ndp_client().FetchSparseField(
      "ts.vnd", "v02", kIsos, &full_geo, &full_stats);
  EXPECT_LT(partial.ValidCount(), full.ValidCount());

  // Cancellation is audited 1:1 — counter and journal event move
  // together (the chaos invariant).
  EXPECT_EQ(
      bed.ndp_server().metrics().GetCounter("ndp_stream_cancelled_total")
          .value(),
      cancels_before + 1);
  EXPECT_EQ(obs::GlobalEventLog().CountSince("ndp.stream_cancel", seq), 1u);
}

// NdpClient over a fault-injected connection to the testbed's server.
struct FaultyStreamClient {
  net::FaultInjectingTransport* faults = nullptr;  // owned by rpc_client
  std::shared_ptr<rpc::Client> rpc_client;
  obs::Registry rpc_metrics;
  std::shared_ptr<NdpClient> client;

  FaultyStreamClient(Testbed& bed, const StreamOptions& stream) {
    auto faulty =
        std::make_unique<net::FaultInjectingTransport>(bed.ConnectToServer());
    faults = faulty.get();
    rpc_client = std::make_shared<rpc::Client>(std::move(faulty));
    rpc_client->SetMetrics(&rpc_metrics);
    NdpClientOptions options;
    options.call_timeout = 5000ms;
    options.retry.max_attempts = 2;
    options.retry.base_delay = 200us;
    options.retry.jitter = 0.0;
    client = std::make_shared<NdpClient>(rpc_client, "data", options);
    client->SetStream(stream);
  }

  double RpcCounter(const std::string& name) {
    const auto snapshot = rpc_metrics.Snapshot();
    const obs::MetricSnapshot* m = obs::FindMetric(snapshot, name);
    return m == nullptr ? 0.0 : m->value;
  }
};

TEST(Stream, StallSurfacesTypedErrorWhenResumesExhausted) {
  Testbed bed;
  StoreDataset(bed.store(), bed.bucket(), "ts.vnd", 32, 4);

  StreamOptions so;
  so.chunk_bricks = 1;
  so.chunk_timeout = 100ms;
  so.max_resumes = 0;  // no recovery: the typed error must escape
  FaultyStreamClient faulty(bed, so);
  // Let the header and first chunks through, then hold a frame far past
  // the per-chunk progress deadline.
  faulty.faults->ScriptReceive(
      {net::FaultAction::Pass(), net::FaultAction::Pass(),
       net::FaultAction::Delay(1000ms)},
      /*loop_last=*/true);

  grid::UniformGeometry geo;
  EXPECT_THROW((void)faulty.client->FetchSparseField("ts.vnd", "v02", kIsos,
                                                     &geo, nullptr),
               StreamStallError);
  EXPECT_GE(faulty.RpcCounter("rpc_stream_stalls_total{method=ndp.select}"), 1.0);
}

TEST(Stream, StallResumesFromCursorAndCompletes) {
  Testbed bed;
  StoreDataset(bed.store(), bed.bucket(), "ts.vnd", 32, 4);

  NdpLoadStats mono_stats;
  grid::UniformGeometry mono_geo;
  const contour::SparseField mono = bed.ndp_client().FetchSparseField(
      "ts.vnd", "v02", kIsos, &mono_geo, &mono_stats);

  const std::uint64_t resumes_before = CounterValue("ndp_stream_resume_total");
  const std::uint64_t seq = obs::GlobalEventLog().LastSeq();

  StreamOptions so;
  so.chunk_bricks = 1;
  so.chunk_timeout = 100ms;
  so.max_resumes = 3;
  FaultyStreamClient faulty(bed, so);
  // One mid-stream stall; every frame after it flows normally, so the
  // resumed call replays only the unscattered tail.
  faulty.faults->ScriptReceive({net::FaultAction::Pass(),
                                net::FaultAction::Pass(),
                                net::FaultAction::Pass(),
                                net::FaultAction::Delay(1000ms)});

  NdpLoadStats stats;
  grid::UniformGeometry geo;
  const contour::SparseField streamed = faulty.client->FetchSparseField(
      "ts.vnd", "v02", kIsos, &geo, &stats);

  EXPECT_TRUE(stats.streamed);
  EXPECT_GE(stats.stream_resumes, 1u);
  EXPECT_EQ(streamed.ValidCount(), mono.ValidCount());
  EXPECT_TRUE(streamed.Contour(geo, kIsos)
                  .GeometricallyEquals(mono.Contour(mono_geo, kIsos), 0.0));
  EXPECT_EQ(stats.selected_points, mono_stats.selected_points);

  EXPECT_GE(CounterValue("ndp_stream_resume_total"), resumes_before + 1);
  EXPECT_GE(obs::GlobalEventLog().CountSince("ndp.stream_resume", seq), 1u);
  EXPECT_GE(faulty.RpcCounter("rpc_stream_stalls_total{method=ndp.select}"), 1.0);
}

// ---------------------------------------------------------------------------
// Sharded streaming.

TEST(Stream, ShardedStreamingMatchesReference) {
  ClusterTestbedConfig config;
  config.servers = 3;
  config.replicas = 2;
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 8);

  const contour::PolyData reference =
      cluster.server_client(0)->Contour("ts.vnd", "v02", kIsos);

  StreamOptions so;
  so.chunk_bricks = 2;
  cluster.sharded_client()->SetStream(so);

  NdpLoadStats stats;
  const contour::PolyData streamed =
      cluster.sharded_client()->Contour("ts.vnd", "v02", kIsos, &stats);

  EXPECT_TRUE(streamed.GeometricallyEquals(reference, 0.0));
  EXPECT_TRUE(stats.streamed);
  EXPECT_GE(stats.stream_chunks, 3u);  // at least one chunk per shard
  EXPECT_FALSE(stats.used_fallback);
}

TEST(Stream, MidStreamDisconnectResumesOnReplica) {
  ClusterTestbedConfig config;
  config.servers = 3;
  config.replicas = 2;
  config.client_options.call_timeout = 5000ms;
  config.client_options.retry.max_attempts = 2;
  config.client_options.retry.base_delay = 200us;
  config.client_options.retry.jitter = 0.0;
  ClusterTestbed cluster(config);
  StoreDataset(cluster.store(), cluster.bucket(), "ts.vnd", 32, 4);

  const contour::PolyData reference =
      cluster.server_client(1)->Contour("ts.vnd", "v02", kIsos);

  const std::uint64_t resumes_before = CounterValue("ndp_stream_resume_total");
  const std::uint64_t failovers_before = CounterValue("cluster_failover_total");
  const std::uint64_t seq = obs::GlobalEventLog().LastSeq();

  StreamOptions so;
  so.chunk_bricks = 1;
  so.max_resumes = 1;
  cluster.sharded_client()->SetStream(so);

  // Arm the kill from the stream itself: the first data chunk node 0
  // delivers scripts its channel to hard-fail on the next frame, so the
  // failure always lands mid-stream (header + one chunk scattered).
  std::atomic<bool> armed{false};
  cluster.server_client(0)->SetStreamProgress([&](const StreamProgress&) {
    if (!armed.exchange(true)) {
      cluster.fault(0).ScriptReceive({net::FaultAction::Disconnect()});
    }
  });

  NdpLoadStats stats;
  const contour::PolyData streamed =
      cluster.sharded_client()->Contour("ts.vnd", "v02", kIsos, &stats);

  ASSERT_TRUE(armed.load());  // node 0 really was streaming when killed
  EXPECT_TRUE(streamed.GeometricallyEquals(reference, 0.0));
  EXPECT_TRUE(stats.streamed);
  EXPECT_FALSE(stats.used_fallback);
  EXPECT_GE(stats.stream_resumes, 1u);

  // The replica hop carried the cursor: resume accounting and failover
  // accounting both moved, and each counter matches its journal event.
  EXPECT_GE(CounterValue("ndp_stream_resume_total"), resumes_before + 1);
  EXPECT_GE(CounterValue("cluster_failover_total"), failovers_before + 1);
  EXPECT_GE(obs::GlobalEventLog().CountSince("ndp.stream_resume", seq), 1u);
  EXPECT_GE(obs::GlobalEventLog().CountSince("cluster.failover", seq), 1u);
}

}  // namespace
}  // namespace vizndp::ndp
