// Bricked VND arrays and the brick-aware pre-filter (the extension that
// attacks the paper's "NDP is lower-bounded by local read time" limit).
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "bench_util/testbed.h"
#include "io/vnd_format.h"
#include "ndp/bricked_select.h"
#include "sim/impact.h"
#include "storage/memory_store.h"

namespace vizndp {
namespace {

using io::BrickGrid;

TEST(BrickGrid, CountsAndExtents) {
  const BrickGrid g(grid::Dims{65, 64, 2}, 32);
  EXPECT_EQ(g.nbx, 2);  // 64 cells / 32
  EXPECT_EQ(g.nby, 2);  // 63 cells -> ceil(63/32)
  EXPECT_EQ(g.nbz, 1);  // 1 cell
  EXPECT_EQ(g.BrickCount(), 4);

  const auto e0 = g.BrickExtent(0);
  EXPECT_EQ(e0.x0, 0);
  EXPECT_EQ(e0.x1, 32);  // 32 cells + ghost point
  const auto e1 = g.BrickExtent(1);
  EXPECT_EQ(e1.x0, 32);
  EXPECT_EQ(e1.x1, 64);
  const auto e2 = g.BrickExtent(2);
  EXPECT_EQ(e2.y0, 32);
  EXPECT_EQ(e2.y1, 63);  // clamped at the boundary
}

TEST(BrickGrid, DegenerateAxes) {
  const BrickGrid flat(grid::Dims{10, 10, 1}, 4);
  EXPECT_EQ(flat.nbz, 1);
  const auto e = flat.BrickExtent(0);
  EXPECT_EQ(e.z0, 0);
  EXPECT_EQ(e.z1, 0);
}

TEST(BrickGrid, EveryCellOwnedByExactlyOneBrick) {
  const grid::Dims dims{13, 9, 7};
  const BrickGrid g(dims, 4);
  std::map<std::tuple<std::int64_t, std::int64_t, std::int64_t>, int> owners;
  for (std::int64_t b = 0; b < g.BrickCount(); ++b) {
    const auto e = g.BrickExtent(b);
    // Cells of a brick: all cells whose lowest corner is within
    // [x0, x1) x [y0, y1) x [z0, z1).
    for (std::int64_t k = e.z0; k < e.z1; ++k)
      for (std::int64_t j = e.y0; j < e.y1; ++j)
        for (std::int64_t i = e.x0; i < e.x1; ++i) ++owners[{i, j, k}];
  }
  EXPECT_EQ(owners.size(),
            static_cast<size_t>((dims.nx - 1) * (dims.ny - 1) * (dims.nz - 1)));
  for (const auto& [cell, count] : owners) {
    ASSERT_EQ(count, 1);
  }
}

grid::Dataset MakeImpact(int n) {
  sim::ImpactConfig cfg;
  cfg.n = n;
  return sim::GenerateImpactTimestep(cfg, 24006, {"v02", "v03"});
}

class BrickRoundTripTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(BrickRoundTripTest, BrickedFileReadsBackDense) {
  const auto& [codec, edge] = GetParam();
  storage::MemoryObjectStore store;
  store.CreateBucket("data");
  const grid::Dataset ds = MakeImpact(21);  // not a multiple of the edge
  io::VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec(codec));
  writer.SetBrickSize(edge);
  writer.WriteToStore(store, "data", "b.vnd");

  io::VndReader reader(storage::FileGateway(store, "data").Open("b.vnd"));
  EXPECT_TRUE(reader.HasBricks("v02"));
  const grid::Dataset back = reader.ReadAll();
  EXPECT_EQ(back, ds);
}

INSTANTIATE_TEST_SUITE_P(
    CodecsAndEdges, BrickRoundTripTest,
    ::testing::Combine(::testing::Values("none", "gzip", "lz4"),
                       ::testing::Values(4, 8, 32)));

TEST(Brick, ReadBrickReturnsCorrectSlab) {
  storage::MemoryObjectStore store;
  store.CreateBucket("data");
  grid::Dataset ds(grid::Dims{6, 6, 6});
  std::vector<float> f(216);
  for (size_t i = 0; i < f.size(); ++i) f[i] = static_cast<float>(i);
  ds.AddArray(grid::DataArray::FromVector("f", f));
  io::VndWriter writer(ds);
  writer.SetBrickSize(3);
  writer.WriteToStore(store, "data", "b.vnd");

  io::VndReader reader(storage::FileGateway(store, "data").Open("b.vnd"));
  const BrickGrid g(ds.dims(), 3);
  // Brick 1 covers x cells [3,5): points x in [3,5], y,z in [0,3].
  const auto e = g.BrickExtent(1);
  const grid::DataArray slab = reader.ReadBrick("f", 1);
  ASSERT_EQ(slab.size(), e.PointCount());
  const auto values = slab.View<float>();
  size_t idx = 0;
  for (std::int64_t k = e.z0; k <= e.z1; ++k)
    for (std::int64_t j = e.y0; j <= e.y1; ++j)
      for (std::int64_t i = e.x0; i <= e.x1; ++i) {
        ASSERT_EQ(values[idx++],
                  f[static_cast<size_t>(ds.dims().Index(i, j, k))]);
      }
}

TEST(Brick, HeaderRecordsMinMax) {
  storage::MemoryObjectStore store;
  store.CreateBucket("data");
  const grid::Dataset ds = MakeImpact(16);
  io::VndWriter writer(ds);
  writer.SetBrickSize(8);
  writer.WriteToStore(store, "data", "b.vnd");
  io::VndReader reader(storage::FileGateway(store, "data").Open("b.vnd"));
  const io::ArrayMeta* meta = reader.header().Find("v02");
  ASSERT_TRUE(meta->bricks.has_value());
  const auto [lo, hi] = ds.GetArray("v02").Range();
  double brick_lo = 1e300, brick_hi = -1e300;
  for (const io::BrickEntry& e : meta->bricks->entries) {
    EXPECT_LE(e.min, e.max);
    brick_lo = std::min(brick_lo, e.min);
    brick_hi = std::max(brick_hi, e.max);
  }
  EXPECT_DOUBLE_EQ(brick_lo, lo);
  EXPECT_DOUBLE_EQ(brick_hi, hi);
}

class BrickedSelectTest : public ::testing::TestWithParam<unsigned> {};

// The headline invariant: brick-indexed selection equals dense selection.
TEST_P(BrickedSelectTest, MatchesDenseSelection) {
  storage::MemoryObjectStore store;
  store.CreateBucket("data");
  grid::Dataset ds(grid::Dims{18, 14, 11});
  std::mt19937 rng(GetParam());
  std::vector<float> f(static_cast<size_t>(ds.dims().PointCount()));
  for (auto& v : f) v = static_cast<float>(rng() % 1000) / 999.0f;
  ds.AddArray(grid::DataArray::FromVector("f", f));
  io::VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec("lz4"));
  writer.SetBrickSize(5);
  writer.WriteToStore(store, "data", "b.vnd");

  io::VndReader reader(storage::FileGateway(store, "data").Open("b.vnd"));
  const std::vector<double> isos = {0.2, 0.5, 0.9};
  const contour::Selection dense = contour::SelectInterestingPoints(
      ds.dims(), ds.GetArray("f"), isos);
  ndp::BrickedSelectStats stats;
  const contour::Selection bricked =
      ndp::SelectInterestingPointsBricked(reader, "f", isos, &stats);
  EXPECT_EQ(bricked.ids, dense.ids);
  EXPECT_EQ(bricked.values, dense.values);
  EXPECT_EQ(stats.bricks_total,
            io::BrickGrid(ds.dims(), 5).BrickCount());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BrickedSelectTest,
                         ::testing::Range(5000u, 5010u));

TEST(BrickedSelect, SkipsBricksOutsideTheValueRange) {
  // The asteroid (v03) occupies a tiny corner of the domain: nearly all
  // bricks are constant zero and must never be fetched.
  storage::MemoryObjectStore store;
  store.CreateBucket("data");
  const grid::Dataset ds = MakeImpact(32);
  io::VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec("gzip"));
  writer.SetBrickSize(8);
  writer.WriteToStore(store, "data", "b.vnd");

  io::VndReader reader(storage::FileGateway(store, "data").Open("b.vnd"));
  const std::vector<double> isos = {0.1};
  ndp::BrickedSelectStats stats;
  const contour::Selection sel =
      ndp::SelectInterestingPointsBricked(reader, "v03", isos, &stats);
  EXPECT_GT(sel.ids.size(), 0u);
  EXPECT_GT(stats.bricks_total, 0);
  EXPECT_LT(stats.bricks_read * 4, stats.bricks_total);  // <25% touched
  EXPECT_LT(stats.bytes_read, reader.StoredSize("v03"));
  // And it still matches the dense result.
  const contour::Selection dense = contour::SelectInterestingPoints(
      ds.dims(), reader.ReadArray("v03"), isos);
  EXPECT_EQ(sel.ids, dense.ids);
}

TEST(BrickedNdp, EndToEndContourIdenticalAndCheaper) {
  bench_util::Testbed testbed;
  const grid::Dataset ds = MakeImpact(32);
  // Same data twice: monolithic and bricked.
  io::VndWriter mono(ds);
  mono.SetCodec(compress::MakeCodec("lz4"));
  mono.WriteToStore(testbed.store(), testbed.bucket(), "mono.vnd");
  io::VndWriter bricked(ds);
  bricked.SetCodec(compress::MakeCodec("lz4"));
  bricked.SetBrickSize(8);
  bricked.WriteToStore(testbed.store(), testbed.bucket(), "bricked.vnd");

  const std::vector<double> isos = {0.1};
  ndp::NdpLoadStats mono_stats, brick_stats;
  const contour::PolyData a =
      testbed.ndp_client().Contour("mono.vnd", "v02", isos, &mono_stats);
  const contour::PolyData b =
      testbed.ndp_client().Contour("bricked.vnd", "v02", isos, &brick_stats);
  EXPECT_TRUE(a.GeometricallyEquals(b, 0.0));
  EXPECT_EQ(mono_stats.bricks_total, 0);
  EXPECT_GT(brick_stats.bricks_total, 0);
  EXPECT_LT(brick_stats.bricks_read, brick_stats.bricks_total);
  // The server read less off the (modeled) disk on the bricked path.
  EXPECT_LT(brick_stats.stored_bytes, mono_stats.stored_bytes);
}

TEST(BrickedNdp, WorksWithUncompressedBricks) {
  bench_util::Testbed testbed;
  const grid::Dataset ds = MakeImpact(24);
  io::VndWriter writer(ds);
  writer.SetBrickSize(6);
  writer.WriteToStore(testbed.store(), testbed.bucket(), "raw.vnd");
  const contour::PolyData poly =
      testbed.ndp_client().Contour("raw.vnd", "v02", {0.5});
  EXPECT_GT(poly.TriangleCount(), 0u);
}

}  // namespace
}  // namespace vizndp
