#include <gtest/gtest.h>

#include <random>

#include "compress/checksum.h"
#include "compress/codec.h"
#include "compress/deflate.h"
#include "compress/gzip.h"
#include "compress/lz4.h"
#include "compress/rle.h"
#include "compress/zlib_stream.h"

#ifdef VIZNDP_HAVE_ZLIB
#include <zlib.h>
#endif

namespace vizndp::compress {
namespace {

// Input families with distinct statistics; each codec must round-trip all
// of them at every size.
enum class InputKind { kRandom, kRuns, kLowEntropy, kText, kFloatLike };

Bytes MakeInput(InputKind kind, size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  Bytes out(n);
  switch (kind) {
    case InputKind::kRandom:
      for (auto& b : out) b = static_cast<Byte>(rng());
      break;
    case InputKind::kRuns:
      for (size_t i = 0; i < n; ++i) out[i] = static_cast<Byte>((i / 97) % 7);
      break;
    case InputKind::kLowEntropy:
      for (auto& b : out) b = static_cast<Byte>((rng() % 4) * 63);
      break;
    case InputKind::kText: {
      const std::string words = "the quick brown fox jumps over the lazy dog ";
      for (size_t i = 0; i < n; ++i) out[i] = static_cast<Byte>(words[i % words.size()]);
      break;
    }
    case InputKind::kFloatLike: {
      // Smooth field bytes: small mantissa deltas like quantized science
      // data.
      float v = 1.0f;
      for (size_t i = 0; i + 4 <= n; i += 4) {
        v += static_cast<float>(static_cast<int>(rng() % 5) - 2) / 256.0f;
        std::memcpy(out.data() + i, &v, 4);
      }
      break;
    }
  }
  return out;
}

struct RoundTripCase {
  std::string codec;
  InputKind kind;
  size_t size;
};

class CodecRoundTripTest
    : public ::testing::TestWithParam<std::tuple<std::string, int, size_t>> {};

TEST_P(CodecRoundTripTest, DecodeRecoversInput) {
  const auto& [codec_name, kind, size] = GetParam();
  const CodecPtr codec = MakeCodec(codec_name);
  const Bytes input =
      MakeInput(static_cast<InputKind>(kind), size,
                static_cast<unsigned>(size * 7919 + kind));
  const Bytes compressed = codec->Compress(input);
  const Bytes output = codec->Decompress(compressed, input.size());
  EXPECT_EQ(output, input);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecRoundTripTest,
    ::testing::Combine(::testing::Values("none", "gzip", "lz4", "rle", "zlib"),
                       ::testing::Range(0, 5),
                       ::testing::Values<size_t>(0, 1, 2, 13, 255, 4096,
                                                 65535, 65536, 300000)));

TEST(Checksum, Crc32KnownVectors) {
  // Standard test vector: CRC32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32(AsBytes(std::string_view("123456789"))), 0xCBF43926u);
  EXPECT_EQ(Crc32(ByteSpan{}), 0u);
}

TEST(Checksum, Crc32Incremental) {
  const Bytes data = ToBytes("hello world, this is a checksum");
  const std::uint32_t whole = Crc32(data);
  const std::uint32_t part1 = Crc32(ByteSpan(data).first(10));
  const std::uint32_t part2 = Crc32(ByteSpan(data).subspan(10), part1);
  EXPECT_EQ(whole, part2);
}

TEST(Checksum, Adler32KnownVector) {
  // Adler32("Wikipedia") = 0x11E60398.
  EXPECT_EQ(Adler32(AsBytes(std::string_view("Wikipedia"))), 0x11E60398u);
  EXPECT_EQ(Adler32(ByteSpan{}), 1u);
}

TEST(Gzip, ProducesValidMemberHeader) {
  const GzipCodec codec;
  const Bytes out = codec.Compress(ToBytes("payload"));
  ASSERT_GE(out.size(), 20u);
  EXPECT_EQ(out[0], 0x1F);
  EXPECT_EQ(out[1], 0x8B);
  EXPECT_EQ(out[2], 8);  // deflate
}

TEST(Gzip, DetectsCorruptBody) {
  const GzipCodec codec;
  const Bytes input = MakeInput(InputKind::kText, 5000, 1);
  Bytes compressed = codec.Compress(input);
  // Flip a byte in the middle of the deflate body.
  compressed[compressed.size() / 2] ^= 0xFF;
  EXPECT_THROW(codec.Decompress(compressed, input.size()), DecodeError);
}

TEST(Gzip, DetectsBadMagicAndTruncation) {
  const GzipCodec codec;
  Bytes compressed = codec.Compress(ToBytes("data data data"));
  Bytes bad_magic = compressed;
  bad_magic[0] = 0x00;
  EXPECT_THROW(codec.Decompress(bad_magic), DecodeError);
  const Bytes truncated(compressed.begin(), compressed.begin() + 12);
  EXPECT_THROW(codec.Decompress(truncated), DecodeError);
}

TEST(Gzip, SkipsOptionalHeaderFields) {
  // Hand-build a member with FNAME set.
  const GzipCodec codec;
  const Bytes input = ToBytes("named content");
  const Bytes plain = codec.Compress(input);
  Bytes named;
  named.insert(named.end(), plain.begin(), plain.begin() + 3);
  named.push_back(0x08);  // FLG: FNAME
  named.insert(named.end(), plain.begin() + 4, plain.begin() + 10);
  const std::string fname = "file.vnd";
  named.insert(named.end(), fname.begin(), fname.end());
  named.push_back(0);
  named.insert(named.end(), plain.begin() + 10, plain.end());
  EXPECT_EQ(codec.Decompress(named, input.size()), input);
}

TEST(Deflate, StoredBlocksForIncompressibleData) {
  // Random data must not blow up: stored blocks cap expansion at ~5 B per
  // 64 KiB block plus the block headers.
  const Bytes input = MakeInput(InputKind::kRandom, 200000, 2);
  const Bytes compressed = DeflateCompress(input);
  EXPECT_LT(compressed.size(), input.size() + input.size() / 100 + 64);
  EXPECT_EQ(InflateRaw(compressed, input.size()), input);
}

TEST(Deflate, CompressesStructuredDataWell) {
  const Bytes input = MakeInput(InputKind::kRuns, 100000, 3);
  const Bytes compressed = DeflateCompress(input);
  EXPECT_LT(compressed.size(), input.size() / 20);
}

TEST(Deflate, LevelsTradeRatioForEffort) {
  const Bytes input = MakeInput(InputKind::kText, 200000, 4);
  const Bytes fast = DeflateCompress(input, {.level = 1});
  const Bytes best = DeflateCompress(input, {.level = 9});
  EXPECT_EQ(InflateRaw(fast, input.size()), input);
  EXPECT_EQ(InflateRaw(best, input.size()), input);
  EXPECT_LE(best.size(), fast.size());
}

TEST(Deflate, RejectsReservedBlockType) {
  Bytes bad = {0x07};  // BFINAL=1, BTYPE=3 (reserved)
  EXPECT_THROW(InflateRaw(bad), DecodeError);
}

TEST(Deflate, RejectsTruncatedStream) {
  const Bytes input = MakeInput(InputKind::kText, 10000, 5);
  Bytes compressed = DeflateCompress(input);
  compressed.resize(compressed.size() / 2);
  EXPECT_THROW(InflateRaw(compressed, input.size()), DecodeError);
}

TEST(Deflate, ConsumedReportsStreamEnd) {
  const Bytes input = MakeInput(InputKind::kText, 5000, 6);
  Bytes compressed = DeflateCompress(input);
  const size_t stream_size = compressed.size();
  // Append trailer-like garbage; inflate must stop at the stream end.
  compressed.insert(compressed.end(), {1, 2, 3, 4, 5, 6, 7, 8});
  size_t consumed = 0;
  EXPECT_EQ(InflateRaw(compressed, input.size(), &consumed), input);
  EXPECT_EQ(consumed, stream_size);
}

#ifdef VIZNDP_HAVE_ZLIB
TEST(Deflate, ZlibCanInflateOurOutput) {
  for (const InputKind kind :
       {InputKind::kRandom, InputKind::kRuns, InputKind::kText,
        InputKind::kFloatLike}) {
    const Bytes input = MakeInput(kind, 150000, 7);
    const Bytes compressed = DeflateCompress(input);
    Bytes out(input.size() + 64);
    z_stream zs{};
    ASSERT_EQ(inflateInit2(&zs, -15), Z_OK);
    zs.next_in = const_cast<Bytef*>(compressed.data());
    zs.avail_in = static_cast<uInt>(compressed.size());
    zs.next_out = out.data();
    zs.avail_out = static_cast<uInt>(out.size());
    const int rc = inflate(&zs, Z_FINISH);
    EXPECT_EQ(rc, Z_STREAM_END);
    out.resize(zs.total_out);
    inflateEnd(&zs);
    EXPECT_EQ(out, input);
  }
}

TEST(Deflate, WeCanInflateZlibOutput) {
  for (const int level : {1, 6, 9}) {
    const Bytes input = MakeInput(InputKind::kFloatLike, 150000,
                                  static_cast<unsigned>(level));
    Bytes compressed(compressBound(static_cast<uLong>(input.size())) + 16);
    z_stream zs{};
    ASSERT_EQ(deflateInit2(&zs, level, Z_DEFLATED, -15, 8, Z_DEFAULT_STRATEGY),
              Z_OK);
    zs.next_in = const_cast<Bytef*>(input.data());
    zs.avail_in = static_cast<uInt>(input.size());
    zs.next_out = compressed.data();
    zs.avail_out = static_cast<uInt>(compressed.size());
    ASSERT_EQ(deflate(&zs, Z_FINISH), Z_STREAM_END);
    compressed.resize(zs.total_out);
    deflateEnd(&zs);
    EXPECT_EQ(InflateRaw(compressed, input.size()), input);
  }
}
#endif  // VIZNDP_HAVE_ZLIB

TEST(Lz4, BlockFormatEssentials) {
  // "aaaaaaaaaaaaaaaaaaaaaaaa" compresses to one short match sequence.
  const Bytes input(24, 'a');
  const Bytes block = Lz4CompressBlock(input);
  EXPECT_LT(block.size(), input.size());
  EXPECT_EQ(Lz4DecompressBlock(block, input.size()), input);
}

TEST(Lz4, RejectsBadOffset) {
  // token: 0 literals, match len 4; offset 5 with empty history.
  const Bytes bad = {0x00, 0x05, 0x00};
  EXPECT_THROW(Lz4DecompressBlock(bad, 4), DecodeError);
}

TEST(Lz4, RejectsZeroOffset) {
  const Bytes bad = {0x00, 0x00, 0x00};
  EXPECT_THROW(Lz4DecompressBlock(bad, 4), DecodeError);
}

TEST(Lz4, RejectsSizeMismatch) {
  const Bytes input(100, 'x');
  const Bytes block = Lz4CompressBlock(input);
  EXPECT_THROW(Lz4DecompressBlock(block, 99), DecodeError);
  EXPECT_THROW(Lz4DecompressBlock(block, 101), DecodeError);
}

TEST(Lz4, OverlappingMatchesDecodeCorrectly) {
  // Offset 1 with long match = classic RLE-via-overlap.
  Bytes input;
  input.push_back('z');
  input.insert(input.end(), 300, 'q');
  input.insert(input.end(), {'e', 'n', 'd', '!', '!', '?', '.', ',', ';',
                             ':', 'a', 'b', 'c'});
  const Bytes block = Lz4CompressBlock(input);
  EXPECT_EQ(Lz4DecompressBlock(block, input.size()), input);
}

TEST(Lz4, FrameCarriesDecompressedSize) {
  const Lz4Codec codec;
  const Bytes input = MakeInput(InputKind::kLowEntropy, 50000, 8);
  const Bytes frame = codec.Compress(input);
  EXPECT_EQ(LoadLE<std::uint64_t>(frame.data()), input.size());
  EXPECT_THROW(codec.Decompress(Bytes{1, 2, 3}), DecodeError);
}

TEST(Lz4, AccelerationTradesRatioForSpeed) {
  const Bytes input = MakeInput(InputKind::kText, 300000, 9);
  const Lz4Codec normal(1);
  const Lz4Codec fast(32);
  const Bytes a = normal.Compress(input);
  const Bytes b = fast.Compress(input);
  EXPECT_EQ(normal.Decompress(a), input);
  EXPECT_EQ(fast.Decompress(b), input);
  EXPECT_LE(a.size(), b.size());
}

TEST(Rle, CompressesRunsHard) {
  const RleCodec codec;
  const Bytes input(10000, 0x55);
  const Bytes compressed = codec.Compress(input);
  EXPECT_LT(compressed.size(), 200u);
  EXPECT_EQ(codec.Decompress(compressed, input.size()), input);
}

TEST(Rle, LiteralRunBoundaries) {
  const RleCodec codec;
  // 129 distinct bytes forces a literal-run split at 128.
  Bytes input;
  for (int i = 0; i < 129; ++i) input.push_back(static_cast<Byte>(i));
  const Bytes compressed = codec.Compress(input);
  EXPECT_EQ(codec.Decompress(compressed, input.size()), input);
}

TEST(Rle, TruncatedInputThrows) {
  const RleCodec codec;
  EXPECT_THROW(codec.Decompress(Bytes{0x05, 'a'}, 0), DecodeError);  // wants 6
  EXPECT_THROW(codec.Decompress(Bytes{0x80}, 0), DecodeError);  // repeat, no byte
}

TEST(Zlib, HeaderCheckBytes) {
  const ZlibCodec codec;
  const Bytes out = codec.Compress(ToBytes("zlib framed"));
  ASSERT_GE(out.size(), 7u);
  EXPECT_EQ(out[0] & 0x0F, 8);                      // deflate
  EXPECT_EQ((out[0] * 256 + out[1]) % 31, 0);       // FCHECK
}

TEST(Zlib, DetectsCorruption) {
  const ZlibCodec codec;
  const Bytes input = MakeInput(InputKind::kText, 4000, 21);
  Bytes compressed = codec.Compress(input);
  compressed[1] ^= 0x01;  // break FCHECK
  EXPECT_THROW(codec.Decompress(compressed, input.size()), DecodeError);
  Bytes bad_body = codec.Compress(input);
  bad_body[bad_body.size() / 2] ^= 0xFF;
  EXPECT_THROW(codec.Decompress(bad_body, input.size()), DecodeError);
}

#ifdef VIZNDP_HAVE_ZLIB
TEST(Zlib, InteroperatesWithLibz) {
  const Bytes input = MakeInput(InputKind::kFloatLike, 120000, 22);
  // Ours -> libz.
  const ZlibCodec codec;
  const Bytes ours = codec.Compress(input);
  uLongf dest_len = static_cast<uLongf>(input.size() + 64);
  Bytes dest(dest_len);
  ASSERT_EQ(uncompress(dest.data(), &dest_len, ours.data(),
                       static_cast<uLong>(ours.size())),
            Z_OK);
  dest.resize(dest_len);
  EXPECT_EQ(dest, input);
  // libz -> ours.
  uLongf comp_len = compressBound(static_cast<uLong>(input.size()));
  Bytes libz_out(comp_len);
  ASSERT_EQ(compress2(libz_out.data(), &comp_len, input.data(),
                      static_cast<uLong>(input.size()), 6),
            Z_OK);
  libz_out.resize(comp_len);
  EXPECT_EQ(codec.Decompress(libz_out, input.size()), input);
}
#endif  // VIZNDP_HAVE_ZLIB

TEST(CodecRegistry, KnowsAllCodecs) {
  for (const std::string& name : RegisteredCodecNames()) {
    const CodecPtr codec = MakeCodec(name);
    EXPECT_EQ(codec->name(), name);
  }
  EXPECT_THROW(MakeCodec("zstd"), Error);
}

TEST(CodecRatios, OrderingMatchesPaperExpectations) {
  // On low-entropy quantized data (like volume fractions) GZip should
  // out-compress LZ4, and both should beat RLE on mixed content.
  const Bytes input = MakeInput(InputKind::kLowEntropy, 500000, 10);
  const size_t gz = MakeCodec("gzip")->Compress(input).size();
  const size_t lz = MakeCodec("lz4")->Compress(input).size();
  EXPECT_LT(gz, lz);
}

}  // namespace
}  // namespace vizndp::compress
