#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "io/vnd_format.h"
#include "pipeline/elements.h"
#include "sim/impact.h"
#include "storage/memory_store.h"

namespace vizndp::pipeline {
namespace {

struct Fixture {
  storage::MemoryObjectStore store;

  Fixture() {
    store.CreateBucket("data");
    sim::ImpactConfig cfg;
    cfg.n = 16;
    for (const std::int64_t t : {0LL, 24006LL}) {
      const grid::Dataset ds =
          sim::GenerateImpactTimestep(cfg, t, {"v02", "v03", "rho"});
      io::VndWriter(ds).WriteToStore(store, "data",
                                     "ts" + std::to_string(t) + ".vnd");
    }
  }

  storage::FileGateway gateway() { return {store, "data"}; }
};

TEST(Pipeline, SourceFilterSinkExecutes) {
  Fixture fx;
  VndReaderSource source(fx.gateway(), "ts0.vnd");
  ContourStage contour("v02", {0.5});
  PolyStatsSink sink;
  contour.SetInputConnection(0, &source);
  sink.SetInputConnection(0, &contour);

  sink.Update();
  EXPECT_GT(sink.stats().triangles, 0u);
  EXPECT_EQ(source.execution_count(), 1u);
  EXPECT_EQ(contour.execution_count(), 1u);
  EXPECT_EQ(sink.execution_count(), 1u);
}

TEST(Pipeline, RepeatedUpdateDoesNotReexecute) {
  Fixture fx;
  VndReaderSource source(fx.gateway(), "ts0.vnd");
  ContourStage contour("v02", {0.5});
  contour.SetInputConnection(0, &source);
  contour.Update();
  contour.Update();
  contour.Update();
  EXPECT_EQ(source.execution_count(), 1u);
  EXPECT_EQ(contour.execution_count(), 1u);
}

TEST(Pipeline, DownstreamParameterChangeOnlyReexecutesDownstream) {
  Fixture fx;
  VndReaderSource source(fx.gateway(), "ts0.vnd");
  ContourStage contour("v02", {0.5});
  PolyStatsSink sink;
  contour.SetInputConnection(0, &source);
  sink.SetInputConnection(0, &contour);
  sink.Update();

  contour.SetIsovalues({0.1, 0.9});  // the paper's interactive knob
  sink.Update();
  EXPECT_EQ(source.execution_count(), 1u);  // reader untouched
  EXPECT_EQ(contour.execution_count(), 2u);
  EXPECT_EQ(sink.execution_count(), 2u);
}

TEST(Pipeline, UpstreamChangePropagatesToEverything) {
  Fixture fx;
  VndReaderSource source(fx.gateway(), "ts0.vnd");
  ContourStage contour("v02", {0.5});
  PolyStatsSink sink;
  contour.SetInputConnection(0, &source);
  sink.SetInputConnection(0, &contour);
  sink.Update();

  source.SetKey("ts24006.vnd");  // advance the movie
  sink.Update();
  EXPECT_EQ(source.execution_count(), 2u);
  EXPECT_EQ(contour.execution_count(), 2u);
  EXPECT_EQ(sink.execution_count(), 2u);
}

TEST(Pipeline, ArraySelectionLimitsWhatTheReaderLoads) {
  Fixture fx;
  VndReaderSource source(fx.gateway(), "ts0.vnd");
  source.SetArraySelection({"v02"});
  const DataObjectPtr out = source.UpdateAndGetOutput();
  EXPECT_EQ(out->AsDataset().ArrayCount(), 1u);
  EXPECT_NE(out->AsDataset().FindArray("v02"), nullptr);
}

TEST(Pipeline, UnconnectedInputThrows) {
  ContourStage contour("v02", {0.5});
  EXPECT_THROW(contour.Update(), Error);
}

TEST(Pipeline, PortRangeChecked) {
  Fixture fx;
  VndReaderSource source(fx.gateway(), "ts0.vnd");
  ContourStage contour("v02", {0.5});
  EXPECT_THROW(contour.SetInputConnection(1, &source), Error);
  EXPECT_THROW(contour.SetInputConnection(-1, &source), Error);
}

TEST(Pipeline, WrongDataObjectTypeThrows) {
  Fixture fx;
  VndReaderSource source(fx.gateway(), "ts0.vnd");
  PolyStatsSink sink;  // expects PolyData, gets a Dataset
  sink.SetInputConnection(0, &source);
  EXPECT_THROW(sink.Update(), Error);
}

TEST(Pipeline, FanOutSharesOneSourceExecution) {
  // The paper's setup: one reader feeding a v02 contour filter and a v03
  // contour filter. The reader must execute once, not per consumer.
  Fixture fx;
  VndReaderSource source(fx.gateway(), "ts0.vnd");
  ContourStage water("v02", {0.1});
  ContourStage asteroid("v03", {0.1});
  PolyStatsSink water_sink;
  PolyStatsSink asteroid_sink;
  water.SetInputConnection(0, &source);
  asteroid.SetInputConnection(0, &source);
  water_sink.SetInputConnection(0, &water);
  asteroid_sink.SetInputConnection(0, &asteroid);

  water_sink.Update();
  asteroid_sink.Update();
  EXPECT_EQ(source.execution_count(), 1u);
  EXPECT_GT(water_sink.stats().triangles, 0u);

  // Changing one branch's parameter re-runs only that branch.
  water.SetIsovalues({0.5});
  water_sink.Update();
  asteroid_sink.Update();
  EXPECT_EQ(source.execution_count(), 1u);
  EXPECT_EQ(water.execution_count(), 2u);
  EXPECT_EQ(asteroid.execution_count(), 1u);
}

TEST(Pipeline, DiamondTopology) {
  // Source -> two contour stages -> both consumed; then the source key
  // changes and everything downstream re-executes exactly once.
  Fixture fx;
  VndReaderSource source(fx.gateway(), "ts0.vnd");
  ContourStage a("v02", {0.1});
  ContourStage b("v02", {0.9});
  PolyStatsSink sink_a;
  PolyStatsSink sink_b;
  a.SetInputConnection(0, &source);
  b.SetInputConnection(0, &source);
  sink_a.SetInputConnection(0, &a);
  sink_b.SetInputConnection(0, &b);
  sink_a.Update();
  sink_b.Update();

  source.SetKey("ts24006.vnd");
  sink_a.Update();
  sink_b.Update();
  EXPECT_EQ(source.execution_count(), 2u);
  EXPECT_EQ(a.execution_count(), 2u);
  EXPECT_EQ(b.execution_count(), 2u);
  EXPECT_EQ(sink_a.execution_count(), 2u);
  EXPECT_EQ(sink_b.execution_count(), 2u);
}

TEST(Pipeline, ObjWriterProducesFile) {
  Fixture fx;
  const auto path = std::filesystem::temp_directory_path() /
                    "vizndp_pipeline_test.obj";
  VndReaderSource source(fx.gateway(), "ts0.vnd");
  ContourStage contour("v02", {0.5});
  ObjWriterSink writer(path.string());
  contour.SetInputConnection(0, &source);
  writer.SetInputConnection(0, &contour);
  writer.Update();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line, "# vizndp contour output");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace vizndp::pipeline
