#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/fault.h"
#include "net/inproc.h"
#include "net/retry.h"
#include "obs/metrics.h"
#include "rpc/client.h"
#include "rpc/server.h"

namespace vizndp::rpc {
namespace {

using namespace std::chrono_literals;
using msgpack::Array;
using msgpack::Value;

struct ServedPair {
  Server server;
  std::unique_ptr<Client> client;
  std::thread server_thread;

  explicit ServedPair(net::SimulatedLink* link = nullptr) {
    net::TransportPair pair = net::CreateInProcPair(link);
    server_thread = std::thread(
        [this, t = std::shared_ptr<net::Transport>(std::move(pair.a))] {
          server.ServeTransport(*t);
        });
    client = std::make_unique<Client>(std::move(pair.b));
  }

  ~ServedPair() {
    client.reset();  // closes the channel; the serve loop exits
    server_thread.join();
  }
};

TEST(Rpc, BasicCall) {
  ServedPair sp;
  sp.server.Bind("add", [](const Array& p) {
    return Value(p.at(0).AsInt() + p.at(1).AsInt());
  });
  const Value result = sp.client->Call("add", Array{Value(2), Value(40)});
  EXPECT_EQ(result.AsInt(), 42);
}

TEST(Rpc, MultipleSequentialCalls) {
  ServedPair sp;
  sp.server.Bind("echo", [](const Array& p) { return p.at(0); });
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sp.client->Call("echo", Array{Value(i)}).AsInt(), i);
  }
  EXPECT_EQ(sp.server.requests_served(), 50u);
}

TEST(Rpc, UnknownMethodReturnsError) {
  ServedPair sp;
  EXPECT_THROW(sp.client->Call("nope"), RpcError);
}

TEST(Rpc, HandlerExceptionPropagatesAsRpcError) {
  ServedPair sp;
  sp.server.Bind("boom", [](const Array&) -> Value {
    throw std::runtime_error("kaboom");
  });
  try {
    sp.client->Call("boom");
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_NE(std::string(e.what()).find("kaboom"), std::string::npos);
  }
  // The server survives a handler failure.
  sp.server.Bind("ok", [](const Array&) { return Value(1); });
  EXPECT_EQ(sp.client->Call("ok").AsInt(), 1);
}

TEST(Rpc, BinaryPayloadRoundTrip) {
  ServedPair sp;
  sp.server.Bind("reverse", [](const Array& p) {
    Bytes b = p.at(0).As<Bytes>();
    std::reverse(b.begin(), b.end());
    return Value(std::move(b));
  });
  Bytes big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<Byte>(i);
  Bytes expected = big;
  std::reverse(expected.begin(), expected.end());
  const Value result = sp.client->Call("reverse", Array{Value(std::move(big))});
  EXPECT_EQ(result.As<Bytes>(), expected);
}

TEST(Rpc, DuplicateBindThrows) {
  Server server;
  server.Bind("m", [](const Array&) { return Value(); });
  EXPECT_THROW(server.Bind("m", [](const Array&) { return Value(); }), Error);
}

TEST(Rpc, DispatchRejectsGarbage) {
  Server server;
  EXPECT_THROW(server.Dispatch(ToBytes("not msgpack at all")), Error);
}

TEST(Rpc, CallsChargeTheLink) {
  net::SimulatedLink link({.bandwidth_bytes_per_sec = 1e9,
                           .latency_sec = 0.0,
                           .overhead_factor = 1.0});
  {
    ServedPair sp(&link);
    sp.server.Bind("blob", [](const Array& p) {
      return Value(Bytes(p.at(0).AsUint(), 0x7F));
    });
    sp.client->Call("blob", Array{Value(std::uint64_t{100000})});
  }
  // Reply carries ~100 KB across the link; request is small.
  EXPECT_GT(link.bytes_transferred(), 100000u);
  EXPECT_LT(link.bytes_transferred(), 101000u);
  EXPECT_EQ(link.messages(), 2u);
}

TEST(Rpc, PerMethodMetricsTrackDispatches) {
  ServedPair sp;
  sp.server.Bind("ok", [](const Array&) { return Value(1); });
  sp.server.Bind("boom", [](const Array&) -> Value {
    throw std::runtime_error("kaboom");
  });
  for (int i = 0; i < 3; ++i) sp.client->Call("ok");
  EXPECT_THROW(sp.client->Call("boom"), RpcError);
  EXPECT_THROW(sp.client->Call("no_such_method"), RpcError);

  const auto snapshot = sp.server.metrics().Snapshot();
  const obs::MetricSnapshot* ok_requests =
      obs::FindMetric(snapshot, "rpc_requests_total{method=ok}");
  ASSERT_NE(ok_requests, nullptr);
  EXPECT_DOUBLE_EQ(ok_requests->value, 3.0);
  const obs::MetricSnapshot* ok_errors =
      obs::FindMetric(snapshot, "rpc_errors_total{method=ok}");
  ASSERT_NE(ok_errors, nullptr);
  EXPECT_DOUBLE_EQ(ok_errors->value, 0.0);
  const obs::MetricSnapshot* boom_errors =
      obs::FindMetric(snapshot, "rpc_errors_total{method=boom}");
  ASSERT_NE(boom_errors, nullptr);
  EXPECT_DOUBLE_EQ(boom_errors->value, 1.0);
  const obs::MetricSnapshot* unknown =
      obs::FindMetric(snapshot, "rpc_unknown_method_total");
  ASSERT_NE(unknown, nullptr);
  EXPECT_DOUBLE_EQ(unknown->value, 1.0);
  const obs::MetricSnapshot* ok_latency =
      obs::FindMetric(snapshot, "rpc_dispatch_seconds{method=ok}");
  ASSERT_NE(ok_latency, nullptr);
  EXPECT_EQ(ok_latency->count, 3u);

  // The aggregate accessor counts every dispatch, including failures.
  EXPECT_EQ(sp.server.requests_served(), 5u);
}

// Like ServedPair, but the client talks through a fault injector, and
// client-side fault metrics land in a test-local registry.
struct FaultedServedPair {
  Server server;
  net::FaultInjectingTransport* faults = nullptr;  // owned by client
  std::unique_ptr<Client> client;
  obs::Registry metrics;
  std::thread server_thread;

  FaultedServedPair() {
    net::TransportPair pair = net::CreateInProcPair();
    server_thread = std::thread(
        [this, t = std::shared_ptr<net::Transport>(std::move(pair.a))] {
          server.ServeTransport(*t);
        });
    auto faulty =
        std::make_unique<net::FaultInjectingTransport>(std::move(pair.b));
    faults = faulty.get();
    client = std::make_unique<Client>(std::move(faulty));
    client->SetMetrics(&metrics);
    client->SetDefaultTimeout(200ms);
    net::RetryPolicy policy;
    policy.max_attempts = 4;
    policy.base_delay = 200us;
    policy.jitter = 0.0;
    client->SetRetryPolicy(policy);
  }

  ~FaultedServedPair() {
    client.reset();
    server_thread.join();
  }

  double Counter(const std::string& name) {
    const auto snapshot = metrics.Snapshot();
    const obs::MetricSnapshot* m = obs::FindMetric(snapshot, name);
    return m == nullptr ? 0.0 : m->value;
  }
};

TEST(RpcRetry, FirstRequestsDroppedThenSucceeds) {
  FaultedServedPair sp;
  sp.server.Bind("echo", [](const Array& p) { return p.at(0); });
  // The first two requests vanish in flight; attempts 1 and 2 time out,
  // attempt 3 gets through.
  sp.faults->ScriptSend(
      {net::FaultAction::Drop(), net::FaultAction::Drop()});
  const Value result = sp.client->Call("echo", Array{Value(7)},
                                       {.timeout = 50ms, .idempotent = true});
  EXPECT_EQ(result.AsInt(), 7);
  EXPECT_DOUBLE_EQ(sp.Counter("rpc_retries_total{method=echo}"), 2.0);
  EXPECT_DOUBLE_EQ(sp.Counter("rpc_timeouts_total{method=echo}"), 2.0);
}

TEST(RpcRetry, AllDroppedExhaustsAttemptsWithTimeout) {
  FaultedServedPair sp;
  sp.server.Bind("echo", [](const Array& p) { return p.at(0); });
  sp.faults->ScriptSend({net::FaultAction::Drop()}, /*loop_last=*/true);
  EXPECT_THROW(sp.client->Call("echo", Array{Value(1)},
                               {.timeout = 30ms, .idempotent = true}),
               TimeoutError);
  EXPECT_DOUBLE_EQ(sp.Counter("rpc_timeouts_total{method=echo}"), 4.0);
  EXPECT_DOUBLE_EQ(sp.Counter("rpc_retries_total{method=echo}"), 3.0);
}

TEST(RpcRetry, DuplicatedReplyIsDiscardedNotMismatched) {
  FaultedServedPair sp;
  sp.server.Bind("echo", [](const Array& p) { return p.at(0); });
  sp.faults->ScriptReceive({net::FaultAction::Duplicate()});
  // Call 1's reply arrives twice. Call 2 must skip the stale duplicate
  // (older msgid) and still find its own reply.
  EXPECT_EQ(sp.client->Call("echo", Array{Value(1)}).AsInt(), 1);
  EXPECT_EQ(sp.client->Call("echo", Array{Value(2)}).AsInt(), 2);
  EXPECT_DOUBLE_EQ(sp.Counter("rpc_stale_replies_total"), 1.0);
}

TEST(RpcRetry, LateReplyAfterTimeoutIsDiscarded) {
  FaultedServedPair sp;
  std::atomic<int> runs{0};
  sp.server.Bind("echo", [&runs](const Array& p) {
    // Only the first run is slow: attempt 1 times out at 45 ms while the
    // handler is still sleeping, so its reply arrives *during* attempt 2
    // and must be discarded by msgid, not mistaken for attempt 2's reply.
    if (runs.fetch_add(1) == 0) std::this_thread::sleep_for(60ms);
    return p.at(0);
  });
  const Value retried = sp.client->Call("echo", Array{Value(11)},
                                        {.timeout = 45ms, .idempotent = true});
  EXPECT_EQ(retried.AsInt(), 11);
  EXPECT_EQ(runs.load(), 2);
  EXPECT_GE(sp.Counter("rpc_stale_replies_total"), 1.0);
}

TEST(RpcRetry, NonIdempotentCallsAreNotRetried) {
  FaultedServedPair sp;
  sp.server.Bind("echo", [](const Array& p) { return p.at(0); });
  sp.faults->ScriptSend({net::FaultAction::Drop()}, /*loop_last=*/true);
  EXPECT_THROW(sp.client->Call("echo", Array{Value(1)},
                               {.timeout = 30ms, .idempotent = false}),
               TimeoutError);
  EXPECT_DOUBLE_EQ(sp.Counter("rpc_retries_total{method=echo}"), 0.0);
  EXPECT_DOUBLE_EQ(sp.Counter("rpc_timeouts_total{method=echo}"), 1.0);
}

TEST(RpcRetry, ServerErrorsAreNeverRetried) {
  FaultedServedPair sp;
  int runs = 0;
  sp.server.Bind("boom", [&runs](const Array&) -> Value {
    ++runs;
    throw std::runtime_error("kaboom");
  });
  EXPECT_THROW(sp.client->Call("boom", {}, {.idempotent = true}), RpcError);
  // The server is alive and answered: retrying would re-run the failing
  // handler for nothing.
  EXPECT_EQ(runs, 1);
  EXPECT_DOUBLE_EQ(sp.Counter("rpc_retries_total{method=boom}"), 0.0);
}

TEST(RpcRetry, HardDisconnectExhaustsRetriesWithPeerClosed) {
  FaultedServedPair sp;
  sp.server.Bind("echo", [](const Array& p) { return p.at(0); });
  sp.faults->ScriptSend({net::FaultAction::Disconnect()});
  EXPECT_THROW(sp.client->Call("echo", Array{Value(1)},
                               {.timeout = 30ms, .idempotent = true}),
               PeerClosedError);
  // Peer loss is retryable (a ReconnectingTransport could recover), so
  // all attempts were burned before giving up.
  EXPECT_DOUBLE_EQ(sp.Counter("rpc_retries_total{method=echo}"), 3.0);
}

TEST(RpcServer, OversizeFrameClosesConnectionNotServer) {
  Server server;
  ServerOptions options;
  options.max_frame_bytes = 1024;
  server.SetOptions(options);
  server.Bind("ok", [](const Array&) { return Value(1); });

  net::TransportPair pair = net::CreateInProcPair();
  std::thread serve_thread(
      [&server, t = std::shared_ptr<net::Transport>(std::move(pair.a))] {
        server.ServeTransport(*t);
      });
  pair.b->Send(Bytes(4096, Byte{0x00}));  // over the cap
  EXPECT_THROW(pair.b->Receive(net::DeadlineAfter(1000ms)), Error);
  serve_thread.join();
  const auto snapshot = server.metrics().Snapshot();
  const obs::MetricSnapshot* oversize =
      obs::FindMetric(snapshot, "rpc_oversize_frames_total");
  ASSERT_NE(oversize, nullptr);
  EXPECT_DOUBLE_EQ(oversize->value, 1.0);
}

TEST(RpcServer, GarbageFrameClosesConnectionNotServer) {
  Server server;
  server.Bind("ok", [](const Array&) { return Value(1); });

  // Connection 1 sends garbage: its serve loop must exit cleanly (no
  // propagating exception) and count the malformed frame.
  net::TransportPair bad = net::CreateInProcPair();
  std::thread bad_thread(
      [&server, t = std::shared_ptr<net::Transport>(std::move(bad.a))] {
        server.ServeTransport(*t);
      });
  bad.b->Send(ToBytes("definitely not msgpack"));
  EXPECT_THROW(bad.b->Receive(net::DeadlineAfter(1000ms)), Error);
  bad_thread.join();

  // Connection 2 still works: the server object survived.
  net::TransportPair good = net::CreateInProcPair();
  std::thread good_thread(
      [&server, t = std::shared_ptr<net::Transport>(std::move(good.a))] {
        server.ServeTransport(*t);
      });
  auto client = std::make_unique<Client>(std::move(good.b));
  EXPECT_EQ(client->Call("ok").AsInt(), 1);
  const auto snapshot = server.metrics().Snapshot();
  const obs::MetricSnapshot* malformed =
      obs::FindMetric(snapshot, "rpc_malformed_frames_total");
  ASSERT_NE(malformed, nullptr);
  EXPECT_DOUBLE_EQ(malformed->value, 1.0);
  client.reset();  // closes the channel so the serve loop exits
  good_thread.join();
}

TEST(RpcServer, RequestDeadlineOverrunReportedAsError) {
  ServedPair sp;
  ServerOptions options;
  options.request_deadline = 10ms;
  sp.server.SetOptions(options);
  sp.server.Bind("slow", [](const Array&) {
    std::this_thread::sleep_for(50ms);
    return Value(1);
  });
  sp.server.Bind("fast", [](const Array&) { return Value(2); });
  try {
    sp.client->Call("slow");
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_NE(std::string(e.what()).find("deadline exceeded"),
              std::string::npos);
  }
  EXPECT_EQ(sp.client->Call("fast").AsInt(), 2);
  const auto snapshot = sp.server.metrics().Snapshot();
  const obs::MetricSnapshot* exceeded = obs::FindMetric(
      snapshot, "rpc_deadline_exceeded_total{method=slow}");
  ASSERT_NE(exceeded, nullptr);
  EXPECT_DOUBLE_EQ(exceeded->value, 1.0);
}

TEST(TcpRpc, EndToEndOverSockets) {
  Server server;
  server.Bind("mul", [](const Array& p) {
    return Value(p.at(0).AsInt() * p.at(1).AsInt());
  });
  TcpRpcServer tcp_server(server, 0);
  Client client(net::TcpConnect("127.0.0.1", tcp_server.port()));
  EXPECT_EQ(client.Call("mul", Array{Value(6), Value(7)}).AsInt(), 42);
}

TEST(TcpRpc, MultipleClients) {
  Server server;
  server.Bind("id", [](const Array& p) { return p.at(0); });
  TcpRpcServer tcp_server(server, 0);
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Client client(net::TcpConnect("127.0.0.1", tcp_server.port()));
      for (int i = 0; i < 20; ++i) {
        if (client.Call("id", Array{Value(c * 100 + i)}).AsInt() !=
            c * 100 + i) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), 80u);
}

}  // namespace
}  // namespace vizndp::rpc
