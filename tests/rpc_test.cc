#include <gtest/gtest.h>

#include <thread>

#include "net/inproc.h"
#include "obs/metrics.h"
#include "rpc/client.h"
#include "rpc/server.h"

namespace vizndp::rpc {
namespace {

using msgpack::Array;
using msgpack::Value;

struct ServedPair {
  Server server;
  std::unique_ptr<Client> client;
  std::thread server_thread;

  explicit ServedPair(net::SimulatedLink* link = nullptr) {
    net::TransportPair pair = net::CreateInProcPair(link);
    server_thread = std::thread(
        [this, t = std::shared_ptr<net::Transport>(std::move(pair.a))] {
          server.ServeTransport(*t);
        });
    client = std::make_unique<Client>(std::move(pair.b));
  }

  ~ServedPair() {
    client.reset();  // closes the channel; the serve loop exits
    server_thread.join();
  }
};

TEST(Rpc, BasicCall) {
  ServedPair sp;
  sp.server.Bind("add", [](const Array& p) {
    return Value(p.at(0).AsInt() + p.at(1).AsInt());
  });
  const Value result = sp.client->Call("add", Array{Value(2), Value(40)});
  EXPECT_EQ(result.AsInt(), 42);
}

TEST(Rpc, MultipleSequentialCalls) {
  ServedPair sp;
  sp.server.Bind("echo", [](const Array& p) { return p.at(0); });
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sp.client->Call("echo", Array{Value(i)}).AsInt(), i);
  }
  EXPECT_EQ(sp.server.requests_served(), 50u);
}

TEST(Rpc, UnknownMethodReturnsError) {
  ServedPair sp;
  EXPECT_THROW(sp.client->Call("nope"), RpcError);
}

TEST(Rpc, HandlerExceptionPropagatesAsRpcError) {
  ServedPair sp;
  sp.server.Bind("boom", [](const Array&) -> Value {
    throw std::runtime_error("kaboom");
  });
  try {
    sp.client->Call("boom");
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_NE(std::string(e.what()).find("kaboom"), std::string::npos);
  }
  // The server survives a handler failure.
  sp.server.Bind("ok", [](const Array&) { return Value(1); });
  EXPECT_EQ(sp.client->Call("ok").AsInt(), 1);
}

TEST(Rpc, BinaryPayloadRoundTrip) {
  ServedPair sp;
  sp.server.Bind("reverse", [](const Array& p) {
    Bytes b = p.at(0).As<Bytes>();
    std::reverse(b.begin(), b.end());
    return Value(std::move(b));
  });
  Bytes big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<Byte>(i);
  Bytes expected = big;
  std::reverse(expected.begin(), expected.end());
  const Value result = sp.client->Call("reverse", Array{Value(std::move(big))});
  EXPECT_EQ(result.As<Bytes>(), expected);
}

TEST(Rpc, DuplicateBindThrows) {
  Server server;
  server.Bind("m", [](const Array&) { return Value(); });
  EXPECT_THROW(server.Bind("m", [](const Array&) { return Value(); }), Error);
}

TEST(Rpc, DispatchRejectsGarbage) {
  Server server;
  EXPECT_THROW(server.Dispatch(ToBytes("not msgpack at all")), Error);
}

TEST(Rpc, CallsChargeTheLink) {
  net::SimulatedLink link({.bandwidth_bytes_per_sec = 1e9,
                           .latency_sec = 0.0,
                           .overhead_factor = 1.0});
  {
    ServedPair sp(&link);
    sp.server.Bind("blob", [](const Array& p) {
      return Value(Bytes(p.at(0).AsUint(), 0x7F));
    });
    sp.client->Call("blob", Array{Value(std::uint64_t{100000})});
  }
  // Reply carries ~100 KB across the link; request is small.
  EXPECT_GT(link.bytes_transferred(), 100000u);
  EXPECT_LT(link.bytes_transferred(), 101000u);
  EXPECT_EQ(link.messages(), 2u);
}

TEST(Rpc, PerMethodMetricsTrackDispatches) {
  ServedPair sp;
  sp.server.Bind("ok", [](const Array&) { return Value(1); });
  sp.server.Bind("boom", [](const Array&) -> Value {
    throw std::runtime_error("kaboom");
  });
  for (int i = 0; i < 3; ++i) sp.client->Call("ok");
  EXPECT_THROW(sp.client->Call("boom"), RpcError);
  EXPECT_THROW(sp.client->Call("no_such_method"), RpcError);

  const auto snapshot = sp.server.metrics().Snapshot();
  const obs::MetricSnapshot* ok_requests =
      obs::FindMetric(snapshot, "rpc_requests_total{method=ok}");
  ASSERT_NE(ok_requests, nullptr);
  EXPECT_DOUBLE_EQ(ok_requests->value, 3.0);
  const obs::MetricSnapshot* ok_errors =
      obs::FindMetric(snapshot, "rpc_errors_total{method=ok}");
  ASSERT_NE(ok_errors, nullptr);
  EXPECT_DOUBLE_EQ(ok_errors->value, 0.0);
  const obs::MetricSnapshot* boom_errors =
      obs::FindMetric(snapshot, "rpc_errors_total{method=boom}");
  ASSERT_NE(boom_errors, nullptr);
  EXPECT_DOUBLE_EQ(boom_errors->value, 1.0);
  const obs::MetricSnapshot* unknown =
      obs::FindMetric(snapshot, "rpc_unknown_method_total");
  ASSERT_NE(unknown, nullptr);
  EXPECT_DOUBLE_EQ(unknown->value, 1.0);
  const obs::MetricSnapshot* ok_latency =
      obs::FindMetric(snapshot, "rpc_dispatch_seconds{method=ok}");
  ASSERT_NE(ok_latency, nullptr);
  EXPECT_EQ(ok_latency->count, 3u);

  // The aggregate accessor counts every dispatch, including failures.
  EXPECT_EQ(sp.server.requests_served(), 5u);
}

TEST(TcpRpc, EndToEndOverSockets) {
  Server server;
  server.Bind("mul", [](const Array& p) {
    return Value(p.at(0).AsInt() * p.at(1).AsInt());
  });
  TcpRpcServer tcp_server(server, 0);
  Client client(net::TcpConnect("127.0.0.1", tcp_server.port()));
  EXPECT_EQ(client.Call("mul", Array{Value(6), Value(7)}).AsInt(), 42);
}

TEST(TcpRpc, MultipleClients) {
  Server server;
  server.Bind("id", [](const Array& p) { return p.at(0); });
  TcpRpcServer tcp_server(server, 0);
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Client client(net::TcpConnect("127.0.0.1", tcp_server.port()));
      for (int i = 0; i < 20; ++i) {
        if (client.Call("id", Array{Value(c * 100 + i)}).AsInt() !=
            c * 100 + i) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), 80u);
}

}  // namespace
}  // namespace vizndp::rpc
