// Distributed tracing end to end: context propagation inside the RPC
// frames (both directions backward compatible), clock-aligned merging of
// client / server / wire spans under one trace id, the request-scoped
// event journal, and the "every error path emits exactly one counter and
// one event" audit that DESIGN.md promises.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "bench_util/testbed.h"
#include "common/error.h"
#include "compress/lz4.h"
#include "contour/contour_filter.h"
#include "io/vnd_format.h"
#include "msgpack/pack.h"
#include "msgpack/unpack.h"
#include "ndp/ndp_client.h"
#include "ndp/ndp_server.h"
#include "ndp/protocol.h"
#include "net/fault.h"
#include "net/inproc.h"
#include "obs/context.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/client.h"
#include "rpc/protocol.h"
#include "rpc/server.h"
#include "sim/impact.h"
#include "storage/memory_store.h"

namespace vizndp {
namespace {

using namespace std::chrono_literals;
using bench_util::Testbed;

// Tests here drive the process-global tracer and event log; the guard
// leaves both empty and the tracer disabled for whoever runs next.
struct ObsGuard {
  ObsGuard() {
    obs::GlobalTracer().Enable(false);
    obs::GlobalTracer().Clear();
    obs::GlobalEventLog().Clear();
  }
  ~ObsGuard() {
    obs::GlobalTracer().Enable(false);
    obs::GlobalTracer().Clear();
    obs::GlobalEventLog().Clear();
  }
};

Bytes MakeBrickedImage() {
  sim::ImpactConfig cfg;
  cfg.n = 16;
  const grid::Dataset ds = sim::GenerateImpactTimestep(cfg, 24006, {"v02"});
  io::VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec("lz4"));
  writer.SetBrickSize(4);
  writer.SetFormatVersion(2);
  return writer.Serialize();
}

// Flips one stored byte of a brick the pre-filter must read (its
// [min, max] straddles `iso`), so every re-read sees the same bad data
// and the full recovery ladder runs. Empty result = no such brick.
Bytes CorruptStraddlingBrick(const Bytes& image, double iso) {
  const io::VndHeader header = io::ParseVndHeader(image);
  const io::ArrayMeta* meta = header.Find("v02");
  if (meta == nullptr || !meta->bricks.has_value()) return {};
  Bytes corrupted = image;
  for (const io::BrickEntry& e : meta->bricks->entries) {
    if (e.min < iso && e.max >= iso && e.stored_size > 0) {
      corrupted[static_cast<size_t>(header.blob_base + meta->offset +
                                    e.offset + e.stored_size / 2)] ^= 0xFF;
      return corrupted;
    }
  }
  return {};
}

contour::PolyData CleanBaseline(const Bytes& image, double iso) {
  storage::MemoryObjectStore store;
  store.CreateBucket("data");
  store.Put("data", "t.vnd", image);
  io::VndReader reader(storage::FileGateway(store, "data").Open("t.vnd"));
  const contour::ContourFilter filter(std::vector<double>{iso});
  return filter.Execute(reader.header().dims, reader.header().geometry,
                        reader.ReadArray("v02"));
}

std::vector<obs::DrainedEvent> SpansNamed(
    const std::vector<obs::DrainedEvent>& spans, const std::string& name) {
  std::vector<obs::DrainedEvent> out;
  for (const obs::DrainedEvent& s : spans) {
    if (s.name == name) out.push_back(s);
  }
  return out;
}

std::vector<std::string> EventNames(std::uint64_t trace_id) {
  std::vector<std::string> names;
  for (const obs::LogEvent& e : obs::GlobalEventLog().Events(trace_id)) {
    names.push_back(e.name);
  }
  return names;
}

// ---------------------------------------------------------------------
// Happy path: one sampled in-proc fetch produces a single merged trace —
// client spans, piggybacked server spans, and the two wire legs, all
// parented under the one rpc.attempt span.
// ---------------------------------------------------------------------

TEST(TracePropagation, SampledFetchMergesServerSpansAndWireLegs) {
  ObsGuard guard;
  obs::GlobalTracer().Enable();

  Testbed testbed;
  testbed.store().Put(testbed.bucket(), "t.vnd", MakeBrickedImage());

  grid::UniformGeometry geometry;
  ndp::NdpLoadStats stats;
  testbed.ndp_client().FetchSparseField("t.vnd", "v02", {0.1}, &geometry,
                                        &stats);
  ASSERT_NE(stats.trace_id, 0u);
  EXPECT_FALSE(stats.used_fallback);

  const auto spans = obs::GlobalTracer().Collect(stats.trace_id);
  const auto fetches = SpansNamed(spans, "ndp.fetch");
  const auto partials = SpansNamed(spans, "ndp.partial");
  const auto calls = SpansNamed(spans, "rpc.call:ndp.select");
  const auto attempts = SpansNamed(spans, "rpc.attempt:ndp.select");
  ASSERT_EQ(fetches.size(), 1u);
  ASSERT_EQ(partials.size(), 1u);
  ASSERT_EQ(calls.size(), 1u);
  ASSERT_EQ(attempts.size(), 1u);
  // The sharded client reuses the single-server partial-fetch path, so
  // even a lone-server fetch nests its RPC under an `ndp.partial` span
  // (the unit a shard sub-request traces as).
  EXPECT_EQ(partials[0].parent_span_id, fetches[0].span_id);
  EXPECT_EQ(calls[0].parent_span_id, partials[0].span_id);
  EXPECT_EQ(attempts[0].parent_span_id, calls[0].span_id);

  // The server half crossed back on the reply piggyback, already under
  // this trace and parented beneath the attempt that carried it.
  const auto dispatches = SpansNamed(spans, "rpc.dispatch:ndp.select");
  ASSERT_EQ(dispatches.size(), 1u);
  EXPECT_EQ(dispatches[0].parent_span_id, attempts[0].span_id);
  EXPECT_EQ(dispatches[0].track, "server");
  EXPECT_EQ(SpansNamed(spans, "ndp.select").size(), 1u);

  const auto wire_req = SpansNamed(spans, "wire:request");
  const auto wire_rep = SpansNamed(spans, "wire:reply");
  ASSERT_EQ(wire_req.size(), 1u);
  ASSERT_EQ(wire_rep.size(), 1u);
  for (const auto& w : {wire_req[0], wire_rep[0]}) {
    EXPECT_EQ(w.track, "wire");
    EXPECT_EQ(w.parent_span_id, attempts[0].span_id);
    EXPECT_NE(w.span_id, 0u);
    EXPECT_LT(w.dur_us, 60'000'000u);  // clamped, never underflowed
  }

  // No span id collides, in particular not across the two processes'
  // counters (both live in this process here, but the ids are salted).
  std::set<std::uint64_t> ids;
  for (const auto& s : spans) {
    EXPECT_NE(s.span_id, 0u);
    EXPECT_TRUE(ids.insert(s.span_id).second) << s.name;
  }

  // A clean fetch makes no decisions worth journaling.
  EXPECT_TRUE(EventNames(stats.trace_id).empty());
}

// ---------------------------------------------------------------------
// The centerpiece choreography: attempt 1 is dropped on the wire,
// attempt 2 is shed by the server's memory budget, attempt 3 hits a
// persistently corrupt brick and the client degrades to the baseline
// path — all under ONE trace id, with three distinct attempt spans, wire
// legs only for the attempts that got replies, and the exact decision
// sequence in the event journal.
// ---------------------------------------------------------------------

TEST(TraceChoreography, FaultyFetchYieldsAttemptSpansWireLegsAndEventSequence) {
  ObsGuard guard;
  obs::GlobalTracer().Enable();

  const Bytes image = MakeBrickedImage();
  const Bytes corrupted = CorruptStraddlingBrick(image, 0.1);
  ASSERT_FALSE(corrupted.empty());
  const contour::PolyData baseline = CleanBaseline(image, 0.1);
  ASSERT_GT(baseline.TriangleCount(), 0u);

  Testbed testbed;
  testbed.store().Put(testbed.bucket(), "t.vnd", corrupted);
  storage::MemoryObjectStore good_store;
  good_store.CreateBucket("data");
  good_store.Put("data", "t.vnd", image);

  auto faulty = std::make_unique<net::FaultInjectingTransport>(
      testbed.ConnectToServer());
  auto* faults = faulty.get();
  auto rpc_client = std::make_shared<rpc::Client>(std::move(faulty));
  obs::Registry client_metrics;
  rpc_client->SetMetrics(&client_metrics);
  ndp::NdpClientOptions options;
  options.call_timeout = 300ms;
  options.retry.max_attempts = 3;
  options.retry.base_delay = 50ms;
  options.retry.jitter = 0.0;
  auto ndp_client =
      std::make_shared<ndp::NdpClient>(rpc_client, "data", options);

  // Attempt 1 vanishes on the wire; 2 and 3 go through.
  faults->ScriptSend({net::FaultAction::Drop(), net::FaultAction::Pass(),
                      net::FaultAction::Pass()});
  // Attempt 2 is shed: a 1-byte budget rejects any ndp.select
  // reservation. The watcher lifts the limit the moment the shed lands
  // in the journal, well inside the 100 ms backoff before attempt 3.
  testbed.rpc_server().memory_budget().SetLimit(1);
  std::thread watcher([&testbed] {
    for (int i = 0; i < 40'000; ++i) {
      for (const obs::LogEvent& e : obs::GlobalEventLog().Events()) {
        if (e.name == "rpc.shed") {
          testbed.rpc_server().memory_budget().SetLimit(0);
          return;
        }
      }
      std::this_thread::sleep_for(500us);
    }
  });

  ndp::NdpContourSource source(ndp_client, "t.vnd", "v02", {0.1});
  source.SetFallback(storage::FileGateway(good_store, "data"));
  const contour::PolyData& poly = source.UpdateAndGetOutput()->AsPolyData();
  watcher.join();

  const ndp::NdpLoadStats& stats = source.last_stats();
  EXPECT_TRUE(stats.used_fallback);
  ASSERT_NE(stats.trace_id, 0u);
  EXPECT_TRUE(poly.GeometricallyEquals(baseline, 0.0));

  // The journal holds the request's complete decision sequence, in order.
  const std::vector<std::string> expected = {
      "rpc.timeout",          // attempt 1 never answered
      "rpc.retry",            // -> attempt 2
      "rpc.shed",             // server: budget rejected the reservation
      "rpc.busy",             // client saw the retryable busy reply
      "rpc.retry",            // -> attempt 3
      "ndp.corrupt_brick",    // brick CRC mismatch
      "ndp.brick_reread",     // re-read saw the same bytes
      "ndp.wholeblob_fallback",  // per-brick path abandoned
      "rpc.corrupt_reply",    // whole blob corrupt too: typed error out
      "ndp.fallback",         // client degraded to the baseline read
  };
  EXPECT_EQ(EventNames(stats.trace_id), expected);
  const auto events = obs::GlobalEventLog().Events(stats.trace_id);
  ASSERT_EQ(events.size(), expected.size());
  EXPECT_EQ(events[0].detail, "method=ndp.select attempt=1");
  EXPECT_EQ(events[2].detail, "reason=budget method=ndp.select");
  EXPECT_EQ(events[4].detail, "method=ndp.select attempt=3");
  EXPECT_EQ(events[9].detail, "key=t.vnd");

  // Three distinct attempt spans under one rpc.call span.
  const auto spans = obs::GlobalTracer().Collect(stats.trace_id);
  const auto calls = SpansNamed(spans, "rpc.call:ndp.select");
  ASSERT_EQ(calls.size(), 1u);
  auto attempts = SpansNamed(spans, "rpc.attempt:ndp.select");
  ASSERT_EQ(attempts.size(), 3u);
  std::sort(attempts.begin(), attempts.end(),
            [](const auto& a, const auto& b) { return a.start_us < b.start_us; });
  std::set<std::uint64_t> attempt_ids;
  for (const auto& a : attempts) {
    EXPECT_EQ(a.parent_span_id, calls[0].span_id);
    EXPECT_NE(a.span_id, 0u);
    attempt_ids.insert(a.span_id);
  }
  EXPECT_EQ(attempt_ids.size(), 3u);
  EXPECT_EQ(SpansNamed(spans, "net.backoff").size(), 2u);

  // Wire legs exist only for the attempts that produced replies (2 and
  // 3 — the dropped attempt has no server half), and they never clamp
  // below zero into a bogus huge duration.
  const std::set<std::uint64_t> replied = {attempts[1].span_id,
                                           attempts[2].span_id};
  for (const char* leg : {"wire:request", "wire:reply"}) {
    const auto wires = SpansNamed(spans, leg);
    ASSERT_EQ(wires.size(), 2u) << leg;
    std::set<std::uint64_t> parents;
    for (const auto& w : wires) {
      EXPECT_EQ(w.track, "wire");
      EXPECT_LT(w.dur_us, 60'000'000u);
      parents.insert(w.parent_span_id);
    }
    EXPECT_EQ(parents, replied) << leg;
  }
  const auto dispatches = SpansNamed(spans, "rpc.dispatch:ndp.select");
  ASSERT_EQ(dispatches.size(), 2u);
  for (const auto& d : dispatches) {
    EXPECT_TRUE(replied.count(d.parent_span_id)) << "dispatch parent";
  }

  // Counters agree with the journal.
  EXPECT_EQ(client_metrics
                .GetCounter("rpc_timeouts_total", {{"method", "ndp.select"}})
                .value(),
            1u);
  EXPECT_EQ(client_metrics
                .GetCounter("rpc_busy_total", {{"method", "ndp.select"}})
                .value(),
            1u);
  EXPECT_EQ(client_metrics
                .GetCounter("rpc_retries_total", {{"method", "ndp.select"}})
                .value(),
            2u);

  // The merged timeline exports exactly what `vizndp_tool fetch
  // --trace-merged` writes: all three tracks plus this trace's id.
  const std::string json = obs::GlobalTracer().ChromeJson();
  for (const char* track : {"client", "server", "wire"}) {
    EXPECT_NE(json.find("\"name\":\"" + std::string(track) + "\""),
              std::string::npos)
        << track;
  }
  EXPECT_NE(json.find(obs::TraceIdHex(stats.trace_id)), std::string::npos);
}

// ---------------------------------------------------------------------
// Frame compatibility, both directions.
// ---------------------------------------------------------------------

Bytes EncodeRequestFrame(msgpack::Array fields) {
  return msgpack::Encode(msgpack::Value(std::move(fields)));
}

TEST(TraceCompat, OldClientFourElementFrameGetsFourElementReply) {
  ObsGuard guard;
  rpc::Server server;
  server.Bind("echo", [](const msgpack::Array& params) {
    return params.empty() ? msgpack::Value() : params[0];
  });

  msgpack::Array req;
  req.emplace_back(rpc::kRequestType);
  req.emplace_back(std::uint64_t{7});
  req.emplace_back("echo");
  req.emplace_back(msgpack::Array{msgpack::Value("hi")});
  const Bytes reply = server.Dispatch(EncodeRequestFrame(std::move(req)));

  const msgpack::Value decoded = msgpack::Decode(reply);
  const auto& fields = decoded.As<msgpack::Array>();
  ASSERT_EQ(fields.size(), 4u);  // untraced request -> no piggyback
  EXPECT_EQ(fields[0].AsInt(), rpc::kResponseType);
  EXPECT_EQ(fields[1].AsUint(), 7u);
  EXPECT_TRUE(fields[2].IsNil());
  EXPECT_EQ(fields[3].As<std::string>(), "hi");
}

TEST(TraceCompat, TracedRequestGetsPiggybackAndMalformedCtxIsTolerated) {
  ObsGuard guard;
  rpc::Server server;
  server.Bind("echo", [](const msgpack::Array& params) {
    return params.empty() ? msgpack::Value() : params[0];
  });

  auto base_request = [] {
    msgpack::Array req;
    req.emplace_back(rpc::kRequestType);
    req.emplace_back(std::uint64_t{9});
    req.emplace_back("echo");
    req.emplace_back(msgpack::Array{msgpack::Value("x")});
    return req;
  };

  // Well-formed ctx map: the reply grows the piggyback 5th element with
  // the server's receive/send clocks (spans stay empty — tracer is off).
  msgpack::Array traced = base_request();
  msgpack::Map ctx;
  ctx.emplace_back(msgpack::Value(rpc::kCtxTraceIdKey),
                   msgpack::Value(std::uint64_t{0xABCD}));
  ctx.emplace_back(msgpack::Value(rpc::kCtxSpanIdKey),
                   msgpack::Value(std::uint64_t{11}));
  traced.emplace_back(std::move(ctx));
  const msgpack::Value traced_reply =
      msgpack::Decode(server.Dispatch(EncodeRequestFrame(std::move(traced))));
  const auto& traced_fields = traced_reply.As<msgpack::Array>();
  ASSERT_EQ(traced_fields.size(), 5u);
  const msgpack::Value& piggyback = traced_fields[4];
  ASSERT_TRUE(piggyback.Is<msgpack::Map>());
  ASSERT_NE(piggyback.Find(rpc::kPiggybackRecvKey), nullptr);
  ASSERT_NE(piggyback.Find(rpc::kPiggybackSendKey), nullptr);
  EXPECT_LE(piggyback.Find(rpc::kPiggybackRecvKey)->AsUint(),
            piggyback.Find(rpc::kPiggybackSendKey)->AsUint());

  // A malformed 5th element degrades to untraced, not to a failed call.
  msgpack::Array garbage_ctx = base_request();
  garbage_ctx.emplace_back(std::int64_t{42});
  const msgpack::Value garbage_reply = msgpack::Decode(
      server.Dispatch(EncodeRequestFrame(std::move(garbage_ctx))));
  const auto& garbage_fields = garbage_reply.As<msgpack::Array>();
  ASSERT_EQ(garbage_fields.size(), 4u);
  EXPECT_TRUE(garbage_fields[2].IsNil());
  EXPECT_EQ(garbage_fields[3].As<std::string>(), "x");
}

TEST(TraceCompat, NewClientCompletesAgainstOldServerWithoutPiggyback) {
  ObsGuard guard;
  obs::GlobalTracer().Enable();

  net::TransportPair pair = net::CreateInProcPair();
  std::atomic<size_t> seen_arity{0};
  std::atomic<std::uint64_t> seen_trace{0};
  // An "old server": accepts the request, replies with the pre-tracing
  // 4-element shape — no piggyback element at all.
  std::thread old_server([&, transport = std::move(pair.b)]() mutable {
    const Bytes frame = transport->Receive();
    const msgpack::Value request = msgpack::Decode(frame);
    const auto& fields = request.As<msgpack::Array>();
    seen_arity = fields.size();
    if (fields.size() >= 5 && fields[4].Is<msgpack::Map>()) {
      seen_trace = fields[4].At(rpc::kCtxTraceIdKey).AsUint();
    }
    msgpack::Array response;
    response.emplace_back(rpc::kResponseType);
    response.emplace_back(fields[1]);
    response.emplace_back(msgpack::Value());  // nil error
    response.emplace_back(std::uint64_t{42});
    transport->Send(msgpack::Encode(msgpack::Value(std::move(response))));
  });

  rpc::Client client(std::move(pair.a));
  const obs::TraceContext root = obs::TraceContext::Mint(/*sampled=*/true);
  std::uint64_t result = 0;
  {
    obs::ScopedTraceContext scope(root);
    result = client
                 .Call("answer", {}, rpc::CallOptions{5000ms, false})
                 .AsUint();
  }
  old_server.join();

  EXPECT_EQ(result, 42u);
  // The new client did attach its ctx (5-element frame)...
  EXPECT_EQ(seen_arity.load(), 5u);
  EXPECT_EQ(seen_trace.load(), root.trace_id);
  // ...and a piggyback-less reply degrades cleanly: the call span and
  // attempt span exist, but no wire pseudo-spans were fabricated.
  const auto spans = obs::GlobalTracer().Collect(root.trace_id);
  EXPECT_EQ(SpansNamed(spans, "rpc.call:answer").size(), 1u);
  EXPECT_EQ(SpansNamed(spans, "rpc.attempt:answer").size(), 1u);
  for (const auto& s : spans) {
    EXPECT_FALSE(s.name.starts_with("wire:")) << s.name;
  }
}

// ---------------------------------------------------------------------
// ndp.health: the in-flight table names the running handler and its
// trace id; budget numbers pass through.
// ---------------------------------------------------------------------

TEST(TraceHealth, InflightTableNamesBlockedHandlerWithItsTraceId) {
  ObsGuard guard;
  storage::MemoryObjectStore store;
  store.CreateBucket("data");
  store.Put("data", "t.vnd", MakeBrickedImage());

  rpc::Server server;
  ndp::NdpServer ndp_server{storage::FileGateway(store, "data")};
  ndp_server.SetMemoryBudget(&server.memory_budget());
  ndp_server.Bind(server);
  server.memory_budget().SetLimit(1u << 20);

  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  server.Bind("test.block", [&](const msgpack::Array&) {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
    return msgpack::Value(std::uint64_t{1});
  });

  net::TransportPair p1 = net::CreateInProcPair();
  net::TransportPair p2 = net::CreateInProcPair();
  std::thread s1([&, t = std::move(p1.b)] { server.ServeTransport(*t); });
  std::thread s2([&, t = std::move(p2.b)] { server.ServeTransport(*t); });

  std::uint64_t blocked_trace = 0;
  std::thread caller([&, transport = std::move(p1.a)]() mutable {
    const obs::TraceContext root = obs::TraceContext::Mint(/*sampled=*/true);
    obs::ScopedTraceContext scope(root);
    blocked_trace = root.trace_id;
    rpc::Client blocked(std::move(transport));
    blocked.Call("test.block", {}, rpc::CallOptions{10'000ms, false});
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }

  {
    ndp::NdpClient ndp(std::make_shared<rpc::Client>(std::move(p2.a)), "data");
    const ndp::NdpClient::HealthReport health = ndp.Health();
    EXPECT_FALSE(health.draining);
    EXPECT_GE(health.inflight, 1);
    EXPECT_EQ(health.mem_limit, 1u << 20);
    EXPECT_EQ(health.mem_in_use, 0u);
    bool found = false;
    for (const auto& r : health.requests) {
      if (r.method != "test.block") continue;
      found = true;
      EXPECT_EQ(r.trace_id, blocked_trace);
    }
    EXPECT_TRUE(found) << "blocked handler missing from inflight table";

    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    caller.join();
  }
  s1.join();
  s2.join();
}

// ---------------------------------------------------------------------
// ndp.trace with a trace_id filter moves exactly that trace's events.
// ---------------------------------------------------------------------

TEST(TraceScrape, TraceRpcFiltersByTraceIdAndLeavesTheRest) {
  ObsGuard guard;
  storage::MemoryObjectStore store;
  store.CreateBucket("data");
  rpc::Server server;
  ndp::NdpServer ndp_server{storage::FileGateway(store, "data")};
  ndp_server.Bind(server);
  net::TransportPair pair = net::CreateInProcPair();
  std::thread serve([&, t = std::move(pair.b)] { server.ServeTransport(*t); });

  using Ids = obs::Tracer::SpanIds;
  obs::GlobalTracer().Inject("server", "x.read", 10, 5, Ids{111, 1001, 0});
  obs::GlobalTracer().Inject("server", "x.scan", 20, 5, Ids{111, 1002, 1001});
  obs::GlobalTracer().Inject("server", "y.read", 30, 5, Ids{222, 2001, 0});

  {
    ndp::NdpClient ndp(std::make_shared<rpc::Client>(std::move(pair.a)),
                       "data");
    EXPECT_EQ(ndp.ScrapeTrace(111), 2u);
  }
  serve.join();

  // Trace 111 moved out of the "server's" buffer and back in through the
  // client-side merge; 222 never left.
  EXPECT_EQ(obs::GlobalTracer().Collect(111).size(), 2u);
  EXPECT_EQ(obs::GlobalTracer().Collect(222).size(), 1u);
}

// ---------------------------------------------------------------------
// Error-path audit: every failure path increments exactly one counter
// and journals exactly one event — no silent paths, no double counting.
// ---------------------------------------------------------------------

// One isolated client/server pair with a scriptable wire. Fresh per
// case, so counters and the journal start from zero-ish deltas.
struct AuditRig {
  storage::MemoryObjectStore store;
  rpc::Server server;
  std::unique_ptr<ndp::NdpServer> ndp_server;
  net::TransportPair pair;
  std::thread serve;
  net::FaultInjectingTransport* faults = nullptr;
  obs::Registry client_metrics;
  std::shared_ptr<rpc::Client> rpc;
  std::shared_ptr<ndp::NdpClient> ndp;

  explicit AuditRig(const Bytes& image, int max_attempts = 1) {
    store.CreateBucket("data");
    store.Put("data", "t.vnd", image);
    ndp_server =
        std::make_unique<ndp::NdpServer>(storage::FileGateway(store, "data"));
    ndp_server->SetMemoryBudget(&server.memory_budget());
    ndp_server->Bind(server);
    pair = net::CreateInProcPair();
    serve = std::thread([this] { server.ServeTransport(*pair.b); });
    auto faulty =
        std::make_unique<net::FaultInjectingTransport>(std::move(pair.a));
    faults = faulty.get();
    rpc = std::make_shared<rpc::Client>(std::move(faulty));
    rpc->SetMetrics(&client_metrics);
    ndp::NdpClientOptions options;
    options.call_timeout = std::chrono::milliseconds(200);
    options.retry.max_attempts = max_attempts;
    options.retry.base_delay = std::chrono::microseconds(500);
    options.retry.jitter = 0.0;
    ndp = std::make_shared<ndp::NdpClient>(rpc, "data", options);
  }

  ~AuditRig() {
    ndp.reset();
    rpc.reset();
    serve.join();
  }
};

using CounterReads =
    std::vector<std::pair<std::string, std::function<std::uint64_t()>>>;

struct AuditCase {
  const char* name;
  bool corrupt_image;
  int attempts;
  std::function<void(AuditRig&)> arm;      // scripts faults / budget
  std::function<void(AuditRig&)> trigger;  // performs + asserts the call
  // Counters that must each advance by exactly one.
  std::function<CounterReads(AuditRig&)> counters;
  // Exact multiset of events the trigger may journal.
  std::vector<std::string> events;
};

TEST(TraceAudit, EveryErrorPathEmitsOneCounterAndOneEvent) {
  ObsGuard guard;
  const Bytes clean = MakeBrickedImage();
  const Bytes corrupt = CorruptStraddlingBrick(clean, 0.1);
  ASSERT_FALSE(corrupt.empty());

  auto global = [](const char* name) {
    return [name] {
      return obs::DefaultRegistry().GetCounter(name).value();
    };
  };

  const std::vector<AuditCase> cases = {
      {"client timeout", false, 1,
       [](AuditRig& rig) {
         rig.faults->ScriptSend({net::FaultAction::Drop()});
       },
       [](AuditRig& rig) {
         EXPECT_THROW(rig.ndp->Stats("t.vnd", "v02"), TimeoutError);
       },
       [](AuditRig& rig) -> CounterReads {
         return {{"rpc_timeouts_total",
                  [&rig] {
                    return rig.client_metrics
                        .GetCounter("rpc_timeouts_total",
                                    {{"method", "ndp.stats"}})
                        .value();
                  }}};
       },
       {"rpc.timeout"}},

      {"retry then success", false, 2,
       [](AuditRig& rig) {
         rig.faults->ScriptSend(
             {net::FaultAction::Drop(), net::FaultAction::Pass()});
       },
       [](AuditRig& rig) {
         EXPECT_EQ(rig.ndp->Stats("t.vnd", "v02").count, 16u * 16u * 16u);
       },
       [](AuditRig& rig) -> CounterReads {
         return {{"rpc_timeouts_total",
                  [&rig] {
                    return rig.client_metrics
                        .GetCounter("rpc_timeouts_total",
                                    {{"method", "ndp.stats"}})
                        .value();
                  }},
                 {"rpc_retries_total", [&rig] {
                    return rig.client_metrics
                        .GetCounter("rpc_retries_total",
                                    {{"method", "ndp.stats"}})
                        .value();
                  }}};
       },
       {"rpc.timeout", "rpc.retry"}},

      {"budget shed", false, 1,
       [](AuditRig& rig) { rig.server.memory_budget().SetLimit(1); },
       [](AuditRig& rig) {
         EXPECT_THROW(rig.ndp->Contour("t.vnd", "v02", {0.1}), BusyError);
       },
       [](AuditRig& rig) -> CounterReads {
         return {{"rpc_busy_total",
                  [&rig] {
                    return rig.client_metrics
                        .GetCounter("rpc_busy_total",
                                    {{"method", "ndp.select"}})
                        .value();
                  }},
                 {"rpc_busy_rejected_total", [&rig] {
                    return rig.server.metrics()
                        .GetCounter("rpc_busy_rejected_total")
                        .value();
                  }}};
       },
       {"rpc.shed", "rpc.busy"}},

      {"transport death", false, 1,
       [](AuditRig& rig) {
         rig.faults->ScriptSend({net::FaultAction::Disconnect()});
       },
       [](AuditRig& rig) {
         EXPECT_THROW(rig.ndp->Stats("t.vnd", "v02"), PeerClosedError);
       },
       [](AuditRig& rig) -> CounterReads {
         return {{"rpc_transport_errors_total", [&rig] {
                    return rig.client_metrics
                        .GetCounter("rpc_transport_errors_total",
                                    {{"method", "ndp.stats"}})
                        .value();
                  }}};
       },
       {"rpc.transport_error"}},

      {"stale duplicated reply", false, 1,
       [](AuditRig& rig) {
         rig.faults->ScriptReceive({net::FaultAction::Duplicate()});
       },
       [](AuditRig& rig) {
         // Call 1's reply arrives twice; call 2 must skip the leftover.
         EXPECT_EQ(rig.ndp->Stats("t.vnd", "v02").count, 16u * 16u * 16u);
         EXPECT_EQ(rig.ndp->Stats("t.vnd", "v02").count, 16u * 16u * 16u);
       },
       [](AuditRig& rig) -> CounterReads {
         return {{"rpc_stale_replies_total", [&rig] {
                    return rig.client_metrics
                        .GetCounter("rpc_stale_replies_total")
                        .value();
                  }}};
       },
       {"rpc.stale_reply"}},

      {"unknown method", false, 1, nullptr,
       [](AuditRig& rig) {
         EXPECT_THROW(rig.rpc->Call("no.such.method", {},
                                    rpc::CallOptions{200ms, true}),
                      RpcError);
       },
       [](AuditRig& rig) -> CounterReads {
         return {{"rpc_unknown_method_total", [&rig] {
                    return rig.server.metrics()
                        .GetCounter("rpc_unknown_method_total")
                        .value();
                  }}};
       },
       {"rpc.unknown_method"}},

      {"handler error", false, 1, nullptr,
       [](AuditRig& rig) {
         EXPECT_THROW(rig.ndp->Stats("t.vnd", "no_such_array"), RpcError);
       },
       [](AuditRig& rig) -> CounterReads {
         return {{"rpc_errors_total", [&rig] {
                    return rig.server.metrics()
                        .GetCounter("rpc_errors_total",
                                    {{"method", "ndp.stats"}})
                        .value();
                  }}};
       },
       {"rpc.handler_error"}},

      {"persistent corruption ladder", true, 1, nullptr,
       [](AuditRig& rig) {
         EXPECT_THROW(rig.ndp->Contour("t.vnd", "v02", {0.1}),
                      CorruptDataError);
       },
       [global](AuditRig& rig) -> CounterReads {
         return {{"corrupt_brick_total", global("corrupt_brick_total")},
                 {"brick_reread_total", global("brick_reread_total")},
                 {"ndp_wholeblob_fallback_total",
                  [&rig] {
                    return rig.ndp_server->metrics()
                        .GetCounter("ndp_wholeblob_fallback_total")
                        .value();
                  }},
                 {"rpc_errors_total", [&rig] {
                    return rig.server.metrics()
                        .GetCounter("rpc_errors_total",
                                    {{"method", "ndp.select"}})
                        .value();
                  }}};
       },
       {"ndp.corrupt_brick", "ndp.brick_reread", "ndp.wholeblob_fallback",
        "rpc.corrupt_reply"}},

      {"baseline fallback", false, 1,
       [](AuditRig& rig) {
         rig.faults->ScriptSend({net::FaultAction::Drop()},
                                /*loop_last=*/true);
       },
       [](AuditRig& rig) {
         ndp::NdpContourSource source(rig.ndp, "t.vnd", "v02", {0.1});
         source.SetFallback(storage::FileGateway(rig.store, "data"));
         source.UpdateAndGetOutput();
         EXPECT_TRUE(source.last_stats().used_fallback);
       },
       [global](AuditRig& rig) -> CounterReads {
         return {{"ndp_fallback_total", global("ndp_fallback_total")},
                 {"rpc_timeouts_total", [&rig] {
                    return rig.client_metrics
                        .GetCounter("rpc_timeouts_total",
                                    {{"method", "ndp.select"}})
                        .value();
                  }}};
       },
       {"rpc.timeout", "ndp.fallback"}},
  };

  for (const AuditCase& c : cases) {
    SCOPED_TRACE(c.name);
    obs::GlobalEventLog().Clear();
    AuditRig rig(c.corrupt_image ? corrupt : clean, c.attempts);
    if (c.arm) c.arm(rig);
    const CounterReads counters = c.counters(rig);
    std::vector<std::uint64_t> before;
    before.reserve(counters.size());
    for (const auto& [label, read] : counters) before.push_back(read());

    c.trigger(rig);

    std::vector<std::string> got;
    for (const obs::LogEvent& e : obs::GlobalEventLog().Events()) {
      got.push_back(e.name);
    }
    std::vector<std::string> want = c.events;
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
    for (size_t i = 0; i < counters.size(); ++i) {
      EXPECT_EQ(counters[i].second() - before[i], 1u) << counters[i].first;
    }
  }
}

// The three server-local paths the table's client rig cannot reach:
// oversize frames, undecodable frames, and handler deadline overruns.

size_t CountEvents(const char* name) {
  size_t n = 0;
  for (const obs::LogEvent& e : obs::GlobalEventLog().Events()) {
    n += e.name == name ? 1 : 0;
  }
  return n;
}

TEST(TraceAudit, OversizeFrameIsCountedAndDropsTheConnection) {
  ObsGuard guard;
  rpc::Server server;
  rpc::ServerOptions options;
  options.max_frame_bytes = 64;
  server.SetOptions(options);
  server.Bind("echo", [](const msgpack::Array& p) {
    return p.empty() ? msgpack::Value() : p[0];
  });
  net::TransportPair pair = net::CreateInProcPair();
  std::thread serve([&, t = std::move(pair.b)] { server.ServeTransport(*t); });

  msgpack::Array req;
  req.emplace_back(rpc::kRequestType);
  req.emplace_back(std::uint64_t{1});
  req.emplace_back("echo");
  req.emplace_back(msgpack::Array{msgpack::Value(std::string(200, 'z'))});
  pair.a->Send(EncodeRequestFrame(std::move(req)));
  serve.join();  // the poisoned connection is dropped, not served

  EXPECT_EQ(server.metrics().GetCounter("rpc_oversize_frames_total").value(),
            1u);
  EXPECT_EQ(CountEvents("rpc.oversize_frame"), 1u);
}

TEST(TraceAudit, MalformedFrameIsCountedAndDropsTheConnection) {
  ObsGuard guard;
  rpc::Server server;
  server.Bind("echo", [](const msgpack::Array& p) {
    return p.empty() ? msgpack::Value() : p[0];
  });
  net::TransportPair pair = net::CreateInProcPair();
  std::thread serve([&, t = std::move(pair.b)] { server.ServeTransport(*t); });

  const Bytes garbage = {Byte{0xc1}, Byte{0xff}, Byte{0x00}};
  pair.a->Send(garbage);
  serve.join();

  EXPECT_EQ(server.metrics().GetCounter("rpc_malformed_frames_total").value(),
            1u);
  EXPECT_EQ(CountEvents("rpc.malformed_frame"), 1u);
}

TEST(TraceAudit, HandlerDeadlineOverrunIsCountedAndReported) {
  ObsGuard guard;
  rpc::Server server;
  rpc::ServerOptions options;
  options.request_deadline = std::chrono::milliseconds(1);
  server.SetOptions(options);
  server.Bind("slow", [](const msgpack::Array&) {
    std::this_thread::sleep_for(20ms);
    return msgpack::Value(std::uint64_t{1});
  });

  msgpack::Array req;
  req.emplace_back(rpc::kRequestType);
  req.emplace_back(std::uint64_t{1});
  req.emplace_back("slow");
  req.emplace_back(msgpack::Array{});
  const msgpack::Value reply =
      msgpack::Decode(server.Dispatch(EncodeRequestFrame(std::move(req))));
  const auto& fields = reply.As<msgpack::Array>();
  ASSERT_GE(fields.size(), 4u);
  ASSERT_FALSE(fields[2].IsNil());
  EXPECT_NE(fields[2].As<std::string>().find("deadline exceeded"),
            std::string::npos);
  EXPECT_EQ(server.metrics()
                .GetCounter("rpc_deadline_exceeded_total",
                            {{"method", "slow"}})
                .value(),
            1u);
  EXPECT_EQ(CountEvents("rpc.deadline"), 1u);
}

TEST(TraceAudit, DrainTimeoutIsCountedAndReported) {
  ObsGuard guard;
  rpc::Server server;
  rpc::ServerOptions options;
  options.drain_deadline = std::chrono::milliseconds(50);
  server.SetOptions(options);

  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  server.Bind("block", [&](const msgpack::Array&) {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
    return msgpack::Value(std::uint64_t{1});
  });

  net::TransportPair pair = net::CreateInProcPair();
  std::thread serve([&, t = std::move(pair.b)] { server.ServeTransport(*t); });
  std::thread caller([&, t = std::move(pair.a)]() mutable {
    rpc::Client client(std::move(t));
    try {
      client.Call("block", {}, rpc::CallOptions{2000ms, false});
    } catch (const Error&) {
      // The reply may be lost to the stopping server; only the drain
      // accounting matters here.
    }
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }

  EXPECT_FALSE(server.Stop());  // handler still running past the deadline
  EXPECT_EQ(server.metrics().GetCounter("rpc_drain_timeouts_total").value(),
            1u);
  EXPECT_EQ(CountEvents("rpc.drain_timeout"), 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  caller.join();
  serve.join();
}

}  // namespace
}  // namespace vizndp
