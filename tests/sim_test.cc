#include <gtest/gtest.h>

#include "compress/codec.h"
#include "contour/select.h"
#include "sim/impact.h"
#include "sim/noise.h"
#include "sim/nyx.h"

namespace vizndp::sim {
namespace {

TEST(Noise, LatticeRandomIsDeterministicAndUniformish) {
  EXPECT_EQ(LatticeRandom(1, 2, 3, 42), LatticeRandom(1, 2, 3, 42));
  EXPECT_NE(LatticeRandom(1, 2, 3, 42), LatticeRandom(1, 2, 4, 42));
  EXPECT_NE(LatticeRandom(1, 2, 3, 42), LatticeRandom(1, 2, 3, 43));
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const double v = LatticeRandom(i, -i, i * 7, 9);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

TEST(Noise, ValueNoiseInterpolatesLatticeValues) {
  // At integer coordinates the noise equals the lattice random.
  EXPECT_DOUBLE_EQ(ValueNoise(3.0, 4.0, 5.0, 7), LatticeRandom(3, 4, 5, 7));
  // Between lattice points it stays within the hull of nearby values.
  const double v = ValueNoise(3.5, 4.5, 5.5, 7);
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0);
}

TEST(Noise, ValueNoiseIsContinuous) {
  const double a = ValueNoise(1.0, 2.0, 3.0, 11);
  const double b = ValueNoise(1.0 + 1e-7, 2.0, 3.0, 11);
  EXPECT_NEAR(a, b, 1e-5);
}

TEST(Impact, ArrayNamesMatchPaperTableI) {
  const auto& names = ImpactArrayNames();
  ASSERT_EQ(names.size(), 11u);
  EXPECT_EQ(names.front(), "rho");
  EXPECT_EQ(names[9], "v02");
  EXPECT_EQ(names[10], "v03");
}

TEST(Impact, TimestepLabelsSpanTheRun) {
  ImpactConfig cfg;
  const auto labels = ImpactTimestepLabels(cfg, 9);
  ASSERT_EQ(labels.size(), 9u);
  EXPECT_EQ(labels.front(), 0);
  EXPECT_EQ(labels.back(), 48013);
  for (size_t i = 1; i < labels.size(); ++i) {
    EXPECT_GT(labels[i], labels[i - 1]);
  }
}

TEST(Impact, DeterministicForSameSeed) {
  ImpactConfig cfg;
  cfg.n = 12;
  const grid::Dataset a = GenerateImpactTimestep(cfg, 24006, {"v02", "v03"});
  const grid::Dataset b = GenerateImpactTimestep(cfg, 24006, {"v02", "v03"});
  EXPECT_EQ(a, b);
  cfg.seed += 1;
  const grid::Dataset c = GenerateImpactTimestep(cfg, 24006, {"v02", "v03"});
  EXPECT_NE(a, c);
}

TEST(Impact, VolumeFractionsStayInRange) {
  ImpactConfig cfg;
  cfg.n = 20;
  for (const std::int64_t t : {0LL, 24006LL, 48013LL}) {
    const grid::Dataset ds = GenerateImpactTimestep(cfg, t, {"v02", "v03"});
    for (const char* name : {"v02", "v03"}) {
      const auto [lo, hi] = ds.GetArray(name).Range();
      EXPECT_GE(lo, 0.0) << name << " t=" << t;
      EXPECT_LE(hi, 1.0) << name << " t=" << t;
    }
  }
}

TEST(Impact, OceanExistsAndAsteroidIsSmall) {
  ImpactConfig cfg;
  cfg.n = 24;
  const grid::Dataset ds = GenerateImpactTimestep(cfg, 0, {"v02", "v03"});
  double water = 0, asteroid = 0;
  const auto v02 = ds.GetArray("v02").View<float>();
  const auto v03 = ds.GetArray("v03").View<float>();
  for (size_t i = 0; i < v02.size(); ++i) {
    water += v02[i];
    asteroid += v03[i];
  }
  // Ocean fills roughly a third of the domain; the asteroid is tiny.
  EXPECT_GT(water / static_cast<double>(v02.size()), 0.2);
  EXPECT_LT(asteroid / static_cast<double>(v03.size()), 0.01);
  EXPECT_GT(asteroid, 0.0);
}

TEST(Impact, AsteroidFallsThenImpacts) {
  ImpactConfig cfg;
  cfg.n = 24;
  // Weighted mean asteroid height must decrease over pre-impact steps.
  double prev_height = 2.0;
  for (const std::int64_t t : {0LL, 10000LL, 20000LL}) {
    const grid::Dataset ds = GenerateImpactTimestep(cfg, t, {"v03"});
    const auto v03 = ds.GetArray("v03").View<float>();
    double mass = 0, moment = 0;
    for (std::int64_t k = 0; k < cfg.n; ++k) {
      for (std::int64_t j = 0; j < cfg.n; ++j) {
        for (std::int64_t i = 0; i < cfg.n; ++i) {
          const double v = v03[static_cast<size_t>(
              ds.dims().Index(i, j, k))];
          mass += v;
          moment += v * static_cast<double>(k);
        }
      }
    }
    ASSERT_GT(mass, 0.0) << "no asteroid at t=" << t;
    const double height = moment / mass / static_cast<double>(cfg.n);
    EXPECT_LT(height, prev_height) << "t=" << t;
    prev_height = height;
  }
}

TEST(Impact, CompressionRatioDecaysOverTime) {
  ImpactConfig cfg;
  cfg.n = 48;
  const auto gzip = compress::MakeCodec("gzip");
  double first_ratio = 0, last_ratio = 0;
  for (const std::int64_t t : {0LL, 48013LL}) {
    const grid::Dataset ds = GenerateImpactTimestep(cfg, t, {"v02"});
    const auto& a = ds.GetArray("v02");
    const double ratio = static_cast<double>(a.byte_size()) /
                         static_cast<double>(gzip->Compress(a.raw()).size());
    (t == 0 ? first_ratio : last_ratio) = ratio;
  }
  // Paper Fig. 5a: ratio is far higher at t=0 and decays substantially.
  EXPECT_GT(first_ratio, 5.0 * last_ratio);
  EXPECT_GT(last_ratio, 2.0);
}

TEST(Impact, V03MoreSelectiveThanV02) {
  ImpactConfig cfg;
  cfg.n = 48;
  const grid::Dataset ds = GenerateImpactTimestep(cfg, 24006, {"v02", "v03"});
  const double isos[] = {0.1};
  const auto v02_count =
      contour::CountInterestingPoints(ds.dims(), ds.GetArray("v02"), isos);
  const auto v03_count =
      contour::CountInterestingPoints(ds.dims(), ds.GetArray("v03"), isos);
  // Paper Fig. 6: the asteroid spans far less mesh than the ocean.
  EXPECT_LT(v03_count * 4, v02_count);
  EXPECT_GT(v03_count, 0);
}

TEST(Impact, HigherContourValuesAreMoreSelective) {
  ImpactConfig cfg;
  cfg.n = 48;
  const grid::Dataset ds = GenerateImpactTimestep(cfg, 36009, {"v02"});
  const double lo[] = {0.1};
  const double hi[] = {0.9};
  const auto count_lo =
      contour::CountInterestingPoints(ds.dims(), ds.GetArray("v02"), lo);
  const auto count_hi =
      contour::CountInterestingPoints(ds.dims(), ds.GetArray("v02"), hi);
  EXPECT_LT(count_hi, count_lo);
}

TEST(Impact, SelectedSubsetsOnly) {
  ImpactConfig cfg;
  cfg.n = 8;
  const grid::Dataset two = GenerateImpactTimestep(cfg, 0, {"v02", "v03"});
  EXPECT_EQ(two.ArrayCount(), 2u);
  const grid::Dataset all = GenerateImpactTimestep(cfg, 0);
  EXPECT_EQ(all.ArrayCount(), 11u);
  // The shared arrays agree between the two invocations.
  EXPECT_EQ(all.GetArray("v02"), two.GetArray("v02"));
  EXPECT_THROW(GenerateImpactTimestep(cfg, 0, {"bogus"}), Error);
}

TEST(Impact, RejectsBadTimestep) {
  ImpactConfig cfg;
  cfg.n = 8;
  EXPECT_THROW(GenerateImpactTimestep(cfg, -1), Error);
  EXPECT_THROW(GenerateImpactTimestep(cfg, cfg.final_timestep + 1), Error);
}

TEST(Nyx, ArraysAndDeterminism) {
  NyxConfig cfg;
  cfg.n = 12;
  const grid::Dataset a = GenerateNyx(cfg);
  EXPECT_EQ(a.ArrayCount(), 6u);
  EXPECT_NE(a.FindArray("baryon_density"), nullptr);
  const grid::Dataset b = GenerateNyx(cfg);
  EXPECT_EQ(a, b);
}

TEST(Nyx, BaryonDensityCrossesHaloThreshold) {
  NyxConfig cfg;
  cfg.n = 48;
  const grid::Dataset ds = GenerateNyx(cfg, {"baryon_density"});
  const auto [lo, hi] = ds.GetArray("baryon_density").Range();
  EXPECT_GT(lo, 0.0);
  EXPECT_GT(hi, kHaloThreshold);  // halos exist
  EXPECT_LT(lo, kHaloThreshold);  // voids exist
}

TEST(Nyx, HaloContourSelectivityIsVeryLow) {
  NyxConfig cfg;
  cfg.n = 64;
  const grid::Dataset ds = GenerateNyx(cfg, {"baryon_density"});
  const double iso[] = {kHaloThreshold};
  const auto count = contour::CountInterestingPoints(
      ds.dims(), ds.GetArray("baryon_density"), iso);
  const double selectivity =
      static_cast<double>(count) / static_cast<double>(ds.dims().PointCount());
  // Paper Fig. 12 reports 0.06%; at our resolution anything below 1% and
  // above zero preserves the story.
  EXPECT_GT(count, 0);
  EXPECT_LT(selectivity, 0.01);
}

TEST(Nyx, EffectivelyIncompressible) {
  NyxConfig cfg;
  cfg.n = 48;
  const grid::Dataset ds = GenerateNyx(cfg, {"baryon_density"});
  const auto& a = ds.GetArray("baryon_density");
  const auto gzip_size = compress::MakeCodec("gzip")->Compress(a.raw()).size();
  const auto lz4_size = compress::MakeCodec("lz4")->Compress(a.raw()).size();
  // Paper Sec. VII: GZip managed only ~11%; LZ4 essentially nothing.
  EXPECT_GT(static_cast<double>(gzip_size),
            0.8 * static_cast<double>(a.byte_size()));
  EXPECT_GT(static_cast<double>(lz4_size),
            0.95 * static_cast<double>(a.byte_size()));
}

}  // namespace
}  // namespace vizndp::sim
