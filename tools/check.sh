#!/usr/bin/env bash
# Repo check: tier-1 verify (full build + ctest), then an
# address/UB-sanitizer build of the concurrency-heavy tests plus a
# hostile-input fuzz smoke, then the overload tests under tsan.
#
#   tools/check.sh            # everything
#   SKIP_ASAN=1 tools/check.sh  # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . > /dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  echo "== asan/ubsan: obs_test + net_test + rpc_test + fault_test + fuzz =="
  cmake --preset asan > /dev/null
  cmake --build build-asan -j"$(nproc)" --target obs_test net_test rpc_test \
    fault_test fuzz_test integrity_test vizndp_tool
  ./build-asan/tests/obs_test
  ./build-asan/tests/net_test
  ./build-asan/tests/rpc_test
  ./build-asan/tests/fault_test
  ./build-asan/tests/fuzz_test
  ./build-asan/tests/integrity_test
  # Fuzz smoke under the sanitizers: 1500 mutations x 7 decoder targets
  # (> 10k hostile inputs) at a fixed seed, so a CI failure replays
  # byte-for-byte with the same command.
  ./build-asan/tools/vizndp_tool fuzz --seed 1 --iters 1500

  echo "== tsan: overload + rpc (admission/drain races) =="
  cmake --preset tsan > /dev/null
  cmake --build build-tsan -j"$(nproc)" --target overload_test rpc_test
  ./build-tsan/tests/overload_test
  ./build-tsan/tests/rpc_test
fi

echo "== all checks passed =="
