#!/usr/bin/env bash
# Repo check: tier-1 verify (full build + ctest), then an
# address/UB-sanitizer build of the concurrency-heavy tests plus a
# hostile-input fuzz smoke, the overload/cluster tests under tsan, a
# storage-fault stage (retry ladder + scrubber under tsan, seeded
# disk-fault chaos), a chaos stage (seeded fault schedules under
# tsan plus a real TCP kill -> restart -> serves-again exercise), and a
# stream stage (chunked replies + cursor resume + cancel under
# asan/tsan, chunk-boundary kill chaos, a TCP resume-after-kill e2e,
# and the <2% streaming-overhead guard).
#
#   tools/check.sh            # everything
#   SKIP_ASAN=1 tools/check.sh  # tier-1 only
#
# Every stage is fail-fast: the first failing command aborts the run
# and the ERR trap names the stage that died.
set -euo pipefail
cd "$(dirname "$0")/.."

CURRENT_STAGE="(startup)"
stage() {
  CURRENT_STAGE="$1"
  echo "== $1 =="
}
trap 'echo "FAILED stage: $CURRENT_STAGE" >&2' ERR

stage "tier-1: configure + build + ctest"
cmake -B build -S . > /dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  stage "asan/ubsan: obs + net + rpc + fault + integrity + trace + storage + fuzz"
  cmake --preset asan > /dev/null
  cmake --build build-asan -j"$(nproc)" --target obs_test net_test rpc_test \
    fault_test fuzz_test integrity_test trace_test storage_test \
    store_fault_test scrub_test vizndp_tool
  ./build-asan/tests/obs_test
  ./build-asan/tests/net_test
  ./build-asan/tests/rpc_test
  ./build-asan/tests/fault_test
  ./build-asan/tests/fuzz_test
  ./build-asan/tests/integrity_test
  ./build-asan/tests/trace_test
  # The storage-fault suites (`ctest -L storage`): injected EIO/rot/short
  # reads, the typed retry ladder, and scrub-and-quarantine — heavy on
  # buffer slicing, so asan watches every byte.
  ./build-asan/tests/storage_test
  ./build-asan/tests/store_fault_test
  ./build-asan/tests/scrub_test
  # Fuzz smoke under the sanitizers: 1500 mutations x 8 decoder targets
  # (> 10k hostile inputs) at a fixed seed, so a CI failure replays
  # byte-for-byte with the same command.
  ./build-asan/tools/vizndp_tool fuzz --seed 1 --iters 1500

  stage "tsan: overload + rpc + trace + cluster (admission/drain/merge/hedge races)"
  cmake --preset tsan > /dev/null
  cmake --build build-tsan -j"$(nproc)" --target overload_test rpc_test \
    trace_test cluster_test chaos_test vizndp_tool
  ./build-tsan/tests/overload_test
  ./build-tsan/tests/rpc_test
  ./build-tsan/tests/trace_test
  # The sharded-serving suite (`ctest -L cluster`) is the most
  # thread-hostile code in the tree: hedge races, loser parking, and
  # concurrent failover all run under tsan here.
  ./build-tsan/tests/cluster_test

  stage "storage faults: retry ladder + scrubber under tsan, seeded disk-fault chaos"
  cmake --build build-tsan -j"$(nproc)" --target store_fault_test scrub_test
  # The scrubber thread races the fetch path and the quarantine set by
  # design; tsan referees. The disk-fault chaos schedule (store EIO
  # storms, slow-disk windows, a forced bit-rot quarantine -> re-Put ->
  # readmit round trip per schedule) replays exactly with the same seed.
  ./build-tsan/tests/store_fault_test
  ./build-tsan/tests/scrub_test
  ./build-tsan/tools/vizndp_tool chaos --seed 80886 --schedules 2 --steps 8
  # Scrub-overhead guard (<2% fetch latency at the production cadence;
  # the tier-1 build, not tsan — this measures time, not races). The
  # bench prints [warn] when over budget; that fails the stage.
  SCRUB_LOG="$(mktemp)"
  VIZNDP_BENCH_N=64 VIZNDP_BENCH_REPS=4 ./build/bench/abl_scrub_overhead \
    2> "$SCRUB_LOG"
  cat "$SCRUB_LOG" >&2
  ! grep -q '\[warn\]' "$SCRUB_LOG"
  rm -f "$SCRUB_LOG"

  stage "chaos: seeded kill/restart/delay/corrupt schedules under tsan"
  # The membership suite (monitor thread vs. fetch path vs. testbed
  # teardown) and a fixed-seed chaos run: every fetch bit-identical to
  # the single-server oracle while nodes die, rejoin, stall, and shed.
  # A failure replays exactly with the same seed.
  ./build-tsan/tests/chaos_test
  ./build-tsan/tools/vizndp_tool chaos --seed 7 --schedules 3

  stage "stream: chunked replies, resume, cancel under asan/tsan + chunk-boundary chaos"
  # The streaming-reply suite (`ctest -L stream`): chunked fetch, cursor
  # resume across injected mid-stream faults, cancellation accounting,
  # and the stall deadline — under asan (payload slicing, CRC checks)
  # and tsan (the cancel frame races the emitting handler by design).
  cmake --build build-asan -j"$(nproc)" --target stream_test
  ./build-asan/tests/stream_test
  cmake --build build-tsan -j"$(nproc)" --target stream_test
  ./build-tsan/tests/stream_test
  # Seeded chaos with the streaming drills: every schedule ends with a
  # client cancel (accounted exactly once) and a chunk-boundary kill
  # that must resume from its cursor on a replica, bit-identical to the
  # oracle. A failure replays exactly with the same seed.
  ./build-tsan/tools/vizndp_tool chaos --seed 4242 --schedules 2
  # Two-process TCP e2e: two replicas over real sockets; shard 0's
  # connection delivers eight frames, then hard-fails forever — from
  # the client that is exactly a killed node. The stream must resume
  # from its cursor on the replica and reproduce the reference
  # geometry bit for bit, and journal the resume.
  E2E_DIR="$(mktemp -d)"
  trap 'kill "${R0_PID:-}" "${R1_PID:-}" 2> /dev/null || true; \
       rm -rf "$E2E_DIR"' EXIT
  mkdir -p "$E2E_DIR/data"
  ./build-tsan/tools/vizndp_tool gen --kind impact --n 32 --bricks 8 \
    --out "$E2E_DIR/data/ts.vnd"
  ./build-tsan/tools/vizndp_tool serve --dir "$E2E_DIR" --port 0 \
    > "$E2E_DIR/r0.log" & R0_PID=$!
  ./build-tsan/tools/vizndp_tool serve --dir "$E2E_DIR" --port 0 \
    > "$E2E_DIR/r1.log" & R1_PID=$!
  for i in 0 1; do
    for _ in $(seq 1 50); do
      grep -q '^port:' "$E2E_DIR/r$i.log" && break
      sleep 0.2
    done
  done
  R0="$(awk '/^port:/{print $2}' "$E2E_DIR/r0.log")"
  R1="$(awk '/^port:/{print $2}' "$E2E_DIR/r1.log")"
  REF_TRIS="$(./build-tsan/tools/vizndp_tool fetch --port "$R0" \
    --key ts.vnd --array v02 --iso 0.5 --timeout-ms 10000 \
    | sed -n 's/^NDP contour: \([0-9]*\) triangles.*/\1/p')"
  ./build-tsan/tools/vizndp_tool fetch \
    --connect "127.0.0.1:$R0" --connect "127.0.0.1:$R1" --replicas 2 \
    --stream --chunk-bricks 1 --no-progress \
    --shard-fault "0:recv.pass*8,recv.down" \
    --journal "$E2E_DIR/journal.json" \
    --key ts.vnd --array v02 --iso 0.5 --timeout-ms 15000 \
    | tee "$E2E_DIR/stream.log"
  grep -q "^NDP contour: $REF_TRIS triangles" "$E2E_DIR/stream.log"
  grep -Eq 'stream: .* [1-9][0-9]* resume' "$E2E_DIR/stream.log"
  grep -q 'ndp.stream_resume' "$E2E_DIR/journal.json"
  kill "$R0_PID" "$R1_PID" 2> /dev/null || true
  wait "$R0_PID" "$R1_PID" 2> /dev/null || true
  rm -rf "$E2E_DIR"
  trap - EXIT
  # Streaming-overhead guard (<2% median fetch latency at the
  # production chunk size vs the monolithic reply; the tier-1 build —
  # this measures time, not races). The bench prints [warn] when over
  # budget; that fails the stage.
  STREAM_LOG="$(mktemp)"
  ./build/bench/abl_stream_overhead 2> "$STREAM_LOG"
  cat "$STREAM_LOG" >&2
  ! grep -q '\[warn\]' "$STREAM_LOG"
  rm -f "$STREAM_LOG"

  stage "obs-fleet: windowed quantiles + merge algebra + SLO burn under asan/tsan"
  # The fleet observability plane: merge-algebra property tests, SLO
  # burn-rate edges, and the FleetScraper over a live cluster testbed —
  # under asan (buffer-heavy snapshot merging) and tsan (the windowed
  # histogram's record path races its rotation by design).
  cmake --build build-asan -j"$(nproc)" --target fleet_test
  ./build-asan/tests/fleet_test
  cmake --build build-tsan -j"$(nproc)" --target obs_test fleet_test
  ./build-tsan/tests/obs_test
  ./build-tsan/tests/fleet_test
  # One seeded chaos schedule closes the SLO loop: the step-0 kill must
  # burn the availability SLO (slo.burn_alert, audited 1:1 with its
  # counter) and the recovery tail must clear the alert and restore the
  # error budget — RunChaos reports any miss as a violation.
  ./build-tsan/tools/vizndp_tool chaos --seed 9021 --schedules 1
  # Window record-path guard: the sliding-window layer must stay under
  # 2% of a fetch (tier-1 build — this measures time, not races). The
  # bench prints [warn] when over budget; that fails the stage.
  WIN_LOG="$(mktemp)"
  VIZNDP_BENCH_N=64 VIZNDP_BENCH_REPS=4 ./build/bench/abl_window_overhead \
    2> "$WIN_LOG"
  cat "$WIN_LOG" >&2
  ! grep -q '\[warn\]' "$WIN_LOG"
  rm -f "$WIN_LOG"

  stage "tsan e2e: fleet top dashboard over TCP"
  # Real two-node fleet: generate, serve on OS-assigned ports, push one
  # fetch of traffic through, then scrape both nodes with `top --once`.
  # The JSON must carry both nodes reachable with per-node and
  # fleet-merged windowed quantiles plus SLO status; the prom form must
  # label per-node series.
  E2E_DIR="$(mktemp -d)"
  trap 'kill "${T0_PID:-}" "${T1_PID:-}" 2> /dev/null || true; \
       rm -rf "$E2E_DIR"' EXIT
  mkdir -p "$E2E_DIR/data"
  ./build-tsan/tools/vizndp_tool gen --kind impact --n 32 --bricks 8 \
    --out "$E2E_DIR/data/ts.vnd"
  ./build-tsan/tools/vizndp_tool serve --dir "$E2E_DIR" --port 0 \
    > "$E2E_DIR/t0.log" & T0_PID=$!
  ./build-tsan/tools/vizndp_tool serve --dir "$E2E_DIR" --port 0 \
    > "$E2E_DIR/t1.log" & T1_PID=$!
  for i in 0 1; do
    for _ in $(seq 1 50); do
      grep -q '^port:' "$E2E_DIR/t$i.log" && break
      sleep 0.2
    done
  done
  Q0="$(awk '/^port:/{print $2}' "$E2E_DIR/t0.log")"
  Q1="$(awk '/^port:/{print $2}' "$E2E_DIR/t1.log")"
  ./build-tsan/tools/vizndp_tool fetch \
    --connect "127.0.0.1:$Q0" --connect "127.0.0.1:$Q1" --replicas 1 \
    --key ts.vnd --array v02 --iso 0.5 --timeout-ms 10000 > /dev/null
  ./build-tsan/tools/vizndp_tool top \
    --connect "127.0.0.1:$Q0" --connect "127.0.0.1:$Q1" \
    --once --format json > "$E2E_DIR/top.json"
  grep -q '"reachable":2' "$E2E_DIR/top.json"
  grep -q '"per_node"' "$E2E_DIR/top.json"
  grep -q '"fleet_window"' "$E2E_DIR/top.json"
  grep -q '"slo"' "$E2E_DIR/top.json"
  ./build-tsan/tools/vizndp_tool top \
    --connect "127.0.0.1:$Q0" --connect "127.0.0.1:$Q1" \
    --once --format prom > "$E2E_DIR/top.prom"
  grep -q 'node="1"' "$E2E_DIR/top.prom"
  grep -q 'fleet_scrape_total' "$E2E_DIR/top.prom"
  kill "$T0_PID" "$T1_PID" 2> /dev/null || true
  wait "$T0_PID" "$T1_PID" 2> /dev/null || true
  rm -rf "$E2E_DIR"
  trap - EXIT

  stage "tsan e2e: fetch --trace-merged over TCP with faults"
  # Real two-process run of the distributed-tracing path: a TCP storage
  # node, a lossy client connection, and a merged-timeline export. The
  # grep asserts the file is Chrome-tracing JSON with all three tracks.
  E2E_DIR="$(mktemp -d)"
  trap 'kill "${SERVE_PID:-}" 2> /dev/null || true; rm -rf "$E2E_DIR"' EXIT
  mkdir -p "$E2E_DIR/data"
  ./build-tsan/tools/vizndp_tool gen --kind impact --n 32 \
    --out "$E2E_DIR/data/ts.vnd"
  ./build-tsan/tools/vizndp_tool serve --dir "$E2E_DIR" --port 47899 &
  SERVE_PID=$!
  sleep 1
  ./build-tsan/tools/vizndp_tool fetch --port 47899 --key ts.vnd \
    --array v02 --iso 0.5 --timeout-ms 5000 --retries 2 \
    --fault send.drop*1 --trace-merged "$E2E_DIR/trace.json"
  kill -INT "$SERVE_PID"
  wait "$SERVE_PID"
  grep -q '"traceEvents"' "$E2E_DIR/trace.json"
  for track in client server wire; do
    grep -q "\"name\":\"$track\"" "$E2E_DIR/trace.json"
  done
  rm -rf "$E2E_DIR"
  trap - EXIT

  stage "tsan e2e: sharded fetch over TCP, one shard killed, one delayed, then restarted"
  # Real multi-process run of the sharded serving tier: three storage
  # nodes on OS-assigned ports (parsed from the `port:` line), one node
  # killed before the fetch, another answering 300 ms late so the hedge
  # fires. The degraded fetch must produce the same triangle count as
  # the single-server reference, win at least one hedge, and record the
  # failover in the event journal. Then the killed node is restarted on
  # its old port and must serve the full contour again — the TCP half of
  # the kill -> restart -> rejoin story.
  E2E_DIR="$(mktemp -d)"
  trap 'kill "${S0_PID:-}" "${S1_PID:-}" "${S2_PID:-}" 2> /dev/null || true; \
       rm -rf "$E2E_DIR"' EXIT
  mkdir -p "$E2E_DIR/data"
  ./build-tsan/tools/vizndp_tool gen --kind impact --n 32 --bricks 8 \
    --out "$E2E_DIR/data/ts.vnd"
  ./build-tsan/tools/vizndp_tool serve --dir "$E2E_DIR" --port 0 \
    > "$E2E_DIR/s0.log" & S0_PID=$!
  ./build-tsan/tools/vizndp_tool serve --dir "$E2E_DIR" --port 0 \
    > "$E2E_DIR/s1.log" & S1_PID=$!
  ./build-tsan/tools/vizndp_tool serve --dir "$E2E_DIR" --port 0 \
    > "$E2E_DIR/s2.log" & S2_PID=$!
  for i in 0 1 2; do
    for _ in $(seq 1 50); do
      grep -q '^port:' "$E2E_DIR/s$i.log" && break
      sleep 0.2
    done
  done
  P0="$(awk '/^port:/{print $2}' "$E2E_DIR/s0.log")"
  P1="$(awk '/^port:/{print $2}' "$E2E_DIR/s1.log")"
  P2="$(awk '/^port:/{print $2}' "$E2E_DIR/s2.log")"
  REF_TRIS="$(./build-tsan/tools/vizndp_tool fetch --port "$P0" \
    --key ts.vnd --array v02 --iso 0.5 --timeout-ms 10000 \
    | sed -n 's/^NDP contour: \([0-9]*\) triangles.*/\1/p')"
  kill "$S2_PID"; wait "$S2_PID" 2> /dev/null || true
  ./build-tsan/tools/vizndp_tool fetch \
    --connect "127.0.0.1:$P0" --connect "127.0.0.1:$P1" \
    --connect "127.0.0.1:$P2" --replicas 2 --hedge-ms 40 \
    --shard-fault "1:recv.delay=300000+" --journal "$E2E_DIR/journal.json" \
    --key ts.vnd --array v02 --iso 0.5 --timeout-ms 10000 \
    | tee "$E2E_DIR/fetch.log"
  grep -q "^NDP contour: $REF_TRIS triangles" "$E2E_DIR/fetch.log"
  grep -Eq 'won [1-9][0-9]*' "$E2E_DIR/fetch.log"
  grep -q 'cluster.failover' "$E2E_DIR/journal.json"
  grep -q 'cluster.hedge_won' "$E2E_DIR/journal.json"
  # Restart the killed node on its old port; a late-starting server is
  # reachable because the client's transports dial lazily and re-dial
  # stale connections. The fresh incarnation must serve the contour.
  ./build-tsan/tools/vizndp_tool serve --dir "$E2E_DIR" --port "$P2" \
    > "$E2E_DIR/s2b.log" & S2_PID=$!
  for _ in $(seq 1 50); do
    grep -q '^port:' "$E2E_DIR/s2b.log" && break
    sleep 0.2
  done
  ./build-tsan/tools/vizndp_tool fetch --port "$P2" --key ts.vnd \
    --array v02 --iso 0.5 --timeout-ms 10000 | tee "$E2E_DIR/rejoin.log"
  grep -q "^NDP contour: $REF_TRIS triangles" "$E2E_DIR/rejoin.log"
  # And the full fleet serves sharded again, restarted node included.
  ./build-tsan/tools/vizndp_tool fetch \
    --connect "127.0.0.1:$P0" --connect "127.0.0.1:$P1" \
    --connect "127.0.0.1:$P2" --replicas 2 \
    --key ts.vnd --array v02 --iso 0.5 --timeout-ms 10000 \
    | tee "$E2E_DIR/healed.log"
  grep -q "^NDP contour: $REF_TRIS triangles" "$E2E_DIR/healed.log"
  kill "$S0_PID" "$S1_PID" "$S2_PID" 2> /dev/null || true
  wait "$S0_PID" "$S1_PID" "$S2_PID" 2> /dev/null || true
  rm -rf "$E2E_DIR"
  trap - EXIT
fi

CURRENT_STAGE="(done)"
echo "== all checks passed =="
