#!/usr/bin/env bash
# Repo check: tier-1 verify (full build + ctest), then an
# address/UB-sanitizer build of the concurrency-heavy tests.
#
#   tools/check.sh            # everything
#   SKIP_ASAN=1 tools/check.sh  # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . > /dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  echo "== asan/ubsan: obs_test + net_test + rpc_test + fault_test =="
  cmake --preset asan > /dev/null
  cmake --build build-asan -j"$(nproc)" --target obs_test net_test rpc_test \
    fault_test
  ./build-asan/tests/obs_test
  ./build-asan/tests/net_test
  ./build-asan/tests/rpc_test
  ./build-asan/tests/fault_test
fi

echo "== all checks passed =="
