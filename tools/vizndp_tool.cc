// vizndp_tool — command-line front end for the library.
//
//   vizndp_tool gen     --kind impact|nyx --out FILE [--n N] [--timestep T]
//                       [--codec none|gzip|lz4|rle|zlib] [--arrays a,b,...]
//   vizndp_tool info    --in FILE
//   vizndp_tool contour --in FILE --array NAME --iso V[,V...]
//                       [--obj FILE] [--ppm FILE]
//   vizndp_tool select  --in FILE --array NAME --iso V[,V...]
//                       [--encoding id+value|delta-varint|bitmap|run-length]
//   vizndp_tool serve   --dir DIR [--port P] [--max-inflight N]
//                       [--mem-budget-mb N] [--drain-ms N]  (storage node)
//   vizndp_tool fetch   --host H --port P --key K --array NAME --iso V[,V...]
//                       [--obj FILE] [--trace-merged FILE]  (client node)
//   vizndp_tool metrics --host H --port P [--json|--format F]
//                       [--connect HOST:PORT]...  (fleet: merged view)
//   vizndp_tool top     [--connect HOST:PORT]... [--once]
//                       [--interval-ms N] [--format text|json|prom]
//   vizndp_tool health  --host H --port P            (liveness snapshot)
//   vizndp_tool fuzz    [--target NAME|all] [--seed S] [--iters N]
//
// Every command also accepts the global `--trace FILE` option, which
// records obs spans during the run and writes a Chrome-tracing JSON
// file on exit (open in chrome://tracing or ui.perfetto.dev). `fetch
// --trace` additionally drains the storage node's span buffer so the
// file shows both halves of the split pipeline.
//
// `fetch --trace-merged FILE` goes further: it runs the load as one
// sampled distributed trace and writes a single clock-aligned timeline
// — client spans, the storage node's spans (shifted into the client
// clock via the NTP-style midpoint offset from each RPC's piggybacked
// receive/send stamps), and derived "wire" spans for the request and
// reply legs — all under one trace id, with retries, busy shed and
// fallback decisions as tagged child spans.
//
// `serve` exposes both the baseline object-read RPCs and the NDP
// pre-filter over TCP for every .vnd object under DIR/data/.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>

#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#include "bench_util/table.h"
#include "cluster/fleet_scraper.h"
#include "cluster/sharded_client.h"
#include "obs/merge.h"
#include "contour/contour_filter.h"
#include "obs/event_log.h"
#include "contour/select.h"
#include "io/vnd_format.h"
#include "ndp/ndp_client.h"
#include "ndp/ndp_server.h"
#include "ndp/scrub_verify.h"
#include "net/fault.h"
#include "net/inproc.h"
#include "net/reconnect.h"
#include "net/tcp.h"
#include "testing/chaos.h"
#include "storage/remote_store.h"
#include "render/render_sink.h"
#include "rpc/server.h"
#include "sim/impact.h"
#include "sim/nyx.h"
#include "storage/fault_store.h"
#include "storage/local_store.h"
#include "storage/memory_store.h"
#include "storage/scrubber.h"
#include "storage/store_rpc.h"
#include "testing/fuzz.h"

using namespace vizndp;

namespace {

[[noreturn]] void Usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, "%s",
               "usage: vizndp_tool <command> [options]\n"
               "\n"
               "commands:\n"
               "  gen     --kind impact|nyx --out FILE [--n N] [--timestep T]\n"
               "          [--codec NAME] [--arrays a,b,...] [--bricks EDGE]\n"
               "  info    --in FILE\n"
               "  contour --in FILE --array NAME --iso V[,V...] [--obj FILE]\n"
               "          [--ppm FILE]\n"
               "  select  --in FILE --array NAME --iso V[,V...] [--encoding E]\n"
               "  serve   --dir DIR [--port P] [--timeout-ms N]\n"
               "          [--max-inflight N] [--mem-budget-mb N] [--drain-ms N]\n"
               "          [--scrub-ms N] [--store-fault SPEC]\n"
               "  fetch   --host H --port P --key K --array NAME --iso V[,V...]\n"
               "          [--obj FILE] [--timeout-ms N] [--retries N]\n"
               "          [--fault SPEC] [--fallback] [--trace-merged FILE]\n"
               "          [--connect HOST:PORT]... [--replicas R] [--hedge-ms X]\n"
               "          [--shard-fault I:SPEC]... [--stream]\n"
               "          [--chunk-bricks N] [--chunk-timeout-ms N]\n"
               "          [--no-progress]\n"
               "  metrics --host H --port P [--json | --format text|json|prom]\n"
               "          [--connect HOST:PORT]...  (fleet-merged scrape)\n"
               "  top     [--connect HOST:PORT]... [--once] [--interval-ms N]\n"
               "          [--format text|json|prom] [--timeout-ms N]\n"
               "          [--slo-p99-ms X] [--slo-error-ratio R]\n"
               "          [--slo-window-s S]\n"
               "  health  --host H --port P\n"
               "  fuzz    [--target NAME|all] [--seed S] [--iters N]\n"
               "  chaos   [--seed S] [--schedules N] [--steps N] [--fetches N]\n"
               "          [--servers N] [--replicas R] [--n EDGE] [--verbose]\n"
               "\n"
               "serve overload control:\n"
               "  --max-inflight N   shed requests beyond N concurrent handlers\n"
               "                     with a retryable busy reply (0 = unlimited)\n"
               "  --mem-budget-mb N  shed ndp.select requests whose decompressed\n"
               "                     array would push reserved memory past N MiB\n"
               "  --drain-ms N       graceful-drain budget on Ctrl-C (finish\n"
               "                     in-flight, reject new; default 5000)\n"
               "\n"
               "serve storage integrity:\n"
               "  --scrub-ms N       background scrub cadence: walk the\n"
               "                     catalog, verify per-brick CRCs, and\n"
               "                     quarantine bad bricks (default 5000;\n"
               "                     0 disables)\n"
               "  --store-fault SPEC inject storage faults, e.g. read.eio*2\n"
               "                     (transient, retry heals), get.fatal+,\n"
               "                     any.delay=5000*3, put.flip=7000 (rot at\n"
               "                     rest; the scrubber quarantines it)\n"
               "\n"
               "fuzz (hostile-input smoke test of every decoder):\n"
               "  --target NAME      inflate|gzip|zlib|lz4|rle|msgpack|\n"
               "                     vnd-header|ndp-select|ndp-stream,\n"
               "                     or all (default all)\n"
               "  --seed S           deterministic mutation seed (default 1)\n"
               "  --iters N          iterations per target (default 2000)\n"
               "\n"
               "chaos (seeded kill/restart/delay/corrupt/busy schedules\n"
               "against an in-process cluster + health monitor; geometry must\n"
               "stay bit-identical to the single-server oracle, counters must\n"
               "match the journal, and every restarted node must rejoin):\n"
               "  --seed S           deterministic schedule seed (default 1)\n"
               "  --schedules N      independent schedules to run (default 20)\n"
               "  --steps N          fault steps per schedule (default 8)\n"
               "\n"
               "fetch fault tolerance:\n"
               "  --timeout-ms N   per-RPC deadline (and TCP connect budget)\n"
               "  --retries N      extra attempts for timed-out/lost calls\n"
               "  --fault SPEC     inject faults, e.g. send.drop*2 or\n"
               "                   recv.delay=2000*3 (testing)\n"
               "  --fallback       degrade to the baseline full-array read\n"
               "                   when the NDP path stays unreachable\n"
               "  --trace-merged FILE  run the load as one sampled distributed\n"
               "                   trace and write a clock-aligned Chrome JSON\n"
               "                   timeline (client + server + wire tracks)\n"
               "\n"
               "fetch streaming replies (chunked ndp.select):\n"
               "  --stream         per-brick-batch chunk frames instead of one\n"
               "                   monolithic reply; a lost stream resumes from\n"
               "                   the last cursor (same node, then replicas)\n"
               "  --chunk-bricks N straddling bricks per chunk (default 16;\n"
               "                   implies --stream)\n"
               "  --chunk-timeout-ms N  per-chunk progress deadline: a stream\n"
               "                   with no frame for N ms fails typed and\n"
               "                   resumes (0 = only the overall deadline)\n"
               "  --no-progress    suppress the live progress line on stderr\n"
               "\n"
               "fetch sharded serving (two or more --connect endpoints):\n"
               "  --connect H:P    one storage node; repeat per node. The fetch\n"
               "                   scatter-gathers brick-restricted sub-requests\n"
               "                   and merges bit-identical geometry\n"
               "  --replicas R     copies per shard for failover/hedging (def 2)\n"
               "  --hedge-ms X     hedge delay: X>0 fixed ms, 0 adaptive (tail\n"
               "                   quantile), omit to disable hedging\n"
               "  --shard-fault I:SPEC  inject --fault-style faults into server\n"
               "                   I's connection only (testing)\n"
               "\n"
               "top (live fleet dashboard over ndp.metrics + ndp.health):\n"
               "  --connect H:P    one node per flag (or --host/--port for a\n"
               "                   single server); sweeps every node each frame\n"
               "  --once           one sweep, print, exit (for scripts/CI)\n"
               "  --interval-ms N  frame interval in live mode (default 1000)\n"
               "  --format F       text = dashboard table (cleared + redrawn),\n"
               "                   json = one machine-readable snapshot/frame,\n"
               "                   prom = merged exposition, per-node series\n"
               "                   labeled node=\"i\"\n"
               "  --slo-p99-ms X   pre-filter latency objective (default 250)\n"
               "  --slo-error-ratio R  availability objective (default 0.02)\n"
               "  --slo-window-s S     short burn window; long = 5x, budget =\n"
               "                   60x (default 30)\n"
               "\n"
               "global options:\n"
               "  --trace FILE    record spans, write Chrome-tracing JSON\n"
               "  --journal FILE  write the event journal (JSON) on exit\n");
  std::exit(2);
}

class Args {
 public:
  // Keys listed in `flags` are valueless booleans (stored as "1");
  // every other --key consumes the next argument as its value.
  Args(int argc, char** argv, int first, std::set<std::string> flags = {}) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) Usage(("unexpected argument: " + key).c_str());
      key = key.substr(2);
      if (flags.count(key) != 0) {
        values_[key].emplace_back("1");
        continue;
      }
      if (i + 1 >= argc) Usage(("missing value for --" + key).c_str());
      values_[key].emplace_back(argv[++i]);
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) != 0; }

  // Last occurrence wins for single-valued options.
  std::optional<std::string> Get(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::nullopt
                               : std::optional<std::string>(it->second.back());
  }

  // Every occurrence, in command-line order — for repeatable options
  // like fetch's --connect HOST:PORT.
  std::vector<std::string> GetAll(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::vector<std::string>{} : it->second;
  }

  std::string Require(const std::string& key) const {
    const auto v = Get(key);
    if (!v) Usage(("missing required option --" + key).c_str());
    return *v;
  }

  long GetLong(const std::string& key, long fallback) const {
    const auto v = Get(key);
    return v ? std::atol(v->c_str()) : fallback;
  }

 private:
  std::map<std::string, std::vector<std::string>> values_;
};

std::vector<double> ParseIsovalues(const std::string& spec) {
  std::vector<double> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(std::atof(item.c_str()));
  }
  if (out.empty()) Usage("--iso needs at least one value");
  return out;
}

std::vector<std::string> ParseList(const std::string& spec) {
  std::vector<std::string> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// Opens a .vnd file from the local filesystem as a reader.
io::VndReader OpenVnd(storage::MemoryObjectStore& store,
                      const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw IoError("cannot open " + path);
  }
  Bytes image((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  store.CreateBucket("local");
  store.Put("local", "file", image);
  return io::VndReader(storage::FileGateway(store, "local").Open("file"));
}

int CmdGen(const Args& args) {
  const std::string kind = args.Require("kind");
  const std::string out_path = args.Require("out");
  const long n = args.GetLong("n", 64);
  grid::Dataset ds;
  if (kind == "impact") {
    sim::ImpactConfig cfg;
    cfg.n = n;
    const long t = args.GetLong("timestep", 24006);
    const auto arrays = args.Get("arrays");
    ds = arrays ? sim::GenerateImpactTimestep(cfg, t, ParseList(*arrays))
                : sim::GenerateImpactTimestep(cfg, t);
  } else if (kind == "nyx") {
    sim::NyxConfig cfg;
    cfg.n = n;
    const auto arrays = args.Get("arrays");
    ds = arrays ? sim::GenerateNyx(cfg, ParseList(*arrays))
                : sim::GenerateNyx(cfg);
  } else {
    Usage("--kind must be impact or nyx");
  }
  io::VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec(args.Get("codec").value_or("none")));
  writer.SetBrickSize(static_cast<std::int32_t>(args.GetLong("bricks", 0)));
  const Bytes image = writer.Serialize();
  std::ofstream out(out_path, std::ios::binary);
  if (!out.good()) throw IoError("cannot open " + out_path);
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  std::printf("wrote %s (%zu bytes, %zu arrays, %ld^3)\n", out_path.c_str(),
              image.size(), ds.ArrayCount(), n);
  return 0;
}

int CmdInfo(const Args& args) {
  storage::MemoryObjectStore store;
  const io::VndReader reader = OpenVnd(store, args.Require("in"));
  const io::VndHeader& h = reader.header();
  std::printf("dims: %s   origin: (%g, %g, %g)   spacing: (%g, %g, %g)\n",
              h.dims.ToString().c_str(), h.geometry.origin[0],
              h.geometry.origin[1], h.geometry.origin[2],
              h.geometry.spacing[0], h.geometry.spacing[1],
              h.geometry.spacing[2]);
  bench_util::Table table({"array", "type", "codec", "raw", "stored", "ratio"});
  for (const io::ArrayMeta& m : h.arrays) {
    table.AddRow({m.name, grid::DataTypeName(m.type), m.codec,
                  bench_util::FormatBytes(m.raw_size),
                  bench_util::FormatBytes(m.stored_size),
                  bench_util::FormatRatio(static_cast<double>(m.raw_size) /
                                          static_cast<double>(m.stored_size))});
  }
  table.Print(std::cout);
  return 0;
}

int CmdContour(const Args& args) {
  storage::MemoryObjectStore store;
  const io::VndReader reader = OpenVnd(store, args.Require("in"));
  const std::string array = args.Require("array");
  const std::vector<double> isos = ParseIsovalues(args.Require("iso"));
  const contour::ContourFilter filter(isos);
  const contour::PolyData poly =
      filter.Execute(reader.header().dims, reader.header().geometry,
                     reader.ReadArray(array));
  std::printf("contour of %s at %zu isovalue(s): %zu points, %zu triangles, "
              "%zu lines\n",
              array.c_str(), isos.size(), poly.PointCount(),
              poly.TriangleCount(), poly.LineCount());
  if (const auto obj = args.Get("obj")) {
    poly.WriteObj(*obj);
    std::printf("wrote %s\n", obj->c_str());
  }
  if (const auto ppm = args.Get("ppm")) {
    render::Framebuffer fb(800, 600);
    const render::Camera camera({0.5, -1.3, 1.1}, {0.5, 0.5, 0.4}, {0, 0, 1},
                                55.0, 800.0 / 600.0);
    RenderPolyData(poly, camera, {}, fb);
    fb.WritePpm(*ppm);
    std::printf("wrote %s\n", ppm->c_str());
  }
  return 0;
}

int CmdSelect(const Args& args) {
  storage::MemoryObjectStore store;
  const io::VndReader reader = OpenVnd(store, args.Require("in"));
  const std::string array = args.Require("array");
  const std::vector<double> isos = ParseIsovalues(args.Require("iso"));
  const grid::DataArray data = reader.ReadArray(array);
  const contour::Selection sel =
      contour::SelectInterestingPoints(reader.header().dims, data, isos);

  const std::map<std::string, ndp::SelectionEncoding> encodings = {
      {"id+value", ndp::SelectionEncoding::kIdValue},
      {"delta-varint", ndp::SelectionEncoding::kDeltaVarint},
      {"bitmap", ndp::SelectionEncoding::kBitmap},
      {"run-length", ndp::SelectionEncoding::kRunLength},
  };
  const std::string enc_name = args.Get("encoding").value_or("run-length");
  const auto it = encodings.find(enc_name);
  if (it == encodings.end()) Usage("unknown --encoding");
  const Bytes payload = ndp::EncodeSelection(sel, it->second);

  std::printf("array %s: %zu of %lld points selected (%.4f%%)\n",
              array.c_str(), sel.ids.size(),
              static_cast<long long>(sel.total_points),
              100.0 * sel.Selectivity());
  std::printf("payload (%s): %zu bytes = %.1fx reduction vs raw array\n",
              enc_name.c_str(), payload.size(),
              static_cast<double>(data.byte_size()) /
                  static_cast<double>(std::max<size_t>(1, payload.size())));
  return 0;
}

volatile std::sig_atomic_t g_serve_interrupted = 0;

int CmdServe(const Args& args) {
  const std::string dir = args.Require("dir");
  const auto port = static_cast<std::uint16_t>(args.GetLong("port", 47801));
  // The serve process always records spans: the ring buffer caps memory,
  // and clients drain it over ndp.trace for their --trace output.
  obs::GlobalTracer().Enable();
  storage::LocalObjectStore store(dir);
  store.CreateBucket("data");
  // Every server-side read goes through the fault decorator; with no
  // --store-fault spec it is a pass-through.
  storage::FaultInjectingStore faulty_store(store);
  if (const auto spec = args.Get("store-fault")) {
    storage::ApplyStoreFaultSpec(faulty_store, *spec);
    std::printf("store faults armed: %s\n", spec->c_str());
  }
  rpc::Server rpc_server;
  rpc::ServerOptions server_options;
  server_options.request_deadline =
      std::chrono::milliseconds(args.GetLong("timeout-ms", 0));
  server_options.max_inflight =
      static_cast<int>(args.GetLong("max-inflight", 0));
  server_options.mem_budget_bytes =
      static_cast<std::uint64_t>(args.GetLong("mem-budget-mb", 0)) << 20;
  server_options.drain_deadline =
      std::chrono::milliseconds(args.GetLong("drain-ms", 5000));
  rpc_server.SetOptions(server_options);
  storage::BindObjectStoreRpc(rpc_server, faulty_store);
  ndp::NdpServer ndp_server(storage::FileGateway(faulty_store, "data"));
  ndp_server.SetMemoryBudget(&rpc_server.memory_budget());
  // Background scrub: walk the catalog at a jittered cadence, verify
  // per-brick CRCs, and quarantine bad bricks so the pre-filter skips
  // them straight to recovery. --scrub-ms 0 disables.
  const long scrub_ms = args.GetLong("scrub-ms", 5000);
  storage::QuarantineSet quarantine;
  std::unique_ptr<storage::Scrubber> scrubber;
  if (scrub_ms > 0) {
    storage::ScrubberOptions scrub_options;
    scrub_options.period = std::chrono::milliseconds(scrub_ms);
    scrubber = std::make_unique<storage::Scrubber>(
        storage::FileGateway(faulty_store, "data"),
        ndp::MakeVndScrubVerifier(
            storage::FileGateway(faulty_store, "data"), quarantine,
            &rpc_server.memory_budget()),
        quarantine, scrub_options);
    ndp_server.SetQuarantine(&quarantine);
    ndp_server.SetScrubber(scrubber.get());
  }
  ndp_server.Bind(rpc_server);
  if (scrubber != nullptr) scrubber->Start();
  rpc::TcpRpcServer tcp(rpc_server, port);
  // Machine-readable first line — `--port 0` lets the OS pick, and shell
  // harnesses (tools/check.sh) parse the choice from here.
  std::printf("port: %u\n", tcp.port());
  std::fflush(stdout);
  std::printf("serving %s/data on 127.0.0.1:%u (baseline reads + NDP "
              "pre-filter); Ctrl-C drains and stops\n",
              dir.c_str(), tcp.port());
  std::fflush(stdout);
  std::signal(SIGINT, [](int) { g_serve_interrupted = 1; });
  std::signal(SIGTERM, [](int) { g_serve_interrupted = 1; });
  while (g_serve_interrupted == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("draining (up to %ld ms)...\n", args.GetLong("drain-ms", 5000));
  if (scrubber != nullptr) {
    scrubber->Stop();
    const storage::ScrubStatus scrub = scrubber->status();
    std::printf("scrub: passes=%llu bricks=%llu corrupt=%llu "
                "quarantined=%llu readmitted=%llu\n",
                static_cast<unsigned long long>(scrub.passes),
                static_cast<unsigned long long>(scrub.bricks_checked),
                static_cast<unsigned long long>(scrub.corrupt_found),
                static_cast<unsigned long long>(scrub.quarantined_now),
                static_cast<unsigned long long>(scrub.readmitted));
  }
  tcp.Stop();
  std::printf("stopped; served %llu request(s), shed %llu as busy\n",
              static_cast<unsigned long long>(rpc_server.requests_served()),
              static_cast<unsigned long long>(
                  rpc_server.metrics().GetCounter("rpc_busy_rejected_total")
                      .value()));
  return 0;
}

// "HOST:PORT" → pair; bare "PORT" assumes localhost.
std::pair<std::string, std::uint16_t> ParseEndpoint(const std::string& spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    return {"127.0.0.1", static_cast<std::uint16_t>(std::atoi(spec.c_str()))};
  }
  return {spec.substr(0, colon),
          static_cast<std::uint16_t>(std::atoi(spec.c_str() + colon + 1))};
}

int CmdFetch(const Args& args) {
  const auto trace_merged = args.Get("trace-merged");
  if (trace_merged) obs::GlobalTracer().Enable();

  ndp::NdpClientOptions options;
  options.call_timeout =
      std::chrono::milliseconds(args.GetLong("timeout-ms", 0));
  options.connect_timeout = options.call_timeout;
  options.retry.max_attempts =
      1 + static_cast<int>(std::max(0L, args.GetLong("retries", 0)));

  net::TcpOptions tcp_options;
  tcp_options.connect_timeout = options.connect_timeout;

  // Endpoints: either the classic --host/--port single server, or one
  // --connect HOST:PORT per storage node of a sharded serving tier.
  std::vector<std::pair<std::string, std::uint16_t>> endpoints;
  for (const std::string& spec : args.GetAll("connect")) {
    endpoints.push_back(ParseEndpoint(spec));
  }
  if (endpoints.empty()) {
    endpoints.emplace_back(
        args.Get("host").value_or("127.0.0.1"),
        static_cast<std::uint16_t>(args.GetLong("port", 47801)));
  }

  // --shard-fault I:SPEC injects faults into server I's connection only
  // (e.g. --shard-fault 1:recv.delay=300 makes shard 1 slow enough that
  // hedges fire); --fault applies to every connection.
  std::map<int, std::string> shard_faults;
  for (const std::string& spec : args.GetAll("shard-fault")) {
    const size_t colon = spec.find(':');
    if (colon == std::string::npos) Usage("--shard-fault needs I:SPEC");
    shard_faults[std::atoi(spec.c_str())] = spec.substr(colon + 1);
  }

  std::vector<std::shared_ptr<ndp::NdpClient>> clients;
  for (size_t i = 0; i < endpoints.size(); ++i) {
    net::TransportPtr transport;
    if (endpoints.size() == 1) {
      transport = net::TcpConnect(endpoints[i].first, endpoints[i].second,
                                  tcp_options);  // a lone server must answer
    } else {
      // Sharded tier: every channel re-dials on use, so a node that is
      // down now — not yet started, or killed and restarted — becomes
      // usable the moment it listens again. While it stays down each use
      // fails with peer-closed and the replica chain fails over.
      auto dial = [host = endpoints[i].first, port = endpoints[i].second,
                   tcp_options] { return net::TcpConnect(host, port,
                                                         tcp_options); };
      try {
        (void)dial();  // early warning only; the transport dials lazily
      } catch (const Error& e) {
        std::fprintf(stderr, "[warn] server %zu (%s:%u) unreachable: %s\n",
                     i, endpoints[i].first.c_str(), endpoints[i].second,
                     e.what());
      }
      transport = std::make_unique<net::ReconnectingTransport>(dial);
    }
    // Inject faults into the NDP connection(s) only; a --fallback read
    // uses a separate, clean connection (the baseline path stand-in).
    if (const auto fault = args.Get("fault")) {
      transport = net::WrapWithFaults(std::move(transport), *fault);
    }
    const auto sf = shard_faults.find(static_cast<int>(i));
    if (sf != shard_faults.end()) {
      transport = net::WrapWithFaults(std::move(transport), sf->second);
    }
    clients.push_back(std::make_shared<ndp::NdpClient>(
        std::make_shared<rpc::Client>(std::move(transport)), "data",
        options));
  }

  // Streaming mode: --stream (or --chunk-bricks, which implies it)
  // switches the fetch to chunked replies with cursor resume. The
  // progress line answers "is anything happening?" during a long fetch
  // — chunks, bricks, points so far — without waiting for completion.
  const bool want_stream = args.Has("stream") || args.Has("chunk-bricks");
  const bool show_progress = want_stream && !args.Has("no-progress");
  ndp::StreamOptions stream_options;
  struct ProgressAgg {
    std::mutex mu;
    std::vector<ndp::StreamProgress> per_client;
  };
  auto agg = std::make_shared<ProgressAgg>();
  if (want_stream) {
    stream_options.chunk_bricks = args.GetLong("chunk-bricks", 16);
    stream_options.chunk_timeout =
        std::chrono::milliseconds(args.GetLong("chunk-timeout-ms", 0));
    agg->per_client.resize(clients.size());
    for (size_t i = 0; i < clients.size(); ++i) {
      clients[i]->SetStream(stream_options);
      if (show_progress) {
        // Sharded fetches stream from several nodes at once; aggregate
        // the per-client snapshots so the line shows fleet totals.
        clients[i]->SetStreamProgress(
            [agg, i](const ndp::StreamProgress& p) {
              std::lock_guard lk(agg->mu);
              agg->per_client[i] = p;
              std::uint64_t chunks = 0;
              std::uint64_t points = 0;
              std::uint64_t resumes = 0;
              std::int64_t done = 0;
              std::int64_t total = 0;
              for (const ndp::StreamProgress& q : agg->per_client) {
                chunks += q.chunks;
                points += q.points;
                resumes += q.resumes;
                done += q.bricks_done;
                total += q.stream_bricks;
              }
              const std::string tail =
                  resumes != 0 ? "  resumes " + std::to_string(resumes)
                               : std::string();
              std::fprintf(stderr,
                           "\r[stream] chunks %llu  bricks %lld/%lld  "
                           "points %llu%s   ",
                           static_cast<unsigned long long>(chunks),
                           static_cast<long long>(done),
                           static_cast<long long>(total),
                           static_cast<unsigned long long>(points),
                           tail.c_str());
            });
      }
    }
  }

  std::shared_ptr<ndp::NdpFetcher> fetcher;
  std::shared_ptr<cluster::ShardedNdpClient> sharded;
  if (clients.size() > 1) {
    cluster::ShardedClientOptions sharded_options;
    // Off unless asked: 0 = adaptive (tail-quantile), >0 fixed ms.
    sharded_options.hedge_ms = args.Has("hedge-ms")
                                   ? std::atof(args.Require("hedge-ms").c_str())
                                   : -1.0;
    sharded = std::make_shared<cluster::ShardedNdpClient>(
        clients, static_cast<int>(args.GetLong("replicas", 2)),
        sharded_options);
    fetcher = sharded;
    if (want_stream) sharded->SetStream(stream_options);
  } else {
    fetcher = clients.front();
  }

  ndp::NdpContourSource source(fetcher, args.Require("key"),
                               args.Require("array"),
                               ParseIsovalues(args.Require("iso")));
  std::shared_ptr<rpc::Client> fallback_rpc;
  std::unique_ptr<storage::RemoteObjectStore> fallback_store;
  if (args.Has("fallback")) {
    fallback_rpc = std::make_shared<rpc::Client>(net::TcpConnect(
        endpoints.front().first, endpoints.front().second, tcp_options));
    fallback_store = std::make_unique<storage::RemoteObjectStore>(fallback_rpc);
    source.SetFallback(storage::FileGateway(*fallback_store, "data"));
  }

  const contour::PolyData& poly = source.UpdateAndGetOutput()->AsPolyData();
  const ndp::NdpLoadStats& stats = source.last_stats();
  if (show_progress) std::fprintf(stderr, "\n");
  if (stats.streamed) {
    std::printf("stream: %llu chunk(s), %llu resume(s)%s\n",
                static_cast<unsigned long long>(stats.stream_chunks),
                static_cast<unsigned long long>(stats.stream_resumes),
                stats.stream_cancelled ? ", cancelled" : "");
  }
  if (stats.used_fallback) {
    std::printf("baseline contour (NDP path unavailable, fell back): "
                "%zu triangles; read %llu raw bytes\n",
                poly.TriangleCount(),
                static_cast<unsigned long long>(stats.raw_bytes));
  } else {
    std::printf("NDP contour: %zu triangles; %llu of %llu points (%.4f%%), "
                "payload %llu bytes\n",
                poly.TriangleCount(),
                static_cast<unsigned long long>(stats.selected_points),
                static_cast<unsigned long long>(stats.total_points),
                100.0 * stats.Selectivity(),
                static_cast<unsigned long long>(stats.payload_bytes));
  }
  if (sharded != nullptr) {
    // The hedging scoreboard for this run (process-wide counters: this
    // fetch is the only traffic in a CLI invocation).
    obs::Registry& reg = obs::DefaultRegistry();
    std::printf(
        "cluster: %d server(s) x %d replica(s); hedges launched %llu, "
        "won %llu, lost %llu; failovers %llu\n",
        sharded->server_count(), sharded->shard_map().replicas(),
        static_cast<unsigned long long>(
            reg.GetCounter("ndp_hedge_launched_total").value()),
        static_cast<unsigned long long>(
            reg.GetCounter("ndp_hedge_won_total").value()),
        static_cast<unsigned long long>(
            reg.GetCounter("ndp_hedge_lost_total").value()),
        static_cast<unsigned long long>(
            reg.GetCounter("cluster_failover_total").value()));
  }
  if (const auto obj = args.Get("obj")) {
    poly.WriteObj(*obj);
    std::printf("wrote %s\n", obj->c_str());
  }
  if (trace_merged) {
    // Sampled requests piggyback the server half of every attempt on
    // the reply, already clock-aligned into this process's buffer, so
    // the plain export is the complete merged timeline.
    std::ofstream out(*trace_merged, std::ios::binary);
    if (!out.good()) throw IoError("cannot open " + *trace_merged);
    obs::GlobalTracer().WriteChromeJson(out);
    std::printf("wrote %s (trace %s, %zu events: client + server + wire "
                "tracks, clock-aligned)\n",
                trace_merged->c_str(), obs::TraceIdHex(stats.trace_id).c_str(),
                obs::GlobalTracer().event_count());
  } else if (obs::GlobalTracer().enabled() && !stats.used_fallback) {
    // Pull the server half of the trace into the local buffer so the
    // --trace file shows read/decompress/select next to decode/scatter.
    size_t merged = 0;
    for (const auto& c : clients) merged += c->ScrapeTrace();
    std::printf("merged %zu server trace event(s)\n", merged);
  }
  return 0;
}

// Endpoints for the observability commands: repeatable --connect H:P,
// falling back to the classic --host/--port single server.
std::vector<std::pair<std::string, std::uint16_t>> ScrapeEndpoints(
    const Args& args) {
  std::vector<std::pair<std::string, std::uint16_t>> endpoints;
  for (const std::string& spec : args.GetAll("connect")) {
    endpoints.push_back(ParseEndpoint(spec));
  }
  if (endpoints.empty()) {
    endpoints.emplace_back(
        args.Get("host").value_or("127.0.0.1"),
        static_cast<std::uint16_t>(args.GetLong("port", 47801)));
  }
  return endpoints;
}

// One dedicated reconnecting client per endpoint — a dead node fails
// fast (connect timeout) instead of hanging the sweep, and a restarted
// one becomes scrapeable again without rebuilding the client.
std::vector<std::shared_ptr<ndp::NdpClient>> ScrapeClients(
    const std::vector<std::pair<std::string, std::uint16_t>>& endpoints,
    long timeout_ms) {
  ndp::NdpClientOptions options;
  options.call_timeout = std::chrono::milliseconds(timeout_ms);
  options.connect_timeout = options.call_timeout;
  net::TcpOptions tcp_options;
  tcp_options.connect_timeout = options.connect_timeout;
  std::vector<std::shared_ptr<ndp::NdpClient>> clients;
  for (const auto& [host, port] : endpoints) {
    auto dial = [host, port, tcp_options] {
      return net::TcpConnect(host, port, tcp_options);
    };
    clients.push_back(std::make_shared<ndp::NdpClient>(
        std::make_shared<rpc::Client>(
            std::make_unique<net::ReconnectingTransport>(dial)),
        "data", options));
  }
  return clients;
}

int CmdMetrics(const Args& args) {
  // --format asks the storage node to render server-side (text, json, or
  // prom — Prometheus exposition for a scrape endpoint); --json is the
  // older spelling of --format json.
  const std::string format =
      args.Get("format").value_or(args.Has("json") ? "json" : "text");
  const auto endpoints = ScrapeEndpoints(args);
  if (endpoints.size() == 1) {
    ndp::NdpClient client(
        std::make_shared<rpc::Client>(
            net::TcpConnect(endpoints[0].first, endpoints[0].second)),
        "data");
    std::cout << client.ScrapeMetricsFormatted(format);
    if (format == "json") std::cout << "\n";
    return 0;
  }
  // Several --connect endpoints: scrape them all. text/json render the
  // fleet-merged view; prom keeps per-node series distinguishable with a
  // node="<i>" label (the exposition a Prometheus scraper would want).
  const auto clients =
      ScrapeClients(endpoints, args.GetLong("timeout-ms", 2000));
  std::vector<std::vector<obs::MetricSnapshot>> sources;
  std::vector<obs::MetricSnapshot> labeled;
  for (size_t i = 0; i < clients.size(); ++i) {
    std::vector<obs::MetricSnapshot> snap = clients[i]->ScrapeMetrics();
    if (format == "prom") {
      std::vector<obs::MetricSnapshot> with_node =
          obs::WithLabel(std::move(snap), "node", std::to_string(i));
      labeled.insert(labeled.end(),
                     std::make_move_iterator(with_node.begin()),
                     std::make_move_iterator(with_node.end()));
    } else {
      sources.push_back(std::move(snap));
    }
  }
  if (format == "prom") {
    std::cout << obs::SnapshotToProm(labeled);
    return 0;
  }
  obs::MergeOptions merge_options;
  merge_options.gauge_policy = obs::DefaultFleetGaugePolicy;
  std::cout << obs::FormatSnapshot(obs::MergeSnapshots(sources, merge_options),
                                   format);
  if (format == "json") std::cout << "\n";
  return 0;
}

volatile std::sig_atomic_t g_top_interrupted = 0;

int CmdTop(const Args& args) {
  const auto endpoints = ScrapeEndpoints(args);
  const auto clients =
      ScrapeClients(endpoints, args.GetLong("timeout-ms", 2000));
  cluster::FleetScraperOptions fleet_opts;
  fleet_opts.period =
      std::chrono::milliseconds(args.GetLong("interval-ms", 1000));
  fleet_opts.objectives = cluster::DefaultFleetObjectives(
      std::atof(args.Get("slo-p99-ms").value_or("250").c_str()),
      std::atof(args.Get("slo-error-ratio").value_or("0.02").c_str()),
      std::atof(args.Get("slo-window-s").value_or("30").c_str()));
  cluster::FleetScraper scraper(clients, fleet_opts);
  const std::string format = args.Get("format").value_or("text");
  if (format != "text" && format != "json" && format != "prom") {
    Usage("top --format must be text, json, or prom");
  }
  auto render = [&](const cluster::FleetScraper::FleetSnapshot& snap) {
    if (format == "json") {
      std::cout << cluster::FleetSnapshotJson(snap) << "\n";
    } else if (format == "prom") {
      std::cout << cluster::FleetSnapshotProm(snap);
    } else {
      std::cout << cluster::FleetSnapshotText(snap);
    }
    std::cout.flush();
  };
  if (args.Has("once")) {
    render(*scraper.ScrapeOnce());
    return 0;
  }
  // Live dashboard: sweep on the interval, clear + redraw between
  // frames (text only — json/prom stream one block per sweep).
  std::signal(SIGINT, [](int) { g_top_interrupted = 1; });
  std::signal(SIGTERM, [](int) { g_top_interrupted = 1; });
  while (g_top_interrupted == 0) {
    const auto snap = scraper.ScrapeOnce();
    if (format == "text") std::fputs("\033[H\033[2J", stdout);
    render(*snap);
    const auto wake = std::chrono::steady_clock::now() + fleet_opts.period;
    while (g_top_interrupted == 0 &&
           std::chrono::steady_clock::now() < wake) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return 0;
}

int CmdHealth(const Args& args) {
  const std::string host = args.Get("host").value_or("127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.GetLong("port", 47801));
  ndp::NdpClient client(
      std::make_shared<rpc::Client>(net::TcpConnect(host, port)), "data");
  const ndp::NdpClient::HealthReport health = client.Health();
  std::printf("draining: %s   in-flight: %lld   memory: %s",
              health.draining ? "yes" : "no",
              static_cast<long long>(health.inflight),
              bench_util::FormatBytes(health.mem_in_use).c_str());
  if (health.mem_limit != 0) {
    std::printf(" of %s budget", bench_util::FormatBytes(health.mem_limit).c_str());
  }
  std::printf("\n");
  if (!health.requests.empty()) {
    bench_util::Table table({"method", "trace", "age"});
    for (const auto& r : health.requests) {
      table.AddRow({r.method,
                    r.trace_id == 0 ? "-" : obs::TraceIdHex(r.trace_id),
                    std::to_string(r.age_us / 1000) + " ms"});
    }
    table.Print(std::cout);
  }
  return 0;
}

int CmdFuzz(const Args& args) {
  const std::string wanted = args.Get("target").value_or("all");
  const auto seed = static_cast<std::uint64_t>(args.GetLong("seed", 1));
  const auto iters = static_cast<std::uint64_t>(args.GetLong("iters", 2000));

  std::vector<vizndp::testing::FuzzTarget> targets =
      vizndp::testing::BuiltinFuzzTargets();
  bool matched = false;
  bench_util::Table table({"target", "iterations", "accepted", "rejected"});
  for (const auto& target : targets) {
    if (wanted != "all" && wanted != target.name) continue;
    matched = true;
    const vizndp::testing::FuzzReport report =
        vizndp::testing::RunFuzzTarget(target, seed, iters);
    table.AddRow({target.name, std::to_string(report.iterations),
                  std::to_string(report.accepted),
                  std::to_string(report.rejected)});
  }
  if (!matched) {
    std::string names;
    for (const auto& t : targets) names += " " + t.name;
    Usage(("unknown --target; available:" + names).c_str());
  }
  table.Print(std::cout);
  std::printf("every non-accepted input rejected with a typed error "
              "(seed %llu)\n",
              static_cast<unsigned long long>(seed));
  return 0;
}

int CmdChaos(const Args& args) {
  vizndp::testing::ChaosOptions options;
  options.seed = static_cast<std::uint64_t>(args.GetLong("seed", 1));
  options.schedules = static_cast<int>(args.GetLong("schedules", 20));
  options.steps = static_cast<int>(args.GetLong("steps", 8));
  options.fetches_per_step = static_cast<int>(args.GetLong("fetches", 2));
  options.servers = static_cast<int>(args.GetLong("servers", 3));
  options.replicas = static_cast<int>(args.GetLong("replicas", 2));
  options.n = static_cast<int>(args.GetLong("n", 16));
  options.verbose = args.Has("verbose");

  const vizndp::testing::ChaosReport report =
      vizndp::testing::RunChaos(options);
  std::printf("%s\n", report.Summary().c_str());
  for (const std::string& v : report.violations) {
    std::printf("VIOLATION: %s\n", v.c_str());
  }
  std::printf("chaos %s: %d schedule(s), seed %llu\n",
              report.ok() ? "PASS" : "FAIL", report.schedules,
              static_cast<unsigned long long>(options.seed));
  return report.ok() ? 0 : 1;
}

// Valueless boolean flags accepted by each command (everything else
// takes a value).
std::set<std::string> BoolFlags(const std::string& command) {
  if (command == "metrics") return {"json"};
  if (command == "fetch") return {"fallback", "stream", "no-progress"};
  if (command == "chaos") return {"verbose"};
  if (command == "top") return {"once"};
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string command = argv[1];
  const Args args(argc, argv, 2, BoolFlags(command));
  const auto trace_path = args.Get("trace");
  if (trace_path) obs::GlobalTracer().Enable();
  try {
    int rc = 2;
    if (command == "gen") rc = CmdGen(args);
    else if (command == "info") rc = CmdInfo(args);
    else if (command == "contour") rc = CmdContour(args);
    else if (command == "select") rc = CmdSelect(args);
    else if (command == "serve") rc = CmdServe(args);
    else if (command == "fetch") rc = CmdFetch(args);
    else if (command == "metrics") rc = CmdMetrics(args);
    else if (command == "top") rc = CmdTop(args);
    else if (command == "health") rc = CmdHealth(args);
    else if (command == "fuzz") rc = CmdFuzz(args);
    else if (command == "chaos") rc = CmdChaos(args);
    else Usage(("unknown command: " + command).c_str());
    if (trace_path) {
      std::ofstream out(*trace_path, std::ios::binary);
      if (!out.good()) throw IoError("cannot open " + *trace_path);
      obs::GlobalTracer().WriteChromeJson(out);
      std::printf("wrote %s (%zu trace events)\n", trace_path->c_str(),
                  obs::GlobalTracer().event_count());
    }
    if (const auto journal_path = args.Get("journal")) {
      std::ofstream out(*journal_path, std::ios::binary);
      if (!out.good()) throw IoError("cannot open " + *journal_path);
      out << obs::GlobalEventLog().Json() << "\n";
      std::printf("wrote %s (event journal)\n", journal_path->c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
