// vizndp_tool — command-line front end for the library.
//
//   vizndp_tool gen     --kind impact|nyx --out FILE [--n N] [--timestep T]
//                       [--codec none|gzip|lz4|rle|zlib] [--arrays a,b,...]
//   vizndp_tool info    --in FILE
//   vizndp_tool contour --in FILE --array NAME --iso V[,V...]
//                       [--obj FILE] [--ppm FILE]
//   vizndp_tool select  --in FILE --array NAME --iso V[,V...]
//                       [--encoding id+value|delta-varint|bitmap|run-length]
//   vizndp_tool serve   --dir DIR [--port P]         (storage node)
//   vizndp_tool fetch   --host H --port P --key K --array NAME --iso V[,V...]
//                       [--obj FILE]                 (client node)
//
// `serve` exposes both the baseline object-read RPCs and the NDP
// pre-filter over TCP for every .vnd object under DIR/data/.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>

#include "bench_util/table.h"
#include "contour/contour_filter.h"
#include "contour/select.h"
#include "io/vnd_format.h"
#include "ndp/ndp_client.h"
#include "ndp/ndp_server.h"
#include "net/tcp.h"
#include "render/render_sink.h"
#include "rpc/server.h"
#include "sim/impact.h"
#include "sim/nyx.h"
#include "storage/local_store.h"
#include "storage/memory_store.h"
#include "storage/store_rpc.h"

using namespace vizndp;

namespace {

[[noreturn]] void Usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, "%s",
               "usage: vizndp_tool <command> [options]\n"
               "\n"
               "commands:\n"
               "  gen     --kind impact|nyx --out FILE [--n N] [--timestep T]\n"
               "          [--codec NAME] [--arrays a,b,...] [--bricks EDGE]\n"
               "  info    --in FILE\n"
               "  contour --in FILE --array NAME --iso V[,V...] [--obj FILE]\n"
               "          [--ppm FILE]\n"
               "  select  --in FILE --array NAME --iso V[,V...] [--encoding E]\n"
               "  serve   --dir DIR [--port P]\n"
               "  fetch   --host H --port P --key K --array NAME --iso V[,V...]\n"
               "          [--obj FILE]\n");
  std::exit(2);
}

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) Usage(("unexpected argument: " + key).c_str());
      key = key.substr(2);
      if (i + 1 >= argc) Usage(("missing value for --" + key).c_str());
      values_[key] = argv[++i];
    }
  }

  std::optional<std::string> Get(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::nullopt
                               : std::optional<std::string>(it->second);
  }

  std::string Require(const std::string& key) const {
    const auto v = Get(key);
    if (!v) Usage(("missing required option --" + key).c_str());
    return *v;
  }

  long GetLong(const std::string& key, long fallback) const {
    const auto v = Get(key);
    return v ? std::atol(v->c_str()) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
};

std::vector<double> ParseIsovalues(const std::string& spec) {
  std::vector<double> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(std::atof(item.c_str()));
  }
  if (out.empty()) Usage("--iso needs at least one value");
  return out;
}

std::vector<std::string> ParseList(const std::string& spec) {
  std::vector<std::string> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// Opens a .vnd file from the local filesystem as a reader.
io::VndReader OpenVnd(storage::MemoryObjectStore& store,
                      const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw IoError("cannot open " + path);
  }
  Bytes image((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  store.CreateBucket("local");
  store.Put("local", "file", image);
  return io::VndReader(storage::FileGateway(store, "local").Open("file"));
}

int CmdGen(const Args& args) {
  const std::string kind = args.Require("kind");
  const std::string out_path = args.Require("out");
  const long n = args.GetLong("n", 64);
  grid::Dataset ds;
  if (kind == "impact") {
    sim::ImpactConfig cfg;
    cfg.n = n;
    const long t = args.GetLong("timestep", 24006);
    const auto arrays = args.Get("arrays");
    ds = arrays ? sim::GenerateImpactTimestep(cfg, t, ParseList(*arrays))
                : sim::GenerateImpactTimestep(cfg, t);
  } else if (kind == "nyx") {
    sim::NyxConfig cfg;
    cfg.n = n;
    const auto arrays = args.Get("arrays");
    ds = arrays ? sim::GenerateNyx(cfg, ParseList(*arrays))
                : sim::GenerateNyx(cfg);
  } else {
    Usage("--kind must be impact or nyx");
  }
  io::VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec(args.Get("codec").value_or("none")));
  writer.SetBrickSize(static_cast<std::int32_t>(args.GetLong("bricks", 0)));
  const Bytes image = writer.Serialize();
  std::ofstream out(out_path, std::ios::binary);
  if (!out.good()) throw IoError("cannot open " + out_path);
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  std::printf("wrote %s (%zu bytes, %zu arrays, %ld^3)\n", out_path.c_str(),
              image.size(), ds.ArrayCount(), n);
  return 0;
}

int CmdInfo(const Args& args) {
  storage::MemoryObjectStore store;
  const io::VndReader reader = OpenVnd(store, args.Require("in"));
  const io::VndHeader& h = reader.header();
  std::printf("dims: %s   origin: (%g, %g, %g)   spacing: (%g, %g, %g)\n",
              h.dims.ToString().c_str(), h.geometry.origin[0],
              h.geometry.origin[1], h.geometry.origin[2],
              h.geometry.spacing[0], h.geometry.spacing[1],
              h.geometry.spacing[2]);
  bench_util::Table table({"array", "type", "codec", "raw", "stored", "ratio"});
  for (const io::ArrayMeta& m : h.arrays) {
    table.AddRow({m.name, grid::DataTypeName(m.type), m.codec,
                  bench_util::FormatBytes(m.raw_size),
                  bench_util::FormatBytes(m.stored_size),
                  bench_util::FormatRatio(static_cast<double>(m.raw_size) /
                                          static_cast<double>(m.stored_size))});
  }
  table.Print(std::cout);
  return 0;
}

int CmdContour(const Args& args) {
  storage::MemoryObjectStore store;
  const io::VndReader reader = OpenVnd(store, args.Require("in"));
  const std::string array = args.Require("array");
  const std::vector<double> isos = ParseIsovalues(args.Require("iso"));
  const contour::ContourFilter filter(isos);
  const contour::PolyData poly =
      filter.Execute(reader.header().dims, reader.header().geometry,
                     reader.ReadArray(array));
  std::printf("contour of %s at %zu isovalue(s): %zu points, %zu triangles, "
              "%zu lines\n",
              array.c_str(), isos.size(), poly.PointCount(),
              poly.TriangleCount(), poly.LineCount());
  if (const auto obj = args.Get("obj")) {
    poly.WriteObj(*obj);
    std::printf("wrote %s\n", obj->c_str());
  }
  if (const auto ppm = args.Get("ppm")) {
    render::Framebuffer fb(800, 600);
    const render::Camera camera({0.5, -1.3, 1.1}, {0.5, 0.5, 0.4}, {0, 0, 1},
                                55.0, 800.0 / 600.0);
    RenderPolyData(poly, camera, {}, fb);
    fb.WritePpm(*ppm);
    std::printf("wrote %s\n", ppm->c_str());
  }
  return 0;
}

int CmdSelect(const Args& args) {
  storage::MemoryObjectStore store;
  const io::VndReader reader = OpenVnd(store, args.Require("in"));
  const std::string array = args.Require("array");
  const std::vector<double> isos = ParseIsovalues(args.Require("iso"));
  const grid::DataArray data = reader.ReadArray(array);
  const contour::Selection sel =
      contour::SelectInterestingPoints(reader.header().dims, data, isos);

  const std::map<std::string, ndp::SelectionEncoding> encodings = {
      {"id+value", ndp::SelectionEncoding::kIdValue},
      {"delta-varint", ndp::SelectionEncoding::kDeltaVarint},
      {"bitmap", ndp::SelectionEncoding::kBitmap},
      {"run-length", ndp::SelectionEncoding::kRunLength},
  };
  const std::string enc_name = args.Get("encoding").value_or("run-length");
  const auto it = encodings.find(enc_name);
  if (it == encodings.end()) Usage("unknown --encoding");
  const Bytes payload = ndp::EncodeSelection(sel, it->second);

  std::printf("array %s: %zu of %lld points selected (%.4f%%)\n",
              array.c_str(), sel.ids.size(),
              static_cast<long long>(sel.total_points),
              100.0 * sel.Selectivity());
  std::printf("payload (%s): %zu bytes = %.1fx reduction vs raw array\n",
              enc_name.c_str(), payload.size(),
              static_cast<double>(data.byte_size()) /
                  static_cast<double>(std::max<size_t>(1, payload.size())));
  return 0;
}

int CmdServe(const Args& args) {
  const std::string dir = args.Require("dir");
  const auto port = static_cast<std::uint16_t>(args.GetLong("port", 47801));
  storage::LocalObjectStore store(dir);
  store.CreateBucket("data");
  rpc::Server rpc_server;
  storage::BindObjectStoreRpc(rpc_server, store);
  ndp::NdpServer ndp_server(storage::FileGateway(store, "data"));
  ndp_server.Bind(rpc_server);
  rpc::TcpRpcServer tcp(rpc_server, port);
  std::printf("serving %s/data on 127.0.0.1:%u (baseline reads + NDP "
              "pre-filter); Ctrl-C to stop\n",
              dir.c_str(), tcp.port());
  ::pause();
  return 0;
}

int CmdFetch(const Args& args) {
  const std::string host = args.Get("host").value_or("127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.GetLong("port", 47801));
  ndp::NdpClient client(
      std::make_shared<rpc::Client>(net::TcpConnect(host, port)), "data");
  ndp::NdpLoadStats stats;
  const contour::PolyData poly =
      client.Contour(args.Require("key"), args.Require("array"),
                     ParseIsovalues(args.Require("iso")), &stats);
  std::printf("NDP contour: %zu triangles; %llu of %llu points (%.4f%%), "
              "payload %llu bytes\n",
              poly.TriangleCount(),
              static_cast<unsigned long long>(stats.selected_points),
              static_cast<unsigned long long>(stats.total_points),
              100.0 * stats.Selectivity(),
              static_cast<unsigned long long>(stats.payload_bytes));
  if (const auto obj = args.Get("obj")) {
    poly.WriteObj(*obj);
    std::printf("wrote %s\n", obj->c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  try {
    if (command == "gen") return CmdGen(args);
    if (command == "info") return CmdInfo(args);
    if (command == "contour") return CmdContour(args);
    if (command == "select") return CmdSelect(args);
    if (command == "serve") return CmdServe(args);
    if (command == "fetch") return CmdFetch(args);
    Usage(("unknown command: " + command).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
