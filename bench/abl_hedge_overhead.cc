// Ablation: what hedged requests cost when healthy, and buy when not.
//
// Hedging launches a backup sub-fetch when a shard's primary blows
// through a latency budget. The machinery (per-slot race state, the
// timed condition-variable wait, loser parking) must be close to free
// when every replica is healthy, or it would never be left armed.
// Target: <2% mean latency with hedging disabled vs a build that never
// had the code path, and near-zero extra cost armed-but-idle.
//
// Four configurations over a 3-server, 2-replica in-proc cluster:
//   healthy / hedging off    — the baseline
//   healthy / hedging armed  — the overhead under test
//   slow replica / off       — every fetch eats the injected delay
//   slow replica / armed     — the hedge fires and the backup wins
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/sharded_client.h"
#include "net/fault.h"
#include "obs/metrics.h"

namespace vizndp::bench {
namespace {

using std::chrono::microseconds;

constexpr double kSlowReplicaDelayMs = 60.0;
constexpr double kHedgeMs = 8.0;

// Builds a 3-server cluster; when `slow_server` >= 0 that node answers
// everything `kSlowReplicaDelayMs` late, modeling a degraded storage
// node that is alive but useless for tail latency.
bench_util::ClusterTestbedConfig MakeConfig(double hedge_ms, int slow_server) {
  bench_util::ClusterTestbedConfig config;
  config.servers = 3;
  config.replicas = 2;
  config.client_options.call_timeout = std::chrono::milliseconds(10'000);
  config.sharded.hedge_ms = hedge_ms;
  if (slow_server >= 0) {
    config.decorate = [slow_server](net::TransportPtr t,
                                    int server) -> net::TransportPtr {
      if (server != slow_server) return t;
      auto faulty =
          std::make_unique<net::FaultInjectingTransport>(std::move(t));
      faulty->ScriptReceive(
          {net::FaultAction::Delay(
              microseconds(static_cast<std::int64_t>(kSlowReplicaDelayMs * 1e3)))},
          /*loop_last=*/true);
      return faulty;
    };
  }
  return config;
}

// Mean wall seconds for `reps` sharded sparse-field fetches.
double MeanShardedFetchSeconds(double hedge_ms, int slow_server,
                               const BenchParams& params, int reps) {
  bench_util::ClusterTestbed cluster(MakeConfig(hedge_ms, slow_server));
  sim::ImpactConfig cfg;
  cfg.n = params.n;
  const grid::Dataset ds = sim::GenerateImpactTimestep(cfg, 24006, {"v02"});
  io::VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec("lz4"));
  writer.SetBrickSize(16);
  writer.WriteToStore(cluster.store(), cluster.bucket(), "ts.vnd");
  const std::vector<double> isos = {0.5};

  grid::UniformGeometry geometry;
  // Warm: first fetch pays the ndp.info round and its cache fill.
  (void)cluster.sharded_client()->FetchSparseField("ts.vnd", "v02", isos,
                                                   &geometry, nullptr);
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    (void)cluster.sharded_client()->FetchSparseField("ts.vnd", "v02", isos,
                                                     &geometry, nullptr);
    samples.push_back(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  }
  return bench_util::Summarize(samples).mean;
}

std::uint64_t Counter(const std::string& name) {
  return obs::DefaultRegistry().GetCounter(name).value();
}

int Run() {
  BenchParams params;
  params.steps = 2;  // generator minimum; only the first timestep is used
  // Overhead in the microsecond range needs more samples than the
  // throughput benches to stabilise.
  const int reps = params.reps * 8;

  std::cerr << "[setup] 3 shards x 2 replicas, " << params.n << "^3, "
            << reps << " reps per configuration\n";

  const double off_s = MeanShardedFetchSeconds(-1.0, -1, params, reps);
  const double armed_s = MeanShardedFetchSeconds(kHedgeMs, -1, params, reps);
  const std::uint64_t healthy_hedges = Counter("ndp_hedge_launched_total");

  const double slow_off_s =
      MeanShardedFetchSeconds(-1.0, /*slow_server=*/1, params, reps);
  const double slow_armed_s =
      MeanShardedFetchSeconds(kHedgeMs, /*slow_server=*/1, params, reps);
  const std::uint64_t total_hedges = Counter("ndp_hedge_launched_total");
  const std::uint64_t hedge_wins = Counter("ndp_hedge_won_total");

  const double armed_pct = (armed_s / off_s - 1.0) * 100.0;
  const double rescue_pct = (1.0 - slow_armed_s / slow_off_s) * 100.0;

  std::cout << "Hedged-request ablation (in-proc, " << params.n << "^3, "
            << reps << " reps, slow replica +"
            << static_cast<int>(kSlowReplicaDelayMs) << "ms, hedge after "
            << kHedgeMs << "ms)\n";
  bench_util::Table table({"configuration", "mean load", "delta"});
  char pct[32];
  table.AddRow({"healthy, hedging off", bench_util::FormatSeconds(off_s),
                "--"});
  std::snprintf(pct, sizeof(pct), "%+.2f%%", armed_pct);
  table.AddRow({"healthy, hedging armed", bench_util::FormatSeconds(armed_s),
                pct});
  table.AddRow({"slow replica, hedging off",
                bench_util::FormatSeconds(slow_off_s), "--"});
  std::snprintf(pct, sizeof(pct), "-%.1f%%", rescue_pct);
  table.AddRow({"slow replica, hedging armed",
                bench_util::FormatSeconds(slow_armed_s), pct});
  table.Print(std::cout);
  std::cout << "hedges launched: " << total_hedges << " (healthy runs: "
            << healthy_hedges << "), won: " << hedge_wins << "\n";

  const std::string csv = bench_util::ResultsDir() + "/abl_hedge_overhead.csv";
  table.WriteCsv(csv);
  std::fprintf(stderr, "[result] wrote %s\n", csv.c_str());
  if (armed_pct >= 2.0) {
    std::fprintf(stderr,
                 "[warn] armed-but-idle overhead %.2f%% exceeds the 2%% "
                 "budget; rerun with more reps before concluding a "
                 "regression\n",
                 armed_pct);
  }
  if (slow_armed_s >= slow_off_s) {
    std::fprintf(stderr,
                 "[warn] hedging did not beat the slow replica (%.4fs vs "
                 "%.4fs)\n",
                 slow_armed_s, slow_off_s);
  }
  return 0;
}

}  // namespace
}  // namespace vizndp::bench

int main() { return vizndp::bench::Run(); }
