// Fig. 13 reproduction (all six panels): data load time, baseline vs NDP,
// for RAW/GZip/LZ4 on v02 and v03 across the timestep series. Contour
// value fixed at 0.1 per panel row, with the 0.1–0.9 sweep summarized by
// table2_speedups (the paper notes the per-value differences are
// negligible for load time).
//
// Paper expectations: NDP wins everywhere (1.2–2.8x); biggest wins on RAW
// (largest base data); LZ4 > GZip; v03 slightly better than v02.
#include "bench_common.h"

using namespace vizndp;
using namespace vizndp::bench;

int main() {
  const BenchParams params;
  bench_util::Testbed testbed;
  const auto labels = PopulateImpactSeries(testbed, params);
  const std::vector<double> isovalues = {0.1};

  for (const char* array : {"v02", "v03"}) {
    for (const std::string& codec : BenchCodecs()) {
      bench_util::Table table(
          {"timestep", "baseline", "NDP", "speedup", "NDP net bytes"});
      for (const std::int64_t t : labels) {
        const std::string key = TimestepKey(codec, t);
        const double base_mean = MeanLoadSeconds(
            params.reps, [&] { return BaselineLoad(testbed, key, array); });
        ndp::NdpLoadStats stats;
        std::vector<double> ndp_samples;
        for (int r = 0; r < params.reps; ++r) {
          ndp_samples.push_back(
              NdpLoad(testbed, key, array, isovalues, &stats).total_s);
        }
        const double ndp_mean = bench_util::Summarize(ndp_samples).mean;
        table.AddRow({std::to_string(t), bench_util::FormatSeconds(base_mean),
                      bench_util::FormatSeconds(ndp_mean),
                      bench_util::FormatRatio(base_mean / ndp_mean),
                      bench_util::FormatBytes(stats.payload_bytes)});
      }
      const std::string panel =
          std::string(array) == "v02"
              ? (codec == "none" ? "a" : codec == "gzip" ? "b" : "c")
              : (codec == "none" ? "d" : codec == "gzip" ? "e" : "f");
      std::cout << "\nFig. 13" << panel << " — load time, baseline vs NDP ("
                << CodecLabel(codec) << ", " << array << ")\n";
      table.Print(std::cout);
      table.WriteCsv(bench_util::ResultsDir() + "/fig13_" + codec + "_" +
                     array + ".csv");
    }
  }
  return 0;
}
