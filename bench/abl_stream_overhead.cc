// Ablation: what chunked streaming costs on the happy path.
//
// The streaming reply trades one big response for a header, a train of
// CRC-stamped per-batch chunks, and a terminal summary. That buys
// incremental memory release, resume cursors and cancellation — but
// the happy path (no fault, no cancel) pays the framing: one
// encode/decode and one msgpack envelope per chunk, plus per-batch
// budget reservations server-side. Target: <2% median fetch latency at
// the production chunk size vs the monolithic reply — the median,
// because the in-proc mean is dominated by scheduler tail noise that
// swamps a 2% signal.
//
// Three configurations over a single-node in-proc testbed:
//   monolithic          — the baseline single-reply fetch
//   stream, 16 bricks   — the production default; carries the <2% budget
//   stream, 1 brick     — worst-case framing: one chunk per brick,
//                         quantifies how the overhead scales with the
//                         chunk count
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ndp/ndp_client.h"

namespace vizndp::bench {
namespace {

struct StreamRun {
  std::int64_t chunk_bricks = 0;  // 0 = monolithic
  std::vector<double> samples;
  double median_s = 0;
  std::uint64_t chunks = 0;  // per fetch, from the terminal summary
  int reps = 0;
};

// All configurations fetch from one testbed, one rep apiece per round —
// interleaved so clock-speed drift and scheduler noise (a 2% signal
// drowns in either) land on every configuration equally instead of
// biasing whichever ran last.
void MeasureInterleaved(std::vector<StreamRun>& runs,
                        const BenchParams& params, int min_reps) {
  bench_util::Testbed testbed;
  sim::ImpactConfig cfg;
  cfg.n = params.n;
  const grid::Dataset ds = sim::GenerateImpactTimestep(cfg, 24006, {"v02"});
  io::VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec("lz4"));
  writer.SetBrickSize(16);
  writer.WriteToStore(testbed.store(), testbed.bucket(), "ts.vnd");
  const std::vector<double> isos = {0.5};

  grid::UniformGeometry geometry;
  for (StreamRun& run : runs) {
    run.samples.reserve(static_cast<size_t>(min_reps));
    ndp::StreamOptions stream;
    stream.chunk_bricks = run.chunk_bricks;
    testbed.ndp_client().SetStream(stream);
    // Warm: the first fetch pays connection setup and cache fills.
    (void)testbed.ndp_client().FetchSparseField("ts.vnd", "v02", isos,
                                                &geometry, nullptr);
  }
  for (int rep = 0; rep < min_reps; ++rep) {
    for (StreamRun& run : runs) {
      ndp::StreamOptions stream;
      stream.chunk_bricks = run.chunk_bricks;
      testbed.ndp_client().SetStream(stream);
      ndp::NdpLoadStats stats;
      const auto start = std::chrono::steady_clock::now();
      (void)testbed.ndp_client().FetchSparseField("ts.vnd", "v02", isos,
                                                  &geometry, &stats);
      run.samples.push_back(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count());
      run.chunks = run.chunk_bricks == 0 ? 1 : stats.stream_chunks;
    }
  }
  for (StreamRun& run : runs) {
    std::sort(run.samples.begin(), run.samples.end());
    run.median_s = run.samples[run.samples.size() / 2];
    run.reps = static_cast<int>(run.samples.size());
  }
}

int Run() {
  BenchParams params;
  params.steps = 2;  // generator minimum; only the first timestep is used
  const int min_reps = params.reps * 32;

  std::cerr << "[setup] 1 node, " << params.n << "^3, >=" << min_reps
            << " interleaved reps per configuration\n";

  std::vector<StreamRun> runs(3);
  runs[0].chunk_bricks = 0;   // monolithic baseline
  runs[1].chunk_bricks = 16;  // production default
  runs[2].chunk_bricks = 1;   // worst-case framing
  MeasureInterleaved(runs, params, min_reps);
  const StreamRun& mono = runs[0];
  const StreamRun& prod = runs[1];
  const StreamRun& fine = runs[2];

  const double prod_pct = (prod.median_s / mono.median_s - 1.0) * 100.0;
  const double fine_pct = (fine.median_s / mono.median_s - 1.0) * 100.0;

  std::cout << "Stream-overhead ablation (in-proc, " << params.n << "^3)\n";
  bench_util::Table table(
      {"configuration", "median load", "delta", "chunks", "reps"});
  char pct[32];
  table.AddRow({"monolithic", bench_util::FormatSeconds(mono.median_s), "--",
                "1", std::to_string(mono.reps)});
  std::snprintf(pct, sizeof(pct), "%+.2f%%", prod_pct);
  table.AddRow({"stream, 16 bricks/chunk",
                bench_util::FormatSeconds(prod.median_s), pct,
                std::to_string(prod.chunks), std::to_string(prod.reps)});
  std::snprintf(pct, sizeof(pct), "%+.2f%%", fine_pct);
  table.AddRow({"stream, 1 brick/chunk",
                bench_util::FormatSeconds(fine.median_s), pct,
                std::to_string(fine.chunks), std::to_string(fine.reps)});
  table.Print(std::cout);

  const std::string csv =
      bench_util::ResultsDir() + "/abl_stream_overhead.csv";
  table.WriteCsv(csv);
  std::fprintf(stderr, "[result] wrote %s\n", csv.c_str());
  if (prod_pct >= 2.0) {
    std::fprintf(stderr,
                 "[warn] production-chunk streaming overhead %.2f%% exceeds "
                 "the 2%% budget; rerun with more reps before concluding a "
                 "regression\n",
                 prod_pct);
  }
  return 0;
}

}  // namespace
}  // namespace vizndp::bench

int main() { return vizndp::bench::Run(); }
