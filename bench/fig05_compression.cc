// Fig. 5 reproduction (all six panels): VTK-native compression on the
// deep water asteroid impact dataset.
//   (a)/(d) compression ratio vs timestep for v02 / v03 (GZip and LZ4);
//   (b)/(e) remote (S3-over-1GbE) data load time, RAW vs GZip vs LZ4;
//   (c)/(f) local-filesystem data load time, RAW vs GZip vs LZ4.
//
// Paper expectations: GZip ratio > LZ4 ratio, both decay over time;
// compressed remote loads >= ~3x faster than RAW; local loads show LZ4
// always beating GZip (decompression-bound regime).
#include "bench_common.h"

using namespace vizndp;
using namespace vizndp::bench;

namespace {

// "Local filesystem" variant of the load: the reader runs against the
// local gateway, so only the SSD model and decompression cost remain.
bench_util::LoadTimer::Result LocalLoad(bench_util::Testbed& testbed,
                                        const std::string& key,
                                        const std::string& array) {
  auto timer = testbed.StartLoadTimer();
  io::VndReader reader(testbed.LocalGateway().Open(key));
  (void)reader.ReadArray(array);
  return timer.Stop();
}

}  // namespace

int main() {
  const BenchParams params;
  bench_util::Testbed testbed;
  const auto labels = PopulateImpactSeries(testbed, params);

  for (const char* array : {"v02", "v03"}) {
    // Panels (a)/(d): compression ratios.
    bench_util::Table ratio_table(
        {"timestep", "raw size", "GZip ratio", "LZ4 ratio"});
    for (const std::int64_t t : labels) {
      io::VndReader raw(testbed.LocalGateway().Open(TimestepKey("none", t)));
      io::VndReader gz(testbed.LocalGateway().Open(TimestepKey("gzip", t)));
      io::VndReader lz(testbed.LocalGateway().Open(TimestepKey("lz4", t)));
      const double raw_size = static_cast<double>(raw.StoredSize(array));
      ratio_table.AddRow(
          {std::to_string(t),
           bench_util::FormatBytes(raw.StoredSize(array)),
           bench_util::FormatRatio(raw_size / static_cast<double>(
                                                  gz.StoredSize(array))),
           bench_util::FormatRatio(raw_size / static_cast<double>(
                                                  lz.StoredSize(array)))});
    }
    std::cout << "\nFig. 5" << (std::string(array) == "v02" ? "a" : "d")
              << " — compression ratio vs timestep (" << array << ")\n";
    ratio_table.Print(std::cout);
    ratio_table.WriteCsv(bench_util::ResultsDir() + "/fig05_ratio_" + array +
                         ".csv");

    // Panels (b)/(e): remote load times; (c)/(f): local load times.
    for (const bool remote : {true, false}) {
      bench_util::Table time_table(
          {"timestep", "RAW", "GZip", "LZ4"});
      for (const std::int64_t t : labels) {
        std::vector<std::string> row = {std::to_string(t)};
        for (const std::string& codec : BenchCodecs()) {
          const double mean = MeanLoadSeconds(params.reps, [&] {
            return remote ? BaselineLoad(testbed, TimestepKey(codec, t), array)
                          : LocalLoad(testbed, TimestepKey(codec, t), array);
          });
          row.push_back(bench_util::FormatSeconds(mean));
        }
        time_table.AddRow(std::move(row));
      }
      const char* panel = std::string(array) == "v02" ? (remote ? "b" : "c")
                                                      : (remote ? "e" : "f");
      std::cout << "\nFig. 5" << panel << " — "
                << (remote ? "remote (S3 over emulated 1GbE)" : "local")
                << " data load time (" << array << ")\n";
      time_table.Print(std::cout);
      time_table.WriteCsv(bench_util::ResultsDir() + "/fig05_" +
                          (remote ? "remote_" : "local_") + array + ".csv");
    }
  }
  return 0;
}
