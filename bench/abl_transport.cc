// Ablation A: transport independence. Runs the same NDP pre-filter call
// over (1) the in-process channel used by the emulated testbed and
// (2) real TCP on loopback, verifying byte-identical selections and
// reporting the real (wall-clock) RPC cost of each. This validates that
// the emulation's only modeled quantity is the link time, not protocol
// behaviour.
#include "bench_common.h"

#include "ndp/ndp_server.h"
#include "net/tcp.h"
#include "rpc/server.h"

using namespace vizndp;
using namespace vizndp::bench;

int main() {
  BenchParams params;
  params.steps = 3;
  bench_util::Testbed testbed;
  const auto labels = PopulateImpactSeries(testbed, params);
  const std::vector<double> isos = {0.1};

  // TCP side: a second NDP server over real sockets on the same store.
  rpc::Server rpc_server;
  ndp::NdpServer ndp_server(testbed.LocalGateway());
  ndp_server.Bind(rpc_server);
  rpc::TcpRpcServer tcp(rpc_server, 0);
  ndp::NdpClient tcp_client(
      std::make_shared<rpc::Client>(net::TcpConnect("127.0.0.1", tcp.port())),
      testbed.bucket());

  bench_util::Table table({"timestep", "selected", "in-proc RPC", "TCP RPC",
                           "identical"});
  for (const std::int64_t t : labels) {
    const std::string key = TimestepKey("none", t);
    ndp::NdpLoadStats inproc_stats, tcp_stats;
    grid::UniformGeometry geo;

    bench_util::Stopwatch sw1;
    const contour::SparseField a = testbed.ndp_client().FetchSparseField(
        key, "v02", isos, &geo, &inproc_stats);
    const double inproc_s = sw1.Seconds();

    bench_util::Stopwatch sw2;
    const contour::SparseField b =
        tcp_client.FetchSparseField(key, "v02", isos, &geo, &tcp_stats);
    const double tcp_s = sw2.Seconds();

    const bool identical =
        inproc_stats.selected_points == tcp_stats.selected_points &&
        inproc_stats.payload_bytes == tcp_stats.payload_bytes &&
        a.ValidCount() == b.ValidCount();
    table.AddRow({std::to_string(t),
                  std::to_string(inproc_stats.selected_points),
                  bench_util::FormatSeconds(inproc_s),
                  bench_util::FormatSeconds(tcp_s),
                  identical ? "yes" : "NO"});
  }
  std::cout << "Ablation A — NDP select over in-proc vs real TCP transports\n";
  table.Print(std::cout);
  table.WriteCsv(bench_util::ResultsDir() + "/abl_transport.csv");
  return 0;
}
