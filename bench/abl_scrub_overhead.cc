// Ablation: what background scrubbing costs on the serving path.
//
// The Scrubber walks the catalog on its own low-priority thread,
// re-reading and CRC-checking every brick. Those reads share the object
// store (and the modeled SSD) with live ndp.select traffic, so the
// question is contention: does a scrub pass in flight slow the fetch
// path? The answer is a duty-cycle: a pass costs a fixed amount of
// store bandwidth, so the overhead is pass_cost / period. Target: <2%
// median (happy-path) fetch latency at the production cadence vs no
// scrubber at all — the median, because a pass is a burst: it lifts a
// handful of overlapping fetches, and the in-proc mean is dominated by
// scheduler tail noise that swamps a 2% signal.
//
// Three configurations over a single-node in-proc testbed serving one
// hot object out of a multi-object catalog (so passes have real work):
//   scrub off               — the baseline
//   scrub on, 5s period     — the production default; carries the <2%
//                             budget
//   scrub on, 500ms period  — 10x hotter: quantifies how the overhead
//                             scales when the duty cycle grows
//
// Each measurement window spans at least ~2.2 periods (the `passes`
// column proves scrubbing actually overlapped the fetch stream — a
// window shorter than the period would measure nothing).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ndp/scrub_verify.h"
#include "obs/metrics.h"
#include "storage/scrubber.h"

namespace vizndp::bench {
namespace {

constexpr int kCatalogObjects = 6;

struct ScrubRun {
  double median_s = 0;
  std::uint64_t passes = 0;
  int reps = 0;
};

// Median wall seconds per NDP fetch with an optional scrubber running
// at `scrub_period` (0 = no scrubber). Fetches repeat until both
// `min_reps` samples are taken and `min_window` has elapsed, so slow
// cadences still overlap several passes. Each configuration gets a
// fresh testbed so scrub state never leaks across runs.
ScrubRun MeasureFetches(std::chrono::milliseconds scrub_period,
                        const BenchParams& params, int min_reps,
                        std::chrono::milliseconds min_window) {
  bench_util::Testbed testbed;
  sim::ImpactConfig cfg;
  cfg.n = params.n;
  for (int i = 0; i < kCatalogObjects; ++i) {
    const grid::Dataset ds =
        sim::GenerateImpactTimestep(cfg, 24006 + i, {"v02"});
    io::VndWriter writer(ds);
    writer.SetCodec(compress::MakeCodec("lz4"));
    writer.SetBrickSize(16);
    writer.WriteToStore(testbed.store(), testbed.bucket(),
                        "ts" + std::to_string(i) + ".vnd");
  }
  const std::vector<double> isos = {0.5};

  storage::QuarantineSet quarantine;
  std::unique_ptr<storage::Scrubber> scrubber;
  if (scrub_period.count() > 0) {
    storage::ScrubberOptions options;
    options.period = scrub_period;
    scrubber = std::make_unique<storage::Scrubber>(
        testbed.LocalGateway(),
        ndp::MakeVndScrubVerifier(testbed.LocalGateway(), quarantine,
                                  &testbed.rpc_server().memory_budget()),
        quarantine, options);
    scrubber->Start();
  }

  grid::UniformGeometry geometry;
  // Warm: the first fetch pays connection setup and cache fills.
  (void)testbed.ndp_client().FetchSparseField("ts0.vnd", "v02", isos,
                                              &geometry, nullptr);
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(min_reps));
  const auto window_start = std::chrono::steady_clock::now();
  while (static_cast<int>(samples.size()) < min_reps ||
         std::chrono::steady_clock::now() - window_start < min_window) {
    const auto start = std::chrono::steady_clock::now();
    (void)testbed.ndp_client().FetchSparseField("ts0.vnd", "v02", isos,
                                                &geometry, nullptr);
    samples.push_back(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  }
  ScrubRun run;
  if (scrubber != nullptr) {
    scrubber->Stop();
    run.passes = scrubber->status().passes;
  }
  std::sort(samples.begin(), samples.end());
  run.median_s = samples[samples.size() / 2];
  run.reps = static_cast<int>(samples.size());
  return run;
}

int Run() {
  BenchParams params;
  params.steps = 2;  // generator minimum; only the first timestep is used
  const int min_reps = params.reps * 32;
  const auto production = std::chrono::milliseconds(5000);
  const auto hot = std::chrono::milliseconds(500);
  // ~2.2 periods: guarantees at least two full passes land inside the
  // window even with the scrubber's 0.5 jitter pulling sleeps short.
  auto window_for = [](std::chrono::milliseconds period) {
    return std::chrono::milliseconds(period.count() * 22 / 10);
  };

  std::cerr << "[setup] 1 node, " << kCatalogObjects << " objects of "
            << params.n << "^3, >=" << min_reps
            << " reps per configuration\n";

  const ScrubRun off = MeasureFetches(std::chrono::milliseconds(0), params,
                                      min_reps, window_for(production));
  const ScrubRun on =
      MeasureFetches(production, params, min_reps, window_for(production));
  const ScrubRun hot_run =
      MeasureFetches(hot, params, min_reps, window_for(hot));

  const double on_pct = (on.median_s / off.median_s - 1.0) * 100.0;
  const double hot_pct = (hot_run.median_s / off.median_s - 1.0) * 100.0;

  std::cout << "Scrub-overhead ablation (in-proc, " << kCatalogObjects
            << "x " << params.n << "^3 catalog)\n";
  bench_util::Table table(
      {"configuration", "median load", "delta", "passes", "reps"});
  char pct[32];
  table.AddRow({"scrub off", bench_util::FormatSeconds(off.median_s), "--", "0",
                std::to_string(off.reps)});
  std::snprintf(pct, sizeof(pct), "%+.2f%%", on_pct);
  table.AddRow({"scrub on, 5s period", bench_util::FormatSeconds(on.median_s),
                pct, std::to_string(on.passes), std::to_string(on.reps)});
  std::snprintf(pct, sizeof(pct), "%+.2f%%", hot_pct);
  table.AddRow({"scrub on, 500ms period",
                bench_util::FormatSeconds(hot_run.median_s), pct,
                std::to_string(hot_run.passes),
                std::to_string(hot_run.reps)});
  table.Print(std::cout);

  const std::string csv = bench_util::ResultsDir() + "/abl_scrub_overhead.csv";
  table.WriteCsv(csv);
  std::fprintf(stderr, "[result] wrote %s\n", csv.c_str());
  if (on_pct >= 2.0) {
    std::fprintf(stderr,
                 "[warn] production-cadence scrub overhead %.2f%% exceeds "
                 "the 2%% budget; rerun with more reps before concluding a "
                 "regression\n",
                 on_pct);
  }
  return 0;
}

}  // namespace
}  // namespace vizndp::bench

int main() { return vizndp::bench::Run(); }
