// Fig. 6 reproduction: contour data selection rates for v02 and v03,
// expressed in permillage (‰) of the original array, over the timestep
// series x contour values 0.1..0.9.
//
// Paper expectations: 0.01‰–4% band overall; v03 (asteroid) far more
// selective than v02 (water); selectivity improving (fewer points) as the
// contour value rises; v02 selection growing after the mid-run impact.
#include "bench_common.h"

#include "contour/select.h"

using namespace vizndp;
using namespace vizndp::bench;

int main() {
  const BenchParams params;
  sim::ImpactConfig cfg;
  cfg.n = params.n;
  const auto labels = sim::ImpactTimestepLabels(cfg, params.steps);
  const std::vector<double> contour_values = {0.1, 0.3, 0.5, 0.7, 0.9};

  for (const char* array : {"v02", "v03"}) {
    bench_util::Table table({"timestep", "0.1", "0.3", "0.5", "0.7", "0.9"});
    for (const std::int64_t t : labels) {
      const grid::Dataset ds = sim::GenerateImpactTimestep(cfg, t, {array});
      const grid::DataArray& a = ds.GetArray(array);
      std::vector<std::string> row = {std::to_string(t)};
      for (const double value : contour_values) {
        const double isos[] = {value};
        const auto count =
            contour::CountInterestingPoints(ds.dims(), a, isos);
        row.push_back(bench_util::FormatPermille(
            1000.0 * static_cast<double>(count) /
            static_cast<double>(ds.dims().PointCount())));
      }
      table.AddRow(std::move(row));
    }
    std::cout << "\nFig. 6" << (std::string(array) == "v02" ? "a" : "b")
              << " — selection rate (permillage of points) for " << array
              << ", " << params.n << "^3\n";
    table.Print(std::cout);
    table.WriteCsv(bench_util::ResultsDir() + "/fig06_" + array + ".csv");
  }
  return 0;
}
