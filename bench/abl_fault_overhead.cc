// Ablation: happy-path cost of the fault-tolerance machinery.
//
// The robustness layer (deadline-aware receives, per-call timeouts, the
// retry wrapper with fresh msgids) must be close to free when nothing is
// failing, or nobody would leave it on. This bench runs the same NDP
// sparse-field load through (a) a plain client — no deadline, single
// attempt — and (b) a client with a call timeout and a 3-attempt retry
// policy, over a healthy in-proc transport, and reports the overhead.
// Target: <2% mean latency on the in-proc happy path.
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ndp/ndp_client.h"
#include "net/retry.h"
#include "rpc/client.h"

namespace vizndp::bench {
namespace {

using std::chrono::milliseconds;

// Mean seconds for `reps` sparse-field fetches through `client`.
double MeanFetchSeconds(bench_util::Testbed& testbed, ndp::NdpClient& client,
                        const std::string& key, const std::string& array,
                        const std::vector<double>& isos, int reps) {
  return MeanLoadSeconds(reps, [&] {
    auto timer = testbed.StartLoadTimer();
    grid::UniformGeometry geometry;
    (void)client.FetchSparseField(key, array, isos, &geometry, nullptr);
    return timer.Stop();
  });
}

int Run() {
  BenchParams params;
  params.steps = 2;  // generator minimum; only the first timestep is used
  // Overhead in the microsecond range needs more samples than the
  // throughput benches to stabilise.
  const int reps = params.reps * 8;

  bench_util::Testbed testbed;
  const auto labels = PopulateImpactSeries(testbed, params, {"v02"});
  const std::string key = TimestepKey("none", labels.front());
  const std::vector<double> isos = {0.5};

  // Plain client: no deadline, one attempt, on its own connection.
  ndp::NdpClientOptions plain_opts;
  plain_opts.retry.max_attempts = 1;
  auto plain_rpc = std::make_shared<rpc::Client>(testbed.ConnectToServer());
  ndp::NdpClient plain(plain_rpc, testbed.bucket(), plain_opts);

  // Guarded client: generous deadline (never fires when healthy) plus the
  // full retry policy, so every per-call bookkeeping path is exercised.
  ndp::NdpClientOptions guarded_opts;
  guarded_opts.call_timeout = milliseconds(10'000);
  guarded_opts.retry.max_attempts = 3;
  guarded_opts.retry.base_delay = milliseconds(1);
  auto guarded_rpc = std::make_shared<rpc::Client>(testbed.ConnectToServer());
  ndp::NdpClient guarded(guarded_rpc, testbed.bucket(), guarded_opts);

  // Warm both connections (first call pays one-time setup).
  (void)MeanFetchSeconds(testbed, plain, key, "v02", isos, 1);
  (void)MeanFetchSeconds(testbed, guarded, key, "v02", isos, 1);

  const double plain_s = MeanFetchSeconds(testbed, plain, key, "v02", isos, reps);
  const double guarded_s =
      MeanFetchSeconds(testbed, guarded, key, "v02", isos, reps);
  const double overhead_pct = (guarded_s / plain_s - 1.0) * 100.0;

  std::cout << "Happy-path overhead of deadlines+retry (in-proc, " << params.n
            << "^3, " << reps << " reps)\n";
  bench_util::Table table({"client", "mean load", "overhead"});
  table.AddRow({"plain (no deadline, 1 attempt)",
                bench_util::FormatSeconds(plain_s), "--"});
  char pct[32];
  std::snprintf(pct, sizeof(pct), "%+.2f%%", overhead_pct);
  table.AddRow({"guarded (timeout + 3-attempt retry)",
                bench_util::FormatSeconds(guarded_s), pct});
  table.Print(std::cout);

  const std::string csv = bench_util::ResultsDir() + "/abl_fault_overhead.csv";
  table.WriteCsv(csv);
  std::fprintf(stderr, "[result] wrote %s\n", csv.c_str());
  if (overhead_pct >= 2.0) {
    std::fprintf(stderr,
                 "[warn] overhead %.2f%% exceeds the 2%% budget; rerun with "
                 "more reps before concluding a regression\n",
                 overhead_pct);
  }
  return 0;
}

}  // namespace
}  // namespace vizndp::bench

int main() { return vizndp::bench::Run(); }
