// Table II reproduction: speedups in data load time from every
// combination of data reduction techniques — RAW (baseline), NDP alone,
// GZip, LZ4, GZip+NDP, LZ4+NDP — per array (v02, v03) and contour value
// (0.1..0.9), aggregated over the timestep series exactly as the paper's
// table aggregates its Fig. 13 runs.
//
// Paper expectations (shape): NDP alone ~2.3-2.8x; GZip ~3.9x; LZ4 ~4.6x;
// GZip+NDP ~4.8-7.4x; LZ4+NDP ~6.2-11.9x; v03 > v02; speedups rising
// slightly with the contour value.
#include <map>

#include "bench_common.h"

using namespace vizndp;
using namespace vizndp::bench;

namespace {

std::string ContourLabel(double value) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%.1f", value);
  return buf;
}

}  // namespace

int main() {
  const BenchParams params;
  bench_util::Testbed testbed;
  const auto labels = PopulateImpactSeries(testbed, params);
  const std::vector<double> contour_values = {0.1, 0.3, 0.5, 0.7, 0.9};

  bench_util::Table table({"array", "contour", "RAW", "NDP", "GZip", "LZ4",
                           "GZip+NDP", "LZ4+NDP"});

  for (const char* array : {"v02", "v03"}) {
    // The compression-only columns do not depend on the contour value;
    // measure them once per array (summed over the series).
    std::map<std::string, double> baseline_total;  // codec -> total seconds
    for (const std::string& codec : BenchCodecs()) {
      double total = 0;
      for (const std::int64_t t : labels) {
        total += MeanLoadSeconds(params.reps, [&] {
          return BaselineLoad(testbed, TimestepKey(codec, t), array);
        });
      }
      baseline_total[codec] = total;
    }

    for (const double value : contour_values) {
      const std::vector<double> isos = {value};
      std::map<std::string, double> ndp_total;
      for (const std::string& codec : BenchCodecs()) {
        double total = 0;
        for (const std::int64_t t : labels) {
          total += MeanLoadSeconds(params.reps, [&] {
            return NdpLoad(testbed, TimestepKey(codec, t), array, isos);
          });
        }
        ndp_total[codec] = total;
      }
      const double raw = baseline_total["none"];
      table.AddRow(
          {array, ContourLabel(value),
           "1.0x",
           bench_util::FormatRatio(raw / ndp_total["none"]),
           bench_util::FormatRatio(raw / baseline_total["gzip"]),
           bench_util::FormatRatio(raw / baseline_total["lz4"]),
           bench_util::FormatRatio(raw / ndp_total["gzip"]),
           bench_util::FormatRatio(raw / ndp_total["lz4"])});
    }
  }

  std::cout << "\nTable II — speedups in data load time by technique "
            << "(impact dataset, " << params.n << "^3, " << labels.size()
            << " timesteps)\n";
  table.Print(std::cout);
  table.WriteCsv(bench_util::ResultsDir() + "/table2_speedups.csv");
  return 0;
}
