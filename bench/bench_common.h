// Shared setup for the reproduction benches: dataset generation, store
// population (one object per timestep per codec), and environment-
// variable knobs so the suite scales from CI boxes to big servers.
//
//   VIZNDP_BENCH_N      grid edge length (default 80; paper used 500)
//   VIZNDP_BENCH_STEPS  timesteps in the series (default 9, as the paper)
//   VIZNDP_BENCH_REPS   repetitions averaged per point (default 2;
//                       paper used 5)
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util/stats.h"
#include "bench_util/table.h"
#include "bench_util/testbed.h"
#include "io/vnd_format.h"
#include "sim/impact.h"
#include "sim/nyx.h"

namespace vizndp::bench {

inline long EnvLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

struct BenchParams {
  long n = EnvLong("VIZNDP_BENCH_N", 128);
  int steps = static_cast<int>(EnvLong("VIZNDP_BENCH_STEPS", 9));
  int reps = static_cast<int>(EnvLong("VIZNDP_BENCH_REPS", 2));
};

inline const std::vector<std::string>& BenchCodecs() {
  static const std::vector<std::string> codecs = {"none", "gzip", "lz4"};
  return codecs;
}

// Human name used in paper tables ("RAW" instead of "none").
inline std::string CodecLabel(const std::string& codec) {
  return codec == "none" ? "RAW" : (codec == "gzip" ? "GZip" : "LZ4");
}

inline std::string TimestepKey(const std::string& codec, std::int64_t t) {
  return codec + "/ts" + std::to_string(t) + ".vnd";
}

// Generates the impact series once and stores each timestep under every
// codec. Returns the timestep labels.
inline std::vector<std::int64_t> PopulateImpactSeries(
    bench_util::Testbed& testbed, const BenchParams& params,
    const std::vector<std::string>& arrays = {"v02", "v03"}) {
  sim::ImpactConfig cfg;
  cfg.n = params.n;
  const auto labels = sim::ImpactTimestepLabels(cfg, params.steps);
  std::cerr << "[setup] generating " << labels.size() << " timesteps at "
            << params.n << "^3 and storing under " << BenchCodecs().size()
            << " codecs...\n";
  for (const std::int64_t t : labels) {
    const grid::Dataset ds = sim::GenerateImpactTimestep(cfg, t, arrays);
    for (const std::string& codec : BenchCodecs()) {
      io::VndWriter writer(ds);
      writer.SetCodec(compress::MakeCodec(codec));
      writer.WriteToStore(testbed.store(), testbed.bucket(),
                          TimestepKey(codec, t));
    }
  }
  return labels;
}

inline void PopulateNyx(bench_util::Testbed& testbed,
                        const BenchParams& params) {
  sim::NyxConfig cfg;
  cfg.n = params.n;
  std::cerr << "[setup] generating a " << params.n
            << "^3 Nyx snapshot and storing under " << BenchCodecs().size()
            << " codecs...\n";
  const grid::Dataset ds = sim::GenerateNyx(cfg, {"baryon_density"});
  for (const std::string& codec : BenchCodecs()) {
    io::VndWriter writer(ds);
    writer.SetCodec(compress::MakeCodec(codec));
    writer.WriteToStore(testbed.store(), testbed.bucket(),
                        codec + "/nyx.vnd");
  }
}

// One baseline data load (the paper's measured quantity): open the file
// through the *remote* gateway and read one array, decompressing as
// needed. Returns total modeled+measured seconds.
inline bench_util::LoadTimer::Result BaselineLoad(bench_util::Testbed& testbed,
                                                  const std::string& key,
                                                  const std::string& array) {
  auto timer = testbed.StartLoadTimer();
  io::VndReader reader(testbed.RemoteGateway().Open(key));
  (void)reader.ReadArray(array);
  return timer.Stop();
}

// One NDP data load: pre-filter remotely, ship the selection, reconstruct
// the sparse field (contour generation itself is excluded, matching the
// paper's metric).
inline bench_util::LoadTimer::Result NdpLoad(bench_util::Testbed& testbed,
                                             const std::string& key,
                                             const std::string& array,
                                             const std::vector<double>& isos,
                                             ndp::NdpLoadStats* stats = nullptr) {
  auto timer = testbed.StartLoadTimer();
  grid::UniformGeometry geometry;
  (void)testbed.ndp_client().FetchSparseField(key, array, isos, &geometry,
                                              stats);
  return timer.Stop();
}

// Averages `reps` runs of a load and returns mean total seconds.
template <typename LoadFn>
double MeanLoadSeconds(int reps, LoadFn&& load) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    samples.push_back(load().total_s);
  }
  return bench_util::Summarize(samples).mean;
}

}  // namespace vizndp::bench
