// Ablation C: link bandwidth sweep. The paper's testbed is 1 GbE; this
// sweep asks where NDP stops paying as the network gets faster. For each
// bandwidth we rebuild the testbed, then measure baseline vs NDP load
// time on one mid-run timestep.
//
// Expected shape: large NDP wins on slow links, shrinking toward ~1x as
// the local (SSD + decompress + pre-filter) path dominates — the paper's
// "NDP is lower-bounded by local read time" observation, seen from the
// other side.
#include "bench_common.h"

using namespace vizndp;
using namespace vizndp::bench;

int main() {
  BenchParams params;
  params.steps = 2;  // populate start+end; we measure the final timestep

  bench_util::Table table({"link", "baseline", "NDP", "speedup",
                           "baseline net", "NDP net"});
  const double gbit = 125.0e6;  // bytes/sec per Gb/s
  for (const double gbps : {0.1, 0.5, 1.0, 2.5, 10.0, 40.0, 100.0}) {
    bench_util::TestbedConfig cfg;
    cfg.link.bandwidth_bytes_per_sec = gbps * gbit;
    bench_util::Testbed testbed(cfg);
    const auto labels = PopulateImpactSeries(testbed, params);
    const std::string key = TimestepKey("none", labels.back());

    const auto base = BaselineLoad(testbed, key, "v02");
    const auto ndp = NdpLoad(testbed, key, "v02", {0.1});

    char label[32];
    std::snprintf(label, sizeof(label), "%.1f Gb/s", gbps);
    table.AddRow({label, bench_util::FormatSeconds(base.total_s),
                  bench_util::FormatSeconds(ndp.total_s),
                  bench_util::FormatRatio(base.total_s / ndp.total_s),
                  bench_util::FormatBytes(base.network_bytes),
                  bench_util::FormatBytes(ndp.network_bytes)});
  }
  std::cout << "Ablation C — NDP benefit vs link bandwidth (v02, RAW, "
            << "final timestep)\n";
  table.Print(std::cout);
  table.WriteCsv(bench_util::ResultsDir() + "/abl_bandwidth.csv");
  return 0;
}
