// Fig. 1 reproduction: data reduction ratios achieved by GZip, LZ4, and
// contour-based selection (the paper's headline comparison). For each
// technology we report the min..max reduction ratio observed across the
// timestep series and contour values 0.1–0.9, on the v02 and v03 arrays
// of the deep water asteroid impact dataset.
//
// Paper expectation: compression reduces 1–2 orders of magnitude;
// pipeline-filter-based selection reaches up to ~7 orders of magnitude.
#include <map>

#include "bench_common.h"
#include "contour/select.h"
#include "ndp/protocol.h"

using namespace vizndp;
using namespace vizndp::bench;

int main() {
  const BenchParams params;
  sim::ImpactConfig cfg;
  cfg.n = params.n;
  const auto labels = sim::ImpactTimestepLabels(cfg, params.steps);
  const std::vector<double> contour_values = {0.1, 0.3, 0.5, 0.7, 0.9};

  struct Range {
    double lo = 1e300;
    double hi = 0;
    void Add(double r) {
      lo = std::min(lo, r);
      hi = std::max(hi, r);
    }
  };
  std::map<std::string, Range> ranges;  // per technology, both arrays pooled

  const auto gzip = compress::MakeCodec("gzip");
  const auto lz4 = compress::MakeCodec("lz4");
  std::cerr << "[fig01] sweeping " << labels.size() << " timesteps...\n";
  for (const std::int64_t t : labels) {
    const grid::Dataset ds =
        sim::GenerateImpactTimestep(cfg, t, {"v02", "v03"});
    for (const char* array : {"v02", "v03"}) {
      const grid::DataArray& a = ds.GetArray(array);
      const auto raw = static_cast<double>(a.byte_size());
      ranges["GZip"].Add(raw / static_cast<double>(gzip->Compress(a.raw()).size()));
      ranges["LZ4"].Add(raw / static_cast<double>(lz4->Compress(a.raw()).size()));
      for (const double value : contour_values) {
        const double isos[] = {value};
        const contour::Selection sel =
            contour::SelectInterestingPoints(ds.dims(), a, isos);
        const Bytes payload = ndp::EncodeSelection(
            sel, ndp::SelectionEncoding::kRunLength);
        // Selection payloads can be empty-ish; clamp to 1 byte.
        ranges["Contour selection"].Add(
            raw / std::max<double>(1.0, static_cast<double>(payload.size())));
      }
    }
  }

  bench_util::Table table({"technology", "min reduction", "max reduction"});
  for (const char* tech : {"GZip", "LZ4", "Contour selection"}) {
    table.AddRow({tech, bench_util::FormatRatio(ranges[tech].lo),
                  bench_util::FormatRatio(ranges[tech].hi)});
  }
  std::cout << "Fig. 1 — data reduction ratio by technology (impact dataset,\n"
            << "         " << params.n << "^3, " << labels.size()
            << " timesteps, contour values 0.1-0.9, v02+v03)\n";
  table.Print(std::cout);
  table.WriteCsv(bench_util::ResultsDir() + "/fig01_reduction_ratio.csv");
  return 0;
}
