// google-benchmark microbenchmarks for the substrate layers: codec
// throughput (compress + decompress per input family), selection scan
// rate, marching cubes rate, msgpack packing, and the selection wire
// encodings. These are the numbers that explain where the milliseconds
// in the figure benches go.
#include <benchmark/benchmark.h>

#include <random>

#include "compress/codec.h"
#include "contour/marching_cubes.h"
#include "contour/select.h"
#include "msgpack/pack.h"
#include "msgpack/unpack.h"
#include "ndp/protocol.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/impact.h"

namespace {

using namespace vizndp;

// A realistic payload: one v02 array from a mid-run impact timestep.
const grid::Dataset& ImpactData() {
  static const grid::Dataset ds = [] {
    sim::ImpactConfig cfg;
    cfg.n = 64;
    return sim::GenerateImpactTimestep(cfg, 24006, {"v02"});
  }();
  return ds;
}

void BM_CodecCompress(benchmark::State& state, const std::string& name) {
  const auto codec = compress::MakeCodec(name);
  const ByteSpan input = ImpactData().GetArray("v02").raw();
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Compress(input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK_CAPTURE(BM_CodecCompress, gzip, std::string("gzip"));
BENCHMARK_CAPTURE(BM_CodecCompress, lz4, std::string("lz4"));
BENCHMARK_CAPTURE(BM_CodecCompress, rle, std::string("rle"));

void BM_CodecDecompress(benchmark::State& state, const std::string& name) {
  const auto codec = compress::MakeCodec(name);
  const ByteSpan input = ImpactData().GetArray("v02").raw();
  const Bytes compressed = codec->Compress(input);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Decompress(compressed, input.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK_CAPTURE(BM_CodecDecompress, gzip, std::string("gzip"));
BENCHMARK_CAPTURE(BM_CodecDecompress, lz4, std::string("lz4"));
BENCHMARK_CAPTURE(BM_CodecDecompress, rle, std::string("rle"));

void BM_SelectInterestingPoints(benchmark::State& state) {
  const grid::Dataset& ds = ImpactData();
  const double isos[] = {0.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        contour::CountInterestingPoints(ds.dims(), ds.GetArray("v02"), isos));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          ds.dims().PointCount());
}
BENCHMARK(BM_SelectInterestingPoints);

void BM_MarchingCubes(benchmark::State& state) {
  const grid::Dataset& ds = ImpactData();
  const double isos[] = {0.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(contour::MarchingCubes(
        ds.dims(), ds.geometry(), ds.GetArray("v02"), isos));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          ds.dims().CellCount());
}
BENCHMARK(BM_MarchingCubes);

void BM_SelectionEncode(benchmark::State& state) {
  const grid::Dataset& ds = ImpactData();
  const double isos[] = {0.1};
  const contour::Selection sel =
      contour::SelectInterestingPoints(ds.dims(), ds.GetArray("v02"), isos);
  const auto encoding = static_cast<ndp::SelectionEncoding>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ndp::EncodeSelection(sel, encoding));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sel.ids.size()));
  state.SetLabel(ndp::SelectionEncodingName(encoding));
}
BENCHMARK(BM_SelectionEncode)->Arg(0)->Arg(1)->Arg(2);

void BM_MsgpackPackBin(benchmark::State& state) {
  const Bytes blob(static_cast<size_t>(state.range(0)), 0x3C);
  for (auto _ : state) {
    Bytes out;
    out.reserve(blob.size() + 16);
    msgpack::Packer packer(out);
    packer.PackArrayHeader(2);
    packer.PackStr("payload");
    packer.PackBin(blob);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MsgpackPackBin)->Arg(1 << 10)->Arg(1 << 20);

void BM_VarintRoundTrip(benchmark::State& state) {
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> values(10000);
  for (auto& v : values) v = rng() % (1ull << (rng() % 40));
  for (auto _ : state) {
    Bytes buf;
    for (const auto v : values) ndp::AppendVarint(v, buf);
    size_t pos = 0;
    std::uint64_t sum = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      sum += ndp::ReadVarint(buf, pos);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_VarintRoundTrip);

// Observability hot paths. These bound the per-request instrumentation
// cost: counter bumps and histogram observes target ~single-digit ns,
// and a Span with tracing disabled is just two clock reads.
void BM_ObsCounterIncrement(benchmark::State& state) {
  static obs::Registry registry;
  obs::Counter& counter = registry.GetCounter("bench_total");
  for (auto _ : state) {
    counter.Increment();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_ObsCounterIncrement);

void BM_ObsHistogramObserve(benchmark::State& state) {
  static obs::Registry registry;
  obs::Histogram& histogram =
      registry.GetHistogram("bench_seconds", obs::LatencyBounds());
  double v = 1e-6;
  for (auto _ : state) {
    histogram.Observe(v);
    v = v < 1.0 ? v * 1.5 : 1e-6;
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::Tracer tracer;  // enabled() is false: records nothing
  double total = 0;
  for (auto _ : state) {
    obs::Span span("bench.op", tracer);
    span.End();
    total += span.ElapsedSeconds();
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.Enable();
  for (auto _ : state) {
    obs::Span span("bench.op", tracer);
  }
  benchmark::DoNotOptimize(tracer.event_count());
}
BENCHMARK(BM_ObsSpanEnabled);

}  // namespace
