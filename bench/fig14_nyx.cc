// Figs. 12 + 14 reproduction: the Nyx case study. Prints the halo-contour
// selectivity at threshold 81.66 (Fig. 12 reports 0.06%) and compares
// baseline vs NDP data load times for RAW/GZip/LZ4 (Fig. 14).
//
// Paper expectations: NDP 1.8-2.3x; GZip/LZ4 ratios near 1 on this data
// (GZip managed ~11%), so compression does not help — GZip can even hurt
// via decompression overhead.
#include "bench_common.h"

#include "contour/select.h"

using namespace vizndp;
using namespace vizndp::bench;

int main() {
  const BenchParams params;
  bench_util::Testbed testbed;
  PopulateNyx(testbed, params);
  const std::vector<double> iso = {sim::kHaloThreshold};

  // Fig. 12 companion number: selectivity of the halo contour.
  {
    io::VndReader reader(testbed.LocalGateway().Open("none/nyx.vnd"));
    const grid::DataArray density = reader.ReadArray("baryon_density");
    const auto count = contour::CountInterestingPoints(reader.header().dims,
                                                       density, iso);
    std::cout << "Fig. 12 — halo contour at " << sim::kHaloThreshold
              << ": selectivity "
              << 100.0 * static_cast<double>(count) /
                     static_cast<double>(reader.header().dims.PointCount())
              << "% (paper: 0.06% at 512^3)\n";
  }

  bench_util::Table table({"data type", "stored size", "baseline", "NDP",
                           "speedup"});
  for (const std::string& codec : BenchCodecs()) {
    const std::string key = codec + "/nyx.vnd";
    io::VndReader reader(testbed.LocalGateway().Open(key));
    const double base_mean = MeanLoadSeconds(params.reps, [&] {
      return BaselineLoad(testbed, key, "baryon_density");
    });
    const double ndp_mean = MeanLoadSeconds(params.reps, [&] {
      return NdpLoad(testbed, key, "baryon_density", iso);
    });
    table.AddRow({CodecLabel(codec),
                  bench_util::FormatBytes(reader.StoredSize("baryon_density")),
                  bench_util::FormatSeconds(base_mean),
                  bench_util::FormatSeconds(ndp_mean),
                  bench_util::FormatRatio(base_mean / ndp_mean)});
  }
  std::cout << "\nFig. 14 — Nyx data load time, baseline vs NDP ("
            << params.n << "^3)\n";
  table.Print(std::cout);
  table.WriteCsv(bench_util::ResultsDir() + "/fig14_nyx.csv");
  return 0;
}
