// Ablation E: brick-indexed storage. The paper's conclusion notes NDP's
// speedup "is upperbounded by local data read times"; bricking the array
// with a per-brick min/max index lets the pre-filter skip most of the
// read + decompress work. This bench compares, per codec:
//   baseline       — full-array read on the client (monolithic object);
//   NDP            — pre-filter over the monolithic object;
//   NDP + bricks   — pre-filter using the brick index (edge sweep).
#include "bench_common.h"

using namespace vizndp;
using namespace vizndp::bench;

int main() {
  BenchParams params;
  bench_util::Testbed testbed;

  sim::ImpactConfig cfg;
  cfg.n = params.n;
  const std::int64_t t = cfg.final_timestep / 2;  // post-impact midpoint
  std::cerr << "[abl_bricks] generating one timestep at " << params.n
            << "^3...\n";
  const grid::Dataset ds = sim::GenerateImpactTimestep(cfg, t, {"v02"});

  const std::vector<double> isos = {0.1};
  bench_util::Table table({"codec", "layout", "server bytes", "bricks",
                           "load time", "vs baseline"});
  for (const std::string& codec : BenchCodecs()) {
    io::VndWriter mono(ds);
    mono.SetCodec(compress::MakeCodec(codec));
    mono.WriteToStore(testbed.store(), testbed.bucket(), codec + "/mono.vnd");

    const double baseline_s = MeanLoadSeconds(params.reps, [&] {
      return BaselineLoad(testbed, codec + "/mono.vnd", "v02");
    });
    table.AddRow({CodecLabel(codec), "baseline", "-", "-",
                  bench_util::FormatSeconds(baseline_s), "1.0x"});

    ndp::NdpLoadStats stats;
    const double mono_s = MeanLoadSeconds(params.reps, [&] {
      return NdpLoad(testbed, codec + "/mono.vnd", "v02", isos, &stats);
    });
    table.AddRow({CodecLabel(codec), "NDP monolithic",
                  bench_util::FormatBytes(stats.stored_bytes), "-",
                  bench_util::FormatSeconds(mono_s),
                  bench_util::FormatRatio(baseline_s / mono_s)});

    for (const int edge : {8, 16, 32}) {
      const std::string key =
          codec + "/bricked" + std::to_string(edge) + ".vnd";
      io::VndWriter bricked(ds);
      bricked.SetCodec(compress::MakeCodec(codec));
      bricked.SetBrickSize(edge);
      bricked.WriteToStore(testbed.store(), testbed.bucket(), key);

      ndp::NdpLoadStats bstats;
      const double bricked_s = MeanLoadSeconds(params.reps, [&] {
        return NdpLoad(testbed, key, "v02", isos, &bstats);
      });
      char bricks[32];
      std::snprintf(bricks, sizeof(bricks), "%lld/%lld",
                    static_cast<long long>(bstats.bricks_read),
                    static_cast<long long>(bstats.bricks_total));
      table.AddRow({CodecLabel(codec),
                    "NDP bricks(" + std::to_string(edge) + ")",
                    bench_util::FormatBytes(bstats.stored_bytes), bricks,
                    bench_util::FormatSeconds(bricked_s),
                    bench_util::FormatRatio(baseline_s / bricked_s)});
    }
  }
  std::cout << "Ablation E — brick-indexed pre-filtering (v02, timestep "
            << t << ", contour 0.1)\n";
  table.Print(std::cout);
  table.WriteCsv(bench_util::ResultsDir() + "/abl_bricks.csv");
  return 0;
}
