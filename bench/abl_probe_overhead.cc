// Ablation: what background health probing costs on a healthy fleet.
//
// The HealthMonitor sweeps every node's ndp.health on its own timer and
// its own connections. On a healthy fleet that must be invisible to the
// fetch path — probes share no rpc::Client slot with data traffic, and
// the per-fetch view snapshot is one atomic shared_ptr read. Target:
// <2% mean fetch latency with the monitor running vs stopped.
//
// Three configurations over a 3-server, 2-replica in-proc cluster:
//   monitor off              — the baseline
//   monitor on, 50ms period  — the production-shaped cadence
//   monitor on, 5ms period   — a pathologically hot prober
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/health_monitor.h"
#include "cluster/sharded_client.h"
#include "obs/metrics.h"

namespace vizndp::bench {
namespace {

// Mean wall seconds per sharded fetch with an optional monitor running
// at `probe_period` (0 = no monitor).
double MeanFetchSeconds(std::chrono::milliseconds probe_period,
                        const BenchParams& params, int reps) {
  bench_util::ClusterTestbedConfig config;
  config.servers = 3;
  config.replicas = 2;
  config.client_options.call_timeout = std::chrono::milliseconds(10'000);
  bench_util::ClusterTestbed cluster(config);
  sim::ImpactConfig cfg;
  cfg.n = params.n;
  const grid::Dataset ds = sim::GenerateImpactTimestep(cfg, 24006, {"v02"});
  io::VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec("lz4"));
  writer.SetBrickSize(16);
  writer.WriteToStore(cluster.store(), cluster.bucket(), "ts.vnd");
  const std::vector<double> isos = {0.5};

  std::unique_ptr<cluster::HealthMonitor> monitor;
  if (probe_period.count() > 0) {
    std::vector<std::shared_ptr<ndp::NdpClient>> probes;
    for (int i = 0; i < 3; ++i) probes.push_back(cluster.probe_client(i));
    cluster::HealthMonitorOptions mopts;
    mopts.period = probe_period;
    monitor = std::make_unique<cluster::HealthMonitor>(std::move(probes),
                                                       mopts);
    monitor->SetViewSink(
        [&cluster](std::shared_ptr<const cluster::FleetView> view) {
          cluster.sharded_client()->SetFleetView(std::move(view));
        });
    monitor->Start();
  }

  grid::UniformGeometry geometry;
  // Warm: first fetch pays the ndp.info round and its cache fill.
  (void)cluster.sharded_client()->FetchSparseField("ts.vnd", "v02", isos,
                                                   &geometry, nullptr);
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    (void)cluster.sharded_client()->FetchSparseField("ts.vnd", "v02", isos,
                                                     &geometry, nullptr);
    samples.push_back(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  }
  if (monitor != nullptr) monitor->Stop();
  return bench_util::Summarize(samples).mean;
}

int Run() {
  BenchParams params;
  params.steps = 2;  // generator minimum; only the first timestep is used
  // Microsecond-scale overhead needs more samples than the throughput
  // benches to stabilise.
  const int reps = params.reps * 8;

  std::cerr << "[setup] 3 shards x 2 replicas, " << params.n << "^3, "
            << reps << " reps per configuration\n";

  const double off_s = MeanFetchSeconds(std::chrono::milliseconds(0),
                                        params, reps);
  const double on_s = MeanFetchSeconds(std::chrono::milliseconds(50),
                                       params, reps);
  const double hot_s = MeanFetchSeconds(std::chrono::milliseconds(5),
                                        params, reps);
  const std::uint64_t probes = obs::DefaultRegistry()
                                   .GetCounter("cluster_probe_total",
                                               {{"result", "ok"}})
                                   .value();

  const double on_pct = (on_s / off_s - 1.0) * 100.0;
  const double hot_pct = (hot_s / off_s - 1.0) * 100.0;

  std::cout << "Health-probe ablation (in-proc, " << params.n << "^3, "
            << reps << " reps, healthy fleet)\n";
  bench_util::Table table({"configuration", "mean load", "delta"});
  char pct[32];
  table.AddRow({"monitor off", bench_util::FormatSeconds(off_s), "--"});
  std::snprintf(pct, sizeof(pct), "%+.2f%%", on_pct);
  table.AddRow({"monitor on, 50ms period", bench_util::FormatSeconds(on_s),
                pct});
  std::snprintf(pct, sizeof(pct), "%+.2f%%", hot_pct);
  table.AddRow({"monitor on, 5ms period", bench_util::FormatSeconds(hot_s),
                pct});
  table.Print(std::cout);
  std::cout << "healthy probes during the run: " << probes << "\n";

  const std::string csv = bench_util::ResultsDir() + "/abl_probe_overhead.csv";
  table.WriteCsv(csv);
  std::fprintf(stderr, "[result] wrote %s\n", csv.c_str());
  if (on_pct >= 2.0) {
    std::fprintf(stderr,
                 "[warn] monitor-on overhead %.2f%% exceeds the 2%% budget; "
                 "rerun with more reps before concluding a regression\n",
                 on_pct);
  }
  return 0;
}

}  // namespace
}  // namespace vizndp::bench

int main() { return vizndp::bench::Run(); }
