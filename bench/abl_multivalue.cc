// Ablation D: multi-isovalue batching. The paper's prototype "supports
// generating contours at multiple contour values at the same time"; this
// quantifies why that matters: one 5-value pre-filter request reads and
// scans the source array once and ships one (unioned) selection, versus
// five single-value requests that each pay the full server-side read.
#include "bench_common.h"

using namespace vizndp;
using namespace vizndp::bench;

int main() {
  BenchParams params;
  params.steps = 2;
  bench_util::Testbed testbed;
  const auto labels = PopulateImpactSeries(testbed, params);
  const std::vector<double> values = {0.1, 0.3, 0.5, 0.7, 0.9};

  bench_util::Table table({"codec", "5 separate requests", "1 batched request",
                           "batch speedup", "batched payload"});
  for (const std::string& codec : BenchCodecs()) {
    const std::string key = TimestepKey(codec, labels.back());

    const double separate_s = MeanLoadSeconds(params.reps, [&] {
      auto timer = testbed.StartLoadTimer();
      for (const double v : values) {
        grid::UniformGeometry geo;
        (void)testbed.ndp_client().FetchSparseField(key, "v02", {v}, &geo);
      }
      return timer.Stop();
    });

    ndp::NdpLoadStats stats;
    const double batched_s = MeanLoadSeconds(params.reps, [&] {
      return NdpLoad(testbed, key, "v02", values, &stats);
    });

    table.AddRow({CodecLabel(codec), bench_util::FormatSeconds(separate_s),
                  bench_util::FormatSeconds(batched_s),
                  bench_util::FormatRatio(separate_s / batched_s),
                  bench_util::FormatBytes(stats.payload_bytes)});
  }
  std::cout << "Ablation D — one batched multi-isovalue request vs five "
            << "single-value requests (v02)\n";
  table.Print(std::cout);
  table.WriteCsv(bench_util::ResultsDir() + "/abl_multivalue.csv");
  return 0;
}
