// Ablation: record-path cost of the sliding-window histogram layer.
//
// PR 9 moved the hot-path latency families (ndp_select_seconds,
// rpc_dispatch_seconds, cluster_subfetch_seconds) from plain cumulative
// Histograms to WindowedHistograms so the fleet plane reads "the last
// ~10 seconds" instead of everything-since-boot. The window adds one
// relaxed epoch-id load and one bucket fetch_add per Observe (plus an
// amortised mutex'd rotation at epoch boundaries) — this bench prices
// that directly and then scales it against a real NDP fetch:
//
//   1. raw: ns/Observe for Histogram vs WindowedHistogram, tight loop,
//      median of trials (epoch rotations happen live during the loop);
//   2. in-context: mean fetch seconds on the in-proc testbed and the
//      windowed observations one fetch actually performs (counted off
//      the registry's _window series), giving the implied fraction of a
//      fetch spent in the window layer.
//
// The guard is the implied fraction (<2%): per-Observe the ring is
// necessarily pricier than a bare histogram, but a fetch performs a
// handful of observations against milliseconds of work, so the end-to-
// end cost must stay in the noise.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/windowed.h"

namespace vizndp::bench {
namespace {

constexpr int kTrials = 5;
constexpr int kObservesPerTrial = 2'000'000;

// Latency-shaped sample values spanning several buckets.
std::vector<double> SampleValues() {
  std::vector<double> values;
  for (int i = 0; i < 64; ++i) {
    values.push_back(1e-5 * static_cast<double>(1 + (i * 37) % 977));
  }
  return values;
}

// Median ns/Observe over kTrials tight loops of `observe`.
template <typename ObserveFn>
double MedianNsPerObserve(ObserveFn&& observe) {
  const std::vector<double> values = SampleValues();
  std::vector<double> trials;
  for (int t = 0; t < kTrials; ++t) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kObservesPerTrial; ++i) {
      observe(values[static_cast<size_t>(i) % values.size()]);
    }
    const auto stop = std::chrono::steady_clock::now();
    trials.push_back(
        std::chrono::duration<double, std::nano>(stop - start).count() /
        kObservesPerTrial);
  }
  std::nth_element(trials.begin(), trials.begin() + kTrials / 2, trials.end());
  return trials[kTrials / 2];
}

// Total observations ever recorded into windowed families, summed over
// the given registries: a series is windowed iff its _window sibling is
// exported alongside it, and the cumulative count is monotone (the
// window count itself decays as epochs rotate out mid-measurement).
std::uint64_t WindowedObservations(
    const std::vector<const obs::Registry*>& registries) {
  std::uint64_t total = 0;
  for (const obs::Registry* registry : registries) {
    const std::vector<obs::MetricSnapshot> snap = registry->Snapshot();
    for (const obs::MetricSnapshot& s : snap) {
      if (s.kind != obs::MetricSnapshot::Kind::kHistogram) continue;
      if (s.window_seconds > 0) continue;
      if (obs::FindMetric(snap, obs::WindowedName(s.name)) != nullptr) {
        total += s.count;
      }
    }
  }
  return total;
}

int Run() {
  BenchParams params;
  params.steps = 2;  // generator minimum; only the first timestep is used
  const int reps = params.reps * 8;

  // --- raw record path -----------------------------------------------------
  obs::Histogram plain(obs::LatencyBounds());
  obs::WindowedHistogram windowed(obs::LatencyBounds());
  // Warm both (page in buckets, settle the first epoch rotation).
  (void)MedianNsPerObserve([&plain](double v) { plain.Observe(v); });
  const double plain_ns =
      MedianNsPerObserve([&plain](double v) { plain.Observe(v); });
  const double windowed_ns =
      MedianNsPerObserve([&windowed](double v) { windowed.Observe(v); });
  const double delta_ns = windowed_ns - plain_ns;

  // --- in context: a real NDP fetch ----------------------------------------
  bench_util::Testbed testbed;
  const auto labels = PopulateImpactSeries(testbed, params, {"v02"});
  const std::string key = TimestepKey("none", labels.front());
  const std::vector<double> isos = {0.5};

  (void)NdpLoad(testbed, key, "v02", isos);  // warm the path
  // Every windowed family this fetch path can touch: rpc_dispatch and
  // ndp_select live in the storage node's server registry, the sharded
  // subfetch window in the process registry.
  const std::vector<const obs::Registry*> registries = {
      &obs::DefaultRegistry(), &testbed.rpc_server().metrics(),
      &testbed.ndp_server().metrics()};
  const std::uint64_t observed_before = WindowedObservations(registries);
  const double fetch_s =
      MeanLoadSeconds(reps, [&] { return NdpLoad(testbed, key, "v02", isos); });
  const double per_fetch =
      static_cast<double>(WindowedObservations(registries) - observed_before) /
      reps;

  // Worst-case framing: every windowed observation charged the full
  // windowed cost (not just the delta over the plain histogram it
  // replaced) against one fetch.
  const double implied_pct = per_fetch * windowed_ns / (fetch_s * 1e9) * 100.0;
  const double delta_pct = per_fetch * delta_ns / (fetch_s * 1e9) * 100.0;

  std::cout << "Sliding-window record-path overhead (in-proc, " << params.n
            << "^3, " << reps << " reps)\n";
  char buf[64];
  bench_util::Table table({"metric", "value"});
  std::snprintf(buf, sizeof(buf), "%.1f", plain_ns);
  table.AddRow({"plain histogram ns/observe", buf});
  std::snprintf(buf, sizeof(buf), "%.1f", windowed_ns);
  table.AddRow({"windowed histogram ns/observe", buf});
  std::snprintf(buf, sizeof(buf), "%.1f", delta_ns);
  table.AddRow({"window delta ns/observe", buf});
  std::snprintf(buf, sizeof(buf), "%.1f", per_fetch);
  table.AddRow({"windowed observes per fetch", buf});
  table.AddRow({"mean fetch", bench_util::FormatSeconds(fetch_s)});
  std::snprintf(buf, sizeof(buf), "%.4f%%", implied_pct);
  table.AddRow({"implied fetch overhead (full cost)", buf});
  std::snprintf(buf, sizeof(buf), "%.4f%%", delta_pct);
  table.AddRow({"implied fetch overhead (delta vs plain)", buf});
  table.Print(std::cout);

  const std::string csv = bench_util::ResultsDir() + "/abl_window_overhead.csv";
  table.WriteCsv(csv);
  std::fprintf(stderr, "[result] wrote %s\n", csv.c_str());
  if (implied_pct >= 2.0) {
    std::fprintf(stderr,
                 "[warn] windowed record path implies %.3f%% of a fetch, over "
                 "the 2%% budget; rerun with more reps before concluding a "
                 "regression\n",
                 implied_pct);
  }
  return 0;
}

}  // namespace
}  // namespace vizndp::bench

int main() { return vizndp::bench::Run(); }
