// Ablation B: pre-filter payload encodings. Compares the three wire
// layouts (id+value, delta-varint ids, bitmap) across the selectivity
// regimes the timestep series produces: bytes per selected point,
// absolute payload size, and encode+decode CPU time.
//
// Expected shape: delta-varint wins at low selectivity (interface-
// clustered ids); the bitmap closes in as selectivity rises (its cost is
// fixed at one bit per grid point).
#include "bench_common.h"

#include "contour/select.h"
#include "ndp/protocol.h"

using namespace vizndp;
using namespace vizndp::bench;

int main() {
  const BenchParams params;
  sim::ImpactConfig cfg;
  cfg.n = params.n;
  const auto labels = sim::ImpactTimestepLabels(cfg, 3);

  bench_util::Table table({"timestep", "selectivity", "encoding", "payload",
                           "B/point", "encode", "decode"});
  for (const std::int64_t t : labels) {
    const grid::Dataset ds = sim::GenerateImpactTimestep(cfg, t, {"v02"});
    const double isos[] = {0.1};
    const contour::Selection sel =
        contour::SelectInterestingPoints(ds.dims(), ds.GetArray("v02"), isos);
    for (const auto encoding : {ndp::SelectionEncoding::kIdValue,
                                ndp::SelectionEncoding::kDeltaVarint,
                                ndp::SelectionEncoding::kBitmap,
                                ndp::SelectionEncoding::kRunLength}) {
      bench_util::Stopwatch enc_sw;
      const Bytes payload = ndp::EncodeSelection(sel, encoding);
      const double enc_s = enc_sw.Seconds();
      bench_util::Stopwatch dec_sw;
      const ndp::DecodedSelection back =
          ndp::DecodeSelection(payload, ds.dims());
      const double dec_s = dec_sw.Seconds();
      if (back.ids != sel.ids) {
        std::cerr << "ENCODING BUG: round trip mismatch\n";
        return 1;
      }
      char per_point[32];
      std::snprintf(per_point, sizeof(per_point), "%.2f",
                    sel.ids.empty()
                        ? 0.0
                        : static_cast<double>(payload.size()) /
                              static_cast<double>(sel.ids.size()));
      table.AddRow({std::to_string(t),
                    bench_util::FormatPermille(sel.SelectivityPermille()),
                    ndp::SelectionEncodingName(encoding),
                    bench_util::FormatBytes(payload.size()), per_point,
                    bench_util::FormatSeconds(enc_s),
                    bench_util::FormatSeconds(dec_s)});
    }
  }
  std::cout << "Ablation B — selection payload encodings (v02, contour 0.1)\n";
  table.Print(std::cout);
  table.WriteCsv(bench_util::ResultsDir() + "/abl_encoding.csv");
  return 0;
}
