// Ablation: happy-path cost of the distributed-tracing machinery.
//
// Tracing earns its keep only if the default configuration — tracer
// disabled, no sampled context — costs essentially nothing. This bench
// runs the same NDP sparse-field load three ways over a healthy in-proc
// transport:
//   off       tracer disabled, no context installed (the default)
//   ctx-only  tracer disabled, but every load runs under a minted
//             *unsampled* TraceContext — the thread-local install/
//             restore and per-span tag branches run, while the wire
//             format stays 4-element and nothing hits the ring buffer
//   sampled   tracer enabled; full propagation, piggyback, and merge
// The guard is ctx-only vs off (<2%): that delta is what every request
// pays once the instrumentation is compiled in, whether or not anyone
// ever samples. The sampled row is informational — that cost is opt-in
// per request.
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ndp/ndp_client.h"
#include "obs/context.h"
#include "obs/trace.h"
#include "rpc/client.h"

namespace vizndp::bench {
namespace {

// Mean seconds for `reps` sparse-field fetches through `client`. With
// `mint_context`, each fetch runs under a fresh unsampled TraceContext.
double MeanFetchSeconds(bench_util::Testbed& testbed, ndp::NdpClient& client,
                        const std::string& key, const std::string& array,
                        const std::vector<double>& isos, int reps,
                        bool mint_context) {
  return MeanLoadSeconds(reps, [&] {
    std::optional<obs::ScopedTraceContext> scope;
    if (mint_context) {
      scope.emplace(obs::TraceContext::Mint(/*sampled=*/false));
    }
    auto timer = testbed.StartLoadTimer();
    grid::UniformGeometry geometry;
    (void)client.FetchSparseField(key, array, isos, &geometry, nullptr);
    return timer.Stop();
  });
}

int Run() {
  BenchParams params;
  params.steps = 2;  // generator minimum; only the first timestep is used
  // Overhead in the microsecond range needs more samples than the
  // throughput benches to stabilise.
  const int reps = params.reps * 8;

  bench_util::Testbed testbed;
  const auto labels = PopulateImpactSeries(testbed, params, {"v02"});
  const std::string key = TimestepKey("none", labels.front());
  const std::vector<double> isos = {0.5};

  ndp::NdpClient client(std::make_shared<rpc::Client>(testbed.ConnectToServer()),
                        testbed.bucket());

  // Warm the connection (first call pays one-time setup).
  (void)MeanFetchSeconds(testbed, client, key, "v02", isos, 1, false);

  obs::GlobalTracer().Enable(false);
  const double off_s =
      MeanFetchSeconds(testbed, client, key, "v02", isos, reps, false);
  const double ctx_s =
      MeanFetchSeconds(testbed, client, key, "v02", isos, reps, true);

  // Sampled: the tracer is on, so FetchSparseField mints its own sampled
  // root and every attempt propagates + piggybacks.
  obs::GlobalTracer().Enable();
  const double sampled_s =
      MeanFetchSeconds(testbed, client, key, "v02", isos, reps, false);
  obs::GlobalTracer().Enable(false);
  obs::GlobalTracer().Clear();

  const double ctx_pct = (ctx_s / off_s - 1.0) * 100.0;
  const double sampled_pct = (sampled_s / off_s - 1.0) * 100.0;

  std::cout << "Disabled-tracing overhead of the tracing machinery (in-proc, "
            << params.n << "^3, " << reps << " reps)\n";
  bench_util::Table table({"mode", "mean load", "overhead"});
  table.AddRow({"off (no context)", bench_util::FormatSeconds(off_s), "--"});
  char pct[32];
  std::snprintf(pct, sizeof(pct), "%+.2f%%", ctx_pct);
  table.AddRow({"ctx-only (unsampled context)",
                bench_util::FormatSeconds(ctx_s), pct});
  std::snprintf(pct, sizeof(pct), "%+.2f%%", sampled_pct);
  table.AddRow({"sampled (full trace + piggyback)",
                bench_util::FormatSeconds(sampled_s), pct});
  table.Print(std::cout);

  const std::string csv = bench_util::ResultsDir() + "/abl_trace_overhead.csv";
  table.WriteCsv(csv);
  std::fprintf(stderr, "[result] wrote %s\n", csv.c_str());
  if (ctx_pct >= 2.0) {
    std::fprintf(stderr,
                 "[warn] ctx-only overhead %.2f%% exceeds the 2%% budget; "
                 "rerun with more reps before concluding a regression\n",
                 ctx_pct);
  }
  return 0;
}

}  // namespace
}  // namespace vizndp::bench

int main() { return vizndp::bench::Run(); }
