// Client-node half of the two-process demo: connects to ndp_server over
// TCP, then loads the v02 contour both ways — the traditional pipeline
// (full array over the wire via the remote object store) and the NDP
// split pipeline (pre-filtered selection only) — and compares bytes,
// times, and geometry.
//
// Usage: ./ndp_client [port] [timestep]    defaults: 47801 24006
#include <chrono>
#include <cstdio>
#include <iostream>

#include "contour/marching_cubes.h"
#include "io/vnd_format.h"
#include "ndp/ndp_client.h"
#include "net/tcp.h"
#include "storage/remote_store.h"
#include "storage/store_rpc.h"

using namespace vizndp;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint16_t port =
      argc > 1 ? static_cast<std::uint16_t>(std::atoi(argv[1])) : 47801;
  const long timestep = argc > 2 ? std::atol(argv[2]) : 24006;
  const std::string key = "ts" + std::to_string(timestep) + ".vnd";
  const std::vector<double> isovalues = {0.1};

  std::printf("[client] connecting to 127.0.0.1:%u...\n", port);

  // Baseline path: remote object store, full array transfer.
  storage::RemoteObjectStore remote(
      std::make_shared<rpc::Client>(net::TcpConnect("127.0.0.1", port)));
  const double t0 = Now();
  io::VndReader reader(storage::FileGateway(remote, "data").Open(key));
  const grid::DataArray v02 = reader.ReadArray("v02");
  const double baseline_load = Now() - t0;
  const contour::PolyData baseline = contour::MarchingCubes(
      reader.header().dims, reader.header().geometry, v02, isovalues);
  std::printf("[client] baseline: read %lld B raw in %.3fs -> %zu triangles\n",
              static_cast<long long>(v02.byte_size()), baseline_load,
              baseline.TriangleCount());

  // NDP path: pre-filter remotely, post-filter here.
  ndp::NdpClient ndp(
      std::make_shared<rpc::Client>(net::TcpConnect("127.0.0.1", port)),
      "data");
  const double t1 = Now();
  ndp::NdpLoadStats stats;
  const contour::PolyData split = ndp.Contour(key, "v02", isovalues, &stats);
  const double ndp_load = Now() - t1;
  std::printf("[client] NDP: %llu of %llu points (%.2f%%), payload %llu B, "
              "%.3fs -> %zu triangles\n",
              static_cast<unsigned long long>(stats.selected_points),
              static_cast<unsigned long long>(stats.total_points),
              100.0 * stats.Selectivity(),
              static_cast<unsigned long long>(stats.payload_bytes), ndp_load,
              split.TriangleCount());

  const bool same = split.GeometricallyEquals(baseline, 0.0);
  std::printf("[client] identical geometry: %s\n", same ? "yes" : "NO (bug!)");
  std::printf("[client] payload reduction: %.1fx fewer bytes on the wire\n",
              static_cast<double>(v02.byte_size()) /
                  static_cast<double>(stats.payload_bytes));
  return same ? 0 : 1;
}
