// The paper's headline workload (Figs. 7/8): a contour movie of the deep
// water asteroid impact. Generates a timestep series into a catalog,
// then renders water (v02) and asteroid (v03) contours at value 0.1 for
// every timestep through the NDP split pipeline, writing one PPM frame
// and one OBJ mesh per step plus a per-step load report.
//
// Usage: ./asteroid_movie [grid_n] [timestep_count] [out_dir]
//        defaults: 64 5 movie_out
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <map>

#include "bench_util/table.h"
#include "bench_util/testbed.h"
#include "ndp/catalog.h"
#include "render/render_sink.h"
#include "sim/impact.h"

using namespace vizndp;

int main(int argc, char** argv) {
  sim::ImpactConfig cfg;
  cfg.n = argc > 1 ? std::atol(argv[1]) : 64;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 5;
  const std::string out_dir = argc > 3 ? argv[3] : "movie_out";
  std::filesystem::create_directories(out_dir);

  bench_util::Testbed testbed;
  ndp::TimestepCatalog catalog(testbed.LocalGateway());
  const auto labels = sim::ImpactTimestepLabels(cfg, steps);

  std::printf("generating %d timesteps at %ld^3 and storing them (lz4)...\n",
              steps, static_cast<long>(cfg.n));
  const auto lz4 = compress::MakeCodec("lz4");
  for (const std::int64_t t : labels) {
    catalog.Put(t, sim::GenerateImpactTimestep(cfg, t, {"v02", "v03"}), lz4);
  }

  const render::Camera camera({0.5, -1.25, 1.05}, {0.5, 0.5, 0.35},
                              {0, 0, 1}, 55.0, 4.0 / 3.0);
  render::Material water_mat;
  water_mat.base = {90, 200, 220};  // cyan, as in the paper's Fig. 4
  render::Material asteroid_mat;
  asteroid_mat.base = {230, 200, 60};  // yellow

  // Two movie drivers, one per array — the paper's multi-filter setup.
  const ndp::ContourMovieDriver water_driver("v02", {0.1});
  const ndp::ContourMovieDriver asteroid_driver("v03", {0.1});

  struct Frame {
    contour::PolyData water;
    ndp::NdpLoadStats water_stats;
  };
  std::map<std::int64_t, Frame> pending;

  testbed.link().Reset();
  auto timer = testbed.StartLoadTimer();
  water_driver.RunNdp(testbed.ndp_client(), catalog.Timesteps(),
                      [&](const ndp::ContourMovieDriver::FrameInfo& info,
                          const contour::PolyData& poly) {
                        pending[info.timestep] = {poly, *info.ndp_stats};
                      });

  bench_util::Table report({"timestep", "v02 sel", "v03 sel", "load time",
                            "net bytes", "triangles"});
  asteroid_driver.RunNdp(
      testbed.ndp_client(), catalog.Timesteps(),
      [&](const ndp::ContourMovieDriver::FrameInfo& info,
          const contour::PolyData& asteroid) {
        const Frame& frame = pending.at(info.timestep);

        render::Framebuffer fb(640, 480);
        RenderPolyData(frame.water, camera, water_mat, fb);
        RenderPolyData(asteroid, camera, asteroid_mat, fb);
        fb.WritePpm(out_dir + "/frame_" + std::to_string(info.timestep) +
                    ".ppm");

        contour::PolyData combined = frame.water;
        combined.Append(asteroid);
        combined.WriteObj(out_dir + "/contours_" +
                          std::to_string(info.timestep) + ".obj");

        const auto load = timer.Stop();
        report.AddRow(
            {std::to_string(info.timestep),
             bench_util::FormatPermille(1000.0 *
                                        frame.water_stats.Selectivity()),
             bench_util::FormatPermille(1000.0 *
                                        info.ndp_stats->Selectivity()),
             bench_util::FormatSeconds(load.total_s),
             bench_util::FormatBytes(load.network_bytes),
             std::to_string(combined.TriangleCount())});
      });

  report.Print(std::cout);
  std::printf("(load time and net bytes are cumulative across the movie)\n");
  std::printf("frames and meshes written to %s/\n", out_dir.c_str());
  return 0;
}
