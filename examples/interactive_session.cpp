// Interactive exploration — the paper's motivating scenario: a scientist
// sweeps the contour value looking for structure. The traditional
// pipeline reads the full array once and recontours locally; NDP issues
// one small pre-filter request per isovalue. This example simulates a
// ten-step exploration session and reports the cumulative traffic and
// load time of both strategies, including where each wins.
//
// Usage: ./interactive_session [grid_n]   (default 96)
#include <cstdio>
#include <iostream>

#include "bench_util/table.h"
#include "bench_util/testbed.h"
#include "contour/contour_filter.h"
#include "io/vnd_format.h"
#include "ndp/catalog.h"
#include "sim/impact.h"

using namespace vizndp;

int main(int argc, char** argv) {
  sim::ImpactConfig cfg;
  cfg.n = argc > 1 ? std::atol(argv[1]) : 96;

  bench_util::Testbed testbed;
  ndp::TimestepCatalog catalog(testbed.LocalGateway());
  std::printf("generating timestep 24006 at %ld^3 (lz4, bricked)...\n",
              static_cast<long>(cfg.n));
  {
    const grid::Dataset ds =
        sim::GenerateImpactTimestep(cfg, 24006, {"v02"});
    io::VndWriter writer(ds);
    writer.SetCodec(compress::MakeCodec("lz4"));
    writer.SetBrickSize(16);
    writer.WriteToStore(testbed.store(), testbed.bucket(), "ts24006.vnd");
  }

  // Ask the storage node for the value distribution first (only a
  // histogram crosses the wire), then explore around the suggestions.
  const ndp::NdpClient::ArrayStats stats =
      testbed.ndp_client().Stats("ts24006.vnd", "v02", 64);
  std::printf("v02 range [%.3f, %.3f]; near-data histogram suggests "
              "contour values:", stats.min, stats.max);
  std::vector<double> sweep = ndp::SuggestIsovalues(stats, 4);
  for (const double v : sweep) std::printf(" %.3f", v);
  std::printf("\n");
  // ...plus the manual hunt around the spray envelope.
  for (const double v : {0.2, 0.15, 0.1, 0.12, 0.11, 0.1}) sweep.push_back(v);

  // Strategy A (traditional): read the whole array once, recontour
  // locally for each step.
  testbed.link().Reset();
  auto t_base = testbed.StartLoadTimer();
  io::VndReader reader(testbed.RemoteGateway().Open("ts24006.vnd"));
  const grid::DataArray v02 = reader.ReadArray("v02");
  size_t base_triangles = 0;
  for (const double iso : sweep) {
    const contour::ContourFilter filter({iso});
    base_triangles += filter
                          .Execute(reader.header().dims,
                                   reader.header().geometry, v02)
                          .TriangleCount();
  }
  const auto base = t_base.Stop();

  // Strategy B (NDP): one pre-filter request per isovalue.
  testbed.link().Reset();
  auto t_ndp = testbed.StartLoadTimer();
  size_t ndp_triangles = 0;
  for (const double iso : sweep) {
    ndp_triangles +=
        testbed.ndp_client().Contour("ts24006.vnd", "v02", {iso})
            .TriangleCount();
  }
  const auto ndp = t_ndp.Stop();

  bench_util::Table table({"strategy", "network bytes", "total time",
                           "triangles (sum)"});
  table.AddRow({"traditional: read once, recontour locally",
                bench_util::FormatBytes(base.network_bytes),
                bench_util::FormatSeconds(base.total_s),
                std::to_string(base_triangles)});
  table.AddRow({"NDP: one pre-filter request per isovalue",
                bench_util::FormatBytes(ndp.network_bytes),
                bench_util::FormatSeconds(ndp.total_s),
                std::to_string(ndp_triangles)});
  table.Print(std::cout);

  std::printf(
      "\nSanity: both strategies saw the same geometry: %s\n"
      "The traditional pipeline amortizes its one big read across the\n"
      "session; NDP keeps every step cheap (bricked pre-filtering) and\n"
      "never ships the array. Crossover depends on session length, link\n"
      "speed, and selectivity — exactly the trade-off the paper's future\n"
      "work discusses for interactive use.\n",
      base_triangles == ndp_triangles ? "yes" : "NO (bug!)");
  return 0;
}
