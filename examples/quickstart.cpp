// Quickstart: the paper's Fig. 3 scenario plus a minimal 3D NDP round
// trip, all on an in-process emulated testbed.
//
//   1. Contour a small 2D mesh (marching squares) and print it.
//   2. Generate one asteroid-impact timestep, store it compressed in the
//      emulated object store, and contour v02 two ways:
//        - the traditional pipeline (full array over the "network"), and
//        - the NDP split pipeline (pre-filter on the storage node).
//   3. Show that both produce identical geometry while NDP moves a tiny
//      fraction of the bytes.
//
// Run:  ./quickstart
#include <cstdio>
#include <iostream>
#include <random>

#include "bench_util/table.h"
#include "bench_util/testbed.h"
#include "contour/marching_cubes.h"
#include "contour/marching_squares.h"
#include "io/vnd_format.h"
#include "sim/impact.h"

using namespace vizndp;

namespace {

void Fig3Demo() {
  std::printf("== 1. The paper's Fig. 3: a contour of value 5 on an 8x6 mesh\n");
  const grid::Dims dims{8, 6, 1};
  std::mt19937 rng(3);
  std::vector<float> values(48);
  for (auto& v : values) v = static_cast<float>(rng() % 10);

  for (std::int64_t j = dims.ny - 1; j >= 0; --j) {
    std::printf("   ");
    for (std::int64_t i = 0; i < dims.nx; ++i) {
      std::printf("%2.0f", values[static_cast<size_t>(dims.Index(i, j))]);
    }
    std::printf("\n");
  }
  const double iso[] = {5.0};
  const contour::PolyData poly =
      contour::MarchingSquares(dims, grid::UniformGeometry{}, std::span<const float>(values), iso);
  std::printf("   contour at 5: %zu segments through %zu interpolated points\n\n",
              poly.LineCount(), poly.PointCount());
}

void NdpDemo() {
  std::printf("== 2. NDP vs traditional pipeline on one impact timestep\n");
  bench_util::Testbed testbed;

  sim::ImpactConfig cfg;
  cfg.n = 96;
  const grid::Dataset ds =
      sim::GenerateImpactTimestep(cfg, 24006, {"v02", "v03"});
  io::VndWriter writer(ds);
  writer.WriteToStore(testbed.store(), testbed.bucket(), "ts24006.vnd");
  std::printf("   stored timestep 24006 (%ld^3 grid, raw) in the object store\n",
              static_cast<long>(cfg.n));

  const std::vector<double> isovalues = {0.1};

  // Traditional: the client mounts the remote store and reads the full
  // v02 array across the (simulated 1 GbE) link.
  testbed.link().Reset();
  auto t_base = testbed.StartLoadTimer();
  io::VndReader reader(testbed.RemoteGateway().Open("ts24006.vnd"));
  const grid::DataArray v02 = reader.ReadArray("v02");
  const auto base_load = t_base.Stop();
  const contour::PolyData baseline = contour::MarchingCubes(
      reader.header().dims, reader.header().geometry, v02, isovalues);

  // NDP: the pre-filter runs next to the data; only interesting points
  // cross the link, and the post-filter finishes the contour here.
  testbed.link().Reset();
  auto t_ndp = testbed.StartLoadTimer();
  ndp::NdpLoadStats stats;
  const contour::PolyData ndp =
      testbed.ndp_client().Contour("ts24006.vnd", "v02", isovalues, &stats);
  const auto ndp_load = t_ndp.Stop();

  bench_util::Table table({"pipeline", "network bytes", "load time",
                           "triangles"});
  table.AddRow({"traditional", bench_util::FormatBytes(base_load.network_bytes),
                bench_util::FormatSeconds(base_load.total_s),
                std::to_string(baseline.TriangleCount())});
  table.AddRow({"NDP", bench_util::FormatBytes(ndp_load.network_bytes),
                bench_util::FormatSeconds(ndp_load.total_s),
                std::to_string(ndp.TriangleCount())});
  table.Print(std::cout);

  std::printf("   identical geometry: %s\n",
              ndp.GeometricallyEquals(baseline, 0.0) ? "yes" : "NO (bug!)");
  std::printf("   selectivity: %.2f%% of points, %.1fx fewer network bytes, "
              "%.2fx faster load\n\n",
              100.0 * stats.Selectivity(),
              static_cast<double>(base_load.network_bytes) /
                  static_cast<double>(ndp_load.network_bytes),
              base_load.total_s / ndp_load.total_s);
}

}  // namespace

int main() {
  std::printf("vizndp quickstart — near-data processing for viz pipelines\n\n");
  Fig3Demo();
  NdpDemo();
  std::printf("Done. Next: examples/asteroid_movie, examples/nyx_halos,\n"
              "or the two-process demo: examples/ndp_server + ndp_client.\n");
  return 0;
}
