// Storage-node half of the two-process demo (paper Fig. 10): hosts the
// object store, populates it with an impact timestep series, and serves
// both the baseline object-read RPCs and the NDP pre-filter RPCs over
// real TCP. Pair with examples/ndp_client.
//
// Usage: ./ndp_server [port] [grid_n] [timesteps]
//        defaults: 47801 48 5
#include <csignal>
#include <cstdio>

#include "io/vnd_format.h"
#include "ndp/ndp_server.h"
#include "rpc/server.h"
#include "sim/impact.h"
#include "storage/memory_store.h"
#include "storage/store_rpc.h"

using namespace vizndp;

int main(int argc, char** argv) {
  const std::uint16_t port =
      argc > 1 ? static_cast<std::uint16_t>(std::atoi(argv[1])) : 47801;
  sim::ImpactConfig cfg;
  cfg.n = argc > 2 ? std::atol(argv[2]) : 48;
  const int steps = argc > 3 ? std::atoi(argv[3]) : 5;

  storage::MemoryObjectStore store;
  store.CreateBucket("data");
  std::printf("[server] generating %d timesteps at %ld^3 (lz4)...\n", steps,
              static_cast<long>(cfg.n));
  for (const std::int64_t t : sim::ImpactTimestepLabels(cfg, steps)) {
    const grid::Dataset ds =
        sim::GenerateImpactTimestep(cfg, t, {"v02", "v03"});
    io::VndWriter writer(ds);
    writer.SetCodec(compress::MakeCodec("lz4"));
    writer.WriteToStore(store, "data", "ts" + std::to_string(t) + ".vnd");
    std::printf("[server]   ts%ld.vnd ready\n", static_cast<long>(t));
  }

  rpc::Server rpc_server;
  storage::BindObjectStoreRpc(rpc_server, store);  // baseline path
  ndp::NdpServer ndp_server(storage::FileGateway(store, "data"));
  ndp_server.Bind(rpc_server);                     // NDP path

  rpc::TcpRpcServer tcp(rpc_server, port);
  std::printf("[server] listening on 127.0.0.1:%u — run ndp_client %u\n",
              tcp.port(), tcp.port());
  std::printf("[server] Ctrl-C to stop.\n");
  ::pause();
  return 0;
}
