// The paper's second case study (Sec. VII / Fig. 12): finding candidate
// halos in a Nyx-like cosmology snapshot by contouring baryon density at
// the halo-formation threshold 81.66. Demonstrates that on effectively
// incompressible float data, compression barely helps while NDP still
// slashes network traffic.
//
// Usage: ./nyx_halos [grid_n]   (default 64)
#include <cstdio>
#include <iostream>

#include "bench_util/table.h"
#include "contour/components.h"
#include "bench_util/testbed.h"
#include "io/vnd_format.h"
#include "render/render_sink.h"
#include "sim/nyx.h"

using namespace vizndp;

int main(int argc, char** argv) {
  sim::NyxConfig cfg;
  cfg.n = argc > 1 ? std::atol(argv[1]) : 64;

  std::printf("generating a %ld^3 Nyx-like snapshot...\n",
              static_cast<long>(cfg.n));
  const grid::Dataset ds = sim::GenerateNyx(cfg);
  const auto [lo, hi] = ds.GetArray("baryon_density").Range();
  std::printf("baryon density range: [%.2f, %.1f]; halo threshold %.2f\n",
              lo, hi, sim::kHaloThreshold);

  bench_util::Testbed testbed;
  bench_util::Table table(
      {"codec", "stored size", "net bytes (baseline)", "net bytes (NDP)",
       "baseline load", "NDP load"});

  for (const std::string codec : {"none", "gzip", "lz4"}) {
    io::VndWriter writer(ds);
    writer.SetCodec(compress::MakeCodec(codec));
    const std::string key = "nyx_" + codec + ".vnd";
    writer.WriteToStore(testbed.store(), testbed.bucket(), key);

    const std::vector<double> iso = {sim::kHaloThreshold};

    testbed.link().Reset();
    auto t_base = testbed.StartLoadTimer();
    io::VndReader reader(testbed.RemoteGateway().Open(key));
    const grid::DataArray density = reader.ReadArray("baryon_density");
    const auto base = t_base.Stop();

    testbed.link().Reset();
    auto t_ndp = testbed.StartLoadTimer();
    ndp::NdpLoadStats stats;
    const contour::PolyData halos =
        testbed.ndp_client().Contour(key, "baryon_density", iso, &stats);
    const auto ndp = t_ndp.Stop();

    table.AddRow({codec, bench_util::FormatBytes(stats.stored_bytes),
                  bench_util::FormatBytes(base.network_bytes),
                  bench_util::FormatBytes(ndp.network_bytes),
                  bench_util::FormatSeconds(base.total_s),
                  bench_util::FormatSeconds(ndp.total_s)});

    if (codec == "none") {
      std::printf("halo contour: %zu triangles, selectivity %.3f%%\n",
                  halos.TriangleCount(), 100.0 * stats.Selectivity());
      const auto components = contour::ConnectedComponents(halos);
      std::printf("candidate halos found: %zu (largest area %.4f, smallest "
                  "%.5f)\n",
                  components.size(),
                  components.empty() ? 0.0 : components.front().area,
                  components.empty() ? 0.0 : components.back().area);
      render::Framebuffer fb(640, 480);
      render::Material mat;
      mat.base = {240, 170, 80};
      const render::Camera camera({1.6, -1.2, 1.4}, {0.5, 0.5, 0.5},
                                  {0, 0, 1}, 50.0, 4.0 / 3.0);
      RenderPolyData(halos, camera, mat, fb);
      fb.WritePpm("nyx_halos.ppm");
      halos.WriteObj("nyx_halos.obj");
      std::printf("wrote nyx_halos.ppm and nyx_halos.obj\n");
    }
  }

  table.Print(std::cout);
  std::printf(
      "note how compression changes little here (paper Sec. VII) while\n"
      "NDP still removes nearly all network traffic.\n");
  return 0;
}
