file(REMOVE_RECURSE
  "CMakeFiles/vizndp_tool.dir/vizndp_tool.cc.o"
  "CMakeFiles/vizndp_tool.dir/vizndp_tool.cc.o.d"
  "vizndp_tool"
  "vizndp_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vizndp_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
