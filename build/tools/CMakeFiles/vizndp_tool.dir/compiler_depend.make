# Empty compiler generated dependencies file for vizndp_tool.
# This may be replaced when dependencies are built.
