file(REMOVE_RECURSE
  "../bench/abl_multivalue"
  "../bench/abl_multivalue.pdb"
  "CMakeFiles/abl_multivalue.dir/abl_multivalue.cc.o"
  "CMakeFiles/abl_multivalue.dir/abl_multivalue.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multivalue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
