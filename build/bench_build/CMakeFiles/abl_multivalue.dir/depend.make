# Empty dependencies file for abl_multivalue.
# This may be replaced when dependencies are built.
