file(REMOVE_RECURSE
  "../bench/fig14_nyx"
  "../bench/fig14_nyx.pdb"
  "CMakeFiles/fig14_nyx.dir/fig14_nyx.cc.o"
  "CMakeFiles/fig14_nyx.dir/fig14_nyx.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_nyx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
