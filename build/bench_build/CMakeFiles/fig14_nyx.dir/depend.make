# Empty dependencies file for fig14_nyx.
# This may be replaced when dependencies are built.
