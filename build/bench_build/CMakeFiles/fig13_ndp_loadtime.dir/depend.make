# Empty dependencies file for fig13_ndp_loadtime.
# This may be replaced when dependencies are built.
