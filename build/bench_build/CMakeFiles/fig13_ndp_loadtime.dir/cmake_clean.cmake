file(REMOVE_RECURSE
  "../bench/fig13_ndp_loadtime"
  "../bench/fig13_ndp_loadtime.pdb"
  "CMakeFiles/fig13_ndp_loadtime.dir/fig13_ndp_loadtime.cc.o"
  "CMakeFiles/fig13_ndp_loadtime.dir/fig13_ndp_loadtime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ndp_loadtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
