# Empty dependencies file for fig05_compression.
# This may be replaced when dependencies are built.
