file(REMOVE_RECURSE
  "../bench/fig05_compression"
  "../bench/fig05_compression.pdb"
  "CMakeFiles/fig05_compression.dir/fig05_compression.cc.o"
  "CMakeFiles/fig05_compression.dir/fig05_compression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
