file(REMOVE_RECURSE
  "../bench/abl_encoding"
  "../bench/abl_encoding.pdb"
  "CMakeFiles/abl_encoding.dir/abl_encoding.cc.o"
  "CMakeFiles/abl_encoding.dir/abl_encoding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
