file(REMOVE_RECURSE
  "../bench/table2_speedups"
  "../bench/table2_speedups.pdb"
  "CMakeFiles/table2_speedups.dir/table2_speedups.cc.o"
  "CMakeFiles/table2_speedups.dir/table2_speedups.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
