file(REMOVE_RECURSE
  "../bench/abl_bandwidth"
  "../bench/abl_bandwidth.pdb"
  "CMakeFiles/abl_bandwidth.dir/abl_bandwidth.cc.o"
  "CMakeFiles/abl_bandwidth.dir/abl_bandwidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
