file(REMOVE_RECURSE
  "../bench/abl_transport"
  "../bench/abl_transport.pdb"
  "CMakeFiles/abl_transport.dir/abl_transport.cc.o"
  "CMakeFiles/abl_transport.dir/abl_transport.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
