file(REMOVE_RECURSE
  "../bench/fig01_reduction_ratio"
  "../bench/fig01_reduction_ratio.pdb"
  "CMakeFiles/fig01_reduction_ratio.dir/fig01_reduction_ratio.cc.o"
  "CMakeFiles/fig01_reduction_ratio.dir/fig01_reduction_ratio.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_reduction_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
