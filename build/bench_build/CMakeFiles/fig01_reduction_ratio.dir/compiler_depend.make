# Empty compiler generated dependencies file for fig01_reduction_ratio.
# This may be replaced when dependencies are built.
