file(REMOVE_RECURSE
  "../bench/abl_bricks"
  "../bench/abl_bricks.pdb"
  "CMakeFiles/abl_bricks.dir/abl_bricks.cc.o"
  "CMakeFiles/abl_bricks.dir/abl_bricks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bricks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
