# Empty compiler generated dependencies file for abl_bricks.
# This may be replaced when dependencies are built.
