# Empty dependencies file for fig06_selectivity.
# This may be replaced when dependencies are built.
