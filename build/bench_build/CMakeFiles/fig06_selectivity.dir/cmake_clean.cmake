file(REMOVE_RECURSE
  "../bench/fig06_selectivity"
  "../bench/fig06_selectivity.pdb"
  "CMakeFiles/fig06_selectivity.dir/fig06_selectivity.cc.o"
  "CMakeFiles/fig06_selectivity.dir/fig06_selectivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
