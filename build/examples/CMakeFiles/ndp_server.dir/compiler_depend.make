# Empty compiler generated dependencies file for ndp_server.
# This may be replaced when dependencies are built.
