file(REMOVE_RECURSE
  "CMakeFiles/ndp_server.dir/ndp_server.cpp.o"
  "CMakeFiles/ndp_server.dir/ndp_server.cpp.o.d"
  "ndp_server"
  "ndp_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndp_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
