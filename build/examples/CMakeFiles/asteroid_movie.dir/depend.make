# Empty dependencies file for asteroid_movie.
# This may be replaced when dependencies are built.
