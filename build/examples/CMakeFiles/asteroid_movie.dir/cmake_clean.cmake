file(REMOVE_RECURSE
  "CMakeFiles/asteroid_movie.dir/asteroid_movie.cpp.o"
  "CMakeFiles/asteroid_movie.dir/asteroid_movie.cpp.o.d"
  "asteroid_movie"
  "asteroid_movie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asteroid_movie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
