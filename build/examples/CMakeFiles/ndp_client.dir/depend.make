# Empty dependencies file for ndp_client.
# This may be replaced when dependencies are built.
