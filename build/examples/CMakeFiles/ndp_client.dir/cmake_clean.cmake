file(REMOVE_RECURSE
  "CMakeFiles/ndp_client.dir/ndp_client.cpp.o"
  "CMakeFiles/ndp_client.dir/ndp_client.cpp.o.d"
  "ndp_client"
  "ndp_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndp_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
