# Empty dependencies file for nyx_halos.
# This may be replaced when dependencies are built.
