file(REMOVE_RECURSE
  "CMakeFiles/nyx_halos.dir/nyx_halos.cpp.o"
  "CMakeFiles/nyx_halos.dir/nyx_halos.cpp.o.d"
  "nyx_halos"
  "nyx_halos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nyx_halos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
