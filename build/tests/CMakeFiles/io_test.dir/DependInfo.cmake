
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/io_test.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/io_test.dir/io_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/vizndp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vizndp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/vizndp_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vizndp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/vizndp_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/msgpack/CMakeFiles/vizndp_msgpack.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vizndp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/vizndp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vizndp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
