file(REMOVE_RECURSE
  "CMakeFiles/msgpack_test.dir/msgpack_test.cc.o"
  "CMakeFiles/msgpack_test.dir/msgpack_test.cc.o.d"
  "msgpack_test"
  "msgpack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgpack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
