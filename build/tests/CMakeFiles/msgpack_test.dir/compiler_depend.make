# Empty compiler generated dependencies file for msgpack_test.
# This may be replaced when dependencies are built.
