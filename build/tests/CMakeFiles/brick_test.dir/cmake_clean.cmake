file(REMOVE_RECURSE
  "CMakeFiles/brick_test.dir/brick_test.cc.o"
  "CMakeFiles/brick_test.dir/brick_test.cc.o.d"
  "brick_test"
  "brick_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brick_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
