# Empty dependencies file for brick_test.
# This may be replaced when dependencies are built.
