file(REMOVE_RECURSE
  "CMakeFiles/rectilinear_test.dir/rectilinear_test.cc.o"
  "CMakeFiles/rectilinear_test.dir/rectilinear_test.cc.o.d"
  "rectilinear_test"
  "rectilinear_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rectilinear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
