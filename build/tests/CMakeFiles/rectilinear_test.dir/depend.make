# Empty dependencies file for rectilinear_test.
# This may be replaced when dependencies are built.
