file(REMOVE_RECURSE
  "libvizndp_msgpack.a"
)
