file(REMOVE_RECURSE
  "CMakeFiles/vizndp_msgpack.dir/pack.cc.o"
  "CMakeFiles/vizndp_msgpack.dir/pack.cc.o.d"
  "CMakeFiles/vizndp_msgpack.dir/unpack.cc.o"
  "CMakeFiles/vizndp_msgpack.dir/unpack.cc.o.d"
  "CMakeFiles/vizndp_msgpack.dir/value.cc.o"
  "CMakeFiles/vizndp_msgpack.dir/value.cc.o.d"
  "libvizndp_msgpack.a"
  "libvizndp_msgpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vizndp_msgpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
