
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msgpack/pack.cc" "src/msgpack/CMakeFiles/vizndp_msgpack.dir/pack.cc.o" "gcc" "src/msgpack/CMakeFiles/vizndp_msgpack.dir/pack.cc.o.d"
  "/root/repo/src/msgpack/unpack.cc" "src/msgpack/CMakeFiles/vizndp_msgpack.dir/unpack.cc.o" "gcc" "src/msgpack/CMakeFiles/vizndp_msgpack.dir/unpack.cc.o.d"
  "/root/repo/src/msgpack/value.cc" "src/msgpack/CMakeFiles/vizndp_msgpack.dir/value.cc.o" "gcc" "src/msgpack/CMakeFiles/vizndp_msgpack.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vizndp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
