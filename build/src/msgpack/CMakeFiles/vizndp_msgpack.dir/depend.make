# Empty dependencies file for vizndp_msgpack.
# This may be replaced when dependencies are built.
