file(REMOVE_RECURSE
  "CMakeFiles/vizndp_grid.dir/data_array.cc.o"
  "CMakeFiles/vizndp_grid.dir/data_array.cc.o.d"
  "CMakeFiles/vizndp_grid.dir/dataset.cc.o"
  "CMakeFiles/vizndp_grid.dir/dataset.cc.o.d"
  "CMakeFiles/vizndp_grid.dir/dims.cc.o"
  "CMakeFiles/vizndp_grid.dir/dims.cc.o.d"
  "libvizndp_grid.a"
  "libvizndp_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vizndp_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
