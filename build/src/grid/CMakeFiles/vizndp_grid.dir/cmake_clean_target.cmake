file(REMOVE_RECURSE
  "libvizndp_grid.a"
)
