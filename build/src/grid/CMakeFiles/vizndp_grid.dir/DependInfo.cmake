
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/data_array.cc" "src/grid/CMakeFiles/vizndp_grid.dir/data_array.cc.o" "gcc" "src/grid/CMakeFiles/vizndp_grid.dir/data_array.cc.o.d"
  "/root/repo/src/grid/dataset.cc" "src/grid/CMakeFiles/vizndp_grid.dir/dataset.cc.o" "gcc" "src/grid/CMakeFiles/vizndp_grid.dir/dataset.cc.o.d"
  "/root/repo/src/grid/dims.cc" "src/grid/CMakeFiles/vizndp_grid.dir/dims.cc.o" "gcc" "src/grid/CMakeFiles/vizndp_grid.dir/dims.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vizndp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
