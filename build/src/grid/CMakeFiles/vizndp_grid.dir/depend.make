# Empty dependencies file for vizndp_grid.
# This may be replaced when dependencies are built.
