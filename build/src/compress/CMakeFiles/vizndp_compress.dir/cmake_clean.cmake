file(REMOVE_RECURSE
  "CMakeFiles/vizndp_compress.dir/checksum.cc.o"
  "CMakeFiles/vizndp_compress.dir/checksum.cc.o.d"
  "CMakeFiles/vizndp_compress.dir/codec.cc.o"
  "CMakeFiles/vizndp_compress.dir/codec.cc.o.d"
  "CMakeFiles/vizndp_compress.dir/deflate.cc.o"
  "CMakeFiles/vizndp_compress.dir/deflate.cc.o.d"
  "CMakeFiles/vizndp_compress.dir/gzip.cc.o"
  "CMakeFiles/vizndp_compress.dir/gzip.cc.o.d"
  "CMakeFiles/vizndp_compress.dir/huffman.cc.o"
  "CMakeFiles/vizndp_compress.dir/huffman.cc.o.d"
  "CMakeFiles/vizndp_compress.dir/inflate.cc.o"
  "CMakeFiles/vizndp_compress.dir/inflate.cc.o.d"
  "CMakeFiles/vizndp_compress.dir/lz4.cc.o"
  "CMakeFiles/vizndp_compress.dir/lz4.cc.o.d"
  "CMakeFiles/vizndp_compress.dir/rle.cc.o"
  "CMakeFiles/vizndp_compress.dir/rle.cc.o.d"
  "CMakeFiles/vizndp_compress.dir/zlib_stream.cc.o"
  "CMakeFiles/vizndp_compress.dir/zlib_stream.cc.o.d"
  "libvizndp_compress.a"
  "libvizndp_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vizndp_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
