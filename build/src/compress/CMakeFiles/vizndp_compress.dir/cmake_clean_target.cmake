file(REMOVE_RECURSE
  "libvizndp_compress.a"
)
