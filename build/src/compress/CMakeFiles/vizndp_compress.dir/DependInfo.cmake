
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/checksum.cc" "src/compress/CMakeFiles/vizndp_compress.dir/checksum.cc.o" "gcc" "src/compress/CMakeFiles/vizndp_compress.dir/checksum.cc.o.d"
  "/root/repo/src/compress/codec.cc" "src/compress/CMakeFiles/vizndp_compress.dir/codec.cc.o" "gcc" "src/compress/CMakeFiles/vizndp_compress.dir/codec.cc.o.d"
  "/root/repo/src/compress/deflate.cc" "src/compress/CMakeFiles/vizndp_compress.dir/deflate.cc.o" "gcc" "src/compress/CMakeFiles/vizndp_compress.dir/deflate.cc.o.d"
  "/root/repo/src/compress/gzip.cc" "src/compress/CMakeFiles/vizndp_compress.dir/gzip.cc.o" "gcc" "src/compress/CMakeFiles/vizndp_compress.dir/gzip.cc.o.d"
  "/root/repo/src/compress/huffman.cc" "src/compress/CMakeFiles/vizndp_compress.dir/huffman.cc.o" "gcc" "src/compress/CMakeFiles/vizndp_compress.dir/huffman.cc.o.d"
  "/root/repo/src/compress/inflate.cc" "src/compress/CMakeFiles/vizndp_compress.dir/inflate.cc.o" "gcc" "src/compress/CMakeFiles/vizndp_compress.dir/inflate.cc.o.d"
  "/root/repo/src/compress/lz4.cc" "src/compress/CMakeFiles/vizndp_compress.dir/lz4.cc.o" "gcc" "src/compress/CMakeFiles/vizndp_compress.dir/lz4.cc.o.d"
  "/root/repo/src/compress/rle.cc" "src/compress/CMakeFiles/vizndp_compress.dir/rle.cc.o" "gcc" "src/compress/CMakeFiles/vizndp_compress.dir/rle.cc.o.d"
  "/root/repo/src/compress/zlib_stream.cc" "src/compress/CMakeFiles/vizndp_compress.dir/zlib_stream.cc.o" "gcc" "src/compress/CMakeFiles/vizndp_compress.dir/zlib_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vizndp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
