# Empty compiler generated dependencies file for vizndp_compress.
# This may be replaced when dependencies are built.
