file(REMOVE_RECURSE
  "CMakeFiles/vizndp_sim.dir/impact.cc.o"
  "CMakeFiles/vizndp_sim.dir/impact.cc.o.d"
  "CMakeFiles/vizndp_sim.dir/noise.cc.o"
  "CMakeFiles/vizndp_sim.dir/noise.cc.o.d"
  "CMakeFiles/vizndp_sim.dir/nyx.cc.o"
  "CMakeFiles/vizndp_sim.dir/nyx.cc.o.d"
  "libvizndp_sim.a"
  "libvizndp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vizndp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
