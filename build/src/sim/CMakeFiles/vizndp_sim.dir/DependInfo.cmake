
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/impact.cc" "src/sim/CMakeFiles/vizndp_sim.dir/impact.cc.o" "gcc" "src/sim/CMakeFiles/vizndp_sim.dir/impact.cc.o.d"
  "/root/repo/src/sim/noise.cc" "src/sim/CMakeFiles/vizndp_sim.dir/noise.cc.o" "gcc" "src/sim/CMakeFiles/vizndp_sim.dir/noise.cc.o.d"
  "/root/repo/src/sim/nyx.cc" "src/sim/CMakeFiles/vizndp_sim.dir/nyx.cc.o" "gcc" "src/sim/CMakeFiles/vizndp_sim.dir/nyx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/vizndp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vizndp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
