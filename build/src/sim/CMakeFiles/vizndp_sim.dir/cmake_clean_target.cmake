file(REMOVE_RECURSE
  "libvizndp_sim.a"
)
