# Empty dependencies file for vizndp_sim.
# This may be replaced when dependencies are built.
