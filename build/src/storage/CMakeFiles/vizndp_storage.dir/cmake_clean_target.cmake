file(REMOVE_RECURSE
  "libvizndp_storage.a"
)
