# Empty compiler generated dependencies file for vizndp_storage.
# This may be replaced when dependencies are built.
