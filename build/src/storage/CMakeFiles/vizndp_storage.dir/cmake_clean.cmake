file(REMOVE_RECURSE
  "CMakeFiles/vizndp_storage.dir/file_gateway.cc.o"
  "CMakeFiles/vizndp_storage.dir/file_gateway.cc.o.d"
  "CMakeFiles/vizndp_storage.dir/local_store.cc.o"
  "CMakeFiles/vizndp_storage.dir/local_store.cc.o.d"
  "CMakeFiles/vizndp_storage.dir/memory_store.cc.o"
  "CMakeFiles/vizndp_storage.dir/memory_store.cc.o.d"
  "CMakeFiles/vizndp_storage.dir/remote_store.cc.o"
  "CMakeFiles/vizndp_storage.dir/remote_store.cc.o.d"
  "CMakeFiles/vizndp_storage.dir/store_rpc.cc.o"
  "CMakeFiles/vizndp_storage.dir/store_rpc.cc.o.d"
  "libvizndp_storage.a"
  "libvizndp_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vizndp_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
