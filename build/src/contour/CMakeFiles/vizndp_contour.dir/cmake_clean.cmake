file(REMOVE_RECURSE
  "CMakeFiles/vizndp_contour.dir/components.cc.o"
  "CMakeFiles/vizndp_contour.dir/components.cc.o.d"
  "CMakeFiles/vizndp_contour.dir/contour_filter.cc.o"
  "CMakeFiles/vizndp_contour.dir/contour_filter.cc.o.d"
  "CMakeFiles/vizndp_contour.dir/marching_cubes.cc.o"
  "CMakeFiles/vizndp_contour.dir/marching_cubes.cc.o.d"
  "CMakeFiles/vizndp_contour.dir/marching_squares.cc.o"
  "CMakeFiles/vizndp_contour.dir/marching_squares.cc.o.d"
  "CMakeFiles/vizndp_contour.dir/mc_tables.cc.o"
  "CMakeFiles/vizndp_contour.dir/mc_tables.cc.o.d"
  "CMakeFiles/vizndp_contour.dir/polydata.cc.o"
  "CMakeFiles/vizndp_contour.dir/polydata.cc.o.d"
  "CMakeFiles/vizndp_contour.dir/select.cc.o"
  "CMakeFiles/vizndp_contour.dir/select.cc.o.d"
  "CMakeFiles/vizndp_contour.dir/sparse_field.cc.o"
  "CMakeFiles/vizndp_contour.dir/sparse_field.cc.o.d"
  "libvizndp_contour.a"
  "libvizndp_contour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vizndp_contour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
