
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/contour/components.cc" "src/contour/CMakeFiles/vizndp_contour.dir/components.cc.o" "gcc" "src/contour/CMakeFiles/vizndp_contour.dir/components.cc.o.d"
  "/root/repo/src/contour/contour_filter.cc" "src/contour/CMakeFiles/vizndp_contour.dir/contour_filter.cc.o" "gcc" "src/contour/CMakeFiles/vizndp_contour.dir/contour_filter.cc.o.d"
  "/root/repo/src/contour/marching_cubes.cc" "src/contour/CMakeFiles/vizndp_contour.dir/marching_cubes.cc.o" "gcc" "src/contour/CMakeFiles/vizndp_contour.dir/marching_cubes.cc.o.d"
  "/root/repo/src/contour/marching_squares.cc" "src/contour/CMakeFiles/vizndp_contour.dir/marching_squares.cc.o" "gcc" "src/contour/CMakeFiles/vizndp_contour.dir/marching_squares.cc.o.d"
  "/root/repo/src/contour/mc_tables.cc" "src/contour/CMakeFiles/vizndp_contour.dir/mc_tables.cc.o" "gcc" "src/contour/CMakeFiles/vizndp_contour.dir/mc_tables.cc.o.d"
  "/root/repo/src/contour/polydata.cc" "src/contour/CMakeFiles/vizndp_contour.dir/polydata.cc.o" "gcc" "src/contour/CMakeFiles/vizndp_contour.dir/polydata.cc.o.d"
  "/root/repo/src/contour/select.cc" "src/contour/CMakeFiles/vizndp_contour.dir/select.cc.o" "gcc" "src/contour/CMakeFiles/vizndp_contour.dir/select.cc.o.d"
  "/root/repo/src/contour/sparse_field.cc" "src/contour/CMakeFiles/vizndp_contour.dir/sparse_field.cc.o" "gcc" "src/contour/CMakeFiles/vizndp_contour.dir/sparse_field.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/vizndp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vizndp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
