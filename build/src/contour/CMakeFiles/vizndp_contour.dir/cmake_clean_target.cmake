file(REMOVE_RECURSE
  "libvizndp_contour.a"
)
