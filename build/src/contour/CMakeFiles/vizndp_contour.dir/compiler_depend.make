# Empty compiler generated dependencies file for vizndp_contour.
# This may be replaced when dependencies are built.
