# Empty dependencies file for vizndp_pipeline.
# This may be replaced when dependencies are built.
