file(REMOVE_RECURSE
  "libvizndp_pipeline.a"
)
