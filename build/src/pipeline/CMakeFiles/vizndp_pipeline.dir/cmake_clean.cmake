file(REMOVE_RECURSE
  "CMakeFiles/vizndp_pipeline.dir/algorithm.cc.o"
  "CMakeFiles/vizndp_pipeline.dir/algorithm.cc.o.d"
  "CMakeFiles/vizndp_pipeline.dir/elements.cc.o"
  "CMakeFiles/vizndp_pipeline.dir/elements.cc.o.d"
  "libvizndp_pipeline.a"
  "libvizndp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vizndp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
