file(REMOVE_RECURSE
  "CMakeFiles/vizndp_rpc.dir/client.cc.o"
  "CMakeFiles/vizndp_rpc.dir/client.cc.o.d"
  "CMakeFiles/vizndp_rpc.dir/server.cc.o"
  "CMakeFiles/vizndp_rpc.dir/server.cc.o.d"
  "libvizndp_rpc.a"
  "libvizndp_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vizndp_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
