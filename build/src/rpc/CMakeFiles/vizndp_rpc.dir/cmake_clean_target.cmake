file(REMOVE_RECURSE
  "libvizndp_rpc.a"
)
