# Empty compiler generated dependencies file for vizndp_rpc.
# This may be replaced when dependencies are built.
