file(REMOVE_RECURSE
  "libvizndp_ndp.a"
)
