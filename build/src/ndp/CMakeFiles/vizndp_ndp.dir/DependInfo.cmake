
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ndp/bricked_select.cc" "src/ndp/CMakeFiles/vizndp_ndp.dir/bricked_select.cc.o" "gcc" "src/ndp/CMakeFiles/vizndp_ndp.dir/bricked_select.cc.o.d"
  "/root/repo/src/ndp/catalog.cc" "src/ndp/CMakeFiles/vizndp_ndp.dir/catalog.cc.o" "gcc" "src/ndp/CMakeFiles/vizndp_ndp.dir/catalog.cc.o.d"
  "/root/repo/src/ndp/ndp_client.cc" "src/ndp/CMakeFiles/vizndp_ndp.dir/ndp_client.cc.o" "gcc" "src/ndp/CMakeFiles/vizndp_ndp.dir/ndp_client.cc.o.d"
  "/root/repo/src/ndp/ndp_server.cc" "src/ndp/CMakeFiles/vizndp_ndp.dir/ndp_server.cc.o" "gcc" "src/ndp/CMakeFiles/vizndp_ndp.dir/ndp_server.cc.o.d"
  "/root/repo/src/ndp/protocol.cc" "src/ndp/CMakeFiles/vizndp_ndp.dir/protocol.cc.o" "gcc" "src/ndp/CMakeFiles/vizndp_ndp.dir/protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/contour/CMakeFiles/vizndp_contour.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/vizndp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/vizndp_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/vizndp_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vizndp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vizndp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/vizndp_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/msgpack/CMakeFiles/vizndp_msgpack.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/vizndp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vizndp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
