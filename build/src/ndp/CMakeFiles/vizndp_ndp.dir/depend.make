# Empty dependencies file for vizndp_ndp.
# This may be replaced when dependencies are built.
