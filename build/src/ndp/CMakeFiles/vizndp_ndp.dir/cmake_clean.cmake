file(REMOVE_RECURSE
  "CMakeFiles/vizndp_ndp.dir/bricked_select.cc.o"
  "CMakeFiles/vizndp_ndp.dir/bricked_select.cc.o.d"
  "CMakeFiles/vizndp_ndp.dir/catalog.cc.o"
  "CMakeFiles/vizndp_ndp.dir/catalog.cc.o.d"
  "CMakeFiles/vizndp_ndp.dir/ndp_client.cc.o"
  "CMakeFiles/vizndp_ndp.dir/ndp_client.cc.o.d"
  "CMakeFiles/vizndp_ndp.dir/ndp_server.cc.o"
  "CMakeFiles/vizndp_ndp.dir/ndp_server.cc.o.d"
  "CMakeFiles/vizndp_ndp.dir/protocol.cc.o"
  "CMakeFiles/vizndp_ndp.dir/protocol.cc.o.d"
  "libvizndp_ndp.a"
  "libvizndp_ndp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vizndp_ndp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
