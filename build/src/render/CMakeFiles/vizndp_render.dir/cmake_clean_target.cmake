file(REMOVE_RECURSE
  "libvizndp_render.a"
)
