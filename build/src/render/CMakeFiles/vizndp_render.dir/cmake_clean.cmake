file(REMOVE_RECURSE
  "CMakeFiles/vizndp_render.dir/camera.cc.o"
  "CMakeFiles/vizndp_render.dir/camera.cc.o.d"
  "CMakeFiles/vizndp_render.dir/framebuffer.cc.o"
  "CMakeFiles/vizndp_render.dir/framebuffer.cc.o.d"
  "CMakeFiles/vizndp_render.dir/rasterizer.cc.o"
  "CMakeFiles/vizndp_render.dir/rasterizer.cc.o.d"
  "CMakeFiles/vizndp_render.dir/render_sink.cc.o"
  "CMakeFiles/vizndp_render.dir/render_sink.cc.o.d"
  "libvizndp_render.a"
  "libvizndp_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vizndp_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
