# Empty compiler generated dependencies file for vizndp_render.
# This may be replaced when dependencies are built.
