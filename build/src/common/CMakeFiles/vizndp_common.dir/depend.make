# Empty dependencies file for vizndp_common.
# This may be replaced when dependencies are built.
