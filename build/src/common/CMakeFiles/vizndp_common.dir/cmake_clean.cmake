file(REMOVE_RECURSE
  "CMakeFiles/vizndp_common.dir/error.cc.o"
  "CMakeFiles/vizndp_common.dir/error.cc.o.d"
  "CMakeFiles/vizndp_common.dir/hexdump.cc.o"
  "CMakeFiles/vizndp_common.dir/hexdump.cc.o.d"
  "libvizndp_common.a"
  "libvizndp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vizndp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
