file(REMOVE_RECURSE
  "libvizndp_common.a"
)
