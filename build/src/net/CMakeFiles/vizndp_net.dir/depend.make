# Empty dependencies file for vizndp_net.
# This may be replaced when dependencies are built.
