file(REMOVE_RECURSE
  "libvizndp_net.a"
)
