file(REMOVE_RECURSE
  "CMakeFiles/vizndp_net.dir/inproc.cc.o"
  "CMakeFiles/vizndp_net.dir/inproc.cc.o.d"
  "CMakeFiles/vizndp_net.dir/link_model.cc.o"
  "CMakeFiles/vizndp_net.dir/link_model.cc.o.d"
  "CMakeFiles/vizndp_net.dir/tcp.cc.o"
  "CMakeFiles/vizndp_net.dir/tcp.cc.o.d"
  "libvizndp_net.a"
  "libvizndp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vizndp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
