file(REMOVE_RECURSE
  "CMakeFiles/vizndp_io.dir/vnd_format.cc.o"
  "CMakeFiles/vizndp_io.dir/vnd_format.cc.o.d"
  "CMakeFiles/vizndp_io.dir/vtk_ascii.cc.o"
  "CMakeFiles/vizndp_io.dir/vtk_ascii.cc.o.d"
  "libvizndp_io.a"
  "libvizndp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vizndp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
