file(REMOVE_RECURSE
  "libvizndp_io.a"
)
