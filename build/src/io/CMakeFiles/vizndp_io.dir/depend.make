# Empty dependencies file for vizndp_io.
# This may be replaced when dependencies are built.
