# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("grid")
subdirs("compress")
subdirs("msgpack")
subdirs("net")
subdirs("rpc")
subdirs("storage")
subdirs("io")
subdirs("pipeline")
subdirs("contour")
subdirs("sim")
subdirs("render")
subdirs("ndp")
subdirs("bench_util")
