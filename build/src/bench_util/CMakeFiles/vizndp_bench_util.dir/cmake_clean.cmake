file(REMOVE_RECURSE
  "CMakeFiles/vizndp_bench_util.dir/stats.cc.o"
  "CMakeFiles/vizndp_bench_util.dir/stats.cc.o.d"
  "CMakeFiles/vizndp_bench_util.dir/table.cc.o"
  "CMakeFiles/vizndp_bench_util.dir/table.cc.o.d"
  "CMakeFiles/vizndp_bench_util.dir/testbed.cc.o"
  "CMakeFiles/vizndp_bench_util.dir/testbed.cc.o.d"
  "libvizndp_bench_util.a"
  "libvizndp_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vizndp_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
