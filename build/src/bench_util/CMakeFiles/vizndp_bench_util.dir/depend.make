# Empty dependencies file for vizndp_bench_util.
# This may be replaced when dependencies are built.
