file(REMOVE_RECURSE
  "libvizndp_bench_util.a"
)
