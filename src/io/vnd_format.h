// VND ("vizndp dataset") container format — the stand-in for the paper's
// VTK data files. Design goals taken from the paper's needs:
//   * multiple named data arrays per timestep file (xRage writes 11);
//   * per-array compression with a recorded codec ("none"/"gzip"/"lz4"),
//     matching VTK's native per-array compressor support;
//   * array *selection*: the directory is at the front, so a reader can
//     fetch exactly one array with a ranged read instead of the file.
//
// Layout (all little-endian):
//   bytes 0..3   magic "VNDF"
//   bytes 4..7   u32 format version (2; v1 files still read)
//   bytes 8..11  u32 header byte count H
//   bytes 12..12+H-1  header: one msgpack map (see below)
//   then the array blobs, at header-recorded offsets from the blob base.
//
// Header map:
//   {"dims": [nx, ny, nz], "origin": [x, y, z], "spacing": [x, y, z],
//    "arrays": [{"name": str, "type": str, "codec": str,
//                "raw_size": u64, "stored_size": u64,
//                "offset": u64, "crc32": u32,
//                ?"brick_edge": u32,
//                ?"bricks": [[offset, size, min, max, crc32], ...]}, ...]}
//
// Format v2 adds the per-brick crc32 (v1 brick entries are 4-tuples with
// no checksum): the bricked fast path reads a handful of bricks, never
// the whole blob, so without it a flipped bit inside one compressed
// brick sailed straight into the decoder. Readers verify whichever
// checksums the file carries *before* decompressing and throw
// CorruptDataError on mismatch; the whole-blob crc32 is retained in both
// versions. Every header field is validated against the file size on
// open, so a hostile header cannot drive out-of-range ranged reads or
// oversized allocations.
//
// Bricked arrays (optional, VndWriter::SetBrickSize): the blob is a
// concatenation of independently compressed bricks covering point slabs
// of `brick_edge` cells per axis plus one ghost point layer, each with
// its value min/max recorded in the header. A reader can then fetch and
// decompress only the bricks whose [min, max] straddles an isovalue —
// which is how the NDP pre-filter sidesteps the paper's "lower-bounded
// by local read time" limit (see src/ndp/bricked_select.h).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "grid/dataset.h"
#include "storage/file_gateway.h"

namespace vizndp::io {

struct BrickEntry {
  std::uint64_t offset = 0;  // from the array's own blob start
  std::uint64_t stored_size = 0;
  double min = 0.0;
  double max = 0.0;
  std::uint32_t crc32 = 0;  // of the stored brick bytes (format v2+)
};

// Brick decomposition of one array. Bricks partition the *cells* into
// cubes of `edge` per axis; each brick stores the covering point slab
// (cells + one ghost layer), so any cell is fully contained in exactly
// one brick.
struct BrickIndex {
  std::int32_t edge = 0;
  // False for v1 files: entries carry no crc32, so per-brick reads
  // cannot be integrity-checked (the whole-blob CRC still is).
  bool has_crc = false;
  std::vector<BrickEntry> entries;  // bi + nbx * (bj + nby * bk) order
};

struct ArrayMeta {
  std::string name;
  grid::DataType type = grid::DataType::Float32;
  std::string codec;
  std::uint64_t raw_size = 0;     // decompressed bytes (dense array)
  std::uint64_t stored_size = 0;  // bytes in the file
  std::uint64_t offset = 0;       // from the blob base
  std::uint32_t crc32 = 0;        // of the *stored* (possibly compressed) blob
  std::optional<BrickIndex> bricks;
};

// Brick grid arithmetic shared by the writer, reader, and the brick-aware
// pre-filter.
struct BrickGrid {
  grid::Dims dims;
  std::int32_t edge = 0;
  std::int64_t nbx = 0, nby = 0, nbz = 0;

  BrickGrid(const grid::Dims& d, std::int32_t brick_edge);

  std::int64_t BrickCount() const { return nbx * nby * nbz; }

  struct Extent {
    // Inclusive point ranges of the brick's slab (cells + ghost layer).
    std::int64_t x0, x1, y0, y1, z0, z1;
    std::int64_t PointCount() const {
      return (x1 - x0 + 1) * (y1 - y0 + 1) * (z1 - z0 + 1);
    }
  };

  Extent BrickExtent(std::int64_t brick) const;
};

struct VndHeader {
  grid::Dims dims;
  grid::UniformGeometry geometry;
  std::vector<ArrayMeta> arrays;

  const ArrayMeta* Find(const std::string& name) const;
  // Offset of the blob base from the start of the file.
  std::uint64_t blob_base = 0;
  // Format version the file was written with (1 or 2).
  std::uint32_t version = 2;
};

class VndWriter {
 public:
  explicit VndWriter(const grid::Dataset& dataset) : dataset_(dataset) {}

  // Codec applied to arrays without a per-array override.
  void SetCodec(compress::CodecPtr codec) { default_codec_ = std::move(codec); }
  void SetArrayCodec(const std::string& array, compress::CodecPtr codec);

  // Enables bricked storage (0 = monolithic, the default). Typical edges:
  // 16-64 cells. Applies to every array in the file.
  void SetBrickSize(std::int32_t edge) { brick_edge_ = edge; }

  // Format version to emit (2, the default, adds per-brick checksums;
  // 1 reproduces the legacy layout for back-compat tests and tooling).
  void SetFormatVersion(std::uint32_t version);

  Bytes Serialize() const;

  // Serializes and stores as `bucket/key` in one call.
  void WriteToStore(storage::ObjectStore& store, const std::string& bucket,
                    const std::string& key) const;

 private:
  const grid::Dataset& dataset_;
  compress::CodecPtr default_codec_ = std::make_shared<compress::NullCodec>();
  std::vector<std::pair<std::string, compress::CodecPtr>> overrides_;
  std::int32_t brick_edge_ = 0;
  std::uint32_t version_ = 2;
};

class VndReader {
 public:
  // Fetches and parses the header (two small ranged reads); array payloads
  // are read lazily, so unselected arrays never leave the store.
  explicit VndReader(storage::GatewayFile file);

  const VndHeader& header() const { return header_; }

  std::vector<std::string> ArrayNames() const;

  // Ranged-reads, integrity-checks, and decompresses one array (bricked
  // arrays are reassembled into the dense layout).
  grid::DataArray ReadArray(const std::string& name) const;

  bool HasBricks(const std::string& name) const;

  // Fetches and decompresses one brick's point slab (row-major within the
  // brick extent). Only that brick's bytes leave the store.
  grid::DataArray ReadBrick(const std::string& name,
                            std::int64_t brick) const;

  // Raw ranged read within one array's stored blob (offsets relative to
  // the blob start). Used to coalesce multi-brick fetches.
  Bytes ReadArrayRange(const std::string& name, std::uint64_t offset,
                       std::uint64_t length) const;

  // The paper's "data array selection": reads only `names`.
  grid::Dataset ReadSelected(const std::vector<std::string>& names) const;

  grid::Dataset ReadAll() const;

  // Bytes a ReadArray(name) call will fetch from the store (compressed
  // size) — what the baseline setup must move over the network.
  std::uint64_t StoredSize(const std::string& name) const;

 private:
  storage::GatewayFile file_;
  VndHeader header_;
};

// Parses a header from a full in-memory file image (tests, tools).
VndHeader ParseVndHeader(ByteSpan file_image);

}  // namespace vizndp::io
