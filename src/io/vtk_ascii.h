// Legacy-VTK ASCII interop: writes a Dataset as a "# vtk DataFile
// Version 3.0" STRUCTURED_POINTS file (openable in ParaView/VisIt), and
// writes contour PolyData as legacy POLYDATA. Used by the examples to
// produce externally inspectable output.
#pragma once

#include <iosfwd>
#include <string>

#include "grid/dataset.h"

namespace vizndp::io {

// Writes the grid and every array as POINT_DATA scalars.
void WriteLegacyVtk(std::ostream& os, const grid::Dataset& dataset,
                    const std::string& title = "vizndp dataset");

void WriteLegacyVtkFile(const std::string& path, const grid::Dataset& dataset,
                        const std::string& title = "vizndp dataset");

// Parses a legacy ASCII STRUCTURED_POINTS file (the subset WriteLegacyVtk
// emits: DIMENSIONS/ORIGIN/SPACING + POINT_DATA SCALARS float|double).
// Throws DecodeError on malformed input.
grid::Dataset ReadLegacyVtk(std::istream& is);

grid::Dataset ReadLegacyVtkFile(const std::string& path);

}  // namespace vizndp::io
