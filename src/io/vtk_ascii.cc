#include "io/vtk_ascii.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>

#include "common/error.h"

namespace vizndp::io {

void WriteLegacyVtk(std::ostream& os, const grid::Dataset& dataset,
                    const std::string& title) {
  const grid::Dims& dims = dataset.dims();
  const grid::UniformGeometry& geo = dataset.geometry();
  // max_digits10 for double: values survive a write/read round trip.
  os << std::setprecision(17);
  os << "# vtk DataFile Version 3.0\n"
     << title << "\n"
     << "ASCII\n"
     << "DATASET STRUCTURED_POINTS\n"
     << "DIMENSIONS " << dims.nx << " " << dims.ny << " " << dims.nz << "\n"
     << "ORIGIN " << geo.origin[0] << " " << geo.origin[1] << " "
     << geo.origin[2] << "\n"
     << "SPACING " << geo.spacing[0] << " " << geo.spacing[1] << " "
     << geo.spacing[2] << "\n"
     << "POINT_DATA " << dims.PointCount() << "\n";
  for (size_t a = 0; a < dataset.ArrayCount(); ++a) {
    const grid::DataArray& array = dataset.ArrayAt(a);
    const char* vtk_type =
        array.type() == grid::DataType::Float64 ? "double" : "float";
    os << "SCALARS " << array.name() << " " << vtk_type << " 1\n"
       << "LOOKUP_TABLE default\n";
    for (std::int64_t i = 0; i < array.size(); ++i) {
      os << array.ValueAsDouble(i)
         << ((i + 1) % 8 == 0 || i + 1 == array.size() ? '\n' : ' ');
    }
  }
}

void WriteLegacyVtkFile(const std::string& path, const grid::Dataset& dataset,
                        const std::string& title) {
  std::ofstream os(path);
  VIZNDP_CHECK_MSG(os.good(), "cannot open " + path);
  WriteLegacyVtk(os, dataset, title);
  VIZNDP_CHECK_MSG(os.good(), "short write to " + path);
}

namespace {

std::string NextToken(std::istream& is, const char* what) {
  std::string token;
  if (!(is >> token)) {
    throw DecodeError(std::string("legacy VTK: missing ") + what);
  }
  return token;
}

template <typename T>
T NextNumber(std::istream& is, const char* what) {
  T value;
  if (!(is >> value)) {
    throw DecodeError(std::string("legacy VTK: bad number for ") + what);
  }
  return value;
}

void Expect(std::istream& is, const std::string& want) {
  const std::string got = NextToken(is, want.c_str());
  if (got != want) {
    throw DecodeError("legacy VTK: expected '" + want + "', got '" + got + "'");
  }
}

}  // namespace

grid::Dataset ReadLegacyVtk(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) ||
      line.rfind("# vtk DataFile", 0) != 0) {
    throw DecodeError("legacy VTK: bad magic line");
  }
  std::getline(is, line);  // title (ignored)
  const std::string format = NextToken(is, "format");
  if (format != "ASCII") {
    throw DecodeError("legacy VTK: only ASCII files are supported");
  }
  Expect(is, "DATASET");
  const std::string kind = NextToken(is, "dataset type");
  if (kind != "STRUCTURED_POINTS") {
    throw DecodeError("legacy VTK: only STRUCTURED_POINTS is supported, got " +
                      kind);
  }

  grid::Dims dims;
  grid::UniformGeometry geo;
  std::int64_t point_count = -1;
  grid::Dataset dataset;
  bool have_dataset = false;

  std::string token;
  while (is >> token) {
    if (token == "DIMENSIONS") {
      dims.nx = NextNumber<std::int64_t>(is, "nx");
      dims.ny = NextNumber<std::int64_t>(is, "ny");
      dims.nz = NextNumber<std::int64_t>(is, "nz");
    } else if (token == "ORIGIN") {
      for (auto& v : geo.origin) v = NextNumber<double>(is, "origin");
    } else if (token == "SPACING") {
      for (auto& v : geo.spacing) v = NextNumber<double>(is, "spacing");
    } else if (token == "POINT_DATA") {
      point_count = NextNumber<std::int64_t>(is, "point count");
      if (point_count != dims.PointCount()) {
        throw DecodeError("legacy VTK: POINT_DATA count does not match "
                          "DIMENSIONS");
      }
      dataset = grid::Dataset(dims, geo);
      have_dataset = true;
    } else if (token == "SCALARS") {
      if (!have_dataset) {
        throw DecodeError("legacy VTK: SCALARS before POINT_DATA");
      }
      const std::string name = NextToken(is, "array name");
      const std::string type = NextToken(is, "scalar type");
      // Optional numComponents (defaults to 1); LOOKUP_TABLE follows.
      std::string next = NextToken(is, "LOOKUP_TABLE");
      if (next != "LOOKUP_TABLE") {
        if (next != "1") {
          throw DecodeError("legacy VTK: only 1-component scalars supported");
        }
        Expect(is, "LOOKUP_TABLE");
      }
      NextToken(is, "lookup table name");
      if (type == "double") {
        std::vector<double> values(static_cast<size_t>(point_count));
        for (auto& v : values) v = NextNumber<double>(is, name.c_str());
        dataset.AddArray(grid::DataArray::FromVector(name, std::move(values)));
      } else if (type == "float") {
        std::vector<float> values(static_cast<size_t>(point_count));
        for (auto& v : values) v = NextNumber<float>(is, name.c_str());
        dataset.AddArray(grid::DataArray::FromVector(name, std::move(values)));
      } else {
        throw DecodeError("legacy VTK: unsupported scalar type " + type);
      }
    } else {
      throw DecodeError("legacy VTK: unexpected token '" + token + "'");
    }
  }
  if (!have_dataset) {
    throw DecodeError("legacy VTK: no POINT_DATA section");
  }
  return dataset;
}

grid::Dataset ReadLegacyVtkFile(const std::string& path) {
  std::ifstream is(path);
  VIZNDP_CHECK_MSG(is.good(), "cannot open " + path);
  return ReadLegacyVtk(is);
}

}  // namespace vizndp::io
