#include "io/vnd_format.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "compress/checksum.h"
#include "msgpack/pack.h"
#include "msgpack/unpack.h"

namespace vizndp::io {

namespace {

constexpr Byte kMagic[4] = {'V', 'N', 'D', 'F'};
constexpr std::uint32_t kVersionV1 = 1;
constexpr std::uint32_t kVersionLatest = 2;  // adds per-brick crc32
constexpr size_t kPreambleSize = 12;  // magic + version + header size

msgpack::Array DoubleTriple(const std::array<double, 3>& v) {
  return {msgpack::Value(v[0]), msgpack::Value(v[1]), msgpack::Value(v[2])};
}

std::array<double, 3> TripleFromValue(const msgpack::Value& v) {
  const auto& a = v.As<msgpack::Array>();
  VIZNDP_CHECK(a.size() == 3);
  return {a[0].AsDouble(), a[1].AsDouble(), a[2].AsDouble()};
}

}  // namespace

BrickGrid::BrickGrid(const grid::Dims& d, std::int32_t brick_edge)
    : dims(d), edge(brick_edge) {
  VIZNDP_CHECK_MSG(edge > 0, "brick edge must be positive");
  const auto bricks_along = [&](std::int64_t n) {
    const std::int64_t cells = std::max<std::int64_t>(0, n - 1);
    return std::max<std::int64_t>(1, (cells + edge - 1) / edge);
  };
  nbx = bricks_along(d.nx);
  nby = bricks_along(d.ny);
  nbz = bricks_along(d.nz);
}

BrickGrid::Extent BrickGrid::BrickExtent(std::int64_t brick) const {
  VIZNDP_CHECK(brick >= 0 && brick < BrickCount());
  const std::int64_t bi = brick % nbx;
  const std::int64_t bj = (brick / nbx) % nby;
  const std::int64_t bk = brick / (nbx * nby);
  const auto span = [&](std::int64_t b, std::int64_t n, std::int64_t* lo,
                        std::int64_t* hi) {
    const std::int64_t cells = std::max<std::int64_t>(0, n - 1);
    *lo = b * edge;
    // Last point = last owned cell + 1 (the ghost layer), clamped for
    // degenerate axes (n == 1).
    *hi = std::min<std::int64_t>(cells, (b + 1) * edge);
    if (n == 1) *hi = 0;
  };
  Extent e{};
  span(bi, dims.nx, &e.x0, &e.x1);
  span(bj, dims.ny, &e.y0, &e.y1);
  span(bk, dims.nz, &e.z0, &e.z1);
  return e;
}

namespace {

// Row-by-row copies between the dense array and a brick's point slab
// (row-major within the slab, x fastest; byte rows so every element type
// works).
template <typename RowFn>
void ForEachSlabRow(const grid::Dims& dims, const BrickGrid::Extent& e,
                    size_t elem_size, RowFn&& row) {
  const auto row_bytes =
      static_cast<size_t>(e.x1 - e.x0 + 1) * elem_size;
  size_t slab_off = 0;
  for (std::int64_t k = e.z0; k <= e.z1; ++k) {
    for (std::int64_t j = e.y0; j <= e.y1; ++j) {
      const auto dense_off =
          static_cast<size_t>(dims.Index(e.x0, j, k)) * elem_size;
      row(dense_off, slab_off, row_bytes);
      slab_off += row_bytes;
    }
  }
}

Bytes ExtractSlab(const grid::Dims& dims, const BrickGrid::Extent& e,
                  size_t elem_size, ByteSpan dense) {
  Bytes slab(static_cast<size_t>(e.PointCount()) * elem_size);
  ForEachSlabRow(dims, e, elem_size,
                 [&](size_t dense_off, size_t slab_off, size_t n) {
                   std::memcpy(slab.data() + slab_off, dense.data() + dense_off,
                               n);
                 });
  return slab;
}

void DepositSlab(const grid::Dims& dims, const BrickGrid::Extent& e,
                 size_t elem_size, ByteSpan slab, Bytes& dense) {
  ForEachSlabRow(dims, e, elem_size,
                 [&](size_t dense_off, size_t slab_off, size_t n) {
                   std::memcpy(dense.data() + dense_off, slab.data() + slab_off,
                               n);
                 });
}

}  // namespace

const ArrayMeta* VndHeader::Find(const std::string& name) const {
  const auto it = std::find_if(arrays.begin(), arrays.end(),
                               [&](const ArrayMeta& m) { return m.name == name; });
  return it == arrays.end() ? nullptr : &*it;
}

void VndWriter::SetArrayCodec(const std::string& array,
                              compress::CodecPtr codec) {
  overrides_.emplace_back(array, std::move(codec));
}

void VndWriter::SetFormatVersion(std::uint32_t version) {
  VIZNDP_CHECK_MSG(version == kVersionV1 || version == kVersionLatest,
                   "unsupported VND format version " + std::to_string(version));
  version_ = version;
}

Bytes VndWriter::Serialize() const {
  // Compress every array first so offsets and sizes are known.
  struct Blob {
    ArrayMeta meta;
    Bytes stored;
  };
  std::vector<Blob> blobs;
  std::uint64_t offset = 0;
  for (size_t i = 0; i < dataset_.ArrayCount(); ++i) {
    const grid::DataArray& array = dataset_.ArrayAt(i);
    compress::CodecPtr codec = default_codec_;
    for (const auto& [name, c] : overrides_) {
      if (name == array.name()) codec = c;
    }
    Blob blob;
    std::optional<BrickIndex> bricks;
    // The whole-blob CRC accumulates incrementally as bricks are
    // appended — the writer never needs a second pass over a blob that
    // may be most of the file.
    compress::Crc32Stream blob_crc;
    if (brick_edge_ > 0) {
      const BrickGrid bgrid(dataset_.dims(), brick_edge_);
      BrickIndex index;
      index.edge = brick_edge_;
      index.has_crc = version_ >= 2;
      index.entries.reserve(static_cast<size_t>(bgrid.BrickCount()));
      const size_t elem = grid::DataTypeSize(array.type());
      std::uint64_t brick_offset = 0;
      for (std::int64_t b = 0; b < bgrid.BrickCount(); ++b) {
        const BrickGrid::Extent e = bgrid.BrickExtent(b);
        const Bytes slab = ExtractSlab(dataset_.dims(), e, elem, array.raw());
        const grid::DataArray slab_array("", array.type(), slab);
        const auto [lo, hi] = slab_array.Range();
        const Bytes stored = codec->Compress(slab);
        const std::uint32_t brick_crc =
            index.has_crc ? compress::Crc32(stored) : 0;
        index.entries.push_back(
            {brick_offset, stored.size(), lo, hi, brick_crc});
        brick_offset += stored.size();
        blob_crc.Update(stored);
        blob.stored.insert(blob.stored.end(), stored.begin(), stored.end());
      }
      bricks = std::move(index);
    } else {
      blob.stored = codec->Compress(array.raw());
      blob_crc.Update(blob.stored);
    }
    blob.meta = ArrayMeta{
        .name = array.name(),
        .type = array.type(),
        .codec = codec->name(),
        .raw_size = static_cast<std::uint64_t>(array.byte_size()),
        .stored_size = blob.stored.size(),
        .offset = offset,
        .crc32 = blob_crc.value(),
        .bricks = std::move(bricks),
    };
    offset += blob.stored.size();
    blobs.push_back(std::move(blob));
  }

  // Header.
  msgpack::Map header;
  header.emplace_back(msgpack::Value("dims"),
                      msgpack::Value(msgpack::Array{
                          msgpack::Value(dataset_.dims().nx),
                          msgpack::Value(dataset_.dims().ny),
                          msgpack::Value(dataset_.dims().nz)}));
  header.emplace_back(msgpack::Value("origin"),
                      msgpack::Value(DoubleTriple(dataset_.geometry().origin)));
  header.emplace_back(msgpack::Value("spacing"),
                      msgpack::Value(DoubleTriple(dataset_.geometry().spacing)));
  msgpack::Array arrays;
  for (const Blob& blob : blobs) {
    msgpack::Map m;
    m.emplace_back(msgpack::Value("name"), msgpack::Value(blob.meta.name));
    m.emplace_back(msgpack::Value("type"),
                   msgpack::Value(std::string(grid::DataTypeName(blob.meta.type))));
    m.emplace_back(msgpack::Value("codec"), msgpack::Value(blob.meta.codec));
    m.emplace_back(msgpack::Value("raw_size"),
                   msgpack::Value(blob.meta.raw_size));
    m.emplace_back(msgpack::Value("stored_size"),
                   msgpack::Value(blob.meta.stored_size));
    m.emplace_back(msgpack::Value("offset"), msgpack::Value(blob.meta.offset));
    m.emplace_back(msgpack::Value("crc32"),
                   msgpack::Value(std::uint64_t{blob.meta.crc32}));
    if (blob.meta.bricks) {
      m.emplace_back(msgpack::Value("brick_edge"),
                     msgpack::Value(std::int64_t{blob.meta.bricks->edge}));
      msgpack::Array entries;
      entries.reserve(blob.meta.bricks->entries.size());
      for (const BrickEntry& entry : blob.meta.bricks->entries) {
        msgpack::Array fields{
            msgpack::Value(entry.offset), msgpack::Value(entry.stored_size),
            msgpack::Value(entry.min), msgpack::Value(entry.max)};
        if (blob.meta.bricks->has_crc) {
          fields.push_back(msgpack::Value(std::uint64_t{entry.crc32}));
        }
        entries.push_back(msgpack::Value(std::move(fields)));
      }
      m.emplace_back(msgpack::Value("bricks"),
                     msgpack::Value(std::move(entries)));
    }
    arrays.push_back(msgpack::Value(std::move(m)));
  }
  header.emplace_back(msgpack::Value("arrays"),
                      msgpack::Value(std::move(arrays)));
  const Bytes header_bytes =
      msgpack::Encode(msgpack::Value(std::move(header)));

  Bytes out;
  out.reserve(kPreambleSize + header_bytes.size() + offset);
  out.insert(out.end(), kMagic, kMagic + 4);
  AppendLE<std::uint32_t>(version_, out);
  AppendLE<std::uint32_t>(static_cast<std::uint32_t>(header_bytes.size()), out);
  out.insert(out.end(), header_bytes.begin(), header_bytes.end());
  for (const Blob& blob : blobs) {
    out.insert(out.end(), blob.stored.begin(), blob.stored.end());
  }
  return out;
}

void VndWriter::WriteToStore(storage::ObjectStore& store,
                             const std::string& bucket,
                             const std::string& key) const {
  store.Put(bucket, key, Serialize());
}

namespace {

[[noreturn]] void FailHeader(const std::string& what) {
  throw DecodeError("invalid VND header: " + what);
}

std::uint64_t CheckedMul(std::uint64_t a, std::uint64_t b,
                         const char* what) {
  if (b != 0 && a > std::numeric_limits<std::uint64_t>::max() / b) {
    FailHeader(what);
  }
  return a * b;
}

// Cross-checks every header field against the physical file size, so a
// hostile header can neither drive out-of-range ranged reads nor claim
// sizes whose allocation alone would take the process down. Called on
// every open; a header that passes here is safe to hand to the reader's
// arithmetic (offsets sum without overflow, bricks stay inside their
// array, raw sizes match the grid).
void ValidateHeader(const VndHeader& h, std::uint64_t file_size) {
  if (h.dims.nx < 1 || h.dims.ny < 1 || h.dims.nz < 1) {
    FailHeader("non-positive dims");
  }
  const std::uint64_t points =
      CheckedMul(CheckedMul(static_cast<std::uint64_t>(h.dims.nx),
                            static_cast<std::uint64_t>(h.dims.ny),
                            "dims overflow"),
                 static_cast<std::uint64_t>(h.dims.nz), "dims overflow");

  const std::uint64_t blob_bytes = file_size - h.blob_base;
  std::uint64_t prev_end = 0;
  for (const ArrayMeta& m : h.arrays) {
    const std::uint64_t expected_raw =
        CheckedMul(points, grid::DataTypeSize(m.type),
                   ("raw size overflow: " + m.name).c_str());
    if (m.raw_size != expected_raw) {
      FailHeader("raw_size disagrees with dims: " + m.name);
    }
    if (m.raw_size > compress::kDefaultDecompressBudget) {
      FailHeader("array exceeds decompress budget: " + m.name);
    }
    if (m.offset < prev_end) {
      FailHeader("array blobs overlap or are out of order: " + m.name);
    }
    if (m.stored_size > blob_bytes || m.offset > blob_bytes - m.stored_size) {
      FailHeader("array blob overruns file: " + m.name);
    }
    prev_end = m.offset + m.stored_size;

    if (m.bricks.has_value()) {
      if (m.bricks->edge < 1) FailHeader("non-positive brick edge: " + m.name);
      const BrickGrid bgrid(h.dims, m.bricks->edge);
      if (static_cast<std::int64_t>(m.bricks->entries.size()) !=
          bgrid.BrickCount()) {
        FailHeader("brick index size disagrees with dims: " + m.name);
      }
      std::uint64_t prev_brick_end = 0;
      for (const BrickEntry& entry : m.bricks->entries) {
        if (entry.offset < prev_brick_end) {
          FailHeader("bricks overlap or are out of order: " + m.name);
        }
        if (entry.stored_size > m.stored_size ||
            entry.offset > m.stored_size - entry.stored_size) {
          FailHeader("brick overruns array blob: " + m.name);
        }
        prev_brick_end = entry.offset + entry.stored_size;
      }
    }
  }
}

VndHeader ParseHeaderBytes(ByteSpan preamble, ByteSpan header_bytes,
                           std::uint64_t file_size) {
  if (preamble.size() < kPreambleSize ||
      std::memcmp(preamble.data(), kMagic, 4) != 0) {
    throw DecodeError("not a VND file (bad magic)");
  }
  const std::uint32_t version = LoadLE<std::uint32_t>(preamble.data() + 4);
  if (version != kVersionV1 && version != kVersionLatest) {
    throw DecodeError("unsupported VND version " + std::to_string(version));
  }

  const msgpack::Value root = msgpack::Decode(header_bytes);
  VndHeader h;
  h.version = version;
  const auto& dims = root.At("dims").As<msgpack::Array>();
  if (dims.size() != 3) FailHeader("dims must have three axes");
  h.dims = {dims[0].AsInt(), dims[1].AsInt(), dims[2].AsInt()};
  h.geometry.origin = TripleFromValue(root.At("origin"));
  h.geometry.spacing = TripleFromValue(root.At("spacing"));
  for (const msgpack::Value& item : root.At("arrays").As<msgpack::Array>()) {
    ArrayMeta m;
    m.name = item.At("name").As<std::string>();
    m.type = grid::DataTypeFromName(item.At("type").As<std::string>());
    m.codec = item.At("codec").As<std::string>();
    m.raw_size = item.At("raw_size").AsUint();
    m.stored_size = item.At("stored_size").AsUint();
    m.offset = item.At("offset").AsUint();
    m.crc32 = static_cast<std::uint32_t>(item.At("crc32").AsUint());
    if (const msgpack::Value* edge = item.Find("brick_edge")) {
      BrickIndex index;
      index.edge = static_cast<std::int32_t>(edge->AsInt());
      index.has_crc = version >= 2;
      const size_t entry_fields = version >= 2 ? 5 : 4;
      for (const msgpack::Value& entry : item.At("bricks").As<msgpack::Array>()) {
        const auto& fields = entry.As<msgpack::Array>();
        if (fields.size() != entry_fields) {
          FailHeader("malformed brick entry: " + m.name);
        }
        BrickEntry e{fields[0].AsUint(), fields[1].AsUint(),
                     fields[2].AsDouble(), fields[3].AsDouble(), 0};
        if (index.has_crc) {
          e.crc32 = static_cast<std::uint32_t>(fields[4].AsUint());
        }
        index.entries.push_back(e);
      }
      m.bricks = std::move(index);
    }
    h.arrays.push_back(std::move(m));
  }
  h.blob_base = kPreambleSize + header_bytes.size();
  ValidateHeader(h, file_size);
  return h;
}

}  // namespace

VndHeader ParseVndHeader(ByteSpan file_image) {
  if (file_image.size() < kPreambleSize) {
    throw DecodeError("VND file too short");
  }
  const std::uint32_t header_size =
      LoadLE<std::uint32_t>(file_image.data() + 8);
  if (kPreambleSize + header_size > file_image.size()) {
    throw DecodeError("VND header overruns file");
  }
  return ParseHeaderBytes(file_image.first(kPreambleSize),
                          file_image.subspan(kPreambleSize, header_size),
                          file_image.size());
}

VndReader::VndReader(storage::GatewayFile file) : file_(std::move(file)) {
  const Bytes preamble = file_.ReadAt(0, kPreambleSize);
  if (preamble.size() < kPreambleSize) {
    throw DecodeError("VND file too short");
  }
  const std::uint32_t header_size = LoadLE<std::uint32_t>(preamble.data() + 8);
  if (kPreambleSize + header_size > file_.size()) {
    throw DecodeError("VND header overruns file");
  }
  const Bytes header_bytes = file_.ReadAt(kPreambleSize, header_size);
  if (header_bytes.size() < header_size) {
    throw DecodeError("VND header truncated");
  }
  header_ = ParseHeaderBytes(preamble, header_bytes, file_.size());
}

std::vector<std::string> VndReader::ArrayNames() const {
  std::vector<std::string> names;
  names.reserve(header_.arrays.size());
  for (const ArrayMeta& m : header_.arrays) names.push_back(m.name);
  return names;
}

std::uint64_t VndReader::StoredSize(const std::string& name) const {
  const ArrayMeta* meta = header_.Find(name);
  VIZNDP_CHECK_MSG(meta != nullptr, "no array '" + name + "' in VND file");
  return meta->stored_size;
}

grid::DataArray VndReader::ReadArray(const std::string& name) const {
  const ArrayMeta* meta = header_.Find(name);
  VIZNDP_CHECK_MSG(meta != nullptr, "no array '" + name + "' in VND file");
  const Bytes stored =
      file_.ReadAt(header_.blob_base + meta->offset, meta->stored_size);
  if (stored.size() != meta->stored_size) {
    throw CorruptDataError("array blob truncated: " + name);
  }
  if (compress::Crc32(stored) != meta->crc32) {
    throw CorruptDataError("array blob CRC mismatch: " + name);
  }
  const compress::CodecPtr codec = compress::MakeCodec(meta->codec);
  if (!meta->bricks) {
    Bytes raw = codec->Decompress(stored, meta->raw_size, meta->raw_size);
    if (raw.size() != meta->raw_size) {
      throw CorruptDataError("array decompressed to wrong size: " + name);
    }
    return grid::DataArray(name, meta->type, std::move(raw));
  }

  // Bricked: decompress every brick and deposit its slab (ghost layers
  // overlap with identical values, so order does not matter). The
  // whole-blob CRC above already covers every brick.
  const BrickGrid bgrid(header_.dims, meta->bricks->edge);
  const size_t elem = grid::DataTypeSize(meta->type);
  Bytes dense(meta->raw_size);
  if (bgrid.BrickCount() !=
      static_cast<std::int64_t>(meta->bricks->entries.size())) {
    throw DecodeError("brick index size mismatch: " + name);
  }
  for (std::int64_t b = 0; b < bgrid.BrickCount(); ++b) {
    const BrickEntry& entry =
        meta->bricks->entries[static_cast<size_t>(b)];
    if (entry.offset + entry.stored_size > stored.size()) {
      throw DecodeError("brick overruns array blob: " + name);
    }
    const BrickGrid::Extent e = bgrid.BrickExtent(b);
    const size_t slab_bytes = static_cast<size_t>(e.PointCount()) * elem;
    const Bytes slab = codec->Decompress(
        ByteSpan(stored).subspan(entry.offset, entry.stored_size), slab_bytes,
        slab_bytes);
    if (slab.size() != slab_bytes) {
      throw CorruptDataError("brick decompressed to wrong size: " + name);
    }
    DepositSlab(header_.dims, e, elem, slab, dense);
  }
  return grid::DataArray(name, meta->type, std::move(dense));
}

Bytes VndReader::ReadArrayRange(const std::string& name, std::uint64_t offset,
                                std::uint64_t length) const {
  const ArrayMeta* meta = header_.Find(name);
  VIZNDP_CHECK_MSG(meta != nullptr, "no array '" + name + "' in VND file");
  VIZNDP_CHECK_MSG(offset + length <= meta->stored_size,
                   "range overruns array blob: " + name);
  Bytes out =
      file_.ReadAt(header_.blob_base + meta->offset + offset, length);
  if (out.size() != length) {
    throw DecodeError("array range truncated: " + name);
  }
  return out;
}

bool VndReader::HasBricks(const std::string& name) const {
  const ArrayMeta* meta = header_.Find(name);
  VIZNDP_CHECK_MSG(meta != nullptr, "no array '" + name + "' in VND file");
  return meta->bricks.has_value();
}

grid::DataArray VndReader::ReadBrick(const std::string& name,
                                     std::int64_t brick) const {
  const ArrayMeta* meta = header_.Find(name);
  VIZNDP_CHECK_MSG(meta != nullptr, "no array '" + name + "' in VND file");
  VIZNDP_CHECK_MSG(meta->bricks.has_value(),
                   "array '" + name + "' is not bricked");
  const BrickGrid bgrid(header_.dims, meta->bricks->edge);
  VIZNDP_CHECK(brick >= 0 &&
               brick < static_cast<std::int64_t>(meta->bricks->entries.size()));
  const BrickEntry& entry = meta->bricks->entries[static_cast<size_t>(brick)];
  const Bytes stored = file_.ReadAt(
      header_.blob_base + meta->offset + entry.offset, entry.stored_size);
  if (stored.size() != entry.stored_size) {
    throw CorruptDataError("brick blob truncated: " + name);
  }
  // Verify *before* decompressing: the decoder never sees corrupt bytes.
  if (meta->bricks->has_crc && compress::Crc32(stored) != entry.crc32) {
    throw CorruptDataError("brick CRC mismatch: " + name + " brick " +
                           std::to_string(brick));
  }
  const BrickGrid::Extent e = bgrid.BrickExtent(brick);
  const size_t slab_bytes =
      static_cast<size_t>(e.PointCount()) * grid::DataTypeSize(meta->type);
  const compress::CodecPtr codec = compress::MakeCodec(meta->codec);
  Bytes slab = codec->Decompress(stored, slab_bytes, slab_bytes);
  if (slab.size() != slab_bytes) {
    throw CorruptDataError("brick decompressed to wrong size: " + name);
  }
  return grid::DataArray(name, meta->type, std::move(slab));
}

grid::Dataset VndReader::ReadSelected(
    const std::vector<std::string>& names) const {
  grid::Dataset out(header_.dims, header_.geometry);
  for (const std::string& name : names) {
    out.AddArray(ReadArray(name));
  }
  return out;
}

grid::Dataset VndReader::ReadAll() const { return ReadSelected(ArrayNames()); }

}  // namespace vizndp::io
