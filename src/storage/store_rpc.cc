#include "storage/store_rpc.h"

namespace vizndp::storage {

using msgpack::Array;
using msgpack::Value;

void BindObjectStoreRpc(rpc::Server& server, ObjectStore& store) {
  server.Bind(kRpcStoreGet, [&store](const Array& p) -> Value {
    return Value(store.Get(p.at(0).As<std::string>(),
                           p.at(1).As<std::string>()));
  });
  server.Bind(kRpcStoreGetRange, [&store](const Array& p) -> Value {
    return Value(store.GetRange(p.at(0).As<std::string>(),
                                p.at(1).As<std::string>(), p.at(2).AsUint(),
                                p.at(3).AsUint()));
  });
  server.Bind(kRpcStorePut, [&store](const Array& p) -> Value {
    store.Put(p.at(0).As<std::string>(), p.at(1).As<std::string>(),
              p.at(2).As<Bytes>());
    return Value();
  });
  server.Bind(kRpcStoreStat, [&store](const Array& p) -> Value {
    const ObjectInfo info =
        store.Stat(p.at(0).As<std::string>(), p.at(1).As<std::string>());
    return Value(Array{Value(info.key), Value(std::uint64_t{info.size})});
  });
  server.Bind(kRpcStoreExists, [&store](const Array& p) -> Value {
    return Value(store.Exists(p.at(0).As<std::string>(),
                              p.at(1).As<std::string>()));
  });
  server.Bind(kRpcStoreList, [&store](const Array& p) -> Value {
    Array out;
    for (const ObjectInfo& info : store.List(p.at(0).As<std::string>(),
                                             p.at(1).As<std::string>())) {
      out.push_back(Value(Array{Value(info.key), Value(std::uint64_t{info.size})}));
    }
    return Value(std::move(out));
  });
  server.Bind(kRpcStoreDelete, [&store](const Array& p) -> Value {
    store.Delete(p.at(0).As<std::string>(), p.at(1).As<std::string>());
    return Value();
  });
  server.Bind(kRpcStoreCreateBucket, [&store](const Array& p) -> Value {
    store.CreateBucket(p.at(0).As<std::string>());
    return Value();
  });
  server.Bind(kRpcStoreExistsBucket, [&store](const Array& p) -> Value {
    return Value(store.BucketExists(p.at(0).As<std::string>()));
  });
}

}  // namespace vizndp::storage
