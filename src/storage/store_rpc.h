// RPC surface of an object store. Binding a store into an rpc::Server
// plus a RemoteObjectStore on the other end of the transport gives the
// paper's baseline data path: an s3fs-style client accessing a remote
// MinIO, with every object byte crossing the (modeled) network.
#pragma once

#include "rpc/server.h"
#include "storage/object_store.h"

namespace vizndp::storage {

// Method names registered by BindObjectStoreRpc.
inline constexpr const char* kRpcStoreGet = "store.get";
inline constexpr const char* kRpcStoreGetRange = "store.get_range";
inline constexpr const char* kRpcStorePut = "store.put";
inline constexpr const char* kRpcStoreStat = "store.stat";
inline constexpr const char* kRpcStoreExists = "store.exists";
inline constexpr const char* kRpcStoreList = "store.list";
inline constexpr const char* kRpcStoreDelete = "store.delete";
inline constexpr const char* kRpcStoreCreateBucket = "store.create_bucket";
inline constexpr const char* kRpcStoreExistsBucket = "store.exists_bucket";

// Registers handlers for all store methods. `store` must outlive `server`.
void BindObjectStoreRpc(rpc::Server& server, ObjectStore& store);

}  // namespace vizndp::storage
