// Background scrub-and-quarantine: a low-priority thread that walks the
// served catalog at a jittered cadence, re-verifies stored integrity
// (per-brick CRCs, via a format-aware verifier callback), and tracks
// bricks that fail in a QuarantineSet the serving path consults. A
// quarantined brick skips the doomed read+decompress on the hot path and
// goes straight to the recovery ladder; once the object is re-Put with
// clean bytes, the next scrub pass verifies it and re-admits the brick.
//
// The scrubber itself is format-agnostic (the storage library cannot
// depend on the VND reader, which lives above it): the verifier callback
// — ndp::MakeVndScrubVerifier in src/ndp/scrub_verify.h — owns the
// format knowledge, the quarantine bookkeeping, and the MemoryBudget
// courtesy reservations.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "storage/file_gateway.h"

namespace vizndp::storage {

// One quarantined brick: (object key, array name, brick id).
struct BrickRef {
  std::string key;
  std::string array;
  std::int64_t brick = 0;

  friend bool operator<(const BrickRef& a, const BrickRef& b) {
    return std::tie(a.key, a.array, a.brick) <
           std::tie(b.key, b.array, b.brick);
  }
  friend bool operator==(const BrickRef& a, const BrickRef& b) {
    return std::tie(a.key, a.array, a.brick) ==
           std::tie(b.key, b.array, b.brick);
  }
};

// Thread-safe set of bricks known corrupt at rest. Shared between the
// scrubber (writer) and bricked_select (reader); also keeps the
// `scrub_quarantined` gauge in the default registry current.
class QuarantineSet {
 public:
  // Returns true when the brick was newly quarantined.
  bool Add(const BrickRef& brick);
  // Returns true when the brick was present (re-admission).
  bool Remove(const BrickRef& brick);
  bool Contains(const std::string& key, const std::string& array,
                std::int64_t brick) const;
  size_t size() const;
  std::vector<BrickRef> Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::set<BrickRef> bricks_;
};

// Per-object verification outcome, aggregated into ScrubStatus.
struct ScrubObjectReport {
  std::uint64_t bricks_checked = 0;
  std::uint64_t corrupt = 0;      // bricks whose CRC failed this pass
  std::uint64_t quarantined = 0;  // newly added to the quarantine
  std::uint64_t readmitted = 0;   // verified clean and removed
  std::uint64_t budget_skips = 0;  // bricks skipped under memory pressure
};

// Verifies one object, updating the quarantine as a side effect.
using ScrubVerifier = std::function<ScrubObjectReport(const std::string& key)>;

struct ScrubberOptions {
  // Base sleep between passes; actual sleep is uniform in
  // [period * (1 - jitter), period], seeded so runs replay.
  std::chrono::milliseconds period{5000};
  double jitter = 0.5;
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
  // Only keys with this suffix are scrubbed ("" = whole catalog).
  std::string key_suffix = ".vnd";
  // Optional pause between objects, to keep a large catalog's scrub
  // from monopolizing the store.
  std::chrono::microseconds per_object_pause{0};
};

// Cumulative scrub state, surfaced through ndp.health.
struct ScrubStatus {
  std::uint64_t passes = 0;
  std::uint64_t objects_checked = 0;
  std::uint64_t bricks_checked = 0;
  std::uint64_t corrupt_found = 0;
  std::uint64_t readmitted = 0;
  std::uint64_t budget_skips = 0;
  std::uint64_t quarantined_now = 0;  // current quarantine size
  bool running = false;
};

class Scrubber {
 public:
  // `quarantine` must outlive the scrubber; the verifier typically holds
  // a reference to the same set.
  Scrubber(FileGateway gateway, ScrubVerifier verifier,
           QuarantineSet& quarantine, ScrubberOptions options = {});
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  void Start();
  void Stop();

  // Runs one synchronous pass over the catalog on the calling thread —
  // the deterministic entry point tests and the chaos harness use.
  // Safe alongside a running background thread.
  ScrubObjectReport RunPassNow();

  ScrubStatus status() const;

 private:
  void ThreadMain();
  std::chrono::milliseconds NextSleep(std::uint64_t pass);

  FileGateway gateway_;
  ScrubVerifier verifier_;
  QuarantineSet& quarantine_;
  ScrubberOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  ScrubStatus status_;
  std::thread thread_;
};

}  // namespace vizndp::storage
