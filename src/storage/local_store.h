// Directory-backed object store: one directory per bucket, one file per
// object (keys may contain '/' and map to subdirectories). Stands in for
// the MinIO server in the paper's testbed; reads and writes are charged
// to an optional SsdModel so benches account for the local data path.
#pragma once

#include <filesystem>

#include "storage/object_store.h"
#include "storage/ssd_model.h"

namespace vizndp::storage {

class LocalObjectStore final : public ObjectStore {
 public:
  // `root` is created if missing. `ssd` may be null (no cost accounting)
  // and must outlive the store otherwise.
  explicit LocalObjectStore(std::filesystem::path root, SsdModel* ssd = nullptr);

  void CreateBucket(const std::string& bucket) override;
  bool BucketExists(const std::string& bucket) const override;
  void Put(const std::string& bucket, const std::string& key,
           ByteSpan data) override;
  Bytes Get(const std::string& bucket, const std::string& key) override;
  Bytes GetRange(const std::string& bucket, const std::string& key,
                 std::uint64_t offset, std::uint64_t length) override;
  ObjectInfo Stat(const std::string& bucket, const std::string& key) override;
  bool Exists(const std::string& bucket, const std::string& key) override;
  void Delete(const std::string& bucket, const std::string& key) override;
  std::vector<ObjectInfo> List(const std::string& bucket,
                               const std::string& prefix) override;

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path BucketPath(const std::string& bucket) const;
  std::filesystem::path ObjectPath(const std::string& bucket,
                                   const std::string& key) const;

  std::filesystem::path root_;
  SsdModel* ssd_;
};

}  // namespace vizndp::storage
