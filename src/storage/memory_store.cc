#include "storage/memory_store.h"

#include "common/error.h"

namespace vizndp::storage {

void MemoryObjectStore::CreateBucket(const std::string& bucket) {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_.try_emplace(bucket);
}

bool MemoryObjectStore::BucketExists(const std::string& bucket) const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_.count(bucket) > 0;
}

const Bytes& MemoryObjectStore::Lookup(const std::string& bucket,
                                       const std::string& key) const {
  const auto bit = buckets_.find(bucket);
  if (bit == buckets_.end()) {
    throw IoError("no such bucket: " + bucket);
  }
  const auto oit = bit->second.find(key);
  if (oit == bit->second.end()) {
    throw IoError("no such object: " + bucket + "/" + key);
  }
  return oit->second;
}

void MemoryObjectStore::Put(const std::string& bucket, const std::string& key,
                            ByteSpan data) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto bit = buckets_.find(bucket);
  if (bit == buckets_.end()) {
    throw IoError("no such bucket: " + bucket);
  }
  bit->second[key] = Bytes(data.begin(), data.end());
  if (ssd_ != nullptr) ssd_->ChargeWrite(data.size());
}

Bytes MemoryObjectStore::Get(const std::string& bucket,
                             const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const Bytes& data = Lookup(bucket, key);
  if (ssd_ != nullptr) ssd_->ChargeRead(data.size());
  return data;
}

Bytes MemoryObjectStore::GetRange(const std::string& bucket,
                                  const std::string& key, std::uint64_t offset,
                                  std::uint64_t length) {
  std::lock_guard<std::mutex> lock(mu_);
  const Bytes& data = Lookup(bucket, key);
  if (offset >= data.size()) return {};
  const std::uint64_t take = std::min<std::uint64_t>(length, data.size() - offset);
  if (ssd_ != nullptr) ssd_->ChargeRead(take);
  return Bytes(data.begin() + static_cast<std::ptrdiff_t>(offset),
               data.begin() + static_cast<std::ptrdiff_t>(offset + take));
}

ObjectInfo MemoryObjectStore::Stat(const std::string& bucket,
                                   const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  return {key, Lookup(bucket, key).size()};
}

bool MemoryObjectStore::Exists(const std::string& bucket,
                               const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto bit = buckets_.find(bucket);
  return bit != buckets_.end() && bit->second.count(key) > 0;
}

void MemoryObjectStore::Delete(const std::string& bucket,
                               const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto bit = buckets_.find(bucket);
  if (bit == buckets_.end() || bit->second.erase(key) == 0) {
    throw IoError("no such object: " + bucket + "/" + key);
  }
}

std::vector<ObjectInfo> MemoryObjectStore::List(const std::string& bucket,
                                                const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto bit = buckets_.find(bucket);
  if (bit == buckets_.end()) {
    throw IoError("no such bucket: " + bucket);
  }
  std::vector<ObjectInfo> out;
  for (const auto& [key, data] : bit->second) {
    if (key.compare(0, prefix.size(), prefix) == 0) {
      out.push_back({key, data.size()});
    }
  }
  return out;
}

}  // namespace vizndp::storage
