// In-memory object store for unit tests and fast benches where the
// filesystem would only add noise. Optionally charged to an SsdModel so
// timing-model tests can use it too.
#pragma once

#include <map>
#include <mutex>

#include "storage/object_store.h"
#include "storage/ssd_model.h"

namespace vizndp::storage {

class MemoryObjectStore final : public ObjectStore {
 public:
  explicit MemoryObjectStore(SsdModel* ssd = nullptr) : ssd_(ssd) {}

  void CreateBucket(const std::string& bucket) override;
  bool BucketExists(const std::string& bucket) const override;
  void Put(const std::string& bucket, const std::string& key,
           ByteSpan data) override;
  Bytes Get(const std::string& bucket, const std::string& key) override;
  Bytes GetRange(const std::string& bucket, const std::string& key,
                 std::uint64_t offset, std::uint64_t length) override;
  ObjectInfo Stat(const std::string& bucket, const std::string& key) override;
  bool Exists(const std::string& bucket, const std::string& key) override;
  void Delete(const std::string& bucket, const std::string& key) override;
  std::vector<ObjectInfo> List(const std::string& bucket,
                               const std::string& prefix) override;

 private:
  using Bucket = std::map<std::string, Bytes>;

  const Bytes& Lookup(const std::string& bucket, const std::string& key) const;

  mutable std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
  SsdModel* ssd_;
};

}  // namespace vizndp::storage
