// S3-style object store interface — the role MinIO plays in the paper's
// testbed. Implementations: LocalObjectStore (directory-backed, with an
// SSD cost model), MemoryObjectStore (tests), RemoteObjectStore (RPC
// proxy, standing in for s3fs-talking-to-a-remote-MinIO).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace vizndp::storage {

struct ObjectInfo {
  std::string key;
  std::uint64_t size = 0;
};

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  virtual void CreateBucket(const std::string& bucket) = 0;
  virtual bool BucketExists(const std::string& bucket) const = 0;

  // Overwrites any existing object.
  virtual void Put(const std::string& bucket, const std::string& key,
                   ByteSpan data) = 0;

  // Throws IoError when the object does not exist.
  virtual Bytes Get(const std::string& bucket, const std::string& key) = 0;

  // Ranged read, S3 GetObject-with-Range style. Reading past the end
  // returns the available suffix (possibly empty).
  virtual Bytes GetRange(const std::string& bucket, const std::string& key,
                         std::uint64_t offset, std::uint64_t length) = 0;

  virtual ObjectInfo Stat(const std::string& bucket,
                          const std::string& key) = 0;

  virtual bool Exists(const std::string& bucket, const std::string& key) = 0;

  virtual void Delete(const std::string& bucket, const std::string& key) = 0;

  // Keys under `prefix`, sorted.
  virtual std::vector<ObjectInfo> List(const std::string& bucket,
                                       const std::string& prefix) = 0;
};

using ObjectStorePtr = std::shared_ptr<ObjectStore>;

}  // namespace vizndp::storage
