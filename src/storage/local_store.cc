#include "storage/local_store.h"

#include <algorithm>
#include <fstream>

#include "common/error.h"

namespace vizndp::storage {

namespace fs = std::filesystem;

namespace {

// Bucket and key names must stay inside the root: no absolute paths, no
// parent traversal, no empty segments.
void ValidateName(const std::string& name, bool allow_slash) {
  VIZNDP_CHECK_MSG(!name.empty(), "empty object-store name");
  VIZNDP_CHECK_MSG(name.front() != '/', "name must be relative: " + name);
  size_t start = 0;
  while (start <= name.size()) {
    const size_t end = name.find('/', start);
    const std::string seg =
        name.substr(start, end == std::string::npos ? std::string::npos
                                                    : end - start);
    VIZNDP_CHECK_MSG(!seg.empty(), "empty path segment in: " + name);
    VIZNDP_CHECK_MSG(seg != "." && seg != "..",
                     "path traversal in object name: " + name);
    if (end == std::string::npos) break;
    VIZNDP_CHECK_MSG(allow_slash, "'/' not allowed in bucket name: " + name);
    start = end + 1;
  }
}

}  // namespace

LocalObjectStore::LocalObjectStore(fs::path root, SsdModel* ssd)
    : root_(std::move(root)), ssd_(ssd) {
  fs::create_directories(root_);
}

fs::path LocalObjectStore::BucketPath(const std::string& bucket) const {
  ValidateName(bucket, /*allow_slash=*/false);
  return root_ / bucket;
}

fs::path LocalObjectStore::ObjectPath(const std::string& bucket,
                                      const std::string& key) const {
  ValidateName(key, /*allow_slash=*/true);
  return BucketPath(bucket) / key;
}

void LocalObjectStore::CreateBucket(const std::string& bucket) {
  fs::create_directories(BucketPath(bucket));
}

bool LocalObjectStore::BucketExists(const std::string& bucket) const {
  return fs::is_directory(BucketPath(bucket));
}

void LocalObjectStore::Put(const std::string& bucket, const std::string& key,
                           ByteSpan data) {
  const fs::path path = ObjectPath(bucket, key);
  if (!BucketExists(bucket)) {
    throw IoError("no such bucket: " + bucket);
  }
  fs::create_directories(path.parent_path());
  // Write-then-rename so concurrent readers never observe a torn object.
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw IoError("cannot open for write: " + tmp.string());
    }
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out.good()) {
      throw TransientIoError("short write: " + tmp.string());
    }
  }
  fs::rename(tmp, path);
  if (ssd_ != nullptr) ssd_->ChargeWrite(data.size());
}

Bytes LocalObjectStore::Get(const std::string& bucket, const std::string& key) {
  const fs::path path = ObjectPath(bucket, key);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) {
    throw IoError("no such object: " + bucket + "/" + key);
  }
  const auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  Bytes data(size);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(size));
  // A short read of an existing object is a device-level flake, not
  // caller misuse: typed + transient so the gateway retry ladder (and
  // above it the brick recovery ladder) can engage instead of aborting.
  if (!in.good() && size != 0) {
    throw TransientIoError("short read: " + path.string());
  }
  if (ssd_ != nullptr) ssd_->ChargeRead(size);
  return data;
}

Bytes LocalObjectStore::GetRange(const std::string& bucket,
                                 const std::string& key, std::uint64_t offset,
                                 std::uint64_t length) {
  const fs::path path = ObjectPath(bucket, key);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) {
    throw IoError("no such object: " + bucket + "/" + key);
  }
  const auto size = static_cast<std::uint64_t>(in.tellg());
  if (offset >= size) return {};
  const std::uint64_t take = std::min(length, size - offset);
  in.seekg(static_cast<std::streamoff>(offset));
  Bytes data(take);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(take));
  if (!in.good() && take != 0) {
    throw TransientIoError("short read: " + path.string());
  }
  if (ssd_ != nullptr) ssd_->ChargeRead(take);
  return data;
}

ObjectInfo LocalObjectStore::Stat(const std::string& bucket,
                                  const std::string& key) {
  const fs::path path = ObjectPath(bucket, key);
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) {
    throw IoError("no such object: " + bucket + "/" + key);
  }
  return {key, size};
}

bool LocalObjectStore::Exists(const std::string& bucket,
                              const std::string& key) {
  return fs::is_regular_file(ObjectPath(bucket, key));
}

void LocalObjectStore::Delete(const std::string& bucket,
                              const std::string& key) {
  if (!fs::remove(ObjectPath(bucket, key))) {
    throw IoError("no such object: " + bucket + "/" + key);
  }
}

std::vector<ObjectInfo> LocalObjectStore::List(const std::string& bucket,
                                               const std::string& prefix) {
  const fs::path dir = BucketPath(bucket);
  if (!fs::is_directory(dir)) {
    throw IoError("no such bucket: " + bucket);
  }
  std::vector<ObjectInfo> out;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string key = fs::relative(entry.path(), dir).generic_string();
    if (key.compare(0, prefix.size(), prefix) != 0) continue;
    out.push_back({key, entry.file_size()});
  }
  std::sort(out.begin(), out.end(),
            [](const ObjectInfo& a, const ObjectInfo& b) { return a.key < b.key; });
  return out;
}

}  // namespace vizndp::storage
