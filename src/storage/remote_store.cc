#include "storage/remote_store.h"

#include <string_view>

#include "common/error.h"

namespace vizndp::storage {

using msgpack::Array;
using msgpack::Value;

namespace {

ObjectInfo InfoFromValue(const Value& v) {
  const Array& pair = v.As<Array>();
  return {pair.at(0).As<std::string>(), pair.at(1).AsUint()};
}

}  // namespace

void RemoteObjectStore::CreateBucket(const std::string& bucket) {
  client_->Call("store.create_bucket", Array{Value(bucket)});
}

bool RemoteObjectStore::BucketExists(const std::string& bucket) const {
  try {
    return client_->Call("store.exists_bucket", Array{Value(bucket)})
        .As<bool>();
  } catch (const BusyError&) {
    throw;
  } catch (const RpcError& e) {
    // Backward compatibility: a server predating store.exists_bucket
    // answers unknown-method, which maps to the historical permissive
    // behavior (buckets are created idempotently, so callers only probe
    // before a CreateBucket anyway). Other RPC failures propagate.
    if (std::string_view(e.what()).find("unknown method") !=
        std::string_view::npos) {
      return true;
    }
    throw;
  }
}

void RemoteObjectStore::Put(const std::string& bucket, const std::string& key,
                            ByteSpan data) {
  client_->Call("store.put", Array{Value(bucket), Value(key),
                                   Value(Bytes(data.begin(), data.end()))});
}

Bytes RemoteObjectStore::Get(const std::string& bucket,
                             const std::string& key) {
  Value v = client_->Call("store.get", Array{Value(bucket), Value(key)});
  return std::move(v.AsMutable<Bytes>());
}

Bytes RemoteObjectStore::GetRange(const std::string& bucket,
                                  const std::string& key, std::uint64_t offset,
                                  std::uint64_t length) {
  Value v = client_->Call("store.get_range",
                          Array{Value(bucket), Value(key), Value(offset),
                                Value(length)});
  return std::move(v.AsMutable<Bytes>());
}

ObjectInfo RemoteObjectStore::Stat(const std::string& bucket,
                                   const std::string& key) {
  return InfoFromValue(
      client_->Call("store.stat", Array{Value(bucket), Value(key)}));
}

bool RemoteObjectStore::Exists(const std::string& bucket,
                               const std::string& key) {
  return client_->Call("store.exists", Array{Value(bucket), Value(key)})
      .As<bool>();
}

void RemoteObjectStore::Delete(const std::string& bucket,
                               const std::string& key) {
  client_->Call("store.delete", Array{Value(bucket), Value(key)});
}

std::vector<ObjectInfo> RemoteObjectStore::List(const std::string& bucket,
                                                const std::string& prefix) {
  const Value v =
      client_->Call("store.list", Array{Value(bucket), Value(prefix)});
  std::vector<ObjectInfo> out;
  for (const Value& item : v.As<Array>()) {
    out.push_back(InfoFromValue(item));
  }
  return out;
}

}  // namespace vizndp::storage
