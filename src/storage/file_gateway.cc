#include "storage/file_gateway.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vizndp::storage {

namespace {

// Gateway traffic metrics live in the process-default registry: the
// gateway is substrate shared by whatever servers run in this process,
// so there is no obvious per-instance owner to hang a registry off.
obs::Counter& ReadsCounter() {
  static obs::Counter& c =
      obs::DefaultRegistry().GetCounter("gateway_reads_total");
  return c;
}

obs::Counter& BytesCounter() {
  static obs::Counter& c =
      obs::DefaultRegistry().GetCounter("gateway_bytes_read_total");
  return c;
}

}  // namespace

GatewayFile::GatewayFile(ObjectStore& store, std::string bucket,
                         std::string key)
    : store_(store), bucket_(std::move(bucket)), key_(std::move(key)) {
  size_ = store_.Stat(bucket_, key_).size;
}

Bytes GatewayFile::ReadAt(std::uint64_t offset, std::uint64_t length) const {
  obs::Span span("gateway.read");
  Bytes out = store_.GetRange(bucket_, key_, offset, length);
  ReadsCounter().Increment();
  BytesCounter().Increment(out.size());
  return out;
}

Bytes GatewayFile::ReadAll() const {
  obs::Span span("gateway.read");
  Bytes out = store_.Get(bucket_, key_);
  ReadsCounter().Increment();
  BytesCounter().Increment(out.size());
  return out;
}

}  // namespace vizndp::storage
