#include "storage/file_gateway.h"

namespace vizndp::storage {

GatewayFile::GatewayFile(ObjectStore& store, std::string bucket,
                         std::string key)
    : store_(store), bucket_(std::move(bucket)), key_(std::move(key)) {
  size_ = store_.Stat(bucket_, key_).size;
}

Bytes GatewayFile::ReadAt(std::uint64_t offset, std::uint64_t length) const {
  return store_.GetRange(bucket_, key_, offset, length);
}

Bytes GatewayFile::ReadAll() const { return store_.Get(bucket_, key_); }

}  // namespace vizndp::storage
