#include "storage/file_gateway.h"

#include <algorithm>
#include <functional>

#include "common/error.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vizndp::storage {

namespace {

// Gateway traffic metrics live in the process-default registry: the
// gateway is substrate shared by whatever servers run in this process,
// so there is no obvious per-instance owner to hang a registry off.
obs::Counter& ReadsCounter() {
  static obs::Counter& c =
      obs::DefaultRegistry().GetCounter("gateway_reads_total");
  return c;
}

obs::Counter& BytesCounter() {
  static obs::Counter& c =
      obs::DefaultRegistry().GetCounter("gateway_bytes_read_total");
  return c;
}

obs::Counter& RetryCounter() {
  static obs::Counter& c =
      obs::DefaultRegistry().GetCounter("store_retry_total");
  return c;
}

obs::Counter& IoErrorCounter() {
  static obs::Counter& c =
      obs::DefaultRegistry().GetCounter("store_io_error_total");
  return c;
}

// Runs one store op under the retry ladder. TransientIoError retries
// with seeded backoff until the policy's budget runs out, then counts
// once and rethrows (still transient-typed: the failure mode is, even
// if this gateway gave up on it). A permanent IoError counts once and
// propagates immediately — retrying a missing object would only reread
// the same absence.
template <typename F>
auto WithStoreRetry(const net::RetryPolicy& retry, std::uint64_t salt,
                    const char* op, const std::string& key, F&& fn)
    -> decltype(fn()) {
  const int attempts = std::max(retry.max_attempts, 1);
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const TransientIoError& e) {
      if (attempt >= attempts) {
        IoErrorCounter().Increment();
        obs::GlobalEventLog().Append(
            "store.io_error", std::string("op=") + op + " key=" + key +
                                  " attempts=" + std::to_string(attempt) +
                                  " transient=1");
        throw;
      }
      RetryCounter().Increment();
      obs::GlobalEventLog().Append(
          "store.retry", std::string("op=") + op + " key=" + key +
                             " attempt=" + std::to_string(attempt));
      net::BackoffSleep(retry, attempt, salt);
    } catch (const IoError&) {
      IoErrorCounter().Increment();
      obs::GlobalEventLog().Append("store.io_error", std::string("op=") + op +
                                                         " key=" + key);
      throw;
    }
  }
}

}  // namespace

net::RetryPolicy DefaultStoreRetryPolicy() {
  net::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay = std::chrono::microseconds(200);
  policy.max_delay = std::chrono::microseconds(20'000);
  return policy;
}

GatewayFile::GatewayFile(ObjectStore& store, std::string bucket,
                         std::string key, net::RetryPolicy retry)
    : store_(store),
      bucket_(std::move(bucket)),
      key_(std::move(key)),
      retry_(retry),
      salt_(net::MixBits(std::hash<std::string>{}(key_))) {
  size_ = WithStoreRetry(retry_, salt_, "stat", key_, [&] {
            return store_.Stat(bucket_, key_);
          }).size;
}

Bytes GatewayFile::ReadAt(std::uint64_t offset, std::uint64_t length) const {
  obs::Span span("gateway.read");
  // What a non-faulty store must deliver given the open-time size; a
  // shorter result is a device flake (or a lying Stat) and retries.
  const std::uint64_t expected =
      offset >= size_ ? 0 : std::min(length, size_ - offset);
  Bytes out = WithStoreRetry(retry_, salt_, "range", key_, [&] {
    Bytes got = store_.GetRange(bucket_, key_, offset, length);
    if (got.size() < expected) {
      throw TransientIoError("short read: " + bucket_ + "/" + key_ + " got " +
                             std::to_string(got.size()) + " of " +
                             std::to_string(expected) + " bytes");
    }
    return got;
  });
  ReadsCounter().Increment();
  BytesCounter().Increment(out.size());
  return out;
}

Bytes GatewayFile::ReadAll() const {
  obs::Span span("gateway.read");
  Bytes out = WithStoreRetry(retry_, salt_, "get", key_, [&] {
    Bytes got = store_.Get(bucket_, key_);
    if (got.size() < size_) {
      throw TransientIoError("short read: " + bucket_ + "/" + key_ + " got " +
                             std::to_string(got.size()) + " of " +
                             std::to_string(size_) + " bytes");
    }
    return got;
  });
  ReadsCounter().Increment();
  BytesCounter().Increment(out.size());
  return out;
}

}  // namespace vizndp::storage
