#include "storage/fault_store.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "net/retry.h"

namespace vizndp::storage {

namespace {

const char* OpName(StoreOp op) {
  switch (op) {
    case StoreOp::kGet: return "get";
    case StoreOp::kGetRange: return "range";
    case StoreOp::kRead: return "read";
    case StoreOp::kPut: return "put";
    case StoreOp::kStat: return "stat";
    case StoreOp::kAny: return "any";
  }
  return "?";
}

}  // namespace

const char* StoreFaultKindName(StoreFaultKind kind) {
  switch (kind) {
    case StoreFaultKind::kPass: return "pass";
    case StoreFaultKind::kEio: return "eio";
    case StoreFaultKind::kFatal: return "fatal";
    case StoreFaultKind::kShort: return "short";
    case StoreFaultKind::kDelay: return "delay";
    case StoreFaultKind::kFlip: return "flip";
    case StoreFaultKind::kStatLie: return "lie";
  }
  return "?";
}

void FaultInjectingStore::Script(StoreOp op,
                                 std::vector<StoreFaultAction> script,
                                 bool loop_last) {
  std::lock_guard<std::mutex> lock(mu_);
  Channel& channel = channels_[static_cast<size_t>(op)];
  channel.script = std::move(script);
  channel.next = 0;
  channel.loop_last = loop_last;
}

void FaultInjectingStore::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Channel& channel : channels_) channel = Channel{};
  random_ = StoreFaultProbabilities{};
}

void FaultInjectingStore::SetRandomFaults(
    const StoreFaultProbabilities& probabilities) {
  std::lock_guard<std::mutex> lock(mu_);
  random_ = probabilities;
}

StoreFaultStats FaultInjectingStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

StoreFaultAction FaultInjectingStore::ApplyFault(StoreOp op,
                                                 const std::string& bucket,
                                                 const std::string& key) {
  StoreFaultAction action;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t seq = op_count_++;
    ++stats_.ops;
    // First matching non-exhausted channel supplies the action; a read
    // op consults its exact channel, then `read`, then `any`.
    StoreOp order[3] = {op, StoreOp::kAny, StoreOp::kAny};
    size_t norder = 2;
    if (op == StoreOp::kGet || op == StoreOp::kGetRange) {
      order[1] = StoreOp::kRead;
      norder = 3;
    }
    for (size_t i = 0; i < norder; ++i) {
      Channel& channel = channels_[static_cast<size_t>(order[i])];
      if (channel.next >= channel.script.size()) continue;
      action = channel.script[channel.next];
      if (channel.next + 1 < channel.script.size() || !channel.loop_last) {
        ++channel.next;
      }
      break;
    }
    if (action.kind == StoreFaultKind::kPass &&
        (op == StoreOp::kGet || op == StoreOp::kGetRange)) {
      // Scripts exhausted: seeded-random read-fault mix (default
      // all-zero = pass-through).
      const double u =
          static_cast<double>(net::MixBits(random_.seed ^ seq) >> 11) *
          0x1.0p-53;
      if (u < random_.eio) {
        action = StoreFaultAction::Eio();
      } else if (u < random_.eio + random_.flip) {
        action = StoreFaultAction::Flip(net::MixBits(random_.seed + seq));
      }
    }
    switch (action.kind) {
      case StoreFaultKind::kEio: ++stats_.eios; break;
      case StoreFaultKind::kFatal: ++stats_.fatals; break;
      case StoreFaultKind::kShort: ++stats_.shorts; break;
      case StoreFaultKind::kDelay: ++stats_.delays; break;
      case StoreFaultKind::kFlip: ++stats_.flips; break;
      case StoreFaultKind::kStatLie: ++stats_.stat_lies; break;
      case StoreFaultKind::kPass: break;
    }
  }
  // Sleeps and throws happen outside the lock so a slow-disk window on
  // one thread never blocks another thread's fault bookkeeping.
  switch (action.kind) {
    case StoreFaultKind::kDelay:
      std::this_thread::sleep_for(action.delay);
      break;
    case StoreFaultKind::kEio:
      throw TransientIoError("injected transient EIO on " +
                             std::string(OpName(op)) + " " + bucket + "/" +
                             key);
    case StoreFaultKind::kFatal:
      throw IoError("injected I/O failure on " + std::string(OpName(op)) +
                    " " + bucket + "/" + key);
    default:
      break;
  }
  return action;
}

Bytes FaultInjectingStore::FlipBit(ByteSpan data, std::uint64_t bit) {
  Bytes out(data.begin(), data.end());
  if (!out.empty()) {
    const std::uint64_t index = bit % (out.size() * 8);
    out[index / 8] ^= static_cast<Byte>(1u << (index % 8));
  }
  return out;
}

void FaultInjectingStore::CreateBucket(const std::string& bucket) {
  inner_.CreateBucket(bucket);
}

bool FaultInjectingStore::BucketExists(const std::string& bucket) const {
  return inner_.BucketExists(bucket);
}

void FaultInjectingStore::Put(const std::string& bucket,
                              const std::string& key, ByteSpan data) {
  const StoreFaultAction action = ApplyFault(StoreOp::kPut, bucket, key);
  if (action.kind == StoreFaultKind::kFlip) {
    // Rot at rest: the store keeps the flipped byte, so every later read
    // (and every recovery rung reading the same object) sees it until a
    // clean re-Put.
    const Bytes rotted = FlipBit(data, action.flip_bit);
    inner_.Put(bucket, key, rotted);
    return;
  }
  inner_.Put(bucket, key, data);
}

Bytes FaultInjectingStore::Get(const std::string& bucket,
                               const std::string& key) {
  const StoreFaultAction action = ApplyFault(StoreOp::kGet, bucket, key);
  Bytes out = inner_.Get(bucket, key);
  if (action.kind == StoreFaultKind::kShort) {
    out.resize(std::min<std::uint64_t>(out.size(), action.short_to));
  } else if (action.kind == StoreFaultKind::kFlip) {
    out = FlipBit(out, action.flip_bit);
  }
  return out;
}

Bytes FaultInjectingStore::GetRange(const std::string& bucket,
                                    const std::string& key,
                                    std::uint64_t offset,
                                    std::uint64_t length) {
  const StoreFaultAction action = ApplyFault(StoreOp::kGetRange, bucket, key);
  Bytes out = inner_.GetRange(bucket, key, offset, length);
  if (action.kind == StoreFaultKind::kShort) {
    out.resize(std::min<std::uint64_t>(out.size(), action.short_to));
  } else if (action.kind == StoreFaultKind::kFlip) {
    out = FlipBit(out, action.flip_bit);
  }
  return out;
}

ObjectInfo FaultInjectingStore::Stat(const std::string& bucket,
                                     const std::string& key) {
  const StoreFaultAction action = ApplyFault(StoreOp::kStat, bucket, key);
  ObjectInfo info = inner_.Stat(bucket, key);
  if (action.kind == StoreFaultKind::kStatLie) {
    const std::int64_t lied =
        static_cast<std::int64_t>(info.size) + action.stat_delta;
    info.size = lied < 0 ? 0 : static_cast<std::uint64_t>(lied);
  }
  return info;
}

bool FaultInjectingStore::Exists(const std::string& bucket,
                                 const std::string& key) {
  return inner_.Exists(bucket, key);
}

void FaultInjectingStore::Delete(const std::string& bucket,
                                 const std::string& key) {
  inner_.Delete(bucket, key);
}

std::vector<ObjectInfo> FaultInjectingStore::List(const std::string& bucket,
                                                  const std::string& prefix) {
  return inner_.List(bucket, prefix);
}

namespace {

StoreFaultAction ParseStoreAction(const std::string& name, long param) {
  if (name == "eio") return StoreFaultAction::Eio();
  if (name == "fatal") return StoreFaultAction::Fatal();
  if (name == "short") {
    return StoreFaultAction::Short(static_cast<std::uint64_t>(param));
  }
  if (name == "delay") {
    return StoreFaultAction::Delay(std::chrono::microseconds(param));
  }
  if (name == "flip") {
    return StoreFaultAction::Flip(static_cast<std::uint64_t>(param));
  }
  if (name == "lie") return StoreFaultAction::StatLie(param);
  throw Error("unknown store fault action '" + name + "'");
}

StoreOp ParseStoreOp(const std::string& name) {
  if (name == "get") return StoreOp::kGet;
  if (name == "range") return StoreOp::kGetRange;
  if (name == "read") return StoreOp::kRead;
  if (name == "put") return StoreOp::kPut;
  if (name == "stat") return StoreOp::kStat;
  if (name == "any") return StoreOp::kAny;
  throw Error("unknown store fault op '" + name +
              "' (get|range|read|put|stat|any)");
}

}  // namespace

std::vector<StoreFaultSpecEntry> ParseStoreFaultSpec(const std::string& spec) {
  // One entry per distinct op selector: repeated selectors append to the
  // same script, mirroring how ParseFaultSpec merges per direction.
  std::vector<StoreFaultSpecEntry> out;
  auto entry_for = [&out](StoreOp op) -> StoreFaultSpecEntry& {
    for (StoreFaultSpecEntry& e : out) {
      if (e.op == op) return e;
    }
    out.push_back(StoreFaultSpecEntry{op, {}, false});
    return out.back();
  };
  std::stringstream ss(spec);
  std::string entry;
  while (std::getline(ss, entry, ',')) {
    if (entry.empty()) continue;
    bool loop = false;
    if (entry.back() == '+') {
      loop = true;
      entry.pop_back();
    }
    const size_t dot = entry.find('.');
    if (dot == std::string::npos) {
      throw Error("store fault entry '" + entry +
                  "' needs an op prefix (get|range|read|put|stat|any)");
    }
    const StoreOp op = ParseStoreOp(entry.substr(0, dot));
    std::string rest = entry.substr(dot + 1);
    long count = 1;
    if (const size_t star = rest.find('*'); star != std::string::npos) {
      count = std::atol(rest.c_str() + star + 1);
      rest = rest.substr(0, star);
      if (count < 1) {
        throw Error("store fault count must be >= 1 in '" + entry + "'");
      }
    }
    long param = 0;
    if (const size_t eq = rest.find('='); eq != std::string::npos) {
      param = std::atol(rest.c_str() + eq + 1);
      rest = rest.substr(0, eq);
    }
    const StoreFaultAction action = ParseStoreAction(rest, param);
    StoreFaultSpecEntry& slot = entry_for(op);
    for (long i = 0; i < count; ++i) slot.script.push_back(action);
    if (loop) slot.loop_last = true;
  }
  return out;
}

void ApplyStoreFaultSpec(FaultInjectingStore& store, const std::string& spec) {
  for (StoreFaultSpecEntry& entry : ParseStoreFaultSpec(spec)) {
    store.Script(entry.op, std::move(entry.script), entry.loop_last);
  }
}

}  // namespace vizndp::storage
