// s3fs stand-in: exposes objects through a file-style open/read/size
// interface so the VTK-like reader can consume the object store without
// knowing whether it is local (NDP setup) or remote (baseline setup).
#pragma once

#include <memory>
#include <string>

#include "storage/object_store.h"

namespace vizndp::storage {

// A read-only "open file" over one object.
class GatewayFile {
 public:
  GatewayFile(ObjectStore& store, std::string bucket, std::string key);

  std::uint64_t size() const { return size_; }

  // Reads up to `length` bytes at `offset` (short read only at EOF).
  Bytes ReadAt(std::uint64_t offset, std::uint64_t length) const;

  // Reads the whole object.
  Bytes ReadAll() const;

 private:
  ObjectStore& store_;
  std::string bucket_;
  std::string key_;
  std::uint64_t size_ = 0;
};

class FileGateway {
 public:
  // `store` must outlive the gateway.
  FileGateway(ObjectStore& store, std::string bucket)
      : store_(store), bucket_(std::move(bucket)) {}

  GatewayFile Open(const std::string& key) const {
    return GatewayFile(store_, bucket_, key);
  }

  bool Exists(const std::string& key) const {
    return store_.Exists(bucket_, key);
  }

  std::vector<ObjectInfo> List(const std::string& prefix = "") const {
    return store_.List(bucket_, prefix);
  }

  ObjectStore& store() const { return store_; }
  const std::string& bucket() const { return bucket_; }

 private:
  ObjectStore& store_;
  std::string bucket_;
};

}  // namespace vizndp::storage
