// s3fs stand-in: exposes objects through a file-style open/read/size
// interface so the VTK-like reader can consume the object store without
// knowing whether it is local (NDP setup) or remote (baseline setup).
//
// The gateway is also where the storage retry ladder lives: every read
// (and the open-time Stat) retries TransientIoError with seeded backoff
// per the gateway's net::RetryPolicy, so a flaky device heals invisibly
// (`store_retry_total` / `store.retry` per retry). A permanent IoError —
// or an exhausted retry budget — is counted once
// (`store_io_error_total` / `store.io_error`) and propagates for the
// brick recovery ladder above to handle.
#pragma once

#include <memory>
#include <string>

#include "net/retry.h"
#include "storage/object_store.h"

namespace vizndp::storage {

// Default storage retry policy: 3 total attempts with a short base
// delay. Device flakes are microsecond-scale events, not the tens of
// milliseconds an RPC retry waits out.
net::RetryPolicy DefaultStoreRetryPolicy();

// A read-only "open file" over one object.
class GatewayFile {
 public:
  GatewayFile(ObjectStore& store, std::string bucket, std::string key,
              net::RetryPolicy retry = DefaultStoreRetryPolicy());

  std::uint64_t size() const { return size_; }

  // Reads up to `length` bytes at `offset` (short read only at EOF). A
  // result shorter than the object's size promises is itself treated as
  // a transient fault and retried.
  Bytes ReadAt(std::uint64_t offset, std::uint64_t length) const;

  // Reads the whole object.
  Bytes ReadAll() const;

 private:
  ObjectStore& store_;
  std::string bucket_;
  std::string key_;
  net::RetryPolicy retry_;
  std::uint64_t salt_ = 0;  // decorrelates backoff across keys
  std::uint64_t size_ = 0;
};

class FileGateway {
 public:
  // `store` must outlive the gateway.
  FileGateway(ObjectStore& store, std::string bucket,
              net::RetryPolicy retry = DefaultStoreRetryPolicy())
      : store_(store), bucket_(std::move(bucket)), retry_(retry) {}

  GatewayFile Open(const std::string& key) const {
    return GatewayFile(store_, bucket_, key, retry_);
  }

  bool Exists(const std::string& key) const {
    return store_.Exists(bucket_, key);
  }

  std::vector<ObjectInfo> List(const std::string& prefix = "") const {
    return store_.List(bucket_, prefix);
  }

  void SetRetryPolicy(const net::RetryPolicy& retry) { retry_ = retry; }
  const net::RetryPolicy& retry_policy() const { return retry_; }

  ObjectStore& store() const { return store_; }
  const std::string& bucket() const { return bucket_; }

 private:
  ObjectStore& store_;
  std::string bucket_;
  net::RetryPolicy retry_;
};

}  // namespace vizndp::storage
