// FaultInjectingStore: an ObjectStore decorator that perturbs storage
// operations in controlled, reproducible ways — the storage-tier
// counterpart of net::FaultInjectingTransport. Every failure mode a
// real disk or object store can exhibit becomes testable in-process:
//
//   eio      the op fails with TransientIoError (flaky device, EIO)
//   fatal    the op fails with a permanent IoError (dead device)
//   short    a read returns only a prefix of the requested bytes
//   delay    the op is held for a fixed duration (slow disk window)
//   flip     one bit of the payload is flipped at a seeded position
//            (bit-rot: on Get/GetRange the caller sees rotted bytes;
//            on Put the store *keeps* rotted bytes — rot at rest)
//   lie      Stat over/under-reports the object size by a delta
//
// Faults are scripted per op selector (action k applies to the k-th
// matching op) or drawn from a seeded RNG, so failing runs replay
// exactly. A finite script models transient-then-heal; a trailing
// looped action models a persistently broken device.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "storage/object_store.h"

namespace vizndp::storage {

enum class StoreFaultKind : std::uint8_t {
  kPass = 0,
  kEio,      // throw TransientIoError
  kFatal,    // throw IoError (permanent)
  kShort,    // truncate the read result
  kDelay,    // sleep before the op
  kFlip,     // flip one payload bit
  kStatLie,  // Stat size += delta
};

const char* StoreFaultKindName(StoreFaultKind kind);

// Which operations a script entry applies to. `kRead` matches both Get
// and GetRange; `kAny` matches every store call.
enum class StoreOp : std::uint8_t {
  kGet = 0,
  kGetRange,
  kRead,
  kPut,
  kStat,
  kAny,
};

struct StoreFaultAction {
  StoreFaultKind kind = StoreFaultKind::kPass;
  std::chrono::microseconds delay{0};  // kDelay
  std::uint64_t short_to = 0;          // kShort: bytes kept
  std::uint64_t flip_bit = 0;          // kFlip: bit index % payload bits
  std::int64_t stat_delta = 0;         // kStatLie: added to the true size

  static StoreFaultAction Pass() { return {}; }
  static StoreFaultAction Eio() { return {StoreFaultKind::kEio, {}, 0, 0, 0}; }
  static StoreFaultAction Fatal() {
    return {StoreFaultKind::kFatal, {}, 0, 0, 0};
  }
  static StoreFaultAction Short(std::uint64_t keep) {
    return {StoreFaultKind::kShort, {}, keep, 0, 0};
  }
  static StoreFaultAction Delay(std::chrono::microseconds d) {
    return {StoreFaultKind::kDelay, d, 0, 0, 0};
  }
  static StoreFaultAction Flip(std::uint64_t bit) {
    return {StoreFaultKind::kFlip, {}, 0, bit, 0};
  }
  static StoreFaultAction StatLie(std::int64_t delta) {
    return {StoreFaultKind::kStatLie, {}, 0, 0, delta};
  }
};

// Seeded-random fault mix applied to reads once every matching script is
// exhausted (probabilities are independent; first match wins).
struct StoreFaultProbabilities {
  double eio = 0;
  double flip = 0;
  std::uint64_t seed = 1;
};

// Counts every injected fault, for assertions and for wiring into
// metrics at the call site.
struct StoreFaultStats {
  std::uint64_t ops = 0;  // store calls that passed through the decorator
  std::uint64_t eios = 0;
  std::uint64_t fatals = 0;
  std::uint64_t shorts = 0;
  std::uint64_t delays = 0;
  std::uint64_t flips = 0;
  std::uint64_t stat_lies = 0;
};

class FaultInjectingStore final : public ObjectStore {
 public:
  // Non-owning: `inner` must outlive the decorator.
  explicit FaultInjectingStore(ObjectStore& inner) : inner_(inner) {}

  // Scripts the next ops matching `op`: action k applies to the k-th
  // matching call. When `loop_last` is set the final action repeats
  // forever; otherwise an exhausted script falls through to the next
  // matching channel (exact op -> read -> any) and then to the random
  // mix (default all-zero = pass-through).
  void Script(StoreOp op, std::vector<StoreFaultAction> script,
              bool loop_last = false);

  // Clears every script and the random mix: the store heals.
  void ClearFaults();

  void SetRandomFaults(const StoreFaultProbabilities& probabilities);

  StoreFaultStats stats() const;

  // ObjectStore interface. Faults apply to data-path ops (Get, GetRange,
  // Put, Stat); bucket management, Exists, Delete, and List always pass
  // through so testbeds can set up and inspect state unperturbed.
  void CreateBucket(const std::string& bucket) override;
  bool BucketExists(const std::string& bucket) const override;
  void Put(const std::string& bucket, const std::string& key,
           ByteSpan data) override;
  Bytes Get(const std::string& bucket, const std::string& key) override;
  Bytes GetRange(const std::string& bucket, const std::string& key,
                 std::uint64_t offset, std::uint64_t length) override;
  ObjectInfo Stat(const std::string& bucket, const std::string& key) override;
  bool Exists(const std::string& bucket, const std::string& key) override;
  void Delete(const std::string& bucket, const std::string& key) override;
  std::vector<ObjectInfo> List(const std::string& bucket,
                               const std::string& prefix) override;

  ObjectStore& inner() { return inner_; }

 private:
  struct Channel {
    std::vector<StoreFaultAction> script;
    size_t next = 0;
    bool loop_last = false;
    bool exhausted() const {
      return next >= script.size() && !(loop_last && !script.empty());
    }
  };

  // Picks the action for one call: first non-exhausted matching channel
  // in priority order (exact op, read, any), else the random mix.
  // Throws / sleeps / counts per the action; returns it for payload
  // mutation at the call site.
  StoreFaultAction ApplyFault(StoreOp op, const std::string& bucket,
                              const std::string& key);
  static Bytes FlipBit(ByteSpan data, std::uint64_t bit);

  ObjectStore& inner_;
  mutable std::mutex mu_;
  Channel channels_[6];  // indexed by StoreOp
  StoreFaultProbabilities random_;
  std::uint64_t op_count_ = 0;
  StoreFaultStats stats_;
};

// Parses a compact store-fault spec used by `vizndp_tool serve
// --store-fault` and the testbeds:
//   spec    := entry (',' entry)*
//   entry   := op '.' action ['*' count] ['=' param]
//   op      := get | range | read | put | stat | any
//   action  := eio | fatal | short (param: bytes kept)
//            | delay (param: µs) | flip (param: bit index)
//            | lie (param: size delta, may be negative)
// A trailing '+' on an entry loops its action forever. Examples:
//   "read.eio*2"        first two reads fail transiently (retry heals)
//   "get.fatal+"        every whole-object read fails permanently
//   "any.delay=5000*3"  the next three ops stall 5 ms (slow-disk window)
//   "put.flip=7000"     the next write is stored with one bit rotted
// Throws Error on a malformed spec.
struct StoreFaultSpecEntry {
  StoreOp op = StoreOp::kAny;
  std::vector<StoreFaultAction> script;
  bool loop_last = false;
};
std::vector<StoreFaultSpecEntry> ParseStoreFaultSpec(const std::string& spec);

// Convenience: applies a parsed spec string to `store`.
void ApplyStoreFaultSpec(FaultInjectingStore& store, const std::string& spec);

}  // namespace vizndp::storage
