// ObjectStore proxy over an RPC client — the client-node half of the
// baseline setup (s3fs mounting a remote MinIO). All payload bytes flow
// through the underlying transport, where the SimulatedLink charges them.
#pragma once

#include <memory>

#include "rpc/client.h"
#include "storage/object_store.h"

namespace vizndp::storage {

class RemoteObjectStore final : public ObjectStore {
 public:
  explicit RemoteObjectStore(std::shared_ptr<rpc::Client> client)
      : client_(std::move(client)) {}

  void CreateBucket(const std::string& bucket) override;
  bool BucketExists(const std::string& bucket) const override;
  void Put(const std::string& bucket, const std::string& key,
           ByteSpan data) override;
  Bytes Get(const std::string& bucket, const std::string& key) override;
  Bytes GetRange(const std::string& bucket, const std::string& key,
                 std::uint64_t offset, std::uint64_t length) override;
  ObjectInfo Stat(const std::string& bucket, const std::string& key) override;
  bool Exists(const std::string& bucket, const std::string& key) override;
  void Delete(const std::string& bucket, const std::string& key) override;
  std::vector<ObjectInfo> List(const std::string& bucket,
                               const std::string& prefix) override;

 private:
  std::shared_ptr<rpc::Client> client_;
};

}  // namespace vizndp::storage
