#include "storage/scrubber.h"

#include <utility>

#include "common/error.h"
#include "net/retry.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace vizndp::storage {

namespace {

obs::Gauge& QuarantinedGauge() {
  static obs::Gauge& g =
      obs::DefaultRegistry().GetGauge("scrub_quarantined");
  return g;
}

obs::Counter& PassCounter() {
  static obs::Counter& c =
      obs::DefaultRegistry().GetCounter("scrub_pass_total");
  return c;
}

obs::Counter& ObjectErrorCounter() {
  static obs::Counter& c =
      obs::DefaultRegistry().GetCounter("scrub_object_error_total");
  return c;
}

}  // namespace

bool QuarantineSet::Add(const BrickRef& brick) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool added = bricks_.insert(brick).second;
  if (added) QuarantinedGauge().Set(static_cast<double>(bricks_.size()));
  return added;
}

bool QuarantineSet::Remove(const BrickRef& brick) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool removed = bricks_.erase(brick) > 0;
  if (removed) QuarantinedGauge().Set(static_cast<double>(bricks_.size()));
  return removed;
}

bool QuarantineSet::Contains(const std::string& key, const std::string& array,
                             std::int64_t brick) const {
  std::lock_guard<std::mutex> lock(mu_);
  return bricks_.count(BrickRef{key, array, brick}) > 0;
}

size_t QuarantineSet::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bricks_.size();
}

std::vector<BrickRef> QuarantineSet::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<BrickRef>(bricks_.begin(), bricks_.end());
}

Scrubber::Scrubber(FileGateway gateway, ScrubVerifier verifier,
                   QuarantineSet& quarantine, ScrubberOptions options)
    : gateway_(std::move(gateway)),
      verifier_(std::move(verifier)),
      quarantine_(quarantine),
      options_(std::move(options)) {}

Scrubber::~Scrubber() { Stop(); }

void Scrubber::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  status_.running = true;
  thread_ = std::thread([this] { ThreadMain(); });
}

void Scrubber::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
  status_.running = false;
}

ScrubObjectReport Scrubber::RunPassNow() {
  ScrubObjectReport pass;
  std::vector<ObjectInfo> keys;
  try {
    keys = gateway_.List();
  } catch (const Error&) {
    // A store that cannot even list heals or fails on the serving path;
    // the scrubber just tries again next pass.
    ObjectErrorCounter().Increment();
    obs::GlobalEventLog().Append("scrub.object_error", "op=list");
    return pass;
  }
  std::uint64_t objects = 0;
  for (const ObjectInfo& info : keys) {
    const std::string& suffix = options_.key_suffix;
    if (info.key.size() < suffix.size() ||
        info.key.compare(info.key.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
      continue;
    }
    ++objects;
    try {
      const ScrubObjectReport report = verifier_(info.key);
      pass.bricks_checked += report.bricks_checked;
      pass.corrupt += report.corrupt;
      pass.quarantined += report.quarantined;
      pass.readmitted += report.readmitted;
      pass.budget_skips += report.budget_skips;
    } catch (const Error&) {
      // Unreadable or unparseable object: the serving path has its own
      // ladder for this; scrubbing moves on and retries next pass.
      ObjectErrorCounter().Increment();
      obs::GlobalEventLog().Append("scrub.object_error", "key=" + info.key);
    }
    if (options_.per_object_pause.count() > 0) {
      std::this_thread::sleep_for(options_.per_object_pause);
    }
  }
  PassCounter().Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++status_.passes;
    status_.objects_checked += objects;
    status_.bricks_checked += pass.bricks_checked;
    status_.corrupt_found += pass.corrupt;
    status_.readmitted += pass.readmitted;
    status_.budget_skips += pass.budget_skips;
  }
  return pass;
}

ScrubStatus Scrubber::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  ScrubStatus out = status_;
  out.quarantined_now = quarantine_.size();
  return out;
}

std::chrono::milliseconds Scrubber::NextSleep(std::uint64_t pass) {
  // Jitter is a pure function of (seed, pass) so a seeded run replays:
  // uniform in [period * (1 - jitter), period].
  const double u =
      static_cast<double>(net::MixBits(options_.seed ^ pass) >> 11) *
      0x1.0p-53;
  const double scale = 1.0 - options_.jitter * u;
  const auto ms = static_cast<std::int64_t>(
      static_cast<double>(options_.period.count()) * scale);
  return std::chrono::milliseconds(ms < 1 ? 1 : ms);
}

void Scrubber::ThreadMain() {
  std::uint64_t pass = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, NextSleep(pass), [this] { return stop_; });
      if (stop_) return;
    }
    RunPassNow();
    ++pass;
  }
}

}  // namespace vizndp::storage
