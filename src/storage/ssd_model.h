// Analytic cost model for the storage node's local data path (MinIO
// reading from its SSD). The paper observes NDP is lower-bounded by this
// local read time; keeping it in the model preserves that bound. Units
// follow SimulatedLink: virtual seconds accumulated per operation.
//
// The default effective bandwidth is deliberately far below raw NVMe
// speeds: it models the whole MinIO+s3fs+SSD software path, which the
// paper's 12 s / ~500 MB baseline reads imply runs at roughly 10^2 MB/s.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/sim_time.h"

namespace vizndp::storage {

struct SsdConfig {
  double read_bandwidth_bytes_per_sec = 120.0e6;
  double write_bandwidth_bytes_per_sec = 90.0e6;
  double access_latency_sec = 500e-6;  // per-object software overhead
};

class SsdModel {
 public:
  explicit SsdModel(SsdConfig config = {}) : config_(config) {}

  double ReadSeconds(std::uint64_t bytes) const {
    return config_.access_latency_sec +
           static_cast<double>(bytes) / config_.read_bandwidth_bytes_per_sec;
  }

  double WriteSeconds(std::uint64_t bytes) const {
    return config_.access_latency_sec +
           static_cast<double>(bytes) / config_.write_bandwidth_bytes_per_sec;
  }

  double ChargeRead(std::uint64_t bytes) {
    const double t = ReadSeconds(bytes);
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    virtual_seconds_.Add(t);
    return t;
  }

  double ChargeWrite(std::uint64_t bytes) {
    const double t = WriteSeconds(bytes);
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    virtual_seconds_.Add(t);
    return t;
  }

  std::uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  double virtual_seconds() const { return virtual_seconds_.Get(); }

  void Reset() {
    bytes_read_.store(0, std::memory_order_relaxed);
    bytes_written_.store(0, std::memory_order_relaxed);
    virtual_seconds_.Reset();
  }

  const SsdConfig& config() const { return config_; }

 private:
  SsdConfig config_;
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  AtomicSeconds virtual_seconds_;
};

}  // namespace vizndp::storage
