#include "grid/dims.h"

#include <sstream>

namespace vizndp::grid {

std::string Dims::ToString() const {
  std::ostringstream os;
  os << nx << "x" << ny << "x" << nz;
  return os.str();
}

}  // namespace vizndp::grid
