// Rectilinear (stretched-grid) geometry: per-axis coordinate arrays, the
// vtkRectilinearGrid analogue. The paper's prototype supports uniform
// grids "with plans to extend support to more complex grid types in
// future work" — this is that extension for the contouring stack: the
// pre-filter selection is geometry-independent (it only reads values), so
// NDP works on stretched grids by applying the coordinates client-side.
#pragma once

#include <vector>

#include "common/error.h"
#include "grid/dims.h"

namespace vizndp::grid {

class RectilinearGeometry {
 public:
  RectilinearGeometry() = default;
  RectilinearGeometry(std::vector<double> x, std::vector<double> y,
                      std::vector<double> z)
      : x_(std::move(x)), y_(std::move(y)), z_(std::move(z)) {
    for (const auto* axis : {&x_, &y_, &z_}) {
      for (size_t i = 1; i < axis->size(); ++i) {
        VIZNDP_CHECK_MSG((*axis)[i] > (*axis)[i - 1],
                         "rectilinear coordinates must be strictly increasing");
      }
    }
  }

  // Requires coordinate counts matching the grid's point dimensions.
  void Validate(const Dims& dims) const {
    VIZNDP_CHECK_MSG(static_cast<std::int64_t>(x_.size()) == dims.nx &&
                         static_cast<std::int64_t>(y_.size()) == dims.ny &&
                         static_cast<std::int64_t>(z_.size()) == dims.nz,
                     "coordinate arrays do not match grid dims");
  }

  std::array<double, 3> PointPosition(const Dims& dims, PointId id) const {
    const auto c = dims.Coords(id);
    return {x_[static_cast<size_t>(c[0])], y_[static_cast<size_t>(c[1])],
            z_[static_cast<size_t>(c[2])]};
  }

  const std::vector<double>& x() const { return x_; }
  const std::vector<double>& y() const { return y_; }
  const std::vector<double>& z() const { return z_; }

  bool operator==(const RectilinearGeometry&) const = default;

 private:
  std::vector<double> x_, y_, z_;
};

}  // namespace vizndp::grid
