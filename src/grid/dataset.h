// A timestep's worth of simulation output: one uniform grid plus any
// number of named point-data arrays (the paper's xRage files carry 11).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "grid/data_array.h"
#include "grid/dims.h"

namespace vizndp::grid {

class Dataset {
 public:
  Dataset() = default;
  Dataset(Dims dims, UniformGeometry geometry = {})
      : dims_(dims), geometry_(geometry) {}

  const Dims& dims() const { return dims_; }
  const UniformGeometry& geometry() const { return geometry_; }
  void set_geometry(const UniformGeometry& g) { geometry_ = g; }

  // Adds an array; its element count must equal dims().PointCount().
  // Returns a reference to the stored array.
  DataArray& AddArray(DataArray array);

  size_t ArrayCount() const { return arrays_.size(); }
  const DataArray& ArrayAt(size_t i) const;

  // nullptr when absent.
  const DataArray* FindArray(const std::string& name) const;
  DataArray* FindArray(const std::string& name);

  // Throws when absent.
  const DataArray& GetArray(const std::string& name) const;

  bool RemoveArray(const std::string& name);

  std::vector<std::string> ArrayNames() const;

  // The paper's "data array selection": a copy of this dataset containing
  // only the named arrays (every name must exist).
  Dataset Select(const std::vector<std::string>& names) const;

  bool operator==(const Dataset& other) const {
    return dims_ == other.dims_ && geometry_ == other.geometry_ &&
           arrays_ == other.arrays_;
  }

 private:
  Dims dims_;
  UniformGeometry geometry_;
  std::vector<DataArray> arrays_;
};

}  // namespace vizndp::grid
