#include "grid/data_array.h"

#include <cmath>
#include <limits>

namespace vizndp::grid {

size_t DataTypeSize(DataType t) {
  switch (t) {
    case DataType::Float32: return 4;
    case DataType::Float64: return 8;
    case DataType::Int32: return 4;
    case DataType::Int64: return 8;
    case DataType::UInt8: return 1;
  }
  throw Error("unknown DataType");
}

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::Float32: return "float32";
    case DataType::Float64: return "float64";
    case DataType::Int32: return "int32";
    case DataType::Int64: return "int64";
    case DataType::UInt8: return "uint8";
  }
  throw Error("unknown DataType");
}

DataType DataTypeFromName(const std::string& name) {
  if (name == "float32") return DataType::Float32;
  if (name == "float64") return DataType::Float64;
  if (name == "int32") return DataType::Int32;
  if (name == "int64") return DataType::Int64;
  if (name == "uint8") return DataType::UInt8;
  throw Error("unknown data type name: " + name);
}

DataArray::DataArray(std::string name, DataType type, std::int64_t count)
    : name_(std::move(name)),
      type_(type),
      raw_(static_cast<size_t>(count) * DataTypeSize(type), 0) {
  VIZNDP_CHECK(count >= 0);
}

DataArray::DataArray(std::string name, DataType type, Bytes raw)
    : name_(std::move(name)), type_(type), raw_(std::move(raw)) {
  VIZNDP_CHECK_MSG(raw_.size() % DataTypeSize(type_) == 0,
                   "raw buffer size not a multiple of element size");
}

double DataArray::ValueAsDouble(std::int64_t i) const {
  VIZNDP_CHECK(i >= 0 && i < size());
  switch (type_) {
    case DataType::Float32:
      return View<float>()[static_cast<size_t>(i)];
    case DataType::Float64:
      return View<double>()[static_cast<size_t>(i)];
    case DataType::Int32:
      return View<std::int32_t>()[static_cast<size_t>(i)];
    case DataType::Int64:
      return static_cast<double>(View<std::int64_t>()[static_cast<size_t>(i)]);
    case DataType::UInt8:
      return View<std::uint8_t>()[static_cast<size_t>(i)];
  }
  throw Error("unknown DataType");
}

namespace {

template <typename T>
std::pair<double, double> RangeOf(std::span<const T> v) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const T x : v) {
    const double d = static_cast<double>(x);
    if (std::isnan(d)) continue;
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  if (lo > hi) return {0.0, 0.0};
  return {lo, hi};
}

}  // namespace

std::pair<double, double> DataArray::Range() const {
  if (size() == 0) return {0.0, 0.0};
  switch (type_) {
    case DataType::Float32: return RangeOf(View<float>());
    case DataType::Float64: return RangeOf(View<double>());
    case DataType::Int32: return RangeOf(View<std::int32_t>());
    case DataType::Int64: return RangeOf(View<std::int64_t>());
    case DataType::UInt8: return RangeOf(View<std::uint8_t>());
  }
  throw Error("unknown DataType");
}

}  // namespace vizndp::grid
