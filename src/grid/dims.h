// Structured-grid topology: dimensions, linear indexing, and edge/cell
// enumeration for uniform rectilinear grids (the grid type the paper's
// prototype supports).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/error.h"

namespace vizndp::grid {

// Point index in a flattened array. 500^3 = 1.25e8 fits in 32 bits but the
// library supports larger grids, so indices are 64-bit.
using PointId = std::int64_t;

// Point dimensions of a structured grid. A 2D grid has nz == 1.
struct Dims {
  std::int64_t nx = 0;
  std::int64_t ny = 0;
  std::int64_t nz = 1;

  constexpr std::int64_t PointCount() const { return nx * ny * nz; }

  // Number of cells (quads in 2D, hexahedra in 3D).
  constexpr std::int64_t CellCount() const {
    const std::int64_t cx = nx > 1 ? nx - 1 : (nx == 1 ? 1 : 0);
    const std::int64_t cy = ny > 1 ? ny - 1 : (ny == 1 ? 1 : 0);
    const std::int64_t cz = nz > 1 ? nz - 1 : (nz == 1 ? 1 : 0);
    return cx * cy * cz;
  }

  constexpr bool Is2D() const { return nz == 1; }

  constexpr PointId Index(std::int64_t i, std::int64_t j,
                          std::int64_t k = 0) const {
    return i + nx * (j + ny * k);
  }

  constexpr std::array<std::int64_t, 3> Coords(PointId id) const {
    const std::int64_t i = id % nx;
    const std::int64_t j = (id / nx) % ny;
    const std::int64_t k = id / (nx * ny);
    return {i, j, k};
  }

  constexpr bool Contains(std::int64_t i, std::int64_t j,
                          std::int64_t k = 0) const {
    return i >= 0 && i < nx && j >= 0 && j < ny && k >= 0 && k < nz;
  }

  constexpr bool operator==(const Dims&) const = default;

  std::string ToString() const;
};

// Physical embedding of a uniform grid: point (i,j,k) sits at
// origin + (i,j,k) * spacing.
struct UniformGeometry {
  std::array<double, 3> origin = {0.0, 0.0, 0.0};
  std::array<double, 3> spacing = {1.0, 1.0, 1.0};

  std::array<double, 3> PointPosition(const Dims& dims, PointId id) const {
    const auto c = dims.Coords(id);
    return {origin[0] + spacing[0] * static_cast<double>(c[0]),
            origin[1] + spacing[1] * static_cast<double>(c[1]),
            origin[2] + spacing[2] * static_cast<double>(c[2])};
  }

  constexpr bool operator==(const UniformGeometry&) const = default;
};

// The axis-aligned edges leaving a point in the +x/+y/+z directions. Every
// grid edge is owned by exactly one point this way, which the pre-filter
// uses to enumerate edges without duplication.
enum class Axis : std::uint8_t { X = 0, Y = 1, Z = 2 };

inline const char* AxisName(Axis a) {
  switch (a) {
    case Axis::X: return "x";
    case Axis::Y: return "y";
    case Axis::Z: return "z";
  }
  return "?";
}

}  // namespace vizndp::grid
