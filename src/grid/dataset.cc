#include "grid/dataset.h"

#include <algorithm>

namespace vizndp::grid {

DataArray& Dataset::AddArray(DataArray array) {
  VIZNDP_CHECK_MSG(array.size() == dims_.PointCount(),
                   "array '" + array.name() + "' has " +
                       std::to_string(array.size()) + " elements, grid has " +
                       std::to_string(dims_.PointCount()) + " points");
  VIZNDP_CHECK_MSG(FindArray(array.name()) == nullptr,
                   "duplicate array name '" + array.name() + "'");
  arrays_.push_back(std::move(array));
  return arrays_.back();
}

const DataArray& Dataset::ArrayAt(size_t i) const {
  VIZNDP_CHECK(i < arrays_.size());
  return arrays_[i];
}

const DataArray* Dataset::FindArray(const std::string& name) const {
  for (const auto& a : arrays_) {
    if (a.name() == name) return &a;
  }
  return nullptr;
}

DataArray* Dataset::FindArray(const std::string& name) {
  for (auto& a : arrays_) {
    if (a.name() == name) return &a;
  }
  return nullptr;
}

const DataArray& Dataset::GetArray(const std::string& name) const {
  const DataArray* a = FindArray(name);
  VIZNDP_CHECK_MSG(a != nullptr, "no array named '" + name + "'");
  return *a;
}

bool Dataset::RemoveArray(const std::string& name) {
  const auto it = std::find_if(arrays_.begin(), arrays_.end(),
                               [&](const DataArray& a) { return a.name() == name; });
  if (it == arrays_.end()) return false;
  arrays_.erase(it);
  return true;
}

std::vector<std::string> Dataset::ArrayNames() const {
  std::vector<std::string> names;
  names.reserve(arrays_.size());
  for (const auto& a : arrays_) names.push_back(a.name());
  return names;
}

Dataset Dataset::Select(const std::vector<std::string>& names) const {
  Dataset out(dims_, geometry_);
  for (const auto& name : names) {
    out.AddArray(GetArray(name));
  }
  return out;
}

}  // namespace vizndp::grid
