// A named, typed data array — the unit the paper's pipelines read,
// compress, select, and transfer (e.g. `v02`, `v03`, `baryon_density`).
//
// Storage is a raw little-endian byte buffer plus a type tag, which makes
// arrays cheap to hand to codecs and transports without per-element
// conversion; typed views are exposed through span accessors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace vizndp::grid {

enum class DataType : std::uint8_t {
  Float32 = 0,
  Float64 = 1,
  Int32 = 2,
  Int64 = 3,
  UInt8 = 4,
};

size_t DataTypeSize(DataType t);
const char* DataTypeName(DataType t);
DataType DataTypeFromName(const std::string& name);

template <typename T>
constexpr DataType DataTypeOf();
template <>
constexpr DataType DataTypeOf<float>() { return DataType::Float32; }
template <>
constexpr DataType DataTypeOf<double>() { return DataType::Float64; }
template <>
constexpr DataType DataTypeOf<std::int32_t>() { return DataType::Int32; }
template <>
constexpr DataType DataTypeOf<std::int64_t>() { return DataType::Int64; }
template <>
constexpr DataType DataTypeOf<std::uint8_t>() { return DataType::UInt8; }

class DataArray {
 public:
  DataArray() = default;
  DataArray(std::string name, DataType type, std::int64_t count);
  DataArray(std::string name, DataType type, Bytes raw);

  template <typename T>
  static DataArray FromVector(std::string name, std::vector<T> values) {
    DataArray a;
    a.name_ = std::move(name);
    a.type_ = DataTypeOf<T>();
    const auto bytes = AsBytes(std::span<const T>(values));
    a.raw_.assign(bytes.begin(), bytes.end());
    return a;
  }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  DataType type() const { return type_; }
  std::int64_t size() const {
    return static_cast<std::int64_t>(raw_.size() / DataTypeSize(type_));
  }
  std::int64_t byte_size() const { return static_cast<std::int64_t>(raw_.size()); }

  ByteSpan raw() const { return raw_; }
  Bytes& mutable_raw() { return raw_; }

  // Typed element views. The requested type must match `type()` exactly.
  template <typename T>
  std::span<const T> View() const {
    VIZNDP_CHECK_MSG(type_ == DataTypeOf<T>(),
                     "type mismatch on array '" + name_ + "'");
    return std::span<const T>(reinterpret_cast<const T*>(raw_.data()),
                              raw_.size() / sizeof(T));
  }

  template <typename T>
  std::span<T> MutableView() {
    VIZNDP_CHECK_MSG(type_ == DataTypeOf<T>(),
                     "type mismatch on array '" + name_ + "'");
    return std::span<T>(reinterpret_cast<T*>(raw_.data()),
                        raw_.size() / sizeof(T));
  }

  // Element read with conversion to double, for type-generic consumers
  // such as statistics and the ASCII writer. Slower than View<T>().
  double ValueAsDouble(std::int64_t i) const;

  // Min/max over all elements (NaNs are ignored; returns {0,0} when empty).
  std::pair<double, double> Range() const;

  bool operator==(const DataArray& other) const {
    return name_ == other.name_ && type_ == other.type_ && raw_ == other.raw_;
  }

 private:
  std::string name_;
  DataType type_ = DataType::Float32;
  Bytes raw_;
};

}  // namespace vizndp::grid
