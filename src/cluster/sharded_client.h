// Scatter-gather NDP serving: one FetchSparseField fans out as
// brick-restricted sub-requests to N storage nodes, each holding a
// replica of the dataset, and the partial selections merge back into a
// single sparse field bit-identical to the one-server path.
//
// Tail-latency control (the reason this tier exists): each sub-request
// is *hedged* — if a shard's primary replica has not answered within a
// delay derived from the observed sub-fetch latency distribution, the
// same request launches on the next replica and the first success wins.
// The loser is abandoned (synchronous RPCs cannot be cancelled) and its
// thread reaped asynchronously, so one slow or dead node costs one hedge
// delay, not a timeout.
//
// Failure ladder, in order, for each sub-request:
//   1. primary replica          (per the ShardMap chain)
//   2. remaining replicas       (hedge or sequential failover)
//   3. unrestricted rescue      (whole-dataset fetch from any live node)
//   4. caller's baseline path   (NdpContourSource::SetFallback, as ever)
// Geometry stays bit-identical at every rung: all rungs compute the same
// selection invariant over the same stored values.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cluster/fleet_view.h"
#include "cluster/shard_map.h"
#include "ndp/ndp_client.h"

namespace vizndp::cluster {

struct ShardedClientOptions {
  // Hedge policy. Negative disables hedging; positive is a fixed delay
  // in milliseconds; zero (default) adapts: the delay is the
  // hedge_quantile of cluster_subfetch_seconds once min_hedge_samples
  // observations exist, hedge_floor_ms while the histogram is cold.
  double hedge_ms = 0;
  double hedge_quantile = 0.95;
  double hedge_floor_ms = 25.0;
  std::uint64_t min_hedge_samples = 16;
  // How long a SetHedgeHint value stays authoritative before the delay
  // falls back to this client's own latency window.
  double hedge_hint_ttl_ms = 10000.0;
};

// Drop-in NdpFetcher over a fleet of NDP servers. Every server must
// hold a full replica of each dataset it may be asked about (the
// testbed and vizndp_tool load datasets on every node; see shard_map.h).
//
// Thread-safety: FetchSparseField may be called concurrently; internal
// per-server clients serialize their RPCs.
class ShardedNdpClient : public ndp::NdpFetcher {
 public:
  ShardedNdpClient(std::vector<std::shared_ptr<ndp::NdpClient>> servers,
                   int replicas, ShardedClientOptions options = {});
  // Joins any hedge losers still in flight (bounded by the per-call
  // timeout configured on the underlying clients).
  ~ShardedNdpClient() override;

  // Scatter-gather fetch. Stats are the order-independent merge of the
  // per-shard replies: byte/brick counts sum, server phase times take
  // the max (the shards ran in parallel), selected_points is the
  // *deduplicated* count (shard halos overlap on brick boundaries).
  contour::SparseField FetchSparseField(
      const std::string& key, const std::string& array,
      const std::vector<double>& isovalues, grid::UniformGeometry* geometry,
      ndp::NdpLoadStats* stats = nullptr) override;

  // Streaming mode (chunk_bricks > 0): each shard sub-request becomes a
  // chunked stream scattered into the shared field as chunks arrive.
  // Mid-stream recovery gets a deeper ladder than the per-node resume:
  // when a node's resume budget is exhausted the stream hops to the
  // next replica in the chain carrying its cursor, so a node killed at
  // chunk k costs only the chunks in flight, not the shard. Streaming
  // sub-fetches fail over sequentially instead of hedging — a hedge
  // would ship every chunk twice, the exact cost streaming exists to
  // avoid. Propagates the options to the per-server clients.
  void SetStream(const ndp::StreamOptions& options);
  const ndp::StreamOptions& stream() const { return stream_; }

  // Polls ndp.health on every server; draining or unreachable nodes are
  // marked suspect and moved to the back of every replica chain until
  // the next probe. Returns the number of suspect servers.
  int ProbeHealth();

  // Test hook: treat `server` as suspect without a probe.
  void MarkSuspect(int server, bool suspect = true);

  // Installs a membership snapshot (normally called by a HealthMonitor
  // view sink). Each FetchSparseField snapshots the current view once
  // and plans over its usable nodes only: dead/rejoining nodes drop out
  // of partitions and chains, and their bricks re-spread across the
  // survivors. A live verdict also clears the node's local suspect bit;
  // nullptr (or a view from a different fleet size) restores the static
  // all-nodes placement. Never holds a lock across an RPC: the view is
  // swapped atomically and read-only afterwards.
  void SetFleetView(std::shared_ptr<const FleetView> view);
  std::shared_ptr<const FleetView> fleet_view() const;

  // Fleet-wide windowed sub-fetch tail (seconds), normally pushed by a
  // cluster::FleetScraper after each sweep. While fresh (hedge_hint_ttl_
  // ms) it overrides the process-local latency window in HedgeDelay —
  // a hedging client benefits from latency every node observed, not
  // just the shards it happened to draw. <= 0 clears the hint.
  void SetHedgeHint(double seconds);

  // The adaptive hedge delay the next sub-fetch would use (nullopt =
  // hedging disabled). Public so tests and dashboards can read the
  // policy without racing a fetch.
  std::optional<std::chrono::microseconds> HedgeDelay() const;

  const ShardMap& shard_map() const { return map_; }
  int server_count() const { return static_cast<int>(servers_.size()); }

  // Dataset layout (ndp.info), cached per key — datasets are immutable.
  ndp::NdpClient::FileInfo Info(const std::string& key);

 private:
  // One replica attempt's outcome, filled in by its worker thread.
  struct Slot {
    bool done = false;
    int server = -1;
    std::optional<ndp::PartialFetch> result;  // engaged iff success
    std::exception_ptr error;                 // set iff failure
  };
  struct Race {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Slot> slots;
  };

  // Hedged, failing-over fetch of one shard's slice (`only_bricks`
  // nullptr = the whole dataset, for unbricked arrays). Throws the last
  // replica's error once the chain is exhausted. `eligible` is the
  // fetch's view snapshot (empty = all servers).
  ndp::PartialFetch SubFetch(int shard, const std::string& key,
                             const std::string& array,
                             const std::vector<double>& isovalues,
                             const std::vector<std::int64_t>* only_bricks,
                             const std::vector<bool>& eligible);

  // Shared scatter target of one streaming fetch: shard workers append
  // chunks under the mutex as they arrive (SparseField::Scatter is
  // order/duplicate-invariant, so interleaving is safe).
  struct StreamMerge {
    std::mutex mu;
    std::optional<contour::SparseField> field;
    grid::Dims dims;
    grid::UniformGeometry geometry;
  };
  struct ShardStream {
    ndp::StreamAccumulator acc;
    msgpack::Value terminal;
  };

  // Streaming sub-fetch: walks the replica chain sequentially, carrying
  // the accumulator (cursor) across hops.
  ShardStream SubFetchStreaming(int shard, const std::string& key,
                                const std::string& array,
                                const std::vector<double>& isovalues,
                                const std::vector<std::int64_t>& bricks,
                                const std::vector<bool>& eligible,
                                StreamMerge& merge);

  contour::SparseField FetchSparseFieldStreaming(
      const std::string& key, const std::string& array,
      const std::vector<double>& isovalues, grid::UniformGeometry* geometry,
      ndp::NdpLoadStats* stats, const ndp::NdpClient::FileInfo::Array& meta);

  // Replica chain for `shard` over the eligible servers, with suspect
  // servers demoted to the back (skips counted and journaled).
  std::vector<int> LiveChain(int shard, const std::vector<bool>* eligible);

  // Usable-server mask of `view` (all-true when the view is null, from
  // a different fleet size, or marks nobody usable).
  std::vector<bool> Eligibility(
      const std::shared_ptr<const FleetView>& view) const;

  // Moves still-running attempt threads to pending_ and drops finished
  // ones; called as each race resolves and from the destructor. The
  // parked set is bounded by kMaxParked: over the cap, Park blocks on
  // the oldest losers (bounded by the per-call timeout) instead of
  // accumulating threads without limit. The cluster_hedge_parked gauge
  // tracks the set's size.
  void Park(std::vector<std::future<void>>&& futures);
  void Reap(bool wait);

  static constexpr size_t kMaxParked = 64;

  std::vector<std::shared_ptr<ndp::NdpClient>> servers_;
  ShardMap map_;
  ShardedClientOptions options_;
  ndp::StreamOptions stream_;
  obs::WindowedHistogram& subfetch_seconds_;
  obs::Gauge& parked_gauge_;
  std::atomic<double> hedge_hint_seconds_{0};
  std::atomic<std::int64_t> hedge_hint_at_us_{0};

  mutable std::mutex view_mu_;
  std::shared_ptr<const FleetView> view_;

  std::mutex suspect_mu_;
  std::vector<bool> suspect_;

  std::mutex info_mu_;
  std::map<std::string, ndp::NdpClient::FileInfo> info_cache_;

  std::mutex pending_mu_;
  std::vector<std::future<void>> pending_;  // abandoned hedge losers
};

}  // namespace vizndp::cluster
