#include "cluster/sharded_client.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/error.h"
#include "obs/context.h"
#include "obs/event_log.h"
#include "obs/trace.h"
#include "obs/windowed.h"

namespace vizndp::cluster {

namespace {

std::string ShardTag(int shard) { return std::to_string(shard); }

obs::WindowedHistogram& SubfetchHistogram() {
  return obs::DefaultRegistry().GetWindowedHistogram(
      "cluster_subfetch_seconds", obs::LatencyBounds());
}

}  // namespace

ShardedNdpClient::ShardedNdpClient(
    std::vector<std::shared_ptr<ndp::NdpClient>> servers, int replicas,
    ShardedClientOptions options)
    : servers_(std::move(servers)),
      map_(static_cast<int>(servers_.size()), replicas),
      options_(options),
      subfetch_seconds_(SubfetchHistogram()),
      parked_gauge_(
          obs::DefaultRegistry().GetGauge("cluster_hedge_parked")),
      suspect_(servers_.size(), false) {
  VIZNDP_CHECK_MSG(!servers_.empty(), "sharded client needs servers");
}

ShardedNdpClient::~ShardedNdpClient() {
  Reap(/*wait=*/true);
  parked_gauge_.Set(0);
}

void ShardedNdpClient::MarkSuspect(int server, bool suspect) {
  std::lock_guard lk(suspect_mu_);
  suspect_.at(static_cast<size_t>(server)) = suspect;
}

void ShardedNdpClient::SetFleetView(std::shared_ptr<const FleetView> view) {
  {
    std::lock_guard lk(view_mu_);
    view_ = view;
  }
  if (view == nullptr || view->states.size() != servers_.size()) return;
  // The monitor's verdict supersedes ad-hoc suspicion: nodes it calls
  // live are trusted again, nodes it calls suspect stay demoted.
  std::lock_guard lk(suspect_mu_);
  for (size_t i = 0; i < suspect_.size(); ++i) {
    if (view->states[i] == NodeState::kLive) suspect_[i] = false;
    if (view->states[i] == NodeState::kSuspect) suspect_[i] = true;
  }
}

std::shared_ptr<const FleetView> ShardedNdpClient::fleet_view() const {
  std::lock_guard lk(view_mu_);
  return view_;
}

std::vector<bool> ShardedNdpClient::Eligibility(
    const std::shared_ptr<const FleetView>& view) const {
  std::vector<bool> eligible(servers_.size(), true);
  if (view == nullptr || view->states.size() != servers_.size()) {
    return eligible;
  }
  int usable = 0;
  for (size_t i = 0; i < servers_.size(); ++i) {
    eligible[i] = NodeUsable(view->states[i]);
    if (eligible[i]) ++usable;
  }
  // An all-dead view must not make a fetch unroutable — plan over
  // everyone and let the transports report the truth.
  if (usable == 0) eligible.assign(servers_.size(), true);
  return eligible;
}

int ShardedNdpClient::ProbeHealth() {
  int suspects = 0;
  for (size_t i = 0; i < servers_.size(); ++i) {
    bool suspect = false;
    try {
      suspect = servers_[i]->Health().draining;
    } catch (const Error&) {
      // Unreachable counts as suspect; the replica chain will route
      // around it and the node rejoins on the next clean probe.
      suspect = true;
    }
    MarkSuspect(static_cast<int>(i), suspect);
    if (suspect) ++suspects;
  }
  return suspects;
}

ndp::NdpClient::FileInfo ShardedNdpClient::Info(const std::string& key) {
  {
    std::lock_guard lk(info_mu_);
    const auto it = info_cache_.find(key);
    if (it != info_cache_.end()) return it->second;
  }
  // Any node can answer (every node fronts the same store); try the
  // key's home chain first, then walk the rest of the fleet. Health
  // bookkeeping is left to actual fetch attempts — a metadata probe
  // bouncing off a busy node is not evidence worth demoting it over.
  const std::vector<bool> eligible = Eligibility(fleet_view());
  std::vector<int> order = LiveChain(map_.ShardOfKey(key, &eligible),
                                     &eligible);
  for (int sv = 0; sv < server_count(); ++sv) {
    if (std::find(order.begin(), order.end(), sv) == order.end()) {
      order.push_back(sv);
    }
  }
  std::exception_ptr last;
  for (const int sv : order) {
    try {
      ndp::NdpClient::FileInfo info =
          servers_[static_cast<size_t>(sv)]->Info(key);
      std::lock_guard lk(info_mu_);
      return info_cache_.emplace(key, std::move(info)).first->second;
    } catch (const BusyError&) {
      last = std::current_exception();
    } catch (const RpcError&) {
      throw;  // the server answered: bad key is bad on every replica
    } catch (const Error&) {
      last = std::current_exception();
    }
  }
  std::rethrow_exception(last);
}

std::vector<int> ShardedNdpClient::LiveChain(
    int shard, const std::vector<bool>* eligible) {
  const std::vector<int> chain = map_.ReplicaChain(shard, eligible);
  std::vector<int> live;
  std::vector<int> demoted;
  {
    std::lock_guard lk(suspect_mu_);
    for (const int sv : chain) {
      (suspect_[static_cast<size_t>(sv)] ? demoted : live).push_back(sv);
    }
  }
  for (const int sv : demoted) {
    obs::DefaultRegistry().GetCounter("cluster_draining_skips_total")
        .Increment();
    obs::GlobalEventLog().Append(
        "cluster.draining_skip",
        "shard=" + ShardTag(shard) + " server=" + std::to_string(sv));
    live.push_back(sv);  // still last-resort usable: demoted, not dropped
  }
  return live;
}

void ShardedNdpClient::SetStream(const ndp::StreamOptions& options) {
  stream_ = options;
  for (const std::shared_ptr<ndp::NdpClient>& s : servers_) {
    s->SetStream(options);
  }
}

void ShardedNdpClient::SetHedgeHint(double seconds) {
  hedge_hint_seconds_.store(seconds, std::memory_order_relaxed);
  hedge_hint_at_us_.store(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
}

std::optional<std::chrono::microseconds> ShardedNdpClient::HedgeDelay()
    const {
  if (options_.hedge_ms < 0) return std::nullopt;
  double ms = options_.hedge_ms;
  if (ms == 0) {
    // Adaptive: hedge at the tail of what sub-fetches normally take, so
    // the backup fires only for genuinely slow replicas. Preference
    // order: a fresh fleet-wide windowed p95 pushed by a FleetScraper
    // (it sees every node, not just the shards this client drew), then
    // this client's own sliding window, then the cumulative series, and
    // the floor while everything is cold.
    ms = options_.hedge_floor_ms;
    const double hint = hedge_hint_seconds_.load(std::memory_order_relaxed);
    const std::int64_t hint_at =
        hedge_hint_at_us_.load(std::memory_order_relaxed);
    const std::int64_t now_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    const bool hint_fresh =
        hint > 0 && hint_at > 0 &&
        now_us - hint_at <
            1000 * static_cast<std::int64_t>(options_.hedge_hint_ttl_ms);
    if (hint_fresh) {
      ms = std::max(options_.hedge_floor_ms, 1e3 * hint);
    } else {
      const obs::MetricSnapshot window = subfetch_seconds_.WindowSnapshot();
      if (window.count >= options_.min_hedge_samples) {
        ms = std::max(
            options_.hedge_floor_ms,
            1e3 * obs::SnapshotQuantile(window, options_.hedge_quantile));
      } else if (subfetch_seconds_.cumulative().count() >=
                 options_.min_hedge_samples) {
        ms = std::max(options_.hedge_floor_ms,
                      1e3 * obs::HistogramQuantile(
                                subfetch_seconds_.cumulative(),
                                options_.hedge_quantile));
      }
    }
  }
  return std::chrono::microseconds(static_cast<std::int64_t>(ms * 1e3));
}

void ShardedNdpClient::Park(std::vector<std::future<void>>&& futures) {
  std::vector<std::future<void>> overflow;
  {
    std::lock_guard lk(pending_mu_);
    for (std::future<void>& f : futures) {
      if (!f.valid()) continue;
      if (f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
        f.get();  // worker bodies never throw; this just releases state
      } else {
        pending_.push_back(std::move(f));
      }
    }
    futures.clear();
    // Bound the parked set: past the cap, the oldest losers get joined
    // instead of accumulating threads without limit.
    while (pending_.size() > kMaxParked) {
      overflow.push_back(std::move(pending_.front()));
      pending_.erase(pending_.begin());
    }
    parked_gauge_.Set(static_cast<double>(pending_.size()));
  }
  // Join the overflow outside the lock; each join is bounded by the
  // per-call timeout on the underlying clients.
  for (std::future<void>& f : overflow) f.get();
}

void ShardedNdpClient::Reap(bool wait) {
  std::vector<std::future<void>> grabbed;
  {
    std::lock_guard lk(pending_mu_);
    grabbed.swap(pending_);
  }
  std::vector<std::future<void>> keep;
  for (std::future<void>& f : grabbed) {
    if (!f.valid()) continue;
    if (wait ||
        f.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      f.get();
    } else {
      keep.push_back(std::move(f));
    }
  }
  {
    std::lock_guard lk(pending_mu_);
    for (std::future<void>& f : keep) pending_.push_back(std::move(f));
    parked_gauge_.Set(static_cast<double>(pending_.size()));
  }
}

ndp::PartialFetch ShardedNdpClient::SubFetch(
    int shard, const std::string& key, const std::string& array,
    const std::vector<double>& isovalues,
    const std::vector<std::int64_t>* only_bricks,
    const std::vector<bool>& eligible) {
  const std::vector<int> chain =
      LiveChain(shard, eligible.empty() ? nullptr : &eligible);
  obs::Registry& reg = obs::DefaultRegistry();
  reg.GetCounter("cluster_subfetch_total", {{"shard", ShardTag(shard)}})
      .Increment();
  obs::Span span("cluster.shard" + ShardTag(shard));

  auto state = std::make_shared<Race>();
  state->slots.resize(chain.size());
  std::vector<std::future<void>> attempts;

  // Worker threads inherit the caller's trace context so their spans and
  // the server-side spans they trigger nest under this sub-fetch.
  const obs::TraceContext parent_ctx = obs::CurrentTraceContext();
  const std::vector<std::int64_t> bricks_copy =
      only_bricks != nullptr ? *only_bricks : std::vector<std::int64_t>{};
  const bool restricted = only_bricks != nullptr;

  auto launch = [&](size_t slot_idx) {
    const int sv = chain[slot_idx];
    state->slots[slot_idx].server = sv;
    std::shared_ptr<ndp::NdpClient> client =
        servers_[static_cast<size_t>(sv)];
    attempts.push_back(std::async(
        std::launch::async,
        [this, state, slot_idx, sv, client, key, array, isovalues,
         bricks_copy, restricted, parent_ctx]() {
          std::optional<obs::ScopedTraceContext> scope;
          if (parent_ctx.valid()) scope.emplace(parent_ctx);
          std::optional<ndp::PartialFetch> result;
          std::exception_ptr error;
          try {
            result = client->FetchPartial(
                key, array, isovalues, restricted ? &bricks_copy : nullptr);
          } catch (const BusyError&) {
            // An overloaded node is the one health signal an attempt
            // sees directly; demote it for subsequent chains.
            MarkSuspect(sv, true);
            error = std::current_exception();
          } catch (...) {
            error = std::current_exception();
          }
          std::lock_guard lk(state->mu);
          Slot& slot = state->slots[slot_idx];
          slot.result = std::move(result);
          slot.error = error;
          slot.done = true;
          state->cv.notify_all();
        }));
  };

  const std::optional<std::chrono::microseconds> hedge_delay = HedgeDelay();
  size_t next = 0;
  launch(next++);
  bool hedge_fired = false;
  size_t hedge_slot = 0;

  ndp::PartialFetch result;
  int winner = -1;
  {
    std::unique_lock lk(state->mu);
    for (;;) {
      size_t done = 0;
      std::exception_ptr last_error;
      for (size_t i = 0; i < next; ++i) {
        const Slot& slot = state->slots[i];
        if (!slot.done) continue;
        ++done;
        if (slot.result.has_value() && winner < 0) {
          winner = static_cast<int>(i);
        }
        if (slot.error != nullptr) last_error = slot.error;
      }
      if (winner >= 0) {
        result = std::move(*state->slots[static_cast<size_t>(winner)].result);
        break;
      }
      if (done == next) {
        // Every launched attempt failed. A server-reported application
        // error (bad key/array — BusyError excepted, that's admission
        // control) would fail identically on every replica: propagate.
        try {
          std::rethrow_exception(last_error);
        } catch (const BusyError&) {
        } catch (const RpcError&) {
          throw;
        } catch (...) {
        }
        if (next >= chain.size()) std::rethrow_exception(last_error);
        lk.unlock();
        reg.GetCounter("cluster_failover_total").Increment();
        obs::GlobalEventLog().Append(
            "cluster.failover", "shard=" + ShardTag(shard) + " server=" +
                                    std::to_string(chain[next]));
        launch(next++);
        lk.lock();
        continue;
      }
      // Something is still running. Fire the hedge once its delay
      // elapses with no resolution; otherwise just wait for progress.
      const size_t seen = done;
      auto progressed = [&] {
        size_t now_done = 0;
        for (size_t i = 0; i < next; ++i) {
          if (state->slots[i].done) ++now_done;
        }
        return now_done > seen;
      };
      if (!hedge_fired && hedge_delay.has_value() && next < chain.size()) {
        if (!state->cv.wait_for(lk, *hedge_delay, progressed)) {
          hedge_fired = true;
          hedge_slot = next;
          lk.unlock();
          reg.GetCounter("ndp_hedge_launched_total").Increment();
          obs::GlobalEventLog().Append(
              "cluster.hedge", "shard=" + ShardTag(shard) + " server=" +
                                   std::to_string(chain[next]));
          launch(next++);
          lk.lock();
        }
        continue;
      }
      state->cv.wait(lk, progressed);
    }
  }

  if (hedge_fired) {
    const bool hedge_won = winner == static_cast<int>(hedge_slot);
    reg.GetCounter(hedge_won ? "ndp_hedge_won_total" : "ndp_hedge_lost_total")
        .Increment();
    obs::GlobalEventLog().Append(
        hedge_won ? "cluster.hedge_won" : "cluster.hedge_lost",
        "shard=" + ShardTag(shard) + " server=" +
            std::to_string(state->slots[static_cast<size_t>(winner)].server));
  }

  // Hand losers still in flight to the reaper; their slots stay alive
  // through the shared Race until the worker finishes.
  Park(std::move(attempts));
  span.End();
  subfetch_seconds_.Observe(span.ElapsedSeconds());
  return result;
}

ShardedNdpClient::ShardStream ShardedNdpClient::SubFetchStreaming(
    int shard, const std::string& key, const std::string& array,
    const std::vector<double>& isovalues,
    const std::vector<std::int64_t>& bricks,
    const std::vector<bool>& eligible, StreamMerge& merge) {
  const std::vector<int> chain =
      LiveChain(shard, eligible.empty() ? nullptr : &eligible);
  obs::Registry& reg = obs::DefaultRegistry();
  reg.GetCounter("cluster_subfetch_total", {{"shard", ShardTag(shard)}})
      .Increment();
  obs::Span span("cluster.shard" + ShardTag(shard));

  ShardStream out;
  const auto deliver = [&](const ndp::DecodedSelection& sel) {
    std::lock_guard lk(merge.mu);
    if (!merge.field.has_value()) {
      merge.dims = out.acc.header.dims;
      merge.geometry.origin = {out.acc.header.origin[0],
                               out.acc.header.origin[1],
                               out.acc.header.origin[2]};
      merge.geometry.spacing = {out.acc.header.spacing[0],
                                out.acc.header.spacing[1],
                                out.acc.header.spacing[2]};
      merge.field.emplace(merge.dims, out.acc.header.dtype);
    } else if (merge.dims.nx != out.acc.header.dims.nx ||
               merge.dims.ny != out.acc.header.dims.ny ||
               merge.dims.nz != out.acc.header.dims.nz) {
      throw Error("shards disagree on dataset shape — mixed replicas?");
    }
    merge.field->Scatter(sel.ids, sel.values);
  };

  std::exception_ptr last;
  for (size_t i = 0; i < chain.size(); ++i) {
    const int sv = chain[i];
    if (i > 0) {
      reg.GetCounter("cluster_failover_total").Increment();
      obs::GlobalEventLog().Append(
          "cluster.failover",
          "shard=" + ShardTag(shard) + " server=" + std::to_string(sv));
      if (out.acc.got_header) {
        // The hop continues a started stream from its cursor — a
        // mid-stream resume on a different data copy, the recovery rung
        // the per-node resume budget cannot provide.
        reg.GetCounter("ndp_stream_resume_total").Increment();
        obs::GlobalEventLog().Append(
            "ndp.stream_resume",
            "key=" + key + " cursor=" + std::to_string(out.acc.cursor) +
                " server=" + std::to_string(sv));
      }
    }
    try {
      out.terminal = servers_[static_cast<size_t>(sv)]->StreamSelect(
          key, array, isovalues, &bricks, out.acc, deliver);
      span.End();
      subfetch_seconds_.Observe(span.ElapsedSeconds());
      return out;
    } catch (const BusyError&) {
      MarkSuspect(sv, true);
      last = std::current_exception();
    } catch (const RpcError&) {
      throw;  // application error: identical on every replica
    } catch (const Error&) {
      last = std::current_exception();
    }
  }
  std::rethrow_exception(last);
}

contour::SparseField ShardedNdpClient::FetchSparseFieldStreaming(
    const std::string& key, const std::string& array,
    const std::vector<double>& isovalues, grid::UniformGeometry* geometry,
    ndp::NdpLoadStats* stats,
    const ndp::NdpClient::FileInfo::Array& meta) {
  obs::Span total_span("cluster.fetch");
  Reap(/*wait=*/false);
  const std::vector<bool> eligible = Eligibility(fleet_view());

  std::vector<std::pair<int, std::vector<std::int64_t>>> plan;
  std::vector<std::vector<std::int64_t>> slices =
      map_.Partition(key, meta.brick_count, &eligible);
  for (int s = 0; s < static_cast<int>(slices.size()); ++s) {
    if (!slices[static_cast<size_t>(s)].empty()) {
      plan.emplace_back(s, std::move(slices[static_cast<size_t>(s)]));
    }
  }

  StreamMerge merge;
  const obs::TraceContext parent_ctx = obs::CurrentTraceContext();
  std::vector<std::future<ShardStream>> futures;
  futures.reserve(plan.size());
  for (const auto& [shard, bricks] : plan) {
    futures.push_back(std::async(
        std::launch::async,
        [this, shard = shard, &key, &array, &isovalues, &bricks, parent_ctx,
         &eligible, &merge]() {
          std::optional<obs::ScopedTraceContext> scope;
          if (parent_ctx.valid()) scope.emplace(parent_ctx);
          return SubFetchStreaming(shard, key, array, isovalues, bricks,
                                   eligible, merge);
        }));
  }

  std::vector<ShardStream> results;
  results.reserve(plan.size());
  std::exception_ptr shard_failure;
  for (std::future<ShardStream>& f : futures) {
    try {
      results.push_back(f.get());
    } catch (const BusyError&) {
      shard_failure = std::current_exception();
    } catch (const RpcError&) {
      throw;  // application error: identical on every replica
    } catch (const Error&) {
      shard_failure = std::current_exception();
    }
  }

  if (shard_failure != nullptr) {
    // Rung 3, as in the monolithic path: a shard exhausted its chain,
    // so trade bandwidth for availability with an unrestricted rescue
    // fetch. The whole-dataset selection re-covers bricks the streams
    // already scattered; the duplicate-invariant Scatter absorbs that.
    obs::DefaultRegistry().GetCounter("cluster_unrestricted_fallback_total")
        .Increment();
    obs::GlobalEventLog().Append("cluster.unrestricted_fallback",
                                 "key=" + key);
    bool rescued = false;
    std::vector<int> rescue_order;
    for (int pass = 0; pass < 2; ++pass) {
      for (int sv = 0; sv < server_count(); ++sv) {
        if (eligible[static_cast<size_t>(sv)] == (pass == 0)) {
          rescue_order.push_back(sv);
        }
      }
    }
    for (const int sv : rescue_order) {
      if (rescued) break;
      try {
        obs::Span rescue_span("cluster.rescue");
        ndp::PartialFetch whole =
            servers_[static_cast<size_t>(sv)]->FetchPartial(key, array,
                                                            isovalues,
                                                            nullptr);
        std::lock_guard lk(merge.mu);
        if (!merge.field.has_value()) {
          merge.dims = whole.dims;
          merge.geometry = whole.geometry;
          merge.field.emplace(whole.dims, whole.dtype);
        }
        merge.field->Scatter(whole.selection.ids, whole.selection.values);
        rescued = true;
      } catch (const Error& e) {
        obs::GlobalEventLog().Append(
            "cluster.rescue_failed",
            "server=" + std::to_string(sv) + " error=" + e.what());
      }
    }
    if (!rescued) std::rethrow_exception(shard_failure);
  }

  VIZNDP_CHECK_MSG(merge.field.has_value(),
                   "sharded streaming fetch produced no field");
  if (geometry != nullptr) *geometry = merge.geometry;

  if (stats != nullptr) {
    *stats = ndp::NdpLoadStats{};
    stats->trace_id = obs::CurrentTraceContext().trace_id;
    stats->streamed = true;
    for (const ShardStream& r : results) {
      stats->stream_chunks += r.acc.chunks;
      stats->stream_resumes += r.acc.resumes;
      stats->stream_cancelled = stats->stream_cancelled || r.acc.cancelled;
      stats->payload_bytes += r.acc.payload_bytes;
      stats->reply_bytes += r.acc.payload_bytes + 256 * (r.acc.chunks + 2);
      stats->bricks_total =
          std::max(stats->bricks_total, r.acc.header.bricks_total);
      stats->total_points =
          std::max(stats->total_points,
                   static_cast<std::uint64_t>(r.acc.header.total_points));
      stats->client_decode_s += r.acc.decode_s;
      stats->client_scatter_s += r.acc.scatter_s;
      if (r.terminal.Is<msgpack::Map>()) {
        stats->stored_bytes += r.terminal.At("stored_bytes").AsUint();
        stats->raw_bytes = std::max(stats->raw_bytes,
                                    r.terminal.At("raw_bytes").AsUint());
        stats->bricks_read += r.terminal.At("bricks_read").AsInt();
        // Parallel shards: the fleet's phase time is the slowest shard.
        stats->server_read_s = std::max(stats->server_read_s,
                                        r.terminal.At("read_s").AsDouble());
        stats->server_select_s =
            std::max(stats->server_select_s,
                     r.terminal.At("select_s").AsDouble());
      }
    }
    stats->selected_points =
        static_cast<std::uint64_t>(merge.field->ValidCount());
    total_span.End();
    stats->client_s = total_span.ElapsedSeconds();
  }
  return std::move(*merge.field);
}

contour::SparseField ShardedNdpClient::FetchSparseField(
    const std::string& key, const std::string& array,
    const std::vector<double>& isovalues, grid::UniformGeometry* geometry,
    ndp::NdpLoadStats* stats) {
  std::optional<obs::ScopedTraceContext> root;
  if (obs::GlobalTracer().enabled() && !obs::CurrentTraceContext().valid()) {
    root.emplace(obs::TraceContext::Mint(/*sampled=*/true));
  }
  if (stream_.chunk_bricks > 0) {
    // Streaming needs a brick-id cursor space; unbricked (or unknown)
    // arrays fall through to the monolithic path below, which routes
    // them whole to their rendezvous owner.
    const ndp::NdpClient::FileInfo sinfo = Info(key);
    const ndp::NdpClient::FileInfo::Array* smeta = sinfo.Find(array);
    if (smeta != nullptr && smeta->brick_count > 0) {
      return FetchSparseFieldStreaming(key, array, isovalues, geometry,
                                       stats, *smeta);
    }
  }
  obs::Span total_span("cluster.fetch");
  Reap(/*wait=*/false);

  // One membership snapshot per fetch: placement, chains, and the
  // rescue rung below all answer to the same view, and no lock is held
  // once it is taken.
  const std::vector<bool> eligible = Eligibility(fleet_view());

  // Placement needs the brick decomposition; a monolithic array cannot
  // be sub-divided and routes whole to its rendezvous owner.
  const ndp::NdpClient::FileInfo info = Info(key);
  const ndp::NdpClient::FileInfo::Array* meta = info.Find(array);

  std::vector<std::pair<int, std::vector<std::int64_t>>> plan;
  const bool whole_key = meta == nullptr || meta->brick_count == 0;
  if (whole_key) {
    // Monolithic array — or an array the catalog doesn't know, which the
    // home server rejects with its canonical application error.
    plan.emplace_back(map_.ShardOfKey(key, &eligible),
                      std::vector<std::int64_t>{});
  } else {
    std::vector<std::vector<std::int64_t>> slices =
        map_.Partition(key, meta->brick_count, &eligible);
    for (int s = 0; s < static_cast<int>(slices.size()); ++s) {
      if (!slices[static_cast<size_t>(s)].empty()) {
        plan.emplace_back(s, std::move(slices[static_cast<size_t>(s)]));
      }
    }
  }

  // Scatter: one concurrent sub-fetch per shard slice. Gather is a
  // barrier — the merge needs every partial.
  const obs::TraceContext parent_ctx = obs::CurrentTraceContext();
  std::vector<std::future<ndp::PartialFetch>> futures;
  futures.reserve(plan.size());
  for (const auto& [shard, bricks] : plan) {
    const std::vector<std::int64_t>* restriction =
        whole_key ? nullptr : &bricks;
    futures.push_back(std::async(
        std::launch::async, [this, shard = shard, &key, &array, &isovalues,
                             restriction, parent_ctx, &eligible]() {
          std::optional<obs::ScopedTraceContext> scope;
          if (parent_ctx.valid()) scope.emplace(parent_ctx);
          return SubFetch(shard, key, array, isovalues, restriction,
                          eligible);
        }));
  }

  std::vector<ndp::PartialFetch> partials;
  partials.reserve(plan.size());
  std::exception_ptr shard_failure;
  for (size_t i = 0; i < futures.size(); ++i) {
    try {
      partials.push_back(futures[i].get());
    } catch (const BusyError&) {
      shard_failure = std::current_exception();
    } catch (const RpcError&) {
      throw;  // application error: identical on every replica
    } catch (const Error&) {
      shard_failure = std::current_exception();
    }
  }

  if (shard_failure != nullptr) {
    // Rung 3: some shard exhausted its replica chain. Any single live
    // node can still serve the *whole* dataset (every node is a full
    // replica), so trade the bandwidth win for availability before
    // falling back to the caller's baseline path.
    obs::DefaultRegistry().GetCounter("cluster_unrestricted_fallback_total")
        .Increment();
    obs::GlobalEventLog().Append("cluster.unrestricted_fallback",
                                 "key=" + key);
    bool rescued = false;
    // Usable nodes first; the rest only as a last resort (the view may
    // be stale, and a "dead" node that answers is better than no data).
    std::vector<int> rescue_order;
    for (int pass = 0; pass < 2; ++pass) {
      for (int sv = 0; sv < server_count(); ++sv) {
        if (eligible[static_cast<size_t>(sv)] == (pass == 0)) {
          rescue_order.push_back(sv);
        }
      }
    }
    for (const int sv : rescue_order) {
      if (rescued) break;
      try {
        obs::Span rescue_span("cluster.rescue");
        partials.clear();
        partials.push_back(servers_[static_cast<size_t>(sv)]->FetchPartial(
            key, array, isovalues, nullptr));
        rescued = true;
      } catch (const Error& e) {
        // Swallowed on purpose — the next server in the order is the
        // answer — but journaled so a fetch that exhausts every rescue
        // rung leaves a per-server trail of what refused it.
        obs::GlobalEventLog().Append(
            "cluster.rescue_failed",
            "server=" + std::to_string(sv) + " error=" + e.what());
      }
    }
    if (!rescued) std::rethrow_exception(shard_failure);
  }

  VIZNDP_CHECK_MSG(!partials.empty(), "sharded fetch produced no partials");
  // Merge. Scatter is idempotent for duplicate ids (shard halos overlap
  // on brick boundaries with identical values) and order-independent,
  // so any arrival order reconstructs the same field.
  const ndp::PartialFetch& first = partials.front();
  for (const ndp::PartialFetch& p : partials) {
    VIZNDP_CHECK_MSG(p.dims.nx == first.dims.nx &&
                         p.dims.ny == first.dims.ny &&
                         p.dims.nz == first.dims.nz &&
                         p.dtype == first.dtype,
                     "shards disagree on dataset shape — mixed replicas?");
  }
  if (geometry != nullptr) *geometry = first.geometry;
  contour::SparseField field(first.dims, first.dtype);
  obs::Span scatter_span("cluster.merge");
  for (const ndp::PartialFetch& p : partials) {
    field.Scatter(p.selection.ids, p.selection.values);
  }
  scatter_span.End();

  if (stats != nullptr) {
    *stats = ndp::NdpLoadStats{};
    stats->trace_id = obs::CurrentTraceContext().trace_id;
    for (const ndp::PartialFetch& p : partials) {
      stats->stored_bytes += p.stored_bytes;
      stats->raw_bytes = std::max(stats->raw_bytes, p.raw_bytes);
      stats->payload_bytes += p.payload_bytes;
      stats->reply_bytes += p.payload_bytes + 256;
      stats->bricks_read += p.bricks_read;
      stats->total_points = std::max(stats->total_points, p.total_points);
      // Parallel shards: the fleet's phase time is the slowest shard.
      stats->server_read_s = std::max(stats->server_read_s, p.server_read_s);
      stats->server_select_s =
          std::max(stats->server_select_s, p.server_select_s);
    }
    stats->bricks_total = first.bricks_total;
    stats->selected_points = static_cast<std::uint64_t>(field.ValidCount());
    stats->client_scatter_s = scatter_span.ElapsedSeconds();
    total_span.End();
    stats->client_s = total_span.ElapsedSeconds();
  }
  return field;
}

}  // namespace vizndp::cluster
