#include "cluster/health_monitor.h"

#include <string>
#include <utility>

#include "common/error.h"
#include "net/retry.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vizndp::cluster {

const char* NodeStateName(NodeState state) {
  switch (state) {
    case NodeState::kLive: return "live";
    case NodeState::kSuspect: return "suspect";
    case NodeState::kDead: return "dead";
    case NodeState::kRejoining: return "rejoining";
  }
  return "?";
}

std::string FleetView::ToString() const {
  std::string out;
  for (size_t i = 0; i < states.size(); ++i) {
    if (i > 0) out += ",";
    out += NodeStateName(states[i]);
  }
  return out;
}

HealthMonitor::HealthMonitor(
    std::vector<std::shared_ptr<ndp::NdpClient>> probes,
    HealthMonitorOptions options)
    : probes_(std::move(probes)),
      options_(options),
      cells_(probes_.size()) {
  VIZNDP_CHECK_MSG(!probes_.empty(), "health monitor needs probe clients");
  VIZNDP_CHECK_MSG(options_.suspect_after >= 1 && options_.dead_after >= 1 &&
                       options_.rejoin_after >= 1,
                   "health monitor thresholds must be >= 1");
}

HealthMonitor::~HealthMonitor() { Stop(); }

void HealthMonitor::SetViewSink(ViewSink sink) {
  std::lock_guard lk(mu_);
  sink_ = std::move(sink);
}

bool HealthMonitor::Advance(NodeCell& cell, bool healthy,
                            const HealthMonitorOptions& options) {
  const NodeState before = cell.state;
  switch (cell.state) {
    case NodeState::kLive:
      if (healthy) {
        if (cell.suspicion > 0) --cell.suspicion;
      } else if (++cell.suspicion >= options.suspect_after) {
        cell.state = NodeState::kSuspect;
      }
      break;
    case NodeState::kSuspect:
      if (healthy) {
        // Decay: one clean probe does not fully absolve a node that
        // failed several — it climbs back the way it fell.
        if (--cell.suspicion <= 0) {
          cell.suspicion = 0;
          cell.state = NodeState::kLive;
        }
      } else if (++cell.suspicion >= options.dead_after) {
        cell.state = NodeState::kDead;
      }
      break;
    case NodeState::kDead:
      if (healthy) {
        cell.state = NodeState::kRejoining;
        cell.healthy_streak = 1;
        if (cell.healthy_streak >= options.rejoin_after) {
          cell.state = NodeState::kLive;
          cell.suspicion = 0;
        }
      }
      break;
    case NodeState::kRejoining:
      if (healthy) {
        if (++cell.healthy_streak >= options.rejoin_after) {
          cell.state = NodeState::kLive;
          cell.suspicion = 0;
        }
      } else {
        // One bad probe mid-rejoin restarts the gate: flapping nodes
        // never make it back into placement.
        cell.state = NodeState::kDead;
        cell.healthy_streak = 0;
        cell.suspicion = options.dead_after;
      }
      break;
  }
  return cell.state != before;
}

bool HealthMonitor::ProbeOnce() {
  std::lock_guard probe_lk(probe_mu_);
  obs::Span sweep("cluster.probe");
  obs::Registry& reg = obs::DefaultRegistry();
  const std::uint64_t epoch = view() != nullptr ? view()->epoch : 0;
  bool changed = false;
  for (size_t i = 0; i < probes_.size(); ++i) {
    bool healthy = false;
    std::uint64_t node_id = 0;
    try {
      const ndp::NdpClient::HealthReport h = probes_[i]->Health(epoch);
      healthy = !h.draining;  // a draining node is leaving: treat as down
      node_id = h.node_id;
    } catch (const Error&) {
      healthy = false;  // unreachable / timed out / shed
    }
    reg.GetCounter("cluster_probe_total",
                   {{"result", healthy ? "ok" : "fail"}})
        .Increment();

    NodeCell& cell = cells_[i];
    const NodeState before = cell.state;
    if (healthy && node_id != 0) {
      if (cell.identity != 0 && node_id != cell.identity &&
          NodeUsable(cell.state)) {
        // The node restarted between two probes without ever looking
        // dead. It is up but fresh (empty caches, possibly mid-warmup):
        // walk it through the rejoin gate like any other returner.
        cell.state = NodeState::kRejoining;
        cell.healthy_streak = 0;
        cell.suspicion = 0;
      }
      cell.identity = node_id;
    }
    Advance(cell, healthy, options_);

    // Journal the probes that carry information: failures of a node not
    // yet given up on, and successes of a node not fully trusted. The
    // healthy steady state stays quiet.
    const bool interesting = healthy ? before != NodeState::kLive
                                     : before != NodeState::kDead;
    if (interesting) {
      obs::GlobalEventLog().Append(
          "cluster.probe", "server=" + std::to_string(i) +
                               " result=" + (healthy ? "ok" : "fail") +
                               " state=" + NodeStateName(cell.state));
    }
    if (cell.state != before) {
      changed = true;
      reg.GetCounter("cluster_node_state_changes_total",
                     {{"to", NodeStateName(cell.state)}})
          .Increment();
      if (cell.state == NodeState::kLive &&
          (before == NodeState::kDead || before == NodeState::kRejoining)) {
        reg.GetCounter("cluster_rejoin_total").Increment();
        obs::GlobalEventLog().Append("cluster.rejoin",
                                     "server=" + std::to_string(i));
      }
    }
  }
  if (changed) Publish();
  return changed;
}

void HealthMonitor::Publish() {
  auto next = std::make_shared<FleetView>();
  next->states.reserve(cells_.size());
  for (const NodeCell& cell : cells_) next->states.push_back(cell.state);
  ViewSink sink;
  {
    std::lock_guard lk(mu_);
    next->epoch = ++epoch_;
    view_ = next;
    sink = sink_;
  }
  obs::DefaultRegistry().GetGauge("cluster_view_epoch")
      .Set(static_cast<double>(next->epoch));
  obs::GlobalEventLog().Append(
      "cluster.view_change",
      "epoch=" + std::to_string(next->epoch) + " states=" + next->ToString());
  if (sink) sink(next);
}

std::shared_ptr<const FleetView> HealthMonitor::view() const {
  std::lock_guard lk(mu_);
  return view_;
}

bool HealthMonitor::running() const {
  std::lock_guard lk(run_mu_);
  return running_;
}

std::chrono::microseconds HealthMonitor::JitteredPeriod(
    std::uint64_t tick) const {
  const auto base =
      std::chrono::duration_cast<std::chrono::microseconds>(options_.period);
  // Seeded jitter: uniform in [1 - j, 1 + j] as a pure function of
  // (seed, tick), so a fixed-seed run sleeps the same schedule every
  // time and distinct monitors decorrelate.
  const std::uint64_t r = net::MixBits(options_.seed ^ (tick * 0x9E3779B97F4A7C15ull));
  const double u = static_cast<double>(r >> 11) / 9007199254740992.0;  // [0,1)
  const double scale = 1.0 + options_.jitter_frac * (2.0 * u - 1.0);
  auto out = std::chrono::microseconds(
      static_cast<std::int64_t>(static_cast<double>(base.count()) * scale));
  return out.count() > 0 ? out : std::chrono::microseconds(1);
}

void HealthMonitor::Start() {
  {
    std::lock_guard lk(run_mu_);
    if (running_) return;
    running_ = true;
  }
  {
    // Epoch 1: everyone starts live; the first sweep corrects that
    // within one period if reality disagrees.
    std::lock_guard probe_lk(probe_mu_);
    Publish();
  }
  thread_ = std::thread([this] { Loop(); });
}

void HealthMonitor::Stop() {
  {
    std::lock_guard lk(run_mu_);
    if (!running_) return;
    running_ = false;
  }
  run_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void HealthMonitor::Loop() {
  std::uint64_t tick = 0;
  for (;;) {
    {
      std::unique_lock lk(run_mu_);
      run_cv_.wait_for(lk, JitteredPeriod(++tick),
                       [this] { return !running_; });
      if (!running_) return;
    }
    ProbeOnce();
  }
}

}  // namespace vizndp::cluster
