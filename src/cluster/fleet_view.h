// Epoch-stamped cluster membership snapshot, published by HealthMonitor
// and consumed by ShardedNdpClient.
//
// The view is immutable once published: readers hold a
// shared_ptr<const FleetView> for the duration of one fetch, so placement
// decisions inside that fetch are self-consistent and no lock is ever
// held across an RPC. Epochs are strictly increasing; a reader comparing
// two views can always tell which is newer.
//
// Per-node states form the self-healing lifecycle:
//
//   live ──fail×S──► suspect ──fail×D──► dead ──ok──► rejoining ──ok×K──► live
//     ▲                 │                                  │
//     └────ok (decay)───┘             fail ────────────────┘ (back to dead)
//
// `live` and `suspect` nodes are *usable* (suspect only demotes a node to
// the back of replica chains); `dead` and `rejoining` nodes are excluded
// from placement entirely until the monitor has seen K consecutive
// healthy probes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vizndp::cluster {

enum class NodeState : std::uint8_t {
  kLive = 0,
  kSuspect = 1,
  kDead = 2,
  kRejoining = 3,
};

const char* NodeStateName(NodeState state);

// Usable = may appear in a replica chain. Suspect nodes stay usable
// (they answered recently; they are demoted, not dropped) — only dead
// and not-yet-readmitted nodes fall out of placement.
inline bool NodeUsable(NodeState state) {
  return state == NodeState::kLive || state == NodeState::kSuspect;
}

struct FleetView {
  std::uint64_t epoch = 0;
  std::vector<NodeState> states;  // index = server id

  int UsableCount() const {
    int n = 0;
    for (const NodeState s : states) {
      if (NodeUsable(s)) ++n;
    }
    return n;
  }

  // "live,suspect,dead" — journal/debug rendering.
  std::string ToString() const;
};

}  // namespace vizndp::cluster
