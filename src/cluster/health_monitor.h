// Background cluster self-healing: a monitor thread probes every node's
// ndp.health on a jittered timer and drives the per-node state machine
// in fleet_view.h (live → suspect → dead → rejoining → live) with
// suspicion counters that build on failure and decay on success — one
// slow probe demotes, it does not excommunicate.
//
// Every state change publishes a fresh epoch-stamped FleetView to the
// sink (normally ShardedNdpClient::SetFleetView), which recomputes the
// rendezvous placement over the usable nodes only: a dead node's bricks
// re-spread across the survivors, and a restarted node is re-admitted
// after `rejoin_after` consecutive healthy probes. Node identity in the
// health reply catches silent restarts (kill+restart inside one probe
// period): a changed identity walks the node back through the rejoin
// gate instead of trusting it blindly.
//
// The monitor owns its *own* probe clients — probes never share a
// connection (or an rpc::Client call slot) with data fetches, so a
// healthy fleet pays nothing on the fetch path for being watched.
//
// Audit trail: cluster_probe_total{result}, cluster_node_state_changes_
// total{to}, cluster_rejoin_total, the cluster_view_epoch gauge, and
// cluster.probe / cluster.view_change / cluster.rejoin journal events —
// exactly one view_change event per published epoch.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/fleet_view.h"
#include "ndp/ndp_client.h"

namespace vizndp::cluster {

struct HealthMonitorOptions {
  // Probe sweep interval; each sleep is jittered by ±jitter_frac so N
  // monitors with different seeds never sweep in lockstep.
  std::chrono::milliseconds period{100};
  double jitter_frac = 0.25;
  std::uint64_t seed = 1;
  // Consecutive failed probes before live → suspect, and total suspicion
  // before suspect → dead. Healthy probes decay suspicion by one.
  int suspect_after = 1;
  int dead_after = 3;
  // Consecutive healthy probes before a dead node is re-admitted.
  int rejoin_after = 2;
};

class HealthMonitor {
 public:
  using ViewSink = std::function<void(std::shared_ptr<const FleetView>)>;

  // `probes[i]` must talk to server i of the fleet the sink's client
  // routes over, on its own dedicated connection, with a finite
  // call_timeout (a probe of a dead node must fail, not hang).
  explicit HealthMonitor(std::vector<std::shared_ptr<ndp::NdpClient>> probes,
                         HealthMonitorOptions options = {});
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // Receives every published view, including the initial all-live one.
  // Set before Start().
  void SetViewSink(ViewSink sink);

  // Publishes the initial view (epoch 1, all nodes live) and starts the
  // probe thread. Stop() is idempotent and implied by destruction.
  void Start();
  void Stop();
  bool running() const;

  // Latest published view; never null after Start().
  std::shared_ptr<const FleetView> view() const;

  // One synchronous probe sweep over all nodes; returns true when the
  // sweep published a new view. The probe thread calls this on its
  // timer; tests and the chaos harness may call it instead of Start()
  // to drive the state machine deterministically (not concurrently with
  // a running probe thread).
  bool ProbeOnce();

  // Per-node state-machine cell, exposed for unit tests.
  struct NodeCell {
    NodeState state = NodeState::kLive;
    int suspicion = 0;            // failure pressure, decays on success
    int healthy_streak = 0;       // consecutive ok probes while rejoining
    std::uint64_t identity = 0;   // last node_id seen in a health reply
  };

  // Applies one probe result to a cell; returns true when the state
  // changed. Pure state machine — no I/O, no registry.
  static bool Advance(NodeCell& cell, bool healthy,
                      const HealthMonitorOptions& options);

 private:
  void Publish();
  void Loop();
  std::chrono::microseconds JitteredPeriod(std::uint64_t tick) const;

  std::vector<std::shared_ptr<ndp::NdpClient>> probes_;
  HealthMonitorOptions options_;

  std::mutex probe_mu_;  // serializes ProbeOnce (cells_ is its state)
  std::vector<NodeCell> cells_;

  mutable std::mutex mu_;  // guards view_, sink_, epoch_
  std::shared_ptr<const FleetView> view_;
  ViewSink sink_;
  std::uint64_t epoch_ = 0;

  mutable std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace vizndp::cluster
