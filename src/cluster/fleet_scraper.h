// Fleet-wide metric aggregation: a scraper thread pulls ndp.metrics +
// ndp.health from every node on a jittered timer (the HealthMonitor
// pattern — dedicated per-node channels, never the data path), computes
// per-node counter rates since the previous sweep, merges the per-node
// snapshots into one fleet view (obs/merge.h), evaluates the SLO
// tracker against it, and publishes the whole thing as an epoch-stamped
// immutable FleetSnapshot. `vizndp_tool top` renders these; scripts
// consume the ToJson/ToProm forms.
//
// Two control loops close here:
//   - slow-node outlier detection: a node whose windowed p95 (its own
//     ndp_select_seconds_window, or the scrape RTT when the node serves
//     too little to have one) exceeds slow_factor x the fleet median is
//     flagged — edge-triggered cluster_slow_node_total{node} +
//     "cluster.slow_node" journal pair, cleared symmetrically.
//   - hedge feeding: the fleet-merged windowed p95 of the sub-fetch /
//     select tail is pushed to ShardedNdpClient::SetHedgeHint, replacing
//     the hedger's process-local lifetime histogram with a fleet-wide
//     sliding window.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ndp/ndp_client.h"
#include "obs/merge.h"
#include "obs/slo.h"

namespace vizndp::cluster {

struct FleetScraperOptions {
  // Sweep interval; jittered like HealthMonitor so N scrapers with
  // different seeds never hit the fleet in lockstep.
  std::chrono::milliseconds period{1000};
  double jitter_frac = 0.25;
  std::uint64_t seed = 1;
  // Slow-node rule: windowed p95 > slow_factor x fleet median p95, with
  // at least slow_min_samples observations behind the node's window.
  double slow_factor = 3.0;
  std::uint64_t slow_min_samples = 8;
  // Minimum fleet-merged window observations before the hedge hint is
  // pushed (mirrors ShardedClientOptions::min_hedge_samples).
  std::uint64_t hedge_min_samples = 16;
  // Objectives handed to the embedded SloTracker; empty = no SLOs.
  std::vector<obs::SloObjective> objectives;
};

// Default fleet objectives for `vizndp_tool top` and the chaos harness:
// pre-filter p99 <= p99_ms, and scrape availability (failed scrapes /
// attempted scrapes) <= max_error_ratio, both with `window_s`-scaled
// burn windows so tests and short chaos schedules converge quickly.
std::vector<obs::SloObjective> DefaultFleetObjectives(
    double p99_ms = 250.0, double max_error_ratio = 0.02,
    double window_s = 30.0);

class FleetScraper {
 public:
  struct NodeSample {
    int node = -1;
    bool reachable = false;
    double scrape_seconds = 0;  // RPC round-trip cost of this scrape
    ndp::NdpClient::HealthReport health;          // valid iff reachable
    std::vector<obs::MetricSnapshot> metrics;     // raw node scrape
    // Counter rates (events/second since the previous sweep), keyed by
    // canonical name; empty on the first sweep and while unreachable.
    std::map<std::string, double> rates;
    // Windowed pre-filter quantiles as the node reported them.
    double window_p50 = 0, window_p95 = 0, window_p99 = 0;
    std::uint64_t window_count = 0;
    // rpc error fraction since the previous sweep.
    double error_ratio = 0;
    bool slow = false;  // flagged by the outlier rule this sweep
  };

  struct FleetSnapshot {
    std::uint64_t epoch = 0;  // one per sweep, monotonic
    double wall_s = 0;
    double mono_s = 0;
    std::vector<NodeSample> nodes;
    // MergeSnapshots over every reachable node + the scraper's own
    // registry (scrape counters, per-node RTT windows), fleet policy.
    std::vector<obs::MetricSnapshot> merged;
    std::vector<obs::SloStatus> slo;
    int reachable = 0;
  };

  using Sink = std::function<void(std::shared_ptr<const FleetSnapshot>)>;
  using HedgeSink = std::function<void(double seconds)>;

  // `nodes[i]` must talk to fleet node i on its own dedicated channel
  // with a finite call_timeout (scraping a dead node must fail fast,
  // not hang the sweep).
  explicit FleetScraper(std::vector<std::shared_ptr<ndp::NdpClient>> nodes,
                        FleetScraperOptions options = {});
  ~FleetScraper();

  FleetScraper(const FleetScraper&) = delete;
  FleetScraper& operator=(const FleetScraper&) = delete;

  // Receives every published snapshot. Set before Start().
  void SetSink(Sink sink);
  // Receives the fleet-merged windowed select p95 once it has
  // hedge_min_samples behind it — wire to ShardedNdpClient::SetHedgeHint.
  void SetHedgeSink(HedgeSink sink);

  void Start();
  void Stop();
  bool running() const;

  // One synchronous sweep; the scrape thread calls this on its timer.
  // Tests and `top --once` call it directly instead of Start().
  std::shared_ptr<const FleetSnapshot> ScrapeOnce();

  // Latest published snapshot (null before the first sweep).
  std::shared_ptr<const FleetSnapshot> latest() const;

  // Scraper-local metrics: fleet_scrape_total{node},
  // fleet_scrape_failed_total{node}, fleet_scrape_seconds{node}
  // (windowed). Merged into every FleetSnapshot, so the availability
  // objective in DefaultFleetObjectives sees scrape failures as error
  // events.
  obs::Registry& metrics() { return metrics_; }

  obs::SloTracker& slo() { return slo_; }

  int node_count() const { return static_cast<int>(nodes_.size()); }

 private:
  void Loop();
  std::chrono::microseconds JitteredPeriod(std::uint64_t tick) const;

  std::vector<std::shared_ptr<ndp::NdpClient>> nodes_;
  FleetScraperOptions options_;
  obs::Registry metrics_;
  obs::SloTracker slo_;

  std::mutex scrape_mu_;  // serializes ScrapeOnce (prev-sweep state)
  std::uint64_t epoch_ = 0;
  std::vector<std::map<std::string, double>> prev_counters_;
  std::vector<double> prev_mono_;   // per-node last-scrape time, 0 = none
  std::vector<bool> slow_;          // edge-trigger state per node

  mutable std::mutex mu_;  // guards latest_, sinks
  std::shared_ptr<const FleetSnapshot> latest_;
  Sink sink_;
  HedgeSink hedge_sink_;

  mutable std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool running_ = false;
  std::thread thread_;
};

// Renderers shared by `vizndp_tool top` and tests.
std::string FleetSnapshotJson(const FleetScraper::FleetSnapshot& snapshot);
// Merged Prometheus exposition: every node's series with a node="<i>"
// label, the scraper's own registry unlabeled, one # TYPE per family.
std::string FleetSnapshotProm(const FleetScraper::FleetSnapshot& snapshot);
// The dashboard table (one header + one row per node + a fleet row).
std::string FleetSnapshotText(const FleetScraper::FleetSnapshot& snapshot);

}  // namespace vizndp::cluster
