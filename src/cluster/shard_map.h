// Placement for the sharded NDP serving tier: which server owns which
// slice of a dataset, and where its replicas live.
//
// The unit of placement is the *shard* — a deterministic 1/Nth of a
// dataset's brick space (or the whole blob for unbricked arrays). Shard s
// is homed on server s, so primaries are perfectly balanced by
// construction; the rest of its replica chain is the rendezvous
// (highest-random-weight) ranking of the remaining servers, so losing
// any one server spreads its load evenly over the survivors instead of
// dumping it on a single successor, and the chain never changes when an
// unrelated server joins or leaves.
//
// Bricks map to shards by rendezvous hashing over (key, brick, shard):
// stable under key renames of *other* datasets, uniform without any
// divisibility assumptions, and computable by every client independently
// — there is no placement service to query or keep consistent.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vizndp::cluster {

class ShardMap {
 public:
  // `servers` = cluster size N (one shard homed per server); `replicas` =
  // copies per shard, clamped to [1, N].
  ShardMap(int servers, int replicas);

  int servers() const { return servers_; }
  int replicas() const { return replicas_; }

  // Stable 64-bit dataset hash; the salt every placement decision mixes
  // in, so two datasets spread their bricks differently.
  static std::uint64_t KeyHash(std::string_view key);

  // Every placement call takes an optional eligibility mask (index =
  // server id; nullptr, wrong-sized, or all-false = every server
  // eligible). Passing the usable set of a FleetView recomputes the
  // rendezvous placement over the live nodes only: an ineligible
  // server's bricks re-spread evenly across the eligible ones (the HRW
  // property — removing a candidate only moves the items it owned), and
  // chains shrink rather than route through dead nodes.

  // Owning shard for one brick of `key` (rendezvous over the eligible
  // shards).
  int ShardOfBrick(std::uint64_t key_hash, std::int64_t brick,
                   const std::vector<bool>* eligible = nullptr) const;

  // Owning shard for an unbricked (whole-blob) dataset.
  int ShardOfKey(std::string_view key,
                 const std::vector<bool>* eligible = nullptr) const;

  // Per-shard sorted brick lists for a dataset with `brick_count` bricks:
  // Partition(...)[s] is shard s's slice. Slices are disjoint and cover
  // [0, brick_count); a slice may be empty for tiny datasets, and is
  // always empty for an ineligible server.
  std::vector<std::vector<std::int64_t>> Partition(
      std::string_view key, std::int64_t brick_count,
      const std::vector<bool>* eligible = nullptr) const;

  // Replica chain for shard s: servers to try in order, starting with the
  // home server s (when eligible), then the rendezvous ranking of the
  // other eligible servers. Size is min(replicas(), eligible count).
  std::vector<int> ReplicaChain(int shard,
                                const std::vector<bool>* eligible = nullptr)
      const;

  // Every server a replica of shard s lives on must hold the shard's
  // data. With brick-granular placement that means each server stores
  // any brick whose shard chain includes it; the testbed and the tool
  // load full datasets on every server, which trivially satisfies this.

 private:
  int servers_;
  int replicas_;
};

}  // namespace vizndp::cluster
