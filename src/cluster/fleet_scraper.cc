#include "cluster/fleet_scraper.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "net/retry.h"
#include "obs/event_log.h"
#include "obs/windowed.h"

namespace vizndp::cluster {

namespace {

std::string NodeTag(int node) { return std::to_string(node); }

// Counter families the per-node error ratio is computed over: dispatch
// errors plus overload sheds, against everything dispatched.
constexpr const char* kErrorFamilies[] = {"rpc_errors_total",
                                          "rpc_busy_rejected_total"};

// Sums one counter family (all label series) in a live snapshot.
double SumFamily(const std::vector<obs::MetricSnapshot>& snapshot,
                 const std::string& family) {
  double sum = 0;
  std::string base;
  obs::Labels labels;
  for (const obs::MetricSnapshot& s : snapshot) {
    if (s.kind != obs::MetricSnapshot::Kind::kCounter) continue;
    obs::ParseCanonicalName(s.name, &base, &labels);
    if (base == family) sum += s.value;
  }
  return sum;
}

// Same over a previous sweep's canonical-name -> value map.
double SumFamilyPrev(const std::map<std::string, double>& counters,
                     const std::string& family) {
  double sum = 0;
  std::string base;
  obs::Labels labels;
  for (const auto& [name, value] : counters) {
    obs::ParseCanonicalName(name, &base, &labels);
    if (base == family) sum += value;
  }
  return sum;
}

}  // namespace

std::vector<obs::SloObjective> DefaultFleetObjectives(double p99_ms,
                                                      double max_error_ratio,
                                                      double window_s) {
  std::vector<obs::SloObjective> out;
  obs::SloObjective latency;
  latency.name = "select-p99";
  latency.latency_histogram = "ndp_select_seconds";
  latency.latency_threshold_s = p99_ms / 1e3;
  latency.max_bad_ratio = 0.01;
  latency.short_window_s = window_s;
  latency.long_window_s = 5 * window_s;
  latency.budget_window_s = 60 * window_s;
  out.push_back(std::move(latency));
  obs::SloObjective avail;
  avail.name = "availability";
  avail.error_counter = "fleet_scrape_failed_total";
  avail.total_counter = "fleet_scrape_total";
  avail.max_bad_ratio = max_error_ratio;
  avail.short_window_s = window_s;
  avail.long_window_s = 5 * window_s;
  avail.budget_window_s = 60 * window_s;
  out.push_back(std::move(avail));
  return out;
}

FleetScraper::FleetScraper(std::vector<std::shared_ptr<ndp::NdpClient>> nodes,
                           FleetScraperOptions options)
    : nodes_(std::move(nodes)),
      options_(std::move(options)),
      slo_(options_.objectives),
      prev_counters_(nodes_.size()),
      prev_mono_(nodes_.size(), 0.0),
      slow_(nodes_.size(), false) {
  VIZNDP_CHECK_MSG(!nodes_.empty(), "fleet scraper needs nodes");
}

FleetScraper::~FleetScraper() { Stop(); }

void FleetScraper::SetSink(Sink sink) {
  std::lock_guard lk(mu_);
  sink_ = std::move(sink);
}

void FleetScraper::SetHedgeSink(HedgeSink sink) {
  std::lock_guard lk(mu_);
  hedge_sink_ = std::move(sink);
}

std::shared_ptr<const FleetScraper::FleetSnapshot> FleetScraper::latest()
    const {
  std::lock_guard lk(mu_);
  return latest_;
}

std::shared_ptr<const FleetScraper::FleetSnapshot>
FleetScraper::ScrapeOnce() {
  std::lock_guard sweep_lk(scrape_mu_);
  auto snap = std::make_shared<FleetSnapshot>();
  snap->epoch = ++epoch_;
  snap->wall_s = obs::WallTimeSeconds();
  snap->mono_s = obs::ProcessUptimeSeconds();

  for (size_t i = 0; i < nodes_.size(); ++i) {
    NodeSample ns;
    ns.node = static_cast<int>(i);
    const obs::Labels node_label = {{"node", NodeTag(ns.node)}};
    metrics_.GetCounter("fleet_scrape_total", node_label).Increment();
    const auto t0 = std::chrono::steady_clock::now();
    try {
      ns.metrics = nodes_[i]->ScrapeMetrics();
      ns.health = nodes_[i]->Health();
      ns.reachable = true;
    } catch (const std::exception&) {
      ns.reachable = false;
    }
    ns.scrape_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    metrics_
        .GetWindowedHistogram("fleet_scrape_seconds", obs::LatencyBounds(),
                              node_label)
        .Observe(ns.scrape_seconds);
    if (!ns.reachable) {
      metrics_.GetCounter("fleet_scrape_failed_total", node_label)
          .Increment();
    } else {
      snap->reachable++;
      if (ns.health.window_present) {
        ns.window_p50 = ns.health.window_p50;
        ns.window_p95 = ns.health.window_p95;
        ns.window_p99 = ns.health.window_p99;
        ns.window_count = ns.health.window_count;
      }
      // Rates and the error ratio: deltas against this node's previous
      // sweep, clamped at zero so a restart (counter reset) reads as
      // quiet, not as a negative storm.
      const double dt = snap->mono_s - prev_mono_[i];
      std::map<std::string, double> counters;
      for (const obs::MetricSnapshot& s : ns.metrics) {
        if (s.kind == obs::MetricSnapshot::Kind::kCounter) {
          counters[s.name] = s.value;
        }
      }
      if (prev_mono_[i] > 0 && dt > 0) {
        for (const auto& [name, value] : counters) {
          const auto prev = prev_counters_[i].find(name);
          const double before =
              prev == prev_counters_[i].end() ? 0.0 : prev->second;
          ns.rates[name] = std::max(0.0, value - before) / dt;
        }
        double derr = 0;
        for (const char* family : kErrorFamilies) {
          derr += std::max(0.0, SumFamily(ns.metrics, family) -
                                    SumFamilyPrev(prev_counters_[i], family));
        }
        const double dtotal =
            std::max(0.0, SumFamily(ns.metrics, "rpc_requests_total") -
                              SumFamilyPrev(prev_counters_[i],
                                            "rpc_requests_total"));
        ns.error_ratio = dtotal > 0 ? derr / dtotal : 0;
      }
      prev_counters_[i] = std::move(counters);
      prev_mono_[i] = snap->mono_s;
    }
    snap->nodes.push_back(std::move(ns));
  }

  // Slow-node outliers: each node's windowed p95 against the fleet
  // median. The node's own select window is the primary signal; the
  // scrape RTT window stands in when the node serves too little traffic
  // to have one (and catches network-path slowness the node cannot see
  // from inside).
  std::vector<double> signals(nodes_.size(), 0.0);
  std::vector<double> population;
  for (const NodeSample& ns : snap->nodes) {
    if (!ns.reachable) continue;
    double signal = 0;
    if (ns.window_count >= options_.slow_min_samples) {
      signal = ns.window_p95;
    } else {
      const obs::MetricSnapshot rtt =
          metrics_
              .GetWindowedHistogram("fleet_scrape_seconds",
                                    obs::LatencyBounds(),
                                    {{"node", NodeTag(ns.node)}})
              .WindowSnapshot();
      if (rtt.count >= options_.slow_min_samples) {
        signal = obs::SnapshotQuantile(rtt, 0.95);
      }
    }
    signals[static_cast<size_t>(ns.node)] = signal;
    if (signal > 0) population.push_back(signal);
  }
  double median = 0;
  if (population.size() >= 2) {
    std::sort(population.begin(), population.end());
    median = population[population.size() / 2];
  }
  for (NodeSample& ns : snap->nodes) {
    const size_t i = static_cast<size_t>(ns.node);
    const bool now_slow = ns.reachable && median > 0 && signals[i] > 0 &&
                          signals[i] > options_.slow_factor * median;
    if (now_slow && !slow_[i]) {
      // Edge-triggered, audited pair: one counter increment per one
      // journal event (chaos kAuditPairs holds the 1:1).
      obs::DefaultRegistry()
          .GetCounter("cluster_slow_node_total",
                      {{"node", NodeTag(ns.node)}})
          .Increment();
      std::ostringstream detail;
      detail << "node=" << ns.node << " p95_s=" << signals[i]
             << " fleet_median_s=" << median;
      obs::GlobalEventLog().Append("cluster.slow_node", detail.str());
    }
    slow_[i] = now_slow;
    ns.slow = now_slow;
  }

  // Fleet merge: the scraper's own registry plus every reachable node,
  // so scrape failures are first-class error events for the SLO layer.
  std::vector<std::vector<obs::MetricSnapshot>> sources;
  sources.push_back(metrics_.Snapshot());
  for (const NodeSample& ns : snap->nodes) {
    if (ns.reachable) sources.push_back(ns.metrics);
  }
  obs::MergeOptions merge_options;
  merge_options.gauge_policy = obs::DefaultFleetGaugePolicy;
  snap->merged = obs::MergeSnapshots(sources, merge_options);

  snap->slo = slo_.Evaluate(snap->merged, snap->mono_s);

  HedgeSink hedge;
  Sink sink;
  {
    std::lock_guard lk(mu_);
    latest_ = snap;
    hedge = hedge_sink_;
    sink = sink_;
  }
  // Hedge feeding: the fleet-merged windowed select p95, once warm.
  if (hedge) {
    if (const obs::MetricSnapshot* w = obs::FindMetric(
            snap->merged, obs::WindowedName("ndp_select_seconds"))) {
      if (w->count >= options_.hedge_min_samples) {
        hedge(obs::SnapshotQuantile(*w, 0.95));
      }
    }
  }
  if (sink) sink(snap);
  return snap;
}

std::chrono::microseconds FleetScraper::JitteredPeriod(
    std::uint64_t tick) const {
  const auto base =
      std::chrono::duration_cast<std::chrono::microseconds>(options_.period);
  // Same seeded jitter as HealthMonitor: pure in (seed, tick), so a
  // fixed-seed run sleeps the same schedule every time and distinct
  // scrapers decorrelate.
  const std::uint64_t r =
      net::MixBits(options_.seed ^ (tick * 0x9E3779B97F4A7C15ull));
  const double u = static_cast<double>(r >> 11) / 9007199254740992.0;
  const double scale = 1.0 + options_.jitter_frac * (2.0 * u - 1.0);
  auto out = std::chrono::microseconds(
      static_cast<std::int64_t>(static_cast<double>(base.count()) * scale));
  return out.count() > 0 ? out : std::chrono::microseconds(1);
}

void FleetScraper::Start() {
  {
    std::lock_guard lk(run_mu_);
    if (running_) return;
    running_ = true;
  }
  thread_ = std::thread([this] { Loop(); });
}

void FleetScraper::Stop() {
  {
    std::lock_guard lk(run_mu_);
    if (!running_) return;
    running_ = false;
  }
  run_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool FleetScraper::running() const {
  std::lock_guard lk(run_mu_);
  return running_;
}

void FleetScraper::Loop() {
  std::uint64_t tick = 0;
  for (;;) {
    {
      std::unique_lock lk(run_mu_);
      run_cv_.wait_for(lk, JitteredPeriod(++tick),
                       [this] { return !running_; });
      if (!running_) return;
    }
    ScrapeOnce();
  }
}

namespace {

// Fleet-merged windowed select quantiles, or zeros while cold.
struct FleetWindow {
  std::uint64_t count = 0;
  double seconds = 0, p50 = 0, p95 = 0, p99 = 0;
};

FleetWindow MergedWindow(const FleetScraper::FleetSnapshot& snapshot) {
  FleetWindow w;
  if (const obs::MetricSnapshot* m = obs::FindMetric(
          snapshot.merged, obs::WindowedName("ndp_select_seconds"))) {
    w.count = m->count;
    w.seconds = m->window_seconds;
    w.p50 = obs::SnapshotQuantile(*m, 0.50);
    w.p95 = obs::SnapshotQuantile(*m, 0.95);
    w.p99 = obs::SnapshotQuantile(*m, 0.99);
  }
  return w;
}

double Ms(double seconds) { return seconds * 1e3; }

}  // namespace

std::string FleetSnapshotJson(const FleetScraper::FleetSnapshot& snapshot) {
  std::ostringstream out;
  // Full double precision: consumers diff wall_s between two snapshots
  // to compute rates, and six significant digits would round an epoch
  // timestamp to the nearest ~thousand seconds.
  out << std::setprecision(15);
  out << "{\"epoch\":" << snapshot.epoch << ",\"wall_s\":" << snapshot.wall_s
      << ",\"mono_s\":" << snapshot.mono_s
      << ",\"reachable\":" << snapshot.reachable
      << ",\"nodes\":" << snapshot.nodes.size() << ",\"per_node\":[";
  bool first = true;
  for (const FleetScraper::NodeSample& ns : snapshot.nodes) {
    if (!first) out << ",";
    first = false;
    out << "{\"node\":" << ns.node
        << ",\"reachable\":" << (ns.reachable ? "true" : "false")
        << ",\"scrape_s\":" << ns.scrape_seconds;
    if (ns.reachable) {
      out << ",\"draining\":" << (ns.health.draining ? "true" : "false")
          << ",\"inflight\":" << ns.health.inflight
          << ",\"mem_in_use\":" << ns.health.mem_in_use
          << ",\"mem_limit\":" << ns.health.mem_limit
          << ",\"node_id\":" << ns.health.node_id
          << ",\"view_epoch\":" << ns.health.view_epoch
          << ",\"uptime_s\":" << ns.health.uptime_s
          << ",\"error_ratio\":" << ns.error_ratio
          << ",\"slow\":" << (ns.slow ? "true" : "false");
      if (ns.health.window_present) {
        out << ",\"window\":{\"seconds\":" << ns.health.window_seconds
            << ",\"count\":" << ns.window_count << ",\"p50_s\":" << ns.window_p50
            << ",\"p95_s\":" << ns.window_p95 << ",\"p99_s\":" << ns.window_p99
            << "}";
      }
      if (ns.health.scrub_present) {
        out << ",\"scrub\":{\"running\":"
            << (ns.health.scrub_running ? "true" : "false")
            << ",\"passes\":" << ns.health.scrub_passes
            << ",\"corrupt_found\":" << ns.health.scrub_corrupt_found
            << ",\"quarantined\":" << ns.health.scrub_quarantined << "}";
      }
    }
    out << "}";
  }
  const FleetWindow fleet = MergedWindow(snapshot);
  out << "],\"fleet_window\":{\"seconds\":" << fleet.seconds
      << ",\"count\":" << fleet.count << ",\"p50_s\":" << fleet.p50
      << ",\"p95_s\":" << fleet.p95 << ",\"p99_s\":" << fleet.p99
      << "},\"slo\":[";
  first = true;
  for (const obs::SloStatus& s : snapshot.slo) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << obs::JsonEscape(s.name)
        << "\",\"budget_remaining\":" << s.budget_remaining
        << ",\"burn_short\":" << s.burn_short
        << ",\"burn_long\":" << s.burn_long
        << ",\"total_events\":" << s.total_events
        << ",\"alerting\":" << (s.alerting ? "true" : "false") << "}";
  }
  out << "]}";
  return out.str();
}

std::string FleetSnapshotProm(const FleetScraper::FleetSnapshot& snapshot) {
  // Per-node series carry node="<i>"; the scraper's own families
  // (fleet_scrape_*) already label by node and pass through from the
  // merge untouched, since no node exports them.
  std::vector<obs::MetricSnapshot> all;
  for (const FleetScraper::NodeSample& ns : snapshot.nodes) {
    if (!ns.reachable) continue;
    std::vector<obs::MetricSnapshot> labeled =
        obs::WithLabel(ns.metrics, "node", NodeTag(ns.node));
    all.insert(all.end(), std::make_move_iterator(labeled.begin()),
               std::make_move_iterator(labeled.end()));
  }
  std::string base;
  obs::Labels labels;
  for (const obs::MetricSnapshot& s : snapshot.merged) {
    obs::ParseCanonicalName(s.name, &base, &labels);
    if (base.rfind("fleet_scrape", 0) == 0) all.push_back(s);
  }
  return obs::SnapshotToProm(all);
}

std::string FleetSnapshotText(const FleetScraper::FleetSnapshot& snapshot) {
  std::ostringstream out;
  out << "fleet epoch " << snapshot.epoch << "  reachable "
      << snapshot.reachable << "/" << snapshot.nodes.size() << std::fixed
      << std::setprecision(1) << "  wall " << snapshot.wall_s << "\n";
  out << std::left << std::setw(5) << "NODE" << std::setw(7) << "STATE"
      << std::right << std::setw(7) << "EPOCH" << std::setw(7) << "INFL"
      << std::setw(7) << "MEM%" << std::setw(9) << "P50ms" << std::setw(9)
      << "P95ms" << std::setw(9) << "P99ms" << std::setw(8) << "ERR%"
      << std::setw(7) << "SCRUB" << "\n";
  for (const FleetScraper::NodeSample& ns : snapshot.nodes) {
    out << std::left << std::setw(5) << ns.node;
    const char* state = !ns.reachable  ? "down"
                        : ns.slow      ? "slow"
                        : ns.health.draining ? "drain"
                                             : "ok";
    out << std::setw(7) << state << std::right;
    if (!ns.reachable) {
      out << std::setw(7) << "-" << std::setw(7) << "-" << std::setw(7) << "-"
          << std::setw(9) << "-" << std::setw(9) << "-" << std::setw(9) << "-"
          << std::setw(8) << "-" << std::setw(7) << "-" << "\n";
      continue;
    }
    out << std::setw(7) << ns.health.view_epoch << std::setw(7)
        << ns.health.inflight;
    if (ns.health.mem_limit > 0) {
      out << std::setw(6) << std::setprecision(0)
          << 100.0 * static_cast<double>(ns.health.mem_in_use) /
                 static_cast<double>(ns.health.mem_limit)
          << "%";
    } else {
      out << std::setw(7) << "-";
    }
    out << std::setprecision(2);
    if (ns.health.window_present && ns.window_count > 0) {
      out << std::setw(9) << Ms(ns.window_p50) << std::setw(9)
          << Ms(ns.window_p95) << std::setw(9) << Ms(ns.window_p99);
    } else {
      out << std::setw(9) << "-" << std::setw(9) << "-" << std::setw(9) << "-";
    }
    out << std::setw(7) << std::setprecision(2) << 100.0 * ns.error_ratio
        << "%";
    if (ns.health.scrub_present) {
      out << std::setw(6) << "q" << ns.health.scrub_quarantined;
    } else {
      out << std::setw(7) << "-";
    }
    out << "\n";
  }
  const FleetWindow fleet = MergedWindow(snapshot);
  out << std::left << std::setw(5) << "fleet" << std::setw(7) << ""
      << std::right << std::setw(7) << "-" << std::setw(7) << "-"
      << std::setw(7) << "-" << std::setprecision(2);
  if (fleet.count > 0) {
    out << std::setw(9) << Ms(fleet.p50) << std::setw(9) << Ms(fleet.p95)
        << std::setw(9) << Ms(fleet.p99);
  } else {
    out << std::setw(9) << "-" << std::setw(9) << "-" << std::setw(9) << "-";
  }
  out << std::setw(8) << "-" << std::setw(7) << "-" << "\n";
  for (const obs::SloStatus& s : snapshot.slo) {
    out << "slo " << s.name << ": budget " << std::setprecision(1)
        << 100.0 * s.budget_remaining << "%  burn " << std::setprecision(2)
        << s.burn_short << "/" << s.burn_long << "  "
        << (s.alerting ? "ALERT" : "ok") << "\n";
  }
  return out.str();
}

}  // namespace vizndp::cluster
