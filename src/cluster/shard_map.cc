#include "cluster/shard_map.h"

#include <algorithm>

#include "common/error.h"
#include "net/retry.h"

namespace vizndp::cluster {

namespace {

// Rendezvous score for (candidate, item): the candidate with the highest
// score owns the item. Pure function of its inputs — every participant
// computes the same placement with no coordination.
std::uint64_t Score(std::uint64_t item, std::uint64_t candidate) {
  return net::MixBits(item ^ net::MixBits(candidate + 0x632BE59BD9B4E019ull));
}

// A mask that excludes nobody — nullptr, size mismatch, or all-false
// (an all-dead view must not make placement impossible; the fetch then
// fails with the real transport error instead of a placement error).
bool MaskUsable(const std::vector<bool>* eligible, int servers) {
  if (eligible == nullptr ||
      eligible->size() != static_cast<size_t>(servers)) {
    return false;
  }
  for (const bool e : *eligible) {
    if (e) return true;
  }
  return false;
}

bool Eligible(const std::vector<bool>* eligible, int server) {
  return eligible == nullptr || (*eligible)[static_cast<size_t>(server)];
}

}  // namespace

ShardMap::ShardMap(int servers, int replicas)
    : servers_(servers),
      replicas_(std::clamp(replicas, 1, servers)) {
  VIZNDP_CHECK_MSG(servers >= 1, "ShardMap needs at least one server");
}

std::uint64_t ShardMap::KeyHash(std::string_view key) {
  // FNV-1a, then one mix round so short keys still diffuse into the
  // rendezvous scores.
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return net::MixBits(h);
}

int ShardMap::ShardOfBrick(std::uint64_t key_hash, std::int64_t brick,
                           const std::vector<bool>* eligible) const {
  if (!MaskUsable(eligible, servers_)) eligible = nullptr;
  const std::uint64_t item =
      net::MixBits(key_hash ^ static_cast<std::uint64_t>(brick) *
                                  0x9E3779B97F4A7C15ull);
  int best = -1;
  std::uint64_t best_score = 0;
  for (int s = 0; s < servers_; ++s) {
    if (!Eligible(eligible, s)) continue;
    const std::uint64_t score = Score(item, static_cast<std::uint64_t>(s));
    if (best < 0 || score > best_score) {
      best = s;
      best_score = score;
    }
  }
  return best;
}

int ShardMap::ShardOfKey(std::string_view key,
                         const std::vector<bool>* eligible) const {
  // Whole-blob datasets are a single "brick".
  return ShardOfBrick(KeyHash(key), -1, eligible);
}

std::vector<std::vector<std::int64_t>> ShardMap::Partition(
    std::string_view key, std::int64_t brick_count,
    const std::vector<bool>* eligible) const {
  if (!MaskUsable(eligible, servers_)) eligible = nullptr;
  std::vector<std::vector<std::int64_t>> slices(
      static_cast<size_t>(servers_));
  const std::uint64_t key_hash = KeyHash(key);
  for (std::int64_t b = 0; b < brick_count; ++b) {
    slices[static_cast<size_t>(ShardOfBrick(key_hash, b, eligible))]
        .push_back(b);
  }
  // Ascending brick order falls out of the loop; keep it an invariant
  // (the wire protocol requires sorted restrictions).
  return slices;
}

std::vector<int> ShardMap::ReplicaChain(
    int shard, const std::vector<bool>* eligible) const {
  VIZNDP_CHECK_MSG(shard >= 0 && shard < servers_, "shard out of range");
  if (!MaskUsable(eligible, servers_)) eligible = nullptr;
  std::vector<int> chain;
  if (Eligible(eligible, shard)) chain.push_back(shard);
  // Rank the other eligible servers by rendezvous score for this shard
  // and fill the chain up to replicas().
  std::vector<std::pair<std::uint64_t, int>> ranked;
  ranked.reserve(static_cast<size_t>(servers_));
  const std::uint64_t item =
      net::MixBits(static_cast<std::uint64_t>(shard) + 0xA24BAED4963EE407ull);
  for (int s = 0; s < servers_; ++s) {
    if (s == shard || !Eligible(eligible, s)) continue;
    ranked.emplace_back(Score(item, static_cast<std::uint64_t>(s)), s);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (size_t i = 0;
       i < ranked.size() && chain.size() < static_cast<size_t>(replicas_);
       ++i) {
    chain.push_back(ranked[i].second);
  }
  return chain;
}

}  // namespace vizndp::cluster
