#include "testing/chaos.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "bench_util/testbed.h"
#include "cluster/fleet_scraper.h"
#include "cluster/health_monitor.h"
#include "cluster/sharded_client.h"
#include "common/error.h"
#include "compress/codec.h"
#include "contour/polydata.h"
#include "io/vnd_format.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "sim/impact.h"
#include "testing/fuzz.h"

namespace vizndp::testing {
namespace {

const std::vector<double> kIsos = {0.2, 0.5};
constexpr const char* kKey = "chaos.vnd";

// The counter/journal pairs the serving tier promises to keep 1:1: each
// increment appends exactly one event with the paired name, so after a
// schedule's threads are all joined, delta(counter) == count(events).
struct AuditPair {
  const char* counter;
  const char* event;
};
// (scrub_corrupt_found_total is deliberately absent: it counts every
// corrupt sighting every pass, while scrub.quarantine journals only the
// transition into quarantine — they are not 1:1 by design.
// ndp_stream_cancelled_total is also absent, but for a different
// reason: it lives in per-NdpServer registries that a restart resets,
// so a schedule-wide sum undercounts against the journal. The cancel
// drill audits it 1:1 over its own restart-free window instead.)
constexpr AuditPair kAuditPairs[] = {
    {"cluster_failover_total", "cluster.failover"},
    {"ndp_hedge_launched_total", "cluster.hedge"},
    {"ndp_hedge_won_total", "cluster.hedge_won"},
    {"ndp_hedge_lost_total", "cluster.hedge_lost"},
    {"cluster_draining_skips_total", "cluster.draining_skip"},
    {"cluster_unrestricted_fallback_total", "cluster.unrestricted_fallback"},
    {"cluster_rejoin_total", "cluster.rejoin"},
    {"store_retry_total", "store.retry"},
    {"store_io_error_total", "store.io_error"},
    {"scrub_quarantine_total", "scrub.quarantine"},
    {"scrub_readmit_total", "scrub.readmit"},
    {"ndp_quarantine_skip_total", "ndp.quarantine_skip"},
    {"slo_burn_alert_total", "slo.burn_alert"},
    {"slo_burn_clear_total", "slo.burn_clear"},
    {"cluster_slow_node_total", "cluster.slow_node"},
    {"ndp_stream_resume_total", "ndp.stream_resume"},
    {"rpc_stream_stalls_total", "rpc.stream_stall"},
};

enum class Fault {
  kKill,
  kRestart,
  kDelay,
  kCorrupt,
  kBusy,
  kQuiet,
  kStoreEio,
  kStoreSlow,
};

void StoreDataset(storage::ObjectStore& store, const std::string& bucket,
                  const ChaosOptions& options) {
  sim::ImpactConfig cfg;
  cfg.n = options.n;
  const grid::Dataset ds = sim::GenerateImpactTimestep(cfg, 24006, {"v02"});
  io::VndWriter writer(ds);
  writer.SetCodec(compress::MakeCodec("lz4"));
  writer.SetBrickSize(options.brick_edge);
  writer.WriteToStore(store, bucket, kKey);
}

std::uint64_t CounterValue(const std::string& name) {
  return obs::DefaultRegistry().GetCounter(name).value();
}

// Family sum across every label series: the SLO counters label by
// objective ({slo=...}) and the slow-node counter by node, so the audit
// must compare whole families, not the unlabeled series.
std::uint64_t CounterFamilyValue(const std::string& family) {
  double sum = 0;
  std::string base;
  obs::Labels labels;
  for (const obs::MetricSnapshot& s : obs::DefaultRegistry().Snapshot()) {
    if (s.kind != obs::MetricSnapshot::Kind::kCounter) continue;
    obs::ParseCanonicalName(s.name, &base, &labels);
    if (base == family) sum += s.value;
  }
  return static_cast<std::uint64_t>(sum + 0.5);
}

// Availability objective the chaos scraper runs under: one dead node of
// three yields a 1/3 bad ratio per sweep, far above every threshold,
// while the windows are small enough that a recovery tail of good
// sweeps clears the alert and refills the budget within seconds.
obs::SloObjective ChaosAvailabilityObjective() {
  obs::SloObjective avail;
  avail.name = "availability";
  avail.error_counter = "fleet_scrape_failed_total";
  avail.total_counter = "fleet_scrape_total";
  avail.max_bad_ratio = 0.02;
  avail.short_window_s = 0.25;
  avail.long_window_s = 1.0;
  avail.budget_window_s = 2.5;
  avail.short_burn_threshold = 5;
  avail.long_burn_threshold = 2;
  return avail;
}

}  // namespace

std::string ChaosReport::Summary() const {
  std::ostringstream os;
  os << "chaos: schedules=" << schedules << " fetches=" << fetches
     << " kills=" << kills << " restarts=" << restarts << " delays=" << delays
     << " corrupts=" << corrupts << " busies=" << busies
     << " store_eios=" << store_eios << " store_slows=" << store_slows
     << " rejoins=" << rejoins << " rejoined_served=" << rejoined_served
     << " rot_roundtrips=" << rot_roundtrips
     << " view_changes=" << view_changes
     << " slo_burn_alerts=" << slo_burn_alerts
     << " slo_burn_clears=" << slo_burn_clears << " slow_nodes=" << slow_nodes
     << " stream_fetches=" << stream_fetches
     << " stream_resumes=" << stream_resumes
     << " stream_cancels=" << stream_cancels
     << " violations=" << violations.size();
  return os.str();
}

ChaosReport RunChaos(const ChaosOptions& options) {
  ChaosReport report;
  obs::EventLog& journal = obs::GlobalEventLog();

  for (int sched = 0; sched < options.schedules; ++sched) {
    // Fresh journal per schedule so CountSince never loses events to the
    // ring (sequence numbers keep climbing across Clear).
    journal.Clear();
    const std::uint64_t base_seq = journal.LastSeq();
    std::uint64_t counter_base[std::size(kAuditPairs)];
    for (size_t p = 0; p < std::size(kAuditPairs); ++p) {
      counter_base[p] = CounterFamilyValue(kAuditPairs[p].counter);
    }

    auto violate = [&](int step, const std::string& what) {
      report.violations.push_back("schedule " + std::to_string(sched) +
                                  " step " + std::to_string(step) + ": " +
                                  what);
    };

    // Every schedule decision comes from this rng alone, and the state it
    // consults (alive/busy bookkeeping) is driver-side and deterministic,
    // so a seed replays the same fault sequence exactly.
    FuzzRng rng(options.seed * 0x9E3779B97F4A7C15ull +
                static_cast<std::uint64_t>(sched));

    std::uint64_t final_epoch = 0;
    std::vector<bool> was_restarted(static_cast<size_t>(options.servers),
                                    false);
    auto phase_t0 = std::chrono::steady_clock::now();
    auto phase = [&](const char* name) {
      if (!options.verbose) return;
      const auto now = std::chrono::steady_clock::now();
      std::fprintf(stderr, "chaos:   phase %-12s %6.2fs\n", name,
                   std::chrono::duration<double>(now - phase_t0).count());
      phase_t0 = now;
    };
    {
      bench_util::ClusterTestbedConfig config;
      config.servers = options.servers;
      config.replicas = options.replicas;
      config.client_options.call_timeout = options.call_timeout;
      config.sharded.hedge_ms = options.hedge_ms;
      config.store_retry.max_attempts = options.store_retry_attempts;
      bench_util::ClusterTestbed cluster(config);
      StoreDataset(cluster.store(), cluster.bucket(), options);

      // The oracle: one healthy node's full pipeline, fetched before any
      // fault. Every chaotic fetch must reproduce it bit for bit.
      const contour::PolyData reference =
          cluster.server_client(0)->Contour(kKey, "v02", kIsos);

      std::vector<std::shared_ptr<ndp::NdpClient>> probes;
      for (int i = 0; i < options.servers; ++i) {
        probes.push_back(cluster.probe_client(i));
      }
      cluster::HealthMonitorOptions mopts;
      mopts.period = options.probe_period;
      mopts.seed = options.seed + static_cast<std::uint64_t>(sched);
      mopts.suspect_after = 1;
      mopts.dead_after = 2;
      mopts.rejoin_after = 2;
      // Declared after the testbed: destroyed (and stopped) before it.
      cluster::HealthMonitor monitor(std::move(probes), mopts);
      monitor.SetViewSink(
          [&cluster](std::shared_ptr<const cluster::FleetView> view) {
            cluster.sharded_client()->SetFleetView(std::move(view));
          });
      // The observability plane rides along on its own per-node scrape
      // channels (never the data path, never the probe channels). The
      // harness drives ScrapeOnce at controlled points instead of
      // Start(), so every SLO evaluation is schedule-deterministic.
      std::vector<std::shared_ptr<ndp::NdpClient>> scrape_clients;
      for (int i = 0; i < options.servers; ++i) {
        scrape_clients.push_back(cluster.NewNodeClient(i));
      }
      cluster::FleetScraperOptions fleet_opts;
      fleet_opts.seed = options.seed + static_cast<std::uint64_t>(sched);
      fleet_opts.objectives = {ChaosAvailabilityObjective()};
      cluster::FleetScraper scraper(std::move(scrape_clients), fleet_opts);

      phase("setup");
      monitor.Start();
      // Let the first sweeps record every node's identity before faults
      // start. Without this, a step-0 kill+restart that completes inside
      // one probe gap leaves `identity == 0`, which disables the
      // silent-restart tripwire and the schedule never journals a rejoin.
      std::this_thread::sleep_for(2 * options.probe_period);
      // Two warm sweeps: SLO deltas need a previous cumulative snapshot.
      scraper.ScrapeOnce();
      scraper.ScrapeOnce();

      // Every other fetch goes through the chunked-reply path, so every
      // fault kind also lands on streams — which must hold the exact
      // same contract: degraded latency, never degraded bits.
      ndp::StreamOptions stream_on;
      stream_on.chunk_bricks = options.stream_chunk_bricks;
      std::uint64_t fetch_index = 0;
      std::uint64_t last_epoch = 0;
      auto check_fetch_mode = [&](int step, bool streaming) {
        cluster.sharded_client()->SetStream(streaming ? stream_on
                                                      : ndp::StreamOptions{});
        const auto fetch_start = std::chrono::steady_clock::now();
        try {
          const contour::PolyData got =
              cluster.sharded_client()->Contour(kKey, "v02", kIsos);
          ++report.fetches;
          if (streaming) ++report.stream_fetches;
          if (!got.GeometricallyEquals(reference, 0.0)) {
            violate(step, "geometry differs from single-server oracle");
          }
        } catch (const Error& e) {
          violate(step, std::string("fetch failed: ") + e.what());
          if (options.verbose) {
            // The journal holds the per-server trail of what refused this
            // fetch (failovers, rescue refusals) — print the tail.
            const auto events = journal.Events();
            const size_t n = events.size();
            for (size_t i = n > 12 ? n - 12 : 0; i < n; ++i) {
              std::fprintf(stderr, "chaos:     journal %s %s\n",
                           events[i].name.c_str(), events[i].detail.c_str());
            }
          }
        }
        if (options.verbose) {
          const double s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - fetch_start)
                               .count();
          if (s > 0.25) {
            std::fprintf(stderr, "chaos:   slow fetch step %d: %.2fs\n", step,
                         s);
          }
        }
        const auto view = monitor.view();
        if (view != nullptr) {
          if (view->epoch < last_epoch) {
            violate(step, "view epoch went backwards: " +
                              std::to_string(view->epoch) + " < " +
                              std::to_string(last_epoch));
          }
          last_epoch = view->epoch;
        }
      };
      auto check_fetch = [&](int step) {
        check_fetch_mode(step, options.stream_chunk_bricks > 0 &&
                                   (fetch_index++ % 2 == 1));
      };

      int busy_node = -1;  // node currently shedding selects, or -1
      auto alive_count = [&] {
        int n = 0;
        for (int i = 0; i < options.servers; ++i) n += cluster.alive(i);
        return n;
      };
      auto pick_alive = [&]() -> int {
        std::vector<int> up;
        for (int i = 0; i < options.servers; ++i) {
          if (cluster.alive(i)) up.push_back(i);
        }
        return up[static_cast<size_t>(rng.Below(up.size()))];
      };

      for (int step = 0; step < options.steps; ++step) {
        if (busy_node >= 0) {  // overload clears after one step
          cluster.rpc_server(busy_node).memory_budget().SetLimit(0);
          busy_node = -1;
        }

        Fault fault;
        if (step == 0) {
          fault = Fault::kKill;  // every schedule exercises the headline
        } else if (step == 1) {
          fault = Fault::kRestart;  // ...kill -> detect -> restart -> rejoin
        } else {
          fault = static_cast<Fault>(rng.Below(8));
        }

        const auto fault_start = std::chrono::steady_clock::now();
        switch (fault) {
          case Fault::kKill: {
            // Keep at least one non-busy live node, or every fetch rung
            // (including the unrestricted rescue) legitimately fails and
            // the availability invariant means nothing.
            if (busy_node >= 0 || alive_count() < 2) break;
            const int victim = pick_alive();
            cluster.KillServer(victim);
            ++report.kills;
            break;
          }
          case Fault::kRestart: {
            std::vector<int> down;
            for (int i = 0; i < options.servers; ++i) {
              if (!cluster.alive(i)) down.push_back(i);
            }
            if (down.empty()) break;
            const int node =
                down[static_cast<size_t>(rng.Below(down.size()))];
            cluster.RestartServer(node);
            was_restarted[static_cast<size_t>(node)] = true;
            ++report.restarts;
            break;
          }
          case Fault::kDelay: {
            // Finite script: the next 1-3 replies on one data channel
            // stall past the hedge delay, then the channel heals.
            const int node = pick_alive();
            const size_t frames = 1 + rng.Below(3);
            const auto hold = std::chrono::microseconds(
                static_cast<std::int64_t>(1000 + rng.Below(14000)));
            cluster.fault(node).ScriptReceive(std::vector<net::FaultAction>(
                frames, net::FaultAction::Delay(hold)));
            ++report.delays;
            break;
          }
          case Fault::kCorrupt: {
            // Truncation breaks the msgpack envelope, so the client sees
            // a typed decode failure and fails over. (A BitFlip would
            // mostly land in the selection payload, which carries no
            // client-side digest — it would corrupt geometry silently
            // rather than test the failover path, so the harness sticks
            // to faults the reply framing is contracted to catch.)
            const int node = pick_alive();
            cluster.fault(node).ScriptReceive(
                {net::FaultAction::Truncate(rng.Below(48))});
            ++report.corrupts;
            break;
          }
          case Fault::kBusy: {
            if (alive_count() < 2) break;
            busy_node = pick_alive();
            cluster.rpc_server(busy_node).memory_budget().SetLimit(1);
            ++report.busies;
            break;
          }
          case Fault::kQuiet:
            break;
          case Fault::kStoreEio: {
            // Transient EIO storm on the shared store's read path, sized
            // so even one op's retries can drain it without exhausting
            // the ladder: the gateway heals in place and the fetch below
            // never notices (store_retry_total moves, geometry does not).
            const size_t frames = 1 + rng.Below(static_cast<size_t>(
                                          options.store_retry_attempts - 1));
            cluster.store_fault().Script(
                storage::StoreOp::kRead,
                std::vector<storage::StoreFaultAction>(
                    frames, storage::StoreFaultAction::Eio()));
            ++report.store_eios;
            break;
          }
          case Fault::kStoreSlow: {
            // Slow-disk window: the next few reads stall, modeling a
            // device in an internal GC pause. Purely latency — nothing
            // to heal, geometry unaffected.
            const size_t frames = 1 + rng.Below(4);
            const auto hold = std::chrono::microseconds(
                static_cast<std::int64_t>(200 + rng.Below(3000)));
            cluster.store_fault().Script(
                storage::StoreOp::kRead,
                std::vector<storage::StoreFaultAction>(
                    frames, storage::StoreFaultAction::Delay(hold)));
            ++report.store_slows;
            break;
          }
        }
        if (options.verbose) {
          const double s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - fault_start)
                               .count();
          static const char* kFaultNames[] = {
              "kill", "restart",   "delay",     "corrupt",
              "busy", "quiet",     "store_eio", "store_slow"};
          std::fprintf(stderr, "chaos:   sched %d step %d: %s (%.2fs)\n",
                       sched, step, kFaultNames[static_cast<int>(fault)], s);
        }

        if (step == 0 && options.servers >= 2) {
          // Kill -> burn: the dead node's failed scrapes are availability
          // bad events (1/3 of each sweep), so a burst of sweeps inside
          // the short window must page exactly once (edge-triggered).
          for (int sweep = 0; sweep < 6; ++sweep) {
            scraper.ScrapeOnce();
            std::this_thread::sleep_for(std::chrono::milliseconds(40));
          }
          if (journal.CountSince("slo.burn_alert", base_seq) == 0) {
            violate(step, "step-0 kill never fired slo.burn_alert");
          }
        }

        for (int f = 0; f < options.fetches_per_step; ++f) check_fetch(step);
      }

      phase("steps");
      // Recovery tail: heal everything and require the fleet to converge
      // back to all-live — the self-healing half of the contract.
      if (busy_node >= 0) {
        cluster.rpc_server(busy_node).memory_budget().SetLimit(0);
        busy_node = -1;
      }
      for (int i = 0; i < options.servers; ++i) {
        // Drop unconsumed delay/corrupt scripts (a slice that routed no
        // traffic never drained them) so the rejoin checks below measure
        // the healed fleet, not a stale fault.
        cluster.fault(i).ScriptSend({});
        cluster.fault(i).ScriptReceive({});
      }
      // Same for unconsumed disk-fault scripts on the shared store.
      cluster.store_fault().ClearFaults();
      for (int i = 0; i < options.servers; ++i) {
        if (!cluster.alive(i)) {
          cluster.RestartServer(i);
          was_restarted[static_cast<size_t>(i)] = true;
          ++report.restarts;
        }
      }
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      bool converged = false;
      while (!converged && std::chrono::steady_clock::now() < deadline) {
        const auto view = monitor.view();
        converged = view != nullptr &&
                    view->UsableCount() == options.servers &&
                    std::all_of(view->states.begin(), view->states.end(),
                                [](cluster::NodeState s) {
                                  return s == cluster::NodeState::kLive;
                                });
        if (!converged) std::this_thread::sleep_for(options.probe_period);
      }
      if (!converged) {
        violate(options.steps, "fleet never converged back to all-live");
      }

      // Rejoin must restore the error budget: with every node serving
      // again, good sweeps age the kill burst out of the budget window,
      // the alert clears, and budget_remaining returns to 1.
      {
        const auto slo_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(10);
        bool restored = false;
        while (!restored && std::chrono::steady_clock::now() < slo_deadline) {
          const auto snap = scraper.ScrapeOnce();
          restored = !snap->slo.empty() && !snap->slo[0].alerting &&
                     snap->slo[0].budget_remaining >= 0.999;
          if (!restored) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
          }
        }
        if (!restored) {
          violate(options.steps, "slo budget never restored after rejoin");
        }
        if (journal.CountSince("slo.burn_alert", base_seq) > 0 &&
            journal.CountSince("slo.burn_clear", base_seq) == 0) {
          violate(options.steps, "slo alert never cleared after rejoin");
        }
      }

      // Bit-rot round trip: plant rot at rest in a brick every fetch
      // needs, then require the full lifecycle — every node's scrubber
      // quarantines it; after a clean re-Put the (still-quarantined)
      // brick serves through the quarantine-skip rung bit-identically;
      // the next scrub pass re-admits it everywhere.
      {
        const int rot_step = options.steps + 1;
        const io::VndReader probe_reader(cluster.LocalGateway().Open(kKey));
        const io::VndHeader& header = probe_reader.header();
        const io::ArrayMeta* meta = header.Find("v02");
        std::int64_t rot_brick = -1;
        if (meta != nullptr && meta->bricks.has_value()) {
          const auto& entries = meta->bricks->entries;
          for (size_t b = 0; b < entries.size() && rot_brick < 0; ++b) {
            for (const double iso : kIsos) {
              if (entries[b].min < iso && entries[b].max >= iso) {
                rot_brick = static_cast<std::int64_t>(b);
                break;
              }
            }
          }
        }
        if (rot_brick < 0) {
          violate(rot_step, "no isovalue-straddling brick to rot");
        } else {
          const io::BrickEntry& entry =
              meta->bricks->entries[static_cast<size_t>(rot_brick)];
          const Bytes clean = cluster.store().Get(cluster.bucket(), kKey);
          Bytes rotted = clean;
          const std::uint64_t victim =
              header.blob_base + meta->offset + entry.offset +
              rng.Below(entry.stored_size);
          rotted[static_cast<size_t>(victim)] ^=
              static_cast<Byte>(1u << rng.Below(8));
          cluster.store().Put(cluster.bucket(), kKey, ByteSpan(rotted));

          for (int i = 0; i < options.servers; ++i) {
            cluster.scrubber(i).RunPassNow();
            if (!cluster.quarantine(i).Contains(kKey, "v02", rot_brick)) {
              violate(rot_step, "node " + std::to_string(i) +
                                    " scrub missed planted rot");
            }
          }
          // Repair: re-Put the clean image. The brick stays quarantined
          // until the next scrub pass, so this fetch must take the
          // quarantine-skip rung — and still match the oracle exactly.
          cluster.store().Put(cluster.bucket(), kKey, ByteSpan(clean));
          const std::uint64_t skips_before =
              CounterValue("ndp_quarantine_skip_total");
          check_fetch(rot_step);
          if (CounterValue("ndp_quarantine_skip_total") == skips_before) {
            violate(rot_step, "quarantine-skip path never exercised");
          }
          bool readmitted = true;
          for (int i = 0; i < options.servers; ++i) {
            cluster.scrubber(i).RunPassNow();
            if (cluster.quarantine(i).Contains(kKey, "v02", rot_brick)) {
              violate(rot_step, "node " + std::to_string(i) +
                                    " never readmitted the healed brick");
              readmitted = false;
            }
          }
          if (readmitted) ++report.rot_roundtrips;
        }
      }
      phase("rot");

      // A rejoined node must be *serving* again, not merely probed live:
      // fetch through the sharded client (its slice may be empty for this
      // key), then directly, and require the fresh incarnation's select
      // counter to move.
      check_fetch(options.steps);
      for (int i = 0; i < options.servers; ++i) {
        if (!was_restarted[static_cast<size_t>(i)]) continue;
        auto served = [&] {
          return cluster.ndp_server(i)
                     .metrics()
                     .GetCounter("ndp_select_requests_total")
                     .value() > 0;
        };
        if (!served()) {
          try {
            cluster.server_client(i)->FetchPartial(kKey, "v02", kIsos,
                                                   nullptr);
          } catch (const Error& e) {
            violate(options.steps, "restarted node " + std::to_string(i) +
                                       " unusable after rejoin: " + e.what());
          }
        }
        if (served()) {
          ++report.rejoined_served;
        } else {
          violate(options.steps, "restarted node " + std::to_string(i) +
                                     " never served a select");
        }
      }

      // Streaming recovery drills — the chunked-reply contract under
      // chaos: every started stream completes bit-identically, resumes
      // from its cursor, or is accounted cancelled.
      if (options.stream_chunk_bricks > 0) {
        const int drill_step = options.steps + 2;
        // (a) Client cancel: accounted exactly once, where it is
        // detected (the serving node's counter) and in the journal.
        // Audited over this restart-free window because restarts reset
        // per-server registries (see the kAuditPairs note).
        {
          auto cancelled_sum = [&] {
            std::uint64_t sum = 0;
            for (int i = 0; i < options.servers; ++i) {
              sum += cluster.ndp_server(i)
                         .metrics()
                         .GetCounter("ndp_stream_cancelled_total")
                         .value();
            }
            return sum;
          };
          const std::shared_ptr<ndp::NdpClient> direct =
              cluster.server_client(pick_alive());
          ndp::StreamOptions fine;
          fine.chunk_bricks = 1;  // maximize boundaries for the cancel
          direct->SetStream(fine);
          std::atomic<std::uint64_t> chunks_seen{0};
          direct->SetStreamProgress(
              [&](const ndp::StreamProgress& p) { chunks_seen = p.chunks; });
          direct->SetStreamCancel([&] { return chunks_seen.load() >= 1; });
          const std::uint64_t cancels_before = cancelled_sum();
          const std::uint64_t cancel_seq = journal.LastSeq();
          bool landed = false;
          // A short stream can race to completion before the cancel
          // frame lands; stream_cancelled says which way it went, so a
          // lost race just reruns the drill.
          for (int attempt = 0; attempt < 3 && !landed; ++attempt) {
            chunks_seen = 0;
            ndp::NdpLoadStats stats;
            grid::UniformGeometry geo;
            try {
              (void)direct->FetchSparseField(kKey, "v02", kIsos, &geo,
                                             &stats);
              landed = stats.stream_cancelled;
            } catch (const Error& e) {
              violate(drill_step,
                      std::string("cancel drill fetch failed: ") + e.what());
              break;
            }
          }
          direct->SetStreamProgress({});
          direct->SetStreamCancel({});
          const std::uint64_t cancel_delta = cancelled_sum() - cancels_before;
          const size_t cancel_events =
              journal.CountSince("ndp.stream_cancel", cancel_seq);
          if (!landed) {
            violate(drill_step, "cancel drill never landed mid-stream");
          } else if (cancel_delta == 0) {
            violate(drill_step, "cancelled stream not accounted on server");
          }
          if (cancel_delta != cancel_events) {
            violate(drill_step,
                    "audit: ndp_stream_cancelled_total=" +
                        std::to_string(cancel_delta) +
                        " but ndp.stream_cancel events=" +
                        std::to_string(cancel_events));
          }
          report.stream_cancels += cancel_delta;
        }
        // (b) Chunk-boundary kill: sever one node's data channel at the
        // first chunk boundary of a sharded stream. The cursor must
        // resume (same node is permanently down, so on a replica) and
        // the merged geometry must still match the oracle bit for bit.
        // The victim is whichever node delivers the first data chunk —
        // a pre-picked node can't work, because progress only fires for
        // data chunks and a shard slice with no straddling bricks
        // streams zero of them, leaving the kill unarmed. This drill
        // runs last for a reason: fault-layer disconnects are
        // permanent, and nothing touches the severed channel again
        // before teardown.
        {
          std::atomic<bool> armed{true};
          for (int i = 0; i < options.servers; ++i) {
            cluster.server_client(i)->SetStreamProgress(
                [&, i](const ndp::StreamProgress&) {
                  if (armed.exchange(false)) {
                    cluster.fault(i).ScriptReceive(
                        {net::FaultAction::Disconnect()});
                  }
                });
          }
          const std::uint64_t resumes_before =
              CounterValue("ndp_stream_resume_total");
          check_fetch_mode(drill_step, /*streaming=*/true);
          for (int i = 0; i < options.servers; ++i) {
            cluster.server_client(i)->SetStreamProgress({});
          }
          if (CounterValue("ndp_stream_resume_total") == resumes_before) {
            violate(drill_step,
                    "chunk-boundary kill never produced a stream resume");
          }
        }
      }

      const auto view = monitor.view();
      final_epoch = view != nullptr ? view->epoch : 0;
      phase("recovery");
      monitor.Stop();
      phase("stop");
    }  // testbed destroyed: every serve loop and hedge loser joined
    phase("teardown");

    // Audit: with all threads quiesced, each promised counter moved in
    // lockstep with its journal event...
    for (size_t p = 0; p < std::size(kAuditPairs); ++p) {
      const std::uint64_t delta =
          CounterFamilyValue(kAuditPairs[p].counter) - counter_base[p];
      const size_t events = journal.CountSince(kAuditPairs[p].event, base_seq);
      if (delta != events) {
        violate(-1, std::string("audit: ") + kAuditPairs[p].counter + "=" +
                        std::to_string(delta) + " but " + kAuditPairs[p].event +
                        " events=" + std::to_string(events));
      }
    }
    // ...every published epoch was journaled exactly once...
    const size_t view_events = journal.CountSince("cluster.view_change",
                                                  base_seq);
    if (view_events != final_epoch) {
      violate(-1, "audit: final epoch " + std::to_string(final_epoch) +
                      " but cluster.view_change events=" +
                      std::to_string(view_events));
    }
    report.view_changes += view_events;
    report.rejoins += journal.CountSince("cluster.rejoin", base_seq);
    report.stream_resumes += journal.CountSince("ndp.stream_resume", base_seq);
    report.slo_burn_alerts += journal.CountSince("slo.burn_alert", base_seq);
    report.slo_burn_clears += journal.CountSince("slo.burn_clear", base_seq);
    report.slow_nodes += journal.CountSince("cluster.slow_node", base_seq);
    // ...and no hedge loser outlived its client.
    const double parked =
        obs::DefaultRegistry().GetGauge("cluster_hedge_parked").value();
    if (parked != 0) {
      violate(-1, "audit: cluster_hedge_parked=" + std::to_string(parked) +
                      " after testbed teardown");
    }

    ++report.schedules;
    if (options.verbose) {
      std::printf("chaos: schedule %d/%d done (epoch=%llu, violations=%zu)\n",
                  sched + 1, options.schedules,
                  static_cast<unsigned long long>(final_epoch),
                  report.violations.size());
      std::fflush(stdout);
    }
  }
  return report;
}

}  // namespace vizndp::testing
