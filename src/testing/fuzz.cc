#include "testing/fuzz.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "compress/deflate.h"
#include "compress/gzip.h"
#include "compress/lz4.h"
#include "compress/rle.h"
#include "compress/zlib_stream.h"
#include "io/vnd_format.h"
#include "msgpack/pack.h"
#include "msgpack/unpack.h"
#include "ndp/protocol.h"

namespace vizndp::testing {

namespace {

// Compressible-but-not-trivial payload: runs, ramps, and a little noise,
// so every codec's seed exercises literals *and* matches.
Bytes PatternPayload(size_t n) {
  Bytes out(n);
  FuzzRng rng(0x5eedu);
  for (size_t i = 0; i < n; ++i) {
    switch ((i / 64) % 3) {
      case 0: out[i] = static_cast<Byte>(i & 0xff); break;
      case 1: out[i] = static_cast<Byte>(0xaa); break;
      default: out[i] = static_cast<Byte>(rng.Below(8)); break;
    }
  }
  return out;
}

// A real bricked VND file image (two arrays, lz4 + none) so header
// mutations hit the msgpack map walk, the brick index parse, and every
// ValidateHeader cross-check.
Bytes VndSeedImage() {
  grid::Dataset ds(grid::Dims{9, 9, 9});
  std::vector<float> a(9 * 9 * 9), b(9 * 9 * 9);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(i % 11) * 0.25f;
    b[i] = static_cast<float>(i) * 0.01f;
  }
  ds.AddArray(grid::DataArray::FromVector("fuzz_a", a));
  ds.AddArray(grid::DataArray::FromVector("fuzz_b", b));
  io::VndWriter writer(ds);
  writer.SetCodec(std::make_shared<compress::Lz4Codec>());
  writer.SetArrayCodec("fuzz_b", std::make_shared<compress::NullCodec>());
  writer.SetBrickSize(4);
  return writer.Serialize();
}

// A nested msgpack value shaped like real protocol traffic (arrays,
// maps, strings, bins, ints of several widths, doubles).
Bytes MsgpackSeed() {
  msgpack::Array params;
  params.emplace_back(std::string("data"));
  params.emplace_back(std::string("ts24006.vnd"));
  params.emplace_back(std::uint64_t{1} << 40);
  params.emplace_back(std::int64_t{-77});
  params.emplace_back(0.33);
  msgpack::Map meta;
  meta.emplace_back(msgpack::Value(std::string("payload")),
                    msgpack::Value(PatternPayload(96)));
  meta.emplace_back(msgpack::Value(std::string("deep")),
                    msgpack::Value(msgpack::Array{
                        msgpack::Value(msgpack::Array{msgpack::Value(true)}),
                        msgpack::Value(msgpack::Nil{})}));
  params.push_back(msgpack::Value(std::move(meta)));
  msgpack::Array request;
  request.emplace_back(std::int64_t{0});
  request.emplace_back(std::uint64_t{42});
  request.emplace_back(std::string("ndp.select"));
  request.push_back(msgpack::Value(std::move(params)));
  return msgpack::Encode(msgpack::Value(std::move(request)));
}

// A valid 6-element ndp.select params frame — the post-sharding request
// shape whose tail element is the brick restriction.
Bytes SelectParamsSeed() {
  msgpack::Array params;
  params.emplace_back(std::string("data"));
  params.emplace_back(std::string("ts24006.vnd"));
  params.emplace_back(std::string("v02"));
  msgpack::Array isos;
  isos.emplace_back(0.2);
  isos.emplace_back(0.5);
  params.push_back(msgpack::Value(std::move(isos)));
  params.emplace_back(std::uint64_t{3});  // kRunLength
  msgpack::Array bricks;
  for (const std::int64_t b : {0, 2, 5, 9}) {
    bricks.emplace_back(b);
  }
  params.push_back(msgpack::Value(std::move(bricks)));
  return msgpack::Encode(msgpack::Value(std::move(params)));
}

// The protocol-level validation NdpServer::Bind performs on a sharded
// ndp.select params frame, with the shape checks made explicit so every
// hostile frame gets a typed rejection (the dispatch path reaches storage
// next; fuzzing stops at the parse).
void ValidateSelectParams(ByteSpan input) {
  const msgpack::Value v = msgpack::Decode(input);
  if (!v.Is<msgpack::Array>()) {
    throw DecodeError("select frame: params is not an array");
  }
  const msgpack::Array& p = v.As<msgpack::Array>();
  if (p.size() < 6) {
    throw DecodeError("select frame: expected 6 params, got " +
                      std::to_string(p.size()));
  }
  for (size_t i = 0; i < 3; ++i) {
    if (!p[i].Is<std::string>()) {
      throw DecodeError("select frame: param " + std::to_string(i) +
                        " is not a string");
    }
  }
  if (!p[3].Is<msgpack::Array>()) {
    throw DecodeError("select frame: isovalues is not an array");
  }
  for (const msgpack::Value& iso : p[3].As<msgpack::Array>()) {
    (void)iso.AsDouble();
  }
  (void)p[4].AsUint();  // encoding tag
  (void)ndp::BrickRestrictionFromValue(p[5]);
}

// A complete, valid chunked ndp.select reply stream — header, two
// CRC-stamped data chunks with real encoded-selection payloads, and a
// Nil terminal marker — packed as one msgpack array so mutations can hit
// the frame walk, the StreamDecoder state machine, and the payload
// decoder in one pass.
Bytes StreamFramesSeed() {
  ndp::StreamHeader header;
  header.dims = grid::Dims{6, 6, 6};
  header.dtype = grid::DataType::Float32;
  header.bricks_total = 8;
  header.stream_bricks = 4;
  header.total_points = header.dims.PointCount();

  msgpack::Array frames;
  frames.push_back(ndp::StreamHeaderToValue(header));
  std::int64_t cursor = 1;
  for (int batch = 0; batch < 2; ++batch) {
    contour::Selection sel;
    sel.dims = header.dims;
    sel.total_points = header.total_points;
    std::vector<float> values;
    for (std::int64_t i = 0; i < 24; ++i) {
      sel.ids.push_back(static_cast<grid::PointId>(batch * 60 + i * 2));
      values.push_back(0.1f * static_cast<float>(i + 1));
    }
    sel.values = grid::DataArray::FromVector("v", values);
    ndp::StreamChunk chunk;
    chunk.cursor = cursor;
    cursor += 3;
    chunk.bricks = 2;
    chunk.selected = static_cast<std::int64_t>(sel.ids.size());
    chunk.payload =
        ndp::EncodeSelection(sel, ndp::SelectionEncoding::kRunLength);
    frames.push_back(ndp::StreamChunkToValue(chunk));
  }
  frames.emplace_back(msgpack::Nil{});  // terminal marker
  return msgpack::Encode(msgpack::Value(std::move(frames)));
}

// Replays a frame array through the same StreamDecoder the client runs:
// header first and once, strictly ascending cursors, CRC-checked
// payloads that must decode against the header's dims, exactly one
// terminal (the Nil element), nothing after it.
void ValidateStreamFrames(ByteSpan input) {
  const msgpack::Value v = msgpack::Decode(input);
  if (!v.Is<msgpack::Array>()) {
    throw DecodeError("stream frames: not an array");
  }
  ndp::StreamDecoder decoder(/*resume_after=*/-1);
  for (const msgpack::Value& frame : v.As<msgpack::Array>()) {
    if (frame.Is<msgpack::Nil>()) {
      decoder.Finish();
      continue;
    }
    const std::optional<ndp::StreamChunk> chunk = decoder.Feed(frame);
    if (chunk.has_value()) {
      (void)ndp::DecodeSelection(chunk->payload, decoder.header().dims);
    }
  }
  if (!decoder.finished()) {
    throw DecodeError("stream frames: missing terminal");
  }
}

}  // namespace

Bytes MutateBytes(ByteSpan input, FuzzRng& rng) {
  Bytes out(input.begin(), input.end());
  // 1-8 stacked mutations: single flips find shallow checks, stacks find
  // state machines that only misbehave after several fields disagree.
  const std::uint64_t rounds = 1 + rng.Below(8);
  for (std::uint64_t round = 0; round < rounds; ++round) {
    if (out.empty()) {
      out.push_back(static_cast<Byte>(rng.Below(256)));
      continue;
    }
    switch (rng.Below(6)) {
      case 0:  // truncate to a random prefix
        out.resize(rng.Below(out.size() + 1));
        break;
      case 1: {  // flip one bit
        const size_t pos = static_cast<size_t>(rng.Below(out.size()));
        out[pos] = static_cast<Byte>(out[pos] ^ (1u << rng.Below(8)));
        break;
      }
      case 2: {  // smash one byte
        out[static_cast<size_t>(rng.Below(out.size()))] =
            static_cast<Byte>(rng.Below(256));
        break;
      }
      case 3: {  // insert a short random splice
        const size_t pos = static_cast<size_t>(rng.Below(out.size() + 1));
        const size_t n = 1 + static_cast<size_t>(rng.Below(16));
        Bytes splice(n);
        for (Byte& byte : splice) byte = static_cast<Byte>(rng.Below(256));
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
                   splice.begin(), splice.end());
        break;
      }
      case 4: {  // erase a short run
        const size_t pos = static_cast<size_t>(rng.Below(out.size()));
        const size_t n = std::min<size_t>(
            1 + static_cast<size_t>(rng.Below(16)), out.size() - pos);
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos),
                  out.begin() + static_cast<std::ptrdiff_t>(pos + n));
        break;
      }
      default: {  // length lie: a huge LE integer over a random offset
        std::uint64_t lie = rng.Next();
        // Bias toward the values that break naive size arithmetic.
        switch (rng.Below(4)) {
          case 0: lie = 0xffffffffffffffffull; break;
          case 1: lie = 0x7fffffffull; break;
          case 2: lie = std::uint64_t{1} << (32 + rng.Below(31)); break;
          default: break;
        }
        const size_t width = rng.Below(2) == 0 ? 4 : 8;
        if (out.size() >= width) {
          const size_t pos =
              static_cast<size_t>(rng.Below(out.size() - width + 1));
          for (size_t i = 0; i < width; ++i) {
            out[pos + i] = static_cast<Byte>((lie >> (8 * i)) & 0xff);
          }
        }
        break;
      }
    }
  }
  return out;
}

std::vector<FuzzTarget> BuiltinFuzzTargets() {
  std::vector<FuzzTarget> targets;

  targets.push_back(
      {"inflate",
       [] { return compress::DeflateCompress(PatternPayload(4096)); },
       [](ByteSpan input, size_t max_output) {
         compress::InflateRaw(input, 0, nullptr, max_output);
       }});

  targets.push_back({"gzip",
                     [] { return compress::GzipCodec().Compress(
                         PatternPayload(4096)); },
                     [](ByteSpan input, size_t max_output) {
                       compress::GzipCodec().Decompress(input, 0, max_output);
                     }});

  targets.push_back({"zlib",
                     [] { return compress::ZlibCodec().Compress(
                         PatternPayload(4096)); },
                     [](ByteSpan input, size_t max_output) {
                       compress::ZlibCodec().Decompress(input, 0, max_output);
                     }});

  targets.push_back({"lz4",
                     [] { return compress::Lz4Codec().Compress(
                         PatternPayload(4096)); },
                     [](ByteSpan input, size_t max_output) {
                       compress::Lz4Codec().Decompress(input, 0, max_output);
                     }});

  targets.push_back({"rle",
                     [] { return compress::RleCodec().Compress(
                         PatternPayload(4096)); },
                     [](ByteSpan input, size_t max_output) {
                       compress::RleCodec().Decompress(input, 0, max_output);
                     }});

  targets.push_back({"msgpack", [] { return MsgpackSeed(); },
                     [](ByteSpan input, size_t) {
                       (void)msgpack::Decode(input);
                     }});

  // Corpus files are named <target>_<what>.bin (stem up to the first
  // underscore), hence the dash in the name.
  targets.push_back({"ndp-select", [] { return SelectParamsSeed(); },
                     [](ByteSpan input, size_t) {
                       ValidateSelectParams(input);
                     }});

  targets.push_back({"ndp-stream", [] { return StreamFramesSeed(); },
                     [](ByteSpan input, size_t) {
                       ValidateStreamFrames(input);
                     }});

  targets.push_back({"vnd-header", [] { return VndSeedImage(); },
                     [](ByteSpan input, size_t) {
                       (void)io::ParseVndHeader(input);
                     }});

  return targets;
}

FuzzReport RunFuzzTarget(const FuzzTarget& target, std::uint64_t seed,
                         std::uint64_t iterations) {
  const Bytes base = target.seed_input();
  // Iteration 0 is the unmutated seed: a target whose valid input is
  // rejected is fuzzing the wrong decoder (or the decoder broke).
  target.run(base, kFuzzOutputBudget);

  FuzzReport report;
  FuzzRng rng(seed);
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const Bytes mutated = MutateBytes(base, rng);
    ++report.iterations;
    try {
      target.run(mutated, kFuzzOutputBudget);
      ++report.accepted;
    } catch (const vizndp::Error&) {
      ++report.rejected;  // the contract: garbage gets a typed error
    }
  }
  return report;
}

bool RunFuzzInput(const FuzzTarget& target, ByteSpan input) {
  try {
    target.run(input, kFuzzOutputBudget);
    return true;
  } catch (const vizndp::Error&) {
    return false;
  }
}

}  // namespace vizndp::testing
