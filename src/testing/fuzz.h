// Deterministic mutation fuzzer for every decoder that parses bytes it
// did not write: the DEFLATE/gzip/zlib inflaters, the LZ4 and RLE block
// decoders, the msgpack unpacker, and the VND header parser. Each target
// starts from a *valid* seed input (so mutations reach deep parse paths
// instead of dying at the magic check) and hammers it with truncations,
// bit flips, splices, and length lies.
//
// The contract under fuzz: hostile input is rejected with a typed
// vizndp::Error under a hard output budget — never a crash, hang,
// std::bad_alloc, or sanitizer report. Same (seed, iterations) always
// replays the same inputs, so a failure reported by CI reproduces
// locally with `vizndp_tool fuzz --target X --seed S --iters N`.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace vizndp::testing {

// splitmix64: tiny, fast, seed-stable across platforms — the fuzzer's
// whole value is that iteration k of seed s is the same bytes everywhere.
class FuzzRng {
 public:
  explicit FuzzRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform-ish in [0, bound); bound 0 returns 0.
  std::uint64_t Below(std::uint64_t bound) {
    return bound == 0 ? 0 : Next() % bound;
  }

 private:
  std::uint64_t state_;
};

// One hostile mutation of `input`: a random number of truncations, bit
// flips, byte smashes, insertions, erasures, and "length lies" (a huge
// little-endian u32/u64 written at a random offset, aimed at whatever
// length/count/offset field happens to live there).
Bytes MutateBytes(ByteSpan input, FuzzRng& rng);

struct FuzzTarget {
  std::string name;
  // A valid input for the decoder; mutations start from a fresh copy.
  std::function<Bytes()> seed_input;
  // Runs the decoder on possibly-hostile bytes. Must either return
  // (input accepted) or throw a vizndp::Error (input rejected); anything
  // else is a fuzzing failure.
  std::function<void(ByteSpan input, size_t max_output)> run;
};

// inflate, gzip, zlib, lz4, rle, msgpack, vnd-header.
std::vector<FuzzTarget> BuiltinFuzzTargets();

struct FuzzReport {
  std::uint64_t iterations = 0;
  std::uint64_t accepted = 0;  // decoder returned normally
  std::uint64_t rejected = 0;  // decoder threw a typed vizndp::Error
};

// Output budget handed to every decoder under fuzz: far above anything a
// mutated seed legitimately decodes to, far below what would hurt the
// machine when a length lie slips past a check.
inline constexpr size_t kFuzzOutputBudget = size_t{64} << 20;  // 64 MiB

// Runs `iterations` mutations of the target's seed (plus the unmutated
// seed itself, iteration 0, which must be accepted). Non-vizndp
// exceptions (std::bad_alloc, std::length_error, ...) propagate to the
// caller: under ctest/asan that is the test failure this exists to find.
FuzzReport RunFuzzTarget(const FuzzTarget& target, std::uint64_t seed,
                         std::uint64_t iterations);

// Replays one exact input (checked-in corpus regression files). Returns
// true when the decoder accepted it, false when it threw a typed error.
bool RunFuzzInput(const FuzzTarget& target, ByteSpan input);

}  // namespace vizndp::testing
