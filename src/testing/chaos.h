// Seeded chaos harness for the self-healing serving tier: drives a
// ClusterTestbed + HealthMonitor through randomized schedules of
// kill / restart / delay / corrupt / busy faults — plus disk faults
// against the shared store (transient EIO storms sized to the retry
// ladder, slow-disk windows) — mid-request-stream, and checks the
// tier's contract after every fetch:
//
//   1. geometry bit-identical to the pre-chaos single-server oracle
//      (the paper's invariant: degradation may cost time, never bits);
//   2. fleet-view epochs monotone;
//   3. the one-counter-one-event audit (every counted failover / hedge /
//      rescue / rejoin / store-retry / quarantine has exactly one
//      journal event, and vice versa);
//   4. no parked-hedge leaks (cluster_hedge_parked drains to zero when
//      the schedule's client is gone);
//   5. a restarted node is observed serving traffic again;
//   6. a full bit-rot round trip per schedule: rot planted at rest is
//      quarantined by every node's scrubber, a clean re-Put serves
//      through the quarantine-skip path bit-identically, and the next
//      scrub pass re-admits the brick on every node;
//   7. the observability plane closes the loop: a FleetScraper on its
//      own per-node channels sweeps through the step-0 kill, whose
//      failed scrapes must burn the availability SLO (slo.burn_alert
//      fires), and after the recovery tail good sweeps must age the
//      burst out of the budget window (alert clears, budget restored).
//
// Determinism: every schedule decision comes from FuzzRng(seed, index),
// so `vizndp_tool chaos --seed S` replays the same fault sequence — a
// CI failure reproduces locally byte-for-byte. (Races inside a schedule
// are real; the *faults* are not random between runs.)
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace vizndp::testing {

struct ChaosOptions {
  std::uint64_t seed = 1;
  int schedules = 20;
  // Fault steps per schedule; steps 0 and 1 are always a kill and the
  // matching restart (the headline path must appear in every schedule),
  // the rest draw from {kill, restart, delay, corrupt, busy, quiet,
  // store_eio, store_slow}.
  int steps = 8;
  // Gateway retry ladder on every node; EIO storms are sized to at most
  // store_retry_attempts-1 consecutive failures so in-place healing is
  // guaranteed (even if one op's retries drain the whole storm).
  int store_retry_attempts = 4;
  int fetches_per_step = 2;
  int servers = 3;
  int replicas = 2;
  int n = 16;                  // dataset edge (n^3 grid)
  std::int32_t brick_edge = 8;
  std::chrono::milliseconds probe_period{20};
  std::chrono::milliseconds call_timeout{2000};
  double hedge_ms = 10;  // fixed hedge so parked-loser reaping exercises
  // Chunked-reply coverage: every other chaotic fetch goes through the
  // streaming path with this many bricks per chunk, and each schedule
  // ends with two streaming drills (a client cancel that must be
  // accounted exactly once, and a chunk-boundary kill that must resume
  // from its cursor on a replica, bit-identically). 0 disables both.
  std::int64_t stream_chunk_bricks = 2;
  bool verbose = false;  // per-schedule progress on stdout
};

struct ChaosReport {
  int schedules = 0;
  std::uint64_t fetches = 0;
  // Faults actually applied (deterministic per seed).
  std::uint64_t kills = 0;
  std::uint64_t restarts = 0;
  std::uint64_t delays = 0;
  std::uint64_t corrupts = 0;
  std::uint64_t busies = 0;
  std::uint64_t store_eios = 0;   // transient EIO storms scripted
  std::uint64_t store_slows = 0;  // slow-disk windows scripted
  // Healing observed.
  std::uint64_t rejoins = 0;          // cluster.rejoin events journaled
  std::uint64_t rejoined_served = 0;  // restarted nodes serving again
  std::uint64_t rot_roundtrips = 0;   // quarantine->repair->readmit cycles
  std::uint64_t view_changes = 0;
  // Observability-plane events journaled (audited 1:1 with counters).
  std::uint64_t slo_burn_alerts = 0;
  std::uint64_t slo_burn_clears = 0;
  std::uint64_t slow_nodes = 0;
  // Streaming-path coverage: chunked fetches that matched the oracle,
  // cursor resumes journaled, and cancels accounted on a server.
  std::uint64_t stream_fetches = 0;
  std::uint64_t stream_resumes = 0;
  std::uint64_t stream_cancels = 0;
  // Invariant violations; empty = the run passed.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

ChaosReport RunChaos(const ChaosOptions& options);

}  // namespace vizndp::testing
