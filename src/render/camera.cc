#include "render/camera.h"

#include <cmath>

#include "common/error.h"

namespace vizndp::render {

namespace {

contour::Vec3 Normalize(const contour::Vec3& v) {
  const double n = v.Norm();
  VIZNDP_CHECK_MSG(n > 0, "degenerate camera vector");
  return {v.x / n, v.y / n, v.z / n};
}

}  // namespace

Camera::Camera(contour::Vec3 eye, contour::Vec3 target, contour::Vec3 up,
               double vertical_fov_deg, double aspect)
    : eye_(eye) {
  forward_ = Normalize(target - eye);
  right_ = Normalize(forward_.Cross(up));
  up_ = right_.Cross(forward_);
  const double half = vertical_fov_deg * 3.14159265358979 / 360.0;
  scale_y_ = 1.0 / std::tan(half);
  scale_x_ = scale_y_ / aspect;
}

contour::Vec3 Camera::Project(const contour::Vec3& world) const {
  const contour::Vec3 rel = world - eye_;
  const double depth = rel.Dot(forward_);
  if (depth <= 1e-9) {
    return {0, 0, depth};  // behind the camera; caller culls on z
  }
  return {scale_x_ * rel.Dot(right_) / depth, scale_y_ * rel.Dot(up_) / depth,
          depth};
}

}  // namespace vizndp::render
