// Pipeline sink that renders incoming PolyData to a PPM image — the
// terminal stage of our reproduction pipelines (the paper's OpenGL sink).
#pragma once

#include "pipeline/algorithm.h"
#include "render/rasterizer.h"

namespace vizndp::render {

class RenderSink final : public pipeline::Algorithm {
 public:
  RenderSink(std::string path, Camera camera, int width = 640,
             int height = 480)
      : path_(std::move(path)),
        camera_(camera),
        width_(width),
        height_(height) {}

  void SetMaterial(const Material& m) {
    material_ = m;
    Modified();
  }
  void SetPath(std::string path) {
    path_ = std::move(path);
    Modified();
  }

  // Valid after Update(); lets tests assert something was drawn.
  double last_coverage() const { return last_coverage_; }

  std::string Name() const override { return "RenderSink(" + path_ + ")"; }
  int InputPortCount() const override { return 1; }

 protected:
  pipeline::DataObjectPtr Execute(
      const std::vector<pipeline::DataObjectPtr>& inputs) override;

 private:
  std::string path_;
  Camera camera_;
  int width_;
  int height_;
  Material material_;
  double last_coverage_ = 0.0;
};

}  // namespace vizndp::render
