// RGB framebuffer with z-buffer; writes binary PPM. The sink end of the
// pipeline — stands in for the paper's OpenGL render subpipeline so our
// pipelines terminate in an actual image.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vizndp::render {

struct Color {
  std::uint8_t r = 0, g = 0, b = 0;
};

class Framebuffer {
 public:
  Framebuffer(int width, int height, Color background = {16, 16, 24});

  int width() const { return width_; }
  int height() const { return height_; }

  void Clear(Color background);

  // Depth-tested pixel write (smaller depth wins; view looks down -z).
  void SetPixel(int x, int y, double depth, Color color);

  Color GetPixel(int x, int y) const;

  void WritePpm(const std::string& path) const;

  // Fraction of pixels differing from the clear color; a cheap "did
  // anything render" probe for tests.
  double CoverageFraction() const;

 private:
  int width_;
  int height_;
  Color background_;
  std::vector<Color> pixels_;
  std::vector<double> depth_;
};

}  // namespace vizndp::render
