// Minimal look-at + perspective camera for the software rasterizer.
#pragma once

#include "contour/polydata.h"

namespace vizndp::render {

class Camera {
 public:
  // eye/target in world space; `up` need not be orthogonal to the view.
  Camera(contour::Vec3 eye, contour::Vec3 target, contour::Vec3 up,
         double vertical_fov_deg, double aspect);

  // World -> normalized view coordinates. Returns x,y in [-1,1] for
  // visible points; z is positive view-space depth (<= 0 means behind
  // the camera).
  contour::Vec3 Project(const contour::Vec3& world) const;

 private:
  contour::Vec3 eye_;
  contour::Vec3 right_, up_, forward_;
  double scale_y_;  // 1 / tan(fov/2)
  double scale_x_;
};

}  // namespace vizndp::render
