// Triangle/line rasterization with z-buffering and Lambert shading.
#pragma once

#include "render/camera.h"
#include "render/framebuffer.h"

namespace vizndp::render {

struct Material {
  Color base = {200, 200, 220};
  // Light direction in world space (toward the light); shading is
  // two-sided Lambert plus a small ambient floor.
  contour::Vec3 light = {0.4, 0.5, 0.8};
  double ambient = 0.25;
};

// Renders triangles (shaded) and lines (flat base color) into `fb`.
void RenderPolyData(const contour::PolyData& poly, const Camera& camera,
                    const Material& material, Framebuffer& fb);

}  // namespace vizndp::render
