#include "render/render_sink.h"

namespace vizndp::render {

pipeline::DataObjectPtr RenderSink::Execute(
    const std::vector<pipeline::DataObjectPtr>& inputs) {
  const contour::PolyData& poly = inputs.at(0)->AsPolyData();
  Framebuffer fb(width_, height_);
  RenderPolyData(poly, camera_, material_, fb);
  fb.WritePpm(path_);
  last_coverage_ = fb.CoverageFraction();
  return inputs.at(0);
}

}  // namespace vizndp::render
