#include "render/rasterizer.h"

#include <algorithm>
#include <cmath>

namespace vizndp::render {

namespace {

struct ScreenPoint {
  double x, y, depth;
  bool visible;
};

ScreenPoint ToScreen(const contour::Vec3& world, const Camera& camera,
                     const Framebuffer& fb) {
  const contour::Vec3 p = camera.Project(world);
  ScreenPoint sp;
  sp.visible = p.z > 0;
  sp.depth = p.z;
  sp.x = (p.x * 0.5 + 0.5) * (fb.width() - 1);
  sp.y = (1.0 - (p.y * 0.5 + 0.5)) * (fb.height() - 1);
  return sp;
}

Color Shade(const Material& m, double lambert) {
  const double f = std::clamp(m.ambient + (1.0 - m.ambient) * lambert, 0.0, 1.0);
  return {static_cast<std::uint8_t>(m.base.r * f),
          static_cast<std::uint8_t>(m.base.g * f),
          static_cast<std::uint8_t>(m.base.b * f)};
}

void DrawTriangle(const ScreenPoint& a, const ScreenPoint& b,
                  const ScreenPoint& c, Color color, Framebuffer& fb) {
  if (!a.visible || !b.visible || !c.visible) return;
  const int min_x = std::max(0, static_cast<int>(
                                    std::floor(std::min({a.x, b.x, c.x}))));
  const int max_x = std::min(fb.width() - 1,
                             static_cast<int>(std::ceil(std::max({a.x, b.x, c.x}))));
  const int min_y = std::max(0, static_cast<int>(
                                    std::floor(std::min({a.y, b.y, c.y}))));
  const int max_y = std::min(fb.height() - 1,
                             static_cast<int>(std::ceil(std::max({a.y, b.y, c.y}))));
  const double denom =
      (b.y - c.y) * (a.x - c.x) + (c.x - b.x) * (a.y - c.y);
  if (std::abs(denom) < 1e-12) return;  // degenerate in screen space
  for (int y = min_y; y <= max_y; ++y) {
    for (int x = min_x; x <= max_x; ++x) {
      const double w0 =
          ((b.y - c.y) * (x - c.x) + (c.x - b.x) * (y - c.y)) / denom;
      const double w1 =
          ((c.y - a.y) * (x - c.x) + (a.x - c.x) * (y - c.y)) / denom;
      const double w2 = 1.0 - w0 - w1;
      if (w0 < 0 || w1 < 0 || w2 < 0) continue;
      const double depth = w0 * a.depth + w1 * b.depth + w2 * c.depth;
      fb.SetPixel(x, y, depth, color);
    }
  }
}

void DrawLine(const ScreenPoint& a, const ScreenPoint& b, Color color,
              Framebuffer& fb) {
  if (!a.visible || !b.visible) return;
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const int steps =
      std::max(1, static_cast<int>(std::ceil(std::max(std::abs(dx),
                                                      std::abs(dy)))));
  for (int s = 0; s <= steps; ++s) {
    const double t = static_cast<double>(s) / steps;
    // Bias depth slightly toward the camera so lines win ties with
    // coincident surfaces.
    fb.SetPixel(static_cast<int>(std::round(a.x + t * dx)),
                static_cast<int>(std::round(a.y + t * dy)),
                (a.depth + t * (b.depth - a.depth)) * 0.999, color);
  }
}

}  // namespace

void RenderPolyData(const contour::PolyData& poly, const Camera& camera,
                    const Material& material, Framebuffer& fb) {
  const auto& pts = poly.points();
  const double light_norm = material.light.Norm();
  const contour::Vec3 light = {material.light.x / light_norm,
                               material.light.y / light_norm,
                               material.light.z / light_norm};

  for (const auto& t : poly.triangles()) {
    const contour::Vec3& a = pts[t[0]];
    const contour::Vec3& b = pts[t[1]];
    const contour::Vec3& c = pts[t[2]];
    contour::Vec3 n = (b - a).Cross(c - a);
    const double nn = n.Norm();
    if (nn < 1e-15) continue;
    n = {n.x / nn, n.y / nn, n.z / nn};
    const double lambert = std::abs(n.Dot(light));  // two-sided
    DrawTriangle(ToScreen(a, camera, fb), ToScreen(b, camera, fb),
                 ToScreen(c, camera, fb), Shade(material, lambert), fb);
  }
  for (const auto& l : poly.lines()) {
    DrawLine(ToScreen(pts[l[0]], camera, fb), ToScreen(pts[l[1]], camera, fb),
             material.base, fb);
  }
}

}  // namespace vizndp::render
