#include "render/framebuffer.h"

#include <fstream>
#include <limits>

#include "common/error.h"

namespace vizndp::render {

Framebuffer::Framebuffer(int width, int height, Color background)
    : width_(width), height_(height), background_(background) {
  VIZNDP_CHECK(width > 0 && height > 0);
  Clear(background);
}

void Framebuffer::Clear(Color background) {
  background_ = background;
  pixels_.assign(static_cast<size_t>(width_) * height_, background);
  depth_.assign(static_cast<size_t>(width_) * height_,
                std::numeric_limits<double>::infinity());
}

void Framebuffer::SetPixel(int x, int y, double depth, Color color) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return;
  const size_t idx = static_cast<size_t>(y) * width_ + x;
  if (depth < depth_[idx]) {
    depth_[idx] = depth;
    pixels_[idx] = color;
  }
}

Color Framebuffer::GetPixel(int x, int y) const {
  VIZNDP_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
  return pixels_[static_cast<size_t>(y) * width_ + x];
}

void Framebuffer::WritePpm(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  VIZNDP_CHECK_MSG(os.good(), "cannot open " + path);
  os << "P6\n" << width_ << " " << height_ << "\n255\n";
  os.write(reinterpret_cast<const char*>(pixels_.data()),
           static_cast<std::streamsize>(pixels_.size() * sizeof(Color)));
  VIZNDP_CHECK_MSG(os.good(), "short write to " + path);
}

double Framebuffer::CoverageFraction() const {
  size_t covered = 0;
  for (const Color& c : pixels_) {
    if (c.r != background_.r || c.g != background_.g || c.b != background_.b) {
      ++covered;
    }
  }
  return static_cast<double>(covered) / static_cast<double>(pixels_.size());
}

}  // namespace vizndp::render
