#include "net/inproc.h"

#include <condition_variable>
#include <deque>
#include <mutex>

#include "common/error.h"

namespace vizndp::net {

namespace {

// One direction of the duplex channel.
struct FrameQueue {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Bytes> frames;
  bool closed = false;

  void Push(Bytes frame) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (closed) {
        throw PeerClosedError("send on closed in-proc channel");
      }
      frames.push_back(std::move(frame));
    }
    cv.notify_one();
  }

  Bytes Pop(Deadline deadline) {
    std::unique_lock<std::mutex> lock(mu);
    const auto ready = [this] { return !frames.empty() || closed; };
    if (deadline == kNoDeadline) {
      cv.wait(lock, ready);
    } else if (!ready()) {
      // An already-expired deadline is a non-blocking poll (the server
      // sweeps for cancel frames between chunks this way). Handing it to
      // wait_until anyway costs a pointless timed futex wait — tens of
      // microseconds per call on glibc — which dominates per-chunk
      // streaming cost.
      if (deadline <= std::chrono::steady_clock::now() ||
          !cv.wait_until(lock, deadline, ready)) {
        throw TimeoutError("in-proc receive deadline exceeded");
      }
    }
    if (frames.empty()) {
      throw PeerClosedError("in-proc channel closed by peer");
    }
    Bytes frame = std::move(frames.front());
    frames.pop_front();
    return frame;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu);
      closed = true;
    }
    cv.notify_all();
  }
};

struct Channel {
  FrameQueue a_to_b;
  FrameQueue b_to_a;
};

class InProcEndpoint final : public Transport {
 public:
  InProcEndpoint(std::shared_ptr<Channel> channel, bool is_a,
                 SimulatedLink* link)
      : channel_(std::move(channel)), is_a_(is_a), link_(link) {}

  ~InProcEndpoint() override { Close(); }

  void Send(ByteSpan frame) override {
    if (link_ != nullptr) {
      link_->ChargeTransfer(frame.size());
    }
    SendQueue().Push(Bytes(frame.begin(), frame.end()));
  }

  Bytes Receive(Deadline deadline) override {
    return ReceiveQueue().Pop(deadline);
  }

  // Full-duplex teardown, matching TCP close(): after either side
  // closes, the peer's sends fail with PeerClosedError (EPIPE-alike)
  // and its receives drain queued frames before reporting closure.
  void Close() override {
    SendQueue().Close();
    ReceiveQueue().Close();
  }

 private:
  FrameQueue& SendQueue() {
    return is_a_ ? channel_->a_to_b : channel_->b_to_a;
  }
  FrameQueue& ReceiveQueue() {
    return is_a_ ? channel_->b_to_a : channel_->a_to_b;
  }

  std::shared_ptr<Channel> channel_;
  bool is_a_;
  SimulatedLink* link_;
};

}  // namespace

TransportPair CreateInProcPair(SimulatedLink* link) {
  auto channel = std::make_shared<Channel>();
  return {std::make_unique<InProcEndpoint>(channel, true, link),
          std::make_unique<InProcEndpoint>(channel, false, link)};
}

}  // namespace vizndp::net
