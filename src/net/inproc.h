// In-process transport: a pair of connected endpoints backed by
// thread-safe frame queues, with every Send charged to a SimulatedLink.
// This is how the storage node and the client node are emulated on one
// server (see DESIGN.md, hardware substitutions).
#pragma once

#include <memory>

#include "net/link_model.h"
#include "net/transport.h"

namespace vizndp::net {

struct TransportPair {
  TransportPtr a;
  TransportPtr b;
};

// Creates two connected endpoints. `link` may be null (no cost accounting,
// e.g. unit tests); it must outlive both endpoints otherwise.
TransportPair CreateInProcPair(SimulatedLink* link = nullptr);

}  // namespace vizndp::net
