#include "net/retry.h"

#include <algorithm>
#include <thread>

#include "obs/trace.h"

namespace vizndp::net {

std::uint64_t MixBits(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::chrono::microseconds RetryPolicy::DelayBefore(int retry,
                                                   std::uint64_t salt) const {
  if (retry < 1 || base_delay.count() <= 0) {
    return std::chrono::microseconds{0};
  }
  // base * 2^(retry-1), saturating at max_delay (shift capped so a large
  // retry count cannot overflow).
  const int shift = std::min(retry - 1, 40);
  const auto exp = static_cast<std::uint64_t>(base_delay.count()) << shift;
  const auto capped =
      std::min<std::uint64_t>(exp, static_cast<std::uint64_t>(
                                       std::max<std::int64_t>(
                                           max_delay.count(), 0)));
  if (jitter <= 0.0) return std::chrono::microseconds(capped);
  const std::uint64_t h =
      MixBits(seed ^ MixBits(static_cast<std::uint64_t>(retry)) ^ salt);
  // Uniform in [0, 1): 53 high bits of the hash.
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  const double factor = 1.0 - std::min(jitter, 1.0) * u;
  return std::chrono::microseconds(
      static_cast<std::int64_t>(static_cast<double>(capped) * factor));
}

void BackoffSleep(const RetryPolicy& policy, int retry, std::uint64_t salt) {
  const auto delay = policy.DelayBefore(retry, salt);
  if (delay.count() > 0) {
    // The inter-attempt gap is part of a traced request's story: render
    // the backoff as its own span instead of unexplained dead air
    // between two rpc.attempt spans.
    obs::Span span("net.backoff");
    std::this_thread::sleep_for(delay);
  }
}

}  // namespace vizndp::net
