// ReconnectingTransport: a Transport decorator that re-dials through a
// transport factory when the peer is lost. Send-side peer loss is
// retried transparently (the frame is re-sent on a fresh connection);
// receive-side loss propagates, because a frame-oriented caller must
// re-issue its request — the reply it was waiting for died with the old
// connection. rpc::Client's retry loop composes with this: the re-issued
// call lands on the re-dialed connection.
#pragma once

#include <functional>

#include "net/retry.h"
#include "net/transport.h"

namespace vizndp::net {

using TransportFactory = std::function<TransportPtr()>;

struct ReconnectStats {
  std::uint64_t reconnects = 0;     // successful re-dials after peer loss
  std::uint64_t dial_failures = 0;  // factory attempts that threw
};

class ReconnectingTransport final : public Transport {
 public:
  // `dial_policy.max_attempts` bounds the tries per (re)connection;
  // backoff applies between failed dials.
  explicit ReconnectingTransport(TransportFactory factory,
                                 RetryPolicy dial_policy = {});

  const ReconnectStats& stats() const { return stats_; }

  void Send(ByteSpan frame) override;
  using Transport::Receive;
  Bytes Receive(Deadline deadline) override;
  void Close() override;

 private:
  void EnsureConnected();

  TransportFactory factory_;
  RetryPolicy policy_;
  TransportPtr inner_;
  bool closed_ = false;
  bool was_connected_ = false;
  ReconnectStats stats_;
};

}  // namespace vizndp::net
