// Message-oriented transport abstraction. Everything above this layer
// (RPC, the file gateway) exchanges discrete frames; the two concrete
// transports are an in-process channel with a modeled link (to emulate the
// paper's 2-node/1GbE testbed on one machine) and real TCP sockets.
// Decorators (FaultInjectingTransport, ReconnectingTransport) wrap any
// transport to add failure injection or automatic re-dialing.
#pragma once

#include <chrono>
#include <memory>

#include "common/bytes.h"

namespace vizndp::net {

// Absolute receive deadline on the monotonic clock. kNoDeadline blocks
// forever (the pre-fault-tolerance behaviour).
using Deadline = std::chrono::steady_clock::time_point;
inline constexpr Deadline kNoDeadline = Deadline::max();

// Deadline `timeout` from now; a zero or negative timeout means "no
// deadline" so configs can use 0 as the off switch.
inline Deadline DeadlineAfter(std::chrono::nanoseconds timeout) {
  if (timeout.count() <= 0) return kNoDeadline;
  return std::chrono::steady_clock::now() + timeout;
}

class Transport {
 public:
  virtual ~Transport() = default;

  // Sends one frame. Thread-safe with respect to Receive on the same
  // endpoint (full-duplex), not with concurrent Send calls. Throws
  // PeerClosedError when the peer is gone.
  virtual void Send(ByteSpan frame) = 0;

  // Blocks until a frame arrives or `deadline` passes. Throws
  // TimeoutError on deadline expiry and PeerClosedError when the peer
  // closed. A deadline already in the past degrades to a non-blocking
  // poll: a frame that has fully arrived is returned, otherwise
  // TimeoutError — without sleeping. Streaming handlers lean on this to
  // sweep for cancel frames between chunks at negligible cost.
  virtual Bytes Receive(Deadline deadline) = 0;

  // Blocks until a frame arrives (no deadline).
  Bytes Receive() { return Receive(kNoDeadline); }

  // Signals the peer that no more frames will come; subsequent Receive on
  // the peer throws once its queue drains.
  virtual void Close() = 0;
};

using TransportPtr = std::unique_ptr<Transport>;

}  // namespace vizndp::net
