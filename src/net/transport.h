// Message-oriented transport abstraction. Everything above this layer
// (RPC, the file gateway) exchanges discrete frames; the two concrete
// transports are an in-process channel with a modeled link (to emulate the
// paper's 2-node/1GbE testbed on one machine) and real TCP sockets.
#pragma once

#include <memory>

#include "common/bytes.h"

namespace vizndp::net {

class Transport {
 public:
  virtual ~Transport() = default;

  // Sends one frame. Thread-safe with respect to Receive on the same
  // endpoint (full-duplex), not with concurrent Send calls.
  virtual void Send(ByteSpan frame) = 0;

  // Blocks until a frame arrives. Throws Error when the peer closed.
  virtual Bytes Receive() = 0;

  // Signals the peer that no more frames will come; subsequent Receive on
  // the peer throws once its queue drains.
  virtual void Close() = 0;
};

using TransportPtr = std::unique_ptr<Transport>;

}  // namespace vizndp::net
