// Real TCP transport (POSIX sockets) with 4-byte little-endian length
// framing. Lets the NDP server and client actually run as two processes
// (examples/ndp_server + examples/ndp_client), validating that the
// emulated setup and the real one speak the same protocol.
//
// Fault behaviour: Receive honours an absolute deadline via poll() and
// throws TimeoutError; EPIPE/ECONNRESET on either direction map to
// PeerClosedError (sends use MSG_NOSIGNAL, so a dead peer never raises
// SIGPIPE); a length header above max_frame_bytes throws DecodeError
// before any allocation, so a poisoned peer cannot demand gigabytes.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "net/transport.h"

namespace vizndp::net {

struct TcpOptions {
  // 0 = the OS connect timeout (minutes); anything else bounds the dial.
  std::chrono::milliseconds connect_timeout{0};
  // Largest frame Receive will accept. Oversized headers throw
  // DecodeError and poison the connection (the stream is untrustworthy).
  std::uint64_t max_frame_bytes = 1ull << 30;
};

// Connects to host:port; throws IoError on failure and TimeoutError when
// options.connect_timeout elapses first.
TransportPtr TcpConnect(const std::string& host, std::uint16_t port,
                        const TcpOptions& options = {});

class TcpListener {
 public:
  // Binds to 127.0.0.1:`port`; port 0 picks an ephemeral port (see port()).
  explicit TcpListener(std::uint16_t port, const TcpOptions& options = {});
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Blocks for one inbound connection (served with this listener's
  // TcpOptions).
  TransportPtr Accept();

  std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  TcpOptions options_;
};

}  // namespace vizndp::net
