// Real TCP transport (POSIX sockets) with 4-byte little-endian length
// framing. Lets the NDP server and client actually run as two processes
// (examples/ndp_server + examples/ndp_client), validating that the
// emulated setup and the real one speak the same protocol.
#pragma once

#include <cstdint>
#include <string>

#include "net/transport.h"

namespace vizndp::net {

// Connects to host:port; throws IoError on failure.
TransportPtr TcpConnect(const std::string& host, std::uint16_t port);

class TcpListener {
 public:
  // Binds to 127.0.0.1:`port`; port 0 picks an ephemeral port (see port()).
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Blocks for one inbound connection.
  TransportPtr Accept();

  std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace vizndp::net
