#include "net/reconnect.h"

#include "common/error.h"

namespace vizndp::net {

ReconnectingTransport::ReconnectingTransport(TransportFactory factory,
                                             RetryPolicy dial_policy)
    : factory_(std::move(factory)), policy_(dial_policy) {}

// Dials (or re-dials) with backoff. Throws the last dial error once
// policy_.max_attempts factory calls have failed.
void ReconnectingTransport::EnsureConnected() {
  if (closed_) throw PeerClosedError("reconnecting transport is closed");
  if (inner_ != nullptr) return;
  const int attempts = std::max(policy_.max_attempts, 1);
  for (int attempt = 1;; ++attempt) {
    try {
      inner_ = factory_();
      if (was_connected_) ++stats_.reconnects;
      was_connected_ = true;
      return;
    } catch (const Error&) {
      ++stats_.dial_failures;
      if (attempt >= attempts) throw;
      BackoffSleep(policy_, attempt);
    }
  }
}

void ReconnectingTransport::Send(ByteSpan frame) {
  // A send that lands on a closed channel never delivered its frame, so
  // re-dialing and re-sending is not a retry of the remote operation —
  // it is always safe, and always allowed at least once even under the
  // no-retry default policy (otherwise every first call after a server
  // restart fails on the stale connection). The policy only raises how
  // many successive incarnations may die mid-send before giving up.
  const int attempts = std::max(policy_.max_attempts, 2);
  for (int attempt = 1;; ++attempt) {
    EnsureConnected();
    try {
      inner_->Send(frame);
      return;
    } catch (const PeerClosedError&) {
      // The peer died under us: drop the connection; the next loop round
      // re-dials and re-sends this frame.
      inner_.reset();
      if (attempt >= attempts) throw;
      BackoffSleep(policy_, attempt);
    }
  }
}

Bytes ReconnectingTransport::Receive(Deadline deadline) {
  EnsureConnected();
  try {
    return inner_->Receive(deadline);
  } catch (const PeerClosedError&) {
    // The pending reply is unrecoverable; the caller must re-issue its
    // request, which will arrive on a fresh connection.
    inner_.reset();
    throw;
  }
}

void ReconnectingTransport::Close() {
  closed_ = true;
  if (inner_ != nullptr) inner_->Close();
}

}  // namespace vizndp::net
