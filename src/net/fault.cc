#include "net/fault.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "net/retry.h"

namespace vizndp::net {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPass: return "pass";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kBitFlip: return "bit_flip";
    case FaultKind::kDisconnect: return "disconnect";
  }
  return "?";
}

FaultInjectingTransport::FaultInjectingTransport(TransportPtr inner)
    : inner_(std::move(inner)) {}

void FaultInjectingTransport::ScriptSend(std::vector<FaultAction> script,
                                         bool loop_last) {
  std::lock_guard<std::mutex> lock(mu_);
  send_.script = std::move(script);
  send_.next = 0;
  send_.loop_last = loop_last;
}

void FaultInjectingTransport::ScriptReceive(std::vector<FaultAction> script,
                                            bool loop_last) {
  std::lock_guard<std::mutex> lock(mu_);
  recv_.script = std::move(script);
  recv_.next = 0;
  recv_.loop_last = loop_last;
}

void FaultInjectingTransport::SetRandomFaults(
    const FaultProbabilities& probabilities) {
  std::lock_guard<std::mutex> lock(mu_);
  random_ = probabilities;
}

FaultStats FaultInjectingTransport::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// Caller holds mu_.
FaultAction FaultInjectingTransport::NextAction(Direction& dir) {
  const std::uint64_t frame = dir.frame_count++;
  if (dir.next < dir.script.size()) {
    const FaultAction action = dir.script[dir.next];
    if (dir.next + 1 < dir.script.size() || !dir.loop_last) ++dir.next;
    return action;
  }
  // Script exhausted: seeded-random mix (default all-zero = pass).
  const double u =
      static_cast<double>(MixBits(random_.seed ^ (frame * 2 + (&dir == &send_)))
                          >> 11) *
      0x1.0p-53;
  double acc = random_.drop;
  if (u < acc) return FaultAction::Drop();
  acc += random_.duplicate;
  if (u < acc) return FaultAction::Duplicate();
  acc += random_.bit_flip;
  if (u < acc) {
    return FaultAction::BitFlip(
        static_cast<size_t>(MixBits(random_.seed + frame)));
  }
  return FaultAction::Pass();
}

Bytes FaultInjectingTransport::Corrupt(ByteSpan frame,
                                       const FaultAction& action) {
  Bytes out(frame.begin(), frame.end());
  if (action.kind == FaultKind::kTruncate) {
    out.resize(std::min(out.size(), action.truncate_to));
  } else if (action.kind == FaultKind::kBitFlip && !out.empty()) {
    const size_t bit = action.flip_bit % (out.size() * 8);
    out[bit / 8] ^= static_cast<Byte>(1u << (bit % 8));
  }
  return out;
}

void FaultInjectingTransport::ThrowDisconnected() {
  throw PeerClosedError("fault injection: peer disconnected");
}

void FaultInjectingTransport::Send(ByteSpan frame) {
  FaultAction action;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (disconnected_) ThrowDisconnected();
    action = NextAction(send_);
    switch (action.kind) {
      case FaultKind::kDrop:
        ++stats_.dropped;
        return;  // the frame silently vanishes
      case FaultKind::kDelay: ++stats_.delayed; break;
      case FaultKind::kDuplicate: ++stats_.duplicated; break;
      case FaultKind::kTruncate: ++stats_.truncated; break;
      case FaultKind::kBitFlip: ++stats_.bits_flipped; break;
      case FaultKind::kDisconnect:
        ++stats_.disconnects;
        disconnected_ = true;
        break;
      case FaultKind::kPass: break;
    }
  }
  // I/O and sleeps happen outside the lock so the receive side never
  // blocks behind an injected send delay.
  switch (action.kind) {
    case FaultKind::kDisconnect:
      inner_->Close();
      ThrowDisconnected();
    case FaultKind::kDelay:
      std::this_thread::sleep_for(action.delay);
      break;
    case FaultKind::kTruncate:
    case FaultKind::kBitFlip: {
      const Bytes corrupted = Corrupt(frame, action);
      inner_->Send(corrupted);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.frames_sent;
      return;
    }
    case FaultKind::kDuplicate:
      inner_->Send(frame);
      break;
    default:
      break;
  }
  inner_->Send(frame);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.frames_sent += action.kind == FaultKind::kDuplicate ? 2 : 1;
}

Bytes FaultInjectingTransport::Receive(Deadline deadline) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (disconnected_) ThrowDisconnected();
      if (!pending_receives_.empty()) {
        Bytes frame = std::move(pending_receives_.front());
        pending_receives_.pop_front();
        ++stats_.frames_received;
        return frame;
      }
    }
    Bytes frame = inner_->Receive(deadline);
    FaultAction action;
    {
      std::lock_guard<std::mutex> lock(mu_);
      action = NextAction(recv_);
    }
    switch (action.kind) {
      case FaultKind::kDrop: {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.dropped;
        continue;  // the frame is lost; wait for the next one
      }
      case FaultKind::kDelay: {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.delayed;
        }
        if (deadline != kNoDeadline) {
          const auto now = std::chrono::steady_clock::now();
          if (now + action.delay >= deadline) {
            // The injected stall outlives the caller's deadline: the
            // frame is effectively lost to this receive.
            std::this_thread::sleep_until(deadline);
            throw TimeoutError("fault injection: delayed past deadline");
          }
        }
        std::this_thread::sleep_for(action.delay);
        break;
      }
      case FaultKind::kDuplicate: {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.duplicated;
        pending_receives_.emplace_back(frame);
        break;
      }
      case FaultKind::kTruncate:
      case FaultKind::kBitFlip: {
        Bytes corrupted = Corrupt(frame, action);
        std::lock_guard<std::mutex> lock(mu_);
        if (action.kind == FaultKind::kTruncate) ++stats_.truncated;
        else ++stats_.bits_flipped;
        ++stats_.frames_received;
        return corrupted;
      }
      case FaultKind::kDisconnect: {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.disconnects;
          disconnected_ = true;
        }
        inner_->Close();
        ThrowDisconnected();
      }
      case FaultKind::kPass:
        break;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.frames_received;
    return frame;
  }
}

void FaultInjectingTransport::Close() { inner_->Close(); }

namespace {

FaultAction ParseAction(const std::string& name, long param) {
  if (name == "pass") return FaultAction::Pass();
  if (name == "drop") return FaultAction::Drop();
  if (name == "delay") return FaultAction::Delay(std::chrono::microseconds(param));
  if (name == "dup") return FaultAction::Duplicate();
  if (name == "truncate") return FaultAction::Truncate(static_cast<size_t>(param));
  if (name == "flip") return FaultAction::BitFlip(static_cast<size_t>(param));
  if (name == "down") return FaultAction::Disconnect();
  throw Error("unknown fault action '" + name + "'");
}

}  // namespace

FaultSpec ParseFaultSpec(const std::string& spec) {
  FaultSpec out;
  std::stringstream ss(spec);
  std::string entry;
  while (std::getline(ss, entry, ',')) {
    if (entry.empty()) continue;
    bool loop = false;
    if (entry.back() == '+') {
      loop = true;
      entry.pop_back();
    }
    const size_t dot = entry.find('.');
    if (dot == std::string::npos) {
      throw Error("fault entry '" + entry + "' needs send./recv. prefix");
    }
    const std::string dir = entry.substr(0, dot);
    std::string rest = entry.substr(dot + 1);
    long count = 1;
    if (const size_t star = rest.find('*'); star != std::string::npos) {
      count = std::atol(rest.c_str() + star + 1);
      rest = rest.substr(0, star);
      if (count < 1) throw Error("fault count must be >= 1 in '" + entry + "'");
    }
    long param = 0;
    if (const size_t eq = rest.find('='); eq != std::string::npos) {
      param = std::atol(rest.c_str() + eq + 1);
      rest = rest.substr(0, eq);
    }
    const FaultAction action = ParseAction(rest, param);
    auto* script = dir == "send" ? &out.send_script
                 : dir == "recv" ? &out.recv_script
                                 : nullptr;
    if (script == nullptr) {
      throw Error("fault direction must be send or recv in '" + entry + "'");
    }
    for (long i = 0; i < count; ++i) script->push_back(action);
    if (loop) {
      (dir == "send" ? out.send_loop_last : out.recv_loop_last) = true;
    }
  }
  return out;
}

TransportPtr WrapWithFaults(TransportPtr inner, const std::string& spec) {
  const FaultSpec parsed = ParseFaultSpec(spec);
  auto faulty = std::make_unique<FaultInjectingTransport>(std::move(inner));
  faulty->ScriptSend(parsed.send_script, parsed.send_loop_last);
  faulty->ScriptReceive(parsed.recv_script, parsed.recv_loop_last);
  return faulty;
}

}  // namespace vizndp::net
