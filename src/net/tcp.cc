#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/error.h"

namespace vizndp::net {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

bool IsPeerGone(int err) {
  return err == EPIPE || err == ECONNRESET || err == ENOTCONN;
}

// Sends the whole buffer, looping over partial writes. MSG_NOSIGNAL keeps
// a dead peer from raising SIGPIPE; EPIPE/ECONNRESET surface as the typed
// peer-closed error instead of a raw errno string.
void WriteAll(int fd, const Byte* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (IsPeerGone(errno)) {
        throw PeerClosedError("tcp peer closed during send");
      }
      ThrowErrno("tcp write");
    }
    off += static_cast<size_t>(n);
  }
}

// Waits until `fd` is readable or `deadline` passes. An already-expired
// deadline still checks readability once with a zero timeout: callers use
// Receive(now) as a non-blocking poll (the server's between-chunk cancel
// sweep), and a frame that has already arrived must be visible to it.
void PollReadable(int fd, Deadline deadline) {
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      pollfd expired{fd, POLLIN, 0};
      int rc = ::poll(&expired, 1, 0);
      while (rc < 0 && errno == EINTR) rc = ::poll(&expired, 1, 0);
      if (rc < 0) ThrowErrno("tcp poll");
      if (rc > 0) return;
      throw TimeoutError("tcp receive deadline exceeded");
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    // +1 rounds up so we never poll(0) in a hot loop just before expiry.
    const int timeout_ms =
        static_cast<int>(std::min<long long>(remaining.count() + 1,
                                             60'000));
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("tcp poll");
    }
    if (rc > 0) return;
    // rc == 0: timed out this round; loop re-checks the deadline (and
    // re-polls when the deadline is further than one poll quantum away).
  }
}

// Returns false on clean EOF at a frame boundary. With a deadline, every
// blocking read is preceded by a poll; TimeoutError propagates to the
// caller with `*consumed` telling it whether the stream is still framed.
bool ReadAll(int fd, Byte* data, size_t size, Deadline deadline,
             size_t* consumed = nullptr) {
  size_t off = 0;
  while (off < size) {
    if (deadline != kNoDeadline) PollReadable(fd, deadline);
    const ssize_t n = ::read(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (IsPeerGone(errno)) {
        throw PeerClosedError("tcp peer reset during read");
      }
      ThrowErrno("tcp read");
    }
    if (n == 0) {
      if (off == 0) return false;
      throw PeerClosedError("tcp connection closed mid-frame");
    }
    off += static_cast<size_t>(n);
    if (consumed != nullptr) *consumed += static_cast<size_t>(n);
  }
  return true;
}

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(int fd, const TcpOptions& options)
      : fd_(fd), options_(options) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpTransport() override { Close(); }

  void Send(ByteSpan frame) override {
    if (fd_ < 0) throw PeerClosedError("tcp transport is closed");
    Byte header[4];
    VIZNDP_CHECK_MSG(frame.size() <= 0xFFFFFFFFull, "frame too large");
    StoreLE(static_cast<std::uint32_t>(frame.size()), header);
    WriteAll(fd_, header, sizeof(header));
    WriteAll(fd_, frame.data(), frame.size());
  }

  Bytes Receive(Deadline deadline) override {
    if (fd_ < 0) throw PeerClosedError("tcp transport is closed");
    Byte header[4];
    size_t consumed = 0;
    // In poll mode (deadline already expired) the sender has started the
    // frame if the header is readable, but Send() writes header and body
    // separately, so the body may still be in flight for a few
    // microseconds. A short grace finishes it instead of timing out
    // mid-frame, which would poison an otherwise healthy connection.
    const bool poll_mode = deadline != kNoDeadline &&
                           deadline <= std::chrono::steady_clock::now();
    try {
      if (!ReadAll(fd_, header, sizeof(header), deadline, &consumed)) {
        throw PeerClosedError("tcp connection closed by peer");
      }
      if (poll_mode) {
        deadline =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
      }
      const std::uint32_t size = LoadLE<std::uint32_t>(header);
      if (size > options_.max_frame_bytes) {
        // Refuse before allocating: a malicious or corrupted header can
        // claim up to 4 GiB. The stream cannot be trusted past this
        // point, so the connection dies with it.
        Close();
        throw DecodeError("tcp frame length " + std::to_string(size) +
                          " exceeds max_frame_bytes " +
                          std::to_string(options_.max_frame_bytes));
      }
      Bytes frame(size);
      if (size > 0 && !ReadAll(fd_, frame.data(), size, deadline, &consumed)) {
        throw PeerClosedError("tcp connection closed mid-frame");
      }
      return frame;
    } catch (const TimeoutError&) {
      // A timeout before any byte of the frame was consumed leaves the
      // stream framed and the connection reusable. Mid-frame, the unread
      // remainder would desynchronise every later Receive — poison the
      // connection so the caller reconnects instead of misparsing.
      if (consumed != 0) Close();
      throw;
    }
  }

  void Close() override {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_WR);
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
  TcpOptions options_;
};

int ConnectWithTimeout(int fd, const sockaddr* addr, socklen_t len,
                       std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) {
    return ::connect(fd, addr, len);
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, addr, len);
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (ready == 0) {
      errno = ETIMEDOUT;
      rc = -1;
    } else if (ready > 0) {
      int err = 0;
      socklen_t err_len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
      errno = err;
      rc = err == 0 ? 0 : -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return rc;
}

}  // namespace

TransportPtr TcpConnect(const std::string& host, std::uint16_t port,
                        const TcpOptions& options) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &result);
  if (rc != 0) {
    throw IoError("getaddrinfo(" + host + "): " + gai_strerror(rc));
  }
  int fd = -1;
  bool timed_out = false;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (ConnectWithTimeout(fd, ai->ai_addr, ai->ai_addrlen,
                           options.connect_timeout) == 0) {
      break;
    }
    timed_out = timed_out || errno == ETIMEDOUT;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    const std::string where = host + ":" + std::to_string(port);
    if (timed_out) throw TimeoutError("connect to " + where + " timed out");
    throw IoError("cannot connect to " + where);
  }
  return std::make_unique<TcpTransport>(fd, options);
}

TcpListener::TcpListener(std::uint16_t port, const TcpOptions& options)
    : options_(options) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) ThrowErrno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ThrowErrno("bind");
  }
  if (::listen(fd_, 8) != 0) ThrowErrno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ThrowErrno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

TransportPtr TcpListener::Accept() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) ThrowErrno("accept");
  return std::make_unique<TcpTransport>(fd, options_);
}

}  // namespace vizndp::net
