#include "net/tcp.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"

namespace vizndp::net {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

void WriteAll(int fd, const Byte* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("tcp write");
    }
    off += static_cast<size_t>(n);
  }
}

// Returns false on clean EOF at a frame boundary.
bool ReadAll(int fd, Byte* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::read(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("tcp read");
    }
    if (n == 0) {
      if (off == 0) return false;
      throw IoError("tcp connection closed mid-frame");
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpTransport() override { Close(); }

  void Send(ByteSpan frame) override {
    Byte header[4];
    VIZNDP_CHECK_MSG(frame.size() <= 0xFFFFFFFFull, "frame too large");
    StoreLE(static_cast<std::uint32_t>(frame.size()), header);
    WriteAll(fd_, header, sizeof(header));
    WriteAll(fd_, frame.data(), frame.size());
  }

  Bytes Receive() override {
    Byte header[4];
    if (!ReadAll(fd_, header, sizeof(header))) {
      throw IoError("tcp connection closed by peer");
    }
    const std::uint32_t size = LoadLE<std::uint32_t>(header);
    Bytes frame(size);
    if (size > 0 && !ReadAll(fd_, frame.data(), size)) {
      throw IoError("tcp connection closed mid-frame");
    }
    return frame;
  }

  void Close() override {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_WR);
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
};

}  // namespace

TransportPtr TcpConnect(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &result);
  if (rc != 0) {
    throw IoError("getaddrinfo(" + host + "): " + gai_strerror(rc));
  }
  int fd = -1;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    throw IoError("cannot connect to " + host + ":" + std::to_string(port));
  }
  return std::make_unique<TcpTransport>(fd);
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) ThrowErrno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ThrowErrno("bind");
  }
  if (::listen(fd_, 8) != 0) ThrowErrno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ThrowErrno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

TransportPtr TcpListener::Accept() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) ThrowErrno("accept");
  return std::make_unique<TcpTransport>(fd);
}

}  // namespace vizndp::net
