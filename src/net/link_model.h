// Analytic network-link cost model used to emulate the paper's testbed
// (two nodes over 1 Gb Ethernet) on a single server: every byte that
// would have crossed the wire is charged latency + size/bandwidth of
// *virtual* time, accumulated here and added to measured compute time by
// the benchmark harness.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/sim_time.h"

namespace vizndp::net {

struct LinkConfig {
  double bandwidth_bytes_per_sec = 125.0e6;  // 1 Gb/s
  double latency_sec = 100e-6;               // per-message one-way latency
  // Protocol overhead multiplier on payload bytes (TCP/IP framing plus
  // s3fs/HTTP request amplification). Calibrated so the effective
  // throughput is ~65 MB/s: the paper's 12 s baseline for a ~500 MB array
  // with a ~4.2 s MinIO/SSD share implies s3fs-over-1GbE moved data at
  // roughly that rate. See EXPERIMENTS.md, "Timing-model calibration".
  double overhead_factor = 1.9;
};

// Thread-safe accumulator of virtual transfer time and traffic stats.
class SimulatedLink {
 public:
  explicit SimulatedLink(LinkConfig config = {}) : config_(config) {}

  // Virtual seconds one `bytes`-sized message occupies the link.
  double TransferSeconds(std::uint64_t bytes) const {
    return config_.latency_sec +
           static_cast<double>(bytes) * config_.overhead_factor /
               config_.bandwidth_bytes_per_sec;
  }

  // Records a transfer and returns its virtual duration.
  double ChargeTransfer(std::uint64_t bytes) {
    const double t = TransferSeconds(bytes);
    bytes_transferred_.fetch_add(bytes, std::memory_order_relaxed);
    messages_.fetch_add(1, std::memory_order_relaxed);
    virtual_seconds_.Add(t);
    return t;
  }

  std::uint64_t bytes_transferred() const {
    return bytes_transferred_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages() const {
    return messages_.load(std::memory_order_relaxed);
  }
  double virtual_seconds() const { return virtual_seconds_.Get(); }

  void Reset() {
    bytes_transferred_.store(0, std::memory_order_relaxed);
    messages_.store(0, std::memory_order_relaxed);
    virtual_seconds_.Reset();
  }

  const LinkConfig& config() const { return config_; }

 private:
  LinkConfig config_;
  std::atomic<std::uint64_t> bytes_transferred_{0};
  std::atomic<std::uint64_t> messages_{0};
  AtomicSeconds virtual_seconds_;
};

}  // namespace vizndp::net
