// SimulatedLink is header-only; this TU exists so the library has a home
// for future non-inline link-model code and to anchor the vtable-less
// class in one object file for debuggers.
#include "net/link_model.h"

namespace vizndp::net {}
