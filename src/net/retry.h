// Reusable retry policy: exponential backoff with deterministic,
// seedable jitter. Used by rpc::Client for idempotent calls and by
// ReconnectingTransport when re-dialing a lost peer.
//
// Jitter is a pure function of (seed, attempt, salt) — no global RNG
// state — so a test that fixes the seed sees the exact same delay
// schedule on every run, and two clients with different salts decorrelate
// instead of retrying in lockstep (the thundering-herd fix).
#pragma once

#include <chrono>
#include <cstdint>

namespace vizndp::net {

struct RetryPolicy {
  // Total tries including the first; 1 disables retrying.
  int max_attempts = 1;
  // Delay before retry k (k = 1 is the first retry) starts at base_delay
  // and doubles per retry, capped at max_delay.
  std::chrono::microseconds base_delay{1000};
  std::chrono::microseconds max_delay{200'000};
  // Fraction of the computed delay that is randomized: the actual delay
  // is uniform in [delay * (1 - jitter), delay]. 0 = fully deterministic.
  double jitter = 0.5;
  // Seed for the jitter stream; fixed default keeps tests reproducible.
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;

  bool enabled() const { return max_attempts > 1; }

  // Backoff before the `retry`-th retry (1-based). `salt` decorrelates
  // independent users of one policy (e.g. hash of the method name).
  std::chrono::microseconds DelayBefore(int retry,
                                        std::uint64_t salt = 0) const;
};

// Stateless 64-bit mix (splitmix64 finalizer) — shared so tests can
// predict jitter values.
std::uint64_t MixBits(std::uint64_t x);

// Sleeps for the policy's backoff before the given retry.
void BackoffSleep(const RetryPolicy& policy, int retry,
                  std::uint64_t salt = 0);

}  // namespace vizndp::net
