// FaultInjectingTransport: a Transport decorator that perturbs the frame
// stream in controlled, reproducible ways — the robustness counterpart of
// obs's InstrumentedCodec. Every failure mode the 2-node testbed can hit
// (stalled link, dead peer, corrupted or duplicated frames) becomes
// testable in-process:
//
//   drop        the frame silently vanishes (lost packet / dead service)
//   delay       the frame is held for a fixed duration (congested link)
//   duplicate   the frame is delivered twice (retransmit race)
//   truncate    only a prefix of the frame survives (partial write)
//   bit_flip    one bit is flipped at a seeded position (on-wire corruption)
//   disconnect  the connection hard-fails now and forever (node death)
//
// Faults are scripted per direction (action k applies to the k-th frame)
// or drawn from a seeded RNG, so failing runs replay exactly.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "net/transport.h"

namespace vizndp::net {

enum class FaultKind : std::uint8_t {
  kPass = 0,
  kDrop,
  kDelay,
  kDuplicate,
  kTruncate,
  kBitFlip,
  kDisconnect,
};

const char* FaultKindName(FaultKind kind);

struct FaultAction {
  FaultKind kind = FaultKind::kPass;
  std::chrono::microseconds delay{0};  // kDelay
  size_t truncate_to = 0;              // kTruncate: bytes kept
  size_t flip_bit = 0;                 // kBitFlip: bit index % frame bits

  static FaultAction Pass() { return {}; }
  static FaultAction Drop() { return {FaultKind::kDrop, {}, 0, 0}; }
  static FaultAction Delay(std::chrono::microseconds d) {
    return {FaultKind::kDelay, d, 0, 0};
  }
  static FaultAction Duplicate() { return {FaultKind::kDuplicate, {}, 0, 0}; }
  static FaultAction Truncate(size_t keep) {
    return {FaultKind::kTruncate, {}, keep, 0};
  }
  static FaultAction BitFlip(size_t bit) {
    return {FaultKind::kBitFlip, {}, 0, bit};
  }
  static FaultAction Disconnect() {
    return {FaultKind::kDisconnect, {}, 0, 0};
  }
};

// Seeded-random fault mix applied once a direction's script is exhausted
// (probabilities are independent; first match in this order wins).
struct FaultProbabilities {
  double drop = 0;
  double duplicate = 0;
  double bit_flip = 0;
  std::uint64_t seed = 1;
};

// Counts every injected fault, for assertions and for wiring into
// metrics at the call site.
struct FaultStats {
  std::uint64_t frames_sent = 0;      // delivered to the inner transport
  std::uint64_t frames_received = 0;  // delivered to the caller
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t truncated = 0;
  std::uint64_t bits_flipped = 0;
  std::uint64_t disconnects = 0;
};

class FaultInjectingTransport final : public Transport {
 public:
  explicit FaultInjectingTransport(TransportPtr inner);

  // Scripts the next sends/receives: action k applies to the k-th frame
  // in that direction. When `loop_last` is set the final action repeats
  // forever (e.g. {Drop} + loop_last = a black-holed direction);
  // otherwise exhausted scripts fall through to the random mix (which
  // defaults to all-zero probabilities = pass-through).
  void ScriptSend(std::vector<FaultAction> script, bool loop_last = false);
  void ScriptReceive(std::vector<FaultAction> script, bool loop_last = false);

  void SetRandomFaults(const FaultProbabilities& probabilities);

  FaultStats stats() const;

  void Send(ByteSpan frame) override;
  using Transport::Receive;
  Bytes Receive(Deadline deadline) override;
  void Close() override;

 private:
  struct Direction {
    std::vector<FaultAction> script;
    size_t next = 0;
    bool loop_last = false;
    std::uint64_t frame_count = 0;
  };

  FaultAction NextAction(Direction& dir);
  Bytes Corrupt(ByteSpan frame, const FaultAction& action);
  [[noreturn]] void ThrowDisconnected();

  mutable std::mutex mu_;
  TransportPtr inner_;
  Direction send_;
  Direction recv_;
  FaultProbabilities random_;
  bool disconnected_ = false;
  std::deque<Bytes> pending_receives_;  // duplicates waiting for delivery
  FaultStats stats_;
};

// Parses a compact fault-script spec used by `vizndp_tool --fault`:
//   spec    := entry (',' entry)*
//   entry   := ('send'|'recv') '.' action ['*' count] ['=' param]
//   action  := pass | drop | delay (param: µs) | dup
//            | truncate (param: bytes) | flip (param: bit index) | down
// A trailing '+' on an entry loops its action forever. `pass` delivers
// the frame untouched — it exists to position a later entry at the k-th
// frame of a conversation (e.g. a kill at a mid-stream chunk boundary).
// Examples:
//   "send.drop*2"          drop the first two requests (retry succeeds)
//   "send.drop+"           black-hole every request (forces fallback)
//   "recv.delay=2000*3"    delay the first three replies by 2 ms
//   "recv.pass*8,recv.down"  deliver 8 frames, then die mid-stream
// Throws Error on a malformed spec.
struct FaultSpec {
  std::vector<FaultAction> send_script;
  bool send_loop_last = false;
  std::vector<FaultAction> recv_script;
  bool recv_loop_last = false;
};
FaultSpec ParseFaultSpec(const std::string& spec);

// Convenience: wraps `inner` per the spec string.
TransportPtr WrapWithFaults(TransportPtr inner, const std::string& spec);

}  // namespace vizndp::net
