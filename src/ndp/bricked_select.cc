#include "ndp/bricked_select.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "compress/checksum.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace vizndp::ndp {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool Straddles(double lo, double hi, std::span<const double> isovalues) {
  for (const double iso : isovalues) {
    if (lo < iso && hi >= iso) return true;
  }
  return false;
}

template <typename T>
contour::Selection BrickedSelectT(const io::VndReader& reader,
                                  const std::string& array,
                                  const io::ArrayMeta& meta,
                                  std::span<const double> isovalues,
                                  BrickedSelectStats* stats,
                                  const std::vector<std::int64_t>* only_bricks,
                                  const storage::QuarantineSet* quarantine,
                                  const std::string& quarantine_key) {
  const grid::Dims dims = reader.header().dims;
  const io::BrickGrid bgrid(dims, meta.bricks->edge);

  // (id, value) pairs from every straddling brick; ghost points selected
  // by two bricks dedup after the sort (their values are identical).
  std::vector<std::pair<grid::PointId, T>> picked;
  BrickedSelectStats local;
  local.bricks_total = bgrid.BrickCount();

  // Straddling bricks, ascending (== ascending blob offsets), optionally
  // intersected with the sub-request's brick restriction (`only_bricks`
  // is sorted, so the merge below stays a linear walk).
  std::vector<std::int64_t> needed;
  size_t restrict_cursor = 0;
  for (std::int64_t b = 0; b < bgrid.BrickCount(); ++b) {
    if (only_bricks != nullptr) {
      while (restrict_cursor < only_bricks->size() &&
             (*only_bricks)[restrict_cursor] < b) {
        ++restrict_cursor;
      }
      if (restrict_cursor >= only_bricks->size() ||
          (*only_bricks)[restrict_cursor] != b) {
        continue;
      }
    }
    const io::BrickEntry& entry = meta.bricks->entries[static_cast<size_t>(b)];
    if (Straddles(entry.min, entry.max, isovalues)) needed.push_back(b);
  }
  local.bricks_read = static_cast<std::int64_t>(needed.size());

  const compress::CodecPtr codec = compress::MakeCodec(meta.codec);
  const bool has_crc = meta.bricks->has_crc;

  // Decompress + scan one brick whose stored bytes already verified.
  auto scan_brick = [&](std::int64_t b, ByteSpan brick_bytes) {
    const io::BrickGrid::Extent e = bgrid.BrickExtent(b);
    const size_t slab_bytes = static_cast<size_t>(e.PointCount()) * sizeof(T);
    const auto t_decompress = std::chrono::steady_clock::now();
    Bytes raw;
    try {
      raw = codec->Decompress(brick_bytes, slab_bytes, slab_bytes);
    } catch (const DecodeError& err) {
      // v1 files carry no brick CRC, so corruption surfaces here
      // instead; route it into the same recovery ladder.
      throw CorruptDataError(std::string("brick decode failed: ") +
                             err.what());
    }
    if (raw.size() != slab_bytes) {
      throw CorruptDataError("brick decompressed to wrong size: " + array);
    }
    const grid::DataArray slab(array, meta.type, std::move(raw));
    local.read_seconds += SecondsSince(t_decompress);

    const auto t_scan = std::chrono::steady_clock::now();
    const grid::Dims slab_dims{e.x1 - e.x0 + 1, e.y1 - e.y0 + 1,
                               e.z1 - e.z0 + 1};
    const contour::Selection slab_selection =
        contour::SelectInterestingPoints(slab_dims, slab, isovalues);
    const auto values = slab_selection.values.template View<T>();
    for (size_t i = 0; i < slab_selection.ids.size(); ++i) {
      const auto c = slab_dims.Coords(slab_selection.ids[i]);
      picked.emplace_back(dims.Index(e.x0 + c[0], e.y0 + c[1], e.z0 + c[2]),
                          values[i]);
    }
    local.scan_seconds += SecondsSince(t_scan);
  };

  // Bricks the scrubber quarantined leave the coalesced runs: their
  // stored bytes are known bad, so reading them with their neighbors
  // would poison the run and prepay a doomed read+decompress. Each goes
  // straight to the recovery rung — one individual verified read. A
  // brick healed by a clean re-Put (which the scrubber has not yet
  // re-admitted) verifies here and serves normally.
  if (quarantine != nullptr && !quarantine_key.empty()) {
    std::vector<std::int64_t> kept;
    kept.reserve(needed.size());
    for (const std::int64_t b : needed) {
      if (!quarantine->Contains(quarantine_key, array, b)) {
        kept.push_back(b);
        continue;
      }
      ++local.quarantine_skips;
      obs::DefaultRegistry()
          .GetCounter("ndp_quarantine_skip_total")
          .Increment();
      obs::GlobalEventLog().Append(
          "ndp.quarantine_skip",
          "array=" + array + " brick=" + std::to_string(b));
      const io::BrickEntry& entry =
          meta.bricks->entries[static_cast<size_t>(b)];
      const auto t_read = std::chrono::steady_clock::now();
      const Bytes stored =
          reader.ReadArrayRange(array, entry.offset, entry.stored_size);
      local.bytes_read += stored.size();
      local.read_seconds += SecondsSince(t_read);
      if (has_crc && compress::Crc32(stored) != entry.crc32) {
        throw CorruptDataError("quarantined brick still corrupt: " + array +
                               " brick " + std::to_string(b));
      }
      scan_brick(b, ByteSpan(stored));
    }
    needed.swap(kept);
  }

  size_t cursor = 0;
  while (cursor < needed.size()) {
    // Coalesce runs of consecutive bricks (their blobs are contiguous by
    // construction) into one ranged read: object-store access latency,
    // not bandwidth, dominates small-brick reads otherwise.
    size_t run_end = cursor + 1;
    while (run_end < needed.size() &&
           needed[run_end] == needed[run_end - 1] + 1) {
      ++run_end;
    }
    const io::BrickEntry& first =
        meta.bricks->entries[static_cast<size_t>(needed[cursor])];
    const io::BrickEntry& last =
        meta.bricks->entries[static_cast<size_t>(needed[run_end - 1])];
    const std::uint64_t run_bytes =
        last.offset + last.stored_size - first.offset;

    const auto t_read = std::chrono::steady_clock::now();
    const Bytes run = reader.ReadArrayRange(array, first.offset, run_bytes);
    local.read_seconds += SecondsSince(t_read);
    local.bytes_read += run_bytes;

    for (size_t r = cursor; r < run_end; ++r) {
      const std::int64_t b = needed[r];
      const io::BrickEntry& entry =
          meta.bricks->entries[static_cast<size_t>(b)];

      // Verify-then-decompress, with one recovery re-read. The brick CRC
      // (format v2) is checked *before* the decoder touches the bytes;
      // on mismatch the brick alone is fetched again — a transient flip
      // heals, persistent corruption throws CorruptDataError and the
      // caller falls back to the whole-blob path.
      const auto t_decompress = std::chrono::steady_clock::now();
      ByteSpan brick_bytes = ByteSpan(run).subspan(
          entry.offset - first.offset, entry.stored_size);
      Bytes reread;
      if (has_crc && compress::Crc32(brick_bytes) != entry.crc32) {
        ++local.corrupt_bricks;
        obs::DefaultRegistry().GetCounter("corrupt_brick_total").Increment();
        obs::GlobalEventLog().Append(
            "ndp.corrupt_brick",
            "array=" + array + " brick=" + std::to_string(b));
        ++local.brick_rereads;
        obs::DefaultRegistry().GetCounter("brick_reread_total").Increment();
        obs::GlobalEventLog().Append(
            "ndp.brick_reread",
            "array=" + array + " brick=" + std::to_string(b));
        reread = reader.ReadArrayRange(array, entry.offset, entry.stored_size);
        local.bytes_read += reread.size();
        if (compress::Crc32(reread) != entry.crc32) {
          throw CorruptDataError("brick CRC mismatch after re-read: " + array +
                                 " brick " + std::to_string(b));
        }
        brick_bytes = ByteSpan(reread);
      }
      local.read_seconds += SecondsSince(t_decompress);
      scan_brick(b, brick_bytes);
    }
    cursor = run_end;
  }

  std::sort(picked.begin(), picked.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  picked.erase(std::unique(picked.begin(), picked.end(),
                           [](const auto& a, const auto& b) {
                             return a.first == b.first;
                           }),
               picked.end());

  contour::Selection out;
  out.dims = dims;
  out.total_points = dims.PointCount();
  out.ids.reserve(picked.size());
  std::vector<T> values;
  values.reserve(picked.size());
  for (const auto& [id, value] : picked) {
    out.ids.push_back(id);
    values.push_back(value);
  }
  out.values = grid::DataArray::FromVector(array, std::move(values));
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace

contour::Selection SelectInterestingPointsBricked(
    const io::VndReader& reader, const std::string& array,
    std::span<const double> isovalues, BrickedSelectStats* stats,
    const std::vector<std::int64_t>* only_bricks,
    const storage::QuarantineSet* quarantine,
    const std::string& quarantine_key) {
  const io::ArrayMeta* meta = reader.header().Find(array);
  VIZNDP_CHECK_MSG(meta != nullptr, "no array '" + array + "' in VND file");
  VIZNDP_CHECK_MSG(meta->bricks.has_value(),
                   "array '" + array + "' is not bricked");
  switch (meta->type) {
    case grid::DataType::Float32:
      return BrickedSelectT<float>(reader, array, *meta, isovalues, stats,
                                   only_bricks, quarantine, quarantine_key);
    case grid::DataType::Float64:
      return BrickedSelectT<double>(reader, array, *meta, isovalues, stats,
                                    only_bricks, quarantine, quarantine_key);
    default:
      throw Error("selection requires a floating-point array");
  }
}

}  // namespace vizndp::ndp
