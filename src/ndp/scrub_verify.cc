#include "ndp/scrub_verify.h"

#include <string>
#include <utility>

#include "compress/checksum.h"
#include "io/vnd_format.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace vizndp::ndp {

namespace {

obs::Counter& CorruptFoundCounter() {
  static obs::Counter& c =
      obs::DefaultRegistry().GetCounter("scrub_corrupt_found_total");
  return c;
}

obs::Counter& QuarantineCounter() {
  static obs::Counter& c =
      obs::DefaultRegistry().GetCounter("scrub_quarantine_total");
  return c;
}

obs::Counter& ReadmitCounter() {
  static obs::Counter& c =
      obs::DefaultRegistry().GetCounter("scrub_readmit_total");
  return c;
}

std::string BrickDetail(const std::string& key, const std::string& array,
                        std::int64_t brick) {
  return "key=" + key + " array=" + array + " brick=" + std::to_string(brick);
}

}  // namespace

namespace {

// Reconciles one brick's CRC verdict with the quarantine.
void ReconcileBrick(const std::string& key, const io::ArrayMeta& meta,
                    size_t b, ByteSpan stored,
                    storage::QuarantineSet& quarantine,
                    storage::ScrubObjectReport& report) {
  ++report.bricks_checked;
  const storage::BrickRef ref{key, meta.name, static_cast<std::int64_t>(b)};
  if (compress::Crc32(stored) != meta.bricks->entries[b].crc32) {
    ++report.corrupt;
    CorruptFoundCounter().Increment();
    if (quarantine.Add(ref)) {
      ++report.quarantined;
      QuarantineCounter().Increment();
      obs::GlobalEventLog().Append("scrub.quarantine",
                                   BrickDetail(key, meta.name, ref.brick));
    }
  } else if (quarantine.Remove(ref)) {
    ++report.readmitted;
    ReadmitCounter().Increment();
    obs::GlobalEventLog().Append("scrub.readmit",
                                 BrickDetail(key, meta.name, ref.brick));
  }
}

}  // namespace

storage::ScrubObjectReport ScrubVndObject(const storage::FileGateway& gateway,
                                          const std::string& key,
                                          storage::QuarantineSet& quarantine,
                                          rpc::MemoryBudget* budget) {
  storage::ScrubObjectReport report;
  const io::VndReader reader(gateway.Open(key));
  for (const io::ArrayMeta& meta : reader.header().arrays) {
    if (!meta.bricks.has_value() || !meta.bricks->has_crc) continue;
    const auto& entries = meta.bricks->entries;
    if (entries.empty()) continue;

    // Fast path: verify the whole array from one coalesced read. Brick
    // reads pay the store's per-op cost, so per-brick I/O turns a pass
    // into thousands of tiny reads that queue against live traffic; one
    // ranged read per array is bandwidth-bound instead. Only taken when
    // the budget admits the whole stored array at once.
    const io::BrickEntry& last = entries.back();
    const std::uint64_t span = last.offset + last.stored_size;
    bool coalesced = false;
    if (budget == nullptr) {
      coalesced = true;
    } else {
      try {
        const rpc::MemoryBudget::Reservation reservation(*budget, span);
        const Bytes all = reader.ReadArrayRange(meta.name, 0, span);
        for (size_t b = 0; b < entries.size(); ++b) {
          const io::BrickEntry& entry = entries[b];
          ReconcileBrick(key, meta, b,
                         ByteSpan(all).subspan(entry.offset,
                                               entry.stored_size),
                         quarantine, report);
        }
        continue;
      } catch (const BusyError&) {
        // Fall through to the per-brick ladder below: smaller
        // reservations may still fit.
      }
    }
    if (coalesced) {
      const Bytes all = reader.ReadArrayRange(meta.name, 0, span);
      for (size_t b = 0; b < entries.size(); ++b) {
        const io::BrickEntry& entry = entries[b];
        ReconcileBrick(
            key, meta, b,
            ByteSpan(all).subspan(entry.offset, entry.stored_size),
            quarantine, report);
      }
      continue;
    }

    // Pressure path: brick at a time, skipping (never failing) whatever
    // the budget cannot admit — a scrub pass must never shed user
    // traffic.
    for (size_t b = 0; b < entries.size(); ++b) {
      const io::BrickEntry& entry = entries[b];
      rpc::MemoryBudget::Reservation reservation;
      try {
        reservation =
            rpc::MemoryBudget::Reservation(*budget, entry.stored_size);
      } catch (const BusyError&) {
        // The server is under memory pressure; this brick keeps its
        // current verdict until a calmer pass.
        ++report.budget_skips;
        continue;
      }
      const Bytes stored =
          reader.ReadArrayRange(meta.name, entry.offset, entry.stored_size);
      ReconcileBrick(key, meta, b, ByteSpan(stored), quarantine, report);
    }
  }
  return report;
}

storage::ScrubVerifier MakeVndScrubVerifier(storage::FileGateway gateway,
                                            storage::QuarantineSet& quarantine,
                                            rpc::MemoryBudget* budget) {
  return [gateway = std::move(gateway), &quarantine,
          budget](const std::string& key) {
    return ScrubVndObject(gateway, key, quarantine, budget);
  };
}

}  // namespace vizndp::ndp
