// Wire encodings for pre-filter selections (the paper ships these through
// rpclib/MessagePack). Three interchangeable layouts, compared by the
// encoding ablation bench:
//   kIdValue     — [count][ids as i64 LE][values raw]; simple, 12 B/point
//                  for float32 fields.
//   kDeltaVarint — [count][varint deltas of sorted ids][values raw];
//                  ids cluster around interfaces, so deltas are small and
//                  this typically runs ~5 B/point.
//   kBitmap      — [one bit per grid point][values raw in id order]; wins
//                  when selectivity is high (dense selections).
//   kRunLength   — [(varint gap, varint run length) pairs][values raw];
//                  the selection marks whole cell corners, so ids come in
//                  x-contiguous runs and this usually beats delta-varint
//                  (~0.5-1 B/point of id overhead). NdpClient's default.
// Every payload starts with a 1-byte encoding tag + 1-byte data type, so
// decoders self-describe.
#pragma once

#include <cstdint>
#include <span>

#include "contour/select.h"
#include "grid/data_array.h"
#include "msgpack/value.h"

namespace vizndp::ndp {

enum class SelectionEncoding : std::uint8_t {
  kIdValue = 0,
  kDeltaVarint = 1,
  kBitmap = 2,
  kRunLength = 3,
};

const char* SelectionEncodingName(SelectionEncoding e);

struct DecodedSelection {
  std::vector<grid::PointId> ids;  // sorted ascending
  grid::DataArray values;
};

Bytes EncodeSelection(const contour::Selection& selection,
                      SelectionEncoding encoding);

// `dims` must match the grid the selection was taken from (needed by the
// bitmap layout). Throws DecodeError on malformed payloads.
DecodedSelection DecodeSelection(ByteSpan payload, const grid::Dims& dims);

// Unsigned LEB128 helpers (shared with tests).
void AppendVarint(std::uint64_t value, Bytes& out);
std::uint64_t ReadVarint(ByteSpan data, size_t& pos);

// Sub-request brick restriction (scatter-gather sharding). ndp.select
// takes an optional 6th positional parameter: a sorted array of brick
// ids restricting the bricked pre-filter to exactly those bricks. A
// sharded client partitions the brick space across servers, sends each
// its own restriction, and merges the partial selections; any replica
// can serve any restriction because the restriction names data, not
// placement. Old servers never see it (old clients send 5 params) and
// old clients keep working against new servers (an absent/empty
// restriction means "all bricks", the pre-sharding behaviour).
msgpack::Value BrickRestrictionToValue(std::span<const std::int64_t> bricks);
// Hard cap on restriction length: far above any real brick count (a
// 1M-brick dataset at 32³ bricks is a 3.2-terapoint grid), far below
// what a hostile length would make the server allocate.
inline constexpr size_t kMaxBrickRestriction = size_t{1} << 20;
// Decodes the restriction; validates ids are sorted, unique,
// non-negative, and at most kMaxBrickRestriction long (the upper bound
// is checked against the actual brick count by NdpServer::Select).
// Throws DecodeError on violations.
std::vector<std::int64_t> BrickRestrictionFromValue(
    const msgpack::Value& value);

// RPC method names served by NdpServer.
inline constexpr const char* kRpcNdpSelect = "ndp.select";
inline constexpr const char* kRpcNdpInfo = "ndp.info";
inline constexpr const char* kRpcNdpStats = "ndp.stats";
// Observability scrapes: ndp.metrics returns the storage node's metric
// registries (NDP + RPC + process substrate) — structured by default, or
// rendered server-side when params[0] names a format ("text", "json",
// "prom"). ndp.trace drains the span buffer so a client can merge the
// server half of a trace into its own; a nonzero u64 in params[0]
// restricts (and removes) just that trace's spans, leaving the rest
// buffered. ndp.health summarizes liveness: draining flag, in-flight
// handler table (method + trace_id + age), and memory-budget usage.
inline constexpr const char* kRpcNdpMetrics = "ndp.metrics";
inline constexpr const char* kRpcNdpTrace = "ndp.trace";
inline constexpr const char* kRpcNdpHealth = "ndp.health";

}  // namespace vizndp::ndp
