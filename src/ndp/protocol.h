// Wire encodings for pre-filter selections (the paper ships these through
// rpclib/MessagePack). Three interchangeable layouts, compared by the
// encoding ablation bench:
//   kIdValue     — [count][ids as i64 LE][values raw]; simple, 12 B/point
//                  for float32 fields.
//   kDeltaVarint — [count][varint deltas of sorted ids][values raw];
//                  ids cluster around interfaces, so deltas are small and
//                  this typically runs ~5 B/point.
//   kBitmap      — [one bit per grid point][values raw in id order]; wins
//                  when selectivity is high (dense selections).
//   kRunLength   — [(varint gap, varint run length) pairs][values raw];
//                  the selection marks whole cell corners, so ids come in
//                  x-contiguous runs and this usually beats delta-varint
//                  (~0.5-1 B/point of id overhead). NdpClient's default.
// Every payload starts with a 1-byte encoding tag + 1-byte data type, so
// decoders self-describe.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "contour/select.h"
#include "grid/data_array.h"
#include "grid/dims.h"
#include "msgpack/value.h"

namespace vizndp::ndp {

enum class SelectionEncoding : std::uint8_t {
  kIdValue = 0,
  kDeltaVarint = 1,
  kBitmap = 2,
  kRunLength = 3,
};

const char* SelectionEncodingName(SelectionEncoding e);

struct DecodedSelection {
  std::vector<grid::PointId> ids;  // sorted ascending
  grid::DataArray values;
};

Bytes EncodeSelection(const contour::Selection& selection,
                      SelectionEncoding encoding);

// `dims` must match the grid the selection was taken from (needed by the
// bitmap layout). Throws DecodeError on malformed payloads.
DecodedSelection DecodeSelection(ByteSpan payload, const grid::Dims& dims);

// Unsigned LEB128 helpers (shared with tests).
void AppendVarint(std::uint64_t value, Bytes& out);
std::uint64_t ReadVarint(ByteSpan data, size_t& pos);

// Sub-request brick restriction (scatter-gather sharding). ndp.select
// takes an optional 6th positional parameter: a sorted array of brick
// ids restricting the bricked pre-filter to exactly those bricks. A
// sharded client partitions the brick space across servers, sends each
// its own restriction, and merges the partial selections; any replica
// can serve any restriction because the restriction names data, not
// placement. Old servers never see it (old clients send 5 params) and
// old clients keep working against new servers (an absent/empty
// restriction means "all bricks", the pre-sharding behaviour).
msgpack::Value BrickRestrictionToValue(std::span<const std::int64_t> bricks);
// Hard cap on restriction length: far above any real brick count (a
// 1M-brick dataset at 32³ bricks is a 3.2-terapoint grid), far below
// what a hostile length would make the server allocate.
inline constexpr size_t kMaxBrickRestriction = size_t{1} << 20;
// Decodes the restriction; validates ids are sorted, unique,
// non-negative, and at most kMaxBrickRestriction long (the upper bound
// is checked against the actual brick count by NdpServer::Select).
// Throws DecodeError on violations.
std::vector<std::int64_t> BrickRestrictionFromValue(
    const msgpack::Value& value);

// ---- Streaming replies (ROADMAP item 3) ------------------------------
//
// ndp.select takes an optional 7th positional parameter, a stream map
// {"chunk_bricks": N, "resume_after": C}: the server then answers with
// rpc chunk frames instead of one monolithic reply. Old servers index
// params positionally and never read a 7th element, so a streaming
// request degrades to a monolithic response the client accepts as-is —
// both directions stay backward compatible.
//
// Stream shape (all frames carry the request's msgid):
//   1. header chunk  {"kind": "header", dims/origin/spacing/dtype,
//                     "bricks_total", "stream_bricks", "total_points"}
//   2. data chunk*   {"kind": "data", "cursor": last brick id (strictly
//                     ascending, > resume_after), "bricks": batch size,
//                     "payload": encoded selection, "crc32": CRC-32 of
//                     payload}
//   3. terminal      the ordinary ndp.select reply map minus "payload"
//                    (totals + per-phase times; the chunks carried the
//                    data).
//
// The cursor is the resume token: a client that loses the stream after
// cursor C re-issues the call with resume_after=C (same node first,
// then any replica — the cursor names data, not placement) and scatters
// the new chunks into the same SparseField, whose Scatter is order- and
// duplicate-invariant. Ghost-layer points shared by brick batches may
// arrive twice across chunks or resumes; that is by design.
struct StreamParams {
  std::int64_t chunk_bricks = 0;   // straddling bricks per data chunk
  std::int64_t resume_after = -1;  // last brick id already received
};

msgpack::Value StreamParamsToValue(const StreamParams& params);
// Nil/absent → nullopt (monolithic request). Throws DecodeError when
// present but malformed (chunk_bricks < 1 or > kMaxBrickRestriction,
// resume_after < -1).
std::optional<StreamParams> StreamParamsFromValue(const msgpack::Value& value);

struct StreamHeader {
  grid::Dims dims;
  double origin[3] = {0, 0, 0};
  double spacing[3] = {1, 1, 1};
  grid::DataType dtype = grid::DataType::Float32;
  std::int64_t bricks_total = 0;   // bricks in the array
  std::int64_t stream_bricks = 0;  // bricks this stream will cover
  std::int64_t total_points = 0;   // points in the full grid
};

struct StreamChunk {
  std::int64_t cursor = -1;   // last brick id covered, strictly ascending
  std::int64_t bricks = 0;    // bricks in this batch
  std::int64_t selected = 0;  // points in payload
  Bytes payload;              // EncodeSelection bytes, CRC-stamped
};

msgpack::Value StreamHeaderToValue(const StreamHeader& header);
msgpack::Value StreamChunkToValue(const StreamChunk& chunk);
// Move overload for the serving hot path: the payload lands in the wire
// Value without an intermediate copy.
msgpack::Value StreamChunkToValue(StreamChunk&& chunk);

// Stateful, validating decoder for one stream's chunk maps — the only
// path from wire bytes to chunk data, shared by NdpClient and the
// ndp-stream fuzz target so hostile frames hit the same checks the real
// client runs. Enforces: header first and exactly once, strictly
// ascending cursors starting above resume_after, payload CRC match,
// sane counts, and exactly one terminal.
class StreamDecoder {
 public:
  explicit StreamDecoder(std::int64_t resume_after = -1)
      : cursor_(resume_after) {}

  bool got_header() const { return got_header_; }
  bool finished() const { return finished_; }
  const StreamHeader& header() const { return header_; }
  std::int64_t cursor() const { return cursor_; }

  // Decodes + validates one chunk map. Returns the data chunk, or
  // nullopt when the map was the header. Throws DecodeError (or
  // CorruptDataError for a CRC mismatch) on any violation.
  std::optional<StreamChunk> Feed(const msgpack::Value& chunk_map);

  // Closes the stream on the terminal result. Throws DecodeError on a
  // terminal before the header or after a previous terminal.
  void Finish();

 private:
  bool got_header_ = false;
  bool finished_ = false;
  StreamHeader header_;
  std::int64_t cursor_;
};

// RPC method names served by NdpServer.
inline constexpr const char* kRpcNdpSelect = "ndp.select";
inline constexpr const char* kRpcNdpInfo = "ndp.info";
inline constexpr const char* kRpcNdpStats = "ndp.stats";
// Observability scrapes: ndp.metrics returns the storage node's metric
// registries (NDP + RPC + process substrate) — structured by default, or
// rendered server-side when params[0] names a format ("text", "json",
// "prom"). ndp.trace drains the span buffer so a client can merge the
// server half of a trace into its own; a nonzero u64 in params[0]
// restricts (and removes) just that trace's spans, leaving the rest
// buffered. ndp.health summarizes liveness: draining flag, in-flight
// handler table (method + trace_id + age), and memory-budget usage.
inline constexpr const char* kRpcNdpMetrics = "ndp.metrics";
inline constexpr const char* kRpcNdpTrace = "ndp.trace";
inline constexpr const char* kRpcNdpHealth = "ndp.health";

}  // namespace vizndp::ndp
