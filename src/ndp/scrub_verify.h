// VND-aware scrub verifier: the format knowledge storage::Scrubber
// deliberately lacks (the storage library sits below the VND reader in
// the dependency order). Walks every bricked, CRC-stamped array of one
// object, re-reads each brick from the store, and reconciles the CRC
// verdicts with the QuarantineSet:
//
//   CRC fails  -> quarantine the brick (scrub_quarantine_total +
//                 one "scrub.quarantine" event when newly added)
//   CRC passes -> re-admit it if it was quarantined (scrub_readmit_total
//                 + one "scrub.readmit" event) — the object was re-Put
//                 with clean bytes since the scrub that caught it
//
// Scrubbing is a background courtesy, so brick reads reserve from the
// server's MemoryBudget when one is given and *skip* (not fail) bricks
// the budget cannot admit — a scrub pass must never shed user traffic.
#pragma once

#include "rpc/server.h"
#include "storage/file_gateway.h"
#include "storage/scrubber.h"

namespace vizndp::ndp {

// Verifies one VND object. `quarantine` (and `budget`, when non-null)
// must outlive the call.
storage::ScrubObjectReport ScrubVndObject(const storage::FileGateway& gateway,
                                          const std::string& key,
                                          storage::QuarantineSet& quarantine,
                                          rpc::MemoryBudget* budget = nullptr);

// Packages ScrubVndObject as the storage::ScrubVerifier callback a
// Scrubber wants. `quarantine` and `budget` must outlive the verifier.
storage::ScrubVerifier MakeVndScrubVerifier(storage::FileGateway gateway,
                                            storage::QuarantineSet& quarantine,
                                            rpc::MemoryBudget* budget = nullptr);

}  // namespace vizndp::ndp
