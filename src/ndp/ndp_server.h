// Storage-side half of the split pipeline (Fig. 10): a partial VTK
// pipeline — source (VND reader over the *local* gateway) plus pre-filter
// (interesting-point selection) — exposed over RPC. The client-side
// post-filter talks to this via NdpClient.
//
// Observability: every request emits phase spans (ndp.read /
// ndp.select.scan / ndp.pack, with codec.decompress:* nested inside the
// read) into the process tracer, and maintains counters for bytes in/out,
// selected points, and bricks skipped in metrics(). Bind() additionally
// exposes the node's telemetry over the wire: ndp.metrics scrapes the
// metric registries and ndp.trace drains the span buffer.
//
// Integrity: the bricked fast path verifies per-brick CRCs and re-reads a
// failing brick once (see bricked_select.h). If a brick stays corrupt,
// Select falls back to the whole-blob read for that array — still
// CRC-checked end to end — before giving up; only when the whole blob is
// bad too does the request fail with CorruptDataError, which crosses the
// wire typed so the client can degrade to its baseline pipeline.
#pragma once

#include <atomic>
#include <functional>

#include "ndp/protocol.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "rpc/server.h"
#include "storage/file_gateway.h"
#include "storage/scrubber.h"

namespace vizndp::ndp {

// Random 64-bit server-incarnation id. Every NdpServer construction
// mints a fresh one, so a health prober that sees the id change knows
// the process (or server object) behind the endpoint restarted even if
// it never caught the endpoint down.
std::uint64_t MintNodeId();

class NdpServer {
 public:
  // `gateway` should be local to the storage node (that is the point);
  // it must outlive the server.
  explicit NdpServer(storage::FileGateway gateway)
      : gateway_(std::move(gateway)), node_id_(MintNodeId()) {
    // Anchor the process uptime clock now, so the first metrics scrape
    // reports time-since-serving-started, not time-since-first-scrape.
    obs::ProcessUptimeSeconds();
  }

  // This incarnation's identity, reported in every ndp.health reply.
  std::uint64_t node_id() const { return node_id_; }

  // Highest cluster view epoch any health prober has mentioned (probes
  // piggyback their view epoch as the optional first ndp.health param);
  // echoed back in health replies so operators can spot a prober whose
  // view lags the fleet.
  std::uint64_t seen_view_epoch() const {
    return seen_view_epoch_.load(std::memory_order_relaxed);
  }

  // Pre-filter scan parallelism on the storage node. 1 = serial
  // (default); 0 = one thread per hardware core.
  void SetPreFilterThreads(int threads) { prefilter_threads_ = threads; }

  // Optional decompressed-memory budget (usually the owning
  // rpc::Server's). When set, Select reserves the array's raw size for
  // the duration of the request; an exhausted budget sheds the request
  // with BusyError before any read happens. Must outlive the server.
  void SetMemoryBudget(rpc::MemoryBudget* budget) { mem_budget_ = budget; }

  // Optional quarantine set maintained by a storage::Scrubber. When set,
  // the bricked pre-filter skips known-corrupt bricks straight to their
  // recovery re-read instead of prepaying a doomed read+decompress (see
  // bricked_select.h). Must outlive the server.
  void SetQuarantine(const storage::QuarantineSet* quarantine) {
    quarantine_ = quarantine;
  }

  // Optional scrubber whose status is surfaced in ndp.health replies
  // (passes, bricks checked, corrupt found, current quarantine size).
  // Must outlive the server.
  void SetScrubber(const storage::Scrubber* scrubber) {
    scrubber_ = scrubber;
  }

  // Optional SLO status source surfaced in ndp.health replies — a node
  // colocated with an SloTracker (or tests) can publish per-objective
  // budget/burn state to any health prober. Called on the dispatch
  // thread, so it must be thread-safe (SloTracker::status is).
  void SetSloStatusFn(std::function<std::vector<obs::SloStatus>()> fn) {
    slo_status_fn_ = std::move(fn);
  }

  // Registers ndp.select, ndp.info, ndp.stats, ndp.metrics, and
  // ndp.trace on `server`.
  void Bind(rpc::Server& server);

  // Handler core, exposed for tests: reads `key`, selects interesting
  // points of `array` for `isovalues`, returns the reply map.
  //
  // `only_bricks` (sorted brick ids, nullptr = all) restricts the
  // pre-filter to a subset of the brick space — the sub-request half of
  // the scatter-gather protocol (see src/cluster/). Restricted requests
  // require a bricked array, and they do NOT take the server-side
  // whole-blob fallback on persistent brick corruption: the right
  // recovery for a shard sub-request is the client's replica failover
  // (a different data copy), so the CorruptDataError crosses the wire
  // typed instead (ndp_restricted_corrupt_total / ndp.restricted_corrupt).
  msgpack::Value Select(const std::string& key, const std::string& array,
                        const std::vector<double>& isovalues,
                        SelectionEncoding encoding,
                        const std::vector<std::int64_t>* only_bricks = nullptr);

  // Streaming variant (protocol.h stream shape): emits one header chunk,
  // then per-brick-batch data chunks through `sink` as batches finish,
  // and returns the terminal summary (the Select reply map minus
  // "payload"). Memory accounting is incremental — each batch reserves
  // only its own slab bytes and releases them when its chunk has been
  // flushed — so at the same MemoryBudget a node admits strictly more
  // concurrent streaming selects than whole-array monolithic ones.
  // Shedding (BusyError) can only happen before the first chunk; a
  // mid-stream reservation failure waits briefly and then fails with a
  // plain (resumable, never `!busy:`) error. Unbricked arrays cannot
  // stream and degrade to the monolithic Select reply. A cancel observed
  // on the sink abandons remaining batches (ndp_stream_cancelled_total /
  // ndp.stream_cancel).
  msgpack::Value SelectStreaming(
      const std::string& key, const std::string& array,
      const std::vector<double>& isovalues, SelectionEncoding encoding,
      const std::vector<std::int64_t>* only_bricks,
      const StreamParams& stream, rpc::StreamSink& sink);

  msgpack::Value Info(const std::string& key);

  // Near-data array statistics: min/max and a value histogram computed on
  // the storage node (the interactive front end uses these to suggest
  // contour values without ever moving the array). For brick-indexed
  // arrays the min/max comes straight from the header index.
  msgpack::Value Stats(const std::string& key, const std::string& array,
                       int bins);

  // Pre-filter metrics: ndp_select_requests_total, ndp_bytes_in_total,
  // ndp_bytes_out_total, ndp_selected_points_total,
  // ndp_bricks_skipped_total, ndp_stats_index_fastpath_total, ...
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

 private:
  storage::FileGateway gateway_;
  int prefilter_threads_ = 1;
  rpc::MemoryBudget* mem_budget_ = nullptr;
  const storage::QuarantineSet* quarantine_ = nullptr;
  const storage::Scrubber* scrubber_ = nullptr;
  std::function<std::vector<obs::SloStatus>()> slo_status_fn_;
  obs::Registry metrics_;
  std::uint64_t node_id_;
  std::atomic<std::uint64_t> seen_view_epoch_{0};
};

}  // namespace vizndp::ndp
